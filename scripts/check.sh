#!/usr/bin/env bash
# CI-style gate: tier-1 (release build + full test suite) plus formatting
# and lints, all with --locked so an unpinned dependency fails loudly
# instead of reaching for the network. Run from anywhere in the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --locked"
cargo build --release --locked

echo "==> cargo test --workspace -q --locked"
cargo test --workspace -q --locked

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets --locked -- -D warnings"
cargo clippy --all-targets --locked -- -D warnings

echo "==> all checks passed"
