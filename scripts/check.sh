#!/usr/bin/env bash
# CI-style gate: tier-1 (release build + full test suite) plus formatting
# and lints, all with --locked so an unpinned dependency fails loudly
# instead of reaching for the network. Run from anywhere in the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --locked"
cargo build --release --locked

echo "==> cargo test --workspace -q --locked"
cargo test --workspace -q --locked

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets --locked -- -D warnings"
cargo clippy --all-targets --locked -- -D warnings

# The Send+Sync invariant behind the parallel scheduler: no std::rc in the
# kernel or core crates (clippy.toml's disallowed-types).
echo "==> cargo clippy -p pumpkin-kernel -p pumpkin-core (no std::rc)"
cargo clippy -p pumpkin-kernel -p pumpkin-core --all-targets --locked -- \
    -D warnings -D clippy::disallowed-types

# Committed golden traces must satisfy the JSON-lines schema, including
# the versioned `prov` event family (DESIGN.md §11–12).
echo "==> trace lint over tests/golden/*.jsonl"
scripts/trace_lint.sh

# Smoke-run the parallel-repair + observability bench rows so scheduler or
# probe regressions surface here, not only in full EXPERIMENTS.md runs. The
# run writes a pumpkin-bench/v1 JSON report that the guard gates row by
# row against the most recent committed baseline (disabled-sink and
# disabled-provenance overhead must stay in noise).
echo "==> bench: repair_parallel + trace_overhead → BENCH_pr4.json"
# Absolute path: cargo runs the bench binary with cwd = the package dir.
cargo bench -p pumpkin-bench --locked --bench ablation -- \
    --sample-size 5 --filter repair_parallel/jobs=1,trace_overhead \
    --json "$(pwd)/BENCH_pr4.json"

echo "==> bench guard (auto baseline)"
scripts/bench_guard.sh BENCH_pr4.json

echo "==> all checks passed"
