#!/usr/bin/env bash
# CI-style gate: tier-1 (release build + full test suite) plus formatting
# and lints, all with --locked so an unpinned dependency fails loudly
# instead of reaching for the network. Run from anywhere in the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --locked"
cargo build --release --locked

echo "==> cargo test --workspace -q --locked"
cargo test --workspace -q --locked

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets --locked -- -D warnings"
cargo clippy --all-targets --locked -- -D warnings

# The Send+Sync invariant behind the parallel scheduler: no std::rc in the
# kernel or core crates (clippy.toml's disallowed-types).
echo "==> cargo clippy -p pumpkin-kernel -p pumpkin-core (no std::rc)"
cargo clippy -p pumpkin-kernel -p pumpkin-core --all-targets --locked -- \
    -D warnings -D clippy::disallowed-types

# Smoke-run the parallel-repair bench rows so scheduler regressions surface
# here, not only in full EXPERIMENTS.md runs.
echo "==> bench smoke: repair_parallel"
cargo bench -p pumpkin-bench --locked --bench ablation -- \
    --sample-size 3 --filter repair_parallel

echo "==> all checks passed"
