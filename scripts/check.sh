#!/usr/bin/env bash
# CI-style gate: tier-1 (release build + full test suite) plus formatting
# and lints, all with --locked so an unpinned dependency fails loudly
# instead of reaching for the network. Run from anywhere in the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --locked"
cargo build --release --locked

echo "==> cargo test --workspace -q --locked"
cargo test --workspace -q --locked

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets --locked -- -D warnings"
cargo clippy --all-targets --locked -- -D warnings

# The Send+Sync invariant behind the parallel scheduler: no std::rc in the
# kernel or core crates (clippy.toml's disallowed-types) — and the
# hash-consing invariant: no raw TermCell construction outside the interner
# module (clippy.toml's disallowed-methods).
echo "==> cargo clippy -p pumpkin-kernel -p pumpkin-core (no std::rc, no raw cells)"
cargo clippy -p pumpkin-kernel -p pumpkin-core --all-targets --locked -- \
    -D warnings -D clippy::disallowed-types -D clippy::disallowed-methods

# Committed golden traces must satisfy the JSON-lines schema, including
# the versioned `prov` event family (DESIGN.md §11–12).
echo "==> trace lint over tests/golden/*.jsonl"
scripts/trace_lint.sh

# Daemon smoke test: a real pumpkind on a loopback port, driven by the
# real client subcommand, shut down gracefully. Everything is wrapped in
# timeouts so a wedged daemon fails the gate instead of hanging it.
echo "==> pumpkind smoke (serve / client / stats / shutdown over loopback)"
serve_log=$(mktemp)
slow_log=$(mktemp)
# --slow-ms 0 makes every request "slow", so the structured slow log gets
# one serve_slow line per request — asserted (and schema-linted) below.
./target/release/pumpkin serve --listen 127.0.0.1:0 --slow-ms 0 --log "$slow_log" >"$serve_log" 2>&1 &
serve_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^pumpkind listening on //p' "$serve_log" | head -1)
    [ -n "$addr" ] && break
    kill -0 "$serve_pid" 2>/dev/null || { cat "$serve_log"; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { echo "pumpkind never reported its address" >&2; cat "$serve_log"; exit 1; }
timeout 30 ./target/release/pumpkin client --connect "$addr" ping
timeout 30 ./target/release/pumpkin client --connect "$addr" hello
timeout 120 ./target/release/pumpkin client --connect "$addr" repair-module \
    --swap Old.list New.list --names Old.rev,Old.app,Old.rev_involutive
# Error-code mapping: an unknown method must exit with the dedicated
# unknown_method status (14), not a generic failure.
set +e
timeout 30 ./target/release/pumpkin client --connect "$addr" call frobnicate
rc=$?
set -e
[ "$rc" -eq 14 ] || { echo "client exit code for unknown_method: got $rc, want 14" >&2; exit 1; }

# Observability smoke: a loadgen burst through this daemon, then the
# stats RPC must report non-zero per-method counts with percentiles, the
# Prometheus rendering must carry the counter family, and `pumpkin top`
# must render one frame of the live table.
timeout 300 ./target/release/pumpkin loadgen --connect "$addr" \
    --mode closed --clients 4 --requests 2 --trials 1 --seed 3 >/dev/null
stats_json=$(timeout 30 ./target/release/pumpkin client --connect "$addr" stats --json)
case "$stats_json" in
    *'"schema":"pumpkin-serve-stats/1"'*) ;;
    *) echo "stats: missing schema: $stats_json" >&2; exit 1 ;;
esac
echo "$stats_json" | grep -Eq '"repair(_module)?":\{"count":[1-9]' || {
    echo "stats: no per-method counts after the loadgen burst: $stats_json" >&2; exit 1; }
echo "$stats_json" | grep -q '"p99_ns":' || {
    echo "stats: no percentile fields: $stats_json" >&2; exit 1; }
timeout 30 ./target/release/pumpkin client --connect "$addr" stats --prometheus \
    | grep -q '^pumpkin_requests_total{method=' || {
    echo "stats --prometheus: no counter samples" >&2; exit 1; }
top_out=$(timeout 30 ./target/release/pumpkin top --connect "$addr" --count 1 --interval-ms 100)
case "$top_out" in
    *METHOD*repair*) ;;
    *) echo "pumpkin top rendered no method table: $top_out" >&2; exit 1 ;;
esac
# Lifecycle ids: every reply frame (down to a bare ping) echoes req_id.
ping_host=${addr%:*}; ping_port=${addr##*:}
exec 3<>"/dev/tcp/$ping_host/$ping_port"
printf '{"id":1,"method":"ping"}\n' >&3
IFS= read -r ping_reply <&3
exec 3<&- 3>&-
case "$ping_reply" in
    *'"req_id":'*) ;;
    *) echo "ping reply carries no req_id: $ping_reply" >&2; exit 1 ;;
esac

timeout 30 ./target/release/pumpkin client --connect "$addr" shutdown
wait "$serve_pid" || { echo "pumpkind exited nonzero" >&2; cat "$serve_log"; exit 1; }
# The slow log must have one structured line per request, and those lines
# must satisfy the trace schema (serve_slow is a first-class event kind).
grep -q '"kind":"serve_slow"' "$slow_log" || {
    echo "slow log has no serve_slow lines" >&2; cat "$slow_log"; exit 1; }
grep -q '"queue_wait_ns":' "$slow_log" || {
    echo "slow log lines carry no lifecycle breakdown" >&2; cat "$slow_log"; exit 1; }
scripts/trace_lint.sh "$slow_log"
rm -f "$serve_log" "$slow_log"

echo "==> example: serve_roundtrip (in-process daemon round trip)"
timeout 300 cargo run -q --release --locked --example serve_roundtrip >/dev/null

# Watch-mode smoke: run `pumpkin watch` on a one-constant file, touch the
# constant between its two runs, and assert the second run's incremental
# accounting re-lifted only the touch — everything else (the 13-constant
# swap module) skipped. `skipped >= 11` leaves headroom for work-list
# composition changes without letting "incremental re-runs everything"
# slip through.
echo "==> watch smoke (touch one constant, assert skipped >= 11)"
watch_dir=$(mktemp -d)
watch_pi="$watch_dir/mine.pi"
watch_log="$watch_dir/watch.log"
echo 'Definition Old.mine : nat := O.' >"$watch_pi"
timeout 120 ./target/release/pumpkin watch --max-runs 2 --poll-ms 100 \
    --cache-dir "$watch_dir/cache" "$watch_pi" >"$watch_log" 2>&1 &
watch_pid=$!
for _ in $(seq 1 100); do
    grep -q 'watch: run 1:' "$watch_log" && break
    sleep 0.1
done
grep -q 'watch: run 1:' "$watch_log" || { echo "watch never completed run 1" >&2; cat "$watch_log"; exit 1; }
sleep 0.3 # a fresh mtime, even on coarse filesystem clocks
echo 'Definition Old.mine : nat := S O.' >"$watch_pi"
wait "$watch_pid" || { echo "watch exited nonzero" >&2; cat "$watch_log"; exit 1; }
grep 'watch: incremental:' "$watch_log"
skipped=$(sed -n 's/.*skipped=\([0-9]*\)$/\1/p' "$watch_log" | tail -1)
[ -n "$skipped" ] && [ "$skipped" -ge 11 ] || {
    echo "watch smoke: second run skipped=${skipped:-none}, want >= 11" >&2
    cat "$watch_log"
    exit 1
}
rm -rf "$watch_dir"

# Automatic-search smoke: a known-good module must be accepted by the
# first checked candidate (exit 0, a winner named in the summary); a
# module no candidate can repair (a name collision) must exhaust the
# enumeration, exit with the dedicated auto_exhausted status (23), and
# leave a minimized reproducer on disk via --emit-repro.
echo "==> auto smoke (known-good accepts, known-bad minimizes)"
auto_dir=$(mktemp -d)
echo 'Definition Old.mine : nat := O.' >"$auto_dir/good.pi"
good_out=$(timeout 120 ./target/release/pumpkin auto --names Old.rev,Old.app "$auto_dir/good.pi")
case "$good_out" in
    *'auto: accepted'*) ;;
    *) echo "auto smoke: known-good module was not accepted: $good_out" >&2; exit 1 ;;
esac
{
    echo 'Definition New.check_clash : nat := O.'
    echo 'Definition Old.check_clash : forall (T : Type 1), Old.list T -> Old.list T := fun (T : Type 1) (l : Old.list T) => l.'
} >"$auto_dir/bad.pi"
set +e
timeout 120 ./target/release/pumpkin auto --names Old.rev,Old.app,Old.length \
    --emit-repro "$auto_dir/repro.pi" "$auto_dir/bad.pi" >"$auto_dir/bad.log" 2>&1
rc=$?
set -e
[ "$rc" -eq 23 ] || { echo "auto smoke: known-bad exit code: got $rc, want 23" >&2; cat "$auto_dir/bad.log"; exit 1; }
grep -q 'auto: wrote reproducer (1 of 4 constants)' "$auto_dir/bad.log" || {
    echo "auto smoke: no minimized reproducer reported" >&2; cat "$auto_dir/bad.log"; exit 1; }
grep -q 'Definition Old.check_clash' "$auto_dir/repro.pi" || {
    echo "auto smoke: reproducer does not pin the colliding constant" >&2; cat "$auto_dir/repro.pi"; exit 1; }
rm -rf "$auto_dir"

# Smoke-run the parallel-repair + observability bench rows so scheduler or
# probe regressions surface here, not only in full EXPERIMENTS.md runs,
# plus the service rows: the cross-run lift cache cold vs warm (the guard
# asserts warm is at least 5x faster), the daemon round-trip latency, and
# the PR 6 batch-amortization pair (the guard asserts one repair_batch
# frame over the 13-constant module costs at most 0.8x of 13 individual
# repair RPCs). The run writes a pumpkin-bench/v1 JSON report that the
# guard gates row by row against the most recent committed baseline.
# The scaling_term_size rows join the report for PR 7: the hash-consing +
# NbE-conversion work is gated against a hard in-run ceiling (see
# bench_guard.sh) as well as the committed-baseline comparison. PR 8 adds
# the persist_cache/incremental row: a session-resident incremental
# repair after one touch must cost at most 0.3x of the full warm repair.
# PR 9 threads lifecycle timestamps and per-method histograms through the
# daemon always-on; the shared-row comparison against the PR 8 baseline
# is what bounds that overhead. PR 10 adds the auto_search rows: the
# in-run guard asserts the failure-cache-warmed enumeration costs at most
# 0.5x of the cold one.
echo "==> bench: repair_parallel + trace_overhead + persist_cache + serve + scaling + auto rows → BENCH_pr10.json"
# Absolute path: cargo runs the bench binary with cwd = the package dir.
# Sample size 9: the batch-vs-rpc in-run gate needs a stable median on a
# noisy single-CPU container.
cargo bench -p pumpkin-bench --locked --bench ablation -- \
    --sample-size 9 \
    --filter repair_parallel/jobs=1,trace_overhead,persist_cache,serve_roundtrip,repair_batch,scaling_term_size,auto_search \
    --json "$(pwd)/BENCH_pr10.json"

# Loadgen smoke: a seed-replayable closed-loop run against a self-hosted
# worker-pool daemon; its serve_load/{p50,p95,p99,throughput} rows join
# the same report (the header line of the loadgen output is dropped —
# BENCH_pr10.json already has one). --server-stats adds the daemon's own
# view of the same load (serve_load/server_*), which the guard compares
# against the client-side tail. No --fail-rate here: these rows must stay
# workload-comparable with the committed baseline report.
echo "==> loadgen smoke (closed loop, 16 clients) → serve_load rows"
loadgen_json=$(mktemp)
timeout 300 ./target/release/pumpkin loadgen \
    --mode closed --clients 16 --requests 4 --workers 2 --seed 7 \
    --server-stats --json "$loadgen_json"
tail -n +2 "$loadgen_json" >> BENCH_pr10.json

# A second run mixes in 25% broken modules (repair_auto requests whose
# expected auto_exhausted replies are completions). Only its
# serve_load/auto_* rows join the report: its classic rows would
# duplicate the clean run's ids, and its server-side histograms fold the
# expensive auto requests in with everything else, so neither is
# comparable to the baseline.
echo "==> loadgen smoke (closed loop, 16 clients, 25% broken-module mix) → serve_load/auto rows"
timeout 300 ./target/release/pumpkin loadgen \
    --mode closed --clients 16 --requests 4 --workers 2 --seed 7 \
    --fail-rate 0.25 --json "$loadgen_json"
grep '"id":"serve_load/auto_' "$loadgen_json" >> BENCH_pr10.json
rm -f "$loadgen_json"

echo "==> bench guard (auto baseline)"
scripts/bench_guard.sh BENCH_pr10.json

echo "==> all checks passed"
