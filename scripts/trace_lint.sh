#!/usr/bin/env bash
# Trace schema lint: every committed golden JSON-lines trace (including
# the versioned `prov` event family) must parse with zero malformed lines
# and zero unknown event kinds. Backed by `pumpkin trace-report --lint`
# (crates/trace/src/report.rs); schema in DESIGN.md §11–12.
#
# Usage: trace_lint.sh [FILE...]   (defaults to tests/golden/*.jsonl)
set -euo pipefail
cd "$(dirname "$0")/.."

pumpkin=target/release/pumpkin
if [ ! -x "$pumpkin" ]; then
    pumpkin=target/debug/pumpkin
fi
if [ ! -x "$pumpkin" ]; then
    echo "trace_lint: no pumpkin binary; run cargo build first" >&2
    exit 1
fi

files=("$@")
if [ ${#files[@]} -eq 0 ]; then
    files=(tests/golden/*.jsonl)
fi

status=0
for f in "${files[@]}"; do
    echo "==> trace_lint: $f"
    if ! "$pumpkin" trace-report --lint "$f"; then
        status=1
    fi
done
exit $status
