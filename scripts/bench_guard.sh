#!/usr/bin/env bash
# Bench regression guard: compares the `repair_parallel/jobs=1` median (the
# tentpole swap_list_module workload with the trace sink disabled) in a
# fresh pumpkin-bench/v1 JSON report against a committed baseline, and the
# in-run `trace_overhead/{off,on}` pair.
#
# Tolerance: 25%. The honest target for disabled-sink overhead is ≤ 2%
# (EXPERIMENTS.md reports the measured number), but this gate runs on a
# single-CPU container where run-to-run medians of a ~2 ms workload swing
# by double-digit percents, so a 2% CI assertion would be flaky by
# construction. The guard exists to catch real regressions (a probe left
# enabled, an accidental clone on the hot path), which show up well above
# noise.
#
# Usage: bench_guard.sh NEW.json BASELINE.json
set -euo pipefail

new=${1:?usage: bench_guard.sh NEW.json BASELINE.json}
base=${2:?usage: bench_guard.sh NEW.json BASELINE.json}

median() { # median FILE ID -> median_ns, empty if the row is absent
    grep -F "\"id\":\"$2\"" "$1" | sed -n 's/.*"median_ns":\([0-9]*\).*/\1/p'
}

id='repair_parallel/jobs=1'
n=$(median "$new" "$id")
b=$(median "$base" "$id")
if [ -z "$n" ] || [ -z "$b" ]; then
    echo "bench_guard: missing '$id' row (new='$n' baseline='$b')" >&2
    exit 1
fi
limit=$((b + b / 4))
echo "bench_guard: $id median ${n} ns vs baseline ${b} ns (limit ${limit} ns)"
if [ "$n" -gt "$limit" ]; then
    echo "bench_guard: REGRESSION: $id is >25% over the committed baseline" >&2
    exit 1
fi

# Disabled-sink overhead, measured within one invocation so both arms see
# the same machine state: trace_overhead/off must stay within 25% of the
# jobs=1 row it duplicates (they are the same workload; any real gap means
# the no-op probes stopped being no-ops).
off=$(median "$new" 'trace_overhead/off')
if [ -n "$off" ]; then
    olimit=$((n + n / 4))
    echo "bench_guard: trace_overhead/off median ${off} ns vs jobs=1 ${n} ns (limit ${olimit} ns)"
    if [ "$off" -gt "$olimit" ]; then
        echo "bench_guard: REGRESSION: disabled-sink overhead exceeds 25%" >&2
        exit 1
    fi
fi

echo "bench_guard: ok"
