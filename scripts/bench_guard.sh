#!/usr/bin/env bash
# Bench regression guard over pumpkin-bench/v1 JSON reports.
#
# Gates EVERY benchmark id present in both the fresh report and the
# baseline: each shared row's median must stay within 25% of the
# committed number. Rows only in one file are reported but not fatal
# (benchmarks come and go across PRs).
#
# Baseline selection: pass one explicitly, or the guard picks the most
# recent committed BENCH_*.json (version sort), excluding the fresh
# report itself.
#
# Tolerance: 25%. The honest target for disabled-sink overhead is ≤ 2%
# (EXPERIMENTS.md reports the measured number), but this gate runs on a
# single-CPU container where run-to-run medians of a ~2 ms workload swing
# by double-digit percents, so a 2% CI assertion would be flaky by
# construction. The guard exists to catch real regressions (a probe left
# enabled, an accidental clone on the hot path), which show up well above
# noise.
#
# Usage: bench_guard.sh NEW.json [BASELINE.json]
set -euo pipefail
cd "$(dirname "$0")/.."

new=${1:?usage: bench_guard.sh NEW.json [BASELINE.json]}
base=${2:-}

if [ -z "$base" ]; then
    # Most recent committed baseline: highest BENCH_*.json by version
    # sort that is not the report under test.
    base=$(ls BENCH_*.json 2>/dev/null | grep -Fxv "$(basename "$new")" | sort -V | tail -1 || true)
    if [ -z "$base" ]; then
        echo "bench_guard: no committed BENCH_*.json baseline found" >&2
        exit 1
    fi
fi
echo "bench_guard: comparing $new against baseline $base"

ids() { sed -n 's/.*"id":"\([^"]*\)".*/\1/p' "$1"; }
median() { # median FILE ID -> median_ns, empty if the row is absent
    grep -F "\"id\":\"$2\"" "$1" | sed -n 's/.*"median_ns":\([0-9]*\).*/\1/p' | head -1
}

shared=0
failures=0
while IFS= read -r id; do
    n=$(median "$new" "$id")
    if [ -z "$n" ]; then
        echo "bench_guard: note: '$id' only in baseline (skipped)"
        continue
    fi
    b=$(median "$base" "$id")
    shared=$((shared + 1))
    limit=$((b + b / 4))
    echo "bench_guard: $id median ${n} ns vs baseline ${b} ns (limit ${limit} ns)"
    if [ "$n" -gt "$limit" ]; then
        echo "bench_guard: REGRESSION: $id is >25% over the committed baseline" >&2
        failures=$((failures + 1))
    fi
done < <(ids "$base")

while IFS= read -r id; do
    if [ -z "$(median "$base" "$id")" ]; then
        echo "bench_guard: note: '$id' only in $new (no baseline yet)"
    fi
done < <(ids "$new")

if [ "$shared" -eq 0 ]; then
    echo "bench_guard: no shared benchmark rows between $new and $base" >&2
    exit 1
fi

# Disabled-sink overhead, measured within one invocation so both arms see
# the same machine state: trace_overhead/off must stay within 25% of the
# jobs=1 row it duplicates (they are the same workload; any real gap means
# the no-op probes stopped being no-ops).
j1=$(median "$new" 'repair_parallel/jobs=1')
off=$(median "$new" 'trace_overhead/off')
if [ -n "$j1" ] && [ -n "$off" ]; then
    olimit=$((j1 + j1 / 4))
    echo "bench_guard: trace_overhead/off median ${off} ns vs jobs=1 ${j1} ns (limit ${olimit} ns)"
    if [ "$off" -gt "$olimit" ]; then
        echo "bench_guard: REGRESSION: disabled-sink overhead exceeds 25%" >&2
        failures=$((failures + 1))
    fi
fi
# Same in-run comparison for the provenance recorder, against the `off`
# arm (the identical workload measured adjacently in the same invocation;
# the jobs=1 row runs earlier in the binary and carries ordering bias):
# recorder + site rendering must stay within 25% of the plain run.
prov=$(median "$new" 'trace_overhead/prov')
if [ -n "$off" ] && [ -n "$prov" ]; then
    plimit=$((off + off / 4))
    echo "bench_guard: trace_overhead/prov median ${prov} ns vs off ${off} ns (limit ${plimit} ns)"
    if [ "$prov" -gt "$plimit" ]; then
        echo "bench_guard: REGRESSION: provenance recorder overhead exceeds 25%" >&2
        failures=$((failures + 1))
    fi
fi

# The persistent lift cache's reason to exist, asserted in-run: replaying
# serialized lifted declarations from a warm cache directory must be at
# least 5x faster than lifting into a cold one (both rows repair the same
# module in the same invocation, so machine noise cancels).
cold=$(median "$new" 'persist_cache/cold')
warm=$(median "$new" 'persist_cache/warm')
if [ -n "$cold" ] && [ -n "$warm" ]; then
    echo "bench_guard: persist_cache warm ${warm} ns vs cold ${cold} ns (need warm*5 <= cold)"
    if [ $((warm * 5)) -gt "$cold" ]; then
        echo "bench_guard: REGRESSION: warm persist-cache repair is not 5x faster than cold" >&2
        failures=$((failures + 1))
    fi
fi

# The incremental layer's reason to exist, asserted in-run: a
# session-resident incremental repair after touching 1 of the module's 13
# constants (diff digests, re-lift the touch, green-reuse the rest) must
# cost at most 0.3x of the full warm repair measured in the same
# invocation.
incr=$(median "$new" 'persist_cache/incremental')
if [ -n "$warm" ] && [ -n "$incr" ]; then
    echo "bench_guard: persist_cache incremental ${incr} ns vs warm ${warm} ns (need incr*10 <= warm*3)"
    if [ $((incr * 10)) -gt $((warm * 3)) ]; then
        echo "bench_guard: REGRESSION: incremental repair is not <=0.3x of a full warm repair" >&2
        failures=$((failures + 1))
    fi
fi

# Batch amortization, asserted in-run: one repair_batch frame over the
# 13-constant swap module must cost at most 0.8x of 13 individual repair
# RPCs (same repairs, same invocation — the delta is framing, connects,
# and queue handoffs the batch saves).
rpc13=$(median "$new" 'repair_batch/rpc13')
batch13=$(median "$new" 'repair_batch/batch13')
if [ -n "$rpc13" ] && [ -n "$batch13" ]; then
    echo "bench_guard: repair_batch batch13 ${batch13} ns vs rpc13 ${rpc13} ns (need batch13 <= 0.8 * rpc13)"
    if [ $((batch13 * 10)) -gt $((rpc13 * 8)) ]; then
        echo "bench_guard: REGRESSION: repair_batch no longer amortizes 13 RPCs to <=0.8x" >&2
        failures=$((failures + 1))
    fi
fi

# The automatic search's process-wide failure cache, asserted in-run:
# re-searching a module whose candidate failures were already recorded
# (auto_search/warm) must cost at most 0.5x of the cold enumeration run
# in the same invocation. In practice the warm row skips every kernel
# probe and lands orders of magnitude under the cold one; the 0.5x gate
# catches the cache being bypassed, not its exact payoff.
auto_cold=$(median "$new" 'auto_search/cold')
auto_warm=$(median "$new" 'auto_search/warm')
if [ -n "$auto_cold" ] && [ -n "$auto_warm" ]; then
    echo "bench_guard: auto_search warm ${auto_warm} ns vs cold ${auto_cold} ns (need warm*2 <= cold)"
    if [ $((auto_warm * 2)) -gt "$auto_cold" ]; then
        echo "bench_guard: REGRESSION: failure-cache-warmed auto search is not 2x faster than cold" >&2
        failures=$((failures + 1))
    fi
fi

# The hash-consing + NbE payoff, asserted in-run against a fixed ceiling:
# scaling_term_size/list_len_64 measured 14,941,814 ns median under the
# pre-interning kernel (Arc-per-node terms, whnf-rewriting conversion;
# sample-size 9, this container). The refactor must at least halve that.
# A hard constant rather than a committed-baseline row because the old
# kernel no longer exists to re-measure against.
len64=$(median "$new" 'scaling_term_size/list_len_64')
if [ -n "$len64" ]; then
    pre_refactor=14941814
    ceiling=$((pre_refactor / 2))
    echo "bench_guard: scaling_term_size/list_len_64 ${len64} ns (need <= ${ceiling} ns = 0.5 * pre-refactor ${pre_refactor} ns)"
    if [ "$len64" -gt "$ceiling" ]; then
        echo "bench_guard: REGRESSION: list_len_64 repair no longer >=2x faster than the pre-interning kernel" >&2
        failures=$((failures + 1))
    fi
fi

# Loadgen sanity, asserted in-run: when a report carries serve_load rows
# they must be complete (p50/p95/p99/throughput), nonzero, and ordered —
# a zero percentile or p50 > p99 means the generator measured nothing.
sl_p50=$(median "$new" 'serve_load/p50')
if [ -n "$sl_p50" ]; then
    sl_p95=$(median "$new" 'serve_load/p95')
    sl_p99=$(median "$new" 'serve_load/p99')
    sl_tput=$(median "$new" 'serve_load/throughput')
    echo "bench_guard: serve_load p50 ${sl_p50} ns, p95 ${sl_p95:-MISSING} ns, p99 ${sl_p99:-MISSING} ns, ${sl_tput:-MISSING} ns/req"
    if [ -z "$sl_p95" ] || [ -z "$sl_p99" ] || [ -z "$sl_tput" ]; then
        echo "bench_guard: REGRESSION: serve_load rows are incomplete" >&2
        failures=$((failures + 1))
    elif [ "$sl_p50" -eq 0 ] || [ "$sl_tput" -eq 0 ] ||
        [ "$sl_p50" -gt "$sl_p95" ] || [ "$sl_p95" -gt "$sl_p99" ]; then
        echo "bench_guard: REGRESSION: serve_load percentiles are zero or unordered" >&2
        failures=$((failures + 1))
    fi
fi

# Broken-module mix sanity (loadgen --fail-rate): when the report carries
# serve_load/auto_* rows, the repair_auto latencies behind them must be
# nonzero and ordered — a zero p50 means the exhaustion replies were
# dropped as errors instead of measured as completions.
al_p50=$(median "$new" 'serve_load/auto_p50')
if [ -n "$al_p50" ]; then
    al_p99=$(median "$new" 'serve_load/auto_p99')
    echo "bench_guard: serve_load auto_p50 ${al_p50} ns, auto_p99 ${al_p99:-MISSING} ns"
    if [ -z "$al_p99" ] || [ "$al_p50" -eq 0 ] || [ "$al_p50" -gt "$al_p99" ]; then
        echo "bench_guard: REGRESSION: serve_load auto rows are missing, zero, or unordered" >&2
        failures=$((failures + 1))
    fi
fi

# Server-vs-client tail, asserted in-run when the report carries the
# daemon's own view (loadgen --server-stats): the server measures each
# request from frame parse to reply write, which excludes the client's
# connects, busy-retry backoffs, and network time — so its p99 must not
# exceed the client's. The daemon's histograms are log₂-bucketed and
# quantiles are bucket midpoints (up to √2 over the exact value), so the
# gate allows a 1.5x factor: it catches a broken lifecycle clock (server
# "latency" including time the client never saw), not bucket granularity.
srv_p99=$(median "$new" 'serve_load/server_p99')
if [ -n "$srv_p99" ] && [ -n "${sl_p99:-}" ]; then
    srv_q99=$(median "$new" 'serve_load/server_queue_p99')
    echo "bench_guard: serve_load server_p99 ${srv_p99} ns vs client p99 ${sl_p99} ns (need server*2 <= client*3); server_queue_p99 ${srv_q99:-MISSING} ns"
    if [ -z "$srv_q99" ] || [ "$srv_q99" -eq 0 ]; then
        echo "bench_guard: REGRESSION: server-side queue-wait percentiles missing or zero" >&2
        failures=$((failures + 1))
    fi
    if [ $((srv_p99 * 2)) -gt $((sl_p99 * 3)) ]; then
        echo "bench_guard: REGRESSION: server-side p99 exceeds the client-side p99 (beyond bucket granularity)" >&2
        failures=$((failures + 1))
    fi
    if [ "$srv_q99" -gt "$srv_p99" ]; then
        echo "bench_guard: REGRESSION: server queue-wait p99 exceeds server latency p99" >&2
        failures=$((failures + 1))
    fi
fi

if [ "$failures" -gt 0 ]; then
    echo "bench_guard: $failures regression(s)" >&2
    exit 1
fi
echo "bench_guard: ok ($shared shared row(s) gated)"
