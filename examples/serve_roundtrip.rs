//! Round-trip against a live pumpkind: start the daemon in-process,
//! repair a module over the wire, ask it to explain one repair, then
//! shut it down gracefully.
//!
//! The same protocol works against an external daemon — swap the
//! in-process server for `pumpkin serve --listen 127.0.0.1:7717` and
//! point [`Client::connect`] at it.
//!
//! Run with `cargo run --example serve_roundtrip`.

use pumpkin_serve::{Client, Server, ServerConfig};
use pumpkin_wire::{LiftSpec, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A throwaway daemon on a kernel-assigned port, two workers.
    let server = Server::bind(ServerConfig {
        jobs: 2,
        ..ServerConfig::default()
    })?;
    let addr = server.local_addr()?.to_string();
    let daemon = std::thread::spawn(move || server.run());
    println!("pumpkind listening on {addr}\n");

    let mut client = Client::connect(&addr)?;
    let pong = client.call("ping", Value::Obj(vec![]))?;
    println!("ping -> {pong}\n");

    // Repair the whole Old.* list module across the constructor swap.
    let spec = LiftSpec::swap("Old.list", "New.list", "Old.", "New.");
    let names: Vec<Value> = pumpkin_stdlib::swap::OLD_MODULE_CONSTANTS
        .iter()
        .map(|n| Value::str(*n))
        .collect();
    println!(
        "== repair_module: {} constants across the swap ==",
        names.len()
    );
    let result = client.call(
        "repair_module",
        Value::Obj(vec![
            ("lifting".into(), spec.to_value()),
            ("names".into(), Value::Arr(names)),
        ]),
    )?;
    let report = result.get("report").expect("reply carries a report");
    if let Some(Value::Arr(pairs)) = report.get("repaired") {
        for pair in pairs {
            if let Value::Arr(p) = pair {
                println!(
                    "  repaired {} -> {}",
                    p[0].as_str().unwrap_or("?"),
                    p[1].as_str().unwrap_or("?")
                );
            }
        }
    }
    let stat = |k: &str| report.get(k).and_then(Value::as_u64).unwrap_or(0);
    println!(
        "  schedule: {} waves, max width {}; lift cache {} hits / {} misses; {:.2} ms\n",
        stat("waves"),
        stat("max_width"),
        stat("cache_hits"),
        stat("cache_misses"),
        stat("wall_ns") as f64 / 1e6,
    );

    // Ask the daemon why one of those repairs looks the way it does.
    println!("== explain: Old.rev across the swap ==");
    let result = client.call(
        "explain",
        Value::Obj(vec![
            ("lifting".into(), spec.to_value()),
            ("name".into(), Value::str("Old.rev")),
        ]),
    )?;
    if let Some(text) = result.get("explanation").and_then(Value::as_str) {
        println!("{text}");
    }

    // Cumulative service-side metrics for everything this daemon ran.
    let result = client.call(
        "metrics",
        Value::Obj(vec![("canonical".into(), Value::Bool(false))]),
    )?;
    if let Some(text) = result.get("text").and_then(Value::as_str) {
        println!("== daemon metrics ==\n{text}");
    }

    let reply = client.call("shutdown", Value::Obj(vec![]))?;
    println!("shutdown -> {reply}");
    daemon.join().expect("daemon thread")?;
    println!("daemon drained cleanly");
    Ok(())
}
