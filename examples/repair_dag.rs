//! Prints the constant-level dependency DAG of the swap-list module repair
//! as Graphviz DOT, so the wavefront scheduler's achievable width is
//! inspectable (`cargo run --example repair_dag | dot -Tsvg > dag.svg`).
//!
//! Nodes are grouped `rank=same` per wave; edges point dependency →
//! dependent. The scheduling summary (waves, widths, merge time, per-worker
//! cache hit rates) goes to stderr so stdout stays valid DOT.

use pumpkin_pi::*;

fn main() -> pumpkin_core::Result<()> {
    let mut env = pumpkin_stdlib::std_env();
    let report = case_studies::swap_list_module_parallel(&mut env, pumpkin_core::default_jobs())?;
    eprintln!("schedule: {}", report.schedule);
    eprintln!(
        "{} constants repaired across {} waves",
        report.repaired.len(),
        report.schedule.waves
    );
    print!("{}", report.dag_dot());
    Ok(())
}
