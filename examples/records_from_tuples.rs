//! The industrial (Galois) workflow (paper §6.4, Fig. 17).
//!
//! The solver-aided compiler emits functions over anonymous nested tuples;
//! the proof engineer ports them to named records, proves lemmas there, and
//! ports the proofs *back* to the generated representation:
//!
//! 1. `Repair Connection Record.Connection in cork` — readable `cork`;
//! 2. prove `corkLemma` over records (here: ported forward too);
//! 3. `Repair Record.Connection Connection in corkLemma` — back to tuples.
//!
//! Run with `cargo run --example records_from_tuples`.

use pumpkin_pi::*;

fn main() -> pumpkin_core::Result<()> {
    let mut env = pumpkin_stdlib::std_env();
    let projs = pumpkin_core::search::tuple_record::connection_projs();

    println!("== Step 1: tuples → records ==");
    let fwd = pumpkin_core::search::tuple_record::configure_to_record(
        &mut env,
        &"Connection".into(),
        &"Record.Connection".into(),
        &projs,
        pumpkin_core::NameMap::prefix("", "Record."),
    )?;
    let mut st = pumpkin_core::LiftState::new();
    let cork = Repairer::new(&fwd)
        .state(&mut st)
        .run_one(&mut env, &"cork".into())?;
    let decl = env.const_decl(&cork).unwrap();
    println!(
        "{cork} : {}\n  := {}",
        pumpkin_lang::pretty(&env, &decl.ty),
        pumpkin_lang::pretty(&env, decl.body.as_ref().unwrap())
    );

    println!("\n== Step 2: the record-level lemma ==");
    let lemma = Repairer::new(&fwd)
        .state(&mut st)
        .run_one(&mut env, &"corkLemma".into())?;
    let decl = env.const_decl(&lemma).unwrap();
    println!("{lemma} :\n  {}", pumpkin_lang::pretty(&env, &decl.ty));
    pumpkin_core::repair::check_source_free(&env, &fwd, &lemma)?;
    println!("(mentions `corked`, not `fst (snd …)` — human-readable)");

    println!("\n== Step 3: records → tuples (round trip) ==");
    let back = pumpkin_core::search::tuple_record::configure_to_tuple(
        &mut env,
        &"Record.Connection".into(),
        &"Connection".into(),
        &projs,
        pumpkin_core::NameMap::prefix("Record.", "Tup."),
    )?;
    let mut st2 = pumpkin_core::LiftState::new();
    // Stop the round trip at the function boundary.
    st2.map_constant("Record.cork", "cork");
    let round = Repairer::new(&back)
        .state(&mut st2)
        .run_one(&mut env, &lemma)?;
    let round_ty = env.const_decl(&round).unwrap().ty.clone();
    println!("{round} :\n  {}", pumpkin_lang::pretty(&env, &round_ty));
    let orig_ty = env.const_decl(&"corkLemma".into()).unwrap().ty.clone();
    println!(
        "\nround-tripped statement is convertible with the original: {}",
        pumpkin_kernel::conv::conv(&env, &orig_ty, &round_ty)
    );

    // Behaviour check: Record.cork increments corked.
    use pumpkin_kernel::reduce::normalize;
    let rec = pumpkin_lang::term(
        &env,
        "Record.cork (MkConnection true (bvNat O) (bvNat O) \
         (pair word word (bvNat O) (bvNat O)) false false (bvNat O) false true)",
    )
    .unwrap();
    let corked = pumpkin_lang::term(&env, "corked").unwrap();
    let t = pumpkin_kernel::term::Term::app(corked, [rec]);
    println!(
        "\ncorked (Record.cork …corked=0…) = {}",
        pumpkin_lang::pretty(&env, &normalize(&env, &t))
    );
    Ok(())
}
