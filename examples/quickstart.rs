//! Quickstart: the paper's §2 running example.
//!
//! Swap the two constructors of `list` (Fig. 1), then run
//! `Repair Old.list New.list in rev_app_distr` and print the repaired
//! statement and the automatically decompiled tactic script (Fig. 2).
//!
//! Run with `cargo run --example quickstart`.

use pumpkin_pi::*;

fn main() -> pumpkin_core::Result<()> {
    // The standard library defines Old.list (nil first) and New.list
    // (cons first), plus the whole Old.* list module.
    let mut env = pumpkin_stdlib::std_env();

    println!("== Configure ==");
    let lifting = pumpkin_core::search::swap::configure(
        &mut env,
        &"Old.list".into(),
        &"New.list".into(),
        pumpkin_core::NameMap::prefix("Old.", "New."),
    )?;
    let eqv = lifting.equivalence.as_ref().expect("auto-configured");
    println!("discovered equivalence (paper Fig. 3):");
    for (label, name) in [
        ("  swap      ", &eqv.f),
        ("  swap⁻¹    ", &eqv.g),
        ("  section   ", &eqv.section),
        ("  retraction", &eqv.retraction),
    ] {
        let ty = env.const_decl(name).unwrap().ty.clone();
        println!("{label} {name} : {}", pumpkin_lang::pretty(&env, &ty));
    }

    println!("\n== Repair Old.list New.list in rev_app_distr ==");
    let mut state = pumpkin_core::LiftState::new();
    let (repaired, validated) =
        repair_decompile_validate(&mut env, &lifting, &mut state, "Old.rev_app_distr")?;
    println!(
        "repaired statement:\n  {} : {}",
        repaired.name,
        pumpkin_lang::pretty(&env, &repaired.ty)
    );
    println!("\nsuggested proof script (cf. paper Fig. 2):");
    println!("Proof.");
    for line in repaired.script_text.lines() {
        println!("  {line}");
    }
    println!("Qed.");
    println!("\nscript re-elaborates and type checks: {validated}");

    // Dependencies were repaired automatically (paper: "the dependencies
    // rev, ++, app_assoc, and app_nil_r have also been updated").
    println!("\ndependencies repaired on demand:");
    let mut deps: Vec<_> = state
        .const_map
        .iter()
        .map(|(a, b)| format!("  {a} ↦ {b}"))
        .collect();
    deps.sort();
    for d in &deps {
        println!("{d}");
    }

    // When we are done, Old.list can be removed: nothing repaired
    // mentions it.
    pumpkin_core::repair::check_source_free(&env, &lifting, &repaired.name)?;
    println!("\nno repaired constant refers to Old.list — deleting the old module…");
    // Remove the equivalence and the old module (reverse declaration
    // order), then the type itself: the environment stays well-typed.
    let eqv = lifting.equivalence.as_ref().unwrap();
    for c in [&eqv.retraction, &eqv.section, &eqv.g, &eqv.f] {
        env.remove(c).map_err(pumpkin_core::RepairError::Kernel)?;
    }
    let order: Vec<_> = env.order().to_vec();
    let mut old: Vec<_> = env
        .constants()
        .filter(|d| d.name.as_str().starts_with("Old."))
        .map(|d| d.name.clone())
        .collect();
    old.sort_by_key(|n| {
        std::cmp::Reverse(
            order
                .iter()
                .position(|r| matches!(r, pumpkin_kernel::env::GlobalRef::Const(c) if c == n)),
        )
    });
    for c in old {
        env.remove(&c).map_err(pumpkin_core::RepairError::Kernel)?;
    }
    env.remove(&"Old.list".into())
        .map_err(pumpkin_core::RepairError::Kernel)?;
    println!("Old.list is gone; New.rev_app_distr still type checks:");
    let t = env.const_decl(&repaired.name).unwrap().ty.clone();
    println!("  {}", pumpkin_lang::pretty(&env, &t));
    Ok(())
}
