//! Unary to binary natural numbers (paper §6.3 — `nonorn.v`), the classic
//! change of inductive structure (Magaud & Bertot 2000) realized with a
//! *manual configuration*.
//!
//! `Repair nat N in add as slow_add` derives slow binary addition with no
//! reference to `nat`; the ι-expanded `add_n_Sm` then repairs to
//! `slow_add_n_Sm`, and the lemma transfers to *fast* binary addition via
//! `add_fast_add` — exactly the paper's workflow.
//!
//! Run with `cargo run --example binary_nat`.

use pumpkin_pi::*;

/// The post-repair development (written by the proof engineer, as in the
/// paper): slow addition agrees with fast addition, so the transported
/// lemma holds of fast addition too.
const FAST_SRC: &str = r#"
(* slow_add n m = N.add n m, by Peano induction on n, rewriting with
   N.peano_rect_succ (the Iota) and N.add_succ_l (paper section 6.3.2). *)
Definition add_fast_add : forall (n m : N), eq N (slow_add n m) (N.add n m) :=
  fun (n m : N) =>
    N.peano_rect
      (fun (x : N) => eq N (slow_add x m) (N.add x m))
      (eq_refl N m)
      (fun (x : N) (ih : eq N (slow_add x m) (N.add x m)) =>
        eq_trans N
          (slow_add (N.succ x) m)
          (N.succ (slow_add x m))
          (N.add (N.succ x) m)
          (N.peano_rect_succ (fun (y : N) => N) m
            (fun (p : N) (ih2 : N) => N.succ ih2) x)
          (eq_trans N
            (N.succ (slow_add x m))
            (N.succ (N.add x m))
            (N.add (N.succ x) m)
            (f_equal N N N.succ (slow_add x m) (N.add x m) ih)
            (eq_sym N (N.add (N.succ x) m) (N.succ (N.add x m))
              (N.add_succ_l x m))))
      n.

(* The transported theorem, over fast binary addition. *)
Definition N.add_n_Sm : forall (n m : N),
    eq N (N.succ (N.add n m)) (N.add n (N.succ m)) :=
  fun (n m : N) =>
    eq_trans N
      (N.succ (N.add n m))
      (N.succ (slow_add n m))
      (N.add n (N.succ m))
      (f_equal N N N.succ (N.add n m) (slow_add n m)
        (eq_sym N (slow_add n m) (N.add n m) (add_fast_add n m)))
      (eq_trans N
        (N.succ (slow_add n m))
        (slow_add n (N.succ m))
        (N.add n (N.succ m))
        (slow_add_n_Sm n m)
        (eq_trans N
          (slow_add n (N.succ m))
          (N.add n (N.succ m))
          (N.add n (N.succ m))
          (add_fast_add n (N.succ m))
          (eq_refl N (N.add n (N.succ m))))).
"#;

fn main() -> pumpkin_core::Result<()> {
    let mut env = pumpkin_stdlib::std_env();

    println!("== Manual configuration (the Configure command, §3.3) ==");
    let names = pumpkin_core::NameMap::prefix("add_n_Sm_expanded", "slow_add_n_Sm")
        .with_rule("add", "slow_add")
        .with_rule("", "Bin.");
    let lifting = pumpkin_core::manual::configure_nat_to_bin(&mut env, names)?;
    println!("DepConstr: N0, N.succ | DepElim: N.peano_rect");
    println!("Iota(1, N): rewrite along N.peano_rect_succ (propositional ι)");
    let eqv = lifting.equivalence.as_ref().unwrap();
    println!("equivalence: {} / {} with checked proofs", eqv.f, eqv.g);

    println!("\n== Repair nat N in add as slow_add ==");
    let mut state = pumpkin_core::LiftState::new();
    let slow_add = Repairer::new(&lifting)
        .state(&mut state)
        .run_one(&mut env, &"add".into())?;
    let decl = env.const_decl(&slow_add).unwrap();
    println!(
        "{slow_add} : {}\n  := {}",
        pumpkin_lang::pretty(&env, &decl.ty),
        pumpkin_lang::pretty(&env, decl.body.as_ref().unwrap())
    );
    pumpkin_core::repair::check_source_free(&env, &lifting, &slow_add)?;
    println!("(no reference to nat remains — tellingly slow, as the paper says)");

    use pumpkin_kernel::reduce::normalize;
    use pumpkin_kernel::term::Term;
    use pumpkin_stdlib::bin::{n_lit, n_value};
    for (a, b) in [(2u64, 3u64), (100, 28)] {
        let t = Term::app(Term::const_("slow_add"), [n_lit(a), n_lit(b)]);
        println!(
            "slow_add {a} {b} = {:?}",
            n_value(&normalize(&env, &t)).unwrap()
        );
    }

    println!("\n== Manual ι-expansion of add_n_Sm (paper §6.3.2) ==");
    pumpkin_core::manual::load_expanded_add_n_sm(&mut env)?;
    println!("add_n_Sm_expanded type checks over nat (explicit nat.iota_succ)");

    println!("\n== Repair nat N in add_n_Sm as slow_add_n_Sm ==");
    let lemma = Repairer::new(&lifting)
        .state(&mut state)
        .run_one(&mut env, &"add_n_Sm_expanded".into())?;
    let decl = env.const_decl(&lemma).unwrap();
    println!("{lemma} :\n  {}", pumpkin_lang::pretty(&env, &decl.ty));
    pumpkin_core::repair::check_source_free(&env, &lifting, &lemma)?;

    println!("\n== Transfer to fast binary addition ==");
    pumpkin_lang::load_source(&mut env, FAST_SRC).map_err(pumpkin_core::RepairError::from)?;
    let decl = env.const_decl(&"N.add_n_Sm".into()).unwrap();
    println!("N.add_n_Sm :\n  {}", pumpkin_lang::pretty(&env, &decl.ty));
    println!("\nall proofs kernel-checked; the whole file repairs in one pass.");
    Ok(())
}
