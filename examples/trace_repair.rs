//! Structured observability, end to end: repair the whole swap-list module
//! through the [`pumpkin_core::Repairer`] front door with trace capture on,
//! then show the three views of the same event stream — the JSON-lines wire
//! form (what `pumpkin --trace out.jsonl` writes), the derived
//! counter/histogram metrics, and the flamegraph-style wave/lift summary.
//!
//! Run with `cargo run --example trace_repair`.

use pumpkin_pi::*;

fn main() -> pumpkin_core::Result<()> {
    let mut env = pumpkin_stdlib::std_env();
    let lifting = pumpkin_core::search::swap::configure(
        &mut env,
        &"Old.list".into(),
        &"New.list".into(),
        pumpkin_core::NameMap::prefix("Old.", "New."),
    )?;

    let report = pumpkin_core::Repairer::new(&lifting)
        .jobs(2)
        .trace(true)
        .run(&mut env, pumpkin_stdlib::swap::OLD_MODULE_CONSTANTS)?;

    println!(
        "repaired {} constants across {} waves\n",
        report.repaired.len(),
        report.schedule.waves
    );

    println!("=== first 10 JSON-lines events (full stream: --trace out.jsonl) ===");
    for e in report.trace_events().iter().take(10) {
        println!("{}", e.to_json());
    }
    println!("… {} events total\n", report.trace_events().len());

    println!("=== metrics registry ===");
    print!("{}", report.metrics().to_text());

    println!("\n=== wave/lift summary ===");
    print!("{}", report.trace_summary());
    Ok(())
}
