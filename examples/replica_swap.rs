//! The REPLICA user-study benchmark (paper §6.1, Fig. 16 — `Swap.v`).
//!
//! The proof engineer swapped `Int` and `Eq` in a seven-constructor term
//! language. Pumpkin Pi discovers *all* type-correct constructor mappings
//! (the desired one plus "all other 23"), presents the name-preserving one
//! first, and repairs the whole development: `size`, `eval`,
//! `swap_eq_args` (+ its involution proof), and the benchmark's key theorem
//! `eval_eq_true_or_false`.
//!
//! Run with `cargo run --example replica_swap`.

use pumpkin_pi::*;

fn main() -> pumpkin_core::Result<()> {
    let mut env = pumpkin_stdlib::std_env();

    println!("== Mapping discovery ==");
    let a = env.inductive(&"Old.Term".into()).unwrap().clone();
    let b = env.inductive(&"New.Term".into()).unwrap().clone();
    let mappings = pumpkin_core::search::swap::discover_mappings(&a, &b);
    println!(
        "{} type-correct constructor mappings discovered (paper: the desired \
         one plus all other 23)",
        mappings.len()
    );
    println!("option 0 (most name-preserving, chosen): {:?}", mappings[0]);

    println!("\n== Configure + Repair module ==");
    let lifting = pumpkin_core::search::swap::configure(
        &mut env,
        &"Old.Term".into(),
        &"New.Term".into(),
        pumpkin_core::NameMap::prefix("Old.", "New."),
    )?;
    let mut state = pumpkin_core::LiftState::new();
    let report = Repairer::new(&lifting).state(&mut state).run(
        &mut env,
        &[
            "Old.size",
            "Old.eval",
            "Old.swap_eq_args",
            "Old.swap_eq_args_involutive",
            "Old.eval_eq_true_or_false",
        ],
    )?;
    for (from, to) in &report.repaired {
        println!("  {from} ↦ {to}");
        pumpkin_core::repair::check_source_free(&env, &lifting, to)?;
    }

    println!("\n== The key theorem, repaired ==");
    let decl = env.const_decl(&"New.eval_eq_true_or_false".into()).unwrap();
    println!(
        "New.eval_eq_true_or_false :\n  {}",
        pumpkin_lang::pretty(&env, &decl.ty)
    );
    let (_, script) =
        pumpkin_tactics::decompile_constant(&env, "New.eval_eq_true_or_false").unwrap();
    let script = pumpkin_tactics::second_pass(&script);
    println!("\nsuggested script:");
    for line in pumpkin_tactics::render(&env, &[], &script).lines() {
        println!("  {line}");
    }
    let ty = decl.ty.clone();
    let ok = pumpkin_tactics::prove(&env, &ty, &script).is_ok();
    println!("script re-elaborates and type checks: {ok}");

    println!("\n== Harder variants (paper §6.1.2) ==");
    // Rename-only: a fresh copy with renamed constructors, identity mapping.
    let renamed: Vec<_> = pumpkin_stdlib::replica::CtorKind::ALL
        .iter()
        .map(|k| (*k, format!("Rn.{}", k.base_name().to_lowercase())))
        .collect();
    env.declare_inductive(pumpkin_stdlib::replica::term_variant("Rn.Term", &renamed))
        .map_err(pumpkin_core::RepairError::Kernel)?;
    let l2 = pumpkin_core::search::swap::configure(
        &mut env,
        &"Old.Term".into(),
        &"Rn.Term".into(),
        pumpkin_core::NameMap::prefix("Old.", "Rn."),
    )?;
    let mut st2 = pumpkin_core::LiftState::new();
    Repairer::new(&l2)
        .state(&mut st2)
        .run(&mut env, &["Old.size", "Old.eval"])?;
    println!("renamed-constructors variant repaired: Rn.size, Rn.eval");

    // Permute >2 constructors + rename at once.
    let mut permuted: Vec<_> = pumpkin_stdlib::replica::canonical_ctors("PR.");
    permuted.swap(2, 5); // Eq <-> Minus
    permuted.swap(3, 4); // Plus <-> Times
    env.declare_inductive(pumpkin_stdlib::replica::term_variant("PR.Term", &permuted))
        .map_err(pumpkin_core::RepairError::Kernel)?;
    let l3 = pumpkin_core::search::swap::configure(
        &mut env,
        &"Old.Term".into(),
        &"PR.Term".into(),
        pumpkin_core::NameMap::prefix("Old.", "PR."),
    )?;
    let mut st3 = pumpkin_core::LiftState::new();
    Repairer::new(&l3).state(&mut st3).run(
        &mut env,
        &["Old.size", "Old.eval", "Old.eval_eq_true_or_false"],
    )?;
    println!("4-cycle permutation variant repaired: PR.size, PR.eval, PR.eval_eq_true_or_false");

    // The 30-constructor Enum stress test.
    env.declare_inductive(pumpkin_stdlib::replica::enum_decl("Enum", 30))
        .map_err(pumpkin_core::RepairError::Kernel)?;
    env.declare_inductive(pumpkin_stdlib::replica::enum_decl("Enum2", 30))
        .map_err(pumpkin_core::RepairError::Kernel)?;
    let e1 = env.inductive(&"Enum".into()).unwrap().clone();
    let e2 = env.inductive(&"Enum2".into()).unwrap().clone();
    let perm: Vec<usize> = (0..30).map(|i| (i + 7) % 30).collect();
    let l4 = pumpkin_core::search::swap::configure_with(
        &mut env,
        &"Enum".into(),
        &"Enum2".into(),
        &perm,
        pumpkin_core::NameMap::prefix("Enum.", "Enum2."),
    )?;
    println!(
        "30-constructor Enum: 30! candidate mappings are type-correct; a rotation \
         by 7 configured and its equivalence checked ({} / {})",
        l4.equivalence.as_ref().unwrap().f,
        l4.equivalence.as_ref().unwrap().g,
    );
    let _ = (e1, e2);
    Ok(())
}
