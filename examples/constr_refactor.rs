//! Constructor factoring (paper §3.1.1, Fig. 4 — `constr_refactor.v`).
//!
//! `I` has constructors `A` and `B`; `J` factors them out to a `bool`
//! hypothesis of a single constructor `makeJ`. After telling Pumpkin Pi
//! which constructor maps to `true` and which to `false`, the De Morgan
//! development over `I` repairs to `J` automatically.
//!
//! Run with `cargo run --example constr_refactor`.

use pumpkin_pi::*;

fn main() -> pumpkin_core::Result<()> {
    let mut env = pumpkin_stdlib::std_env();

    println!("== Configure (A ↦ true, B ↦ false) ==");
    let lifting = pumpkin_core::search::factor::configure_with(
        &mut env,
        &"I".into(),
        &"J".into(),
        [0, 1],
        pumpkin_core::NameMap::prefix("I.", "J."),
    )?;
    let eqv = lifting.equivalence.as_ref().unwrap();
    println!("equivalence: {} / {} with checked proofs", eqv.f, eqv.g);

    println!("\n== Repair I J in neg, and, or, demorgan_1, demorgan_2 ==");
    let mut state = pumpkin_core::LiftState::new();
    for name in ["I.neg", "I.and", "I.or"] {
        let new = Repairer::new(&lifting)
            .state(&mut state)
            .run_one(&mut env, &name.into())?;
        let decl = env.const_decl(&new).unwrap();
        println!(
            "\n{new} : {}\n  := {}",
            pumpkin_lang::pretty(&env, &decl.ty),
            pumpkin_lang::pretty(&env, decl.body.as_ref().unwrap())
        );
    }
    for name in ["I.demorgan_1", "I.demorgan_2"] {
        let (rep, ok) = repair_decompile_validate(&mut env, &lifting, &mut state, name)?;
        println!("\n{} : {}", rep.name, pumpkin_lang::pretty(&env, &rep.ty));
        println!("suggested script (validated: {ok}):");
        for line in rep.script_text.lines() {
            println!("  {line}");
        }
        pumpkin_core::repair::check_source_free(&env, &lifting, &rep.name)?;
    }

    // The repaired functions behave like the originals through the
    // equivalence: spot-check the truth table.
    println!("\ntruth table of J.and (via makeJ):");
    for (x, y) in [
        ("true", "true"),
        ("true", "false"),
        ("false", "true"),
        ("false", "false"),
    ] {
        let t = pumpkin_lang::term(&env, &format!("J.and (makeJ {x}) (makeJ {y})")).unwrap();
        let v = pumpkin_kernel::reduce::normalize(&env, &t);
        println!(
            "  J.and (makeJ {x}) (makeJ {y}) = {}",
            pumpkin_lang::pretty(&env, &v)
        );
    }
    Ok(())
}
