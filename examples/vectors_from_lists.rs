//! Vectors from lists (paper §3.1.2 and §6.2 — `Example.v`).
//!
//! Stage 1 (the Devoid configuration): repair the whole zip development
//! from `list` to `Σ(n : nat). vector T n`, automatically — including the
//! length-invariant lemmas.
//!
//! Stage 2 (the missing link Devoid left manual): use the unpack
//! equivalence `Σ(s : Σ(m). vector T m). π₁ s = n ≃ vector T n` to obtain
//! `zip`, `zip_with`, and `zip_with_is_zip` over **vectors at a particular
//! length**. As the paper says, "it is up to the proof engineer to supply
//! the additional information needed to construct proofs about the
//! refinement": the index invariants come from the repaired length lemmas,
//! and choosing `vzip`'s invariant as the transport of `vzip_with`'s makes
//! the final lemma go through by one equality elimination.
//!
//! Run with `cargo run --example vectors_from_lists`.

use pumpkin_pi::*;

/// Stage-2 source (shared with the tests and benches via the facade).
const AT_INDEX_SRC: &str = pumpkin_pi::case_studies::AT_INDEX_SRC;
fn main() -> pumpkin_core::Result<()> {
    let mut env = pumpkin_stdlib::std_env();

    println!("== Stage 0: smart eliminators (paper §4.4, §6.2.2) ==");
    pumpkin_core::smartelim::packed_list(&mut env)?;
    println!("generated packed_list, packed_list_elim, pzip, pzip_with,");
    println!("and pzip_with_is_zip_val over Σ(l : list T). length l = n");

    println!("\n== Stage 1: Repair module across list ≃ Σ(n). vector n ==");
    let lifting = pumpkin_core::search::ornament::configure(
        &mut env,
        pumpkin_core::NameMap::prefix("", "Sig."),
    )?;
    let mut state = pumpkin_core::LiftState::new();
    let report = Repairer::new(&lifting).state(&mut state).run(
        &mut env,
        &[
            "zip",
            "zip_with",
            "zip_with_is_zip",
            "length",
            "zip_length",
            "zip_with_length",
        ],
    )?;
    for (from, to) in &report.repaired {
        println!("  {from} ↦ {to}");
        pumpkin_core::repair::check_source_free(&env, &lifting, to)?;
    }
    let decl = env.const_decl(&"Sig.zip_with_is_zip".into()).unwrap();
    println!(
        "\nSig.zip_with_is_zip :\n  {}",
        pumpkin_lang::pretty(&env, &decl.ty)
    );

    println!("\n== Stage 2: unpack to vectors at a particular length ==");
    let unpack = pumpkin_core::search::unpack::configure(&mut env)?;
    println!(
        "unpack equivalence checked: {} / {} (section, retraction)",
        unpack.f, unpack.g
    );
    pumpkin_lang::load_source(&mut env, AT_INDEX_SRC).map_err(pumpkin_core::RepairError::from)?;
    let decl = env.const_decl(&"vzip_with_is_zip".into()).unwrap();
    println!(
        "\nfinal lemma (paper §6.2.2):\n  vzip_with_is_zip :\n  {}",
        pumpkin_lang::pretty(&env, &decl.ty)
    );

    // Compute with the at-index functions.
    use pumpkin_kernel::reduce::normalize;
    use pumpkin_kernel::term::Term;
    use pumpkin_stdlib::nat::nat_lit;
    use pumpkin_stdlib::vector::vector_lit;
    let v1 = vector_lit(Term::ind("nat"), &[nat_lit(1), nat_lit(2)]);
    let v2 = vector_lit(Term::ind("nat"), &[nat_lit(3), nat_lit(4)]);
    let zipped = Term::app(
        Term::const_("vzip"),
        [Term::ind("nat"), Term::ind("nat"), nat_lit(2), v1, v2],
    );
    let normal = normalize(&env, &zipped);
    println!(
        "\nvzip [1;2] [3;4] = {}",
        pumpkin_lang::pretty(&env, &normal)
    );
    Ok(())
}
