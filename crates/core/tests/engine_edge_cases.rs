//! Error-path and edge-case tests for the repair engine: misconfiguration,
//! redeclaration, idempotence, axioms, and boundary mappings.

use pumpkin_core::search::{factor, ornament, swap, tuple_record};
use pumpkin_core::{LiftState, NameMap, RepairError, Repairer};
use pumpkin_kernel::term::Term;
use pumpkin_stdlib as stdlib;

#[test]
fn configure_unknown_types_fails_cleanly() {
    let mut env = stdlib::std_env();
    let r = swap::configure(
        &mut env,
        &"NoSuch.list".into(),
        &"New.list".into(),
        NameMap::default(),
    );
    assert!(matches!(r, Err(RepairError::Kernel(_))));
}

#[test]
fn swap_between_different_arity_types_fails() {
    let mut env = stdlib::std_env();
    // nat (2 ctors) vs positive (3 ctors): no mapping exists.
    let r = swap::configure(
        &mut env,
        &"nat".into(),
        &"positive".into(),
        NameMap::default(),
    );
    assert!(matches!(r, Err(RepairError::SearchFailed { .. })));
}

#[test]
fn factor_requires_bool_shaped_target() {
    let mut env = stdlib::std_env();
    // Target is nat (S takes a nat, not a bool) — rejected.
    let r = factor::configure_with(
        &mut env,
        &"I".into(),
        &"nat".into(),
        [0, 1],
        NameMap::default(),
    );
    assert!(matches!(r, Err(RepairError::SearchFailed { .. })));
    // Bad mapping.
    let r = factor::configure_with(
        &mut env,
        &"I".into(),
        &"J".into(),
        [0, 0],
        NameMap::default(),
    );
    assert!(matches!(r, Err(RepairError::BadMapping(_))));
}

#[test]
fn tuple_analysis_rejects_non_tuples() {
    let env = stdlib::std_env();
    let r = tuple_record::analyze_tuple(&env, &"word".into());
    assert!(r.is_err());
}

#[test]
fn ornament_requires_the_list_vector_shapes() {
    let mut env = pumpkin_kernel::env::Env::new();
    stdlib::logic::load(&mut env).unwrap();
    stdlib::nat::load(&mut env).unwrap();
    // `list` is missing entirely.
    let r = ornament::configure(&mut env, NameMap::default());
    assert!(r.is_err());
}

#[test]
fn axioms_repair_to_axioms() {
    let mut env = stdlib::std_env();
    // An assumed statement over Old.list.
    env.assume(
        "Old.mystery",
        pumpkin_lang::term(
            &env,
            "forall (T : Type 1) (l : Old.list T), eq (Old.list T) (Old.rev T (Old.rev T l)) l",
        )
        .unwrap(),
    )
    .unwrap();
    let lifting = swap::configure(
        &mut env,
        &"Old.list".into(),
        &"New.list".into(),
        NameMap::prefix("Old.", "New."),
    )
    .unwrap();
    let mut st = LiftState::new();
    let to = Repairer::new(&lifting)
        .state(&mut st)
        .run_one(&mut env, &"Old.mystery".into())
        .unwrap();
    assert_eq!(to.as_str(), "New.mystery");
    let decl = env.const_decl(&to).unwrap();
    assert!(decl.body.is_none(), "axioms stay axioms");
    assert!(decl.ty.mentions_global(&"New.list".into()));
}

#[test]
fn repair_is_idempotent_per_state() {
    let mut env = stdlib::std_env();
    let lifting = swap::configure(
        &mut env,
        &"Old.list".into(),
        &"New.list".into(),
        NameMap::prefix("Old.", "New."),
    )
    .unwrap();
    let mut st = LiftState::new();
    let a = Repairer::new(&lifting)
        .state(&mut st)
        .run_one(&mut env, &"Old.rev".into())
        .unwrap();
    let b = Repairer::new(&lifting)
        .state(&mut st)
        .run_one(&mut env, &"Old.rev".into())
        .unwrap();
    assert_eq!(a, b);
    // A *fresh* state still succeeds by accepting the identical existing
    // definition.
    let mut st2 = LiftState::new();
    let c = Repairer::new(&lifting)
        .state(&mut st2)
        .run_one(&mut env, &"Old.rev".into())
        .unwrap();
    assert_eq!(a, c);
}

#[test]
fn name_collision_with_different_definition_is_reported() {
    let mut env = stdlib::std_env();
    // Occupy the target name with something else.
    env.define("New.rev", Term::ind("nat"), pumpkin_stdlib::nat::nat_lit(0))
        .unwrap();
    let lifting = swap::configure(
        &mut env,
        &"Old.list".into(),
        &"New.list".into(),
        NameMap::prefix("Old.", "New."),
    )
    .unwrap();
    let mut st = LiftState::new();
    let r = Repairer::new(&lifting)
        .state(&mut st)
        .run_one(&mut env, &"Old.rev".into());
    assert!(matches!(
        r,
        Err(RepairError::Kernel(
            pumpkin_kernel::error::KernelError::Redeclaration(_)
        ))
    ));
}

#[test]
fn repair_module_reports_unknown_constants() {
    let mut env = stdlib::std_env();
    let lifting = swap::configure(
        &mut env,
        &"Old.list".into(),
        &"New.list".into(),
        NameMap::prefix("Old.", "New."),
    )
    .unwrap();
    let mut st = LiftState::new();
    let r = Repairer::new(&lifting)
        .state(&mut st)
        .run(&mut env, &["Old.rev", "Old.nonexistent"]);
    assert!(r.is_err());
}

#[test]
fn map_constant_stops_repair_at_a_boundary() {
    let mut env = stdlib::std_env();
    let lifting = swap::configure(
        &mut env,
        &"Old.list".into(),
        &"New.list".into(),
        NameMap::prefix("Old.", "New."),
    )
    .unwrap();
    // Pretend Old.app already has a hand-written replacement.
    pumpkin_lang::load_source(
        &mut env,
        "Definition my_app : forall (T : Type 1), New.list T -> New.list T -> New.list T :=
           fun (T : Type 1) (l m : New.list T) =>
             elim l : New.list T return (fun (x : New.list T) => New.list T) with
             | fun (t : T) (l' : New.list T) (ih : New.list T) => New.cons T t ih
             | m
             end.",
    )
    .unwrap();
    let mut st = LiftState::new();
    st.map_constant("Old.app", "my_app");
    let to = Repairer::new(&lifting)
        .state(&mut st)
        .run_one(&mut env, &"Old.app_nil_r".into())
        .unwrap();
    let body = env.const_decl(&to).unwrap().body.clone().unwrap();
    assert!(body.mentions_global(&"my_app".into()));
    assert!(
        !env.contains("New.app"),
        "the boundary prevented a fresh New.app"
    );
}

#[test]
fn lift_stats_are_populated() {
    let mut env = stdlib::std_env();
    let lifting = swap::configure(
        &mut env,
        &"Old.list".into(),
        &"New.list".into(),
        NameMap::prefix("Old.", "New."),
    )
    .unwrap();
    let mut st = LiftState::new();
    Repairer::new(&lifting)
        .state(&mut st)
        .run_one(&mut env, &"Old.rev_app_distr".into())
        .unwrap();
    assert!(st.stats.visits > 0);
    assert!(st.stats.constants_lifted >= 5);
    assert!(st.stats.cache_misses > 0);
}
