//! Failure minimization: shrink a failing module repair to a minimal
//! failing sub-module, in the spirit of Gross & Zimmermann's proof-assistant
//! test-case reduction (ITP 2022).
//!
//! When [`crate::auto`]'s candidate search exhausts every configuration,
//! the work list is greedily reduced: drop one constant at a time (in a
//! seed-replayable order via [`pumpkin_testkit::Rng`]) and keep the drop
//! only if the shrunk list still fails *with the original error class*.
//! Dependency structure is replayed through the **recorded**
//! [`crate::schedule::ModuleDag`] — edges are computed once by the failing
//! run and never re-derived here: entries already inside another entry's
//! recorded dependency closure are pruned without consulting the oracle at
//! all (repairing the dependent repairs them on demand).

use std::collections::HashSet;

use pumpkin_kernel::env::Env;
use pumpkin_kernel::name::GlobalName;
use pumpkin_testkit::Rng;

use crate::error::ErrorClass;
use crate::schedule::ModuleDag;

/// A minimal failing sub-module: the evidence attached to
/// [`crate::error::RepairError::AutoExhausted`] and dumped by
/// `pumpkin auto --emit-repro`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Reproducer {
    /// The minimized work list, in the original work-list order.
    pub names: Vec<String>,
    /// The preserved error class (the default candidate's class on the
    /// original module — the shrunk module fails the same way).
    pub class: ErrorClass,
    /// The reduction seed; rerunning the minimizer with the same seed on
    /// the same module replays the identical reduction path.
    pub seed: u64,
    /// Constant count of the original work list.
    pub original: usize,
    /// Oracle invocations the reduction spent.
    pub steps: u64,
}

impl Reproducer {
    /// Renders the reproducer as a standalone vernacular `.pi` module:
    /// every minimized constant's declaration (pretty-printed from `env`,
    /// which must hold the loaded module), prefixed by a comment naming
    /// the preserved error class and the replay seed.
    pub fn to_pi(&self, env: &Env) -> String {
        let mut out = format!(
            "(* minimized reproducer: {} of {} constant(s), error class `{}`, seed {} *)\n",
            self.names.len(),
            self.original,
            self.class,
            self.seed
        );
        for n in &self.names {
            let Ok(decl) = env.const_decl(&GlobalName::new(n.as_str())) else {
                out.push_str(&format!("(* {n}: not present in the environment *)\n"));
                continue;
            };
            let ty = pumpkin_lang::pretty(env, &decl.ty);
            match &decl.body {
                Some(b) => {
                    let body = pumpkin_lang::pretty(env, b);
                    out.push_str(&format!("Definition {n} : {ty} :=\n  {body}.\n"));
                }
                None => out.push_str(&format!("Axiom {n} : {ty}.\n")),
            }
        }
        out
    }
}

/// The recorded-DAG dependency closure of `seeds` (indices into
/// `dag.nodes`), following only the edges the failing run recorded.
fn closure(dag: &ModuleDag, seeds: &[usize]) -> HashSet<usize> {
    let mut seen: HashSet<usize> = seeds.iter().copied().collect();
    let mut stack: Vec<usize> = seeds.to_vec();
    while let Some(i) = stack.pop() {
        for &d in &dag.deps[i] {
            if seen.insert(d) {
                stack.push(d);
            }
        }
    }
    seen
}

/// Greedily shrinks `names` to a minimal sub-list that still fails with
/// `target` according to `oracle` (which returns the failure class of a
/// candidate work list, or `None` when it repairs cleanly).
///
/// `dag` is the dependency DAG **recorded by the failing run** over the
/// full work list; it is only read, never rebuilt. The reduction is
/// deterministic in `seed`.
pub fn minimize(
    names: &[&str],
    dag: &ModuleDag,
    seed: u64,
    target: ErrorClass,
    mut oracle: impl FnMut(&[&str]) -> Option<ErrorClass>,
) -> Reproducer {
    let mut steps = 0u64;
    let mut check = |subset: &[&str]| -> bool {
        steps += 1;
        oracle(subset) == Some(target)
    };

    let index_of = |n: &str| dag.nodes.iter().position(|g| g.as_str() == n);
    let mut current: Vec<&str> = names.to_vec();

    // Phase 1 — closure pruning, no oracle calls: an entry that sits
    // inside another entry's recorded dependency closure is repaired on
    // demand anyway, so it is redundant as a work-list entry. Replayed
    // purely over the recorded edges.
    let mut pruned: Vec<&str> = Vec::new();
    for (k, n) in current.iter().enumerate() {
        let others: Vec<usize> = current
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != k)
            .filter_map(|(_, m)| index_of(m))
            .collect();
        let covered = match index_of(n) {
            Some(i) => {
                let cl = closure(dag, &others);
                cl.contains(&i) && !others.is_empty()
            }
            None => false,
        };
        if !covered {
            pruned.push(n);
        }
    }
    if pruned.len() < current.len() && check(&pruned) {
        current = pruned;
    }

    // Phase 2 — greedy one-at-a-time drops in a seeded order, repeated
    // until a full pass removes nothing (the greedy fixpoint).
    let mut rng = Rng::new(seed);
    loop {
        if current.len() <= 1 {
            break;
        }
        let mut order: Vec<usize> = (0..current.len()).collect();
        // Fisher–Yates with the replayable stream.
        for i in (1..order.len()).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            order.swap(i, j);
        }
        let mut dropped_any = false;
        for &k in &order {
            if current.len() <= 1 {
                break;
            }
            let Some(victim) = current.get(k).copied() else {
                continue;
            };
            let trial: Vec<&str> = current.iter().copied().filter(|n| *n != victim).collect();
            if check(&trial) {
                current = trial;
                dropped_any = true;
                // Indices in `order` refer to the pre-drop list; restart
                // the pass over the shrunk list.
                break;
            }
        }
        if !dropped_any {
            break;
        }
    }

    // Keep the original work-list order in the result.
    let keep: HashSet<&str> = current.iter().copied().collect();
    Reproducer {
        names: names
            .iter()
            .filter(|n| keep.contains(**n))
            .map(|n| (*n).to_string())
            .collect(),
        class: target,
        seed,
        original: names.len(),
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_dag() -> ModuleDag {
        // d -> c -> b -> a (deps point at prerequisites).
        ModuleDag {
            nodes: ["a", "b", "c", "d"].map(GlobalName::new).to_vec(),
            deps: vec![vec![], vec![0], vec![1], vec![2]],
        }
    }

    #[test]
    fn shrinks_to_the_single_culprit() {
        let dag = toy_dag();
        // Failure iff "b" is in the (closure of the) work list.
        let oracle = |subset: &[&str]| {
            subset
                .contains(&"b")
                .then_some(ErrorClass::Kernel)
                .or(subset.contains(&"c").then_some(ErrorClass::Kernel))
                .or(subset.contains(&"d").then_some(ErrorClass::Kernel))
        };
        let r = minimize(&["a", "b", "c", "d"], &dag, 42, ErrorClass::Kernel, oracle);
        assert_eq!(r.names.len(), 1);
        assert_eq!(r.original, 4);
        assert!(r.steps > 0);
    }

    #[test]
    fn reduction_is_seed_replayable() {
        let dag = toy_dag();
        let oracle = |subset: &[&str]| subset.contains(&"c").then_some(ErrorClass::SourceNotFree);
        let a = minimize(
            &["a", "b", "c", "d"],
            &dag,
            7,
            ErrorClass::SourceNotFree,
            oracle,
        );
        let b = minimize(
            &["a", "b", "c", "d"],
            &dag,
            7,
            ErrorClass::SourceNotFree,
            oracle,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn minimizing_a_minimal_module_is_the_identity() {
        let dag = ModuleDag {
            nodes: vec![GlobalName::new("only")],
            deps: vec![vec![]],
        };
        let oracle = |subset: &[&str]| subset.contains(&"only").then_some(ErrorClass::Kernel);
        let r = minimize(&["only"], &dag, 3, ErrorClass::Kernel, oracle);
        assert_eq!(r.names, vec!["only".to_string()]);
        assert_eq!(r.steps, 0, "a singleton has nothing to drop");
    }

    #[test]
    fn drops_that_change_the_error_class_are_rejected() {
        let dag = toy_dag();
        // Without "a" the failure class flips — the minimizer must keep it.
        let oracle = |subset: &[&str]| {
            if subset.contains(&"a") && subset.contains(&"b") {
                Some(ErrorClass::Kernel)
            } else if subset.contains(&"b") {
                Some(ErrorClass::Lang)
            } else {
                None
            }
        };
        let r = minimize(&["a", "b", "c", "d"], &dag, 11, ErrorClass::Kernel, oracle);
        assert!(r.names.contains(&"a".to_string()));
        assert!(r.names.contains(&"b".to_string()));
    }
}
