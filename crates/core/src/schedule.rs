//! Parallel wavefront scheduling for `Repair module` (paper §2).
//!
//! The paper repairs an entire module "all at once"; most of its constants
//! only depend on a small prefix of the others, so the repairs are largely
//! independent — the same per-definition modularity that quotient-type
//! repair (Viola et al. 2023) and Coq transformation pipelines (Blot et
//! al. 2021) exploit. This module turns that independence into wall-clock
//! speedup:
//!
//! 1. [`ModuleDag::build`] computes the constant-level dependency DAG of
//!    the work list (free global constants of each type/body, followed
//!    transitively *through* constants outside the list, restricted *to*
//!    the list).
//! 2. [`repair_module_wavefront`] runs the DAG in waves on
//!    [`std::thread::scope`] (no external crates): each wave's ready
//!    constants are split over up to `jobs` workers, every worker gets a
//!    cloned [`Env`] snapshot and a forked [`LiftState`]
//!    ([`LiftState::fork_worker`]) — caches stay thread-confined — and a
//!    merge barrier folds the repaired definitions, closed-subterm cache
//!    entries, and counters back into the master before the next wave.
//!    A wave with a single worker (always at `jobs = 1`, and for width-1
//!    waves at any job count) runs in place on the master instead — one
//!    worker's merge is the identity — so the scheduler's overhead over
//!    the sequential driver is just the DAG build; an error there is
//!    rolled back with [`Env::rollback_to`], preserving the failing-wave
//!    drop semantics below.
//!
//! Determinism: lifting a constant is a pure function of the configuration
//! and the (immutable) declarations it reaches, so the repaired terms are
//! identical to the sequential driver's no matter how waves are cut; the
//! merge installs each worker's delta in the worker's own insertion order
//! and the final report is sorted back into work-list order. A sibling
//! worker can at worst duplicate an on-demand repair of an out-of-list
//! dependency, in which case both copies are identical and the first merge
//! wins.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pumpkin_kernel::env::{ConstDecl, Env, GlobalRef};
use pumpkin_kernel::name::GlobalName;
use pumpkin_kernel::stats::KernelStats;
use pumpkin_trace::{Event, EventKind};

use crate::config::Lifting;
use crate::error::{RepairError, Result};
use crate::lift::{repair_constant, LiftState};
use crate::repair::RepairReport;

// The scheduler's whole safety story in three bounds: workers receive
// moved-in state (`Send`) and share only the read-only configuration
// (`Sync`).
const _: () = {
    const fn assert_send<T: Send>() {}
    const fn assert_sync<T: Sync>() {}
    assert_send::<Env>();
    assert_send::<LiftState>();
    assert_send::<RepairError>();
    assert_sync::<Lifting>();
};

/// Worker count for parallel repair: the `PUMPKIN_JOBS` environment
/// variable if set to a positive integer, else
/// [`std::thread::available_parallelism`] (1 if unknown).
pub fn default_jobs() -> usize {
    if let Ok(v) = std::env::var("PUMPKIN_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// A cooperative cancellation handle for [`repair_module_wavefront`].
///
/// The scheduler polls the token *between* waves only: completed waves are
/// already merged and type-correct, and a wave in flight always runs to its
/// merge barrier, so cancellation never leaves the environment half-updated.
/// A cancelled run fails with [`RepairError::Cancelled`], reporting how many
/// waves were kept.
///
/// Tokens are cheap to clone (an `Arc`'d flag plus an optional deadline);
/// the service layer hands one clone to the request thread and keeps
/// another to fire on client disconnect or server drain.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that only cancels when [`CancelToken::cancel`] is called.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// A token that additionally trips once `budget` has elapsed (measured
    /// from now). Explicit [`CancelToken::cancel`] still works earlier.
    pub fn with_deadline(budget: Duration) -> CancelToken {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            deadline: Some(Instant::now() + budget),
        }
    }

    /// Requests cancellation; takes effect at the next wave boundary.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Has cancellation been requested (or the deadline passed)?
    pub fn cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire) || self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

/// The constant-level dependency DAG of a module work list.
#[derive(Clone, Debug, Default)]
pub struct ModuleDag {
    /// The work list, in the caller's order.
    pub nodes: Vec<GlobalName>,
    /// `deps[i]` = indices of work-list constants `nodes[i]` depends on
    /// (directly, or transitively through constants outside the list),
    /// sorted ascending.
    pub deps: Vec<Vec<usize>>,
}

impl ModuleDag {
    /// Builds the DAG by following each constant's mentioned globals.
    /// Mentions are chased through constants *not* on the work list (their
    /// on-demand repair transitively needs the listed dependency) and cut
    /// at constants that are (their repair completes in an earlier wave).
    /// Unknown constants contribute no edges — their repair will fail in
    /// its own wave, not during planning.
    pub fn build(env: &Env, nodes: &[GlobalName]) -> ModuleDag {
        let index: HashMap<&GlobalName, usize> =
            nodes.iter().enumerate().map(|(i, n)| (n, i)).collect();
        // For constants outside the list: which listed constants they reach.
        let mut memo: HashMap<GlobalName, Vec<usize>> = HashMap::new();

        fn mentioned(env: &Env, name: &GlobalName) -> Vec<GlobalName> {
            let Ok(decl) = env.const_decl(name) else {
                return Vec::new();
            };
            let mut out = decl.ty.constants();
            if let Some(b) = &decl.body {
                for c in b.constants() {
                    if !out.contains(&c) {
                        out.push(c);
                    }
                }
            }
            out
        }

        fn reach(
            env: &Env,
            index: &HashMap<&GlobalName, usize>,
            memo: &mut HashMap<GlobalName, Vec<usize>>,
            name: &GlobalName,
        ) -> Vec<usize> {
            if let Some(hit) = memo.get(name) {
                return hit.clone();
            }
            // Constants cannot be cyclic (each body checks against the
            // prior environment), so seeding the memo breaks nothing and
            // guards against malformed input.
            memo.insert(name.clone(), Vec::new());
            let mut out = Vec::new();
            for c in mentioned(env, name) {
                if let Some(&i) = index.get(&c) {
                    if !out.contains(&i) {
                        out.push(i);
                    }
                } else {
                    for i in reach(env, index, memo, &c) {
                        if !out.contains(&i) {
                            out.push(i);
                        }
                    }
                }
            }
            out.sort_unstable();
            memo.insert(name.clone(), out.clone());
            out
        }

        let deps = nodes
            .iter()
            .enumerate()
            .map(|(i, n)| {
                let mut ds = Vec::new();
                for c in mentioned(env, n) {
                    if let Some(&j) = index.get(&c) {
                        if j != i && !ds.contains(&j) {
                            ds.push(j);
                        }
                    } else {
                        for j in reach(env, &index, &mut memo, &c) {
                            if j != i && !ds.contains(&j) {
                                ds.push(j);
                            }
                        }
                    }
                }
                ds.sort_unstable();
                ds
            })
            .collect();
        ModuleDag {
            nodes: nodes.to_vec(),
            deps,
        }
    }

    /// Longest-path layering: `wave[i] = 1 + max(wave[deps])`, so a wave's
    /// constants depend only on strictly earlier waves. Within a wave,
    /// indices are in work-list order.
    pub fn waves(&self) -> Vec<Vec<usize>> {
        let n = self.nodes.len();
        let mut depth = vec![usize::MAX; n];
        fn level(deps: &[Vec<usize>], depth: &mut [usize], i: usize) -> usize {
            if depth[i] != usize::MAX {
                return depth[i];
            }
            // Constants are acyclic (see `build`); mark before recursing so
            // a hypothetical cycle terminates at depth 0 instead of
            // overflowing the stack.
            depth[i] = 0;
            let d = deps[i]
                .iter()
                .map(|&j| level(deps, depth, j) + 1)
                .max()
                .unwrap_or(0);
            depth[i] = d;
            d
        }
        let mut waves: Vec<Vec<usize>> = Vec::new();
        for i in 0..n {
            let d = level(&self.deps, &mut depth, i);
            if waves.len() <= d {
                waves.resize(d + 1, Vec::new());
            }
            waves[d].push(i);
        }
        // Work-list order within each wave (insertion order is ascending
        // already, but keep the invariant explicit and robust).
        for w in &mut waves {
            w.sort_unstable();
        }
        waves
    }

    /// Renders the DAG in Graphviz DOT, one `rank=same` group per wave, so
    /// the achievable scheduling width is visible at a glance
    /// (`dot -Tsvg`). Edges point dependency → dependent (the direction
    /// repair information flows).
    pub fn to_dot(&self) -> String {
        let waves = self.waves();
        let mut wave_of = vec![0usize; self.nodes.len()];
        for (w, members) in waves.iter().enumerate() {
            for &i in members {
                wave_of[i] = w;
            }
        }
        let mut s = String::from("digraph repair_dag {\n  rankdir=LR;\n  node [shape=box];\n");
        for (w, members) in waves.iter().enumerate() {
            s.push_str("  { rank=same;");
            for &i in members {
                s.push_str(&format!(" \"{}\"", self.nodes[i]));
            }
            s.push_str(&format!(" }} // wave {w}\n"));
        }
        for (i, n) in self.nodes.iter().enumerate() {
            s.push_str(&format!(
                "  \"{n}\" [label=\"{n}\\nwave {}\"];\n",
                wave_of[i]
            ));
        }
        for (i, ds) in self.deps.iter().enumerate() {
            for &d in ds {
                s.push_str(&format!(
                    "  \"{}\" -> \"{}\";\n",
                    self.nodes[d], self.nodes[i]
                ));
            }
        }
        s.push_str("}\n");
        s
    }
}

/// Per-run scheduling counters, reported through
/// [`RepairReport::schedule`].
#[derive(Clone, Debug, Default)]
pub struct ScheduleStats {
    /// Worker cap the run was configured with.
    pub jobs: usize,
    /// Number of waves executed.
    pub waves: usize,
    /// Constants in each wave, in order.
    pub wave_widths: Vec<usize>,
    /// Largest wave (the achievable parallelism of the module).
    pub max_width: usize,
    /// Total time spent in the merge barrier (admitting worker deltas and
    /// folding caches), in nanoseconds.
    pub merge_nanos: u64,
    /// Kernel counters accrued by each worker slot, summed across waves —
    /// per-worker whnf/conv hit rates come from here.
    pub worker_kernel: Vec<KernelStats>,
    /// The dependency DAG the run was scheduled from.
    pub dag: ModuleDag,
}

impl fmt::Display for ScheduleStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "jobs={}, {} waves, widths {:?} (max {}), merge {:.2} ms; worker whnf hit rates [",
            self.jobs,
            self.waves,
            self.wave_widths,
            self.max_width,
            self.merge_nanos as f64 / 1e6,
        )?;
        for (w, k) in self.worker_kernel.iter().enumerate() {
            if w > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{:.1}%", 100.0 * k.whnf_hit_rate())?;
        }
        write!(f, "]")
    }
}

/// What one worker sends back through the merge barrier.
struct WorkerOutput {
    /// `(work-list index, old name, new name)` for each assigned constant
    /// repaired before any error.
    repaired: Vec<(usize, GlobalName, GlobalName)>,
    /// New constants the worker's environment gained, in insertion order
    /// (assigned constants plus on-demand out-of-list dependencies).
    delta: Vec<ConstDecl>,
    /// The worker's lift state (caches + counters) for absorption.
    state: LiftState,
    /// Kernel counters this worker accrued.
    kernel: KernelStats,
    /// Trace events this worker recorded (empty when tracing is off);
    /// shipped back as plain data and absorbed by the master at the
    /// barrier — the tracer itself never crosses threads twice.
    events: Vec<Event>,
    /// The first repair error, if any (the wave is then not merged).
    error: Option<RepairError>,
}

fn run_worker(
    mut env: Env,
    lifting: &Lifting,
    mut st: LiftState,
    nodes: &[GlobalName],
    chunk: &[usize],
    mark: usize,
) -> WorkerOutput {
    let before = env.kernel_stats();
    let mut repaired = Vec::new();
    let mut error = None;
    for &i in chunk {
        match repair_constant(&mut env, lifting, &mut st, &nodes[i]) {
            Ok(to) => repaired.push((i, nodes[i].clone(), to)),
            Err(e) => {
                error = Some(e);
                break;
            }
        }
    }
    let delta = env.order()[mark..]
        .iter()
        .map(|r| match r {
            GlobalRef::Const(n) => env.const_decl(n).expect("delta constant exists").clone(),
            GlobalRef::Ind(n) => {
                // Repair only ever defines/assumes constants; configure
                // (which may declare inductives) happens before scheduling.
                panic!("repair worker declared inductive `{n}` mid-wave")
            }
        })
        .collect();
    WorkerOutput {
        repaired,
        delta,
        state: st,
        kernel: env.kernel_stats().since(&before),
        events: env.take_tracer().into_events(),
        error,
    }
}

/// `Repair module`, parallel: repairs the work list wave by wave, each wave
/// concurrently on up to `jobs` workers (`None` → [`default_jobs`]).
/// Outputs are identical to [`crate::repair_module`]'s; see the module docs
/// for the argument.
///
/// # Errors
///
/// Propagates the first repair error (by work-list order within the failing
/// wave's workers). The failing wave is *not* merged: the master
/// environment contains exactly the completed waves, all type-correct.
/// A tripped `cancel` token fails with [`RepairError::Cancelled`] at the
/// next wave boundary, keeping every completed wave installed.
pub fn repair_module_wavefront(
    env: &mut Env,
    lifting: &Lifting,
    state: &mut LiftState,
    names: &[&str],
    jobs: Option<usize>,
    cancel: Option<&CancelToken>,
) -> Result<RepairReport> {
    let jobs = jobs.unwrap_or_else(default_jobs).max(1);
    let nodes: Vec<GlobalName> = names.iter().map(|n| GlobalName::new(*n)).collect();
    let dag = ModuleDag::build(env, &nodes);
    let waves = dag.waves();
    let kernel_before = env.kernel_stats();
    let mut sched = ScheduleStats {
        jobs,
        worker_kernel: vec![KernelStats::default(); jobs],
        dag,
        ..Default::default()
    };
    let mut repaired: Vec<(usize, GlobalName, GlobalName)> = Vec::new();
    // Kernel work done on worker threads (worker_kernel additionally
    // counts single-worker waves, whose work is already in the master's
    // own counters — keep the two separate to avoid double counting).
    let mut threaded = KernelStats::default();

    for (wi, wave) in waves.iter().enumerate() {
        if cancel.is_some_and(CancelToken::cancelled) {
            return Err(RepairError::Cancelled {
                completed_waves: wi,
            });
        }
        sched.waves += 1;
        sched.wave_widths.push(wave.len());
        sched.max_width = sched.max_width.max(wave.len());
        let workers = jobs.min(wave.len());
        let mark = env.order().len();
        let (wave_u32, width_u32) = (wi as u32, wave.len() as u32);
        env.tracer().emit(EventKind::WaveStart {
            wave: wave_u32,
            width: width_u32,
        });
        let wave_span = env.tracer().begin();

        if workers == 1 {
            // Single-worker wave: one worker's merge is the identity, so
            // repair directly on the master — no snapshot clone, no thread,
            // no merge barrier. This keeps jobs=1 within noise of the
            // sequential driver and skips the machinery for width-1 waves
            // at any job count. On error, [`Env::rollback_to`] drops the
            // wave's partial output so the wholesale-drop semantics of the
            // threaded path are preserved exactly.
            let before = env.kernel_stats();
            let mut wst = state.fork_worker();
            let mut error = None;
            for &i in wave {
                match repair_constant(env, lifting, &mut wst, &nodes[i]) {
                    Ok(to) => repaired.push((i, nodes[i].clone(), to)),
                    Err(e) => {
                        error = Some(e);
                        break;
                    }
                }
            }
            sched.worker_kernel[0].absorb(&env.kernel_stats().since(&before));
            if let Some(e) = error {
                env.rollback_to(mark);
                env.tracer().end(
                    wave_span,
                    EventKind::Wave {
                        wave: wave_u32,
                        width: width_u32,
                    },
                );
                return Err(e);
            }
            let merge_start = Instant::now();
            let merge_span = env.tracer().begin();
            state.absorb_worker(wst);
            env.tracer()
                .end(merge_span, EventKind::WaveMerge { wave: wave_u32 });
            sched.merge_nanos += merge_start.elapsed().as_nanos() as u64;
            env.tracer().end(
                wave_span,
                EventKind::Wave {
                    wave: wave_u32,
                    width: width_u32,
                },
            );
            continue;
        }

        // Contiguous chunks preserve work-list order end to end.
        let chunk_len = wave.len().div_ceil(workers);
        let chunks: Vec<&[usize]> = wave.chunks(chunk_len).collect();

        let outputs: Vec<WorkerOutput> = std::thread::scope(|s| {
            let handles: Vec<_> = chunks
                .iter()
                .enumerate()
                .map(|(w, chunk)| {
                    let mut wenv = env.clone();
                    // Workers are numbered from 1 within the wave; 0 is the
                    // master. The fork shares the run's epoch so worker
                    // timestamps are comparable with the master's.
                    wenv.set_tracer(env.tracer().fork_worker(w as u32 + 1));
                    let wst = state.fork_worker();
                    let nodes = &nodes;
                    s.spawn(move || run_worker(wenv, lifting, wst, nodes, chunk, mark))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("repair worker panicked"))
                .collect()
        });

        // Ship worker events home first — a failing wave's trace is kept
        // (that trace is exactly what a sink consumer wants to see).
        let mut outputs = outputs;
        for out in &mut outputs {
            env.tracer().absorb(std::mem::take(&mut out.events));
        }

        // Error barrier: a failing wave is dropped wholesale, so the master
        // only ever contains completed, type-correct waves.
        if let Some(e) = outputs.iter().find_map(|o| o.error.clone()) {
            env.tracer().end(
                wave_span,
                EventKind::Wave {
                    wave: wave_u32,
                    width: width_u32,
                },
            );
            return Err(e);
        }

        let merge_start = Instant::now();
        let merge_span = env.tracer().begin();
        for (w, out) in outputs.into_iter().enumerate() {
            sched.worker_kernel[w].absorb(&out.kernel);
            threaded.absorb(&out.kernel);
            for decl in out.delta {
                if let Ok(existing) = env.const_decl(&decl.name) {
                    // A sibling worker already repaired this out-of-list
                    // dependency on demand; lifting is deterministic, so
                    // the copies agree and the first merge wins.
                    debug_assert!(
                        existing.ty == decl.ty && existing.body == decl.body,
                        "nondeterministic duplicate repair of `{}`",
                        decl.name
                    );
                    continue;
                }
                env.admit_checked(decl)?;
            }
            state.absorb_worker(out.state);
            repaired.extend(out.repaired);
        }
        env.tracer()
            .end(merge_span, EventKind::WaveMerge { wave: wave_u32 });
        sched.merge_nanos += merge_start.elapsed().as_nanos() as u64;
        env.tracer().end(
            wave_span,
            EventKind::Wave {
                wave: wave_u32,
                width: width_u32,
            },
        );
    }

    repaired.sort_unstable_by_key(|(i, _, _)| *i);
    let mut report = RepairReport::default();
    for (_, from, to) in repaired {
        report.record(from, to);
    }
    // Master counters already include single-worker waves (run in place),
    // so only thread-side work is added on top.
    let mut kernel = env.kernel_stats().since(&kernel_before);
    kernel.absorb(&threaded);
    report.kernel = kernel;
    report.schedule = sched;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_env() -> (Env, Vec<GlobalName>) {
        use pumpkin_kernel::term::Term;
        let mut env = Env::new();
        env.assume("T", Term::type_(1)).unwrap();
        env.assume("a", Term::const_("T")).unwrap();
        env.define("b", Term::const_("T"), Term::const_("a"))
            .unwrap();
        // `helper` is off-list; `c` depends on `a` only through it.
        env.define("helper", Term::const_("T"), Term::const_("a"))
            .unwrap();
        env.define("c", Term::const_("T"), Term::const_("helper"))
            .unwrap();
        env.assume("d", Term::const_("T")).unwrap();
        let nodes: Vec<GlobalName> = ["a", "b", "c", "d"].map(GlobalName::new).to_vec();
        (env, nodes)
    }

    #[test]
    fn dag_follows_transitive_deps_through_off_list_constants() {
        let (env, nodes) = chain_env();
        let dag = ModuleDag::build(&env, &nodes);
        assert_eq!(dag.deps[0], Vec::<usize>::new()); // a
        assert_eq!(dag.deps[1], vec![0]); // b -> a
        assert_eq!(dag.deps[2], vec![0]); // c -> helper -> a
        assert_eq!(dag.deps[3], Vec::<usize>::new()); // d
    }

    #[test]
    fn waves_layer_by_longest_path() {
        let (env, nodes) = chain_env();
        let dag = ModuleDag::build(&env, &nodes);
        assert_eq!(dag.waves(), vec![vec![0, 3], vec![1, 2]]);
    }

    #[test]
    fn dot_lists_every_node_and_edge() {
        let (env, nodes) = chain_env();
        let dag = ModuleDag::build(&env, &nodes);
        let dot = dag.to_dot();
        assert!(dot.starts_with("digraph repair_dag {"));
        for n in &nodes {
            assert!(dot.contains(&format!("\"{n}\"")), "missing node {n}");
        }
        assert!(dot.contains("\"a\" -> \"b\";"));
        assert!(dot.contains("\"a\" -> \"c\";"));
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn cancelled_token_stops_before_the_first_wave() {
        let mut env = pumpkin_stdlib::std_env();
        let lifting = crate::search::swap::configure(
            &mut env,
            &"Old.list".into(),
            &"New.list".into(),
            crate::config::NameMap::prefix("Old.", "New."),
        )
        .unwrap();
        let mark = env.order().len();
        let token = CancelToken::new();
        token.cancel();
        let mut state = LiftState::default();
        let err = repair_module_wavefront(
            &mut env,
            &lifting,
            &mut state,
            &["Old.rev", "Old.app"],
            Some(1),
            Some(&token),
        )
        .unwrap_err();
        match err {
            RepairError::Cancelled { completed_waves } => assert_eq!(completed_waves, 0),
            other => panic!("expected Cancelled, got {other:?}"),
        }
        // Nothing was installed.
        assert_eq!(env.order().len(), mark);
    }

    #[test]
    fn elapsed_deadline_reads_as_cancelled() {
        let token = CancelToken::with_deadline(Duration::from_nanos(0));
        assert!(token.cancelled());
        let fresh = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!fresh.cancelled());
        fresh.cancel();
        assert!(fresh.cancelled());
    }
}
