//! Smart eliminators (paper §4.4): custom eliminators for types refined by
//! equalities, like `Σ(l : list T). length l = n`, that let the proof
//! engineer "break them into parts and reason separately about the
//! projections".
//!
//! [`packed_list`] generates the refined type, its eliminator, the smart
//! introduction combinators that pair a list function with its length
//! invariant (`pzip`, `pzip_with`), and the projection lemmas — the
//! machinery §6.2.2 uses to state `zip_with_is_zip` over lists at a given
//! length before repairing to vectors.

use pumpkin_kernel::env::Env;
use pumpkin_lang::load_source;

use crate::error::Result;

/// The generated smart-eliminator module for length-refined lists.
pub const PACKED_LIST_SRC: &str = r#"
(* Σ(l : list T). length l = n *)
Definition packed_list : forall (T : Type 1), nat -> Type 1 :=
  fun (T : Type 1) (n : nat) =>
    sigT (list T) (fun (l : list T) => eq nat (length T l) n).

(* The smart eliminator: eliminate the refinement into its parts. *)
Definition packed_list_elim : forall (T : Type 1) (n : nat)
    (P : packed_list T n -> Type 1),
    (forall (l : list T) (H : eq nat (length T l) n),
      P (existT (list T) (fun (l0 : list T) => eq nat (length T l0) n) l H)) ->
    forall (p : packed_list T n), P p :=
  fun (T : Type 1) (n : nat) (P : packed_list T n -> Type 1)
      (f : forall (l : list T) (H : eq nat (length T l) n),
        P (existT (list T) (fun (l0 : list T) => eq nat (length T l0) n) l H))
      (p : packed_list T n) =>
    elim p : sigT (list T) (fun (l : list T) => eq nat (length T l) n)
      return (fun (x : packed_list T n) => P x)
    with
    | f
    end.

Definition packed_list_val : forall (T : Type 1) (n : nat),
    packed_list T n -> list T :=
  fun (T : Type 1) (n : nat) (p : packed_list T n) =>
    projT1 (list T) (fun (l : list T) => eq nat (length T l) n) p.

Definition packed_list_invariant : forall (T : Type 1) (n : nat)
    (p : packed_list T n),
    eq nat (length T (packed_list_val T n p)) n :=
  fun (T : Type 1) (n : nat) (p : packed_list T n) =>
    projT2 (list T) (fun (l : list T) => eq nat (length T l) n) p.

(* Smart introductions: combine the list functions with their length
   invariants (paper section 6.2.2). *)
Definition pzip : forall (A : Type 1) (B : Type 1) (n : nat),
    packed_list A n -> packed_list B n -> packed_list (prod A B) n :=
  fun (A : Type 1) (B : Type 1) (n : nat)
      (p1 : packed_list A n) (p2 : packed_list B n) =>
    existT (list (prod A B))
      (fun (l : list (prod A B)) => eq nat (length (prod A B) l) n)
      (zip A B (packed_list_val A n p1) (packed_list_val B n p2))
      (zip_length A B (packed_list_val A n p1) (packed_list_val B n p2) n
        (packed_list_invariant A n p1)
        (packed_list_invariant B n p2)).

Definition pzip_with : forall (A : Type 1) (B : Type 1) (C : Type 1)
    (f : A -> B -> C) (n : nat),
    packed_list A n -> packed_list B n -> packed_list C n :=
  fun (A : Type 1) (B : Type 1) (C : Type 1) (f : A -> B -> C) (n : nat)
      (p1 : packed_list A n) (p2 : packed_list B n) =>
    existT (list C)
      (fun (l : list C) => eq nat (length C l) n)
      (zip_with A B C f (packed_list_val A n p1) (packed_list_val B n p2))
      (zip_with_length A B C f
        (packed_list_val A n p1) (packed_list_val B n p2) n
        (packed_list_invariant A n p1)
        (packed_list_invariant B n p2)).

(* The refined lemma at the level of underlying values: zip_with pair and
   zip agree on the list components (paper section 6.2.2's lemma, stated
   through the smart projections). *)
Definition pzip_with_is_zip_val : forall (A : Type 1) (B : Type 1) (n : nat)
    (p1 : packed_list A n) (p2 : packed_list B n),
    eq (list (prod A B))
       (packed_list_val (prod A B) n (pzip_with A B (prod A B) (pair A B) n p1 p2))
       (packed_list_val (prod A B) n (pzip A B n p1 p2)) :=
  fun (A : Type 1) (B : Type 1) (n : nat)
      (p1 : packed_list A n) (p2 : packed_list B n) =>
    zip_with_is_zip A B (packed_list_val A n p1) (packed_list_val B n p2).
"#;

/// Generates the smart eliminator module for length-refined lists
/// (idempotent).
///
/// # Errors
///
/// Fails if the list module is missing or a generated term fails to check.
pub fn packed_list(env: &mut Env) -> Result<()> {
    if !env.contains("packed_list_elim") {
        load_source(env, PACKED_LIST_SRC)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pumpkin_kernel::reduce::normalize;
    use pumpkin_kernel::term::Term;
    use pumpkin_stdlib as stdlib;
    use pumpkin_stdlib::list::list_lit;
    use pumpkin_stdlib::nat::{nat_lit, nat_value};

    #[test]
    fn smart_eliminator_module_checks() {
        let mut env = stdlib::std_env();
        packed_list(&mut env).unwrap();
        for n in [
            "packed_list",
            "packed_list_elim",
            "pzip",
            "pzip_with",
            "pzip_with_is_zip_val",
        ] {
            assert!(env.contains(n), "missing {n}");
        }
    }

    #[test]
    fn packed_zip_computes_and_preserves_invariant() {
        let mut env = stdlib::std_env();
        packed_list(&mut env).unwrap();
        let nat = Term::ind("nat");
        let pack = |elems: &[u64]| {
            let l = list_lit(
                "list",
                nat.clone(),
                &elems.iter().map(|&e| nat_lit(e)).collect::<Vec<_>>(),
            );
            // existT (list nat) (fun l => length l = n) l (eq_refl n)
            Term::app(
                Term::construct("sigT", 0),
                [
                    Term::app(Term::ind("list"), [nat.clone()]),
                    Term::lambda(
                        "l",
                        Term::app(Term::ind("list"), [nat.clone()]),
                        Term::app(
                            Term::ind("eq"),
                            [
                                nat.clone(),
                                Term::app(Term::const_("length"), [nat.clone(), Term::rel(0)]),
                                nat_lit(elems.len() as u64),
                            ],
                        ),
                    ),
                    l,
                    Term::app(
                        Term::construct("eq", 0),
                        [nat.clone(), nat_lit(elems.len() as u64)],
                    ),
                ],
            )
        };
        let zipped = Term::app(
            Term::const_("pzip"),
            [
                nat.clone(),
                nat.clone(),
                nat_lit(2),
                pack(&[1, 2]),
                pack(&[3, 4]),
            ],
        );
        let val = Term::app(
            Term::const_("packed_list_val"),
            [
                Term::app(Term::ind("prod"), [nat.clone(), nat.clone()]),
                nat_lit(2),
                zipped,
            ],
        );
        let len = Term::app(
            Term::const_("length"),
            [
                Term::app(Term::ind("prod"), [nat.clone(), nat.clone()]),
                val,
            ],
        );
        assert_eq!(nat_value(&normalize(&env, &len)), Some(2));
    }
}
