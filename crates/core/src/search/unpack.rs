//! Automatic configuration for *unpacking* types at some index to a
//! particular index (paper §3.3 search procedure 4, case study §6.2):
//!
//! ```text
//! Σ(s : Σ(m : nat). vector T m). π₁ s = n  ≃  vector T n
//! ```
//!
//! This is "the missing link" Devoid left manual: it carries equality proofs
//! over the indices, with `Eta` the index-generalized identity (paper
//! §6.2.1). The equivalence and its proofs are generated below and checked
//! by the kernel. As in the paper (§6.2.3), complete unification heuristics
//! for porting *arbitrary* proofs across this configuration remain open; we
//! provide the equivalence plus the packing/unpacking combinators the §6.2
//! example composes, mirroring the proof obligations the paper assigns to
//! the proof engineer.

use pumpkin_kernel::env::Env;
use pumpkin_lang::load_source;

use crate::config::EquivalenceNames;
use crate::error::Result;

/// The unpack configuration and equivalence, generic in `T` and `n`.
pub const CONFIG_SRC: &str = r#"
(* Σ(s : Σ(m). vector T m). π₁ s = n *)
Definition packed_vector : forall (T : Type 1), nat -> Type 1 :=
  fun (T : Type 1) (n : nat) =>
    sigT (sig_vector T)
      (fun (s : sig_vector T) =>
        eq nat (projT1 nat (fun (m : nat) => vector T m) s) n).

(* Eta for the unpack configuration: the identity generalized over any
   equal index (paper section 6.2.1). *)
Definition index_eta : forall (T : Type 1) (n : nat) (m : nat),
    eq nat m n -> vector T m -> vector T n :=
  fun (T : Type 1) (n : nat) (m : nat) (H : eq nat m n) (v : vector T m) =>
    eq_rect nat m (fun (k : nat) => vector T k) v n H.

Definition unpack_f : forall (T : Type 1) (n : nat),
    packed_vector T n -> vector T n :=
  fun (T : Type 1) (n : nat) (p : packed_vector T n) =>
    index_eta T n
      (projT1 nat (fun (m : nat) => vector T m)
        (projT1 (sig_vector T)
          (fun (s : sig_vector T) =>
            eq nat (projT1 nat (fun (m : nat) => vector T m) s) n)
          p))
      (projT2 (sig_vector T)
        (fun (s : sig_vector T) =>
          eq nat (projT1 nat (fun (m : nat) => vector T m) s) n)
        p)
      (projT2 nat (fun (m : nat) => vector T m)
        (projT1 (sig_vector T)
          (fun (s : sig_vector T) =>
            eq nat (projT1 nat (fun (m : nat) => vector T m) s) n)
          p)).

Definition unpack_g : forall (T : Type 1) (n : nat),
    vector T n -> packed_vector T n :=
  fun (T : Type 1) (n : nat) (v : vector T n) =>
    existT (sig_vector T)
      (fun (s : sig_vector T) =>
        eq nat (projT1 nat (fun (m : nat) => vector T m) s) n)
      (existT nat (fun (m : nat) => vector T m) n v)
      (eq_refl nat n).

(* f (g v) = v holds by computation. *)
Definition unpack_retraction : forall (T : Type 1) (n : nat) (v : vector T n),
    eq (vector T n) (unpack_f T n (unpack_g T n v)) v :=
  fun (T : Type 1) (n : nat) (v : vector T n) =>
    eq_refl (vector T n) v.

(* g (f p) = p: destructure the packing, then contract the index equality. *)
Definition unpack_section : forall (T : Type 1) (n : nat) (p : packed_vector T n),
    eq (packed_vector T n) (unpack_g T n (unpack_f T n p)) p :=
  fun (T : Type 1) (n : nat) (p : packed_vector T n) =>
    elim p : sigT (sig_vector T)
        (fun (s : sig_vector T) =>
          eq nat (projT1 nat (fun (m : nat) => vector T m) s) n)
      return (fun (x : packed_vector T n) =>
        eq (packed_vector T n) (unpack_g T n (unpack_f T n x)) x)
    with
    | fun (s : sig_vector T)
          (H : eq nat (projT1 nat (fun (m : nat) => vector T m) s) n) =>
        elim s : sigT nat (fun (m : nat) => vector T m)
          return (fun (s' : sig_vector T) =>
            forall (H' : eq nat (projT1 nat (fun (m : nat) => vector T m) s') n),
              eq (packed_vector T n)
                 (unpack_g T n (unpack_f T n
                   (existT (sig_vector T)
                     (fun (s0 : sig_vector T) =>
                       eq nat (projT1 nat (fun (m : nat) => vector T m) s0) n)
                     s' H')))
                 (existT (sig_vector T)
                   (fun (s0 : sig_vector T) =>
                     eq nat (projT1 nat (fun (m : nat) => vector T m) s0) n)
                   s' H'))
        with
        | fun (m : nat) (v : vector T m) =>
            fun (H' : eq nat (projT1 nat (fun (k : nat) => vector T k)
                        (existT nat (fun (k : nat) => vector T k) m v)) n) =>
              elim H' : eq nat (projT1 nat (fun (k : nat) => vector T k)
                          (existT nat (fun (k : nat) => vector T k) m v))
                return (fun (n' : nat)
                    (e : eq nat (projT1 nat (fun (k : nat) => vector T k)
                           (existT nat (fun (k : nat) => vector T k) m v)) n') =>
                  eq (packed_vector T n')
                     (unpack_g T n' (unpack_f T n'
                       (existT (sig_vector T)
                         (fun (s0 : sig_vector T) =>
                           eq nat (projT1 nat (fun (k : nat) => vector T k) s0) n')
                         (existT nat (fun (k : nat) => vector T k) m v) e)))
                     (existT (sig_vector T)
                       (fun (s0 : sig_vector T) =>
                         eq nat (projT1 nat (fun (k : nat) => vector T k) s0) n')
                       (existT nat (fun (k : nat) => vector T k) m v) e))
              with
              | eq_refl
                  (packed_vector T (projT1 nat (fun (k : nat) => vector T k)
                    (existT nat (fun (k : nat) => vector T k) m v)))
                  (existT (sig_vector T)
                    (fun (s0 : sig_vector T) =>
                      eq nat (projT1 nat (fun (k : nat) => vector T k) s0)
                             (projT1 nat (fun (k : nat) => vector T k)
                               (existT nat (fun (k : nat) => vector T k) m v)))
                    (existT nat (fun (k : nat) => vector T k) m v)
                    (eq_refl nat (projT1 nat (fun (k : nat) => vector T k)
                      (existT nat (fun (k : nat) => vector T k) m v))))
              end
        end H
    end.
"#;

/// Loads (and kernel-checks) the unpack configuration, returning the
/// equivalence names.
///
/// # Errors
///
/// Fails if the ornament configuration (which defines `sig_vector`) is
/// missing, or any generated term fails to check.
pub fn configure(env: &mut Env) -> Result<EquivalenceNames> {
    if !env.contains("sig_vector") {
        // The unpack equivalence composes with the ornament one.
        load_source(env, super::ornament::CONFIG_SRC)?;
    }
    if !env.contains("unpack_f") {
        load_source(env, CONFIG_SRC)?;
    }
    Ok(EquivalenceNames {
        f: "unpack_f".into(),
        g: "unpack_g".into(),
        section: "unpack_section".into(),
        retraction: "unpack_retraction".into(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pumpkin_kernel::reduce::normalize;
    use pumpkin_kernel::term::Term;
    use pumpkin_stdlib as stdlib;
    use pumpkin_stdlib::nat::nat_lit;
    use pumpkin_stdlib::vector::vector_lit;

    #[test]
    fn unpack_equivalence_typechecks() {
        let mut env = stdlib::std_env();
        let eqv = configure(&mut env).unwrap();
        assert!(env.contains(eqv.section.as_str()));
        assert!(env.contains(eqv.retraction.as_str()));
    }

    #[test]
    fn unpack_round_trip_computes() {
        let mut env = stdlib::std_env();
        configure(&mut env).unwrap();
        let v = vector_lit(Term::ind("nat"), &[nat_lit(7), nat_lit(9)]);
        let packed = Term::app(
            Term::const_("unpack_g"),
            [Term::ind("nat"), nat_lit(2), v.clone()],
        );
        let back = Term::app(
            Term::const_("unpack_f"),
            [Term::ind("nat"), nat_lit(2), packed],
        );
        assert_eq!(normalize(&env, &back), v);
    }
}
