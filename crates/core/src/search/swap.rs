//! Automatic configuration for renaming and permuting constructors of
//! inductive types (paper §3.3 search procedure 2, case study §6.1).
//!
//! Given two non-indexed inductive families with the same constructor
//! *shapes* up to a bijection, [`discover_mappings`] enumerates all
//! type-correct constructor mappings (the paper's "all other 23 type-correct
//! permutations" for the REPLICA `Term`), [`configure_with`] builds the
//! configuration for a chosen mapping, and [`configure`] picks the most
//! name-preserving mapping automatically — presented first, exactly like the
//! paper's interactive prompt.
//!
//! The generated equivalence (`f`, `g`, `section`, `retraction` — paper
//! Fig. 3) is defined in the environment and therefore *checked by the
//! kernel*; configuration succeeds only if the proofs go through.

use pumpkin_kernel::env::Env;
use pumpkin_kernel::inductive::InductiveDecl;
use pumpkin_kernel::name::GlobalName;
use pumpkin_kernel::term::{Binder, ElimData, Term, TermData};

use crate::config::{EquivalenceNames, Lifting, MatchedElim, NameMap, SideBuild, SideMatch};
use crate::error::{RepairError, Result};

/// Source-side recognizers: the type, its constructors, and its eliminator
/// are all syntactic (paper §4.2.1: "unification is straightforward, since
/// DepConstr and DepElim correspond to Constr and Elim directly").
pub struct SwapMatch {
    a: GlobalName,
}

impl SideMatch for SwapMatch {
    fn match_type(&self, _env: &Env, t: &Term) -> Option<Vec<Term>> {
        let (name, args) = t.as_ind_app()?;
        (name == &self.a).then(|| args.to_vec())
    }

    fn match_constr(&self, _env: &Env, t: &Term) -> Option<(usize, Vec<Term>)> {
        let (name, j, args) = t.as_construct_app()?;
        (name == &self.a).then(|| (j, args.to_vec()))
    }

    fn match_elim(&self, _env: &Env, t: &Term) -> Option<MatchedElim> {
        match t.data() {
            TermData::Elim(e) if e.ind == self.a => Some(MatchedElim {
                type_args: e.params.clone(),
                motive: e.motive.clone(),
                cases: e.cases.clone(),
                scrutinee: e.scrutinee.clone(),
            }),
            _ => None,
        }
    }
}

/// Target-side builders: permute constructor indices and eliminator cases.
pub struct SwapBuild {
    b: GlobalName,
    /// `perm[j]` is the index in `b` of the dependent constructor `j`.
    perm: Vec<usize>,
}

impl SideBuild for SwapBuild {
    fn build_type(&self, _env: &Env, args: Vec<Term>) -> Result<Term> {
        Ok(Term::app(Term::ind(self.b.clone()), args))
    }

    fn build_constr(&self, _env: &Env, j: usize, args: Vec<Term>) -> Result<Term> {
        let j2 = *self
            .perm
            .get(j)
            .ok_or_else(|| RepairError::BadMapping(format!("no constructor #{j}")))?;
        Ok(Term::app(Term::construct(self.b.clone(), j2), args))
    }

    fn build_elim(&self, _env: &Env, me: MatchedElim) -> Result<Term> {
        let mut cases = vec![Term::sort(pumpkin_kernel::universe::Sort::Prop); me.cases.len()];
        for (j, c) in me.cases.into_iter().enumerate() {
            let j2 = *self
                .perm
                .get(j)
                .ok_or_else(|| RepairError::BadMapping(format!("no constructor #{j}")))?;
            cases[j2] = c;
        }
        Ok(Term::elim(ElimData {
            ind: self.b.clone(),
            params: me.type_args,
            motive: me.motive,
            cases,
            scrutinee: me.scrutinee,
        }))
    }
}

/// Are two constructor argument telescopes equal up to exchanging the two
/// family names (and ignoring binder hints)?
fn same_shape(a_name: &GlobalName, b_name: &GlobalName, a: &[Binder], b: &[Binder]) -> bool {
    fn rename(t: &Term, from: &GlobalName, to: &GlobalName) -> Term {
        match t.data() {
            TermData::Ind(n) if n == from => Term::ind(to.clone()),
            TermData::Rel(_) | TermData::Sort(_) | TermData::Const(_) | TermData::Ind(_) => {
                t.clone()
            }
            TermData::Construct(n, j) if n == from => Term::construct(to.clone(), *j),
            TermData::Construct(_, _) => t.clone(),
            TermData::App(h, args) => Term::app(
                rename(h, from, to),
                args.iter().map(|x| rename(x, from, to)),
            ),
            TermData::Lambda(bi, body) => Term::lambda(
                bi.name.clone(),
                rename(&bi.ty, from, to),
                rename(body, from, to),
            ),
            TermData::Pi(bi, body) => Term::pi(
                bi.name.clone(),
                rename(&bi.ty, from, to),
                rename(body, from, to),
            ),
            TermData::Let(bi, v, body) => Term::let_(
                bi.name.clone(),
                rename(&bi.ty, from, to),
                rename(v, from, to),
                rename(body, from, to),
            ),
            TermData::Elim(e) => Term::elim(ElimData {
                ind: if e.ind == *from {
                    to.clone()
                } else {
                    e.ind.clone()
                },
                params: e.params.iter().map(|x| rename(x, from, to)).collect(),
                motive: rename(&e.motive, from, to),
                cases: e.cases.iter().map(|x| rename(x, from, to)).collect(),
                scrutinee: rename(&e.scrutinee, from, to),
            }),
        }
    }
    a.len() == b.len()
        && a.iter()
            .zip(b.iter())
            .all(|(x, y)| rename(&x.ty, a_name, b_name) == y.ty)
}

/// Enumerates every type-correct constructor mapping from `a` to `b`
/// (bijections preserving argument shapes), ordered so that the most
/// name-preserving mapping comes first — the paper presents "the desired
/// transformation as the first option in the list" (§6.1.2).
pub fn discover_mappings(a: &InductiveDecl, b: &InductiveDecl) -> Vec<Vec<usize>> {
    discover_mappings_bounded(a, b, 10_000)
}

/// [`discover_mappings`] with an explicit candidate cap. Highly ambiguous
/// types (like the paper's 30-constructor `Enum`, with 30! shape-correct
/// mappings) stop enumerating at the cap; ranking still applies to the
/// candidates found.
pub fn discover_mappings_bounded(
    a: &InductiveDecl,
    b: &InductiveDecl,
    cap: usize,
) -> Vec<Vec<usize>> {
    let n = a.ctors.len();
    if n != b.ctors.len() || a.nindices() != 0 || b.nindices() != 0 {
        return Vec::new();
    }
    let mut out: Vec<Vec<usize>> = Vec::new();
    let mut perm: Vec<usize> = Vec::with_capacity(n);
    let mut used = vec![false; n];
    fn go(
        a: &InductiveDecl,
        b: &InductiveDecl,
        perm: &mut Vec<usize>,
        used: &mut Vec<bool>,
        out: &mut Vec<Vec<usize>>,
        cap: usize,
    ) {
        if out.len() >= cap {
            return;
        }
        let j = perm.len();
        if j == a.ctors.len() {
            out.push(perm.clone());
            return;
        }
        for k in 0..b.ctors.len() {
            if !used[k] && same_shape(&a.name, &b.name, &a.ctors[j].args, &b.ctors[k].args) {
                used[k] = true;
                perm.push(k);
                go(a, b, perm, used, out, cap);
                perm.pop();
                used[k] = false;
            }
        }
    }
    go(a, b, &mut perm, &mut used, &mut out, cap);

    // Rank by how many constructor base names are preserved.
    let score = |perm: &Vec<usize>| -> usize {
        perm.iter()
            .enumerate()
            .filter(|(j, k)| a.ctors[*j].name.basename() == b.ctors[**k].name.basename())
            .count()
    };
    out.sort_by_key(|p| std::cmp::Reverse(score(p)));
    out
}

/// Context for generating the Fig. 3 equivalence for a same-shape mapping.
struct EquivGen;

impl EquivGen {
    /// `fun params (x : Src params) => Elim(x, fun _ => Dst params){cases}`
    /// where each case rebuilds the image constructor from arguments,
    /// replacing recursive arguments with induction hypotheses.
    fn map_fn(&self, src: &InductiveDecl, dst: &InductiveDecl, ctor_map: &[usize]) -> Result<Term> {
        let p = src.nparams();
        let param_refs_at =
            |extra: usize| -> Vec<Term> { (0..p).map(|i| Term::rel(extra + p - 1 - i)).collect() };
        // Under params + (x : Src params):
        let src_ty = Term::app(Term::ind(src.name.clone()), param_refs_at(0));
        let motive = Term::lambda(
            "_x",
            Term::app(Term::ind(src.name.clone()), param_refs_at(1)),
            Term::app(Term::ind(dst.name.clone()), param_refs_at(2)),
        );
        let mut cases = Vec::new();
        for (j, _) in src.ctors.iter().enumerate() {
            // Case type gives us binder types (args + IHs interleaved).
            let case_ty = src.case_type(j, &param_refs_at(1), &motive)?;
            let (binders, _) = case_ty.strip_pis();
            let flags = src.recursive_flags(j);
            let nb = binders.len();
            // References in constructor-argument order: recursive args use
            // their IH (which follows them immediately).
            let mut refs = Vec::new();
            let mut pos = 0usize; // position among binders
            for &rec in &flags {
                if rec {
                    // binder `pos` is the arg, `pos + 1` is the IH.
                    refs.push(Term::rel(nb - 1 - (pos + 1)));
                    pos += 2;
                } else {
                    refs.push(Term::rel(nb - 1 - pos));
                    pos += 1;
                }
            }
            let body = Term::app(
                Term::construct(dst.name.clone(), ctor_map[j]),
                param_refs_at(1 + nb).into_iter().chain(refs),
            );
            cases.push(Term::lambdas(binders, body));
        }
        let body = Term::elim(ElimData {
            ind: src.name.clone(),
            params: param_refs_at(1),
            motive,
            cases,
            scrutinee: Term::rel(0),
        });
        let mut binders = src.params.clone();
        binders.push(Binder::new("x", src_ty));
        Ok(Term::lambdas(binders, body))
    }

    /// Round-trip proof `∀ params (x : Src), back (fwd x) = x`, where `fwd`
    /// and `back` are constants. Cases use `eq_refl`, `f_equal`, or
    /// `f_equal2` depending on the number of recursive arguments.
    fn roundtrip_proof(
        &self,
        src: &InductiveDecl,
        fwd: &GlobalName,
        back: &GlobalName,
    ) -> Result<Term> {
        let p = src.nparams();
        let param_refs_at =
            |extra: usize| -> Vec<Term> { (0..p).map(|i| Term::rel(extra + p - 1 - i)).collect() };
        let src_at = |extra: usize| Term::app(Term::ind(src.name.clone()), param_refs_at(extra));
        let round = |x: Term, extra: usize| -> Term {
            Term::app(
                Term::const_(back.clone()),
                param_refs_at(extra).into_iter().chain([Term::app(
                    Term::const_(fwd.clone()),
                    param_refs_at(extra).into_iter().chain([x]),
                )]),
            )
        };
        // motive := fun (x : Src) => eq Src (back (fwd x)) x, under params.
        let motive = Term::lambda(
            "x",
            src_at(1),
            Term::app(
                Term::ind("eq"),
                [src_at(2), round(Term::rel(0), 2), Term::rel(0)],
            ),
        );
        let mut cases = Vec::new();
        for (j, _ctor) in src.ctors.iter().enumerate() {
            let case_ty = src.case_type(j, &param_refs_at(1), &motive)?;
            let (binders, _) = case_ty.strip_pis();
            let flags = src.recursive_flags(j);
            let nb = binders.len();
            let depth = 1 + nb; // params then (x-binder? no) — binders under params+... motive consumed x
                                // Positions of args and IHs among binders.
            let mut arg_refs = Vec::new();
            let mut ih_refs = Vec::new();
            let mut rec_positions = Vec::new(); // indices (into ctor args) of recursive args
            let mut pos = 0usize;
            for (i, &rec) in flags.iter().enumerate() {
                arg_refs.push(Term::rel(nb - 1 - pos));
                if rec {
                    ih_refs.push(Term::rel(nb - 1 - (pos + 1)));
                    rec_positions.push(i);
                    pos += 2;
                } else {
                    pos += 1;
                }
            }
            let ctor_app = |args: Vec<Term>| {
                Term::app(
                    Term::construct(src.name.clone(), j),
                    param_refs_at(depth).into_iter().chain(args),
                )
            };
            let src_here = src_at(depth);
            let body = match rec_positions.len() {
                0 => Term::app(
                    Term::construct("eq", 0),
                    [src_here, ctor_app(arg_refs.clone())],
                ),
                1 => {
                    let ri = rec_positions[0];
                    // fun (z : Src) => C … z …  (z at the recursive slot)
                    let congr_fn = {
                        let mut zargs = Vec::new();
                        for (i, a) in arg_refs.iter().enumerate() {
                            if i == ri {
                                zargs.push(Term::rel(0));
                            } else {
                                zargs.push(pumpkin_kernel::subst::lift(a, 1));
                            }
                        }
                        Term::lambda(
                            "z",
                            src_at(depth),
                            Term::app(
                                Term::construct(src.name.clone(), j),
                                param_refs_at(depth + 1).into_iter().chain(zargs),
                            ),
                        )
                    };
                    let x = round(arg_refs[ri].clone(), depth);
                    let y = arg_refs[ri].clone();
                    Term::app(
                        Term::const_("f_equal"),
                        [
                            src_here.clone(),
                            src_here,
                            congr_fn,
                            x,
                            y,
                            ih_refs[0].clone(),
                        ],
                    )
                }
                2 => {
                    let (r1, r2) = (rec_positions[0], rec_positions[1]);
                    // fun (z1 z2 : Src) => C … z1 … z2 …
                    let congr_fn = {
                        let mut zargs = Vec::new();
                        for (i, a) in arg_refs.iter().enumerate() {
                            if i == r1 {
                                zargs.push(Term::rel(1));
                            } else if i == r2 {
                                zargs.push(Term::rel(0));
                            } else {
                                zargs.push(pumpkin_kernel::subst::lift(a, 2));
                            }
                        }
                        Term::lambda(
                            "z1",
                            src_at(depth),
                            Term::lambda(
                                "z2",
                                src_at(depth + 1),
                                Term::app(
                                    Term::construct(src.name.clone(), j),
                                    param_refs_at(depth + 2).into_iter().chain(zargs),
                                ),
                            ),
                        )
                    };
                    Term::app(
                        Term::const_("f_equal2"),
                        [
                            src_here.clone(),
                            src_here.clone(),
                            src_here,
                            congr_fn,
                            round(arg_refs[r1].clone(), depth),
                            arg_refs[r1].clone(),
                            round(arg_refs[r2].clone(), depth),
                            arg_refs[r2].clone(),
                            ih_refs[0].clone(),
                            ih_refs[1].clone(),
                        ],
                    )
                }
                k => {
                    return Err(RepairError::BadMapping(format!(
                        "constructors with {k} recursive arguments are not supported \
                         by the swap equivalence generator"
                    )))
                }
            };
            cases.push(Term::lambdas(binders, body));
        }
        let body = Term::elim(ElimData {
            ind: src.name.clone(),
            params: param_refs_at(1),
            motive,
            cases,
            scrutinee: Term::rel(0),
        });
        let mut binders = src.params.clone();
        binders.push(Binder::new("x", src_at(0)));
        Ok(Term::lambdas(binders, body))
    }
}

/// Declares the Fig. 3 equivalence for a chosen mapping and returns its
/// names. The kernel checks every generated term.
fn generate_equivalence(
    env: &mut Env,
    a: &InductiveDecl,
    b: &InductiveDecl,
    perm: &[usize],
) -> Result<EquivalenceNames> {
    let inv: Vec<usize> = {
        let mut inv = vec![0; perm.len()];
        for (j, &k) in perm.iter().enumerate() {
            inv[k] = j;
        }
        inv
    };
    let gen = EquivGen;
    let p = a.nparams();
    let fn_ty = |src: &InductiveDecl, dst: &InductiveDecl| -> Term {
        let mut binders = src.params.clone();
        binders.push(Binder::new(
            "x",
            Term::app(
                Term::ind(src.name.clone()),
                (0..p).map(|i| Term::rel(p - 1 - i)),
            ),
        ));
        Term::pis(
            binders,
            Term::app(
                Term::ind(dst.name.clone()),
                (0..p).map(|i| Term::rel(p - i)),
            ),
        )
    };
    let round_ty = |src: &InductiveDecl, fwd: &GlobalName, back: &GlobalName| -> Term {
        let src_at = |extra: usize| {
            Term::app(
                Term::ind(src.name.clone()),
                (0..p).map(move |i| Term::rel(extra + p - 1 - i)),
            )
        };
        let mut binders = src.params.clone();
        binders.push(Binder::new("x", src_at(0)));
        let x = Term::rel(0);
        let fx = Term::app(
            Term::const_(fwd.clone()),
            (0..p).map(|i| Term::rel(1 + p - 1 - i)).chain([x.clone()]),
        );
        let gfx = Term::app(
            Term::const_(back.clone()),
            (0..p).map(|i| Term::rel(1 + p - 1 - i)).chain([fx]),
        );
        Term::pis(binders, Term::app(Term::ind("eq"), [src_at(1), gfx, x]))
    };

    let f_name = GlobalName::new(format!("{}_to_{}", a.name, b.name));
    let g_name = GlobalName::new(format!("{}_to_{}", b.name, a.name));
    let section_name = GlobalName::new(format!("{f_name}_section"));
    let retraction_name = GlobalName::new(format!("{f_name}_retraction"));

    if !env.contains(f_name.as_str()) {
        let f = gen.map_fn(a, b, perm)?;
        env.define(f_name.clone(), fn_ty(a, b), f)?;
    }
    if !env.contains(g_name.as_str()) {
        let g = gen.map_fn(b, a, &inv)?;
        env.define(g_name.clone(), fn_ty(b, a), g)?;
    }
    if !env.contains(section_name.as_str()) {
        let section = gen.roundtrip_proof(a, &f_name, &g_name)?;
        env.define(section_name.clone(), round_ty(a, &f_name, &g_name), section)?;
    }
    if !env.contains(retraction_name.as_str()) {
        let retraction = gen.roundtrip_proof(b, &g_name, &f_name)?;
        env.define(
            retraction_name.clone(),
            round_ty(b, &g_name, &f_name),
            retraction,
        )?;
    }
    Ok(EquivalenceNames {
        f: f_name,
        g: g_name,
        section: section_name,
        retraction: retraction_name,
    })
}

/// Renders a candidate mapping for the interactive selection prompt
/// (paper §6.1.3: "an interactive interface to choose between mappings when
/// there are multiple possible mappings").
pub fn describe_mapping(a: &InductiveDecl, b: &InductiveDecl, perm: &[usize]) -> String {
    perm.iter()
        .enumerate()
        .map(|(j, &k)| format!("{} ↦ {}", a.ctors[j].name, b.ctors[k].name))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Configures a lifting for an explicit constructor mapping.
///
/// # Errors
///
/// Fails if the mapping is not a type-correct bijection or the generated
/// equivalence does not check.
pub fn configure_with(
    env: &mut Env,
    a_name: &GlobalName,
    b_name: &GlobalName,
    perm: &[usize],
    names: NameMap,
) -> Result<Lifting> {
    let a = env.inductive(a_name)?.clone();
    let b = env.inductive(b_name)?.clone();
    if perm.len() != a.ctors.len() {
        return Err(RepairError::BadMapping(format!(
            "mapping has {} entries for {} constructors",
            perm.len(),
            a.ctors.len()
        )));
    }
    let mut seen = vec![false; perm.len()];
    for (j, &k) in perm.iter().enumerate() {
        if k >= b.ctors.len() || seen[k] {
            return Err(RepairError::BadMapping(format!("entry {j} ↦ {k} invalid")));
        }
        if !same_shape(&a.name, &b.name, &a.ctors[j].args, &b.ctors[k].args) {
            return Err(RepairError::BadMapping(format!(
                "constructor {} and {} have different shapes",
                a.ctors[j].name, b.ctors[k].name
            )));
        }
        seen[k] = true;
    }
    let equivalence = generate_equivalence(env, &a, &b, perm)?;
    Ok(Lifting {
        a_name: a_name.clone(),
        b_name: b_name.clone(),
        matcher: Box::new(SwapMatch { a: a_name.clone() }),
        builder: Box::new(SwapBuild {
            b: b_name.clone(),
            perm: perm.to_vec(),
        }),
        names,
        equivalence: Some(equivalence),
    })
}

/// Automatic configuration: discovers all type-correct mappings and uses the
/// most name-preserving one (index 0 of [`discover_mappings`]).
///
/// # Errors
///
/// Fails if no type-correct mapping exists.
pub fn configure(
    env: &mut Env,
    a_name: &GlobalName,
    b_name: &GlobalName,
    names: NameMap,
) -> Result<Lifting> {
    let a = env.inductive(a_name)?.clone();
    let b = env.inductive(b_name)?.clone();
    let mappings = discover_mappings(&a, &b);
    let best = mappings.first().ok_or_else(|| RepairError::SearchFailed {
        from: a_name.clone(),
        to: b_name.clone(),
        reason: "no type-correct constructor mapping".into(),
    })?;
    configure_with(env, a_name, b_name, best, names)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pumpkin_kernel::reduce::normalize;
    use pumpkin_stdlib as stdlib;

    #[test]
    fn discovers_unique_list_mapping() {
        let env = stdlib::std_env();
        let a = env.inductive(&"Old.list".into()).unwrap();
        let b = env.inductive(&"New.list".into()).unwrap();
        let m = discover_mappings(a, b);
        assert_eq!(m, vec![vec![1, 0]]);
    }

    #[test]
    fn discovers_24_term_mappings_with_desired_first() {
        let env = stdlib::std_env();
        let a = env.inductive(&"Old.Term".into()).unwrap();
        let b = env.inductive(&"New.Term".into()).unwrap();
        let m = discover_mappings(a, b);
        // Eq/Plus/Times/Minus share a shape: 4! = 24 candidates; the paper
        // reports discovering the desired one plus "all other 23".
        assert_eq!(m.len(), 24);
        // The name-preserving mapping comes first: Old.Int (#1) ↦ New.Int
        // (#2), Old.Eq (#2) ↦ New.Eq (#1), everything else fixed.
        assert_eq!(m[0], vec![0, 2, 1, 3, 4, 5, 6]);
    }

    #[test]
    fn swap_equivalence_typechecks_and_computes() {
        let mut env = stdlib::std_env();
        let l = configure(
            &mut env,
            &"Old.list".into(),
            &"New.list".into(),
            NameMap::prefix("Old.", "New."),
        )
        .unwrap();
        let eqv = l.equivalence.as_ref().unwrap();
        assert_eq!(eqv.f.as_str(), "Old.list_to_New.list");
        // f [1] = New.cons 1 New.nil (constructor indices swapped).
        let one = stdlib::nat::nat_lit(1);
        let old_list =
            stdlib::list::list_lit("Old.list", Term::ind("nat"), std::slice::from_ref(&one));
        let fx = Term::app(
            Term::const_(eqv.f.clone()),
            [Term::ind("nat"), old_list.clone()],
        );
        let expect = Term::app(
            Term::construct("New.list", 0),
            [
                Term::ind("nat"),
                one,
                Term::app(Term::construct("New.list", 1), [Term::ind("nat")]),
            ],
        );
        assert_eq!(normalize(&env, &fx), expect);
        // g (f x) normalizes back to x.
        let gfx = Term::app(Term::const_(eqv.g.clone()), [Term::ind("nat"), fx]);
        assert_eq!(normalize(&env, &gfx), old_list);
    }

    #[test]
    fn term_language_equivalence_typechecks() {
        let mut env = stdlib::std_env();
        let l = configure(
            &mut env,
            &"Old.Term".into(),
            &"New.Term".into(),
            NameMap::prefix("Old.", "New."),
        )
        .unwrap();
        assert!(l.equivalence.is_some());
        assert!(env.contains("Old.Term_to_New.Term_section"));
        assert!(env.contains("Old.Term_to_New.Term_retraction"));
    }

    #[test]
    fn rejects_bad_mapping() {
        let mut env = stdlib::std_env();
        let r = configure_with(
            &mut env,
            &"Old.list".into(),
            &"New.list".into(),
            &[0, 1], // wrong: shapes don't line up
            NameMap::default(),
        );
        assert!(matches!(r, Err(RepairError::BadMapping(_))));
    }
}
