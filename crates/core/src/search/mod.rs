//! Search procedures for automatic configuration (paper §3.3): each
//! submodule discovers the configuration for one class of equivalences and
//! generates + checks the equivalence proofs (Fig. 3).

pub mod factor;
pub mod ornament;
pub mod swap;
pub mod tuple_record;
pub mod unpack;
