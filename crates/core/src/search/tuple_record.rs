//! Automatic configuration for porting between anonymous (right-nested)
//! tuples and named records (paper §6.4, Fig. 17) — the search procedure
//! added for the Galois proof engineer.
//!
//! The tuple side's unification heuristics are the interesting part
//! (paper §4.2.1, `liftconfig.ml`):
//!
//! * projection *chains* `fst (snd (… (snd c)))` are recognized as record
//!   field projections, by locating each `fst`/`snd`'s type arguments in the
//!   tuple's field/tail spine;
//! * *partial* pair chains (e.g. `(x, (y, snd (snd c)))`, as produced by the
//!   SAWCore compiler's `cork`) are η-expanded: the reused tail is split
//!   into the remaining field projections (the paper handles non-primitive
//!   projections "using Eta").
//!
//! Both directions are supported, which is what the Galois round-trip
//! workflow needs: port generated functions to records, prove over records,
//! port proofs back.

use pumpkin_kernel::conv::conv;
use pumpkin_kernel::env::Env;
use pumpkin_kernel::name::GlobalName;
use pumpkin_kernel::reduce::whnf;
use pumpkin_kernel::subst::lift;
use pumpkin_kernel::term::{ElimData, Term, TermData};

use crate::config::{
    EquivalenceNames, Lifting, MatchedElim, MatchedProj, NameMap, SideBuild, SideMatch,
};
use crate::error::{RepairError, Result};

/// The analyzed shape of a right-nested tuple type.
#[derive(Clone, Debug)]
pub struct TupleSpec {
    /// The named tuple type (a transparent constant, e.g. `Connection`).
    pub tuple: GlobalName,
    /// Field types, as written (closed terms), `fields.len() == n ≥ 2`.
    pub fields: Vec<Term>,
    /// The "rest" type argument at each pair level `k < n-1`, as written
    /// (e.g. `Conn2`, …); `snd_tys[n-2] == fields[n-1]`.
    pub snd_tys: Vec<Term>,
}

impl TupleSpec {
    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// The type of the tail at level `k` (`tail(0)` is the tuple itself).
    pub fn tail_ty(&self, k: usize) -> Term {
        if k == 0 {
            Term::const_(self.tuple.clone())
        } else if k == self.arity() - 1 {
            self.fields[k].clone()
        } else {
            self.snd_tys[k - 1].clone()
        }
    }

    /// Which pair level has `(A, B)` as its type arguments?
    fn level_of(&self, env: &Env, a: &Term, b: &Term) -> Option<usize> {
        (0..self.arity() - 1)
            .find(|&k| conv(env, a, &self.fields[k]) && conv(env, b, &self.snd_tys[k]))
    }

    /// A projection chain for field `i`, rooted at `target` (which has the
    /// tail type of `from_level`).
    fn proj_term(&self, i: usize, from_level: usize, target: Term) -> Term {
        let n = self.arity();
        debug_assert!(i >= from_level);
        let mut t = target;
        // Walk snd's from `from_level` up to the level we need.
        let upto = if i == n - 1 { n - 1 } else { i };
        for k in from_level..upto {
            t = Term::app(
                Term::const_("snd"),
                [self.fields[k].clone(), self.snd_tys[k].clone(), t],
            );
        }
        if i < n - 1 {
            t = Term::app(
                Term::const_("fst"),
                [self.fields[i].clone(), self.snd_tys[i].clone(), t],
            );
        }
        t
    }

    /// The full right-nested pair chain for the given field values.
    fn pair_chain(&self, args: &[Term]) -> Term {
        let n = self.arity();
        debug_assert_eq!(args.len(), n);
        let mut t = args[n - 1].clone();
        for k in (0..n - 1).rev() {
            t = Term::app(
                Term::construct("prod", 0),
                [
                    self.fields[k].clone(),
                    self.snd_tys[k].clone(),
                    args[k].clone(),
                    t,
                ],
            );
        }
        t
    }
}

/// Analyzes a named tuple type constant into its field/tail spine.
///
/// # Errors
///
/// Fails if the constant does not unfold to a right-nested `prod` of at
/// least two closed field types.
pub fn analyze_tuple(env: &Env, tuple: &GlobalName) -> Result<TupleSpec> {
    let mut fields = Vec::new();
    let mut snd_tys = Vec::new();
    let mut t = Term::const_(tuple.clone());
    loop {
        let w = whnf(env, &t);
        match w.as_ind_app() {
            Some((name, args)) if name.as_str() == "prod" && args.len() == 2 => {
                fields.push(args[0].clone());
                snd_tys.push(args[1].clone());
                t = args[1].clone();
            }
            _ => {
                fields.push(t.clone());
                snd_tys.pop();
                // The last recorded snd_ty equals the last field; restore it.
                snd_tys.push(fields.last().expect("nonempty").clone());
                break;
            }
        }
    }
    if fields.len() < 2 {
        return Err(RepairError::SearchFailed {
            from: tuple.clone(),
            to: tuple.clone(),
            reason: "not a nested product".into(),
        });
    }
    if fields.iter().any(|f| !f.is_closed()) {
        return Err(RepairError::SearchFailed {
            from: tuple.clone(),
            to: tuple.clone(),
            reason: "open field types are not supported".into(),
        });
    }
    Ok(TupleSpec {
        tuple: tuple.clone(),
        fields,
        snd_tys,
    })
}

// ---------------------------------------------------------------------
// Tuple side
// ---------------------------------------------------------------------

struct TupleMatch {
    spec: TupleSpec,
}

impl TupleMatch {
    /// Matches a (possibly partial) pair chain starting at `level`,
    /// η-expanding a reused tail into projections.
    fn match_chain(&self, env: &Env, t: &Term, level: usize) -> Option<Vec<Term>> {
        let n = self.spec.arity();
        if level == n - 1 {
            return Some(vec![t.clone()]);
        }
        if let Some((ind, 0, args)) = t.as_construct_app() {
            if ind.as_str() == "prod" && args.len() == 4 {
                let matches_level = conv(env, &args[0], &self.spec.fields[level])
                    && conv(env, &args[1], &self.spec.snd_tys[level]);
                if matches_level {
                    let mut out = vec![args[2].clone()];
                    out.extend(self.match_chain(env, &args[3], level + 1)?);
                    return Some(out);
                }
            }
        }
        if level == 0 {
            // The whole term must be a pair to count as DepConstr.
            return None;
        }
        // η: a reused tail expands into the remaining projections.
        Some(
            (level..n)
                .map(|i| self.spec.proj_term(i, level, t.clone()))
                .collect(),
        )
    }
}

impl SideMatch for TupleMatch {
    fn match_type(&self, _env: &Env, t: &Term) -> Option<Vec<Term>> {
        match t.data() {
            TermData::Const(c) if c == &self.spec.tuple => Some(Vec::new()),
            _ => None,
        }
    }

    fn match_constr(&self, env: &Env, t: &Term) -> Option<(usize, Vec<Term>)> {
        self.match_chain(env, t, 0).map(|args| (0, args))
    }

    fn match_elim(&self, _env: &Env, _t: &Term) -> Option<MatchedElim> {
        // Tuple-side eliminations in the corpus appear as projection chains,
        // which are handled by `match_proj`.
        None
    }

    fn match_proj(&self, env: &Env, t: &Term) -> Option<MatchedProj> {
        // Peel fst/snd applications, recording each op's level.
        let n = self.spec.arity();
        let mut ops: Vec<(bool, usize)> = Vec::new(); // (is_fst, level), outermost first
        let mut cur = t.clone();
        #[allow(clippy::while_let_loop)]
        loop {
            let Some((c, args)) = cur.as_const_app() else {
                break;
            };
            if args.len() != 3 {
                break;
            }
            let is_fst = match c.as_str() {
                "fst" => true,
                "snd" => false,
                _ => break,
            };
            let Some(level) = self.spec.level_of(env, &args[0], &args[1]) else {
                break;
            };
            ops.push((is_fst, level));
            cur = args[2].clone();
        }
        if ops.is_empty() {
            return None;
        }
        // Innermost op must be at level 0, levels decrease inward by 1, all
        // inner ops are snd.
        let innermost = ops.len() - 1;
        for (i, &(is_fst, level)) in ops.iter().enumerate() {
            let expected_level = innermost - i;
            if level != expected_level {
                return None;
            }
            if i != 0 && is_fst {
                return None;
            }
        }
        let (outer_fst, outer_level) = ops[0];
        let field = if outer_fst {
            outer_level
        } else if outer_level == n - 2 {
            n - 1
        } else {
            return None;
        };
        Some(MatchedProj { field, target: cur })
    }
}

struct TupleBuild {
    spec: TupleSpec,
}

impl TupleBuild {
    /// Nested `prod` eliminations realizing the record's dependent
    /// eliminator over the tuple (used when porting record-destructuring
    /// proofs back).
    fn nested_elim(&self, motive: &Term, case: &Term, scrut: &Term) -> Term {
        let spec = &self.spec;
        let n = spec.arity();
        // chain(xs, r): the pair chain of fields 0..k-1 (xs) ending in r.
        fn chain(spec: &TupleSpec, xs: &[Term], r: Term) -> Term {
            let mut t = r;
            for (k, x) in xs.iter().enumerate().rev() {
                t = Term::app(
                    Term::construct("prod", 0),
                    [
                        spec.fields[k].clone(),
                        spec.snd_tys[k].clone(),
                        x.clone(),
                        t,
                    ],
                );
            }
            t
        }
        #[allow(clippy::too_many_arguments)]
        fn level(
            spec: &TupleSpec,
            n: usize,
            motive: &Term,
            case: &Term,
            k: usize,
            extra: usize,
            scrut: Term,
            xs: &[Term],
        ) -> Term {
            let fk = spec.fields[k].clone();
            let tk1 = spec.snd_tys[k].clone();
            // motive_k = fun (r : prod fk tk1) => P (chain(xs, r))
            let xs1: Vec<Term> = xs.iter().map(|x| lift(x, 1)).collect();
            let motive_k = Term::lambda(
                "r",
                Term::app(Term::ind("prod"), [fk.clone(), tk1.clone()]),
                Term::app(lift(motive, extra + 1), [chain(spec, &xs1, Term::rel(0))]),
            );
            let xs2: Vec<Term> = xs.iter().map(|x| lift(x, 2)).collect();
            let inner = if k == n - 2 {
                let mut args = xs2.clone();
                args.push(Term::rel(1));
                args.push(Term::rel(0));
                Term::app(lift(case, extra + 2), args)
            } else {
                let mut xs_next = xs2.clone();
                xs_next.push(Term::rel(1));
                level(
                    spec,
                    n,
                    motive,
                    case,
                    k + 1,
                    extra + 2,
                    Term::rel(0),
                    &xs_next,
                )
            };
            let case_k = Term::lambda("x", fk.clone(), Term::lambda("rest", lift(&tk1, 1), inner));
            Term::elim(ElimData {
                ind: "prod".into(),
                params: vec![fk, tk1],
                motive: motive_k,
                cases: vec![case_k],
                scrutinee: scrut,
            })
        }
        level(spec, n, motive, case, 0, 0, scrut.clone(), &[])
    }
}

impl SideBuild for TupleBuild {
    fn build_type(&self, _env: &Env, _args: Vec<Term>) -> Result<Term> {
        Ok(Term::const_(self.spec.tuple.clone()))
    }

    fn build_constr(&self, _env: &Env, _j: usize, args: Vec<Term>) -> Result<Term> {
        if args.len() != self.spec.arity() {
            return Err(RepairError::UnificationFailed {
                term: Term::const_(self.spec.tuple.clone()),
                reason: format!(
                    "record constructor applied to {} of {} fields",
                    args.len(),
                    self.spec.arity()
                ),
            });
        }
        Ok(self.spec.pair_chain(&args))
    }

    fn build_elim(&self, _env: &Env, me: MatchedElim) -> Result<Term> {
        if me.cases.len() != 1 {
            return Err(RepairError::UnificationFailed {
                term: Term::const_(self.spec.tuple.clone()),
                reason: "record eliminator must have exactly one case".into(),
            });
        }
        Ok(self.nested_elim(&me.motive, &me.cases[0], &me.scrutinee))
    }

    fn build_proj(&self, _env: &Env, proj: MatchedProj) -> Result<Term> {
        Ok(self.spec.proj_term(proj.field, 0, proj.target))
    }
}

// ---------------------------------------------------------------------
// Record side
// ---------------------------------------------------------------------

struct RecordMatch {
    record: GlobalName,
    projs: Vec<GlobalName>,
}

impl SideMatch for RecordMatch {
    fn match_type(&self, _env: &Env, t: &Term) -> Option<Vec<Term>> {
        let (name, args) = t.as_ind_app()?;
        (name == &self.record && args.is_empty()).then(Vec::new)
    }

    fn match_constr(&self, _env: &Env, t: &Term) -> Option<(usize, Vec<Term>)> {
        let (name, j, args) = t.as_construct_app()?;
        (name == &self.record && j == 0 && args.len() == self.projs.len())
            .then(|| (0, args.to_vec()))
    }

    fn match_elim(&self, _env: &Env, t: &Term) -> Option<MatchedElim> {
        match t.data() {
            TermData::Elim(e) if e.ind == self.record => Some(MatchedElim {
                type_args: Vec::new(),
                motive: e.motive.clone(),
                cases: e.cases.clone(),
                scrutinee: e.scrutinee.clone(),
            }),
            _ => None,
        }
    }

    fn match_proj(&self, _env: &Env, t: &Term) -> Option<MatchedProj> {
        let (c, args) = t.as_const_app()?;
        if args.len() != 1 {
            return None;
        }
        let field = self.projs.iter().position(|p| p == c)?;
        Some(MatchedProj {
            field,
            target: args[0].clone(),
        })
    }
}

struct RecordBuild {
    record: GlobalName,
    projs: Vec<GlobalName>,
}

impl SideBuild for RecordBuild {
    fn build_type(&self, _env: &Env, _args: Vec<Term>) -> Result<Term> {
        Ok(Term::ind(self.record.clone()))
    }

    fn build_constr(&self, _env: &Env, _j: usize, args: Vec<Term>) -> Result<Term> {
        Ok(Term::app(Term::construct(self.record.clone(), 0), args))
    }

    fn build_elim(&self, _env: &Env, me: MatchedElim) -> Result<Term> {
        Ok(Term::elim(ElimData {
            ind: self.record.clone(),
            params: vec![],
            motive: me.motive,
            cases: me.cases,
            scrutinee: me.scrutinee,
        }))
    }

    fn build_proj(&self, _env: &Env, proj: MatchedProj) -> Result<Term> {
        Ok(Term::app(
            Term::const_(self.projs[proj.field].clone()),
            [proj.target],
        ))
    }
}

// ---------------------------------------------------------------------
// Equivalence + configuration
// ---------------------------------------------------------------------

fn generate_equivalence(
    env: &mut Env,
    spec: &TupleSpec,
    record: &GlobalName,
    projs: &[GlobalName],
) -> Result<EquivalenceNames> {
    let n = spec.arity();
    let tuple_ty = Term::const_(spec.tuple.clone());
    let record_ty = Term::ind(record.clone());
    let f_name = GlobalName::new(format!("{}_to_{}", spec.tuple, record));
    let g_name = GlobalName::new(format!("{}_to_{}", record, spec.tuple));
    let section_name = GlobalName::new(format!("{f_name}_section"));
    let retraction_name = GlobalName::new(format!("{f_name}_retraction"));

    if !env.contains(f_name.as_str()) {
        // f := fun (c : T) => MkRecord (proj chains of c).
        let body = Term::app(
            Term::construct(record.clone(), 0),
            (0..n).map(|i| spec.proj_term(i, 0, Term::rel(0))),
        );
        let f = Term::lambda("c", tuple_ty.clone(), body);
        env.define(
            f_name.clone(),
            Term::arrow(tuple_ty.clone(), record_ty.clone()),
            f,
        )?;
    }
    if !env.contains(g_name.as_str()) {
        // g := fun (r : R) => pair chain of record projections.
        let args: Vec<Term> = projs
            .iter()
            .map(|p| Term::app(Term::const_(p.clone()), [Term::rel(0)]))
            .collect();
        let g = Term::lambda("r", record_ty.clone(), spec.pair_chain(&args));
        env.define(
            g_name.clone(),
            Term::arrow(record_ty.clone(), tuple_ty.clone()),
            g,
        )?;
    }
    let eq_app = |ty: &Term, x: Term, y: Term| Term::app(Term::ind("eq"), [ty.clone(), x, y]);
    let round = |outer: &GlobalName, inner: &GlobalName, x: Term| {
        Term::app(
            Term::const_(outer.clone()),
            [Term::app(Term::const_(inner.clone()), [x])],
        )
    };
    if !env.contains(section_name.as_str()) {
        // ∀ c, g (f c) = c: destructure the tuple fully, then refl.
        let ty = Term::pi(
            "c",
            tuple_ty.clone(),
            eq_app(
                &tuple_ty,
                round(&g_name, &f_name, Term::rel(0)),
                Term::rel(0),
            ),
        );
        let motive = Term::lambda(
            "c",
            lift(&tuple_ty, 1),
            eq_app(
                &tuple_ty,
                round(&g_name, &f_name, Term::rel(0)),
                Term::rel(0),
            ),
        );
        // case := fun (x0 … x_{n-1}) => eq_refl T (pair chain of refs).
        let binders: Vec<pumpkin_kernel::term::Binder> = (0..n)
            .map(|i| {
                pumpkin_kernel::term::Binder::new(format!("x{i}").as_str(), spec.fields[i].clone())
            })
            .collect();
        let refs: Vec<Term> = (0..n).map(|i| Term::rel(n - 1 - i)).collect();
        let case = Term::lambdas(
            binders,
            Term::app(
                Term::construct("eq", 0),
                [tuple_ty.clone(), spec.pair_chain(&refs)],
            ),
        );
        let builder = TupleBuild { spec: spec.clone() };
        let body = Term::lambda(
            "c",
            tuple_ty.clone(),
            builder.nested_elim(&motive, &case, &Term::rel(0)),
        );
        env.define(section_name.clone(), ty, body)?;
    }
    if !env.contains(retraction_name.as_str()) {
        // ∀ r, f (g r) = r: one record elimination, then refl.
        let ty = Term::pi(
            "r",
            record_ty.clone(),
            eq_app(
                &record_ty,
                round(&f_name, &g_name, Term::rel(0)),
                Term::rel(0),
            ),
        );
        let binders: Vec<pumpkin_kernel::term::Binder> = (0..n)
            .map(|i| {
                pumpkin_kernel::term::Binder::new(format!("x{i}").as_str(), spec.fields[i].clone())
            })
            .collect();
        let refs: Vec<Term> = (0..n).map(|i| Term::rel(n - 1 - i)).collect();
        let case = Term::lambdas(
            binders,
            Term::app(
                Term::construct("eq", 0),
                [
                    record_ty.clone(),
                    Term::app(Term::construct(record.clone(), 0), refs),
                ],
            ),
        );
        let body = Term::lambda(
            "r",
            record_ty.clone(),
            Term::elim(ElimData {
                ind: record.clone(),
                params: vec![],
                motive: Term::lambda(
                    "r",
                    lift(&record_ty, 1),
                    eq_app(
                        &record_ty,
                        round(&f_name, &g_name, Term::rel(0)),
                        Term::rel(0),
                    ),
                ),
                cases: vec![case],
                scrutinee: Term::rel(0),
            }),
        );
        env.define(retraction_name.clone(), ty, body)?;
    }
    Ok(EquivalenceNames {
        f: f_name,
        g: g_name,
        section: section_name,
        retraction: retraction_name,
    })
}

fn validate(env: &Env, spec: &TupleSpec, record: &GlobalName, projs: &[GlobalName]) -> Result<()> {
    let decl = env.inductive(record)?;
    if decl.ctors.len() != 1 || decl.nparams() != 0 || decl.nindices() != 0 {
        return Err(RepairError::SearchFailed {
            from: spec.tuple.clone(),
            to: record.clone(),
            reason: "target must be a simple single-constructor record".into(),
        });
    }
    let args = &decl.ctors[0].args;
    if args.len() != spec.arity() {
        return Err(RepairError::SearchFailed {
            from: spec.tuple.clone(),
            to: record.clone(),
            reason: format!(
                "record has {} fields, tuple has {}",
                args.len(),
                spec.arity()
            ),
        });
    }
    for (i, b) in args.iter().enumerate() {
        if !conv(env, &b.ty, &spec.fields[i]) {
            return Err(RepairError::SearchFailed {
                from: spec.tuple.clone(),
                to: record.clone(),
                reason: format!("field #{i} type mismatch"),
            });
        }
    }
    if projs.len() != spec.arity() {
        return Err(RepairError::BadMapping(format!(
            "{} projections given for {} fields",
            projs.len(),
            spec.arity()
        )));
    }
    for p in projs {
        env.const_decl(p)
            .map_err(|_| RepairError::MissingDependency(p.clone()))?;
    }
    Ok(())
}

/// Configures tuple → record (the paper's step 1: make generated code
/// readable).
///
/// # Errors
///
/// Fails if the shapes don't correspond or the generated equivalence does
/// not check.
pub fn configure_to_record(
    env: &mut Env,
    tuple: &GlobalName,
    record: &GlobalName,
    projs: &[GlobalName],
    names: NameMap,
) -> Result<Lifting> {
    let spec = analyze_tuple(env, tuple)?;
    validate(env, &spec, record, projs)?;
    let equivalence = generate_equivalence(env, &spec, record, projs)?;
    Ok(Lifting {
        a_name: tuple.clone(),
        b_name: record.clone(),
        matcher: Box::new(TupleMatch { spec: spec.clone() }),
        builder: Box::new(RecordBuild {
            record: record.clone(),
            projs: projs.to_vec(),
        }),
        names,
        equivalence: Some(equivalence),
    })
}

/// Configures record → tuple (the paper's step 3: port the human-written
/// proofs back to the generated representation).
///
/// # Errors
///
/// Fails if the shapes don't correspond or the generated equivalence does
/// not check.
pub fn configure_to_tuple(
    env: &mut Env,
    record: &GlobalName,
    tuple: &GlobalName,
    projs: &[GlobalName],
    names: NameMap,
) -> Result<Lifting> {
    let spec = analyze_tuple(env, tuple)?;
    validate(env, &spec, record, projs)?;
    let equivalence = generate_equivalence(env, &spec, record, projs)?;
    Ok(Lifting {
        a_name: record.clone(),
        b_name: tuple.clone(),
        matcher: Box::new(RecordMatch {
            record: record.clone(),
            projs: projs.to_vec(),
        }),
        builder: Box::new(TupleBuild { spec }),
        names,
        equivalence: Some(equivalence),
    })
}

/// The standard projection list for the Galois `Record.Connection`.
pub fn connection_projs() -> Vec<GlobalName> {
    [
        "clientAuthFlag",
        "corked",
        "corkedIO",
        "handshake",
        "isCachingEnabled",
        "keyExchangeEPH",
        "mode",
        "resumeFromCache",
        "serverCanSendOCSP",
    ]
    .iter()
    .map(GlobalName::new)
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lift::LiftState;
    use crate::repairer::Repairer;
    use pumpkin_kernel::reduce::normalize;
    use pumpkin_stdlib as stdlib;

    fn env_with_equiv() -> (Env, Lifting) {
        let mut env = stdlib::std_env();
        let l = configure_to_record(
            &mut env,
            &"Connection".into(),
            &"Record.Connection".into(),
            &connection_projs(),
            NameMap::prefix("", "Record."),
        )
        .unwrap();
        (env, l)
    }

    #[test]
    fn analyze_connection_spine() {
        let env = stdlib::std_env();
        let spec = analyze_tuple(&env, &"Connection".into()).unwrap();
        assert_eq!(spec.arity(), 9);
        assert_eq!(spec.fields[0], Term::ind("bool"));
        assert_eq!(spec.fields[3], Term::const_("Handshake"));
        assert_eq!(spec.snd_tys[0], Term::const_("Conn2"));
        assert_eq!(spec.snd_tys[7], Term::ind("bool"));
    }

    #[test]
    fn equivalence_typechecks() {
        let (env, l) = env_with_equiv();
        let eqv = l.equivalence.as_ref().unwrap();
        assert!(env.contains(eqv.section.as_str()));
        assert!(env.contains(eqv.retraction.as_str()));
    }

    #[test]
    fn cork_ports_to_records_and_computes() {
        let (mut env, l) = env_with_equiv();
        let mut st = LiftState::new();
        let new = Repairer::new(&l)
            .state(&mut st)
            .run_one(&mut env, &"cork".into())
            .unwrap();
        assert_eq!(new.as_str(), "Record.cork");
        // Record.cork increments the corked field.
        let rec = pumpkin_lang::term(
            &env,
            "MkConnection true (bvNat O) (bvNat O) \
             (pair word word (bvNat O) (bvNat O)) false false (bvNat O) false true",
        )
        .unwrap();
        let t = Term::app(
            Term::const_("corked"),
            [Term::app(Term::const_("Record.cork"), [rec])],
        );
        let one = pumpkin_lang::term(&env, "bvNat (S O)").unwrap();
        assert_eq!(normalize(&env, &t), normalize(&env, &one));
    }

    #[test]
    fn cork_lemma_ports_to_records() {
        let (mut env, l) = env_with_equiv();
        let mut st = LiftState::new();
        let new = Repairer::new(&l)
            .state(&mut st)
            .run_one(&mut env, &"corkLemma".into())
            .unwrap();
        crate::repair::check_source_free(&env, &l, &new).unwrap();
        // The ported statement talks about the `corked` projection.
        let decl = env.const_decl(&new).unwrap();
        assert!(decl.ty.mentions_global(&"corked".into()));
    }

    #[test]
    fn round_trip_record_proof_back_to_tuples() {
        // Port a record-level lemma back to tuples (the paper's step 3).
        let mut env = stdlib::std_env();
        // A record-level proof written by the "proof engineer":
        // corked (MkConnection …fields…) computes, so a simple lemma about
        // Record.cork suffices: we reuse corkLemma ported forward, then port
        // it back and compare types.
        let fwd = configure_to_record(
            &mut env,
            &"Connection".into(),
            &"Record.Connection".into(),
            &connection_projs(),
            NameMap::prefix("", "Record."),
        )
        .unwrap();
        let mut st = LiftState::new();
        let ported = Repairer::new(&fwd)
            .state(&mut st)
            .run_one(&mut env, &"corkLemma".into())
            .unwrap();

        let back = configure_to_tuple(
            &mut env,
            &"Record.Connection".into(),
            &"Connection".into(),
            &connection_projs(),
            NameMap::prefix("Record.", "Tup."),
        )
        .unwrap();
        let mut st2 = LiftState::new();
        // Stop the round trip at the function boundary: Record.cork is the
        // image of cork.
        st2.map_constant("Record.cork", "cork");
        let round = Repairer::new(&back)
            .state(&mut st2)
            .run_one(&mut env, &ported)
            .unwrap();
        // The round-tripped lemma is about tuples again and typechecks
        // (define() already verified); its type matches the original's.
        let orig = env.const_decl(&"corkLemma".into()).unwrap().ty.clone();
        let got = env.const_decl(&round).unwrap().ty.clone();
        assert!(pumpkin_kernel::conv::conv(&env, &orig, &got));
    }
}
