//! Automatic configuration for factoring constructors out to `bool`
//! (paper Fig. 4 and §3.1.1): `I` with two nullary constructors is
//! equivalent to `J` with a single constructor over `bool`, once the proof
//! engineer says which constructor maps to `true` and which to `false`.
//!
//! The dependent constructors of `J` are `makeJ true` / `makeJ false`, and
//! its dependent eliminator cases on the wrapped `bool` — exactly the
//! repaired `and`/`demorgan_1` shapes shown in the paper.

use pumpkin_kernel::env::Env;
use pumpkin_kernel::name::GlobalName;
use pumpkin_kernel::subst::lift;
use pumpkin_kernel::term::{ElimData, Term, TermData};

use crate::config::{EquivalenceNames, Lifting, MatchedElim, NameMap, SideBuild, SideMatch};
use crate::error::{RepairError, Result};

struct FactorMatch {
    a: GlobalName,
}

impl SideMatch for FactorMatch {
    fn match_type(&self, _env: &Env, t: &Term) -> Option<Vec<Term>> {
        let (name, args) = t.as_ind_app()?;
        (name == &self.a && args.is_empty()).then(Vec::new)
    }

    fn match_constr(&self, _env: &Env, t: &Term) -> Option<(usize, Vec<Term>)> {
        let (name, j, args) = t.as_construct_app()?;
        (name == &self.a && args.is_empty()).then(|| (j, Vec::new()))
    }

    fn match_elim(&self, _env: &Env, t: &Term) -> Option<MatchedElim> {
        match t.data() {
            TermData::Elim(e) if e.ind == self.a => Some(MatchedElim {
                type_args: Vec::new(),
                motive: e.motive.clone(),
                cases: e.cases.clone(),
                scrutinee: e.scrutinee.clone(),
            }),
            _ => None,
        }
    }
}

struct FactorBuild {
    b: GlobalName,
    /// `bool_of[j]` = index of the `bool` constructor for `I`'s ctor `j`
    /// (0 = `true`, 1 = `false`).
    bool_of: Vec<usize>,
}

impl FactorBuild {
    fn make(&self, bool_ctor: usize) -> Term {
        Term::app(
            Term::construct(self.b.clone(), 0),
            [Term::construct("bool", bool_ctor)],
        )
    }
}

impl SideBuild for FactorBuild {
    fn build_type(&self, _env: &Env, _args: Vec<Term>) -> Result<Term> {
        Ok(Term::ind(self.b.clone()))
    }

    fn build_constr(&self, _env: &Env, j: usize, _args: Vec<Term>) -> Result<Term> {
        let k = *self
            .bool_of
            .get(j)
            .ok_or_else(|| RepairError::BadMapping(format!("no constructor #{j}")))?;
        Ok(self.make(k))
    }

    fn build_elim(&self, _env: &Env, me: MatchedElim) -> Result<Term> {
        // Elim[J](s; P){ fun b => Elim[bool](b; fun b => P (makeJ b)){…} }
        let p = me.motive;
        let mut bool_cases = vec![Term::prop(); me.cases.len()];
        for (j, c) in me.cases.into_iter().enumerate() {
            bool_cases[self.bool_of[j]] = lift(&c, 1);
        }
        let inner_motive = Term::lambda(
            "b",
            Term::ind("bool"),
            Term::app(
                lift(&p, 2),
                [Term::app(
                    Term::construct(self.b.clone(), 0),
                    [Term::rel(0)],
                )],
            ),
        );
        let case = Term::lambda(
            "b",
            Term::ind("bool"),
            Term::elim(ElimData {
                ind: "bool".into(),
                params: vec![],
                motive: inner_motive,
                cases: bool_cases,
                scrutinee: Term::rel(0),
            }),
        );
        Ok(Term::elim(ElimData {
            ind: self.b.clone(),
            params: vec![],
            motive: p,
            cases: vec![case],
            scrutinee: me.scrutinee,
        }))
    }
}

/// Configures `I ≃ J` for the given constructor-to-`bool` mapping
/// (paper §3.1.1: "as long as she first tells Pumpkin Pi which constructor
/// of I maps to true and which maps to false"). Generates and checks the
/// induced equivalence.
///
/// # Errors
///
/// Fails unless `a` has exactly two nullary constructors, `b` has exactly
/// one constructor over `bool`, and the mapping is a bijection.
pub fn configure_with(
    env: &mut Env,
    a_name: &GlobalName,
    b_name: &GlobalName,
    bool_of: [usize; 2],
    names: NameMap,
) -> Result<Lifting> {
    let a = env.inductive(a_name)?.clone();
    let b = env.inductive(b_name)?.clone();
    if a.ctors.len() != 2 || a.ctors.iter().any(|c| !c.args.is_empty()) || a.nparams() != 0 {
        return Err(RepairError::SearchFailed {
            from: a_name.clone(),
            to: b_name.clone(),
            reason: "source must have exactly two nullary constructors".into(),
        });
    }
    let b_ok = b.ctors.len() == 1
        && b.nparams() == 0
        && b.ctors[0].args.len() == 1
        && b.ctors[0].args[0].ty == Term::ind("bool");
    if !b_ok {
        return Err(RepairError::SearchFailed {
            from: a_name.clone(),
            to: b_name.clone(),
            reason: "target must have one constructor over bool".into(),
        });
    }
    if !(bool_of == [0, 1] || bool_of == [1, 0]) {
        return Err(RepairError::BadMapping(format!(
            "{bool_of:?} is not a bijection onto bool"
        )));
    }

    let builder = FactorBuild {
        b: b_name.clone(),
        bool_of: bool_of.to_vec(),
    };

    // f : I → J.
    let f_name = GlobalName::new(format!("{a_name}_to_{b_name}"));
    let g_name = GlobalName::new(format!("{b_name}_to_{a_name}"));
    let section_name = GlobalName::new(format!("{f_name}_section"));
    let retraction_name = GlobalName::new(format!("{f_name}_retraction"));
    let ind_a = Term::ind(a_name.clone());
    let ind_b = Term::ind(b_name.clone());

    if !env.contains(f_name.as_str()) {
        let f = Term::lambda(
            "x",
            ind_a.clone(),
            Term::elim(ElimData {
                ind: a_name.clone(),
                params: vec![],
                motive: Term::lambda("_x", ind_a.clone(), ind_b.clone()),
                cases: vec![builder.make(bool_of[0]), builder.make(bool_of[1])],
                scrutinee: Term::rel(0),
            }),
        );
        env.define(f_name.clone(), Term::arrow(ind_a.clone(), ind_b.clone()), f)?;
    }
    if !env.contains(g_name.as_str()) {
        // g : J → I, casing on the wrapped bool.
        let mut bool_cases = vec![Term::prop(); 2];
        bool_cases[bool_of[0]] = Term::construct(a_name.clone(), 0);
        bool_cases[bool_of[1]] = Term::construct(a_name.clone(), 1);
        let g = Term::lambda(
            "x",
            ind_b.clone(),
            Term::elim(ElimData {
                ind: b_name.clone(),
                params: vec![],
                motive: Term::lambda("_x", ind_b.clone(), ind_a.clone()),
                cases: vec![Term::lambda(
                    "b",
                    Term::ind("bool"),
                    Term::elim(ElimData {
                        ind: "bool".into(),
                        params: vec![],
                        motive: Term::lambda("_b", Term::ind("bool"), lift(&ind_a, 2)),
                        cases: bool_cases,
                        scrutinee: Term::rel(0),
                    }),
                )],
                scrutinee: Term::rel(0),
            }),
        );
        env.define(g_name.clone(), Term::arrow(ind_b.clone(), ind_a.clone()), g)?;
    }

    let eq_app = |ty: &Term, x: Term, y: Term| Term::app(Term::ind("eq"), [ty.clone(), x, y]);
    let round = |outer: &GlobalName, inner: &GlobalName, x: Term| {
        Term::app(
            Term::const_(outer.clone()),
            [Term::app(Term::const_(inner.clone()), [x])],
        )
    };
    if !env.contains(section_name.as_str()) {
        // ∀ x : I, g (f x) = x — both cases reflexive.
        let ty = Term::pi(
            "x",
            ind_a.clone(),
            eq_app(&ind_a, round(&g_name, &f_name, Term::rel(0)), Term::rel(0)),
        );
        let body = Term::lambda(
            "x",
            ind_a.clone(),
            Term::elim(ElimData {
                ind: a_name.clone(),
                params: vec![],
                motive: Term::lambda(
                    "x",
                    lift(&ind_a, 1),
                    eq_app(&ind_a, round(&g_name, &f_name, Term::rel(0)), Term::rel(0)),
                ),
                cases: vec![
                    Term::app(
                        Term::construct("eq", 0),
                        [ind_a.clone(), Term::construct(a_name.clone(), 0)],
                    ),
                    Term::app(
                        Term::construct("eq", 0),
                        [ind_a.clone(), Term::construct(a_name.clone(), 1)],
                    ),
                ],
                scrutinee: Term::rel(0),
            }),
        );
        env.define(section_name.clone(), ty, body)?;
    }
    if !env.contains(retraction_name.as_str()) {
        // ∀ j : J, f (g j) = j — case on the wrapped bool, both reflexive.
        let ty = Term::pi(
            "x",
            ind_b.clone(),
            eq_app(&ind_b, round(&f_name, &g_name, Term::rel(0)), Term::rel(0)),
        );
        let refl_at =
            |k: usize| Term::app(Term::construct("eq", 0), [ind_b.clone(), builder.make(k)]);
        let body = Term::lambda(
            "x",
            ind_b.clone(),
            Term::elim(ElimData {
                ind: b_name.clone(),
                params: vec![],
                motive: Term::lambda(
                    "x",
                    lift(&ind_b, 1),
                    eq_app(&ind_b, round(&f_name, &g_name, Term::rel(0)), Term::rel(0)),
                ),
                cases: vec![Term::lambda(
                    "b",
                    Term::ind("bool"),
                    Term::elim(ElimData {
                        ind: "bool".into(),
                        params: vec![],
                        motive: Term::lambda(
                            "b",
                            Term::ind("bool"),
                            eq_app(
                                &lift(&ind_b, 3),
                                round(
                                    &f_name,
                                    &g_name,
                                    Term::app(Term::construct(b_name.clone(), 0), [Term::rel(0)]),
                                ),
                                Term::app(Term::construct(b_name.clone(), 0), [Term::rel(0)]),
                            ),
                        ),
                        cases: vec![refl_at(0), refl_at(1)],
                        scrutinee: Term::rel(0),
                    }),
                )],
                scrutinee: Term::rel(0),
            }),
        );
        env.define(retraction_name.clone(), ty, body)?;
    }

    Ok(Lifting {
        a_name: a_name.clone(),
        b_name: b_name.clone(),
        matcher: Box::new(FactorMatch { a: a_name.clone() }),
        builder: Box::new(builder),
        names,
        equivalence: Some(EquivalenceNames {
            f: f_name,
            g: g_name,
            section: section_name,
            retraction: retraction_name,
        }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lift::LiftState;
    use crate::repairer::Repairer;
    use pumpkin_kernel::reduce::normalize;
    use pumpkin_stdlib as stdlib;

    fn configured() -> (Env, Lifting) {
        let mut env = stdlib::std_env();
        let l = configure_with(
            &mut env,
            &"I".into(),
            &"J".into(),
            [0, 1], // A ↦ true, B ↦ false (constr_refactor.v's mapping)
            NameMap::prefix("I.", "J."),
        )
        .unwrap();
        (env, l)
    }

    #[test]
    fn equivalence_checks_and_computes() {
        let (env, l) = configured();
        let eqv = l.equivalence.as_ref().unwrap();
        let fa = Term::app(Term::const_(eqv.f.clone()), [Term::construct("I", 0)]);
        let expect = pumpkin_lang::term(&env, "makeJ true").unwrap();
        assert_eq!(normalize(&env, &fa), normalize(&env, &expect));
    }

    #[test]
    fn repairs_demorgan_development() {
        let (mut env, l) = configured();
        let mut st = LiftState::new();
        let report = Repairer::new(&l)
            .state(&mut st)
            .run(
                &mut env,
                &["I.neg", "I.and", "I.or", "I.demorgan_1", "I.demorgan_2"],
            )
            .unwrap();
        assert_eq!(report.repaired.len(), 5);
        // J.and behaves like I.and through the equivalence.
        let f = l.equivalence.as_ref().unwrap().f.clone();
        for (x, y) in [(0usize, 0usize), (0, 1), (1, 0), (1, 1)] {
            let old = Term::app(
                Term::const_("I.and"),
                [Term::construct("I", x), Term::construct("I", y)],
            );
            let new = Term::app(
                Term::const_("J.and"),
                [
                    Term::app(Term::const_(f.clone()), [Term::construct("I", x)]),
                    Term::app(Term::const_(f.clone()), [Term::construct("I", y)]),
                ],
            );
            let transported = Term::app(Term::const_(f.clone()), [old]);
            assert_eq!(
                normalize(&env, &transported),
                normalize(&env, &new),
                "and {x} {y}"
            );
        }
        // The repaired proofs no longer mention I.
        crate::repair::check_source_free(&env, &l, &"J.demorgan_1".into()).unwrap();
    }
}
