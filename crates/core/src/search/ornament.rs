//! Automatic configuration for algebraic ornaments (paper §3.3 search
//! procedure 3, case study §6.2): porting from a base inductive to its
//! indexed refinement packed in a Σ type — `list T ≃ Σ(n : nat). vector T n`
//! — the Devoid class of equivalences.
//!
//! The discovered configuration (paper §6.2.1) is registered as transparent
//! constants so repaired terms stay readable:
//!
//! * `sig_vector T`     — the packed type `Σ(n). vector T n`;
//! * `list_sig.dep_constr_0/1` — pack the index into an existential;
//! * `list_sig.eta`     — propositional η for Σ;
//! * `list_sig.dep_elim` — eliminate over the projections.
//!
//! Like Devoid (and unlike the syntactic configurations), this direction is
//! A→B only: the paper notes complete B→A heuristics remain open (§6.2.3).

use pumpkin_kernel::env::Env;
use pumpkin_kernel::name::GlobalName;
use pumpkin_kernel::term::{Term, TermData};
use pumpkin_lang::load_source;

use crate::config::{EquivalenceNames, Lifting, MatchedElim, NameMap, SideBuild, SideMatch};
use crate::error::{RepairError, Result};

/// The configuration discovered for `list ≃ Σ(n). vector n`, plus the
/// generated equivalence (all kernel-checked at load).
pub const CONFIG_SRC: &str = r#"
Definition sig_vector : Type 1 -> Type 1 :=
  fun (T : Type 1) => sigT nat (fun (n : nat) => vector T n).

Definition list_sig.dep_constr_0 : forall (T : Type 1), sig_vector T :=
  fun (T : Type 1) =>
    existT nat (fun (n : nat) => vector T n) O (vnil T).

Definition list_sig.dep_constr_1 :
    forall (T : Type 1) (t : T) (s : sig_vector T), sig_vector T :=
  fun (T : Type 1) (t : T) (s : sig_vector T) =>
    existT nat (fun (n : nat) => vector T n)
      (S (projT1 nat (fun (n : nat) => vector T n) s))
      (vcons T t
        (projT1 nat (fun (n : nat) => vector T n) s)
        (projT2 nat (fun (n : nat) => vector T n) s)).

(* Propositional eta for the packed type (paper section 4.1.2). *)
Definition list_sig.eta : forall (T : Type 1), sig_vector T -> sig_vector T :=
  fun (T : Type 1) (s : sig_vector T) =>
    existT nat (fun (n : nat) => vector T n)
      (projT1 nat (fun (n : nat) => vector T n) s)
      (projT2 nat (fun (n : nat) => vector T n) s).

(* The dependent eliminator: eliminate over the projections
   (paper section 6.2.1). *)
Definition list_sig.dep_elim : forall (T : Type 1) (P : sig_vector T -> Type 1)
    (pnil : P (list_sig.dep_constr_0 T))
    (pcons : forall (t : T) (s : sig_vector T),
       P (list_sig.eta T s) -> P (list_sig.dep_constr_1 T t s))
    (s : sig_vector T),
    P (list_sig.eta T s) :=
  fun (T : Type 1) (P : sig_vector T -> Type 1)
      (pnil : P (list_sig.dep_constr_0 T))
      (pcons : forall (t : T) (s : sig_vector T),
         P (list_sig.eta T s) -> P (list_sig.dep_constr_1 T t s))
      (s : sig_vector T) =>
    elim (projT2 nat (fun (n : nat) => vector T n) s) : vector T
      return (fun (n : nat) (v : vector T n) =>
        P (existT nat (fun (k : nat) => vector T k) n v))
    with
    | pnil
    | fun (t : T) (n : nat) (v : vector T n)
          (ih : P (existT nat (fun (k : nat) => vector T k) n v)) =>
        pcons t (existT nat (fun (k : nat) => vector T k) n v) ih
    end.

(* The equivalence (paper Fig. 3's shape, for the ornament). *)
Definition list_to_sig_vector : forall (T : Type 1), list T -> sig_vector T :=
  fun (T : Type 1) (l : list T) =>
    elim l : list T return (fun (x : list T) => sig_vector T) with
    | list_sig.dep_constr_0 T
    | fun (t : T) (l' : list T) (ih : sig_vector T) =>
        list_sig.dep_constr_1 T t ih
    end.

Definition sig_vector_to_list : forall (T : Type 1), sig_vector T -> list T :=
  fun (T : Type 1) (s : sig_vector T) =>
    list_sig.dep_elim T (fun (x : sig_vector T) => list T)
      (nil T)
      (fun (t : T) (s' : sig_vector T) (ih : list T) => cons T t ih)
      s.

Definition list_to_sig_vector_section : forall (T : Type 1) (l : list T),
    eq (list T) (sig_vector_to_list T (list_to_sig_vector T l)) l :=
  fun (T : Type 1) (l : list T) =>
    elim l : list T
      return (fun (x : list T) =>
        eq (list T) (sig_vector_to_list T (list_to_sig_vector T x)) x)
    with
    | eq_refl (list T) (nil T)
    | fun (t : T) (l' : list T)
          (ih : eq (list T) (sig_vector_to_list T (list_to_sig_vector T l')) l') =>
        f_equal (list T) (list T) (cons T t)
          (sig_vector_to_list T (list_to_sig_vector T l')) l' ih
    end.

Definition list_to_sig_vector_retraction : forall (T : Type 1) (s : sig_vector T),
    eq (sig_vector T) (list_to_sig_vector T (sig_vector_to_list T s)) s :=
  fun (T : Type 1) (s : sig_vector T) =>
    elim s : sigT nat (fun (n : nat) => vector T n)
      return (fun (x : sigT nat (fun (n : nat) => vector T n)) =>
        eq (sig_vector T) (list_to_sig_vector T (sig_vector_to_list T x)) x)
    with
    | fun (n : nat) (v : vector T n) =>
        elim v : vector T
          return (fun (m : nat) (w : vector T m) =>
            eq (sig_vector T)
               (list_to_sig_vector T (sig_vector_to_list T
                 (existT nat (fun (k : nat) => vector T k) m w)))
               (existT nat (fun (k : nat) => vector T k) m w))
        with
        | eq_refl (sig_vector T) (existT nat (fun (k : nat) => vector T k) O (vnil T))
        | fun (t : T) (m : nat) (w : vector T m)
              (ih : eq (sig_vector T)
                 (list_to_sig_vector T (sig_vector_to_list T
                   (existT nat (fun (k : nat) => vector T k) m w)))
                 (existT nat (fun (k : nat) => vector T k) m w)) =>
            f_equal (sig_vector T) (sig_vector T)
              (fun (s' : sig_vector T) => list_sig.dep_constr_1 T t s')
              (list_to_sig_vector T (sig_vector_to_list T
                (existT nat (fun (k : nat) => vector T k) m w)))
              (existT nat (fun (k : nat) => vector T k) m w)
              ih
        end
    end.
"#;

struct OrnamentMatch {
    a: GlobalName,
}

impl SideMatch for OrnamentMatch {
    fn match_type(&self, _env: &Env, t: &Term) -> Option<Vec<Term>> {
        let (name, args) = t.as_ind_app()?;
        (name == &self.a).then(|| args.to_vec())
    }

    fn match_constr(&self, _env: &Env, t: &Term) -> Option<(usize, Vec<Term>)> {
        let (name, j, args) = t.as_construct_app()?;
        (name == &self.a).then(|| (j, args.to_vec()))
    }

    fn match_elim(&self, _env: &Env, t: &Term) -> Option<MatchedElim> {
        match t.data() {
            TermData::Elim(e) if e.ind == self.a => Some(MatchedElim {
                type_args: e.params.clone(),
                motive: e.motive.clone(),
                cases: e.cases.clone(),
                scrutinee: e.scrutinee.clone(),
            }),
            _ => None,
        }
    }
}

struct OrnamentBuild;

impl SideBuild for OrnamentBuild {
    fn build_type(&self, _env: &Env, args: Vec<Term>) -> Result<Term> {
        Ok(Term::app(Term::const_("sig_vector"), args))
    }

    fn build_constr(&self, _env: &Env, j: usize, args: Vec<Term>) -> Result<Term> {
        let name = match j {
            0 => "list_sig.dep_constr_0",
            1 => "list_sig.dep_constr_1",
            _ => {
                return Err(RepairError::BadMapping(format!(
                    "ornament source has no constructor #{j}"
                )))
            }
        };
        Ok(Term::app(Term::const_(name), args))
    }

    fn build_elim(&self, _env: &Env, me: MatchedElim) -> Result<Term> {
        let mut args = me.type_args;
        args.push(me.motive);
        args.extend(me.cases);
        args.push(me.scrutinee);
        Ok(Term::app(Term::const_("list_sig.dep_elim"), args))
    }
}

/// Configures the ornament lifting `list → Σ(n). vector n`, loading (and
/// kernel-checking) the discovered configuration and equivalence.
///
/// # Errors
///
/// Fails if `list`/`vector`/`sigT`/`nat` are missing or have unexpected
/// shapes, or if the configuration fails to check.
pub fn configure(env: &mut Env, names: NameMap) -> Result<Lifting> {
    // Validate the expected shapes.
    let list = env.inductive(&"list".into())?;
    if list.ctors.len() != 2 || list.nparams() != 1 || list.nindices() != 0 {
        return Err(RepairError::SearchFailed {
            from: "list".into(),
            to: "vector".into(),
            reason: "source is not a list-shaped inductive".into(),
        });
    }
    let vector = env.inductive(&"vector".into())?;
    if vector.ctors.len() != 2 || vector.nparams() != 1 || vector.nindices() != 1 {
        return Err(RepairError::SearchFailed {
            from: "list".into(),
            to: "vector".into(),
            reason: "target is not an indexed refinement of the source".into(),
        });
    }
    if !env.contains("list_sig.dep_elim") {
        load_source(env, CONFIG_SRC)?;
    }
    Ok(Lifting {
        a_name: "list".into(),
        b_name: "sig_vector".into(),
        matcher: Box::new(OrnamentMatch { a: "list".into() }),
        builder: Box::new(OrnamentBuild),
        names,
        equivalence: Some(EquivalenceNames {
            f: "list_to_sig_vector".into(),
            g: "sig_vector_to_list".into(),
            section: "list_to_sig_vector_section".into(),
            retraction: "list_to_sig_vector_retraction".into(),
        }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lift::LiftState;
    use crate::repair::check_source_free;
    use crate::repairer::Repairer;
    use pumpkin_kernel::reduce::normalize;
    use pumpkin_stdlib as stdlib;
    use pumpkin_stdlib::nat::nat_lit;

    fn configured() -> (Env, Lifting) {
        let mut env = stdlib::std_env();
        let l = configure(&mut env, NameMap::prefix("", "Sig.")).unwrap();
        (env, l)
    }

    #[test]
    fn config_loads_and_equivalence_checks() {
        let (env, l) = configured();
        assert!(env.contains("list_sig.dep_elim"));
        assert!(env.contains("list_to_sig_vector_section"));
        assert!(env.contains("list_to_sig_vector_retraction"));
        assert_eq!(l.b_name.as_str(), "sig_vector");
    }

    #[test]
    fn transport_packs_lists_into_vectors() {
        let (env, _) = configured();
        let l = stdlib::list::list_lit("list", Term::ind("nat"), &[nat_lit(4), nat_lit(5)]);
        let packed = Term::app(
            Term::const_("list_to_sig_vector"),
            [Term::ind("nat"), l.clone()],
        );
        // projT1 of the packed value is the length.
        let len = Term::app(
            Term::const_("projT1"),
            [
                Term::ind("nat"),
                Term::lambda(
                    "n",
                    Term::ind("nat"),
                    Term::app(Term::ind("vector"), [Term::ind("nat"), Term::rel(0)]),
                ),
                packed.clone(),
            ],
        );
        assert_eq!(stdlib::nat::nat_value(&normalize(&env, &len)), Some(2));
        // And the round trip is the identity.
        let back = Term::app(
            Term::const_("sig_vector_to_list"),
            [Term::ind("nat"), packed],
        );
        assert_eq!(normalize(&env, &back), l);
    }

    #[test]
    fn repairs_zip_development_to_packed_vectors() {
        let (mut env, l) = configured();
        let mut st = LiftState::new();
        let report = Repairer::new(&l)
            .state(&mut st)
            .run(&mut env, &["zip", "zip_with", "zip_with_is_zip"])
            .unwrap();
        assert_eq!(report.renamed("zip").unwrap().as_str(), "Sig.zip");
        // The repaired lemma mentions sig_vector, not list.
        for (_, to) in &report.repaired {
            check_source_free(&env, &l, to).unwrap();
        }
        // Sig.zip computes: zip [1,2] [3,4] has length 2.
        let nat = Term::ind("nat");
        let pack = |elems: &[u64]| {
            let lst = stdlib::list::list_lit(
                "list",
                nat.clone(),
                &elems.iter().map(|&e| nat_lit(e)).collect::<Vec<_>>(),
            );
            Term::app(Term::const_("list_to_sig_vector"), [nat.clone(), lst])
        };
        let zipped = Term::app(
            Term::const_("Sig.zip"),
            [nat.clone(), nat.clone(), pack(&[1, 2]), pack(&[3, 4, 5])],
        );
        let pair_ty = Term::app(Term::ind("prod"), [nat.clone(), nat.clone()]);
        let len = Term::app(
            Term::const_("projT1"),
            [
                nat.clone(),
                Term::lambda(
                    "n",
                    nat.clone(),
                    Term::app(
                        Term::ind("vector"),
                        [pumpkin_kernel::subst::lift(&pair_ty, 1), Term::rel(0)],
                    ),
                ),
                zipped,
            ],
        );
        assert_eq!(stdlib::nat::nat_value(&normalize(&env, &len)), Some(2));
    }

    #[test]
    fn repaired_list_module_functions_work_over_sig_vector() {
        // Also repair app/rev (paper: Devoid-style reuse over ornaments).
        let (mut env, l) = configured();
        let mut st = LiftState::new();
        Repairer::new(&l)
            .state(&mut st)
            .run(&mut env, &["app", "rev", "length"])
            .unwrap();
        let nat = Term::ind("nat");
        let pack = |elems: &[u64]| {
            let lst = stdlib::list::list_lit(
                "list",
                nat.clone(),
                &elems.iter().map(|&e| nat_lit(e)).collect::<Vec<_>>(),
            );
            Term::app(Term::const_("list_to_sig_vector"), [nat.clone(), lst])
        };
        // Sig.rev (Sig.app [1] [2,3]) unpacks back to [3,2,1].
        let appd = Term::app(
            Term::const_("Sig.app"),
            [nat.clone(), pack(&[1]), pack(&[2, 3])],
        );
        let revd = Term::app(Term::const_("Sig.rev"), [nat.clone(), appd]);
        let back = Term::app(Term::const_("sig_vector_to_list"), [nat.clone(), revd]);
        let expect =
            stdlib::list::list_lit("list", nat.clone(), &[nat_lit(3), nat_lit(2), nat_lit(1)]);
        assert_eq!(normalize(&env, &back), expect);
    }
}
