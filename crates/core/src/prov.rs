//! The provenance recorder threaded through the lift (paper §4 rules →
//! per-subterm attribution).
//!
//! [`ProvRecorder`] lives inside [`crate::LiftState`] as an `Option`: when
//! absent (the default) every probe in the lift walk is a single `None`
//! branch, mirroring the disabled-[`pumpkin_trace::Tracer`] discipline —
//! provenance is zero-cost unless a run asks for it.
//!
//! The recorder keeps a stack of frames, one per in-flight
//! [`crate::repair_constant`] call. Each frame tracks the canonical path
//! of the subterm currently being lifted (see
//! [`pumpkin_trace::prov`] for the child indexing) and collects
//! [`TermSite`]s — rewrite sites holding real [`Term`]s (cheap shared
//! clones). Sites are pretty-printed into wire-level
//! [`pumpkin_trace::prov::ConstProvenance`] only once, after the run, by
//! the [`crate::Repairer`].
//!
//! Matched-rule branches *suppress* recording while lifting the rule's
//! components: the rule rewrites the whole matched subterm, and component
//! paths inside the produced form do not follow the source term's
//! canonical indexing. Suppression is per-frame, so an on-demand
//! dependency repair started inside a suppressed region still records its
//! own sites under its own frame.

use pumpkin_kernel::name::GlobalName;
use pumpkin_kernel::term::Term;

pub use pumpkin_trace::prov::Rule;

/// One recorded rewrite: at `path`, `rule` rewrote `src` into `dst`.
/// Term-level twin of [`pumpkin_trace::prov::ProvSite`].
#[derive(Clone, Debug)]
pub struct TermSite {
    /// Canonical path from the declaration root (type under `0`, body
    /// under `1`).
    pub path: Box<[u32]>,
    /// The configuration rule that fired.
    pub rule: Rule,
    /// The source subterm.
    pub src: Term,
    /// The produced subterm.
    pub dst: Term,
}

/// A finished constant's provenance tree, still in term form.
#[derive(Clone, Debug)]
pub struct ConstProv {
    /// The source constant.
    pub from: GlobalName,
    /// Its repaired name.
    pub to: GlobalName,
    /// Rewrite sites, in lift visit order.
    pub sites: Vec<TermSite>,
}

/// One in-flight `repair_constant` call's recording state.
#[derive(Debug)]
struct Frame {
    name: GlobalName,
    path: Vec<u32>,
    suppress: u32,
    sites: Vec<TermSite>,
}

/// The per-run provenance recorder (see module docs).
#[derive(Debug, Default)]
pub struct ProvRecorder {
    frames: Vec<Frame>,
    finished: Vec<ConstProv>,
}

impl ProvRecorder {
    /// Opens a frame for `name`; paired with [`ProvRecorder::end_const`].
    pub fn begin_const(&mut self, name: &GlobalName) {
        self.frames.push(Frame {
            name: name.clone(),
            path: Vec::new(),
            suppress: 0,
            sites: Vec::new(),
        });
    }

    /// Closes the innermost frame. With `Some(to)` (the repair succeeded,
    /// possibly via the idempotence path) the frame's sites are kept; with
    /// `None` (the repair failed) they are discarded.
    pub fn end_const(&mut self, to: Option<&GlobalName>) {
        if let Some(frame) = self.frames.pop() {
            if let Some(to) = to {
                self.finished.push(ConstProv {
                    from: frame.name,
                    to: to.clone(),
                    sites: frame.sites,
                });
            }
        }
    }

    /// Descends into child `i` of the current subterm.
    pub fn push(&mut self, i: u32) {
        if let Some(f) = self.frames.last_mut() {
            f.path.push(i);
        }
    }

    /// Ascends back out of the current child.
    pub fn pop(&mut self) {
        if let Some(f) = self.frames.last_mut() {
            f.path.pop();
        }
    }

    /// Enters a matched-rule component region (recording off).
    pub fn suppress(&mut self) {
        if let Some(f) = self.frames.last_mut() {
            f.suppress += 1;
        }
    }

    /// Leaves a matched-rule component region.
    pub fn unsuppress(&mut self) {
        if let Some(f) = self.frames.last_mut() {
            f.suppress = f.suppress.saturating_sub(1);
        }
    }

    /// Records a rewrite site at the current path, unless recording is
    /// suppressed, no frame is open, or the rewrite is an identity.
    pub fn site(&mut self, rule: Rule, src: &Term, dst: &Term) {
        let Some(f) = self.frames.last_mut() else {
            return;
        };
        if f.suppress > 0 || src == dst {
            return;
        }
        f.sites.push(TermSite {
            path: f.path.clone().into_boxed_slice(),
            rule,
            src: src.clone(),
            dst: dst.clone(),
        });
    }

    /// Takes the finished trees out, leaving the recorder empty (open
    /// frames, if any, are dropped — they belong to a failed run).
    pub fn take_finished(&mut self) -> Vec<ConstProv> {
        self.frames.clear();
        std::mem::take(&mut self.finished)
    }

    /// Folds a worker recorder's finished trees into this one (wave merge
    /// barrier; workers never ship open frames).
    pub fn absorb(&mut self, mut worker: ProvRecorder) {
        self.finished.append(&mut worker.finished);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(name: &str) -> Term {
        Term::const_(GlobalName::new(name))
    }

    #[test]
    fn sites_record_path_and_rule_inside_a_frame() {
        let mut r = ProvRecorder::default();
        // No frame: silently dropped.
        r.site(Rule::Constant, &t("a"), &t("b"));
        r.begin_const(&"Old.rev".into());
        r.push(1);
        r.push(0);
        r.site(Rule::DepConstr, &t("Old.nil"), &t("New.nil"));
        r.pop();
        r.pop();
        // Identity rewrites are not sites.
        r.site(Rule::Cached, &t("same"), &t("same"));
        r.end_const(Some(&"New.rev".into()));
        let finished = r.take_finished();
        assert_eq!(finished.len(), 1);
        assert_eq!(finished[0].from.as_str(), "Old.rev");
        assert_eq!(finished[0].to.as_str(), "New.rev");
        assert_eq!(finished[0].sites.len(), 1);
        assert_eq!(&*finished[0].sites[0].path, &[1, 0]);
        assert_eq!(finished[0].sites[0].rule, Rule::DepConstr);
    }

    #[test]
    fn suppression_is_per_frame() {
        let mut r = ProvRecorder::default();
        r.begin_const(&"outer".into());
        r.suppress();
        r.site(Rule::DepElim, &t("a"), &t("b")); // suppressed
                                                 // A dependency repair inside the suppressed region records freely.
        r.begin_const(&"inner".into());
        r.site(Rule::Constant, &t("c"), &t("d"));
        r.end_const(Some(&"inner2".into()));
        r.unsuppress();
        r.site(Rule::Constant, &t("e"), &t("f"));
        r.end_const(Some(&"outer2".into()));
        let finished = r.take_finished();
        assert_eq!(finished.len(), 2);
        assert_eq!(finished[0].from.as_str(), "inner");
        assert_eq!(finished[0].sites.len(), 1);
        assert_eq!(finished[1].from.as_str(), "outer");
        assert_eq!(finished[1].sites.len(), 1);
        assert_eq!(finished[1].sites[0].src, t("e"));
    }

    #[test]
    fn failed_frames_discard_their_sites() {
        let mut r = ProvRecorder::default();
        r.begin_const(&"bad".into());
        r.site(Rule::Equivalence, &t("a"), &t("b"));
        r.end_const(None);
        assert!(r.take_finished().is_empty());
    }
}
