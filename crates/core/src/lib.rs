//! # pumpkin-core
//!
//! The heart of the Pumpkin Pi reproduction: the configurable proof term
//! transformation (paper §4), the search procedures for automatic
//! configuration (§3.3), and the repair driver.

pub mod auto;
pub mod config;
pub mod error;
pub mod incr;
pub mod lift;
pub mod manual;
pub mod minimize;
pub mod persist;
pub mod prov;
pub mod repair;
pub mod repairer;
pub mod schedule;
pub mod search;
pub mod smartelim;

pub use auto::{AutoDriver, AutoPolicy, AutoReport};
pub use config::{Lifting, NameMap};
pub use error::{ErrorClass, RepairError, Result};
pub use incr::{DigestMap, IncrStats};
pub use lift::{lift_term, repair_constant, LiftState, LiftStats};
pub use minimize::Reproducer;
pub use persist::PersistCache;
pub use prov::{ConstProv, ProvRecorder, Rule, TermSite};
pub use pumpkin_kernel::stats::KernelStats;
/// Re-export of the structured tracing/metrics layer (event kinds, sinks,
/// metrics registry), so callers of [`Repairer::sink`] need no separate
/// dependency.
pub use pumpkin_trace as trace;
/// Re-export of the wire serialization layer (term/decl codecs, digests),
/// so persistent-cache and service callers need no separate dependency.
pub use pumpkin_wire as wire;
pub use repair::RepairReport;
pub use repairer::Repairer;
pub use schedule::{default_jobs, CancelToken, ModuleDag, ScheduleStats};
