//! Incremental differential repair (salsa-style, DESIGN.md §16).
//!
//! The paper's 10 s interactive budget only matters if edit→repair cycles
//! reuse work. This module supplies the three pieces that make
//! "touch 1 of 13 constants → re-lift ~1" a first-class number:
//!
//! * [`DigestMap`] — a snapshot of the *source* declarations' content
//!   digests ([`pumpkin_wire::decl_digest`]) from the last repair, kept in
//!   each serve `Session` and in `pumpkin watch`.
//! * [`DigestMap::diff`] — which work-list constants changed since the
//!   snapshot (edited, or new to the snapshot).
//! * [`invalidated`] — the changed set closed downstream over the module
//!   [`ModuleDag`]: everything that (transitively) depends on a changed
//!   input must be re-lifted *fresh*, because a dependent's own digest is
//!   unchanged while its type-correctness rests on the upstream bodies —
//!   replaying its persisted entry would skip the re-check. Everything
//!   outside the closure replays from the [`crate::PersistCache`].
//!
//! Accounting lands in [`IncrStats`] (`{changed, replayed, skipped}`),
//! carried on [`crate::RepairReport::incr`] and the wire report form.

use std::collections::{HashMap, HashSet};
use std::fmt;

use pumpkin_kernel::env::Env;
use pumpkin_kernel::name::GlobalName;
use pumpkin_wire::{decl_digest, TermDigest};

use crate::schedule::ModuleDag;

/// A snapshot of source-declaration content digests from one repair run,
/// together with the work-list dependency edges observed at capture time.
///
/// Capture it after a successful repair with [`DigestMap::capture`]; diff
/// a later environment against it with [`DigestMap::diff`]. Constants the
/// environment no longer has are simply absent from the next capture —
/// deletion needs no repair work, so it never enters the changed set.
///
/// The recorded edges make the invalidation closure free of environment
/// walks: an unchanged constant's declaration is byte-identical to the
/// captured one, so its dependency edges are still exact, and closing the
/// changed set downstream needs no fresh [`ModuleDag`]
/// ([`DigestMap::close_invalidated`]). Only a changed constant the
/// snapshot never saw (its incoming edges are unrecorded) forces the
/// caller back to a full DAG build.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DigestMap {
    digests: HashMap<GlobalName, TermDigest>,
    /// `deps[n]` = snapshotted work-list constants `n` depends on
    /// (directly, or transitively through constants outside the captured
    /// list), as recorded by the capture-time [`ModuleDag`].
    deps: HashMap<GlobalName, Vec<GlobalName>>,
}

impl DigestMap {
    /// An empty snapshot: every constant diffs as changed (a cold run).
    pub fn new() -> DigestMap {
        DigestMap::default()
    }

    /// Snapshots the digests of `names` as they stand in `env` (names the
    /// environment lacks are skipped — they will diff as changed if they
    /// appear later), along with the list-internal dependency edges.
    pub fn capture(env: &Env, names: &[&str]) -> DigestMap {
        let mut digests = HashMap::with_capacity(names.len());
        let mut present = Vec::with_capacity(names.len());
        for n in names {
            let name = GlobalName::new(*n);
            if let Ok(decl) = env.const_decl(&name) {
                digests.insert(name.clone(), decl_digest(decl));
                present.push(name);
            }
        }
        let dag = ModuleDag::build(env, &present);
        let deps = dag
            .nodes
            .iter()
            .zip(&dag.deps)
            .map(|(n, ds)| {
                let named = ds.iter().map(|&i| dag.nodes[i].clone()).collect();
                (n.clone(), named)
            })
            .collect();
        DigestMap { digests, deps }
    }

    /// Marks a constant as changed for the next [`DigestMap::diff`] by
    /// dropping its digest, while keeping its recorded dependency edges —
    /// for callers that *know* a constant must re-lift (a forced refresh)
    /// without having an edited declaration in hand yet.
    pub fn mark_changed(&mut self, name: &GlobalName) {
        self.digests.remove(name);
    }

    /// Number of snapshotted constants.
    pub fn len(&self) -> usize {
        self.digests.len()
    }

    /// Is the snapshot empty (i.e. would every constant diff as changed)?
    pub fn is_empty(&self) -> bool {
        self.digests.is_empty()
    }

    /// The snapshotted digest for a constant, if present.
    pub fn get(&self, name: &GlobalName) -> Option<TermDigest> {
        self.digests.get(name).copied()
    }

    /// Which of `names` changed in `env` relative to this snapshot: the
    /// declaration's digest differs, the constant is new to the snapshot,
    /// or (defensively) the environment cannot produce it. Order follows
    /// `names`.
    pub fn diff(&self, env: &Env, names: &[&str]) -> Vec<GlobalName> {
        names
            .iter()
            .map(|n| GlobalName::new(*n))
            .filter(|name| match env.const_decl(name) {
                Ok(decl) => self.digests.get(name) != Some(&decl_digest(decl)),
                Err(_) => true,
            })
            .collect()
    }

    /// Closes `changed` downstream over the snapshot's recorded edges —
    /// no environment walk, no fresh DAG. Sound because an unchanged
    /// constant's declaration is byte-identical to the captured one, so
    /// its captured edges are still exact. Returns `None` when a changed
    /// constant has no recorded edges (it is new to the snapshot, so
    /// edges *into* it were never observed) — the caller must fall back
    /// to [`invalidated`] over a freshly built [`ModuleDag`].
    pub fn close_invalidated(
        &self,
        nodes: &[GlobalName],
        changed: &[GlobalName],
    ) -> Option<HashSet<GlobalName>> {
        if changed.iter().any(|c| !self.deps.contains_key(c)) {
            return None;
        }
        let mut inv: HashSet<GlobalName> = changed.iter().cloned().collect();
        // Work lists are small (a module): sweep to fixpoint rather than
        // building a reverse index, mirroring [`invalidated`].
        let mut grew = true;
        while grew {
            grew = false;
            for n in nodes {
                if inv.contains(n) {
                    continue;
                }
                match self.deps.get(n) {
                    Some(ds) => {
                        if ds.iter().any(|d| inv.contains(d)) {
                            inv.insert(n.clone());
                            grew = true;
                        }
                    }
                    // Unreachable for an unchanged constant (captured
                    // digests and edges are written together), but if a
                    // snapshot ever lacks the edges, re-lifting is the
                    // safe side.
                    None => {
                        inv.insert(n.clone());
                        grew = true;
                    }
                }
            }
        }
        Some(inv)
    }
}

/// The changed set closed downstream over the module DAG: every work-list
/// constant that is changed, or (transitively) depends on a changed one.
/// These must bypass the persist cache and re-lift fresh; the rest replay.
pub fn invalidated(dag: &ModuleDag, changed: &[GlobalName]) -> HashSet<GlobalName> {
    let n = dag.nodes.len();
    let mut hit = vec![false; n];
    for c in changed {
        if let Some(i) = dag.nodes.iter().position(|x| x == c) {
            hit[i] = true;
        }
    }
    // deps[i] lists what node i depends on; propagate "depends on a
    // changed node" forward until fixpoint. Work lists are small (a
    // module), so the quadratic sweep beats building a reverse index.
    let mut grew = true;
    while grew {
        grew = false;
        for i in 0..n {
            if !hit[i] && dag.deps[i].iter().any(|&d| hit[d]) {
                hit[i] = true;
                grew = true;
            }
        }
    }
    dag.nodes
        .iter()
        .zip(&hit)
        .filter(|(_, &h)| h)
        .map(|(name, _)| name.clone())
        .collect()
}

/// Incremental accounting for one differential run, over the work list:
/// how many inputs changed, how many constants were re-lifted fresh, and
/// how many were skipped (replayed from the persist cache, or already
/// repaired in the threaded state).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IncrStats {
    /// Work-list constants whose source digest differed from the snapshot
    /// (edited or new).
    pub changed: u64,
    /// Work-list constants re-lifted fresh this run (the invalidated
    /// downstream closure of the changed set).
    pub replayed: u64,
    /// Work-list constants not re-lifted: served by a persist-cache
    /// replay or already present in the threaded lift state.
    pub skipped: u64,
}

impl fmt::Display for IncrStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "changed={} replayed={} skipped={}",
            self.changed, self.replayed, self.skipped
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pumpkin_kernel::term::Term;

    fn tiny_env() -> Env {
        let mut env = pumpkin_stdlib::std_env();
        let nat = Term::ind("nat");
        env.define("base", nat.clone(), Term::construct("nat", 0))
            .unwrap();
        env.define("mid", nat.clone(), Term::const_("base"))
            .unwrap();
        env.define("top", nat, Term::const_("mid")).unwrap();
        env
    }

    #[test]
    fn capture_then_diff_is_empty_without_edits() {
        let env = tiny_env();
        let names = ["base", "mid", "top"];
        let snap = DigestMap::capture(&env, &names);
        assert_eq!(snap.len(), 3);
        assert!(snap.diff(&env, &names).is_empty());
    }

    #[test]
    fn diff_reports_edited_and_new_constants() {
        let mut env = tiny_env();
        let names = ["base", "mid", "top"];
        let snap = DigestMap::capture(&env, &names);
        // Edit `mid`: same type, digest-changing body.
        let nat = Term::ind("nat");
        env.remove(&"top".into()).unwrap();
        env.remove(&"mid".into()).unwrap();
        env.define(
            "mid",
            nat.clone(),
            Term::let_(
                "x",
                nat.clone(),
                Term::construct("nat", 0),
                Term::const_("base"),
            ),
        )
        .unwrap();
        env.define("top", nat.clone(), Term::const_("mid")).unwrap();
        env.define("fresh", nat, Term::construct("nat", 0)).unwrap();
        let changed = snap.diff(&env, &["base", "mid", "top", "fresh"]);
        assert_eq!(
            changed,
            vec![GlobalName::new("mid"), GlobalName::new("fresh")],
            "edited + snapshot-new constants diff as changed; untouched do not"
        );
    }

    #[test]
    fn empty_snapshot_diffs_everything() {
        let env = tiny_env();
        let names = ["base", "mid", "top"];
        assert_eq!(DigestMap::new().diff(&env, &names).len(), 3);
    }

    #[test]
    fn snapshot_edges_close_invalidation_without_a_dag_build() {
        let env = tiny_env();
        let names = ["base", "mid", "top"];
        let mut snap = DigestMap::capture(&env, &names);
        let nodes: Vec<GlobalName> = names.iter().map(|s| GlobalName::new(*s)).collect();
        // Force `mid` to diff as changed while keeping its recorded
        // edges: the closure runs over the snapshot alone.
        snap.mark_changed(&GlobalName::new("mid"));
        let changed = snap.diff(&env, &names);
        assert_eq!(changed, vec![GlobalName::new("mid")]);
        let inv = snap
            .close_invalidated(&nodes, &changed)
            .expect("a captured constant closes over recorded edges");
        assert!(inv.contains(&GlobalName::new("mid")));
        assert!(inv.contains(&GlobalName::new("top")));
        assert!(!inv.contains(&GlobalName::new("base")));
        // A changed constant the snapshot never saw has unrecorded
        // incoming edges — the closure must refuse, so the caller falls
        // back to a fresh DAG.
        assert!(snap
            .close_invalidated(&nodes, &[GlobalName::new("fresh")])
            .is_none());
    }

    #[test]
    fn invalidation_closes_downstream_only() {
        let env = tiny_env();
        let nodes: Vec<GlobalName> = ["base", "mid", "top"]
            .iter()
            .map(|s| GlobalName::new(*s))
            .collect();
        let dag = ModuleDag::build(&env, &nodes);
        // Touching the middle invalidates it and its dependent, not its
        // dependency.
        let inv = invalidated(&dag, &[GlobalName::new("mid")]);
        assert!(inv.contains(&GlobalName::new("mid")));
        assert!(inv.contains(&GlobalName::new("top")));
        assert!(!inv.contains(&GlobalName::new("base")));
        // Touching a leaf invalidates only itself.
        let inv = invalidated(&dag, &[GlobalName::new("top")]);
        assert_eq!(inv.len(), 1);
    }
}
