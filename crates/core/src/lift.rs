//! The configurable proof term transformation (paper Fig. 10).
//!
//! [`lift_term`] walks a term, unifying subterms with the source side of the
//! configuration (Dep-Constr, Dep-Elim, Eta/proj, Iota, Equivalence rules)
//! and substituting the target side; everything else is transformed
//! structurally. Global constants that (transitively) mention the source
//! type are repaired on demand and cached ([`repair_constant`]), which is
//! how `Repair` updates dependencies automatically (paper §2) — and every
//! repaired constant is re-checked by the kernel when it is defined, so a
//! successful repair is well-typed by construction.
//!
//! Caching mirrors paper §4.4: intermediate *closed* subterm liftings are
//! memoized (`cache_enabled`), and the whole-constant mapping is always
//! cached.

use std::collections::{HashMap, HashSet};

use pumpkin_kernel::env::Env;
use pumpkin_kernel::error::KernelError;
use pumpkin_kernel::intern::TermId;
use pumpkin_kernel::name::GlobalName;
use pumpkin_kernel::term::{Binder, ElimData, Term, TermData};

use crate::config::{Lifting, MatchedElim, MatchedProj};
use crate::error::{RepairError, Result};
use crate::prov::{ConstProv, ProvRecorder, Rule};

/// Counters exposed for the benchmark harness (cache ablation, §6.4).
///
/// These measure the *lift-layer* closed-subterm cache; the kernel-layer
/// conv/whnf cache underneath it reports through
/// [`pumpkin_kernel::stats::KernelStats`] (see `Env::kernel_stats`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LiftStats {
    /// Closed-subterm cache hits.
    pub cache_hits: u64,
    /// Closed-subterm cache misses (entries inserted).
    pub cache_misses: u64,
    /// Constants repaired on demand.
    pub constants_lifted: u64,
    /// Total subterm visits.
    pub visits: u64,
    /// Whole constants replayed from the persistent (cross-run) cache.
    pub persist_hits: u64,
    /// Persistent-cache probes that fell back to a fresh lift.
    pub persist_misses: u64,
}

impl LiftStats {
    /// Field-wise difference against an earlier snapshot (the lift-layer
    /// analogue of [`pumpkin_kernel::stats::KernelStats::since`]).
    pub fn since(&self, earlier: &LiftStats) -> LiftStats {
        LiftStats {
            cache_hits: self.cache_hits - earlier.cache_hits,
            cache_misses: self.cache_misses - earlier.cache_misses,
            constants_lifted: self.constants_lifted - earlier.constants_lifted,
            visits: self.visits - earlier.visits,
            persist_hits: self.persist_hits - earlier.persist_hits,
            persist_misses: self.persist_misses - earlier.persist_misses,
        }
    }

    /// Fraction of cacheable lookups answered by the closed-subterm cache.
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

impl std::fmt::Display for LiftStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "lift {}/{} hits ({:.1}%), {} constants, {} visits",
            self.cache_hits,
            self.cache_hits + self.cache_misses,
            100.0 * self.hit_rate(),
            self.constants_lifted,
            self.visits,
        )?;
        if self.persist_hits + self.persist_misses > 0 {
            write!(
                f,
                ", persist {}/{} hits",
                self.persist_hits,
                self.persist_hits + self.persist_misses,
            )?;
        }
        Ok(())
    }
}

/// How one constant acquired its repaired form in this run (drives the
/// incremental accounting in [`crate::incr::IncrStats`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LiftOutcome {
    /// Re-lifted fresh: the full transformation ran and the result was
    /// type-checked through `Env::define`/`Env::assume`.
    Fresh,
    /// Replayed from the persistent cross-run cache.
    Replayed,
}

/// Mutable state threaded through a repair session.
#[derive(Default)]
pub struct LiftState {
    /// Already-repaired constants: old name → new name.
    pub const_map: HashMap<GlobalName, GlobalName>,
    /// Memoized liftings of closed subterms, keyed by the hash-consed
    /// [`TermId`] — an integer compare per probe, no tree hashing.
    term_cache: HashMap<TermId, Term>,
    /// Whether the closed-subterm cache is consulted (ablatable).
    pub cache_enabled: bool,
    /// Constants currently being repaired (cycle/termination guard).
    in_progress: HashSet<GlobalName>,
    /// Memoized relevance: does a constant transitively mention the source?
    relevant: HashMap<GlobalName, bool>,
    /// Counters.
    pub stats: LiftStats,
    /// Per-subterm rule attribution; `None` (the default) makes every
    /// provenance probe a single branch (see [`crate::prov`]).
    prov: Option<Box<ProvRecorder>>,
    /// Persistent cross-run cache handle, shared across wavefront workers
    /// (see [`crate::persist::PersistCache`]); `None` (the default) keeps
    /// [`repair_constant`] purely in-memory.
    persist: Option<std::sync::Arc<crate::persist::PersistCache>>,
    /// Constants that must bypass the persist cache this run — the
    /// incremental invalidation closure ([`crate::incr::invalidated`]).
    /// Lookups skip them (a digest-unchanged entry could replay a
    /// dependent whose upstream changed without re-checking it) and
    /// stores overwrite their entries.
    invalidated: HashSet<GlobalName>,
    /// Salsa-style "green" constants for this run: work-list members whose
    /// digest matched the incremental snapshot and that sit outside the
    /// invalidation closure. When such a constant's repair target already
    /// lives in the environment (a session-resident world), the target is
    /// the previous validated run's output for this exact input, so the
    /// mapping is reused with no lift and no cache probe.
    green: HashSet<GlobalName>,
    /// Per-constant outcome of this run's repairs (fresh lift vs. persist
    /// replay); see [`LiftOutcome`].
    outcomes: HashMap<GlobalName, LiftOutcome>,
}

impl LiftState {
    /// Fresh state with the subterm cache enabled (the default, as in the
    /// paper's tool).
    pub fn new() -> Self {
        LiftState {
            cache_enabled: true,
            ..Default::default()
        }
    }

    /// Fresh state with the subterm cache disabled (for the ablation bench).
    pub fn without_cache() -> Self {
        LiftState {
            cache_enabled: false,
            ..Default::default()
        }
    }

    /// Pre-seeds a constant mapping (used to stop repair at a boundary or to
    /// supply a hand-written replacement).
    pub fn map_constant(&mut self, from: impl Into<GlobalName>, to: impl Into<GlobalName>) {
        self.const_map.insert(from.into(), to.into());
    }

    /// A fresh state for a parallel repair worker: the accumulated caches
    /// (constant map, closed-subterm cache, relevance memo) carry over so
    /// dependencies repaired in earlier waves resolve without re-lifting,
    /// but counters start at zero (so the worker's work can be attributed)
    /// and the in-progress guard is empty (workers begin between top-level
    /// repairs by construction).
    pub fn fork_worker(&self) -> LiftState {
        LiftState {
            const_map: self.const_map.clone(),
            term_cache: self.term_cache.clone(),
            cache_enabled: self.cache_enabled,
            in_progress: HashSet::new(),
            relevant: self.relevant.clone(),
            stats: LiftStats::default(),
            // Recording carries over as a fresh recorder; the worker's
            // finished trees are folded back in absorb_worker.
            prov: self.prov.as_ref().map(|_| Box::default()),
            persist: self.persist.clone(),
            invalidated: self.invalidated.clone(),
            green: self.green.clone(),
            outcomes: HashMap::new(),
        }
    }

    /// Attaches (or detaches) a persistent cross-run cache: subsequent
    /// [`repair_constant`] calls replay previously persisted repairs and
    /// persist fresh ones. Prefer [`crate::Repairer::persist_cache`],
    /// which opens the store and installs it for the run.
    pub fn set_persist(&mut self, cache: Option<std::sync::Arc<crate::persist::PersistCache>>) {
        self.persist = cache;
    }

    /// Is a persistent cache attached?
    pub fn persist_enabled(&self) -> bool {
        self.persist.is_some()
    }

    /// Installs the incremental invalidation set: these constants bypass
    /// the persist cache (fresh lookup skipped, store overwrites). Set by
    /// [`crate::Repairer::incremental`] before the run.
    pub fn set_invalidated(&mut self, names: HashSet<GlobalName>) {
        self.invalidated = names;
    }

    /// Installs the incremental "green" set (snapshot-unchanged work-list
    /// constants outside the invalidation closure); see the field doc.
    /// Set by [`crate::Repairer::incremental`] before the run.
    pub fn set_green(&mut self, names: HashSet<GlobalName>) {
        self.green = names;
    }

    /// Drops the repaired mappings for `names`, so a state threaded from
    /// an earlier run re-lifts them instead of short-circuiting on a
    /// stale entry. The incremental driver calls this on the invalidation
    /// closure before the run.
    pub fn forget(&mut self, names: &HashSet<GlobalName>) {
        for n in names {
            self.const_map.remove(n);
        }
    }

    /// How `name` acquired its repaired form this run (`None` if it was
    /// not repaired this run — e.g. already mapped in threaded state).
    pub fn outcome(&self, name: &GlobalName) -> Option<LiftOutcome> {
        self.outcomes.get(name).copied()
    }

    /// Clears the per-run outcome ledger (called by the driver at the
    /// start of each run so threaded state does not leak counts).
    pub fn clear_outcomes(&mut self) {
        self.outcomes.clear();
    }

    /// Turns provenance recording on: subsequent lifts attribute every
    /// rewrite site to the configuration rule that fired. Costs one extra
    /// branch per probe when off; see [`crate::prov`].
    pub fn record_provenance(&mut self) {
        if self.prov.is_none() {
            self.prov = Some(Box::default());
        }
    }

    /// Is provenance recording on?
    pub fn provenance_enabled(&self) -> bool {
        self.prov.is_some()
    }

    /// Takes the finished provenance trees accumulated since
    /// [`LiftState::record_provenance`], leaving recording on with an
    /// empty recorder.
    pub fn take_provenance(&mut self) -> Vec<ConstProv> {
        match &mut self.prov {
            Some(p) => p.take_finished(),
            None => Vec::new(),
        }
    }

    #[inline]
    pub(crate) fn prov_push(&mut self, i: u32) {
        if let Some(p) = &mut self.prov {
            p.push(i);
        }
    }

    #[inline]
    pub(crate) fn prov_pop(&mut self) {
        if let Some(p) = &mut self.prov {
            p.pop();
        }
    }

    #[inline]
    pub(crate) fn prov_suppress(&mut self) {
        if let Some(p) = &mut self.prov {
            p.suppress();
        }
    }

    #[inline]
    pub(crate) fn prov_unsuppress(&mut self) {
        if let Some(p) = &mut self.prov {
            p.unsuppress();
        }
    }

    #[inline]
    pub(crate) fn prov_site(&mut self, rule: Rule, src: &Term, dst: &Term) {
        if let Some(p) = &mut self.prov {
            p.site(rule, src, dst);
        }
    }

    #[inline]
    fn prov_begin_const(&mut self, name: &GlobalName) {
        if let Some(p) = &mut self.prov {
            p.begin_const(name);
        }
    }

    #[inline]
    fn prov_end_const(&mut self, to: Option<&GlobalName>) {
        if let Some(p) = &mut self.prov {
            p.end_const(to);
        }
    }

    /// Merges a worker's state back after its wave: new constant mappings,
    /// closed-subterm cache entries, and relevance verdicts are unioned in,
    /// and the worker's counters are added to this state's totals. Lifting
    /// is deterministic, so entries present on both sides are identical and
    /// insertion order cannot change results.
    pub fn absorb_worker(&mut self, worker: LiftState) {
        self.const_map.extend(worker.const_map);
        if self.cache_enabled {
            self.term_cache.extend(worker.term_cache);
        }
        self.relevant.extend(worker.relevant);
        if let (Some(mine), Some(theirs)) = (&mut self.prov, worker.prov) {
            mine.absorb(*theirs);
        }
        self.stats.cache_hits += worker.stats.cache_hits;
        self.stats.cache_misses += worker.stats.cache_misses;
        self.stats.constants_lifted += worker.stats.constants_lifted;
        self.stats.visits += worker.stats.visits;
        self.stats.persist_hits += worker.stats.persist_hits;
        self.stats.persist_misses += worker.stats.persist_misses;
        self.outcomes.extend(worker.outcomes);
    }
}

/// Does constant `name` (transitively) mention the source type? Memoized.
fn is_relevant(env: &Env, l: &Lifting, st: &mut LiftState, name: &GlobalName) -> bool {
    if let Some(&r) = st.relevant.get(name) {
        return r;
    }
    if st.const_map.contains_key(name) {
        return true;
    }
    // Mark as not-relevant during computation; constants cannot be cyclic.
    let decl = match env.const_decl(name) {
        Ok(d) => d.clone(),
        Err(_) => return false,
    };
    let mut mentioned: Vec<GlobalName> = decl.ty.constants();
    if let Some(b) = &decl.body {
        mentioned.extend(b.constants());
    }
    let direct = decl.ty.mentions_global(&l.a_name)
        || decl
            .body
            .as_ref()
            .is_some_and(|b| b.mentions_global(&l.a_name));
    let r = direct
        || mentioned
            .iter()
            .filter(|c| *c != name)
            .any(|c| is_relevant(env, l, st, c));
    st.relevant.insert(name.clone(), r);
    r
}

/// Lifts a term across the configured equivalence.
///
/// # Errors
///
/// Fails if a builder rejects a matched form (unsupported direction), the
/// termination guard trips, or a repaired dependency fails to type check.
pub fn lift_term(env: &mut Env, l: &Lifting, st: &mut LiftState, t: &Term) -> Result<Term> {
    st.stats.visits += 1;

    let cacheable = st.cache_enabled && t.is_closed();
    if cacheable {
        if let Some(hit) = st.term_cache.get(&t.id()) {
            let hit = hit.clone();
            st.stats.cache_hits += 1;
            env.tracer().emit(pumpkin_trace::EventKind::CacheHit {
                table: pumpkin_trace::CacheTable::Lift,
            });
            // The rules that produced the cached result fired under the
            // constant that first lifted this subterm; here they replay as
            // one opaque rewrite.
            st.prov_site(Rule::Cached, t, &hit);
            return Ok(hit);
        }
        env.tracer().emit(pumpkin_trace::EventKind::CacheMiss {
            table: pumpkin_trace::CacheTable::Lift,
        });
    }

    let out = lift_uncached(env, l, st, t)?;

    if cacheable {
        st.stats.cache_misses += 1;
        st.term_cache.insert(t.id(), out.clone());
    }
    Ok(out)
}

fn lift_uncached(env: &mut Env, l: &Lifting, st: &mut LiftState, t: &Term) -> Result<Term> {
    // Matched-rule branches record one provenance site for the whole
    // rewritten subterm; component lifts run suppressed (see
    // `crate::prov` — component paths do not follow the source indexing).
    //
    // Iota first: Iota markers are constants whose types mention the source
    // type, and must not be repaired as ordinary dependencies.
    if let Some((j, args)) = l.matcher.match_iota(env, t) {
        st.prov_suppress();
        let args = lift_all(env, l, st, &args);
        st.prov_unsuppress();
        let out = l.builder.build_iota(env, j, args?)?;
        st.prov_site(Rule::Iota, t, &out);
        return Ok(out);
    }
    // Dep-Elim.
    if let Some(me) = l.matcher.match_elim(env, t) {
        st.prov_suppress();
        let lifted = (|| -> Result<MatchedElim> {
            Ok(MatchedElim {
                type_args: lift_all(env, l, st, &me.type_args)?,
                motive: lift_term(env, l, st, &me.motive)?,
                cases: lift_all(env, l, st, &me.cases)?,
                scrutinee: lift_term(env, l, st, &me.scrutinee)?,
            })
        })();
        st.prov_unsuppress();
        let out = l.builder.build_elim(env, lifted?)?;
        st.prov_site(Rule::DepElim, t, &out);
        return Ok(out);
    }
    // Dep-Constr.
    if let Some((j, args)) = l.matcher.match_constr(env, t) {
        st.prov_suppress();
        let args = lift_all(env, l, st, &args);
        st.prov_unsuppress();
        let out = l.builder.build_constr(env, j, args?)?;
        st.prov_site(Rule::DepConstr, t, &out);
        return Ok(out);
    }
    // Eta / projections.
    if let Some(mp) = l.matcher.match_proj(env, t) {
        st.prov_suppress();
        let target = lift_term(env, l, st, &mp.target);
        st.prov_unsuppress();
        let lifted = MatchedProj {
            field: mp.field,
            target: target?,
        };
        let out = l.builder.build_proj(env, lifted)?;
        st.prov_site(Rule::Eta, t, &out);
        return Ok(out);
    }
    // Equivalence (the type itself).
    if let Some(args) = l.matcher.match_type(env, t) {
        st.prov_suppress();
        let args = lift_all(env, l, st, &args);
        st.prov_unsuppress();
        let out = l.builder.build_type(env, args?)?;
        st.prov_site(Rule::Equivalence, t, &out);
        return Ok(out);
    }

    // Structural rules. Children are lifted under their canonical path
    // index (`lift_child`) so recorded sites line up with the `explain`
    // diff walk.
    match t.data() {
        TermData::Rel(_) | TermData::Sort(_) => Ok(t.clone()),
        TermData::Const(name) => {
            if let Some(mapped) = st.const_map.get(name) {
                let out = Term::const_(mapped.clone());
                st.prov_site(Rule::Constant, t, &out);
                return Ok(out);
            }
            if is_relevant(env, l, st, name) {
                let new_name = repair_constant(env, l, st, name)?;
                let out = Term::const_(new_name);
                st.prov_site(Rule::Constant, t, &out);
                Ok(out)
            } else {
                Ok(t.clone())
            }
        }
        TermData::Ind(_) | TermData::Construct(_, _) => Ok(t.clone()),
        TermData::App(h, args) => {
            let h = lift_child(env, l, st, h, 0)?;
            let mut out_args = Vec::with_capacity(args.len());
            for (i, a) in args.iter().enumerate() {
                out_args.push(lift_child(env, l, st, a, 1 + i as u32)?);
            }
            Ok(Term::app(h, out_args))
        }
        TermData::Lambda(b, body) => Ok(Term::new(TermData::Lambda(
            Binder {
                name: b.name.clone(),
                ty: lift_child(env, l, st, &b.ty, 0)?,
            },
            lift_child(env, l, st, body, 1)?,
        ))),
        TermData::Pi(b, body) => Ok(Term::new(TermData::Pi(
            Binder {
                name: b.name.clone(),
                ty: lift_child(env, l, st, &b.ty, 0)?,
            },
            lift_child(env, l, st, body, 1)?,
        ))),
        TermData::Let(b, v, body) => Ok(Term::new(TermData::Let(
            Binder {
                name: b.name.clone(),
                ty: lift_child(env, l, st, &b.ty, 0)?,
            },
            lift_child(env, l, st, v, 1)?,
            lift_child(env, l, st, body, 2)?,
        ))),
        TermData::Elim(e) => {
            // An eliminator over some *other* inductive: structural.
            let n = e.params.len() as u32;
            let mut params = Vec::with_capacity(e.params.len());
            for (i, p) in e.params.iter().enumerate() {
                params.push(lift_child(env, l, st, p, i as u32)?);
            }
            let motive = lift_child(env, l, st, &e.motive, n)?;
            let mut cases = Vec::with_capacity(e.cases.len());
            for (i, c) in e.cases.iter().enumerate() {
                cases.push(lift_child(env, l, st, c, n + 1 + i as u32)?);
            }
            let scrutinee = lift_child(env, l, st, &e.scrutinee, n + 1 + e.cases.len() as u32)?;
            Ok(Term::elim(ElimData {
                ind: e.ind.clone(),
                params,
                motive,
                cases,
                scrutinee,
            }))
        }
    }
}

/// Lifts one structural child under its canonical path index.
fn lift_child(env: &mut Env, l: &Lifting, st: &mut LiftState, t: &Term, idx: u32) -> Result<Term> {
    st.prov_push(idx);
    let out = lift_term(env, l, st, t);
    st.prov_pop();
    out
}

fn lift_all(env: &mut Env, l: &Lifting, st: &mut LiftState, ts: &[Term]) -> Result<Vec<Term>> {
    ts.iter().map(|t| lift_term(env, l, st, t)).collect()
}

/// Salsa-style green reuse (DESIGN.md §16): the constant's digest matched
/// the incremental snapshot and nothing upstream of it changed, so if its
/// repair target already lives in this environment (a session-resident
/// world), that target is the previous validated run's output for this
/// exact input — reuse the mapping with no lift and no disk probe.
/// Provenance runs never take this path: they must re-lift to
/// re-attribute every rewrite site. The [`crate::Repairer`] calls this
/// before scheduling so green constants never occupy a wave slot;
/// [`repair_constant`] calls it again for constants reached as
/// dependencies.
pub(crate) fn green_reuse(
    env: &Env,
    l: &Lifting,
    st: &mut LiftState,
    name: &GlobalName,
) -> Option<GlobalName> {
    if st.green.contains(name) && !st.provenance_enabled() {
        let new_name = l.names.rename(name);
        if env.contains(new_name.as_str()) {
            st.outcomes.insert(name.clone(), LiftOutcome::Replayed);
            st.const_map.insert(name.clone(), new_name.clone());
            return Some(new_name);
        }
    }
    None
}

/// Repairs a single constant across the equivalence, registering the result
/// in the environment under the configuration's renaming policy and caching
/// the mapping. Dependencies are repaired on demand.
///
/// # Errors
///
/// Fails if the constant is unknown, the termination guard trips, or the
/// repaired definition does not type check.
pub fn repair_constant(
    env: &mut Env,
    l: &Lifting,
    st: &mut LiftState,
    name: &GlobalName,
) -> Result<GlobalName> {
    if let Some(mapped) = st.const_map.get(name) {
        return Ok(mapped.clone());
    }
    if let Some(new_name) = green_reuse(env, l, st, name) {
        return Ok(new_name);
    }
    if st.in_progress.contains(name) {
        return Err(RepairError::NonTerminating {
            constant: name.clone(),
        });
    }
    st.in_progress.insert(name.clone());
    let span = env.tracer().begin();
    // Provenance frame for this constant: the declaration's type records
    // under path prefix 0, the body under 1. On failure the frame (and its
    // sites) is discarded with the rest of the partial repair.
    st.prov_begin_const(name);
    let result = (|| {
        let decl = env.const_decl(name)?.clone();
        // Persistent cross-run cache: replay a previously persisted repair
        // of this exact declaration under this exact configuration. A
        // validated hit skips the whole lift below. Constants in the
        // incremental invalidation set never probe: their digests may be
        // unchanged while an upstream body changed, so a replay would
        // install a dependent without re-checking it against the new
        // upstream.
        if let Some(cache) = st.persist.clone() {
            if st.invalidated.contains(name) || st.provenance_enabled() {
                // Fall through to a fresh, fully checked lift. Provenance
                // runs re-lift because a replayed declaration records no
                // diff sites — `explain` after an incremental repair must
                // cite the same rules as after a cold one.
            } else {
                if let Some(hit) = cache.lookup(&decl) {
                    if let Some(new_name) = replay_persisted(env, l, st, name, &decl, hit)? {
                        st.stats.persist_hits += 1;
                        return Ok((new_name, LiftOutcome::Replayed));
                    }
                }
                st.stats.persist_misses += 1;
            }
        }
        let new_ty = lift_child(env, l, st, &decl.ty, 0)?;
        let new_body = match &decl.body {
            Some(b) => Some(lift_child(env, l, st, b, 1)?),
            None => None,
        };
        let new_name = l.names.rename(name);
        if env.contains(new_name.as_str()) {
            // Idempotence: accept an existing identical definition.
            let existing = env.const_decl(&new_name)?;
            if existing.ty == new_ty && existing.body == new_body {
                return Ok((new_name, LiftOutcome::Fresh));
            }
            return Err(RepairError::Kernel(KernelError::Redeclaration(new_name)));
        }
        match new_body {
            Some(b) => env.define(new_name.clone(), new_ty, b)?,
            None => env.assume(new_name.clone(), new_ty)?,
        }
        st.stats.constants_lifted += 1;
        if let Some(cache) = &st.persist {
            // An invalidated constant's entry may hold a repair computed
            // against the old upstream; overwrite it with this one.
            cache.store_with(
                &decl,
                env.const_decl(&new_name)?,
                st.invalidated.contains(name),
            );
        }
        Ok((new_name, LiftOutcome::Fresh))
    })();
    st.in_progress.remove(name);
    env.tracer().end(
        span,
        pumpkin_trace::EventKind::LiftConstant {
            name: name.as_str().into(),
        },
    );
    st.prov_end_const(result.as_ref().ok().map(|(n, _)| n));
    let (new_name, outcome) = result?;
    st.outcomes.insert(name.clone(), outcome);
    st.const_map.insert(name.clone(), new_name.clone());
    Ok(new_name)
}

/// Replays a persisted repaired declaration.
///
/// The cache key already pins the configuration and the old declaration's
/// content, so `hit` is the declaration a fresh lift would produce — but
/// the environment must first contain everything it references. The old
/// declaration's relevant dependencies are repaired first (recursively;
/// on a warm run those replay from the cache too), exactly as the lift
/// would have repaired them on demand. Returns `Ok(None)` — fall back to
/// a fresh lift — when the entry cannot be validated against this
/// environment (a stale name, or a cache shared across environments).
///
/// Installation goes through `Env::admit_checked`: debug builds
/// re-typecheck the replayed declaration, release builds trust the
/// digest-verified frame — which is what makes the warm path cheap.
fn replay_persisted(
    env: &mut Env,
    l: &Lifting,
    st: &mut LiftState,
    name: &GlobalName,
    old: &pumpkin_kernel::env::ConstDecl,
    hit: pumpkin_kernel::env::ConstDecl,
) -> Result<Option<GlobalName>> {
    if hit.name != l.names.rename(name) {
        return Ok(None);
    }
    let mut deps = old.ty.constants();
    if let Some(b) = &old.body {
        for c in b.constants() {
            if !deps.contains(&c) {
                deps.push(c);
            }
        }
    }
    for c in &deps {
        if c != name && !st.const_map.contains_key(c) && is_relevant(env, l, st, c) {
            repair_constant(env, l, st, c)?;
        }
    }
    let mut mentioned = hit.ty.constants();
    if let Some(b) = &hit.body {
        mentioned.extend(b.constants());
    }
    if mentioned.iter().any(|c| !env.contains(c.as_str())) {
        return Ok(None);
    }
    let new_name = hit.name.clone();
    if env.contains(new_name.as_str()) {
        // Idempotence, as in the fresh-lift path.
        let existing = env.const_decl(&new_name)?;
        if existing.ty == hit.ty && existing.body == hit.body {
            return Ok(Some(new_name));
        }
        return Err(RepairError::Kernel(KernelError::Redeclaration(new_name)));
    }
    env.admit_checked(hit)?;
    st.stats.constants_lifted += 1;
    Ok(Some(new_name))
}
