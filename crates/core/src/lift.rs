//! The configurable proof term transformation (paper Fig. 10).
//!
//! [`lift_term`] walks a term, unifying subterms with the source side of the
//! configuration (Dep-Constr, Dep-Elim, Eta/proj, Iota, Equivalence rules)
//! and substituting the target side; everything else is transformed
//! structurally. Global constants that (transitively) mention the source
//! type are repaired on demand and cached ([`repair_constant`]), which is
//! how `Repair` updates dependencies automatically (paper §2) — and every
//! repaired constant is re-checked by the kernel when it is defined, so a
//! successful repair is well-typed by construction.
//!
//! Caching mirrors paper §4.4: intermediate *closed* subterm liftings are
//! memoized (`cache_enabled`), and the whole-constant mapping is always
//! cached.

use std::collections::{HashMap, HashSet};

use pumpkin_kernel::env::Env;
use pumpkin_kernel::error::KernelError;
use pumpkin_kernel::name::GlobalName;
use pumpkin_kernel::term::{Binder, ElimData, Term, TermData};

use crate::config::{Lifting, MatchedElim, MatchedProj};
use crate::error::{RepairError, Result};

/// Counters exposed for the benchmark harness (cache ablation, §6.4).
///
/// These measure the *lift-layer* closed-subterm cache; the kernel-layer
/// conv/whnf cache underneath it reports through
/// [`pumpkin_kernel::stats::KernelStats`] (see `Env::kernel_stats`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LiftStats {
    /// Closed-subterm cache hits.
    pub cache_hits: u64,
    /// Closed-subterm cache misses (entries inserted).
    pub cache_misses: u64,
    /// Constants repaired on demand.
    pub constants_lifted: u64,
    /// Total subterm visits.
    pub visits: u64,
}

impl LiftStats {
    /// Field-wise difference against an earlier snapshot (the lift-layer
    /// analogue of [`pumpkin_kernel::stats::KernelStats::since`]).
    pub fn since(&self, earlier: &LiftStats) -> LiftStats {
        LiftStats {
            cache_hits: self.cache_hits - earlier.cache_hits,
            cache_misses: self.cache_misses - earlier.cache_misses,
            constants_lifted: self.constants_lifted - earlier.constants_lifted,
            visits: self.visits - earlier.visits,
        }
    }

    /// Fraction of cacheable lookups answered by the closed-subterm cache.
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

impl std::fmt::Display for LiftStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "lift {}/{} hits ({:.1}%), {} constants, {} visits",
            self.cache_hits,
            self.cache_hits + self.cache_misses,
            100.0 * self.hit_rate(),
            self.constants_lifted,
            self.visits,
        )
    }
}

/// Mutable state threaded through a repair session.
#[derive(Default)]
pub struct LiftState {
    /// Already-repaired constants: old name → new name.
    pub const_map: HashMap<GlobalName, GlobalName>,
    /// Memoized liftings of closed subterms.
    term_cache: HashMap<Term, Term>,
    /// Whether the closed-subterm cache is consulted (ablatable).
    pub cache_enabled: bool,
    /// Constants currently being repaired (cycle/termination guard).
    in_progress: HashSet<GlobalName>,
    /// Memoized relevance: does a constant transitively mention the source?
    relevant: HashMap<GlobalName, bool>,
    /// Counters.
    pub stats: LiftStats,
}

impl LiftState {
    /// Fresh state with the subterm cache enabled (the default, as in the
    /// paper's tool).
    pub fn new() -> Self {
        LiftState {
            cache_enabled: true,
            ..Default::default()
        }
    }

    /// Fresh state with the subterm cache disabled (for the ablation bench).
    pub fn without_cache() -> Self {
        LiftState {
            cache_enabled: false,
            ..Default::default()
        }
    }

    /// Pre-seeds a constant mapping (used to stop repair at a boundary or to
    /// supply a hand-written replacement).
    pub fn map_constant(&mut self, from: impl Into<GlobalName>, to: impl Into<GlobalName>) {
        self.const_map.insert(from.into(), to.into());
    }

    /// A fresh state for a parallel repair worker: the accumulated caches
    /// (constant map, closed-subterm cache, relevance memo) carry over so
    /// dependencies repaired in earlier waves resolve without re-lifting,
    /// but counters start at zero (so the worker's work can be attributed)
    /// and the in-progress guard is empty (workers begin between top-level
    /// repairs by construction).
    pub fn fork_worker(&self) -> LiftState {
        LiftState {
            const_map: self.const_map.clone(),
            term_cache: self.term_cache.clone(),
            cache_enabled: self.cache_enabled,
            in_progress: HashSet::new(),
            relevant: self.relevant.clone(),
            stats: LiftStats::default(),
        }
    }

    /// Merges a worker's state back after its wave: new constant mappings,
    /// closed-subterm cache entries, and relevance verdicts are unioned in,
    /// and the worker's counters are added to this state's totals. Lifting
    /// is deterministic, so entries present on both sides are identical and
    /// insertion order cannot change results.
    pub fn absorb_worker(&mut self, worker: LiftState) {
        self.const_map.extend(worker.const_map);
        if self.cache_enabled {
            self.term_cache.extend(worker.term_cache);
        }
        self.relevant.extend(worker.relevant);
        self.stats.cache_hits += worker.stats.cache_hits;
        self.stats.cache_misses += worker.stats.cache_misses;
        self.stats.constants_lifted += worker.stats.constants_lifted;
        self.stats.visits += worker.stats.visits;
    }
}

/// Does constant `name` (transitively) mention the source type? Memoized.
fn is_relevant(env: &Env, l: &Lifting, st: &mut LiftState, name: &GlobalName) -> bool {
    if let Some(&r) = st.relevant.get(name) {
        return r;
    }
    if st.const_map.contains_key(name) {
        return true;
    }
    // Mark as not-relevant during computation; constants cannot be cyclic.
    let decl = match env.const_decl(name) {
        Ok(d) => d.clone(),
        Err(_) => return false,
    };
    let mut mentioned: Vec<GlobalName> = decl.ty.constants();
    if let Some(b) = &decl.body {
        mentioned.extend(b.constants());
    }
    let direct = decl.ty.mentions_global(&l.a_name)
        || decl
            .body
            .as_ref()
            .is_some_and(|b| b.mentions_global(&l.a_name));
    let r = direct
        || mentioned
            .iter()
            .filter(|c| *c != name)
            .any(|c| is_relevant(env, l, st, c));
    st.relevant.insert(name.clone(), r);
    r
}

/// Lifts a term across the configured equivalence.
///
/// # Errors
///
/// Fails if a builder rejects a matched form (unsupported direction), the
/// termination guard trips, or a repaired dependency fails to type check.
pub fn lift_term(env: &mut Env, l: &Lifting, st: &mut LiftState, t: &Term) -> Result<Term> {
    st.stats.visits += 1;

    let cacheable = st.cache_enabled && t.is_closed();
    if cacheable {
        if let Some(hit) = st.term_cache.get(t) {
            st.stats.cache_hits += 1;
            env.tracer().emit(pumpkin_trace::EventKind::CacheHit {
                table: pumpkin_trace::CacheTable::Lift,
            });
            return Ok(hit.clone());
        }
        env.tracer().emit(pumpkin_trace::EventKind::CacheMiss {
            table: pumpkin_trace::CacheTable::Lift,
        });
    }

    let out = lift_uncached(env, l, st, t)?;

    if cacheable {
        st.stats.cache_misses += 1;
        st.term_cache.insert(t.clone(), out.clone());
    }
    Ok(out)
}

fn lift_uncached(env: &mut Env, l: &Lifting, st: &mut LiftState, t: &Term) -> Result<Term> {
    // Iota first: Iota markers are constants whose types mention the source
    // type, and must not be repaired as ordinary dependencies.
    if let Some((j, args)) = l.matcher.match_iota(env, t) {
        let args = lift_all(env, l, st, &args)?;
        return l.builder.build_iota(env, j, args);
    }
    // Dep-Elim.
    if let Some(me) = l.matcher.match_elim(env, t) {
        let lifted = MatchedElim {
            type_args: lift_all(env, l, st, &me.type_args)?,
            motive: lift_term(env, l, st, &me.motive)?,
            cases: lift_all(env, l, st, &me.cases)?,
            scrutinee: lift_term(env, l, st, &me.scrutinee)?,
        };
        return l.builder.build_elim(env, lifted);
    }
    // Dep-Constr.
    if let Some((j, args)) = l.matcher.match_constr(env, t) {
        let args = lift_all(env, l, st, &args)?;
        return l.builder.build_constr(env, j, args);
    }
    // Eta / projections.
    if let Some(mp) = l.matcher.match_proj(env, t) {
        let lifted = MatchedProj {
            field: mp.field,
            target: lift_term(env, l, st, &mp.target)?,
        };
        return l.builder.build_proj(env, lifted);
    }
    // Equivalence (the type itself).
    if let Some(args) = l.matcher.match_type(env, t) {
        let args = lift_all(env, l, st, &args)?;
        return l.builder.build_type(env, args);
    }

    // Structural rules.
    match t.data() {
        TermData::Rel(_) | TermData::Sort(_) => Ok(t.clone()),
        TermData::Const(name) => {
            if let Some(mapped) = st.const_map.get(name) {
                return Ok(Term::const_(mapped.clone()));
            }
            if is_relevant(env, l, st, name) {
                let new_name = repair_constant(env, l, st, name)?;
                Ok(Term::const_(new_name))
            } else {
                Ok(t.clone())
            }
        }
        TermData::Ind(_) | TermData::Construct(_, _) => Ok(t.clone()),
        TermData::App(h, args) => {
            let h = lift_term(env, l, st, h)?;
            let args = lift_all(env, l, st, args)?;
            Ok(Term::app(h, args))
        }
        TermData::Lambda(b, body) => Ok(Term::new(TermData::Lambda(
            Binder {
                name: b.name.clone(),
                ty: lift_term(env, l, st, &b.ty)?,
            },
            lift_term(env, l, st, body)?,
        ))),
        TermData::Pi(b, body) => Ok(Term::new(TermData::Pi(
            Binder {
                name: b.name.clone(),
                ty: lift_term(env, l, st, &b.ty)?,
            },
            lift_term(env, l, st, body)?,
        ))),
        TermData::Let(b, v, body) => Ok(Term::new(TermData::Let(
            Binder {
                name: b.name.clone(),
                ty: lift_term(env, l, st, &b.ty)?,
            },
            lift_term(env, l, st, v)?,
            lift_term(env, l, st, body)?,
        ))),
        TermData::Elim(e) => {
            // An eliminator over some *other* inductive: structural.
            Ok(Term::elim(ElimData {
                ind: e.ind.clone(),
                params: lift_all(env, l, st, &e.params)?,
                motive: lift_term(env, l, st, &e.motive)?,
                cases: lift_all(env, l, st, &e.cases)?,
                scrutinee: lift_term(env, l, st, &e.scrutinee)?,
            }))
        }
    }
}

fn lift_all(env: &mut Env, l: &Lifting, st: &mut LiftState, ts: &[Term]) -> Result<Vec<Term>> {
    ts.iter().map(|t| lift_term(env, l, st, t)).collect()
}

/// Repairs a single constant across the equivalence, registering the result
/// in the environment under the configuration's renaming policy and caching
/// the mapping. Dependencies are repaired on demand.
///
/// # Errors
///
/// Fails if the constant is unknown, the termination guard trips, or the
/// repaired definition does not type check.
pub fn repair_constant(
    env: &mut Env,
    l: &Lifting,
    st: &mut LiftState,
    name: &GlobalName,
) -> Result<GlobalName> {
    if let Some(mapped) = st.const_map.get(name) {
        return Ok(mapped.clone());
    }
    if st.in_progress.contains(name) {
        return Err(RepairError::NonTerminating {
            constant: name.clone(),
        });
    }
    st.in_progress.insert(name.clone());
    let span = env.tracer().begin();
    let result = (|| {
        let decl = env.const_decl(name)?.clone();
        let new_ty = lift_term(env, l, st, &decl.ty)?;
        let new_body = match &decl.body {
            Some(b) => Some(lift_term(env, l, st, b)?),
            None => None,
        };
        let new_name = l.names.rename(name);
        if env.contains(new_name.as_str()) {
            // Idempotence: accept an existing identical definition.
            let existing = env.const_decl(&new_name)?;
            if existing.ty == new_ty && existing.body == new_body {
                return Ok(new_name);
            }
            return Err(RepairError::Kernel(KernelError::Redeclaration(new_name)));
        }
        match new_body {
            Some(b) => env.define(new_name.clone(), new_ty, b)?,
            None => env.assume(new_name.clone(), new_ty)?,
        }
        st.stats.constants_lifted += 1;
        Ok(new_name)
    })();
    st.in_progress.remove(name);
    env.tracer().end(
        span,
        pumpkin_trace::EventKind::LiftConstant {
            name: name.as_str().into(),
        },
    );
    let new_name = result?;
    st.const_map.insert(name.clone(), new_name.clone());
    Ok(new_name)
}
