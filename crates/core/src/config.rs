//! The configuration of the proof term transformation (paper §4.1).
//!
//! A configuration `((DepConstr, DepElim), (Eta, Iota))` instantiates the
//! transformation to a particular equivalence `A ≃ B`. Operationally it
//! splits into two halves:
//!
//! * a [`SideMatch`] for the source side — the *unification heuristics* of
//!   paper §4.2.1, which recognize subterms as (implicit) applications of
//!   `DepConstr(j, A)`, `DepElim(A)`, `Eta(A)`, and `Iota(j, A)`; and
//! * a [`SideBuild`] for the target side, which assembles the corresponding
//!   `B` forms in already-reduced shape (paper Fig. 11, steps 3–4).
//!
//! A [`Lifting`] couples the two with the equivalence metadata (names, the
//! generated `f`/`g`/`section`/`retraction`) and a constant-renaming policy.

use pumpkin_kernel::env::Env;
use pumpkin_kernel::name::GlobalName;
use pumpkin_kernel::term::Term;

use crate::error::Result;

/// A recognized implicit application of `DepElim` (paper Fig. 10 Dep-Elim).
///
/// The motive is in single-argument form (`T_A args → sort`); cases have the
/// *common* dependent-constructor arities shared by the two sides, with the
/// induction hypothesis immediately following each recursive argument.
#[derive(Clone, Debug)]
pub struct MatchedElim {
    /// Instantiation of the type's arguments (parameters).
    pub type_args: Vec<Term>,
    /// The motive, as a function of the scrutinee.
    pub motive: Term,
    /// One case per dependent constructor.
    pub cases: Vec<Term>,
    /// The term being eliminated.
    pub scrutinee: Term,
}

/// A recognized implicit application of a projection (the tuple/record
/// configurations use these; others return `None`).
#[derive(Clone, Debug)]
pub struct MatchedProj {
    /// Which field (0-based, in the record's declaration order).
    pub field: usize,
    /// The projected term.
    pub target: Term,
}

/// Recognizers for the source side of an equivalence: the unification
/// heuristics of paper §4.2.1. Implementations are per-configuration-class,
/// mirroring `liftconfig.ml`.
///
/// `Send + Sync` is a supertrait so that a [`Lifting`] can be shared by
/// reference across the parallel repair scheduler's worker threads;
/// recognizers are immutable data (terms and names), so this costs
/// implementations nothing.
pub trait SideMatch: Send + Sync {
    /// Recognizes the type itself applied to arguments; returns the type
    /// arguments.
    fn match_type(&self, env: &Env, t: &Term) -> Option<Vec<Term>>;

    /// Recognizes `DepConstr(j, ·)` applied to `args` (possibly partially
    /// applied for configurations whose constructors are syntactic).
    fn match_constr(&self, env: &Env, t: &Term) -> Option<(usize, Vec<Term>)>;

    /// Recognizes `DepElim(·)` fully applied.
    fn match_elim(&self, env: &Env, t: &Term) -> Option<MatchedElim>;

    /// Recognizes a field projection.
    fn match_proj(&self, _env: &Env, _t: &Term) -> Option<MatchedProj> {
        None
    }

    /// Recognizes `Iota(j, ·)` applied to arguments.
    fn match_iota(&self, _env: &Env, _t: &Term) -> Option<(usize, Vec<Term>)> {
        None
    }
}

/// Builders for the target side of an equivalence. Builders receive
/// *already lifted* components and must emit reduced terms (paper Fig. 11,
/// step 4 happens here rather than as a separate pass).
///
/// `Send + Sync` for the same reason as [`SideMatch`]: a configured
/// [`Lifting`] is read-only shared state during parallel module repair.
pub trait SideBuild: Send + Sync {
    /// Builds the type applied to the given arguments.
    fn build_type(&self, env: &Env, args: Vec<Term>) -> Result<Term>;

    /// Builds `DepConstr(j, ·)` applied to `args`.
    fn build_constr(&self, env: &Env, j: usize, args: Vec<Term>) -> Result<Term>;

    /// Builds `DepElim(·)` from matched components.
    fn build_elim(&self, env: &Env, elim: MatchedElim) -> Result<Term>;

    /// Builds a field projection.
    fn build_proj(&self, _env: &Env, proj: MatchedProj) -> Result<Term> {
        Err(crate::error::RepairError::UnsupportedDirection(format!(
            "projection of field {} not supported by this configuration",
            proj.field
        )))
    }

    /// Builds `Iota(j, ·)` applied to `args`.
    fn build_iota(&self, _env: &Env, j: usize, _args: Vec<Term>) -> Result<Term> {
        Err(crate::error::RepairError::UnsupportedDirection(format!(
            "Iota({j}, ·) not supported by this configuration"
        )))
    }
}

/// A policy for renaming constants as they are repaired (e.g. `Old.rev` ↦
/// `New.rev`). Rules are tried in order; the first whose prefix matches
/// applies. A rule with an empty prefix always matches (it prepends).
#[derive(Clone, Debug, Default)]
pub struct NameMap {
    rules: Vec<(String, String)>,
}

impl NameMap {
    /// A map with a single prefix-rewrite rule.
    pub fn prefix(from: impl Into<String>, to: impl Into<String>) -> Self {
        NameMap {
            rules: vec![(from.into(), to.into())],
        }
    }

    /// Adds another prefix-rewrite rule (tried after earlier ones).
    pub fn with_rule(mut self, from: impl Into<String>, to: impl Into<String>) -> Self {
        self.rules.push((from.into(), to.into()));
        self
    }

    /// The rules, in application order (used by the persistent lift cache
    /// to fold the renaming policy into the configuration digest).
    pub fn rules(&self) -> &[(String, String)] {
        &self.rules
    }

    /// Renames a constant. Falls back to appending `_repaired` when no rule
    /// matches, so repair never fails on an unanticipated name.
    pub fn rename(&self, name: &GlobalName) -> GlobalName {
        for (from, to) in &self.rules {
            if let Some(rest) = name.as_str().strip_prefix(from.as_str()) {
                return GlobalName::new(format!("{to}{rest}"));
            }
        }
        GlobalName::new(format!("{}_repaired", name))
    }
}

/// The names of a generated (or manually provided) equivalence
/// (paper Fig. 3): `f : A → B`, `g : B → A`, and the round-trip proofs.
#[derive(Clone, Debug)]
pub struct EquivalenceNames {
    /// The forward map.
    pub f: GlobalName,
    /// The backward map.
    pub g: GlobalName,
    /// `∀ a, g (f a) = a`.
    pub section: GlobalName,
    /// `∀ b, f (g b) = b`.
    pub retraction: GlobalName,
}

/// A configured lifting `A ⇑ B`: everything [`crate::lift`] needs.
pub struct Lifting {
    /// The source type's head global.
    pub a_name: GlobalName,
    /// The target type's head global.
    pub b_name: GlobalName,
    /// Source-side recognizers (unification heuristics).
    pub matcher: Box<dyn SideMatch>,
    /// Target-side builders.
    pub builder: Box<dyn SideBuild>,
    /// Constant renaming policy.
    pub names: NameMap,
    /// The registered equivalence, if one was generated/proved.
    pub equivalence: Option<EquivalenceNames>,
}

impl Lifting {
    /// Does this global belong to the source type (and therefore must not
    /// appear in repaired output)?
    pub fn is_source_global(&self, name: &GlobalName) -> bool {
        name == &self.a_name
    }
}

impl std::fmt::Debug for Lifting {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Lifting")
            .field("a_name", &self.a_name)
            .field("b_name", &self.b_name)
            .field("equivalence", &self.equivalence)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_map_prefix_rules() {
        let m = NameMap::prefix("Old.", "New.");
        assert_eq!(m.rename(&"Old.rev".into()).as_str(), "New.rev");
        assert_eq!(m.rename(&"rev".into()).as_str(), "rev_repaired");
        let m2 = NameMap::prefix("", "Sig.");
        assert_eq!(m2.rename(&"zip".into()).as_str(), "Sig.zip");
    }

    #[test]
    fn name_map_rule_order() {
        let m = NameMap::prefix("Old.list", "New.list").with_rule("Old.", "New.");
        assert_eq!(m.rename(&"Old.list".into()).as_str(), "New.list");
        assert_eq!(m.rename(&"Old.app".into()).as_str(), "New.app");
    }
}
