//! The unified front door to the repair pipeline.
//!
//! [`Repairer`] is a builder over everything the free functions in
//! [`crate::repair`] used to expose separately: the work-list drivers
//! (single constant, explicit module, environment-wide sweep), the worker
//! cap for wavefront scheduling, and the observability surface (trace
//! capture, event sinks, metrics). One configuration, one `run`:
//!
//! ```
//! use pumpkin_core::{LiftState, NameMap, Repairer};
//! use pumpkin_core::search::swap;
//! use pumpkin_stdlib as stdlib;
//!
//! # fn main() -> pumpkin_core::Result<()> {
//! let mut env = stdlib::std_env();
//! let lifting = swap::configure(
//!     &mut env,
//!     &"Old.list".into(),
//!     &"New.list".into(),
//!     NameMap::prefix("Old.", "New."),
//! )?;
//! let report = Repairer::new(&lifting)
//!     .jobs(2)
//!     .trace(true)
//!     .run(&mut env, &["Old.rev", "Old.app"])?;
//! assert_eq!(report.renamed("Old.rev").unwrap().as_str(), "New.rev");
//! assert!(!report.trace_events().is_empty());
//! println!("{}", report.trace_summary());
//! # Ok(())
//! # }
//! ```
//!
//! Every run — even `jobs(1)`, the default — goes through the wavefront
//! scheduler, so [`crate::RepairReport::schedule`] (and with it
//! [`crate::RepairReport::dag_dot`]) is uniformly available; a sequential
//! run is simply a one-worker schedule.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use pumpkin_kernel::env::Env;
use pumpkin_kernel::name::GlobalName;
use pumpkin_kernel::term::{Term, TermData};
use pumpkin_trace::sink::{drain_into, EventSink};
use pumpkin_trace::{Event, EventKind, Metrics, Tracer};

use crate::config::Lifting;
use crate::error::{RepairError, Result};
use crate::incr::{invalidated, DigestMap, IncrStats};
use crate::lift::{LiftOutcome, LiftState};
use crate::persist::PersistCache;
use crate::repair::{sweep_work_list, RepairReport};
use crate::schedule::{default_jobs, repair_module_wavefront, CancelToken, ModuleDag};

/// Builder-style front door to the repair pipeline: lifting + jobs +
/// observability in, [`RepairReport`] out. See the module docs for an
/// example.
pub struct Repairer<'a> {
    lifting: &'a Lifting,
    state: Option<&'a mut LiftState>,
    jobs: usize,
    capture: bool,
    prov: Option<bool>,
    sink: Option<Box<dyn EventSink + 'a>>,
    persist_dir: Option<PathBuf>,
    cache_max_bytes: Option<u64>,
    incr_prev: Option<&'a DigestMap>,
    cancel: Option<CancelToken>,
}

impl<'a> Repairer<'a> {
    /// A repairer for `lifting` with the defaults: one worker (sequential,
    /// deterministic wall-clock), a fresh internal [`LiftState`], no
    /// tracing.
    pub fn new(lifting: &'a Lifting) -> Repairer<'a> {
        Repairer {
            lifting,
            state: None,
            jobs: 1,
            capture: false,
            prov: None,
            sink: None,
            persist_dir: None,
            cache_max_bytes: None,
            incr_prev: None,
            cancel: None,
        }
    }

    /// The automatic repair search: enumerate candidate configurations
    /// ranked by the search procedure, run each through the kernel as
    /// oracle, and return the first that fully checks (see
    /// [`crate::auto`]). Unlike [`Repairer::new`] this needs no
    /// pre-configured [`Lifting`] — finding one is the search's job.
    pub fn auto(policy: crate::auto::AutoPolicy) -> crate::auto::AutoDriver {
        crate::auto::AutoDriver::new(policy)
    }

    /// Sets the worker cap for wavefront scheduling (values below 1 are
    /// clamped to 1).
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Worker cap from the environment: `PUMPKIN_JOBS` if set, else the
    /// machine's available parallelism (see
    /// [`crate::schedule::default_jobs`]).
    pub fn jobs_auto(self) -> Self {
        let jobs = default_jobs();
        self.jobs(jobs)
    }

    /// Threads an existing [`LiftState`] through the run, so repeated runs
    /// share the constant map and caches. Without this, each `run` uses a
    /// fresh internal state.
    pub fn state(mut self, state: &'a mut LiftState) -> Self {
        self.state = Some(state);
        self
    }

    /// Captures the structured event stream into
    /// [`RepairReport::trace`] / [`RepairReport::metrics`].
    pub fn trace(mut self, capture: bool) -> Self {
        self.capture = capture;
        self
    }

    /// Overrides provenance recording. By default provenance follows the
    /// tracing switch (a traced run attributes every rewrite site to its
    /// configuration rule and emits the `prov` event family); pass `true`
    /// to record provenance on an otherwise untraced run (filling
    /// [`RepairReport::provenance`] only) or `false` to keep a traced
    /// run's stream free of `prov` events. Recording off is free — one
    /// branch per probe (see [`crate::prov`]).
    pub fn provenance(mut self, record: bool) -> Self {
        self.prov = Some(record);
        self
    }

    /// Streams the run's events into `sink` after the repair finishes
    /// (events are buffered thread-confined during the run). Implies
    /// tracing; combine with [`Repairer::trace`] to also keep the events
    /// on the report.
    pub fn sink(mut self, sink: Box<dyn EventSink + 'a>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Consults (and fills) the persistent cross-run lift cache rooted at
    /// `dir` (see [`crate::persist`]): constants whose old declaration and
    /// lifting configuration digest-match an earlier run are replayed from
    /// disk instead of re-lifted. [`crate::LiftStats::persist_hits`] /
    /// `persist_misses` on the report count the traffic.
    pub fn persist_cache(mut self, dir: impl Into<PathBuf>) -> Self {
        self.persist_dir = Some(dir.into());
        self
    }

    /// Bounds the persistent cache's total size (`--cache-max-bytes`):
    /// once a store pushes the cache root past the budget, the
    /// least-recently-used entries are evicted (see [`crate::persist`]).
    /// No effect without [`Repairer::persist_cache`].
    pub fn cache_max_bytes(mut self, max: Option<u64>) -> Self {
        self.cache_max_bytes = max;
        self
    }

    /// Turns the run differential against a digest snapshot of the last
    /// repaired module ([`DigestMap::capture`]): work-list constants
    /// whose source digest is unchanged — and which do not depend on a
    /// changed one — replay from the persist cache, while the changed
    /// set's DAG-downstream closure is re-lifted fresh with the persist
    /// cache bypassed (see [`crate::incr`]). The report's
    /// [`RepairReport::incr`] carries the `{changed, replayed, skipped}`
    /// accounting. Most effective together with
    /// [`Repairer::persist_cache`]; without it everything re-lifts and
    /// only the accounting differs.
    pub fn incremental(mut self, prev: &'a DigestMap) -> Self {
        self.incr_prev = Some(prev);
        self
    }

    /// Gives the run a wall-clock budget: once it elapses, the run stops
    /// at the next wave boundary with [`RepairError::Cancelled`], keeping
    /// every completed wave installed.
    pub fn deadline(mut self, budget: Duration) -> Self {
        self.cancel = Some(CancelToken::with_deadline(budget));
        self
    }

    /// Attaches an externally controlled [`CancelToken`] (e.g. tripped by
    /// a service on client disconnect). Replaces any token installed by
    /// [`Repairer::deadline`]; use [`CancelToken::with_deadline`] to
    /// combine both behaviors in one token.
    pub fn cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Repairs an explicit work list (`Repair module`, paper §2).
    ///
    /// # Errors
    ///
    /// Propagates the first repair failure; the failing wave is rolled
    /// back, so the environment contains exactly the completed waves.
    pub fn run(self, env: &mut Env, names: &[&str]) -> Result<RepairReport> {
        let nodes: Vec<GlobalName> = names.iter().map(|n| GlobalName::new(*n)).collect();
        self.execute(env, nodes)
    }

    /// Repairs every constant in the environment that mentions the source
    /// type, in declaration order, skipping the configuration's own
    /// artifacts, `extra_exclusions`, and constants already mapped.
    ///
    /// # Errors
    ///
    /// Propagates the first repair failure; the failing wave is rolled
    /// back, so the environment contains exactly the completed waves.
    pub fn run_all(self, env: &mut Env, extra_exclusions: &[&str]) -> Result<RepairReport> {
        let fresh = LiftState::new();
        let state: &LiftState = match &self.state {
            Some(s) => s,
            None => &fresh,
        };
        let nodes = sweep_work_list(env, self.lifting, state, extra_exclusions);
        self.execute(env, nodes)
    }

    /// Repairs a single constant (`Repair A B in name`) and returns its
    /// repaired name.
    ///
    /// # Errors
    ///
    /// Propagates the repair failure; partial output is rolled back.
    pub fn run_one(self, env: &mut Env, name: &GlobalName) -> Result<GlobalName> {
        let report = self.execute(env, vec![name.clone()])?;
        report
            .renamed(name.as_str())
            .cloned()
            .ok_or_else(|| RepairError::MissingDependency(name.clone()))
    }

    /// Repairs several independent work lists against *throwaway clones*
    /// of `base`, sharing this repairer's configuration — worker cap,
    /// tracing, provenance, persist cache — and, crucially, its cancel
    /// token across the whole batch. Each item's report is exactly what a
    /// standalone [`Repairer::run`] over a fresh clone would produce, so
    /// batch replies stay byte-identical to per-request ones; a deadline
    /// installed with [`Repairer::deadline`] budgets the *batch*, and
    /// once it elapses every remaining item reports
    /// [`RepairError::Cancelled`] at its first wave boundary without
    /// doing work.
    ///
    /// A threaded [`Repairer::state`] or [`Repairer::sink`] does not
    /// distribute over a batch (each item must see a fresh state for its
    /// report to match a standalone run); both are ignored here.
    pub fn run_batch(self, base: &Env, lists: &[Vec<String>]) -> Vec<Result<RepairReport>> {
        let mut out = Vec::with_capacity(lists.len());
        for names in lists {
            let mut item = Repairer::new(self.lifting)
                .jobs(self.jobs)
                .trace(self.capture);
            if let Some(p) = self.prov {
                item = item.provenance(p);
            }
            if let Some(dir) = &self.persist_dir {
                item = item
                    .persist_cache(dir)
                    .cache_max_bytes(self.cache_max_bytes);
            }
            if let Some(tok) = &self.cancel {
                item = item.cancel(tok.clone());
            }
            let mut env = base.clone();
            let borrowed: Vec<&str> = names.iter().map(String::as_str).collect();
            out.push(item.run(&mut env, &borrowed));
        }
        out
    }

    fn execute(mut self, env: &mut Env, nodes: Vec<GlobalName>) -> Result<RepairReport> {
        let wall_start = Instant::now();
        let tracing = self.capture || self.sink.is_some();
        // Install a fresh tracer for the run (saving whatever was there),
        // so event streams never bleed between runs.
        let saved = tracing.then(|| {
            let prev = env.take_tracer();
            env.set_tracer(Tracer::new());
            prev
        });

        let mut fresh;
        let state: &mut LiftState = match self.state.take() {
            Some(s) => s,
            None => {
                fresh = LiftState::new();
                &mut fresh
            }
        };
        let lift_before = state.stats;
        let prov_on = self.prov.unwrap_or(tracing);
        if prov_on {
            state.record_provenance();
        }
        if let Some(dir) = &self.persist_dir {
            let cache = PersistCache::open_bounded(dir, self.lifting, self.cache_max_bytes)
                .map_err(|e| {
                    RepairError::PersistCache(format!("cannot open `{}`: {e}", dir.display()))
                })?;
            state.set_persist(Some(Arc::new(cache)));
        }

        // Incremental mode: diff the work list against the snapshot and
        // invalidate the changed set's downstream closure before any lift
        // runs. The ledger of per-constant outcomes restarts per run so a
        // threaded state cannot leak counts between requests.
        state.clear_outcomes();
        let changed = self.incr_prev.map(|prev| {
            let names: Vec<&str> = nodes.iter().map(|n| n.as_str()).collect();
            let changed = prev.diff(env, &names);
            // The downstream closure of an empty changed set is empty,
            // and a non-empty one closes over the snapshot's recorded
            // edges — an incremental run only builds a fresh module DAG
            // when a changed constant is new to the snapshot (its
            // incoming edges were never observed).
            let inv = if changed.is_empty() {
                Default::default()
            } else {
                prev.close_invalidated(&nodes, &changed)
                    .unwrap_or_else(|| invalidated(&ModuleDag::build(env, &nodes), &changed))
            };
            // A threaded state may carry mappings from an earlier run; an
            // invalidated constant must re-lift, not short-circuit on one.
            state.forget(&inv);
            state.set_green(
                nodes
                    .iter()
                    .filter(|n| !inv.contains(*n))
                    .cloned()
                    .collect(),
            );
            state.set_invalidated(inv);
            changed
        });

        // Incremental runs schedule O(dirty), not O(module): a green
        // constant whose target is already resident resolves here — no
        // wave slot, no DAG walk — and only the invalidated remainder
        // (plus greens without a resident target, e.g. a fresh
        // environment, which fall back to the persist-cache replay path)
        // enters the scheduler.
        let mut pre: Vec<(usize, GlobalName, GlobalName)> = Vec::new();
        let run_nodes: Vec<GlobalName> = if changed.is_some() {
            nodes
                .iter()
                .enumerate()
                .filter_map(
                    |(i, n)| match crate::lift::green_reuse(env, self.lifting, state, n) {
                        Some(to) => {
                            pre.push((i, n.clone(), to));
                            None
                        }
                        None => Some(n.clone()),
                    },
                )
                .collect()
        } else {
            nodes.clone()
        };

        let run_span = env.tracer().begin();
        let names: Vec<&str> = run_nodes.iter().map(|n| n.as_str()).collect();
        let mut result = repair_module_wavefront(
            env,
            self.lifting,
            state,
            &names,
            Some(self.jobs),
            self.cancel.as_ref(),
        );
        if !pre.is_empty() {
            // Splice the pre-resolved greens back into work-list order, so
            // an incremental report's mapping is indistinguishable from a
            // cold run's.
            if let Ok(rep) = result.as_mut() {
                let mut greens = pre.into_iter().peekable();
                let mut pairs = Vec::with_capacity(nodes.len());
                for (i, n) in nodes.iter().enumerate() {
                    if greens.peek().is_some_and(|(j, _, _)| *j == i) {
                        let (_, from, to) = greens.next().expect("peeked");
                        pairs.push((from, to));
                    } else if let Some(to) = rep.renamed(n.as_str()) {
                        pairs.push((n.clone(), to.clone()));
                    }
                }
                rep.set_repaired(pairs);
            }
        }
        if self.persist_dir.is_some() {
            // The handle must not outlive the run: a shared `LiftState`
            // threaded into a later `Repairer` without `persist_cache`
            // should not silently keep writing to the old directory.
            state.set_persist(None);
        }
        env.tracer().end(
            run_span,
            EventKind::Run {
                jobs: self.jobs as u32,
            },
        );
        let incr = changed.map(|changed| {
            let replayed = nodes
                .iter()
                .filter(|n| state.outcome(n) == Some(LiftOutcome::Fresh))
                .count() as u64;
            IncrStats {
                changed: changed.len() as u64,
                replayed,
                skipped: nodes.len() as u64 - replayed,
            }
        });
        if self.incr_prev.is_some() {
            // The invalidation and green sets are per-run state, like the
            // persist handle: a later run through the same threaded
            // LiftState must not inherit them.
            state.set_invalidated(Default::default());
            state.set_green(Default::default());
            if let Some(i) = incr {
                env.tracer().emit(EventKind::Incr {
                    changed: i.changed,
                    replayed: i.replayed,
                    skipped: i.skipped,
                });
            }
        }

        // Stringify the finished provenance trees (outside the run span so
        // pretty-printing cost never skews run.ns) and append them to the
        // stream as the `prov` event family. Failed runs keep the trees of
        // their completed waves — useful triage context.
        let provenance: Vec<pumpkin_trace::prov::ConstProvenance> = if prov_on {
            state
                .take_provenance()
                .iter()
                .map(|c| render_provenance(env, c))
                .collect()
        } else {
            Vec::new()
        };
        if tracing {
            for c in &provenance {
                for kind in c.to_events() {
                    env.tracer().emit(kind);
                }
            }
        }

        // Drain + deliver events even when the repair failed: a trace of
        // the failing run is exactly what the sink is for.
        let events: Vec<Event> = if tracing {
            let tracer = env.take_tracer();
            if let Some(prev) = saved {
                env.set_tracer(prev);
            }
            tracer.into_events()
        } else {
            Vec::new()
        };
        if let Some(sink) = &mut self.sink {
            sink.request_wall(wall_start.elapsed().as_nanos() as u64);
            drain_into(&events, sink.as_mut());
        }

        let mut report = result?;
        report.incr = incr;
        report.lift = state.stats.since(&lift_before);
        report.metrics = Metrics::from_events(&events);
        report.provenance = provenance;
        if self.capture {
            report.trace = events;
        }
        // End-to-end request latency, distinct from the in-run span
        // timings: it includes scheduling, provenance rendering, and sink
        // delivery — what a service client actually waited.
        report.wall_ns = wall_start.elapsed().as_nanos() as u64;
        Ok(report)
    }
}

/// Maximum rendered length of a provenance site's pretty-printed subterm.
const SITE_MAX_CHARS: usize = 120;

/// Terms above this node count get a head-symbol summary instead of a
/// full pretty-print: rendering a thousand-node proof term only to clip
/// it to [`SITE_MAX_CHARS`] characters would dominate the provenance
/// path's cost.
const SITE_MAX_NODES: usize = 32;

fn clip(s: String) -> String {
    if s.chars().count() > SITE_MAX_CHARS {
        s.chars().take(SITE_MAX_CHARS).collect::<String>() + "…"
    } else {
        s
    }
}

/// Node-count check with early exit, so huge terms cost O(budget) here
/// rather than a full traversal.
fn small_enough(t: &Term, mut budget: usize) -> bool {
    let mut stack = vec![t];
    while let Some(t) = stack.pop() {
        if budget == 0 {
            return false;
        }
        budget -= 1;
        match t.data() {
            TermData::Rel(_)
            | TermData::Sort(_)
            | TermData::Const(_)
            | TermData::Ind(_)
            | TermData::Construct(_, _) => {}
            TermData::App(h, args) => {
                stack.push(h);
                stack.extend(args);
            }
            TermData::Lambda(b, body) | TermData::Pi(b, body) => {
                stack.push(&b.ty);
                stack.push(body);
            }
            TermData::Let(b, v, body) => {
                stack.push(&b.ty);
                stack.push(v);
                stack.push(body);
            }
            TermData::Elim(e) => {
                stack.extend(&e.params);
                stack.push(&e.motive);
                stack.extend(&e.cases);
                stack.push(&e.scrutinee);
            }
        }
    }
    true
}

/// A cheap head-symbol summary for terms too large to pretty-print.
fn summarize(t: &Term) -> String {
    match t.data() {
        TermData::App(h, _) => summarize(h),
        TermData::Const(n) | TermData::Ind(n) => format!("{n} …"),
        TermData::Construct(ind, j) => format!("{ind}#{j} …"),
        TermData::Lambda(..) => "fun …".into(),
        TermData::Pi(..) => "forall …".into(),
        TermData::Let(..) => "let …".into(),
        TermData::Elim(e) => format!("elim … : {}", e.ind),
        TermData::Rel(i) => format!("#{i} …"),
        TermData::Sort(s) => format!("{s} …"),
    }
}

fn render_term(env: &Env, t: &Term) -> String {
    if small_enough(t, SITE_MAX_NODES) {
        clip(pumpkin_lang::pretty(env, t))
    } else {
        summarize(t)
    }
}

/// Pretty-prints one term-level provenance tree into its wire form.
fn render_provenance(
    env: &Env,
    c: &crate::prov::ConstProv,
) -> pumpkin_trace::prov::ConstProvenance {
    pumpkin_trace::prov::ConstProvenance {
        from: c.from.as_str().to_string(),
        to: c.to.as_str().to_string(),
        sites: c
            .sites
            .iter()
            .map(|s| pumpkin_trace::prov::ProvSite {
                path: s.path.to_vec(),
                rule: s.rule,
                src: render_term(env, &s.src),
                dst: render_term(env, &s.dst),
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NameMap;
    use crate::search::swap;
    use pumpkin_stdlib as stdlib;
    use pumpkin_trace::CacheTable;

    fn configured() -> (Env, Lifting) {
        let mut env = stdlib::std_env();
        let lifting = swap::configure(
            &mut env,
            &"Old.list".into(),
            &"New.list".into(),
            NameMap::prefix("Old.", "New."),
        )
        .unwrap();
        (env, lifting)
    }

    #[test]
    fn default_run_reports_schedule_without_branching() {
        let (mut env, lifting) = configured();
        let report = Repairer::new(&lifting)
            .run(&mut env, &["Old.rev", "Old.app"])
            .unwrap();
        assert_eq!(report.schedule.jobs, 1);
        assert!(report.schedule.waves >= 1);
        assert!(report.dag_dot().contains("Old.rev"));
        // No tracing requested: the stream and registry stay empty.
        assert!(report.trace_events().is_empty());
        assert!(report.metrics().is_empty());
    }

    #[test]
    fn traced_run_captures_spans_and_kernel_probes() {
        let (mut env, lifting) = configured();
        let report = Repairer::new(&lifting)
            .trace(true)
            .run(&mut env, &["Old.rev", "Old.app", "Old.rev_app_distr"])
            .unwrap();
        let events = report.trace_events();
        let has = |pred: &dyn Fn(&EventKind) -> bool| events.iter().any(|e| pred(&e.kind));
        assert!(has(&|k| matches!(k, EventKind::Run { jobs: 1 })));
        assert!(has(&|k| matches!(k, EventKind::Wave { .. })));
        assert!(has(&|k| matches!(k, EventKind::WaveStart { .. })));
        assert!(has(&|k| matches!(k, EventKind::WaveMerge { .. })));
        assert!(has(&|k| matches!(
            k,
            EventKind::LiftConstant { name } if &**name == "Old.rev_app_distr"
        )));
        assert!(has(&|k| matches!(k, EventKind::Whnf)));
        assert!(has(&|k| matches!(
            k,
            EventKind::CacheHit {
                table: CacheTable::Whnf
            } | EventKind::CacheMiss {
                table: CacheTable::Whnf
            }
        )));
        // The metrics registry derives from the same stream.
        assert_eq!(
            report.metrics().counter("lift.constants"),
            events
                .iter()
                .filter(|e| matches!(e.kind, EventKind::LiftConstant { .. }))
                .count() as u64
        );
        // After the run the environment's tracer is disabled again.
        assert!(!env.tracer().enabled());
    }

    #[test]
    fn sink_receives_the_full_stream() {
        let (mut env, lifting) = configured();
        let mut lines = Vec::new();
        {
            let sink = pumpkin_trace::JsonLinesSink::new(&mut lines);
            Repairer::new(&lifting)
                .sink(Box::new(sink))
                .run(&mut env, &["Old.length"])
                .unwrap();
        }
        let text = String::from_utf8(lines).unwrap();
        assert!(!text.is_empty());
        for line in text.lines() {
            assert!(
                Event::from_json(line).is_some(),
                "sink line fails to parse: {line}"
            );
        }
    }

    #[test]
    fn run_one_matches_free_function() {
        let (mut env, lifting) = configured();
        let name = Repairer::new(&lifting)
            .run_one(&mut env, &"Old.rev".into())
            .unwrap();
        assert_eq!(name.as_str(), "New.rev");
    }

    #[test]
    fn persist_cache_replays_identical_declarations() {
        let dir =
            std::env::temp_dir().join(format!("pumpkin-repairer-persist-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let module = pumpkin_stdlib::swap::OLD_MODULE_CONSTANTS;

        // Cold run: everything is a persistent-cache miss.
        let (mut env1, lifting1) = configured();
        let cold = Repairer::new(&lifting1)
            .persist_cache(&dir)
            .run(&mut env1, module)
            .unwrap();
        assert_eq!(cold.lift.persist_hits, 0);
        assert!(cold.lift.persist_misses > 0);

        // Warm run from a fresh environment: every listed constant replays
        // from disk, and the declarations are byte-identical.
        let (mut env2, lifting2) = configured();
        let warm = Repairer::new(&lifting2)
            .persist_cache(&dir)
            .run(&mut env2, module)
            .unwrap();
        assert_eq!(warm.lift.persist_hits as usize, module.len());
        assert_eq!(warm.lift.persist_misses, 0);
        for c in module {
            let n = warm.renamed(c).unwrap();
            assert_eq!(
                env1.const_decl(n).unwrap(),
                env2.const_decl(n).unwrap(),
                "persisted replay diverged on {n}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn green_reuse_skips_unchanged_resident_constants_without_a_cache() {
        // Session-resident incremental run: the environment already holds
        // the previous repair's outputs and every work-list digest matches
        // the snapshot, so the whole module is green — reused with no
        // persist cache attached at all (zero disk).
        let module = pumpkin_stdlib::swap::OLD_MODULE_CONSTANTS;
        let (mut env, lifting) = configured();
        let first = Repairer::new(&lifting).run(&mut env, module).unwrap();
        let snap = DigestMap::capture(&env, module);
        let second = Repairer::new(&lifting)
            .incremental(&snap)
            .run(&mut env, module)
            .unwrap();
        assert_eq!(first.repaired, second.repaired);
        let incr = second.incr.expect("incremental run reports stats");
        assert_eq!(
            (incr.changed, incr.replayed, incr.skipped),
            (0, 0, module.len() as u64)
        );
        assert_eq!(second.lift.persist_hits + second.lift.persist_misses, 0);
    }

    #[test]
    fn threaded_state_re_lifts_the_invalidation_closure() {
        // A LiftState threaded from an earlier run carries mappings for
        // every constant; an invalidated constant (here: absent from the
        // snapshot, as an edit would leave it) must not short-circuit on
        // its stale entry — the driver forgets it so it re-lifts fresh.
        let module = pumpkin_stdlib::swap::OLD_MODULE_CONSTANTS;
        let (mut env, lifting) = configured();
        let mut st = LiftState::new();
        Repairer::new(&lifting)
            .state(&mut st)
            .run(&mut env, module)
            .unwrap();
        let snapped: Vec<&str> = module
            .iter()
            .copied()
            .filter(|n| *n != "Old.fold_app")
            .collect();
        let snap = DigestMap::capture(&env, &snapped);
        let report = Repairer::new(&lifting)
            .state(&mut st)
            .incremental(&snap)
            .run(&mut env, module)
            .unwrap();
        let incr = report.incr.expect("incremental run reports stats");
        assert_eq!(incr.changed, 1);
        assert_eq!(incr.replayed, 1, "the touched leaf must re-lift fresh");
        assert_eq!(incr.skipped, module.len() as u64 - 1);
    }

    #[test]
    fn deadline_zero_cancels_before_any_work() {
        let (mut env, lifting) = configured();
        let err = Repairer::new(&lifting)
            .deadline(Duration::from_nanos(0))
            .run(&mut env, &["Old.rev"])
            .unwrap_err();
        assert!(matches!(err, RepairError::Cancelled { completed_waves: 0 }));
        assert!(!env.contains("New.rev"));
    }

    #[test]
    fn reports_carry_request_latency() {
        let (mut env, lifting) = configured();
        let report = Repairer::new(&lifting).run(&mut env, &["Old.rev"]).unwrap();
        assert!(report.wall_ns > 0);
        let wire = report.to_wire();
        assert_eq!(wire.wall_ns, report.wall_ns);
        assert_eq!(
            wire.repaired,
            vec![("Old.rev".to_string(), "New.rev".to_string())]
        );
    }

    #[test]
    fn run_batch_matches_individual_runs() {
        let (env, lifting) = configured();
        let lists: Vec<Vec<String>> = vec![
            vec!["Old.rev".into()],
            vec!["Old.app".into(), "Old.app_assoc".into()],
            vec!["Old.rev".into()], // repeats are independent items
        ];
        let batch = Repairer::new(&lifting).run_batch(&env, &lists);
        assert_eq!(batch.len(), lists.len());
        for (names, got) in lists.iter().zip(&batch) {
            let mut solo_env = env.clone();
            let borrowed: Vec<&str> = names.iter().map(String::as_str).collect();
            let want = Repairer::new(&lifting)
                .run(&mut solo_env, &borrowed)
                .unwrap();
            let got = got.as_ref().unwrap();
            assert_eq!(got.to_wire().repaired, want.to_wire().repaired);
        }
        // The base environment is untouched: items ran on throwaway clones.
        assert!(!env.contains("New.rev"));
    }

    /// A batch deadline is a *batch* budget: once the shared token
    /// expires, no later item may succeed (each checks the token at its
    /// first wave boundary). With a zero budget that means every item.
    #[test]
    fn run_batch_deadline_cancels_remaining_items() {
        let (env, lifting) = configured();
        let lists: Vec<Vec<String>> = (0..4)
            .map(|_| vec!["Old.rev".to_string(), "Old.rev_involutive".to_string()])
            .collect();
        let all_cancelled = Repairer::new(&lifting)
            .deadline(Duration::from_nanos(0))
            .run_batch(&env, &lists);
        for r in &all_cancelled {
            assert!(matches!(r, Err(RepairError::Cancelled { .. })), "{r:?}");
        }
        // A nonzero budget may land mid-batch; whatever the timing, the
        // outcome sequence must be monotone: successes, then failures.
        let mixed = Repairer::new(&lifting)
            .deadline(Duration::from_micros(300))
            .run_batch(&env, &lists);
        if let Some(first_err) = mixed.iter().position(|r| r.is_err()) {
            assert!(
                mixed[first_err..].iter().all(|r| r.is_err()),
                "an item succeeded after the batch deadline expired"
            );
        }
    }

    #[test]
    fn shared_state_carries_mappings_between_runs() {
        let (mut env, lifting) = configured();
        let mut st = LiftState::new();
        Repairer::new(&lifting)
            .state(&mut st)
            .run(&mut env, &["Old.app"])
            .unwrap();
        assert!(st.const_map.contains_key("Old.app"));
        // Second run resolves Old.app from the shared map.
        let report = Repairer::new(&lifting)
            .state(&mut st)
            .run(&mut env, &["Old.app_assoc"])
            .unwrap();
        assert_eq!(
            report.renamed("Old.app_assoc").unwrap().as_str(),
            "New.app_assoc"
        );
    }
}
