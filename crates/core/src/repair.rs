//! The command-level repair report: what the paper's
//! `Repair Old.list New.list in rev_app_distr` and `Repair module` commands
//! (paper §2) hand back.
//!
//! The single front door for *running* repairs is [`crate::Repairer`]; the
//! PR-3-era free-function wrappers (`repair`, `repair_module`, …) are gone —
//! build a `Repairer` instead.

use std::collections::HashMap;
use std::io;

use pumpkin_kernel::env::Env;
use pumpkin_kernel::name::GlobalName;
use pumpkin_kernel::stats::KernelStats;
use pumpkin_kernel::term::{Term, TermData};
use pumpkin_trace::{Event, Metrics};

use crate::config::Lifting;
use crate::error::{RepairError, Result};
use crate::incr::IncrStats;
use crate::lift::{LiftState, LiftStats};
use crate::schedule::ScheduleStats;

/// The result of a module repair: the constants repaired (old → new), in
/// completion order, plus the work the repair cost at every layer —
/// kernel counters, lift-layer counters, wavefront scheduling stats (every
/// run is scheduled; a sequential run is a one-worker schedule over the
/// same DAG), and, when tracing was on, the structured event stream and
/// the metrics registry derived from it.
#[derive(Clone, Debug, Default)]
pub struct RepairReport {
    /// Mapping from each repaired source constant to its repaired name.
    /// Append through [`RepairReport::record`] so the lookup index stays
    /// in sync.
    pub repaired: Vec<(GlobalName, GlobalName)>,
    /// Old name → position in `repaired`, so [`RepairReport::renamed`] is
    /// O(1) instead of a linear scan (module work lists are consulted once
    /// per constant by the drivers and tests).
    index: HashMap<GlobalName, usize>,
    /// Kernel counters (conv/whnf cache traffic, reduction steps) accrued
    /// while this report's constants were repaired and re-checked. For a
    /// parallel run this aggregates the master and every worker clone.
    pub kernel: KernelStats,
    /// Lift-layer counters (closed-subterm cache traffic, constants
    /// lifted, subterm visits) accrued by this run.
    pub lift: LiftStats,
    /// Wavefront scheduling counters and the dependency DAG. Always
    /// present: sequential runs are one-worker schedules, so callers never
    /// branch on job count.
    pub schedule: ScheduleStats,
    /// The structured trace events, when the run was executed through a
    /// [`crate::Repairer`] with trace capture on (empty otherwise).
    pub trace: Vec<Event>,
    /// Counters/histograms derived from the trace (empty when tracing was
    /// off).
    pub metrics: Metrics,
    /// Per-constant provenance trees — every rewrite site attributed to
    /// the configuration rule that fired — when the run recorded
    /// provenance (tracing on, or [`crate::Repairer::provenance`]); empty
    /// otherwise. Pretty-printed wire form; the order follows completion
    /// order.
    pub provenance: Vec<pumpkin_trace::prov::ConstProvenance>,
    /// End-to-end wall-clock latency of the run in nanoseconds, measured
    /// by [`crate::Repairer`] around the whole request (scheduling,
    /// lifting, provenance rendering, sink delivery) — what a service
    /// client actually waited, as opposed to the per-span timings inside
    /// the trace. Zero for reports not produced through a `Repairer`.
    pub wall_ns: u64,
    /// Incremental accounting (`{changed, replayed, skipped}`), present
    /// only for runs driven through [`crate::Repairer::incremental`] —
    /// `None` for cold runs, so identical cold requests stay byte-for-byte
    /// reproducible on the wire.
    pub incr: Option<IncrStats>,
    /// The automatic-search accounting, present only when the run was
    /// produced by [`crate::AutoDriver`] — `None` for direct repairs, so
    /// their wire form is unchanged.
    pub auto: Option<crate::auto::AutoReport>,
}

impl RepairReport {
    /// Appends a repaired pair, keeping the ordered list and the lookup
    /// index consistent.
    pub fn record(&mut self, from: GlobalName, to: GlobalName) {
        self.index.insert(from.clone(), self.repaired.len());
        self.repaired.push((from, to));
    }

    /// Looks up where a source constant went.
    pub fn renamed(&self, from: &str) -> Option<&GlobalName> {
        self.index.get(from).map(|&i| &self.repaired[i].1)
    }

    /// Replaces the repaired list wholesale, rebuilding the lookup index.
    /// The [`crate::Repairer`] uses this to splice constants it resolved
    /// outside the scheduler (incremental green reuse) back into work-list
    /// order.
    pub(crate) fn set_repaired(&mut self, pairs: Vec<(GlobalName, GlobalName)>) {
        self.index = pairs
            .iter()
            .enumerate()
            .map(|(i, (from, _))| (from.clone(), i))
            .collect();
        self.repaired = pairs;
    }

    /// The module dependency DAG in Graphviz DOT (see
    /// `examples/repair_dag.rs`). Available from every run — a sequential
    /// repair is scheduled over the same DAG with one worker.
    pub fn dag_dot(&self) -> String {
        self.schedule.dag.to_dot()
    }

    /// The structured trace events (empty unless the run traced).
    pub fn trace_events(&self) -> &[Event] {
        &self.trace
    }

    /// The metrics registry derived from the trace (empty unless the run
    /// traced).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Writes the trace as JSON lines (the `--trace out.jsonl` schema,
    /// DESIGN.md §11).
    ///
    /// # Errors
    ///
    /// Propagates the writer's I/O errors.
    pub fn write_trace_jsonl(&self, out: &mut dyn io::Write) -> io::Result<()> {
        for e in &self.trace {
            writeln!(out, "{}", e.to_json())?;
        }
        Ok(())
    }

    /// The human-readable flamegraph-style summary of the trace
    /// ([`pumpkin_trace::summary::render`]).
    pub fn trace_summary(&self) -> String {
        pumpkin_trace::summary::render(&self.trace)
    }

    /// The provenance tree for a constant, looked up by its source *or*
    /// repaired name (empty report or untraced run → `None`).
    pub fn provenance_for(&self, name: &str) -> Option<&pumpkin_trace::prov::ConstProvenance> {
        self.provenance
            .iter()
            .find(|p| p.from == name || p.to == name)
    }

    /// The serializable projection served to repair-service clients
    /// ([`pumpkin_wire::ReportWire`]): repaired pairs, schedule shape,
    /// lift-layer and event-derived counters, and the end-to-end latency.
    /// Raw [`KernelStats`] are deliberately omitted — debug builds
    /// re-typecheck merged declarations, so those counters differ across
    /// build profiles, while the event-derived ones agree.
    pub fn to_wire(&self) -> pumpkin_wire::ReportWire {
        let mut counters: Vec<(String, u64)> = self
            .metrics
            .counters()
            .map(|(k, v)| (k.to_string(), v))
            .collect();
        counters.sort();
        pumpkin_wire::ReportWire {
            repaired: self
                .repaired
                .iter()
                .map(|(f, t)| (f.as_str().to_string(), t.as_str().to_string()))
                .collect(),
            jobs: self.schedule.jobs as u64,
            waves: self.schedule.waves as u64,
            max_width: self.schedule.max_width as u64,
            cache_hits: self.lift.cache_hits,
            cache_misses: self.lift.cache_misses,
            constants_lifted: self.lift.constants_lifted,
            visits: self.lift.visits,
            persist_hits: self.lift.persist_hits,
            persist_misses: self.lift.persist_misses,
            wall_ns: self.wall_ns,
            counters,
            incr: self.incr.map(|i| pumpkin_wire::IncrWire {
                changed: i.changed,
                replayed: i.replayed,
                skipped: i.skipped,
            }),
            auto: self.auto.as_ref().map(crate::auto::AutoReport::to_wire),
        }
    }
}

/// The environment-wide work list [`crate::Repairer::run_all`] sweeps: constants that
/// directly mention the source type, in declaration order, minus the
/// configuration's own artifacts, explicit exclusions, and anything
/// already mapped.
pub(crate) fn sweep_work_list(
    env: &Env,
    lifting: &Lifting,
    state: &LiftState,
    extra_exclusions: &[&str],
) -> Vec<GlobalName> {
    let mut excluded: Vec<GlobalName> = extra_exclusions
        .iter()
        .map(|s| GlobalName::new(*s))
        .collect();
    if let Some(eqv) = &lifting.equivalence {
        excluded.extend([
            eqv.f.clone(),
            eqv.g.clone(),
            eqv.section.clone(),
            eqv.retraction.clone(),
        ]);
    }
    env.order()
        .iter()
        .filter_map(|r| match r {
            pumpkin_kernel::env::GlobalRef::Const(n) => Some(n.clone()),
            _ => None,
        })
        .filter(|name| {
            if excluded.contains(name) || state.const_map.contains_key(name) {
                return false;
            }
            let Ok(decl) = env.const_decl(name) else {
                return false;
            };
            decl.ty.mentions_global(&lifting.a_name)
                || decl
                    .body
                    .as_ref()
                    .is_some_and(|b| b.mentions_global(&lifting.a_name))
        })
        .collect()
}

/// Maximum rendered length of the residual subterm in a
/// [`RepairError::SourceNotFree`] message.
const RESIDUAL_MAX_CHARS: usize = 120;

/// The smallest informative subterm of `t` still mentioning `a`: descend
/// while exactly one child mentions the source, stopping one level above a
/// bare global so the mention keeps its application context (`Old.list
/// nat`, not just `Old.list`).
fn residual_subterm<'t>(t: &'t Term, a: &GlobalName) -> &'t Term {
    fn children(t: &Term) -> Vec<&Term> {
        match t.data() {
            TermData::Rel(_)
            | TermData::Sort(_)
            | TermData::Const(_)
            | TermData::Ind(_)
            | TermData::Construct(_, _) => Vec::new(),
            TermData::App(h, args) => std::iter::once(h).chain(args.iter()).collect(),
            TermData::Lambda(b, body) | TermData::Pi(b, body) => vec![&b.ty, body],
            TermData::Let(b, v, body) => vec![&b.ty, v, body],
            TermData::Elim(e) => e
                .params
                .iter()
                .chain(std::iter::once(&e.motive))
                .chain(e.cases.iter())
                .chain(std::iter::once(&e.scrutinee))
                .collect(),
        }
    }
    let is_atomic = |t: &Term| {
        matches!(
            t.data(),
            TermData::Const(_) | TermData::Ind(_) | TermData::Construct(_, _)
        )
    };
    let mut mentioning = children(t).into_iter().filter(|c| c.mentions_global(a));
    match (mentioning.next(), mentioning.next()) {
        // Exactly one child carries the mention and is itself compound:
        // the residual is in there.
        (Some(c), None) if !is_atomic(c) => residual_subterm(c, a),
        // The unique carrier is a bare global (or several children carry
        // it): `t` is the smallest informative context.
        _ => t,
    }
}

/// Builds the [`RepairError::SourceNotFree`] for a residual mention of the
/// source type in `decl_part` of `constant`, reachable from `root`.
fn source_not_free(
    env: &Env,
    lifting: &Lifting,
    root: &GlobalName,
    constant: &GlobalName,
    t: &Term,
) -> RepairError {
    let residual = residual_subterm(t, &lifting.a_name);
    let mut rendered = pumpkin_lang::pretty(env, residual);
    if rendered.chars().count() > RESIDUAL_MAX_CHARS {
        rendered = rendered
            .chars()
            .take(RESIDUAL_MAX_CHARS)
            .collect::<String>()
            + "…";
    }
    RepairError::SourceNotFree {
        root: root.clone(),
        constant: constant.clone(),
        residual: rendered,
    }
}

/// Checks that a repaired constant no longer refers to the source type —
/// the defining property of repair vs. plain reuse (paper §3.2: "the old
/// version of the specification may be removed").
///
/// # Errors
///
/// Returns [`RepairError::SourceNotFree`] naming the offending constant
/// and the residual source-type subterm (pretty-printed) if any reachable
/// definition still mentions the source type.
pub fn check_source_free(env: &Env, lifting: &Lifting, name: &GlobalName) -> Result<()> {
    let mut visited = std::collections::HashSet::new();
    let mut queue = vec![name.clone()];
    while let Some(c) = queue.pop() {
        if !visited.insert(c.clone()) {
            continue;
        }
        let decl = env
            .const_decl(&c)
            .map_err(|_| RepairError::MissingDependency(c.clone()))?;
        if decl.ty.mentions_global(&lifting.a_name) {
            return Err(source_not_free(env, lifting, name, &c, &decl.ty));
        }
        if let Some(b) = &decl.body {
            if b.mentions_global(&lifting.a_name) {
                return Err(source_not_free(env, lifting, name, &c, b));
            }
        }
        queue.extend(decl.ty.constants());
        if let Some(b) = &decl.body {
            queue.extend(b.constants());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NameMap;
    use crate::repairer::Repairer;
    use crate::search::swap;
    use pumpkin_kernel::reduce::normalize;
    use pumpkin_kernel::term::Term;
    use pumpkin_stdlib as stdlib;
    use pumpkin_stdlib::list::list_lit;
    use pumpkin_stdlib::nat::{nat_lit, nat_value};

    fn swapped_env_and_report() -> (pumpkin_kernel::env::Env, RepairReport) {
        let mut env = stdlib::std_env();
        let lifting = swap::configure(
            &mut env,
            &"Old.list".into(),
            &"New.list".into(),
            NameMap::prefix("Old.", "New."),
        )
        .unwrap();
        let mut st = LiftState::new();
        let report = Repairer::new(&lifting)
            .state(&mut st)
            .run(&mut env, stdlib::swap::OLD_MODULE_CONSTANTS)
            .unwrap();
        (env, report)
    }

    fn new_list(env: &pumpkin_kernel::env::Env, elems: &[u64]) -> Term {
        let _ = env;
        // New.list has cons at 0, nil at 1.
        let elem_ty = Term::ind("nat");
        let mut t = Term::app(Term::construct("New.list", 1), [elem_ty.clone()]);
        for &e in elems.iter().rev() {
            t = Term::app(
                Term::construct("New.list", 0),
                [elem_ty.clone(), nat_lit(e), t],
            );
        }
        t
    }

    #[test]
    fn repairs_whole_list_module() {
        let (env, report) = swapped_env_and_report();
        for c in stdlib::swap::OLD_MODULE_CONSTANTS {
            let to = report.renamed(c).unwrap();
            assert!(env.contains(to.as_str()), "missing {to}");
        }
        assert_eq!(report.renamed("Old.rev").unwrap().as_str(), "New.rev");
    }

    #[test]
    fn repaired_functions_behave_correctly() {
        let (env, _) = swapped_env_and_report();
        // New.rev reverses New.lists.
        let l = new_list(&env, &[1, 2, 3]);
        let r = Term::app(Term::const_("New.rev"), [Term::ind("nat"), l]);
        assert_eq!(normalize(&env, &r), new_list(&env, &[3, 2, 1]));
        // New.length agrees.
        let n = Term::app(
            Term::const_("New.length"),
            [Term::ind("nat"), new_list(&env, &[9, 9])],
        );
        assert_eq!(nat_value(&normalize(&env, &n)), Some(2));
    }

    #[test]
    fn repaired_proofs_do_not_mention_old_type() {
        let (env, report) = swapped_env_and_report();
        let mut env2 = env.clone();
        let lifting = swap::configure(
            &mut env2,
            &"Old.list".into(),
            &"New.list".into(),
            NameMap::prefix("Old.", "New."),
        )
        .unwrap();
        for (_, to) in &report.repaired {
            check_source_free(&env, &lifting, to).unwrap();
        }
    }

    #[test]
    fn source_not_free_error_names_constant_and_residual() {
        let mut env = stdlib::std_env();
        let lifting = swap::configure(
            &mut env,
            &"Old.list".into(),
            &"New.list".into(),
            NameMap::prefix("Old.", "New."),
        )
        .unwrap();
        // Direct mention: an unrepaired constant's type still uses the
        // source type.
        let err = check_source_free(&env, &lifting, &"Old.rev".into()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("`Old.rev` is not source-free"), "{msg}");
        assert!(msg.contains("Old.list"), "{msg}");

        // Mention through a dependency: `outer` is clean itself, but its
        // body references `inner`, whose body still builds an Old.list.
        let nat = Term::ind("nat");
        env.define(
            "inner",
            nat.clone(),
            Term::app(
                Term::const_("Old.length"),
                [nat.clone(), list_lit("Old.list", nat.clone(), &[])],
            ),
        )
        .unwrap();
        env.define("outer", nat, Term::const_("inner")).unwrap();
        let err = check_source_free(&env, &lifting, &"outer".into()).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("`outer` is not source-free") && msg.contains("dependency `inner`"),
            "{msg}"
        );
        assert!(
            msg.contains("Old.nil"),
            "residual should be the nil literal: {msg}"
        );
    }

    #[test]
    fn transport_commutes_with_append() {
        // ∀ l1 l2, f (l1 ++ l2) = (f l1) ++ (f l2) — checked by normalization
        // on concrete values (paper §3.2's equality up to transport, tested
        // behaviourally).
        let mut env = stdlib::std_env();
        let lifting = swap::configure(
            &mut env,
            &"Old.list".into(),
            &"New.list".into(),
            NameMap::prefix("Old.", "New."),
        )
        .unwrap();
        let mut st = LiftState::new();
        Repairer::new(&lifting)
            .state(&mut st)
            .run_one(&mut env, &"Old.app".into())
            .unwrap();
        let f = lifting.equivalence.as_ref().unwrap().f.clone();
        let nat = Term::ind("nat");
        let l1 = list_lit("Old.list", nat.clone(), &[nat_lit(1), nat_lit(2)]);
        let l2 = list_lit("Old.list", nat.clone(), &[nat_lit(3)]);
        let lhs = Term::app(
            Term::const_(f.clone()),
            [
                nat.clone(),
                Term::app(
                    Term::const_("Old.app"),
                    [nat.clone(), l1.clone(), l2.clone()],
                ),
            ],
        );
        let rhs = Term::app(
            Term::const_("New.app"),
            [
                nat.clone(),
                Term::app(Term::const_(f.clone()), [nat.clone(), l1]),
                Term::app(Term::const_(f), [nat, l2]),
            ],
        );
        assert_eq!(normalize(&env, &lhs), normalize(&env, &rhs));
    }

    #[test]
    fn cache_ablation_gives_same_result() {
        let mut env1 = stdlib::std_env();
        let l1 = swap::configure(
            &mut env1,
            &"Old.list".into(),
            &"New.list".into(),
            NameMap::prefix("Old.", "New."),
        )
        .unwrap();
        let mut st1 = LiftState::new();
        Repairer::new(&l1)
            .state(&mut st1)
            .run(&mut env1, stdlib::swap::OLD_MODULE_CONSTANTS)
            .unwrap();

        let mut env2 = stdlib::std_env();
        let l2 = swap::configure(
            &mut env2,
            &"Old.list".into(),
            &"New.list".into(),
            NameMap::prefix("Old.", "New."),
        )
        .unwrap();
        let mut st2 = LiftState::without_cache();
        Repairer::new(&l2)
            .state(&mut st2)
            .run(&mut env2, stdlib::swap::OLD_MODULE_CONSTANTS)
            .unwrap();

        assert!(st1.stats.cache_hits > 0);
        assert_eq!(st2.stats.cache_hits, 0);
        for c in stdlib::swap::OLD_MODULE_CONSTANTS {
            let n = GlobalName::new(c.replace("Old.", "New."));
            assert_eq!(
                env1.const_decl(&n).unwrap().body,
                env2.const_decl(&n).unwrap().body,
                "cache changed the result of {n}"
            );
        }
    }

    #[test]
    fn repair_replica_term_module() {
        let mut env = stdlib::std_env();
        let lifting = swap::configure(
            &mut env,
            &"Old.Term".into(),
            &"New.Term".into(),
            NameMap::prefix("Old.", "New."),
        )
        .unwrap();
        let mut st = LiftState::new();
        let report = Repairer::new(&lifting)
            .state(&mut st)
            .run(
                &mut env,
                &[
                    "Old.size",
                    "Old.eval",
                    "Old.swap_eq_args",
                    "Old.swap_eq_args_involutive",
                    "Old.eval_eq_true_or_false",
                ],
            )
            .unwrap();
        assert_eq!(report.repaired.len(), 5);
        // The repaired eval computes the same values through the equivalence.
        let f = lifting.equivalence.as_ref().unwrap().f.clone();
        let old_t = pumpkin_lang::term(
            &env,
            "Old.Plus (Old.Int (S (S O))) (Old.Times (Old.Int (S O)) (Old.Int (S (S (S O)))))",
        )
        .unwrap();
        let env_fn = pumpkin_lang::term(&env, "fun (i : Id) => O").unwrap();
        let old_v = Term::app(Term::const_("Old.eval"), [env_fn.clone(), old_t.clone()]);
        let new_v = Term::app(
            Term::const_("New.eval"),
            [env_fn, Term::app(Term::const_(f), [old_t])],
        );
        assert_eq!(
            nat_value(&normalize(&env, &old_v)),
            nat_value(&normalize(&env, &new_v))
        );
        assert_eq!(nat_value(&normalize(&env, &old_v)), Some(5));
    }
}
