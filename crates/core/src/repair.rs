//! The command-level repair driver: the analogue of the paper's
//! `Repair Old.list New.list in rev_app_distr` and `Repair module` commands
//! (paper §2).

use std::collections::HashMap;

use pumpkin_kernel::env::Env;
use pumpkin_kernel::name::GlobalName;
use pumpkin_kernel::stats::KernelStats;

use crate::config::Lifting;
use crate::error::{RepairError, Result};
use crate::lift::{repair_constant, LiftState};
use crate::schedule::{repair_module_wavefront, ScheduleStats};

/// The result of a module repair: the constants repaired (old → new), in
/// completion order, plus the kernel-layer work the repair cost.
#[derive(Clone, Debug, Default)]
pub struct RepairReport {
    /// Mapping from each repaired source constant to its repaired name.
    /// Append through [`RepairReport::record`] so the lookup index stays
    /// in sync.
    pub repaired: Vec<(GlobalName, GlobalName)>,
    /// Old name → position in `repaired`, so [`RepairReport::renamed`] is
    /// O(1) instead of a linear scan (module work lists are consulted once
    /// per constant by the drivers and tests).
    index: HashMap<GlobalName, usize>,
    /// Kernel counters (conv/whnf cache traffic, reduction steps) accrued
    /// while this report's constants were repaired and re-checked. For a
    /// parallel run this aggregates the master and every worker clone.
    pub kernel: KernelStats,
    /// Wavefront scheduling counters and the dependency DAG, present when
    /// the repair ran through the parallel driver.
    pub schedule: Option<ScheduleStats>,
}

impl RepairReport {
    /// Appends a repaired pair, keeping the ordered list and the lookup
    /// index consistent.
    pub fn record(&mut self, from: GlobalName, to: GlobalName) {
        self.index.insert(from.clone(), self.repaired.len());
        self.repaired.push((from, to));
    }

    /// Looks up where a source constant went.
    pub fn renamed(&self, from: &str) -> Option<&GlobalName> {
        self.index.get(from).map(|&i| &self.repaired[i].1)
    }

    /// The module dependency DAG in Graphviz DOT, if this repair was
    /// scheduled (see `examples/repair_dag.rs`).
    pub fn dag_dot(&self) -> Option<String> {
        self.schedule.as_ref().map(|s| s.dag.to_dot())
    }
}

/// `Repair A B in name`: repairs a single constant (dependencies are
/// repaired on demand) and returns the new constant's name.
///
/// # Errors
///
/// Propagates configuration, unification, and kernel errors; on error the
/// environment may contain successfully repaired dependencies (they are
/// type-correct and harmless).
pub fn repair(
    env: &mut Env,
    lifting: &Lifting,
    state: &mut LiftState,
    name: &GlobalName,
) -> Result<GlobalName> {
    repair_constant(env, lifting, state, name)
}

/// `Repair module`: repairs every listed constant (the paper repairs the
/// entire list module at once; the work list is the module's constants in
/// any order — dependencies resolve on demand and are shared through the
/// cache).
pub fn repair_module(
    env: &mut Env,
    lifting: &Lifting,
    state: &mut LiftState,
    names: &[&str],
) -> Result<RepairReport> {
    let kernel_before = env.kernel_stats();
    let mut report = RepairReport::default();
    for n in names {
        let from = GlobalName::new(*n);
        let to = repair_constant(env, lifting, state, &from)?;
        report.record(from, to);
    }
    report.kernel = env.kernel_stats().since(&kernel_before);
    Ok(report)
}

/// `Repair module`, in parallel: the same work list as
/// [`repair_module`], scheduled over the module's dependency DAG in
/// concurrent waves (`jobs` workers; `None` reads `PUMPKIN_JOBS`, falling
/// back to the machine's parallelism). Repaired names and bodies are
/// identical to the sequential driver's; see [`crate::schedule`] for the
/// soundness argument and [`RepairReport::schedule`] for the wave/worker
/// counters.
///
/// # Errors
///
/// Propagates the first repair failure; the environment then contains
/// exactly the completed waves (all type-correct).
pub fn repair_module_parallel(
    env: &mut Env,
    lifting: &Lifting,
    state: &mut LiftState,
    names: &[&str],
    jobs: Option<usize>,
) -> Result<RepairReport> {
    repair_module_wavefront(env, lifting, state, names, jobs)
}

/// Repairs *every* constant in the environment that (transitively) mentions
/// the source type, in declaration order — the fully automatic reading of
/// `Repair module` (the paper repairs "the entire list module ... all at
/// once"). The configuration's own artifacts (the equivalence functions and
/// anything already mapped in `state`) are skipped.
///
/// # Errors
///
/// Propagates the first repair failure; earlier repairs remain (they are
/// type-correct).
pub fn repair_all(
    env: &mut Env,
    lifting: &Lifting,
    state: &mut LiftState,
    extra_exclusions: &[&str],
) -> Result<RepairReport> {
    let mut excluded: Vec<GlobalName> = extra_exclusions
        .iter()
        .map(|s| GlobalName::new(*s))
        .collect();
    if let Some(eqv) = &lifting.equivalence {
        excluded.extend([
            eqv.f.clone(),
            eqv.g.clone(),
            eqv.section.clone(),
            eqv.retraction.clone(),
        ]);
    }
    let order: Vec<GlobalName> = env
        .order()
        .iter()
        .filter_map(|r| match r {
            pumpkin_kernel::env::GlobalRef::Const(n) => Some(n.clone()),
            _ => None,
        })
        .collect();
    let kernel_before = env.kernel_stats();
    let mut report = RepairReport::default();
    for name in order {
        if excluded.contains(&name) || state.const_map.contains_key(&name) {
            continue;
        }
        let decl = match env.const_decl(&name) {
            Ok(d) => d.clone(),
            Err(_) => continue,
        };
        let mentions = decl.ty.mentions_global(&lifting.a_name)
            || decl
                .body
                .as_ref()
                .is_some_and(|b| b.mentions_global(&lifting.a_name));
        if !mentions {
            continue;
        }
        let to = repair_constant(env, lifting, state, &name)?;
        report.record(name, to);
    }
    report.kernel = env.kernel_stats().since(&kernel_before);
    Ok(report)
}

/// Checks that a repaired constant no longer refers to the source type —
/// the defining property of repair vs. plain reuse (paper §3.2: "the old
/// version of the specification may be removed").
///
/// # Errors
///
/// Returns an error naming the offending constant if any reachable
/// definition still mentions the source type.
pub fn check_source_free(env: &Env, lifting: &Lifting, name: &GlobalName) -> Result<()> {
    let mut visited = std::collections::HashSet::new();
    let mut queue = vec![name.clone()];
    while let Some(c) = queue.pop() {
        if !visited.insert(c.clone()) {
            continue;
        }
        let decl = env
            .const_decl(&c)
            .map_err(|_| RepairError::MissingDependency(c.clone()))?;
        let mut mentions = decl.ty.mentions_global(&lifting.a_name);
        if let Some(b) = &decl.body {
            mentions = mentions || b.mentions_global(&lifting.a_name);
        }
        if mentions {
            return Err(RepairError::UnificationFailed {
                term: pumpkin_kernel::term::Term::const_(c.clone()),
                reason: format!(
                    "repaired constant `{c}` still mentions `{}`",
                    lifting.a_name
                ),
            });
        }
        queue.extend(decl.ty.constants());
        if let Some(b) = &decl.body {
            queue.extend(b.constants());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NameMap;
    use crate::search::swap;
    use pumpkin_kernel::reduce::normalize;
    use pumpkin_kernel::term::Term;
    use pumpkin_stdlib as stdlib;
    use pumpkin_stdlib::list::list_lit;
    use pumpkin_stdlib::nat::{nat_lit, nat_value};

    fn swapped_env_and_report() -> (pumpkin_kernel::env::Env, RepairReport) {
        let mut env = stdlib::std_env();
        let lifting = swap::configure(
            &mut env,
            &"Old.list".into(),
            &"New.list".into(),
            NameMap::prefix("Old.", "New."),
        )
        .unwrap();
        let mut st = LiftState::new();
        let report = repair_module(
            &mut env,
            &lifting,
            &mut st,
            stdlib::swap::OLD_MODULE_CONSTANTS,
        )
        .unwrap();
        (env, report)
    }

    fn new_list(env: &pumpkin_kernel::env::Env, elems: &[u64]) -> Term {
        let _ = env;
        // New.list has cons at 0, nil at 1.
        let elem_ty = Term::ind("nat");
        let mut t = Term::app(Term::construct("New.list", 1), [elem_ty.clone()]);
        for &e in elems.iter().rev() {
            t = Term::app(
                Term::construct("New.list", 0),
                [elem_ty.clone(), nat_lit(e), t],
            );
        }
        t
    }

    #[test]
    fn repairs_whole_list_module() {
        let (env, report) = swapped_env_and_report();
        for c in stdlib::swap::OLD_MODULE_CONSTANTS {
            let to = report.renamed(c).unwrap();
            assert!(env.contains(to.as_str()), "missing {to}");
        }
        assert_eq!(report.renamed("Old.rev").unwrap().as_str(), "New.rev");
    }

    #[test]
    fn repaired_functions_behave_correctly() {
        let (env, _) = swapped_env_and_report();
        // New.rev reverses New.lists.
        let l = new_list(&env, &[1, 2, 3]);
        let r = Term::app(Term::const_("New.rev"), [Term::ind("nat"), l]);
        assert_eq!(normalize(&env, &r), new_list(&env, &[3, 2, 1]));
        // New.length agrees.
        let n = Term::app(
            Term::const_("New.length"),
            [Term::ind("nat"), new_list(&env, &[9, 9])],
        );
        assert_eq!(nat_value(&normalize(&env, &n)), Some(2));
    }

    #[test]
    fn repaired_proofs_do_not_mention_old_type() {
        let (env, report) = swapped_env_and_report();
        let mut env2 = env.clone();
        let lifting = swap::configure(
            &mut env2,
            &"Old.list".into(),
            &"New.list".into(),
            NameMap::prefix("Old.", "New."),
        )
        .unwrap();
        for (_, to) in &report.repaired {
            check_source_free(&env, &lifting, to).unwrap();
        }
    }

    #[test]
    fn transport_commutes_with_append() {
        // ∀ l1 l2, f (l1 ++ l2) = (f l1) ++ (f l2) — checked by normalization
        // on concrete values (paper §3.2's equality up to transport, tested
        // behaviourally).
        let mut env = stdlib::std_env();
        let lifting = swap::configure(
            &mut env,
            &"Old.list".into(),
            &"New.list".into(),
            NameMap::prefix("Old.", "New."),
        )
        .unwrap();
        let mut st = LiftState::new();
        repair(&mut env, &lifting, &mut st, &"Old.app".into()).unwrap();
        let f = lifting.equivalence.as_ref().unwrap().f.clone();
        let nat = Term::ind("nat");
        let l1 = list_lit("Old.list", nat.clone(), &[nat_lit(1), nat_lit(2)]);
        let l2 = list_lit("Old.list", nat.clone(), &[nat_lit(3)]);
        let lhs = Term::app(
            Term::const_(f.clone()),
            [
                nat.clone(),
                Term::app(
                    Term::const_("Old.app"),
                    [nat.clone(), l1.clone(), l2.clone()],
                ),
            ],
        );
        let rhs = Term::app(
            Term::const_("New.app"),
            [
                nat.clone(),
                Term::app(Term::const_(f.clone()), [nat.clone(), l1]),
                Term::app(Term::const_(f), [nat, l2]),
            ],
        );
        assert_eq!(normalize(&env, &lhs), normalize(&env, &rhs));
    }

    #[test]
    fn cache_ablation_gives_same_result() {
        let mut env1 = stdlib::std_env();
        let l1 = swap::configure(
            &mut env1,
            &"Old.list".into(),
            &"New.list".into(),
            NameMap::prefix("Old.", "New."),
        )
        .unwrap();
        let mut st1 = LiftState::new();
        repair_module(&mut env1, &l1, &mut st1, stdlib::swap::OLD_MODULE_CONSTANTS).unwrap();

        let mut env2 = stdlib::std_env();
        let l2 = swap::configure(
            &mut env2,
            &"Old.list".into(),
            &"New.list".into(),
            NameMap::prefix("Old.", "New."),
        )
        .unwrap();
        let mut st2 = LiftState::without_cache();
        repair_module(&mut env2, &l2, &mut st2, stdlib::swap::OLD_MODULE_CONSTANTS).unwrap();

        assert!(st1.stats.cache_hits > 0);
        assert_eq!(st2.stats.cache_hits, 0);
        for c in stdlib::swap::OLD_MODULE_CONSTANTS {
            let n = GlobalName::new(c.replace("Old.", "New."));
            assert_eq!(
                env1.const_decl(&n).unwrap().body,
                env2.const_decl(&n).unwrap().body,
                "cache changed the result of {n}"
            );
        }
    }

    #[test]
    fn repair_replica_term_module() {
        let mut env = stdlib::std_env();
        let lifting = swap::configure(
            &mut env,
            &"Old.Term".into(),
            &"New.Term".into(),
            NameMap::prefix("Old.", "New."),
        )
        .unwrap();
        let mut st = LiftState::new();
        let report = repair_module(
            &mut env,
            &lifting,
            &mut st,
            &[
                "Old.size",
                "Old.eval",
                "Old.swap_eq_args",
                "Old.swap_eq_args_involutive",
                "Old.eval_eq_true_or_false",
            ],
        )
        .unwrap();
        assert_eq!(report.repaired.len(), 5);
        // The repaired eval computes the same values through the equivalence.
        let f = lifting.equivalence.as_ref().unwrap().f.clone();
        let old_t = pumpkin_lang::term(
            &env,
            "Old.Plus (Old.Int (S (S O))) (Old.Times (Old.Int (S O)) (Old.Int (S (S (S O)))))",
        )
        .unwrap();
        let env_fn = pumpkin_lang::term(&env, "fun (i : Id) => O").unwrap();
        let old_v = Term::app(Term::const_("Old.eval"), [env_fn.clone(), old_t.clone()]);
        let new_v = Term::app(
            Term::const_("New.eval"),
            [env_fn, Term::app(Term::const_(f), [old_t])],
        );
        assert_eq!(
            nat_value(&normalize(&env, &old_v)),
            nat_value(&normalize(&env, &new_v))
        );
        assert_eq!(nat_value(&normalize(&env, &old_v)), Some(5));
    }
}
