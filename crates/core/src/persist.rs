//! The persistent, cross-run lift cache.
//!
//! A [`PersistCache`] is a content-addressed store of repaired
//! declarations on disk:
//!
//! ```text
//! <root>/v<WIRE_VERSION>/<config-digest>/<decl-digest>.bin
//! ```
//!
//! * `<root>` is the user-chosen cache directory (`--cache-dir`, or the
//!   daemon's default under `~/.cache/pumpkin`).
//! * `v<WIRE_VERSION>` is the invalidation tag: bumping the wire format
//!   orphans every old entry wholesale (they are simply never looked at
//!   again), and entries that fail to decode — including any whose
//!   embedded digest no longer verifies — read as absent.
//! * `<config-digest>` identifies the lifting recipe: the equivalence's
//!   endpoint names, the rename rules in order, and the generated
//!   equivalence constants (see [`config_digest`]). Two different
//!   configurations can never observe each other's entries.
//! * `<decl-digest>` is [`pumpkin_wire::decl_digest`] of the *old*
//!   declaration — name, type and body digests, opacity — so a source
//!   edit re-keys the entry automatically.
//!
//! The value is the [`pumpkin_wire::encode_decl`] binary frame of the
//! *repaired* declaration. Replay installs it via `Env::admit_checked`
//! (debug builds re-typecheck; release builds trust the digests, which is
//! where the warm-path speedup comes from — see `repair_constant`).
//! Writes are atomic (temp file + rename), so concurrent daemons sharing
//! a cache directory never observe partial entries.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use pumpkin_kernel::env::ConstDecl;
use pumpkin_wire::{
    decl_digest, decode_decl, encode_decl, DigestBuilder, TermDigest, WIRE_VERSION,
};

use crate::config::Lifting;

/// The digest identifying a lifting configuration for cache-keying
/// purposes: wire version, endpoint type names, rename rules in order,
/// and the equivalence constants (when generated). A `Lifting` holds
/// trait objects, so this digests the *recipe's observable identity*, not
/// the code; all in-tree search procedures derive their behavior from
/// exactly these names.
pub fn config_digest(l: &Lifting) -> TermDigest {
    let mut h = DigestBuilder::new();
    h.write_u64(WIRE_VERSION as u64);
    h.write_str(l.a_name.as_str());
    h.write_str(l.b_name.as_str());
    let rules = l.names.rules();
    h.write_u64(rules.len() as u64);
    for (from, to) in rules {
        h.write_str(from);
        h.write_str(to);
    }
    match &l.equivalence {
        Some(eqv) => {
            h.write_u64(1);
            h.write_str(eqv.f.as_str());
            h.write_str(eqv.g.as_str());
            h.write_str(eqv.section.as_str());
            h.write_str(eqv.retraction.as_str());
        }
        None => h.write_u64(0),
    }
    TermDigest(h.finish())
}

/// An open handle on one configuration's shard of the on-disk cache.
///
/// Immutable after opening (all I/O goes through `&self`), so it is
/// shared across wavefront workers behind an `Arc`.
#[derive(Debug)]
pub struct PersistCache {
    dir: PathBuf,
}

impl PersistCache {
    /// Opens (creating as needed) the shard of `root` belonging to this
    /// lifting configuration.
    pub fn open(root: impl AsRef<Path>, lifting: &Lifting) -> std::io::Result<PersistCache> {
        let dir = root
            .as_ref()
            .join(format!("v{WIRE_VERSION}"))
            .join(config_digest(lifting).to_string());
        fs::create_dir_all(&dir)?;
        Ok(PersistCache { dir })
    }

    /// The shard directory (for diagnostics and tests).
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Looks up the repaired declaration persisted for `old`. Corrupt,
    /// truncated, or digest-mismatching entries read as absent — the
    /// caller falls back to a fresh lift and rewrites them.
    pub fn lookup(&self, old: &ConstDecl) -> Option<ConstDecl> {
        let bytes = fs::read(self.entry_path(old)).ok()?;
        decode_decl(&bytes).ok()
    }

    /// Persists `new` as the repair of `old`. Best-effort: I/O failures
    /// are swallowed (the cache is an accelerator, never a correctness
    /// dependency). The write is atomic — temp file, then rename — so a
    /// concurrent reader sees either nothing or a complete frame.
    pub fn store(&self, old: &ConstDecl, new: &ConstDecl) {
        let path = self.entry_path(old);
        if path.exists() {
            return;
        }
        // The temp name must be unique per *store call*, not just per
        // process: two worker threads in one daemon storing the same
        // entry through a pid-only suffix would interleave their
        // write/rename/remove on a single tmp path — publishing a torn
        // frame or deleting a freshly renamed entry.
        static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
        let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
        let tmp = path.with_extension(format!("tmp{}.{seq}", std::process::id()));
        if fs::write(&tmp, encode_decl(new)).is_ok() && fs::rename(&tmp, &path).is_err() {
            let _ = fs::remove_file(&tmp);
        }
    }

    fn entry_path(&self, old: &ConstDecl) -> PathBuf {
        self.dir.join(format!("{}.bin", decl_digest(old)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pumpkin_kernel::term::Term;

    fn sample_lifting(env: &mut pumpkin_kernel::env::Env) -> Lifting {
        crate::search::swap::configure(
            env,
            &"Old.list".into(),
            &"New.list".into(),
            crate::config::NameMap::prefix("Old.", "New."),
        )
        .unwrap()
    }

    #[test]
    fn store_then_lookup_roundtrips() {
        let mut env = pumpkin_stdlib::std_env();
        let lifting = sample_lifting(&mut env);
        let root =
            std::env::temp_dir().join(format!("pumpkin-persist-test-{}", std::process::id()));
        let cache = PersistCache::open(&root, &lifting).unwrap();
        let old = env.const_decl(&"Old.rev".into()).unwrap().clone();
        let new = ConstDecl {
            name: "New.rev".into(),
            ty: Term::prop(),
            body: None,
            opaque: false,
        };
        assert!(cache.lookup(&old).is_none());
        cache.store(&old, &new);
        assert_eq!(cache.lookup(&old), Some(new));
        // A corrupt entry reads as absent.
        let path = cache.entry_path(&old);
        let mut bytes = fs::read(&path).unwrap();
        bytes[8] ^= 0xff;
        fs::write(&path, bytes).unwrap();
        assert!(cache.lookup(&old).is_none());
        let _ = fs::remove_dir_all(&root);
    }

    /// Regression test for the tmp-path collision: many threads storing
    /// the same entries into one shard concurrently must leave every
    /// entry complete. With a pid-only temp suffix the threads shared one
    /// tmp path, so an interleaved write/rename could publish a torn
    /// frame — which reads as absent forever after, because `store` sees
    /// the path exists and never rewrites it.
    #[test]
    fn concurrent_stores_into_a_shared_dir_publish_complete_entries() {
        let mut env = pumpkin_stdlib::std_env();
        let lifting = sample_lifting(&mut env);
        let root = std::env::temp_dir().join(format!(
            "pumpkin-persist-race-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&root);
        let cache = PersistCache::open(&root, &lifting).unwrap();
        let entries: Vec<(ConstDecl, ConstDecl)> = (0..64usize)
            .map(|i| {
                let old = ConstDecl {
                    name: format!("Old.c{i}").into(),
                    ty: Term::prop(),
                    body: None,
                    opaque: false,
                };
                let new = ConstDecl {
                    name: format!("New.c{i}").into(),
                    ty: Term::prop(),
                    body: Some(Term::rel(i)),
                    opaque: false,
                };
                (old, new)
            })
            .collect();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for (old, new) in &entries {
                        cache.store(old, new);
                    }
                });
            }
        });
        for (old, new) in &entries {
            assert_eq!(
                cache.lookup(old).as_ref(),
                Some(new),
                "entry for {} is missing or torn",
                old.name
            );
        }
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn config_digest_separates_recipes() {
        let mut env = pumpkin_stdlib::std_env();
        let a = sample_lifting(&mut env);
        let d1 = config_digest(&a);
        let mut b = sample_lifting(&mut env);
        b.names = crate::config::NameMap::prefix("Old.", "Other.");
        assert_ne!(d1, config_digest(&b));
        assert_eq!(d1, config_digest(&a));
    }
}
