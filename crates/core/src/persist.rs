//! The persistent, cross-run lift cache.
//!
//! A [`PersistCache`] is a content-addressed store of repaired
//! declarations on disk:
//!
//! ```text
//! <root>/v<WIRE_VERSION>/<config-digest>/<decl-digest>.bin
//! ```
//!
//! * `<root>` is the user-chosen cache directory (`--cache-dir`, or the
//!   daemon's default under `~/.cache/pumpkin`).
//! * `v<WIRE_VERSION>` is the invalidation tag: bumping the wire format
//!   orphans every old entry wholesale (they are simply never looked at
//!   again), and entries that fail to decode — including any whose
//!   embedded digest no longer verifies — read as absent.
//! * `<config-digest>` identifies the lifting recipe: the equivalence's
//!   endpoint names, the rename rules in order, and the generated
//!   equivalence constants (see [`config_digest`]). Two different
//!   configurations can never observe each other's entries.
//! * `<decl-digest>` is [`pumpkin_wire::decl_digest`] of the *old*
//!   declaration — name, type and body digests, opacity — so a source
//!   edit re-keys the entry automatically.
//!
//! The value is the [`pumpkin_wire::encode_decl`] binary frame of the
//! *repaired* declaration. Replay installs it via `Env::admit_checked`
//! (debug builds re-typecheck; release builds trust the digests, which is
//! where the warm-path speedup comes from — see `repair_constant`).
//!
//! Shared-directory hardening (DESIGN.md §16):
//!
//! * Writes are atomic (temp file + rename), so concurrent daemons
//!   sharing a cache directory never observe partial entries.
//! * Reads are corruption-tolerant: an entry that fails to decode is
//!   *evicted* (deleted) and reads as a miss, so the fresh lift that
//!   follows re-publishes a good frame — a damaged cache can slow a run
//!   down but never fail or poison it.
//! * The store can be size-bounded ([`PersistCache::open_bounded`],
//!   `--cache-max-bytes`): when the root directory's entries exceed the
//!   budget, the least-recently-used entries (by modification time;
//!   lookups touch their entry) are removed. Eviction across daemons is
//!   serialized by a `create_new` lock file with a stale-steal guard, so
//!   two daemons never scan-and-delete concurrently.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, SystemTime};

use pumpkin_kernel::env::ConstDecl;
use pumpkin_wire::{
    decl_digest, decode_decl, encode_decl, DigestBuilder, TermDigest, WIRE_VERSION,
};

use crate::config::Lifting;

/// The digest identifying a lifting configuration for cache-keying
/// purposes: wire version, endpoint type names, rename rules in order,
/// and the equivalence constants (when generated). A `Lifting` holds
/// trait objects, so this digests the *recipe's observable identity*, not
/// the code; all in-tree search procedures derive their behavior from
/// exactly these names.
pub fn config_digest(l: &Lifting) -> TermDigest {
    let mut h = DigestBuilder::new();
    h.write_u64(WIRE_VERSION as u64);
    h.write_str(l.a_name.as_str());
    h.write_str(l.b_name.as_str());
    let rules = l.names.rules();
    h.write_u64(rules.len() as u64);
    for (from, to) in rules {
        h.write_str(from);
        h.write_str(to);
    }
    match &l.equivalence {
        Some(eqv) => {
            h.write_u64(1);
            h.write_str(eqv.f.as_str());
            h.write_str(eqv.g.as_str());
            h.write_str(eqv.section.as_str());
            h.write_str(eqv.retraction.as_str());
        }
        None => h.write_u64(0),
    }
    TermDigest(h.finish())
}

/// An open handle on one configuration's shard of the on-disk cache.
///
/// Immutable after opening (all I/O goes through `&self`), so it is
/// shared across wavefront workers behind an `Arc`.
#[derive(Debug)]
pub struct PersistCache {
    root: PathBuf,
    dir: PathBuf,
    /// Size budget for the whole cache root (all shards), in bytes;
    /// `None` = unbounded.
    max_bytes: Option<u64>,
}

/// How long an eviction lock may sit before another daemon steals it
/// (covers a daemon killed mid-eviction).
const EVICT_LOCK_STALE: Duration = Duration::from_secs(60);

/// Process-global memo of decoded cache frames, keyed by the frame's raw
/// bytes. `decode_decl` is a pure function of the bytes, so an entry can
/// never go stale — a rewritten file simply has different bytes and
/// misses. This is what keeps a warm session cheap: every run (and every
/// daemon session in this process) re-reads the same frames, but only the
/// first decode pays the term-interning cost.
static DECODED: std::sync::OnceLock<
    std::sync::Mutex<std::collections::HashMap<Vec<u8>, ConstDecl>>,
> = std::sync::OnceLock::new();

/// Entry cap for [`DECODED`]. Hitting it means the working set dwarfs
/// anything a session replays; dropping the whole memo and re-filling is
/// simpler than tracking recency and keeps the footprint bounded.
const DECODED_CAP: usize = 1024;

fn decode_decl_cached(bytes: &[u8]) -> Option<ConstDecl> {
    let memo = DECODED.get_or_init(Default::default);
    if let Ok(memo) = memo.lock() {
        if let Some(decl) = memo.get(bytes) {
            return Some(decl.clone());
        }
    }
    let decl = decode_decl(bytes).ok()?;
    if let Ok(mut memo) = memo.lock() {
        if memo.len() >= DECODED_CAP {
            memo.clear();
        }
        memo.insert(bytes.to_vec(), decl.clone());
    }
    Some(decl)
}

impl PersistCache {
    /// Opens (creating as needed) the shard of `root` belonging to this
    /// lifting configuration, unbounded.
    pub fn open(root: impl AsRef<Path>, lifting: &Lifting) -> std::io::Result<PersistCache> {
        PersistCache::open_bounded(root, lifting, None)
    }

    /// Opens the shard with a size budget over the whole cache root:
    /// after a store pushes the root's entries past `max_bytes`, the
    /// least-recently-used entries are evicted back under budget.
    pub fn open_bounded(
        root: impl AsRef<Path>,
        lifting: &Lifting,
        max_bytes: Option<u64>,
    ) -> std::io::Result<PersistCache> {
        let root = root.as_ref().to_path_buf();
        let dir = root
            .join(format!("v{WIRE_VERSION}"))
            .join(config_digest(lifting).to_string());
        fs::create_dir_all(&dir)?;
        Ok(PersistCache {
            root,
            dir,
            max_bytes,
        })
    }

    /// The shard directory (for diagnostics and tests).
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Looks up the repaired declaration persisted for `old`. Corrupt,
    /// truncated, or digest-mismatching entries are *evicted* and read as
    /// absent — the caller falls back to a fresh lift, whose store then
    /// re-publishes a good frame. Never an error.
    pub fn lookup(&self, old: &ConstDecl) -> Option<ConstDecl> {
        let path = self.entry_path(old);
        let bytes = fs::read(&path).ok()?;
        match decode_decl_cached(&bytes) {
            Some(decl) => {
                if self.max_bytes.is_some() {
                    // LRU touch: a hit refreshes the entry's mtime so
                    // eviction removes cold entries first. Best-effort.
                    if let Ok(f) = fs::OpenOptions::new().write(true).open(&path) {
                        let _ = f.set_times(fs::FileTimes::new().set_modified(SystemTime::now()));
                    }
                }
                Some(decl)
            }
            None => {
                let _ = fs::remove_file(&path);
                None
            }
        }
    }

    /// Persists `new` as the repair of `old`. Best-effort: I/O failures
    /// are swallowed (the cache is an accelerator, never a correctness
    /// dependency). The write is atomic — temp file, then rename — so a
    /// concurrent reader sees either nothing or a complete frame.
    pub fn store(&self, old: &ConstDecl, new: &ConstDecl) {
        self.store_with(old, new, false);
    }

    /// [`PersistCache::store`], with explicit overwrite control. The
    /// incremental layer passes `overwrite = true` for invalidated
    /// constants: their digest-unchanged entries may hold repairs
    /// computed against an upstream that has since changed.
    pub fn store_with(&self, old: &ConstDecl, new: &ConstDecl, overwrite: bool) {
        let path = self.entry_path(old);
        if !overwrite && path.exists() {
            return;
        }
        // The temp name must be unique per *store call*, not just per
        // process: two worker threads in one daemon storing the same
        // entry through a pid-only suffix would interleave their
        // write/rename/remove on a single tmp path — publishing a torn
        // frame or deleting a freshly renamed entry.
        static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
        let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
        let tmp = path.with_extension(format!("tmp{}.{seq}", std::process::id()));
        if fs::write(&tmp, encode_decl(new)).is_ok() && fs::rename(&tmp, &path).is_err() {
            let _ = fs::remove_file(&tmp);
        }
        self.evict_to_budget();
    }

    fn entry_path(&self, old: &ConstDecl) -> PathBuf {
        self.dir.join(format!("{}.bin", decl_digest(old)))
    }

    /// Every `.bin` entry under the cache root, across all versions and
    /// configuration shards, with size and modification time.
    fn entries(&self) -> Vec<(PathBuf, u64, SystemTime)> {
        let mut out = Vec::new();
        let Ok(versions) = fs::read_dir(&self.root) else {
            return out;
        };
        for v in versions.flatten() {
            let Ok(shards) = fs::read_dir(v.path()) else {
                continue;
            };
            for shard in shards.flatten() {
                let Ok(files) = fs::read_dir(shard.path()) else {
                    continue;
                };
                for f in files.flatten() {
                    let path = f.path();
                    if path.extension().is_none_or(|e| e != "bin") {
                        continue;
                    }
                    if let Ok(m) = f.metadata() {
                        let mtime = m.modified().unwrap_or(SystemTime::UNIX_EPOCH);
                        out.push((path, m.len(), mtime));
                    }
                }
            }
        }
        out
    }

    /// Takes the cross-daemon eviction lock, stealing it if its holder
    /// looks dead ([`EVICT_LOCK_STALE`]). Returns `None` when another
    /// live daemon holds it — the caller just skips this round; that
    /// daemon's eviction covers the same entries.
    fn try_lock_evict(&self) -> Option<PathBuf> {
        let lock = self.root.join(".evict.lock");
        let acquire = |lock: &Path| {
            fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(lock)
                .ok()
                .map(|mut f| {
                    let _ = write!(f, "{}", std::process::id());
                })
        };
        if acquire(&lock).is_some() {
            return Some(lock);
        }
        let stale = fs::metadata(&lock)
            .and_then(|m| m.modified())
            .ok()
            .and_then(|t| t.elapsed().ok())
            .is_some_and(|age| age > EVICT_LOCK_STALE);
        if !stale {
            return None;
        }
        let _ = fs::remove_file(&lock);
        acquire(&lock).map(|()| lock)
    }

    /// Brings the root back under the size budget by deleting the
    /// least-recently-used entries (oldest mtime first). No-op when
    /// unbounded, under budget, or when another daemon holds the
    /// eviction lock. Best-effort throughout: the cache is an
    /// accelerator, never a correctness dependency.
    fn evict_to_budget(&self) {
        let Some(max) = self.max_bytes else { return };
        let mut entries = self.entries();
        let total: u64 = entries.iter().map(|(_, len, _)| len).sum();
        if total <= max {
            return;
        }
        let Some(lock) = self.try_lock_evict() else {
            return;
        };
        // Re-scan under the lock: another daemon may have evicted while
        // we raced for it.
        entries = self.entries();
        let mut total: u64 = entries.iter().map(|(_, len, _)| len).sum();
        entries.sort_by_key(|(_, _, mtime)| *mtime);
        for (path, len, _) in entries {
            if total <= max {
                break;
            }
            if fs::remove_file(&path).is_ok() {
                total = total.saturating_sub(len);
            }
        }
        let _ = fs::remove_file(&lock);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pumpkin_kernel::term::Term;

    fn sample_lifting(env: &mut pumpkin_kernel::env::Env) -> Lifting {
        crate::search::swap::configure(
            env,
            &"Old.list".into(),
            &"New.list".into(),
            crate::config::NameMap::prefix("Old.", "New."),
        )
        .unwrap()
    }

    #[test]
    fn store_then_lookup_roundtrips() {
        let mut env = pumpkin_stdlib::std_env();
        let lifting = sample_lifting(&mut env);
        let root =
            std::env::temp_dir().join(format!("pumpkin-persist-test-{}", std::process::id()));
        let cache = PersistCache::open(&root, &lifting).unwrap();
        let old = env.const_decl(&"Old.rev".into()).unwrap().clone();
        let new = ConstDecl {
            name: "New.rev".into(),
            ty: Term::prop(),
            body: None,
            opaque: false,
        };
        assert!(cache.lookup(&old).is_none());
        cache.store(&old, &new);
        assert_eq!(cache.lookup(&old), Some(new));
        // A corrupt entry reads as absent.
        let path = cache.entry_path(&old);
        let mut bytes = fs::read(&path).unwrap();
        bytes[8] ^= 0xff;
        fs::write(&path, bytes).unwrap();
        assert!(cache.lookup(&old).is_none());
        let _ = fs::remove_dir_all(&root);
    }

    /// Regression test for the tmp-path collision: many threads storing
    /// the same entries into one shard concurrently must leave every
    /// entry complete. With a pid-only temp suffix the threads shared one
    /// tmp path, so an interleaved write/rename could publish a torn
    /// frame — which reads as absent forever after, because `store` sees
    /// the path exists and never rewrites it.
    #[test]
    fn concurrent_stores_into_a_shared_dir_publish_complete_entries() {
        let mut env = pumpkin_stdlib::std_env();
        let lifting = sample_lifting(&mut env);
        let root = std::env::temp_dir().join(format!(
            "pumpkin-persist-race-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&root);
        let cache = PersistCache::open(&root, &lifting).unwrap();
        let entries: Vec<(ConstDecl, ConstDecl)> = (0..64usize)
            .map(|i| {
                let old = ConstDecl {
                    name: format!("Old.c{i}").into(),
                    ty: Term::prop(),
                    body: None,
                    opaque: false,
                };
                let new = ConstDecl {
                    name: format!("New.c{i}").into(),
                    ty: Term::prop(),
                    body: Some(Term::rel(i)),
                    opaque: false,
                };
                (old, new)
            })
            .collect();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for (old, new) in &entries {
                        cache.store(old, new);
                    }
                });
            }
        });
        for (old, new) in &entries {
            assert_eq!(
                cache.lookup(old).as_ref(),
                Some(new),
                "entry for {} is missing or torn",
                old.name
            );
        }
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_entries_are_evicted_and_repairable_by_restore() {
        let mut env = pumpkin_stdlib::std_env();
        let lifting = sample_lifting(&mut env);
        let root = std::env::temp_dir().join(format!(
            "pumpkin-persist-corrupt-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&root);
        let cache = PersistCache::open(&root, &lifting).unwrap();
        let old = env.const_decl(&"Old.rev".into()).unwrap().clone();
        let new = ConstDecl {
            name: "New.rev".into(),
            ty: Term::prop(),
            body: None,
            opaque: false,
        };
        cache.store(&old, &new);
        let path = cache.entry_path(&old);
        fs::write(&path, b"garbage").unwrap();
        // The corrupt read is a miss that also deletes the entry...
        assert!(cache.lookup(&old).is_none());
        assert!(!path.exists(), "corrupt entry is evicted, not left to rot");
        // ...so the store path (which skips existing entries) re-publishes.
        cache.store(&old, &new);
        assert_eq!(cache.lookup(&old), Some(new));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn store_with_overwrite_replaces_an_existing_entry() {
        let mut env = pumpkin_stdlib::std_env();
        let lifting = sample_lifting(&mut env);
        let root = std::env::temp_dir().join(format!(
            "pumpkin-persist-overwrite-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&root);
        let cache = PersistCache::open(&root, &lifting).unwrap();
        let old = env.const_decl(&"Old.rev".into()).unwrap().clone();
        let v1 = ConstDecl {
            name: "New.rev".into(),
            ty: Term::prop(),
            body: None,
            opaque: false,
        };
        let v2 = ConstDecl {
            name: "New.rev".into(),
            ty: Term::prop(),
            body: Some(Term::rel(0)),
            opaque: false,
        };
        cache.store(&old, &v1);
        cache.store(&old, &v2);
        assert_eq!(
            cache.lookup(&old),
            Some(v1.clone()),
            "plain store never clobbers"
        );
        cache.store_with(&old, &v2, true);
        assert_eq!(cache.lookup(&old), Some(v2), "overwrite store replaces");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn size_budget_evicts_least_recently_used_entries() {
        let mut env = pumpkin_stdlib::std_env();
        let lifting = sample_lifting(&mut env);
        let root = std::env::temp_dir().join(format!(
            "pumpkin-persist-lru-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&root);
        let decl = |i: usize, prefix: &str| ConstDecl {
            name: format!("{prefix}.c{i}").into(),
            ty: Term::prop(),
            body: Some(Term::rel(i)),
            opaque: false,
        };
        // Measure one entry's on-disk size, then budget for exactly two.
        let probe = PersistCache::open(&root, &lifting).unwrap();
        probe.store(&decl(0, "Old"), &decl(0, "New"));
        let entry_len = fs::metadata(probe.entry_path(&decl(0, "Old")))
            .unwrap()
            .len();
        let _ = fs::remove_dir_all(&root);
        let cache =
            PersistCache::open_bounded(&root, &lifting, Some(2 * entry_len + entry_len / 2))
                .unwrap();
        for i in 0..4 {
            cache.store(&decl(i, "Old"), &decl(i, "New"));
            // Distinct mtimes so LRU order is unambiguous.
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        assert!(
            cache.lookup(&decl(0, "Old")).is_none(),
            "oldest entry is evicted"
        );
        assert_eq!(
            cache.lookup(&decl(3, "Old")),
            Some(decl(3, "New")),
            "newest entry survives"
        );
        let survivors = cache
            .entries()
            .iter()
            .filter(|(p, _, _)| p.extension().is_some_and(|e| e == "bin"))
            .count();
        assert!(
            survivors <= 2,
            "budget holds two entries, found {survivors}"
        );
        // The eviction lock never outlives the call.
        assert!(!root.join(".evict.lock").exists());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn config_digest_separates_recipes() {
        let mut env = pumpkin_stdlib::std_env();
        let a = sample_lifting(&mut env);
        let d1 = config_digest(&a);
        let mut b = sample_lifting(&mut env);
        b.names = crate::config::NameMap::prefix("Old.", "Other.");
        assert_ne!(d1, config_digest(&b));
        assert_eq!(d1, config_digest(&a));
    }
}
