//! Errors for the repair engine.

use std::fmt;

use pumpkin_kernel::error::KernelError;
use pumpkin_kernel::name::GlobalName;
use pumpkin_kernel::term::Term;

/// Errors produced while configuring or running a repair.
#[derive(Clone, Debug)]
pub enum RepairError {
    /// The kernel rejected a generated term — a bug in a configuration or a
    /// violation of the correctness criteria (paper Fig. 12).
    Kernel(KernelError),
    /// The surface language rejected an embedded source snippet.
    Lang(String),
    /// A search procedure could not discover a configuration.
    SearchFailed {
        from: GlobalName,
        to: GlobalName,
        reason: String,
    },
    /// A constructor mapping was invalid (wrong length, not a permutation,
    /// or type-incorrect).
    BadMapping(String),
    /// The requested lifting direction is not supported by this
    /// configuration's unification heuristics (paper §4.2.1: heuristics are
    /// incomplete).
    UnsupportedDirection(String),
    /// The termination guard rejected a self-referential lift
    /// (paper §4.4 "Termination & Intent").
    NonTerminating { constant: GlobalName },
    /// A subterm could not be unified with the configuration and no fallback
    /// applied.
    UnificationFailed { term: Term, reason: String },
    /// A constant that must exist (part of a configuration) is missing.
    MissingDependency(GlobalName),
    /// The repair was cancelled at a wave boundary — a deadline expired or
    /// a [`crate::schedule::CancelToken`] fired. Waves completed before the
    /// cancellation point remain installed in the environment.
    Cancelled { completed_waves: usize },
    /// The persistent lift cache directory could not be opened or written.
    PersistCache(String),
    /// A repaired constant (or one of its reachable dependencies) still
    /// mentions the source type — the repair is not source-free
    /// (paper §3.2: "the old version of the specification may be removed").
    SourceNotFree {
        /// The constant whose source-freedom was being checked.
        root: GlobalName,
        /// The reachable constant that still mentions the source type.
        constant: GlobalName,
        /// The residual source-type subterm, pretty-printed via `lang`.
        residual: String,
    },
    /// The automatic repair search ([`crate::auto`]) ran out of candidate
    /// configurations without the kernel accepting any repair. Carries the
    /// error class of the default (rank-0) candidate and, when the
    /// minimizer ran, the shrunk reproducer.
    AutoExhausted {
        /// Candidate configurations actually run through the oracle
        /// (skipped-by-cache candidates are not counted here).
        tried: usize,
        /// Error class of the default candidate's failure.
        class: ErrorClass,
        /// The minimized failing sub-module, when [`crate::minimize`] ran.
        reproducer: Option<Box<crate::minimize::Reproducer>>,
    },
}

/// A coarse, stable classification of [`RepairError`]s. The auto driver's
/// process-wide failure cache stores classes (not messages) and the
/// minimizer shrinks modules *preserving* the class — so the taxonomy must
/// be small and total.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ErrorClass {
    /// The kernel rejected a generated term (includes redeclarations).
    Kernel,
    /// The surface language rejected a source snippet.
    Lang,
    /// No configuration could be discovered or the mapping was invalid.
    Search,
    /// The configuration's heuristics could not handle a form.
    Unsupported,
    /// The termination guard tripped.
    NonTerminating,
    /// Unification with the configuration failed.
    Unification,
    /// A required global is missing.
    MissingDependency,
    /// A deadline or cancel token fired.
    Cancelled,
    /// The persistent cache layer failed.
    Cache,
    /// The repaired output still mentions the source type.
    SourceNotFree,
    /// The auto search itself was exhausted (nested exhaustion).
    Auto,
}

impl ErrorClass {
    /// Stable wire/trace name.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorClass::Kernel => "kernel",
            ErrorClass::Lang => "lang",
            ErrorClass::Search => "search",
            ErrorClass::Unsupported => "unsupported",
            ErrorClass::NonTerminating => "non_terminating",
            ErrorClass::Unification => "unification",
            ErrorClass::MissingDependency => "missing_dependency",
            ErrorClass::Cancelled => "cancelled",
            ErrorClass::Cache => "cache",
            ErrorClass::SourceNotFree => "source_not_free",
            ErrorClass::Auto => "auto",
        }
    }

    /// Parses a stable name back ([`ErrorClass::as_str`]'s inverse).
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "kernel" => ErrorClass::Kernel,
            "lang" => ErrorClass::Lang,
            "search" => ErrorClass::Search,
            "unsupported" => ErrorClass::Unsupported,
            "non_terminating" => ErrorClass::NonTerminating,
            "unification" => ErrorClass::Unification,
            "missing_dependency" => ErrorClass::MissingDependency,
            "cancelled" => ErrorClass::Cancelled,
            "cache" => ErrorClass::Cache,
            "source_not_free" => ErrorClass::SourceNotFree,
            "auto" => ErrorClass::Auto,
            _ => return None,
        })
    }
}

impl fmt::Display for ErrorClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl RepairError {
    /// This error's [`ErrorClass`].
    pub fn class(&self) -> ErrorClass {
        match self {
            RepairError::Kernel(_) => ErrorClass::Kernel,
            RepairError::Lang(_) => ErrorClass::Lang,
            RepairError::SearchFailed { .. } | RepairError::BadMapping(_) => ErrorClass::Search,
            RepairError::UnsupportedDirection(_) => ErrorClass::Unsupported,
            RepairError::NonTerminating { .. } => ErrorClass::NonTerminating,
            RepairError::UnificationFailed { .. } => ErrorClass::Unification,
            RepairError::MissingDependency(_) => ErrorClass::MissingDependency,
            RepairError::Cancelled { .. } => ErrorClass::Cancelled,
            RepairError::PersistCache(_) => ErrorClass::Cache,
            RepairError::SourceNotFree { .. } => ErrorClass::SourceNotFree,
            RepairError::AutoExhausted { .. } => ErrorClass::Auto,
        }
    }
}

impl fmt::Display for RepairError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepairError::Kernel(e) => write!(f, "kernel: {e}"),
            RepairError::Lang(e) => write!(f, "language: {e}"),
            RepairError::SearchFailed { from, to, reason } => {
                write!(
                    f,
                    "search for a configuration {from} ≃ {to} failed: {reason}"
                )
            }
            RepairError::BadMapping(m) => write!(f, "bad constructor mapping: {m}"),
            RepairError::UnsupportedDirection(m) => {
                write!(f, "unsupported lifting direction: {m}")
            }
            RepairError::NonTerminating { constant } => {
                write!(f, "termination guard tripped while lifting `{constant}`")
            }
            RepairError::UnificationFailed { term, reason } => {
                write!(
                    f,
                    "could not unify `{term}` with the configuration: {reason}"
                )
            }
            RepairError::MissingDependency(n) => {
                write!(f, "configuration depends on missing global `{n}`")
            }
            RepairError::Cancelled { completed_waves } => {
                write!(
                    f,
                    "repair cancelled at a wave boundary ({completed_waves} wave(s) completed)"
                )
            }
            RepairError::PersistCache(m) => write!(f, "persistent lift cache: {m}"),
            RepairError::SourceNotFree {
                root,
                constant,
                residual,
            } => {
                if root == constant {
                    write!(
                        f,
                        "`{root}` is not source-free: it still mentions the \
                         source type in `{residual}`"
                    )
                } else {
                    write!(
                        f,
                        "`{root}` is not source-free: its dependency \
                         `{constant}` still mentions the source type in \
                         `{residual}`"
                    )
                }
            }
            RepairError::AutoExhausted {
                tried,
                class,
                reproducer,
            } => {
                write!(
                    f,
                    "automatic repair search exhausted {tried} candidate(s); \
                     default configuration failed with class `{class}`"
                )?;
                if let Some(r) = reproducer {
                    write!(
                        f,
                        "; minimized reproducer: {} of {} constant(s) [{}]",
                        r.names.len(),
                        r.original,
                        r.names.join(", ")
                    )?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for RepairError {}

impl From<KernelError> for RepairError {
    fn from(e: KernelError) -> Self {
        RepairError::Kernel(e)
    }
}

impl From<pumpkin_lang::LangError> for RepairError {
    fn from(e: pumpkin_lang::LangError) -> Self {
        RepairError::Lang(e.to_string())
    }
}

/// The crate's result type.
pub type Result<T> = std::result::Result<T, RepairError>;
