//! Automatic repair search: a Houdini-style evaluate-fix-retry driver
//! ([`AutoDriver`], behind [`crate::Repairer::auto`]) that enumerates
//! ranked candidate configurations — constructor-mapping permutations in
//! [`crate::search::swap`]'s ranked order, eta/iota matching toggles,
//! smart eliminators on/off, cached-mapping reuse on/off — and runs each
//! through the kernel as the oracle until one repair fully checks.
//!
//! Known-dead candidates are remembered **process-wide** in a failure
//! cache keyed by `(configuration digest, module digest)`: both keys are
//! content-addressed ([`pumpkin_wire::DigestBuilder`] over the candidate's
//! full configuration and over the module source, work list, and the
//! reachable dependency closure's declaration digests), so a cache entry
//! can never go stale — any edit that could change the verdict changes the
//! key. Retries and concurrent sessions skip straight past dead
//! candidates.
//!
//! When *every* candidate fails, [`crate::minimize`] shrinks the module to
//! a minimal failing sub-module preserving the default candidate's error
//! class, and the reproducer rides on
//! [`crate::RepairError::AutoExhausted`].

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant};

use pumpkin_kernel::env::Env;
use pumpkin_kernel::name::GlobalName;
use pumpkin_kernel::term::{Term, TermData};
use pumpkin_trace::{Event, EventKind};
use pumpkin_wire::{decl_digest, AutoWire, DigestBuilder, ReproWire};

use crate::config::{Lifting, MatchedElim, MatchedProj, NameMap, SideMatch};
use crate::error::{ErrorClass, RepairError, Result};
use crate::lift::LiftState;
use crate::minimize::{minimize, Reproducer};
use crate::repair::RepairReport;
use crate::repairer::Repairer;
use crate::schedule::{CancelToken, ModuleDag};
use crate::search::swap;

/// Cap on enumerated constructor mappings per candidate search; ranking
/// still applies to the mappings found (see
/// [`swap::discover_mappings_bounded`]).
const MAPPING_CAP: usize = 64;

/// Knobs for one automatic search.
#[derive(Clone, Debug)]
pub struct AutoPolicy {
    /// Maximum candidates to consider (enumeration order); `None` = all.
    pub budget: Option<usize>,
    /// Probe the process-wide failure cache before running a candidate.
    /// Failures are *recorded* regardless, so a cache-off run still warms
    /// the cache for later runs.
    pub use_failure_cache: bool,
    /// Shrink the module to a minimal failing reproducer when every
    /// candidate fails.
    pub minimize: bool,
    /// Seed for the minimizer's replayable reduction order.
    pub seed: u64,
    /// Zero per-candidate costs in the report (for byte-stable replies).
    pub deterministic: bool,
}

impl Default for AutoPolicy {
    fn default() -> Self {
        AutoPolicy {
            budget: None,
            use_failure_cache: true,
            minimize: true,
            seed: 0,
            deterministic: false,
        }
    }
}

/// One candidate configuration: a constructor mapping index into the
/// ranked enumeration, plus the three engine toggles.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CandidateSpec {
    /// Index into [`swap::discover_mappings_bounded`]'s ranked order.
    pub mapping: usize,
    /// Eta/iota matching on (`false` disables `match_iota`/`match_proj`).
    pub eta: bool,
    /// Define the smart-eliminator combinators before loading the module.
    pub smart_elim: bool,
    /// Reuse the closed-subterm lift cache within the run.
    pub reuse_cache: bool,
}

impl CandidateSpec {
    /// Human-readable description, used in reports, traces, and summaries.
    pub fn describe(&self) -> String {
        let onoff = |b: bool| if b { "on" } else { "off" };
        format!(
            "mapping#{} eta={} smart_elim={} cache={}",
            self.mapping,
            onoff(self.eta),
            onoff(self.smart_elim),
            onoff(self.reuse_cache)
        )
    }

    /// Content-addressed digest of the full candidate configuration.
    fn digest(&self, a: &GlobalName, b: &GlobalName, names: &NameMap, perm: &[usize]) -> u64 {
        let mut d = DigestBuilder::new();
        d.write_str("auto-config/1");
        d.write_str(a.as_str());
        d.write_str(b.as_str());
        for (from, to) in names.rules() {
            d.write_str(from);
            d.write_str(to);
        }
        d.write_u64(perm.len() as u64);
        for &k in perm {
            d.write_u64(k as u64);
        }
        d.write_u64(u64::from(self.eta));
        d.write_u64(u64::from(self.smart_elim));
        d.write_u64(u64::from(self.reuse_cache));
        d.finish()
    }
}

/// The oracle's verdict on one candidate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The kernel accepted the candidate's repair in full.
    Accepted,
    /// The candidate was run and failed.
    Rejected,
    /// The process-wide failure cache already knew this candidate dead.
    SkippedCache,
}

impl Verdict {
    /// Stable wire/trace name.
    pub fn as_str(self) -> &'static str {
        match self {
            Verdict::Accepted => "accepted",
            Verdict::Rejected => "rejected",
            Verdict::SkippedCache => "skipped_cache",
        }
    }
}

/// One candidate's outcome row in the [`AutoReport`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CandidateOutcome {
    /// The candidate's description ([`CandidateSpec::describe`]).
    pub config: String,
    /// What the oracle said.
    pub verdict: Verdict,
    /// The failure's error class; `None` for accepted candidates.
    pub class: Option<ErrorClass>,
    /// Wall-clock cost of running this candidate (0 for cache skips and
    /// in deterministic mode).
    pub cost_ns: u64,
}

/// Structured accounting for one automatic search, threaded into
/// [`RepairReport::auto`] on success and returned alongside the error on
/// exhaustion (so services can report partial progress).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AutoReport {
    /// Description of the winning configuration, when one checked.
    pub winner: Option<String>,
    /// Candidates actually run through the oracle.
    pub tried: usize,
    /// Candidates skipped by the failure cache.
    pub skipped_cache: usize,
    /// Candidates the oracle rejected.
    pub rejected: usize,
    /// False when the loop stopped early on a deadline or cancellation.
    pub complete: bool,
    /// Per-candidate rows in enumeration order.
    pub candidates: Vec<CandidateOutcome>,
    /// The minimized failing sub-module, when the minimizer ran.
    pub reproducer: Option<Reproducer>,
}

impl AutoReport {
    /// One-line human summary.
    pub fn summary(&self) -> String {
        let mut s = match &self.winner {
            Some(w) => format!(
                "auto: accepted `{w}` ({} tried, {} cache-skipped, {} rejected)",
                self.tried, self.skipped_cache, self.rejected
            ),
            None => format!(
                "auto: exhausted ({} tried, {} cache-skipped, {} rejected{})",
                self.tried,
                self.skipped_cache,
                self.rejected,
                if self.complete { "" } else { "; interrupted" }
            ),
        };
        if let Some(r) = &self.reproducer {
            s.push_str(&format!(
                "; minimized to {} of {} constant(s)",
                r.names.len(),
                r.original
            ));
        }
        s
    }

    /// The search as `auto_candidate`/`auto_verdict` trace events. Events
    /// are derived from the recorded rows with zeroed timestamps (`dur_ns`
    /// carries the candidate cost), so the stream is identical whether the
    /// search succeeded or was exhausted.
    pub fn to_events(&self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.candidates.len() * 2);
        for (i, c) in self.candidates.iter().enumerate() {
            out.push(Event {
                t_ns: 0,
                dur_ns: 0,
                worker: 0,
                kind: EventKind::AutoCandidate {
                    index: i as u32,
                    config: c.config.as_str().into(),
                },
            });
            out.push(Event {
                t_ns: 0,
                dur_ns: c.cost_ns,
                worker: 0,
                kind: EventKind::AutoVerdict {
                    index: i as u32,
                    verdict: c.verdict.as_str().into(),
                    class: c.class.map_or("", ErrorClass::as_str).into(),
                },
            });
        }
        out
    }

    /// The versioned wire projection.
    pub fn to_wire(&self) -> AutoWire {
        AutoWire {
            winner: self.winner.clone(),
            tried: self.tried as u64,
            skipped_cache: self.skipped_cache as u64,
            rejected: self.rejected as u64,
            complete: self.complete,
            candidates: self
                .candidates
                .iter()
                .map(|c| {
                    (
                        c.config.clone(),
                        c.verdict.as_str().to_string(),
                        c.class.map_or(String::new(), |k| k.as_str().to_string()),
                        c.cost_ns,
                    )
                })
                .collect(),
            reproducer: self.reproducer.as_ref().map(|r| ReproWire {
                names: r.names.clone(),
                class: r.class.as_str().to_string(),
                seed: r.seed,
                original: r.original as u64,
                steps: r.steps,
            }),
        }
    }
}

/// The process-wide failure cache: `(config digest, module digest)` →
/// error class. Both keys are content-addressed, so entries never go
/// stale; the map only grows within a process (entries are a few words
/// each — candidate enumerations are small).
static FAILURES: OnceLock<Mutex<std::collections::HashMap<(u64, u64), ErrorClass>>> =
    OnceLock::new();

fn failures() -> &'static Mutex<std::collections::HashMap<(u64, u64), ErrorClass>> {
    FAILURES.get_or_init(Default::default)
}

fn failure_cache_get(config: u64, module: u64) -> Option<ErrorClass> {
    failures()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .get(&(config, module))
        .copied()
}

fn failure_cache_put(config: u64, module: u64, class: ErrorClass) {
    failures()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .insert((config, module), class);
}

/// Number of entries in the process-wide failure cache (observability and
/// tests; there is deliberately no way to clear it — keys are
/// content-addressed, so stale entries cannot exist).
pub fn failure_cache_len() -> usize {
    failures()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .len()
}

/// Content-addressed digest of the module under repair: the vernacular
/// source (if any), the sorted work list, and the declaration digests of
/// every constant reachable from the work list in `env` — so editing any
/// reachable dependency changes the key.
fn module_digest(env: &Env, source: Option<&str>, names: &[&str]) -> u64 {
    let mut d = DigestBuilder::new();
    d.write_str("auto-module/1");
    if let Some(s) = source {
        d.write_str(s);
    }
    let mut sorted: Vec<&str> = names.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    d.write_u64(sorted.len() as u64);
    for n in &sorted {
        d.write_str(n);
    }
    // BFS over constant references, digested in sorted order.
    let mut reachable: BTreeSet<GlobalName> = BTreeSet::new();
    let mut stack: Vec<GlobalName> = sorted.iter().map(|n| GlobalName::new(*n)).collect();
    while let Some(n) = stack.pop() {
        let Ok(decl) = env.const_decl(&n) else {
            continue;
        };
        if !reachable.insert(n) {
            continue;
        }
        let mut terms: Vec<&Term> = vec![&decl.ty];
        if let Some(b) = &decl.body {
            terms.push(b);
        }
        while let Some(t) = terms.pop() {
            match t.data() {
                TermData::Const(c) => {
                    if !reachable.contains(c) {
                        stack.push(c.clone());
                    }
                }
                TermData::Rel(_)
                | TermData::Sort(_)
                | TermData::Ind(_)
                | TermData::Construct(_, _) => {}
                TermData::App(h, args) => {
                    terms.push(h);
                    terms.extend(args);
                }
                TermData::Lambda(b, body) | TermData::Pi(b, body) => {
                    terms.push(&b.ty);
                    terms.push(body);
                }
                TermData::Let(b, v, body) => {
                    terms.push(&b.ty);
                    terms.push(v);
                    terms.push(body);
                }
                TermData::Elim(e) => {
                    terms.extend(&e.params);
                    terms.push(&e.motive);
                    terms.extend(&e.cases);
                    terms.push(&e.scrutinee);
                }
            }
        }
    }
    for n in &reachable {
        d.write_str(n.as_str());
        if let Ok(decl) = env.const_decl(n) {
            d.write_u64(decl_digest(decl).0);
        }
    }
    d.finish()
}

/// Wraps a side-matcher with eta/iota matching disabled: type,
/// constructor, and eliminator recognition pass through, while
/// `match_proj`/`match_iota` always decline (the paper's optional
/// unification rules; a no-op for plain swap configurations, load-bearing
/// for record/factoring ones).
struct EtaOff(Box<dyn SideMatch>);

impl SideMatch for EtaOff {
    fn match_type(&self, env: &Env, t: &Term) -> Option<Vec<Term>> {
        self.0.match_type(env, t)
    }

    fn match_constr(&self, env: &Env, t: &Term) -> Option<(usize, Vec<Term>)> {
        self.0.match_constr(env, t)
    }

    fn match_elim(&self, env: &Env, t: &Term) -> Option<MatchedElim> {
        self.0.match_elim(env, t)
    }

    fn match_proj(&self, _env: &Env, _t: &Term) -> Option<MatchedProj> {
        None
    }

    fn match_iota(&self, _env: &Env, _t: &Term) -> Option<(usize, Vec<Term>)> {
        None
    }
}

/// The ranked candidate enumeration: all eight toggle combinations on the
/// best-ranked mapping (defaults first), then the two most useful toggle
/// combinations on every lower-ranked mapping.
fn candidate_specs(mappings: usize, budget: Option<usize>) -> Vec<CandidateSpec> {
    const TOGGLES: [(bool, bool, bool); 8] = [
        // (eta, smart_elim, reuse_cache) — the default configuration first.
        (true, false, true),
        (true, true, true),
        (false, false, true),
        (false, true, true),
        (true, false, false),
        (true, true, false),
        (false, false, false),
        (false, true, false),
    ];
    let mut specs = Vec::new();
    for &(eta, smart_elim, reuse_cache) in &TOGGLES {
        specs.push(CandidateSpec {
            mapping: 0,
            eta,
            smart_elim,
            reuse_cache,
        });
    }
    for mapping in 1..mappings {
        for &(eta, smart_elim, reuse_cache) in &TOGGLES[..2] {
            specs.push(CandidateSpec {
                mapping,
                eta,
                smart_elim,
                reuse_cache,
            });
        }
    }
    if let Some(b) = budget {
        specs.truncate(b.max(1));
    }
    specs
}

/// The automatic repair search driver. Build with
/// [`crate::Repairer::auto`], configure like a [`Repairer`], then
/// [`AutoDriver::run`].
pub struct AutoDriver {
    policy: AutoPolicy,
    a: GlobalName,
    b: GlobalName,
    names: NameMap,
    source: Option<String>,
    jobs: usize,
    capture: bool,
    cancel: Option<CancelToken>,
    persist_dir: Option<PathBuf>,
    cache_max_bytes: Option<u64>,
}

impl AutoDriver {
    /// A driver with the default endpoints (`Old.list` ≃ `New.list`,
    /// prefix renaming `Old.` → `New.`) and a fresh candidate enumeration.
    pub fn new(policy: AutoPolicy) -> AutoDriver {
        AutoDriver {
            policy,
            a: GlobalName::new("Old.list"),
            b: GlobalName::new("New.list"),
            names: NameMap::prefix("Old.", "New."),
            source: None,
            jobs: 1,
            capture: false,
            cancel: None,
            persist_dir: None,
            cache_max_bytes: None,
        }
    }

    /// Sets the equivalence endpoints and the renaming policy.
    pub fn types(
        mut self,
        a: impl Into<GlobalName>,
        b: impl Into<GlobalName>,
        names: NameMap,
    ) -> Self {
        self.a = a.into();
        self.b = b.into();
        self.names = names;
        self
    }

    /// Vernacular source loaded into each candidate's trial environment
    /// before the repair runs. Constants it defines under a renaming
    /// rule's source prefix join the work list.
    pub fn source(mut self, src: impl Into<String>) -> Self {
        self.source = Some(src.into());
        self
    }

    /// Worker cap for each candidate's wavefront run.
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Captures trace events (the winning run's stream plus the
    /// `auto_candidate`/`auto_verdict` family) on the report.
    pub fn trace(mut self, capture: bool) -> Self {
        self.capture = capture;
        self
    }

    /// Wall-clock budget for the whole search: the candidate loop polls
    /// between candidates and each candidate's run stops at its next wave
    /// boundary; the report comes back partial (`complete == false`).
    pub fn deadline(mut self, budget: Duration) -> Self {
        self.cancel = Some(CancelToken::with_deadline(budget));
        self
    }

    /// Attaches an externally controlled cancel token (replaces any
    /// [`AutoDriver::deadline`] token).
    pub fn cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Consults/fills the persistent lift cache for each candidate run.
    pub fn persist_cache(mut self, dir: impl Into<PathBuf>) -> Self {
        self.persist_dir = Some(dir.into());
        self
    }

    /// Bounds the persistent cache (see [`Repairer::cache_max_bytes`]).
    pub fn cache_max_bytes(mut self, max: Option<u64>) -> Self {
        self.cache_max_bytes = max;
        self
    }

    /// Runs the search. On success the winning candidate's environment
    /// replaces `env` and the returned [`RepairReport`] carries the
    /// [`AutoReport`] in [`RepairReport::auto`]; on exhaustion `env` is
    /// untouched and the error is [`RepairError::AutoExhausted`] (with the
    /// minimized reproducer when the minimizer ran). The [`AutoReport`] is
    /// returned in both cases so services can surface partial progress.
    pub fn run(self, env: &mut Env, names: &[&str]) -> (AutoReport, Result<RepairReport>) {
        let mut auto = AutoReport {
            complete: true,
            ..AutoReport::default()
        };

        let (a_decl, b_decl) = match (env.inductive(&self.a), env.inductive(&self.b)) {
            (Ok(a), Ok(b)) => (a.clone(), b.clone()),
            (Err(e), _) | (_, Err(e)) => return (auto, Err(RepairError::Kernel(e))),
        };
        let mappings = swap::discover_mappings_bounded(&a_decl, &b_decl, MAPPING_CAP);
        if mappings.is_empty() {
            let err = RepairError::SearchFailed {
                from: self.a.clone(),
                to: self.b.clone(),
                reason: "no type-correct constructor mapping".into(),
            };
            return (auto, Err(err));
        }
        let specs = candidate_specs(mappings.len(), self.policy.budget);
        let module = module_digest(env, self.source.as_deref(), names);

        // Error class of the default (rank-0) candidate — what
        // `AutoExhausted` reports and the minimizer preserves.
        let mut default_class: Option<ErrorClass> = None;
        // Work list + dependency DAG recorded from the first candidate
        // whose module loaded; the minimizer replays this DAG, never
        // re-deriving edges.
        let mut recorded: Option<(Vec<String>, ModuleDag)> = None;

        for (i, spec) in specs.iter().enumerate() {
            if self.cancel.as_ref().is_some_and(CancelToken::cancelled) {
                auto.complete = false;
                break;
            }
            let config = spec.digest(&self.a, &self.b, &self.names, &mappings[spec.mapping]);
            let desc = spec.describe();
            if self.policy.use_failure_cache {
                if let Some(class) = failure_cache_get(config, module) {
                    auto.skipped_cache += 1;
                    if i == 0 {
                        default_class = Some(class);
                    }
                    auto.candidates.push(CandidateOutcome {
                        config: desc,
                        verdict: Verdict::SkippedCache,
                        class: Some(class),
                        cost_ns: 0,
                    });
                    continue;
                }
            }
            let start = Instant::now();
            let attempt =
                self.run_candidate(env, names, spec, &mappings, true, Some(&mut recorded));
            let cost_ns = if self.policy.deterministic {
                0
            } else {
                start.elapsed().as_nanos() as u64
            };
            auto.tried += 1;
            match attempt {
                Ok((trial, mut report)) => {
                    auto.winner = Some(desc.clone());
                    auto.candidates.push(CandidateOutcome {
                        config: desc,
                        verdict: Verdict::Accepted,
                        class: None,
                        cost_ns,
                    });
                    *env = trial;
                    if self.capture {
                        let mut events = auto.to_events();
                        events.append(&mut report.trace);
                        report.trace = events;
                    }
                    report.auto = Some(auto.clone());
                    return (auto, Ok(report));
                }
                Err(e) => {
                    let class = e.class();
                    auto.rejected += 1;
                    auto.candidates.push(CandidateOutcome {
                        config: desc,
                        verdict: Verdict::Rejected,
                        class: Some(class),
                        cost_ns,
                    });
                    if class == ErrorClass::Cancelled {
                        // Deadline fired mid-candidate: a cancellation is a
                        // property of the clock, not the candidate — don't
                        // poison the failure cache with it.
                        auto.complete = false;
                        break;
                    }
                    failure_cache_put(config, module, class);
                    if i == 0 {
                        default_class = Some(class);
                    }
                }
            }
        }

        // Exhausted (or interrupted). Shrink only full, class-attributed
        // failures: a partial sweep can't certify "fails under every
        // candidate".
        let class = default_class.unwrap_or(ErrorClass::Cancelled);
        if self.policy.minimize && auto.complete && default_class.is_some() {
            if let Some((work, dag)) = &recorded {
                if work.len() > 1 {
                    let refs: Vec<&str> = work.iter().map(String::as_str).collect();
                    let oracle = |subset: &[&str]| -> Option<ErrorClass> {
                        let mut first: Option<ErrorClass> = None;
                        for spec in &specs {
                            match self.run_candidate(env, subset, spec, &mappings, false, None) {
                                Ok(_) => return None,
                                Err(e) => first = first.or(Some(e.class())),
                            }
                        }
                        first
                    };
                    auto.reproducer = Some(minimize(&refs, dag, self.policy.seed, class, oracle));
                }
            }
        }
        let err = RepairError::AutoExhausted {
            tried: auto.tried,
            class,
            reproducer: auto.reproducer.clone().map(Box::new),
        };
        (auto, Err(err))
    }

    /// Runs one candidate against a throwaway clone of `env`: smart
    /// eliminators (if toggled), module source, configuration, lift state,
    /// then a full [`Repairer`] run with the kernel as oracle. Returns the
    /// trial environment (to install on success) and the run's report.
    /// With `extend` set, source constants under a renaming rule's source
    /// prefix join the work list; the minimizer's oracle passes exact
    /// subsets instead.
    fn run_candidate(
        &self,
        env: &Env,
        names: &[&str],
        spec: &CandidateSpec,
        mappings: &[Vec<usize>],
        extend: bool,
        recorded: Option<&mut Option<(Vec<String>, ModuleDag)>>,
    ) -> Result<(Env, RepairReport)> {
        let mut trial = env.clone();
        if spec.smart_elim {
            crate::smartelim::packed_list(&mut trial)?;
        }
        let mut work: Vec<String> = names.iter().map(|s| (*s).to_string()).collect();
        if let Some(src) = &self.source {
            pumpkin_lang::load_source(&mut trial, src)?;
            if extend {
                for n in source_constants(src) {
                    let from_prefixed = self
                        .names
                        .rules()
                        .iter()
                        .any(|(from, _)| n.starts_with(from.as_str()));
                    if from_prefixed && !work.iter().any(|w| w == &n) {
                        work.push(n);
                    }
                }
            }
        }
        if let Some(slot) = recorded {
            if slot.is_none() {
                let nodes: Vec<GlobalName> =
                    work.iter().map(|n| GlobalName::new(n.as_str())).collect();
                let dag = ModuleDag::build(&trial, &nodes);
                *slot = Some((work.clone(), dag));
            }
        }
        let lifting = swap::configure_with(
            &mut trial,
            &self.a,
            &self.b,
            &mappings[spec.mapping],
            self.names.clone(),
        )?;
        let lifting = if spec.eta {
            lifting
        } else {
            let Lifting {
                a_name,
                b_name,
                matcher,
                builder,
                names,
                equivalence,
            } = lifting;
            Lifting {
                a_name,
                b_name,
                matcher: Box::new(EtaOff(matcher)),
                builder,
                names,
                equivalence,
            }
        };
        let mut state = if spec.reuse_cache {
            LiftState::new()
        } else {
            LiftState::without_cache()
        };
        let mut repairer = Repairer::new(&lifting)
            .jobs(self.jobs)
            .trace(self.capture)
            .state(&mut state);
        if let Some(dir) = &self.persist_dir {
            repairer = repairer
                .persist_cache(dir)
                .cache_max_bytes(self.cache_max_bytes);
        }
        if let Some(tok) = &self.cancel {
            repairer = repairer.cancel(tok.clone());
        }
        let refs: Vec<&str> = work.iter().map(String::as_str).collect();
        let report = repairer.run(&mut trial, &refs)?;
        Ok((trial, report))
    }
}

/// Constant names (`Definition`/`Axiom`) declared by a vernacular source
/// snippet, in declaration order. Unparsable sources contribute nothing —
/// the per-candidate `load_source` reports the real error.
fn source_constants(src: &str) -> Vec<String> {
    let Ok(items) = pumpkin_lang::parse_items(src) else {
        return Vec::new();
    };
    items
        .into_iter()
        .filter_map(|i| match i {
            pumpkin_lang::ast::Item::Definition { name, .. }
            | pumpkin_lang::ast::Item::Axiom { name, .. } => Some(name),
            pumpkin_lang::ast::Item::Inductive { .. } => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pumpkin_stdlib as stdlib;

    #[test]
    fn default_candidate_wins_on_a_clean_module() {
        let mut env = stdlib::std_env();
        let (auto, result) =
            Repairer::auto(AutoPolicy::default()).run(&mut env, &["Old.rev", "Old.app"]);
        let report = result.unwrap();
        assert_eq!(
            auto.winner.as_deref(),
            Some("mapping#0 eta=on smart_elim=off cache=on")
        );
        assert_eq!(auto.tried, 1);
        assert_eq!(auto.rejected, 0);
        assert!(auto.complete);
        assert_eq!(report.auto, Some(auto));
        assert_eq!(report.renamed("Old.rev").unwrap().as_str(), "New.rev");
        assert!(env.contains("New.rev"));
    }

    #[test]
    fn smart_elim_candidate_rescues_a_module_the_default_rejects() {
        // The module references `packed_list`, which only exists once the
        // smart-eliminator candidate has defined the combinators — the
        // default candidate fails to load it (class `lang`).
        let src = "Definition Old.needs_packed : forall (T : Type 1), nat -> Type 1 := \
                   fun (T : Type 1) (n : nat) => packed_list T n.";
        let mut env = stdlib::std_env();
        let (auto, result) = Repairer::auto(AutoPolicy {
            use_failure_cache: false,
            minimize: false,
            ..AutoPolicy::default()
        })
        .source(src)
        .run(&mut env, &[]);
        let report = result.unwrap();
        assert_eq!(
            auto.winner.as_deref(),
            Some("mapping#0 eta=on smart_elim=on cache=on"),
            "{}",
            auto.summary()
        );
        assert_eq!(auto.tried, 2);
        assert_eq!(auto.rejected, 1);
        assert_eq!(auto.candidates[0].class, Some(ErrorClass::Lang));
        assert!(report.renamed("Old.needs_packed").is_some());
        assert!(env.contains("New.needs_packed"));
    }

    #[test]
    fn failure_cache_skips_known_dead_candidates_process_wide() {
        // A name collision is candidate-independent: every configuration
        // fails with a kernel redeclaration.
        let src = "Definition New.auto_cache_probe : nat := O.\n\
                   Definition Old.auto_cache_probe : forall (T : Type 1), Old.list T -> Old.list T := \
                   fun (T : Type 1) (l : Old.list T) => l.";
        let policy = AutoPolicy {
            minimize: false,
            deterministic: true,
            ..AutoPolicy::default()
        };
        let mut env = stdlib::std_env();
        let (cold, err) = Repairer::auto(policy.clone())
            .source(src)
            .run(&mut env, &[]);
        assert!(err.is_err());
        assert_eq!(cold.tried, 8, "{}", cold.summary());
        assert_eq!(cold.skipped_cache, 0);
        // Same module again, same process: every candidate skips.
        let mut env2 = stdlib::std_env();
        let (warm, err2) = Repairer::auto(policy).source(src).run(&mut env2, &[]);
        match err2 {
            Err(RepairError::AutoExhausted { tried, class, .. }) => {
                assert_eq!(tried, 0);
                assert_eq!(class, ErrorClass::Kernel);
            }
            other => panic!("expected AutoExhausted, got {other:?}"),
        }
        assert_eq!(warm.tried, 0);
        assert_eq!(warm.skipped_cache, 8);
        assert!(!env2.contains("New.auto_cache_probe_repaired"));
    }

    #[test]
    fn exhaustion_minimizes_to_the_colliding_constant() {
        // One poisoned constant among real ones: the minimizer must shrink
        // the work list to just the collision, preserving class `kernel`.
        let src = "Definition New.auto_min_clash : nat := O.\n\
                   Definition Old.auto_min_clash : forall (T : Type 1), Old.list T -> Old.list T := \
                   fun (T : Type 1) (l : Old.list T) => l.";
        let mut env = stdlib::std_env();
        let (auto, result) = Repairer::auto(AutoPolicy {
            use_failure_cache: false,
            seed: 5,
            ..AutoPolicy::default()
        })
        .source(src)
        .run(&mut env, &["Old.rev", "Old.app", "Old.length"]);
        let err = result.unwrap_err();
        let repro = auto.reproducer.as_ref().expect("minimizer ran");
        assert_eq!(repro.names, vec!["Old.auto_min_clash".to_string()]);
        assert_eq!(repro.class, ErrorClass::Kernel);
        assert_eq!(repro.original, 4);
        assert!(
            repro.names.len() * 4 <= repro.original,
            "reproducer must be ≤ 25% of the original"
        );
        match err {
            RepairError::AutoExhausted {
                class, reproducer, ..
            } => {
                assert_eq!(class, ErrorClass::Kernel);
                assert_eq!(reproducer.as_deref(), Some(repro));
            }
            other => panic!("expected AutoExhausted, got {other:?}"),
        }
        // The reproducer renders as standalone vernacular.
        let mut scratch = stdlib::std_env();
        pumpkin_lang::load_source(&mut scratch, src).unwrap();
        let pi = repro.to_pi(&scratch);
        assert!(pi.contains("Definition Old.auto_min_clash"));
        assert!(pi.contains("seed 5"));
    }

    #[test]
    fn deadline_yields_a_partial_incomplete_report() {
        let src = "Definition New.auto_deadline_clash : nat := O.\n\
                   Definition Old.auto_deadline_clash : forall (T : Type 1), Old.list T -> Old.list T := \
                   fun (T : Type 1) (l : Old.list T) => l.";
        let mut env = stdlib::std_env();
        let (auto, result) = Repairer::auto(AutoPolicy {
            use_failure_cache: false,
            minimize: false,
            ..AutoPolicy::default()
        })
        .source(src)
        .deadline(Duration::from_nanos(0))
        .run(&mut env, &[]);
        assert!(result.is_err());
        assert!(!auto.complete);
        assert_eq!(auto.winner, None);
    }

    #[test]
    fn deterministic_reports_zero_costs_and_trace_events_parse() {
        let src = "Definition New.auto_trace_clash : nat := O.\n\
                   Definition Old.auto_trace_clash : forall (T : Type 1), Old.list T -> Old.list T := \
                   fun (T : Type 1) (l : Old.list T) => l.";
        let mut env = stdlib::std_env();
        let (auto, _) = Repairer::auto(AutoPolicy {
            use_failure_cache: false,
            minimize: false,
            deterministic: true,
            ..AutoPolicy::default()
        })
        .source(src)
        .run(&mut env, &[]);
        assert!(auto.candidates.iter().all(|c| c.cost_ns == 0));
        for e in auto.to_events() {
            let line = e.to_json();
            let back = Event::from_json(&line).expect("auto events parse");
            assert_eq!(e, back, "round trip failed for {line}");
            assert!(!matches!(back.kind, EventKind::Unknown { .. }));
        }
    }

    #[test]
    fn budget_truncates_the_enumeration() {
        let specs = candidate_specs(3, None);
        assert_eq!(specs.len(), 8 + 2 * 2);
        assert_eq!(
            specs[0],
            CandidateSpec {
                mapping: 0,
                eta: true,
                smart_elim: false,
                reuse_cache: true
            },
            "the default configuration must come first"
        );
        assert_eq!(candidate_specs(3, Some(5)).len(), 5);
        assert_eq!(candidate_specs(3, Some(0)).len(), 1, "budget clamps to 1");
    }

    #[test]
    fn module_digest_tracks_reachable_dependency_edits() {
        let env = stdlib::std_env();
        let base = module_digest(&env, None, &["Old.rev"]);
        assert_eq!(base, module_digest(&env, None, &["Old.rev"]));
        assert_ne!(base, module_digest(&env, None, &["Old.app"]));
        assert_ne!(base, module_digest(&env, Some("(* x *)"), &["Old.rev"]));
        // Two constants with identical work-list names but different
        // reachable declarations must digest differently.
        let digest_src = "Definition Old.rev_digest_probe : nat := O.";
        let mut with_extra = stdlib::std_env();
        pumpkin_lang::load_source(&mut with_extra, digest_src).unwrap();
        assert_ne!(
            module_digest(&with_extra, None, &["Old.rev_digest_probe"]),
            module_digest(&with_extra, None, &["Old.rev"]),
        );
    }
}
