//! Manual configuration (the paper's `Configure` command, §3.3 right
//! workflow) for the unary → binary naturals case study (§6.3, `nonorn.v`).
//!
//! The configuration is supplied by hand rather than discovered:
//!
//! * `DepConstr(0/1, N)` are `N0` and `N.succ`;
//! * `DepElim(N)` is `N.peano_rect`;
//! * `Iota(1, N)` rewrites along `N.peano_rect_succ` — the propositional
//!   ι needed because `N`'s inductive structure differs from `nat`'s
//!   (Magaud & Bertot's observation, encoded as a configuration);
//! * `Iota(1, nat)` is the identity, since ι over `nat` is definitional.
//!
//! Proofs that rely on definitional ι over `nat` must first be *expanded*
//! to apply `nat.iota_succ` explicitly (the paper's "manual expansion step,
//! formulaic but tricky to write", §6.3.2); [`ADD_N_SM_EXPANDED_SRC`]
//! contains the expanded `add_n_Sm`.

use pumpkin_kernel::env::Env;
use pumpkin_kernel::name::GlobalName;
use pumpkin_kernel::term::{Term, TermData};
use pumpkin_lang::load_source;

use crate::config::{EquivalenceNames, Lifting, MatchedElim, NameMap, SideBuild, SideMatch};
use crate::error::{RepairError, Result};

/// The explicit configuration terms for both sides.
pub const CONFIG_SRC: &str = r#"
Definition nat.dep_elim : forall (P : nat -> Type 1),
    P O -> (forall (m : nat), P m -> P (S m)) -> forall (n : nat), P n :=
  fun (P : nat -> Type 1) (p0 : P O)
      (pS : forall (m : nat), P m -> P (S m)) (n : nat) =>
    elim n : nat return (fun (x : nat) => P x) with
    | p0
    | fun (m : nat) (ih : P m) => pS m ih
    end.

(* Iota(1, nat): definitional, so the identity. *)
Definition nat.iota_succ : forall (P : nat -> Type 1) (p0 : P O)
    (pS : forall (m : nat), P m -> P (S m)) (n : nat)
    (Q : P (S n) -> Type 1),
    Q (pS n (nat.dep_elim P p0 pS n)) -> Q (nat.dep_elim P p0 pS (S n)) :=
  fun (P : nat -> Type 1) (p0 : P O)
      (pS : forall (m : nat), P m -> P (S m)) (n : nat)
      (Q : P (S n) -> Type 1)
      (H : Q (pS n (nat.dep_elim P p0 pS n))) => H.

(* Iota(1, N): propositional — a rewrite along N.peano_rect_succ
   (paper section 6.3.1's iota_1). *)
Definition N.iota_succ : forall (P : N -> Type 1) (p0 : P N0)
    (pS : forall (m : N), P m -> P (N.succ m)) (n : N)
    (Q : P (N.succ n) -> Type 1),
    Q (pS n (N.peano_rect P p0 pS n)) -> Q (N.peano_rect P p0 pS (N.succ n)) :=
  fun (P : N -> Type 1) (p0 : P N0)
      (pS : forall (m : N), P m -> P (N.succ m)) (n : N)
      (Q : P (N.succ n) -> Type 1)
      (H : Q (pS n (N.peano_rect P p0 pS n))) =>
    eq_rect (P (N.succ n))
      (pS n (N.peano_rect P p0 pS n))
      Q
      H
      (N.peano_rect P p0 pS (N.succ n))
      (eq_sym (P (N.succ n))
        (N.peano_rect P p0 pS (N.succ n))
        (pS n (N.peano_rect P p0 pS n))
        (N.peano_rect_succ P p0 pS n)).
"#;

/// `add_n_Sm` with ι over `nat` made explicit — the manual expansion the
/// §6.3 case study requires before `Repair` can port it to `N`.
pub const ADD_N_SM_EXPANDED_SRC: &str = r#"
Definition add_n_Sm_expanded : forall (n m : nat),
    eq nat (S (add n m)) (add n (S m)) :=
  fun (n m : nat) =>
    elim n : nat
      return (fun (x : nat) => eq nat (S (add x m)) (add x (S m)))
    with
    | eq_refl nat (S m)
    | fun (p : nat) (ih : eq nat (S (add p m)) (add p (S m))) =>
        nat.iota_succ (fun (x : nat) => nat) m
          (fun (q : nat) (ih2 : nat) => S ih2) p
          (fun (z : nat) => eq nat (S z) (add (S p) (S m)))
          (nat.iota_succ (fun (x : nat) => nat) (S m)
            (fun (q : nat) (ih2 : nat) => S ih2) p
            (fun (z : nat) => eq nat (S (S (add p m))) z)
            (f_equal nat nat S (S (add p m)) (add p (S m)) ih))
    end.
"#;

struct NatMatch;

impl SideMatch for NatMatch {
    fn match_type(&self, _env: &Env, t: &Term) -> Option<Vec<Term>> {
        let (name, args) = t.as_ind_app()?;
        (name.as_str() == "nat" && args.is_empty()).then(Vec::new)
    }

    fn match_constr(&self, _env: &Env, t: &Term) -> Option<(usize, Vec<Term>)> {
        let (name, j, args) = t.as_construct_app()?;
        (name.as_str() == "nat").then(|| (j, args.to_vec()))
    }

    fn match_elim(&self, _env: &Env, t: &Term) -> Option<MatchedElim> {
        match t.data() {
            TermData::Elim(e) if e.ind.as_str() == "nat" => Some(MatchedElim {
                type_args: Vec::new(),
                motive: e.motive.clone(),
                cases: e.cases.clone(),
                scrutinee: e.scrutinee.clone(),
            }),
            _ => {
                // Also recognize the named dependent eliminator, fully
                // applied: nat.dep_elim P p0 pS n.
                let (c, args) = t.as_const_app()?;
                (c.as_str() == "nat.dep_elim" && args.len() == 4).then(|| MatchedElim {
                    type_args: Vec::new(),
                    motive: args[0].clone(),
                    cases: vec![args[1].clone(), args[2].clone()],
                    scrutinee: args[3].clone(),
                })
            }
        }
    }

    fn match_iota(&self, _env: &Env, t: &Term) -> Option<(usize, Vec<Term>)> {
        let (c, args) = t.as_const_app()?;
        (c.as_str() == "nat.iota_succ").then(|| (1, args.to_vec()))
    }
}

struct BinBuild;

impl SideBuild for BinBuild {
    fn build_type(&self, _env: &Env, _args: Vec<Term>) -> Result<Term> {
        Ok(Term::ind("N"))
    }

    fn build_constr(&self, _env: &Env, j: usize, args: Vec<Term>) -> Result<Term> {
        match j {
            0 => Ok(Term::construct("N", 0)),
            1 => Ok(Term::app(Term::const_("N.succ"), args)),
            _ => Err(RepairError::BadMapping(format!(
                "nat has no constructor #{j}"
            ))),
        }
    }

    fn build_elim(&self, _env: &Env, me: MatchedElim) -> Result<Term> {
        let mut args = vec![me.motive];
        args.extend(me.cases);
        args.push(me.scrutinee);
        Ok(Term::app(Term::const_("N.peano_rect"), args))
    }

    fn build_iota(&self, _env: &Env, j: usize, args: Vec<Term>) -> Result<Term> {
        if j != 1 {
            return Err(RepairError::BadMapping(format!(
                "only the successor case has a nontrivial Iota, got #{j}"
            )));
        }
        Ok(Term::app(Term::const_("N.iota_succ"), args))
    }
}

/// Builds the manual nat → N configuration, loading the explicit `Iota`
/// terms and reusing the equivalence proofs from the standard library
/// (`N.of_nat` / `N.to_nat` with section and retraction).
///
/// # Errors
///
/// Fails if the binary-naturals module is missing or a configuration term
/// fails to check.
pub fn configure_nat_to_bin(env: &mut Env, names: NameMap) -> Result<Lifting> {
    for dep in ["N.peano_rect", "N.peano_rect_succ", "N.of_to_section"] {
        if !env.contains(dep) {
            return Err(RepairError::MissingDependency(GlobalName::new(dep)));
        }
    }
    if !env.contains("N.iota_succ") {
        load_source(env, CONFIG_SRC)?;
    }
    Ok(Lifting {
        a_name: "nat".into(),
        b_name: "N".into(),
        matcher: Box::new(NatMatch),
        builder: Box::new(BinBuild),
        names,
        equivalence: Some(EquivalenceNames {
            f: "N.of_nat".into(),
            g: "N.to_nat".into(),
            section: "N.of_to_section".into(),
            retraction: "N.to_of_retraction".into(),
        }),
    })
}

/// Loads the manually ι-expanded `add_n_Sm` (idempotent).
///
/// # Errors
///
/// Fails if the expansion does not type check (it relies on the definitional
/// ι of `nat`).
pub fn load_expanded_add_n_sm(env: &mut Env) -> Result<()> {
    if !env.contains("add_n_Sm_expanded") {
        load_source(env, ADD_N_SM_EXPANDED_SRC)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lift::LiftState;
    use crate::repair::check_source_free;
    use crate::repairer::Repairer;
    use pumpkin_kernel::reduce::normalize;
    use pumpkin_stdlib as stdlib;
    use pumpkin_stdlib::bin::{n_lit, n_value};
    use pumpkin_stdlib::nat::nat_lit;

    fn setup() -> (Env, Lifting) {
        let mut env = stdlib::std_env();
        let names = NameMap::prefix("add_n_Sm_expanded", "slow_add_n_Sm")
            .with_rule("add", "slow_add")
            .with_rule("", "Bin.");
        let l = configure_nat_to_bin(&mut env, names).unwrap();
        (env, l)
    }

    #[test]
    fn config_loads_and_iota_checks() {
        let (env, l) = setup();
        assert!(env.contains("N.iota_succ"));
        assert!(env.contains("nat.iota_succ"));
        assert_eq!(l.b_name.as_str(), "N");
    }

    #[test]
    fn repair_add_gives_slow_binary_addition() {
        let (mut env, l) = setup();
        let mut st = LiftState::new();
        let new = Repairer::new(&l)
            .state(&mut st)
            .run_one(&mut env, &"add".into())
            .unwrap();
        assert_eq!(new.as_str(), "slow_add");
        check_source_free(&env, &l, &new).unwrap();
        // slow_add computes the same sums as fast N.add.
        for (a, b) in [(0u64, 0u64), (1, 2), (9, 14), (31, 33)] {
            let slow = Term::app(Term::const_("slow_add"), [n_lit(a), n_lit(b)]);
            assert_eq!(n_value(&normalize(&env, &slow)), Some(a + b), "{a}+{b}");
        }
    }

    #[test]
    fn expanded_proof_typechecks_over_nat() {
        let (mut env, _) = setup();
        load_expanded_add_n_sm(&mut env).unwrap();
        // Behaves like the original lemma.
        let inst = Term::app(Term::const_("add_n_Sm_expanded"), [nat_lit(2), nat_lit(3)]);
        assert!(pumpkin_kernel::typecheck::infer_closed(&env, &inst).is_ok());
    }

    #[test]
    fn repair_expanded_proof_to_binary() {
        let (mut env, l) = setup();
        load_expanded_add_n_sm(&mut env).unwrap();
        let mut st = LiftState::new();
        let new = Repairer::new(&l)
            .state(&mut st)
            .run_one(&mut env, &"add_n_Sm_expanded".into())
            .unwrap();
        assert_eq!(new.as_str(), "slow_add_n_Sm");
        check_source_free(&env, &l, &new).unwrap();
        // The ported statement: ∀ n m, N.succ (slow_add n m) = slow_add n (N.succ m).
        let ty = env.const_decl(&new).unwrap().ty.clone();
        assert!(ty.mentions_global(&"slow_add".into()));
        assert!(ty.mentions_global(&"N.succ".into()));
    }
}
