//! Benchmark support library for pumpkin-pi-rs.
