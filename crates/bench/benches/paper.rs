//! The paper's evaluation timings (§6), one Criterion group per
//! experiment. The paper reports wall-clock budgets rather than tables of
//! numbers; EXPERIMENTS.md records paper-vs-measured for each entry:
//!
//! * `swap_list_module`   — §2/§6.1 `Swap.v`: whole list module (< 90 s).
//! * `replica_variant/*`  — §6.1: each REPLICA variant (< 5 s each).
//! * `enum_30_configure`  — §6.1.3: 30-constructor Enum permutation.
//! * `ornament_zip`       — §6.2: zip development to Σ-packed vectors.
//! * `binary_nat`         — §6.3 `nonorn.v` (< 1 s).
//! * `galois_round_trip`  — §6.4 (≤ 10 s interactive budget).
//! * `decompile_rev_app_distr` — §5: decompile + validate.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pumpkin_pi::case_studies;
use pumpkin_pi::pumpkin_core::{self, NameMap};
use pumpkin_pi::pumpkin_stdlib as stdlib;
use pumpkin_pi::pumpkin_tactics;

fn bench_swap_module(c: &mut Criterion) {
    let base = stdlib::std_env();
    c.bench_function("swap_list_module", |b| {
        b.iter_batched(
            || base.clone(),
            |mut env| case_studies::swap_list_module(&mut env).unwrap(),
            BatchSize::SmallInput,
        )
    });
}

fn bench_replica_variants(c: &mut Criterion) {
    let mut base = stdlib::std_env();
    let variants = case_studies::declare_replica_variants(&mut base).unwrap();
    let mut group = c.benchmark_group("replica_variant");
    group.bench_function("swap_int_eq", |b| {
        b.iter_batched(
            || base.clone(),
            |mut env| case_studies::replica_variant(&mut env, "New.Term", "New.").unwrap(),
            BatchSize::SmallInput,
        )
    });
    for (ty, prefix) in variants {
        let label = ty.trim_end_matches(".Term").to_lowercase();
        group.bench_function(&label, |b| {
            b.iter_batched(
                || base.clone(),
                |mut env| case_studies::replica_variant(&mut env, &ty, &prefix).unwrap(),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_enum_30(c: &mut Criterion) {
    let mut base = stdlib::std_env();
    base.declare_inductive(stdlib::replica::enum_decl("Enum", 30))
        .unwrap();
    base.declare_inductive(stdlib::replica::enum_decl("Enum2", 30))
        .unwrap();
    let perm: Vec<usize> = (0..30).map(|i| (i + 7) % 30).collect();
    c.bench_function("enum_30_configure", |b| {
        b.iter_batched(
            || base.clone(),
            |mut env| {
                pumpkin_core::search::swap::configure_with(
                    &mut env,
                    &"Enum".into(),
                    &"Enum2".into(),
                    &perm,
                    NameMap::prefix("Enum.", "Enum2."),
                )
                .unwrap()
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_ornament(c: &mut Criterion) {
    let base = stdlib::std_env();
    c.bench_function("ornament_zip", |b| {
        b.iter_batched(
            || base.clone(),
            |mut env| case_studies::ornament_zip(&mut env).unwrap(),
            BatchSize::SmallInput,
        )
    });
}

fn bench_binary(c: &mut Criterion) {
    let base = stdlib::std_env();
    c.bench_function("binary_nat", |b| {
        b.iter_batched(
            || base.clone(),
            |mut env| case_studies::binary_nat(&mut env).unwrap(),
            BatchSize::SmallInput,
        )
    });
}

fn bench_galois(c: &mut Criterion) {
    let base = stdlib::std_env();
    c.bench_function("galois_round_trip", |b| {
        b.iter_batched(
            || base.clone(),
            |mut env| case_studies::galois_round_trip(&mut env).unwrap(),
            BatchSize::SmallInput,
        )
    });
}

fn bench_decompile(c: &mut Criterion) {
    let mut env = stdlib::std_env();
    case_studies::swap_list_module(&mut env).unwrap();
    c.bench_function("decompile_rev_app_distr", |b| {
        b.iter(|| {
            let (goal, raw) =
                pumpkin_tactics::decompile_constant(&env, "New.rev_app_distr").unwrap();
            let script = pumpkin_tactics::second_pass(&raw);
            pumpkin_tactics::prove(&env, &goal, &script).unwrap()
        })
    });
}

fn config() -> Criterion {
    Criterion::default().sample_size(10)
}

criterion_group! {
    name = paper;
    config = config();
    targets = bench_swap_module, bench_replica_variants, bench_enum_30,
              bench_ornament, bench_binary, bench_galois, bench_decompile
}
criterion_main!(paper);
