//! The paper's evaluation timings (§6), one bench group per experiment.
//! The paper reports wall-clock budgets rather than tables of numbers;
//! EXPERIMENTS.md records paper-vs-measured for each entry:
//!
//! * `swap_list_module`   — §2/§6.1 `Swap.v`: whole list module (< 90 s).
//! * `replica_variant/*`  — §6.1: each REPLICA variant (< 5 s each).
//! * `enum_30_configure`  — §6.1.3: 30-constructor Enum permutation.
//! * `ornament_zip`       — §6.2: zip development to Σ-packed vectors.
//! * `binary_nat`         — §6.3 `nonorn.v` (< 1 s).
//! * `galois_round_trip`  — §6.4 (≤ 10 s interactive budget).
//! * `decompile_rev_app_distr` — §5: decompile + validate.

use pumpkin_pi::case_studies;
use pumpkin_pi::pumpkin_core::{self, NameMap};
use pumpkin_pi::pumpkin_stdlib as stdlib;
use pumpkin_pi::pumpkin_tactics;
use pumpkin_testkit::Bench;

fn bench_swap_module(b: &mut Bench) {
    let base = stdlib::std_env();
    b.bench(
        "swap_list_module",
        || base.clone(),
        |mut env| {
            case_studies::swap_list_module(&mut env).unwrap();
            env
        },
    );
}

fn bench_replica_variants(b: &mut Bench) {
    let mut base = stdlib::std_env();
    let variants = case_studies::declare_replica_variants(&mut base).unwrap();
    b.bench(
        "replica_variant/swap_int_eq",
        || base.clone(),
        |mut env| {
            case_studies::replica_variant(&mut env, "New.Term", "New.").unwrap();
            env
        },
    );
    for (ty, prefix) in variants {
        let label = ty.trim_end_matches(".Term").to_lowercase();
        b.bench(
            &format!("replica_variant/{label}"),
            || base.clone(),
            |mut env| {
                case_studies::replica_variant(&mut env, &ty, &prefix).unwrap();
                env
            },
        );
    }
}

fn bench_enum_30(b: &mut Bench) {
    let mut base = stdlib::std_env();
    base.declare_inductive(stdlib::replica::enum_decl("Enum", 30))
        .unwrap();
    base.declare_inductive(stdlib::replica::enum_decl("Enum2", 30))
        .unwrap();
    let perm: Vec<usize> = (0..30).map(|i| (i + 7) % 30).collect();
    b.bench(
        "enum_30_configure",
        || base.clone(),
        |mut env| {
            pumpkin_core::search::swap::configure_with(
                &mut env,
                &"Enum".into(),
                &"Enum2".into(),
                &perm,
                NameMap::prefix("Enum.", "Enum2."),
            )
            .unwrap()
        },
    );
}

fn bench_ornament(b: &mut Bench) {
    let base = stdlib::std_env();
    b.bench(
        "ornament_zip",
        || base.clone(),
        |mut env| {
            case_studies::ornament_zip(&mut env).unwrap();
            env
        },
    );
}

fn bench_binary(b: &mut Bench) {
    let base = stdlib::std_env();
    b.bench(
        "binary_nat",
        || base.clone(),
        |mut env| {
            case_studies::binary_nat(&mut env).unwrap();
            env
        },
    );
}

fn bench_galois(b: &mut Bench) {
    let base = stdlib::std_env();
    b.bench(
        "galois_round_trip",
        || base.clone(),
        |mut env| {
            case_studies::galois_round_trip(&mut env).unwrap();
            env
        },
    );
}

fn bench_decompile(b: &mut Bench) {
    let mut env = stdlib::std_env();
    case_studies::swap_list_module(&mut env).unwrap();
    b.bench_fn("decompile_rev_app_distr", || {
        let (goal, raw) = pumpkin_tactics::decompile_constant(&env, "New.rev_app_distr").unwrap();
        let script = pumpkin_tactics::second_pass(&raw);
        pumpkin_tactics::prove(&env, &goal, &script).unwrap()
    });
}

fn main() {
    let mut b = Bench::from_args();
    bench_swap_module(&mut b);
    bench_replica_variants(&mut b);
    bench_enum_30(&mut b);
    bench_ornament(&mut b);
    bench_binary(&mut b);
    bench_galois(&mut b);
    bench_decompile(&mut b);
    b.finish();
}
