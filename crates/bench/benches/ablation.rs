//! Ablation and scaling benches for the design choices DESIGN.md calls
//! out:
//!
//! * `cache/{on,off}` — the §4.4 "aggressive caching" of intermediate
//!   subterm liftings (added for the industrial proof engineer's ten-second
//!   budget);
//! * `scaling/enum_N` — repair latency as the number of constructors grows
//!   (the §6.1.3 Enum stress-test, parameterized);
//! * `scaling/term_size_N` — lifting latency as the proof term grows
//!   (repairing `app_assoc`-style lemmas over ever larger literal lists).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pumpkin_pi::case_studies;
use pumpkin_pi::pumpkin_core::{self, LiftState, NameMap};
use pumpkin_pi::pumpkin_kernel::env::Env;
use pumpkin_pi::pumpkin_kernel::term::{ElimData, Term};
use pumpkin_pi::pumpkin_stdlib as stdlib;
use stdlib::nat::nat_lit;

fn bench_cache_ablation(c: &mut Criterion) {
    let base = stdlib::std_env();
    let mut group = c.benchmark_group("cache");
    for (label, cached) in [("on", true), ("off", false)] {
        group.bench_function(label, |b| {
            b.iter_batched(
                || base.clone(),
                |mut env| {
                    let lifting = pumpkin_core::search::swap::configure(
                        &mut env,
                        &"Old.Term".into(),
                        &"New.Term".into(),
                        NameMap::prefix("Old.", "New."),
                    )
                    .unwrap();
                    let mut st = if cached {
                        LiftState::new()
                    } else {
                        LiftState::without_cache()
                    };
                    pumpkin_core::repair_module(
                        &mut env,
                        &lifting,
                        &mut st,
                        case_studies::REPLICA_CONSTANTS,
                    )
                    .unwrap()
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

/// Builds an environment with two n-constructor enums and a function
/// `enumf : EnumA → nat` to repair across a rotation.
fn enum_env(n: usize) -> (Env, Vec<usize>) {
    let mut env = stdlib::std_env();
    env.declare_inductive(stdlib::replica::enum_decl("EnumA", n))
        .unwrap();
    env.declare_inductive(stdlib::replica::enum_decl("EnumB", n))
        .unwrap();
    let body = Term::lambda(
        "e",
        Term::ind("EnumA"),
        Term::elim(ElimData {
            ind: "EnumA".into(),
            params: vec![],
            motive: Term::lambda("x", Term::ind("EnumA"), Term::ind("nat")),
            cases: (0..n).map(|j| nat_lit(j as u64)).collect(),
            scrutinee: Term::rel(0),
        }),
    );
    env.define(
        "EnumA.f",
        Term::arrow(Term::ind("EnumA"), Term::ind("nat")),
        body,
    )
    .unwrap();
    let perm: Vec<usize> = (0..n).map(|i| (i + 1) % n).collect();
    (env, perm)
}

fn bench_enum_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_enum");
    for n in [5usize, 10, 20, 30] {
        let (base, perm) = enum_env(n);
        group.bench_function(format!("enum_{n}"), |b| {
            b.iter_batched(
                || base.clone(),
                |mut env| {
                    let lifting = pumpkin_core::search::swap::configure_with(
                        &mut env,
                        &"EnumA".into(),
                        &"EnumB".into(),
                        &perm,
                        NameMap::prefix("EnumA.", "EnumB."),
                    )
                    .unwrap();
                    let mut st = LiftState::new();
                    pumpkin_core::repair(&mut env, &lifting, &mut st, &"EnumA.f".into()).unwrap()
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

/// Builds an environment with a lemma instantiating `Old.app_assoc` on
/// literal lists of length `n` (a proof term that grows linearly with `n`).
fn term_size_env(n: usize) -> Env {
    let mut env = stdlib::std_env();
    let elems: Vec<Term> = (0..n as u64).map(nat_lit).collect();
    let l = stdlib::list::list_lit("Old.list", Term::ind("nat"), &elems);
    let body = Term::app(
        Term::const_("Old.app_assoc"),
        [Term::ind("nat"), l.clone(), l.clone(), l.clone()],
    );
    let app = |x: Term, y: Term| {
        Term::app(Term::const_("Old.app"), [Term::ind("nat"), x, y])
    };
    let ty = Term::app(
        Term::ind("eq"),
        [
            Term::app(Term::ind("Old.list"), [Term::ind("nat")]),
            app(l.clone(), app(l.clone(), l.clone())),
            app(app(l.clone(), l.clone()), l),
        ],
    );
    env.define("Old.assoc_inst", ty, body).unwrap();
    env
}

fn bench_term_size_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_term_size");
    for n in [4usize, 16, 64] {
        let base = term_size_env(n);
        group.bench_function(format!("list_len_{n}"), |b| {
            b.iter_batched(
                || base.clone(),
                |mut env| {
                    let lifting = pumpkin_core::search::swap::configure(
                        &mut env,
                        &"Old.list".into(),
                        &"New.list".into(),
                        NameMap::prefix("Old.", "New."),
                    )
                    .unwrap();
                    let mut st = LiftState::new();
                    pumpkin_core::repair(&mut env, &lifting, &mut st, &"Old.assoc_inst".into())
                        .unwrap()
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default().sample_size(10)
}

criterion_group! {
    name = ablation;
    config = config();
    targets = bench_cache_ablation, bench_enum_scaling, bench_term_size_scaling
}
criterion_main!(ablation);
