//! Ablation and scaling benches for the design choices DESIGN.md calls
//! out:
//!
//! * `lift_cache/{on,off}` — the §4.4 "aggressive caching" of intermediate
//!   subterm liftings (added for the industrial proof engineer's ten-second
//!   budget);
//! * `kernel_cache/{on,off}` — the kernel-layer conv/whnf memo tables on
//!   the whole `Swap.v` list-module repair, with hit/miss counters from
//!   `kernel::stats`;
//! * `repair_parallel/jobs=N` — the wavefront module-repair scheduler on
//!   the same workload, sweeping worker counts (default {1, 2, 4}; pin
//!   with `--jobs N` or `PUMPKIN_JOBS=N`), with per-wave/per-worker
//!   counters from `RepairReport::schedule`;
//! * `scaling/enum_N` — repair latency as the number of constructors grows
//!   (the §6.1.3 Enum stress-test, parameterized);
//! * `scaling/term_size_N` — lifting latency as the proof term grows
//!   (repairing `app_assoc`-style lemmas over ever larger literal lists);
//! * `auto_search/{cold,warm,minimize}` — the automatic candidate search
//!   with a cold vs failure-cache-warmed enumeration, plus the greedy
//!   reproducer minimization (DESIGN.md §18).

use pumpkin_pi::case_studies;
use pumpkin_pi::pumpkin_core::{self, LiftState, NameMap, Repairer};
use pumpkin_pi::pumpkin_kernel::env::Env;
use pumpkin_pi::pumpkin_kernel::term::{ElimData, Term};
use pumpkin_pi::pumpkin_stdlib as stdlib;
use pumpkin_testkit::Bench;
use stdlib::nat::nat_lit;

fn bench_lift_cache_ablation(b: &mut Bench) {
    let base = stdlib::std_env();
    for (label, cached) in [("on", true), ("off", false)] {
        b.bench(
            &format!("lift_cache/{label}"),
            || base.clone(),
            |mut env| {
                let lifting = pumpkin_core::search::swap::configure(
                    &mut env,
                    &"Old.Term".into(),
                    &"New.Term".into(),
                    NameMap::prefix("Old.", "New."),
                )
                .unwrap();
                let mut st = if cached {
                    LiftState::new()
                } else {
                    LiftState::without_cache()
                };
                let report = Repairer::new(&lifting)
                    .state(&mut st)
                    .run(&mut env, case_studies::REPLICA_CONSTANTS)
                    .unwrap();
                (report, st)
            },
        );
        // One extra instrumented run to report the counters.
        let mut env = base.clone();
        let lifting = pumpkin_core::search::swap::configure(
            &mut env,
            &"Old.Term".into(),
            &"New.Term".into(),
            NameMap::prefix("Old.", "New."),
        )
        .unwrap();
        let mut st = if cached {
            LiftState::new()
        } else {
            LiftState::without_cache()
        };
        Repairer::new(&lifting)
            .state(&mut st)
            .run(&mut env, case_studies::REPLICA_CONSTANTS)
            .unwrap();
        println!("  lift_cache/{label}: {}", st.stats);
    }
}

fn bench_kernel_cache_ablation(b: &mut Bench) {
    // The tentpole workload: the whole `Swap.v` list-module repair, with
    // the kernel conv/whnf memo tables enabled vs disabled. One
    // instrumented run per arm prints the `kernel::stats` counters so the
    // hit rate backing the speedup is visible next to the timing.
    let base = stdlib::std_env();
    for (label, enabled) in [("on", true), ("off", false)] {
        b.bench(
            &format!("kernel_cache/{label}"),
            || {
                let mut env = base.clone();
                env.set_kernel_cache(enabled);
                env
            },
            |mut env| {
                case_studies::swap_list_module(&mut env).unwrap();
                env
            },
        );
        let mut env = base.clone();
        env.set_kernel_cache(enabled);
        env.reset_kernel_stats();
        case_studies::swap_list_module(&mut env).unwrap();
        println!("  kernel_cache/{label}: {}", env.kernel_stats());
    }
}

fn bench_repair_parallel(b: &mut Bench) {
    // The tentpole workload again (whole swap_list_module repair), now
    // through the wavefront scheduler at several worker counts. jobs=1
    // measures the pure scheduling overhead against the sequential
    // `kernel_cache/on` row; higher counts measure the parallel speedup.
    let base = stdlib::std_env();
    let sweep: Vec<usize> = match b.jobs() {
        Some(j) => vec![j],
        None => vec![1, 2, 4],
    };
    for jobs in sweep {
        b.bench(
            &format!("repair_parallel/jobs={jobs}"),
            || base.clone(),
            |mut env| {
                case_studies::swap_list_module_parallel(&mut env, jobs).unwrap();
                env
            },
        );
        let mut env = base.clone();
        env.reset_kernel_stats();
        let report = case_studies::swap_list_module_parallel(&mut env, jobs).unwrap();
        println!("  repair_parallel/jobs={jobs}: {}", report.schedule);
    }
}

fn bench_trace_overhead(b: &mut Bench) {
    // The observability ablation: the same swap_list_module repair with the
    // trace sink disabled (every probe is one branch) vs event capture.
    // `off` should be within noise of `repair_parallel/jobs=1`. The `on`
    // arm measures event capture alone (provenance explicitly off, keeping
    // the row comparable across baselines); `prov` is the provenance
    // recorder alone; `full` is both.
    b.bench("trace_overhead/off", stdlib::std_env, |mut env| {
        case_studies::swap_list_module_parallel(&mut env, 1).unwrap();
        env
    });
    b.bench("trace_overhead/on", stdlib::std_env, |mut env| {
        swap_module_repairer(&mut env, |r| r.trace(true).provenance(false));
        env
    });
    // Provenance recorder on, sink off: the per-subterm attribution cost
    // in isolation.
    b.bench("trace_overhead/prov", stdlib::std_env, |mut env| {
        case_studies::swap_list_module_provenance(&mut env, 1).unwrap();
        env
    });
    b.bench("trace_overhead/full", stdlib::std_env, |mut env| {
        case_studies::swap_list_module_traced(&mut env, 1).unwrap();
        env
    });
    let mut env = stdlib::std_env();
    let report = case_studies::swap_list_module_traced(&mut env, 1).unwrap();
    println!(
        "  trace_overhead/full: {} events, {} lift spans",
        report.trace_events().len(),
        report.metrics().counter("lift.constants"),
    );
    let mut env = stdlib::std_env();
    let report = case_studies::swap_list_module_provenance(&mut env, 1).unwrap();
    println!(
        "  trace_overhead/prov: {} constants, {} sites",
        report.provenance.len(),
        report
            .provenance
            .iter()
            .map(|p| p.sites.len())
            .sum::<usize>(),
    );
}

/// Runs the swap list-module repair through a [`pumpkin_core::Repairer`]
/// customised by `cfg` (used by the trace_overhead arms that need a
/// specific trace/provenance combination).
fn swap_module_repairer(
    env: &mut Env,
    cfg: impl for<'a> FnOnce(pumpkin_core::Repairer<'a>) -> pumpkin_core::Repairer<'a>,
) {
    let lifting = pumpkin_core::search::swap::configure(
        env,
        &"Old.list".into(),
        &"New.list".into(),
        NameMap::prefix("Old.", "New."),
    )
    .unwrap();
    cfg(pumpkin_core::Repairer::new(&lifting))
        .jobs(1)
        .run(env, stdlib::swap::OLD_MODULE_CONSTANTS)
        .unwrap();
}

/// Builds an environment with two n-constructor enums and a function
/// `enumf : EnumA → nat` to repair across a rotation.
fn enum_env(n: usize) -> (Env, Vec<usize>) {
    let mut env = stdlib::std_env();
    env.declare_inductive(stdlib::replica::enum_decl("EnumA", n))
        .unwrap();
    env.declare_inductive(stdlib::replica::enum_decl("EnumB", n))
        .unwrap();
    let body = Term::lambda(
        "e",
        Term::ind("EnumA"),
        Term::elim(ElimData {
            ind: "EnumA".into(),
            params: vec![],
            motive: Term::lambda("x", Term::ind("EnumA"), Term::ind("nat")),
            cases: (0..n).map(|j| nat_lit(j as u64)).collect(),
            scrutinee: Term::rel(0),
        }),
    );
    env.define(
        "EnumA.f",
        Term::arrow(Term::ind("EnumA"), Term::ind("nat")),
        body,
    )
    .unwrap();
    let perm: Vec<usize> = (0..n).map(|i| (i + 1) % n).collect();
    (env, perm)
}

fn bench_enum_scaling(b: &mut Bench) {
    for n in [5usize, 10, 20, 30] {
        let (base, perm) = enum_env(n);
        b.bench(
            &format!("scaling_enum/enum_{n}"),
            || base.clone(),
            |mut env| {
                let lifting = pumpkin_core::search::swap::configure_with(
                    &mut env,
                    &"EnumA".into(),
                    &"EnumB".into(),
                    &perm,
                    NameMap::prefix("EnumA.", "EnumB."),
                )
                .unwrap();
                let mut st = LiftState::new();
                Repairer::new(&lifting)
                    .state(&mut st)
                    .run_one(&mut env, &"EnumA.f".into())
                    .unwrap()
            },
        );
    }
}

/// Builds an environment with a lemma instantiating `Old.app_assoc` on
/// literal lists of length `n` (a proof term that grows linearly with `n`).
fn term_size_env(n: usize) -> Env {
    let mut env = stdlib::std_env();
    let elems: Vec<Term> = (0..n as u64).map(nat_lit).collect();
    let l = stdlib::list::list_lit("Old.list", Term::ind("nat"), &elems);
    let body = Term::app(
        Term::const_("Old.app_assoc"),
        [Term::ind("nat"), l.clone(), l.clone(), l.clone()],
    );
    let app = |x: Term, y: Term| Term::app(Term::const_("Old.app"), [Term::ind("nat"), x, y]);
    let ty = Term::app(
        Term::ind("eq"),
        [
            Term::app(Term::ind("Old.list"), [Term::ind("nat")]),
            app(l.clone(), app(l.clone(), l.clone())),
            app(app(l.clone(), l.clone()), l),
        ],
    );
    env.define("Old.assoc_inst", ty, body).unwrap();
    env
}

fn bench_term_size_scaling(b: &mut Bench) {
    for n in [4usize, 16, 64] {
        let base = term_size_env(n);
        b.bench(
            &format!("scaling_term_size/list_len_{n}"),
            || base.clone(),
            |mut env| {
                let lifting = pumpkin_core::search::swap::configure(
                    &mut env,
                    &"Old.list".into(),
                    &"New.list".into(),
                    NameMap::prefix("Old.", "New."),
                )
                .unwrap();
                let mut st = LiftState::new();
                Repairer::new(&lifting)
                    .state(&mut st)
                    .run_one(&mut env, &"Old.assoc_inst".into())
                    .unwrap()
            },
        );
    }
}

fn bench_persist_cache(b: &mut Bench) {
    // The cross-run lift cache: `cold` starts from an empty cache
    // directory every iteration (each run both lifts and populates);
    // `warm` hits a pre-populated directory (each run replays serialized
    // lifted declarations instead of lifting). The configure step runs in
    // setup so both rows time the module repair alone. bench_guard.sh
    // gates warm at >= 5x faster than cold.
    let base = stdlib::std_env();
    let dir = std::env::temp_dir().join(format!("pumpkin-bench-persist-{}", std::process::id()));
    let configure = |env: &mut Env| {
        pumpkin_core::search::swap::configure(
            env,
            &"Old.list".into(),
            &"New.list".into(),
            NameMap::prefix("Old.", "New."),
        )
        .unwrap()
    };
    let run = |env: &mut Env, lifting: &pumpkin_core::Lifting| {
        let mut st = LiftState::new();
        let report = pumpkin_core::Repairer::new(lifting)
            .persist_cache(&dir)
            .state(&mut st)
            .run(env, stdlib::swap::OLD_MODULE_CONSTANTS)
            .unwrap();
        (report, st.stats.persist_hits, st.stats.persist_misses)
    };
    b.bench(
        "persist_cache/cold",
        || {
            let _ = std::fs::remove_dir_all(&dir);
            let mut env = base.clone();
            let lifting = configure(&mut env);
            (env, lifting)
        },
        |(mut env, lifting)| run(&mut env, &lifting),
    );
    // Populate once, then every warm iteration replays from disk.
    let _ = std::fs::remove_dir_all(&dir);
    {
        let mut env = base.clone();
        let lifting = configure(&mut env);
        let (_, hits, misses) = run(&mut env, &lifting);
        assert_eq!((hits, misses > 0), (0, true), "populating run must be cold");
    }
    b.bench(
        "persist_cache/warm",
        || {
            let mut env = base.clone();
            let lifting = configure(&mut env);
            (env, lifting)
        },
        |(mut env, lifting)| run(&mut env, &lifting),
    );
    let mut env = base.clone();
    let lifting = configure(&mut env);
    let (_, hits, misses) = run(&mut env, &lifting);
    println!("  persist_cache/warm: {hits} hits, {misses} misses");
    assert_eq!(misses, 0, "warm run must replay entirely from the cache");

    // `incremental` — the session-resident edit loop the serve daemon and
    // `pumpkin watch` run (DESIGN.md §16): the environment already holds
    // the previous repair's outputs, the request diffs a digest snapshot
    // of the last run, the one touched constant (a leaf theorem, so its
    // downstream closure is itself) re-lifts fresh, and the other 12 are
    // green — reused from the resident world with no lift and no disk
    // probe. bench_guard.sh gates this row at <= 0.3x of the full warm
    // repair above.
    let touched = "Old.fold_app";
    let (session_env, session_lifting) = {
        let mut env = base.clone();
        let lifting = configure(&mut env);
        let mut st = LiftState::new();
        pumpkin_core::Repairer::new(&lifting)
            .state(&mut st)
            .run(&mut env, stdlib::swap::OLD_MODULE_CONSTANTS)
            .unwrap();
        (env, lifting)
    };
    let snapshot = || {
        // Capture the full module (digests + dependency edges), then
        // force the touched constant to diff as changed — the same
        // effect as an edited body, without needing to redefine a
        // referenced constant in place. Keeping its recorded edges lets
        // the run close the invalidation over the snapshot instead of
        // rebuilding the module DAG.
        let mut snap =
            pumpkin_core::DigestMap::capture(&session_env, stdlib::swap::OLD_MODULE_CONSTANTS);
        snap.mark_changed(&touched.into());
        snap
    };
    let run_incr = |env: &mut Env, snap: &pumpkin_core::DigestMap| {
        let mut st = LiftState::new();
        pumpkin_core::Repairer::new(&session_lifting)
            .persist_cache(&dir)
            .state(&mut st)
            .incremental(snap)
            .run(env, stdlib::swap::OLD_MODULE_CONSTANTS)
            .unwrap()
    };
    b.bench(
        "persist_cache/incremental",
        || (session_env.clone(), snapshot()),
        |(mut env, snap)| {
            let report = run_incr(&mut env, &snap);
            // The session's environment and snapshot survive across edits
            // in the watch/serve loop; their teardown is not part of an
            // incremental request, so hand them back out of the timing.
            (report, env, snap)
        },
    );
    {
        let report = run_incr(&mut session_env.clone(), &snapshot());
        let incr = report.incr.expect("incremental run reports stats");
        println!("  persist_cache/incremental: {incr}");
        assert_eq!(incr.changed, 1, "exactly one constant was touched");
        assert!(
            incr.replayed <= 2,
            "touching 1 of 13 must re-lift at most 2 constants, got {}",
            incr.replayed
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

fn bench_auto_search(b: &mut Bench) {
    // The automatic repair search (DESIGN.md §18). `cold` runs the whole
    // candidate enumeration through the kernel oracle against a fresh
    // collision module — the constant name (and so the module digest) is
    // unique per iteration, so the process-wide failure cache never
    // helps. `warm` replays one fixed module whose failures were recorded
    // up front: every candidate is skipped by the cache without touching
    // the kernel. bench_guard.sh gates warm at <= 0.5x cold in-run.
    // `minimize` adds the greedy reduction of a poisoned four-constant
    // module down to its one-constant reproducer.
    use pumpkin_pi::pumpkin_core::AutoPolicy;
    use std::sync::atomic::{AtomicUsize, Ordering};
    let base = stdlib::std_env();
    let collision = |tag: &str| {
        format!(
            "Definition New.{tag} : nat := O.\n\
             Definition Old.{tag} : forall (T : Type 1), Old.list T -> Old.list T := \
             fun (T : Type 1) (l : Old.list T) => l.\n"
        )
    };
    let policy = AutoPolicy {
        minimize: false,
        deterministic: true,
        ..AutoPolicy::default()
    };
    let fresh = AtomicUsize::new(0);
    b.bench(
        "auto_search/cold",
        || {
            let i = fresh.fetch_add(1, Ordering::Relaxed);
            (base.clone(), collision(&format!("auto_bench_cold_{i}")))
        },
        |(mut env, src)| {
            let (auto, result) = Repairer::auto(policy.clone())
                .source(src)
                .run(&mut env, &[]);
            assert!(
                result.is_err() && auto.skipped_cache == 0,
                "cold iterations must never hit the failure cache"
            );
            auto
        },
    );
    // Record the fixed module's failures once; every warm iteration then
    // skips the entire enumeration.
    let warm_src = collision("auto_bench_warm");
    {
        let mut env = base.clone();
        let (auto, _) = Repairer::auto(policy.clone())
            .source(warm_src.as_str())
            .run(&mut env, &[]);
        println!("  auto_search/cold: {}", auto.summary());
    }
    b.bench(
        "auto_search/warm",
        || (base.clone(), warm_src.clone()),
        |(mut env, src)| {
            let (auto, result) = Repairer::auto(policy.clone())
                .source(src)
                .run(&mut env, &[]);
            assert!(
                result.is_err() && auto.tried == 0,
                "warm iterations must skip every candidate"
            );
            auto
        },
    );
    let min_policy = AutoPolicy {
        use_failure_cache: false,
        deterministic: true,
        ..AutoPolicy::default()
    };
    b.bench(
        "auto_search/minimize",
        || (base.clone(), collision("auto_bench_min")),
        |(mut env, src)| {
            let (auto, result) = Repairer::auto(min_policy.clone())
                .source(src)
                .run(&mut env, &["Old.rev", "Old.app", "Old.length"]);
            assert!(
                result.is_err() && auto.reproducer.is_some(),
                "minimize iterations must produce a reproducer"
            );
            auto
        },
    );
    let mut env = base.clone();
    let (auto, _) = Repairer::auto(min_policy)
        .source(collision("auto_bench_min_probe"))
        .run(&mut env, &["Old.rev", "Old.app", "Old.length"]);
    println!("  auto_search/minimize: {}", auto.summary());
}

fn bench_serve_roundtrip(b: &mut Bench) {
    // End-to-end daemon latency: connect, repair a three-constant module
    // over newline-delimited JSON-RPC, read the reply. Covers framing,
    // request parsing, the per-connection env clone, the repair itself,
    // and reply serialization — the price of moving the engine behind a
    // socket.
    use pumpkin_pi::pumpkin_serve::{Client, Server, ServerConfig};
    use pumpkin_pi::pumpkin_wire::{LiftSpec, Value};
    let server = Server::bind(ServerConfig::default()).expect("bind loopback");
    let addr = server.local_addr().expect("addr").to_string();
    let daemon = std::thread::spawn(move || server.run());
    let spec = LiftSpec::swap("Old.list", "New.list", "Old.", "New.");
    let params = Value::Obj(vec![
        ("lifting".into(), spec.to_value()),
        (
            "names".into(),
            Value::Arr(
                ["Old.rev", "Old.app", "Old.rev_involutive"]
                    .iter()
                    .map(|n| Value::str(*n))
                    .collect(),
            ),
        ),
    ]);
    b.bench(
        "serve_roundtrip",
        || (addr.clone(), params.clone()),
        |(addr, params)| {
            let mut client = Client::connect(&addr).expect("connect");
            client.call("repair_module", params).expect("repair_module")
        },
    );
    let mut client = Client::connect(&addr).expect("connect");
    client
        .call("shutdown", Value::Obj(vec![]))
        .expect("shutdown");
    daemon.join().expect("daemon thread").expect("clean drain");
}

fn bench_repair_batch(b: &mut Bench) {
    // Batch amortization: the 13-constant swap module repaired as 13
    // individual `repair` RPCs on one connection (rpc13) vs one
    // `repair_batch` frame (batch13). Both do identical repair work per
    // constant — the delta is 12 saved round trips, frame parses, queue
    // handoffs, and reply flushes. bench_guard.sh asserts in-run that
    // batch13 <= 0.8 * rpc13, and this function asserts the replies are
    // byte-identical (batch entries vs standalone null-id replies).
    use pumpkin_pi::pumpkin_serve::{Client, Server, ServerConfig};
    use pumpkin_pi::pumpkin_wire::{LiftSpec, Value};
    let server = Server::bind(ServerConfig::default()).expect("bind loopback");
    let addr = server.local_addr().expect("addr").to_string();
    let daemon = std::thread::spawn(move || server.run());
    let spec = LiftSpec::swap("Old.list", "New.list", "Old.", "New.");
    let singles: Vec<String> = stdlib::swap::OLD_MODULE_CONSTANTS
        .iter()
        .map(|n| {
            format!(
                r#"{{"id":null,"method":"repair","params":{{"lifting":{},"name":"{n}","deterministic":true}}}}"#,
                spec.to_value()
            )
        })
        .collect();
    let batch_line = format!(
        r#"{{"id":null,"method":"repair_batch","params":{{"lifting":{},"batch":[{}]}}}}"#,
        spec.to_value(),
        stdlib::swap::OLD_MODULE_CONSTANTS
            .iter()
            .map(|n| format!(r#"{{"name":"{n}","deterministic":true}}"#))
            .collect::<Vec<_>>()
            .join(",")
    );
    // One warm-up pass configures every worker's cache and yields the
    // reference replies for the byte-identity check.
    let mut client = Client::connect(&addr).expect("connect");
    let reference: Vec<String> = singles
        .iter()
        .map(|l| client.call_raw(l).expect("warm single"))
        .collect();
    let batch_reply = client.call_raw(&batch_line).expect("warm batch");
    let parsed = Value::parse(&batch_reply).expect("parse batch reply");
    let results = parsed
        .get("result")
        .and_then(|r| r.get("results"))
        .and_then(Value::as_arr)
        .expect("results array");
    assert_eq!(results.len(), reference.len());
    for (batched, standalone) in results.iter().zip(&reference) {
        // Standalone replies carry a lifecycle `req_id`; batch entries
        // deliberately don't (DESIGN.md §17). Strip it before comparing.
        let standalone = match standalone.find("\"req_id\":") {
            Some(at) => {
                let end = standalone[at..]
                    .find(',')
                    .map_or(standalone.len(), |c| at + c + 1);
                format!("{}{}", &standalone[..at], &standalone[end..])
            }
            None => standalone.clone(),
        };
        assert_eq!(
            batched.to_string(),
            standalone,
            "batch entry diverged from the standalone reply"
        );
    }
    b.bench(
        "repair_batch/rpc13",
        || (addr.clone(), singles.clone()),
        |(addr, singles)| {
            // The pre-batch client pattern: one `pumpkin client`-style
            // invocation per constant — connect, one repair RPC, close.
            singles
                .iter()
                .map(|l| {
                    Client::connect(&addr)
                        .expect("connect")
                        .call_raw(l)
                        .expect("single rpc")
                })
                .collect::<Vec<_>>()
        },
    );
    b.bench(
        "repair_batch/batch13",
        || (Client::connect(&addr).expect("connect"), batch_line.clone()),
        |(mut client, line)| client.call_raw(&line).expect("batch rpc"),
    );
    let mut client = Client::connect(&addr).expect("connect");
    client
        .call("shutdown", Value::Obj(vec![]))
        .expect("shutdown");
    daemon.join().expect("daemon thread").expect("clean drain");
}

fn main() {
    let mut b = Bench::from_args();
    bench_lift_cache_ablation(&mut b);
    bench_kernel_cache_ablation(&mut b);
    bench_repair_parallel(&mut b);
    bench_trace_overhead(&mut b);
    bench_enum_scaling(&mut b);
    bench_term_size_scaling(&mut b);
    bench_persist_cache(&mut b);
    bench_auto_search(&mut b);
    bench_serve_roundtrip(&mut b);
    bench_repair_batch(&mut b);
    b.finish();
}
