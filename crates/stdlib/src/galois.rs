//! The industrial (Galois) case-study substrate (paper §6.4, Fig. 17):
//! compiler-generated nested tuples vs. human-readable named records.
//!
//! Substitutions relative to the paper: the paper's `seq n bool` bit-vector
//! types come from SAWCore; we model every bit-vector field as a `word`
//! (a wrapped `nat`) with `bvNat`/`bvAdd`, which preserves the behaviour the
//! proofs depend on (`bvAdd (bvNat 0) (bvNat 1) ≡ bvNat 1` computes). The
//! record `Connection.handshake` field keeps the *tuple* `Handshake` type so
//! each repair crosses exactly one tuple↔record equivalence (the paper
//! chains two; see DESIGN.md).

use pumpkin_kernel::env::Env;
use pumpkin_lang::error::Result;
use pumpkin_lang::load_source;

/// Vernacular source for the Galois substrate.
pub const SRC: &str = r#"
Inductive word : Set :=
| mkWord : nat -> word.

Definition bvNat : nat -> word := fun (n : nat) => mkWord n.

Definition bvAdd : word -> word -> word :=
  fun (a b : word) =>
    elim a : word return (fun (x : word) => word) with
    | fun (x : nat) =>
        elim b : word return (fun (y : word) => word) with
        | fun (y : nat) => mkWord (add x y)
        end
    end.

(* The compiler-generated (tuple) types. Naming the nested tails keeps the
   sources readable; they are transparent definitions. *)
Definition Handshake : Type 1 := prod word word.
Definition Conn8 : Type 1 := prod bool bool.
Definition Conn7 : Type 1 := prod word Conn8.
Definition Conn6 : Type 1 := prod bool Conn7.
Definition Conn5 : Type 1 := prod bool Conn6.
Definition Conn4 : Type 1 := prod Handshake Conn5.
Definition Conn3 : Type 1 := prod word Conn4.
Definition Conn2 : Type 1 := prod word Conn3.
Definition Connection : Type 1 := prod bool Conn2.

(* The compiler-generated cork function: increment the `corked` field. *)
Definition cork : Connection -> Connection :=
  fun (c : Connection) =>
    pair bool Conn2 (fst bool Conn2 c)
      (pair word Conn3
        (bvAdd (fst word Conn3 (snd bool Conn2 c)) (bvNat (S O)))
        (snd word Conn3 (snd bool Conn2 c))).

(* corked c = 0 -> corked (cork c) = 1, over the tuple representation. *)
Definition corkLemma : forall (c : Connection),
    eq word (fst word Conn3 (snd bool Conn2 c)) (bvNat O) ->
    eq word (fst word Conn3 (snd bool Conn2 (cork c))) (bvNat (S O)) :=
  fun (c : Connection)
      (H : eq word (fst word Conn3 (snd bool Conn2 c)) (bvNat O)) =>
    f_equal word word (fun (w : word) => bvAdd w (bvNat (S O)))
      (fst word Conn3 (snd bool Conn2 c)) (bvNat O) H.

(* The human-readable record types (paper Fig. 17, right). *)
Inductive Record.Handshake : Set :=
| MkHandshake : word -> word -> Record.Handshake.

Definition handshakeType : Record.Handshake -> word :=
  fun (h : Record.Handshake) =>
    elim h : Record.Handshake return (fun (x : Record.Handshake) => word) with
    | fun (a : word) (b : word) => a
    end.

Definition messageNumber : Record.Handshake -> word :=
  fun (h : Record.Handshake) =>
    elim h : Record.Handshake return (fun (x : Record.Handshake) => word) with
    | fun (a : word) (b : word) => b
    end.

Inductive Record.Connection : Set :=
| MkConnection : bool -> word -> word -> Handshake -> bool -> bool -> word ->
                 bool -> bool -> Record.Connection.

Definition clientAuthFlag : Record.Connection -> bool :=
  fun (c : Record.Connection) =>
    elim c : Record.Connection return (fun (x : Record.Connection) => bool) with
    | fun (f0 : bool) (f1 : word) (f2 : word) (f3 : Handshake) (f4 : bool)
          (f5 : bool) (f6 : word) (f7 : bool) (f8 : bool) => f0
    end.

Definition corked : Record.Connection -> word :=
  fun (c : Record.Connection) =>
    elim c : Record.Connection return (fun (x : Record.Connection) => word) with
    | fun (f0 : bool) (f1 : word) (f2 : word) (f3 : Handshake) (f4 : bool)
          (f5 : bool) (f6 : word) (f7 : bool) (f8 : bool) => f1
    end.

Definition corkedIO : Record.Connection -> word :=
  fun (c : Record.Connection) =>
    elim c : Record.Connection return (fun (x : Record.Connection) => word) with
    | fun (f0 : bool) (f1 : word) (f2 : word) (f3 : Handshake) (f4 : bool)
          (f5 : bool) (f6 : word) (f7 : bool) (f8 : bool) => f2
    end.

Definition handshake : Record.Connection -> Handshake :=
  fun (c : Record.Connection) =>
    elim c : Record.Connection return (fun (x : Record.Connection) => Handshake) with
    | fun (f0 : bool) (f1 : word) (f2 : word) (f3 : Handshake) (f4 : bool)
          (f5 : bool) (f6 : word) (f7 : bool) (f8 : bool) => f3
    end.

Definition isCachingEnabled : Record.Connection -> bool :=
  fun (c : Record.Connection) =>
    elim c : Record.Connection return (fun (x : Record.Connection) => bool) with
    | fun (f0 : bool) (f1 : word) (f2 : word) (f3 : Handshake) (f4 : bool)
          (f5 : bool) (f6 : word) (f7 : bool) (f8 : bool) => f4
    end.

Definition keyExchangeEPH : Record.Connection -> bool :=
  fun (c : Record.Connection) =>
    elim c : Record.Connection return (fun (x : Record.Connection) => bool) with
    | fun (f0 : bool) (f1 : word) (f2 : word) (f3 : Handshake) (f4 : bool)
          (f5 : bool) (f6 : word) (f7 : bool) (f8 : bool) => f5
    end.

Definition mode : Record.Connection -> word :=
  fun (c : Record.Connection) =>
    elim c : Record.Connection return (fun (x : Record.Connection) => word) with
    | fun (f0 : bool) (f1 : word) (f2 : word) (f3 : Handshake) (f4 : bool)
          (f5 : bool) (f6 : word) (f7 : bool) (f8 : bool) => f6
    end.

Definition resumeFromCache : Record.Connection -> bool :=
  fun (c : Record.Connection) =>
    elim c : Record.Connection return (fun (x : Record.Connection) => bool) with
    | fun (f0 : bool) (f1 : word) (f2 : word) (f3 : Handshake) (f4 : bool)
          (f5 : bool) (f6 : word) (f7 : bool) (f8 : bool) => f7
    end.

Definition serverCanSendOCSP : Record.Connection -> bool :=
  fun (c : Record.Connection) =>
    elim c : Record.Connection return (fun (x : Record.Connection) => bool) with
    | fun (f0 : bool) (f1 : word) (f2 : word) (f3 : Handshake) (f4 : bool)
          (f5 : bool) (f6 : word) (f7 : bool) (f8 : bool) => f8
    end.
"#;

/// Loads the Galois substrate. Requires [`crate::logic`] and [`crate::nat`].
pub fn load(env: &mut Env) -> Result<()> {
    load_source(env, SRC)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pumpkin_kernel::prelude::*;
    use pumpkin_lang::term;

    fn env() -> Env {
        let mut e = Env::new();
        crate::logic::load(&mut e).unwrap();
        crate::nat::load(&mut e).unwrap();
        load(&mut e).unwrap();
        e
    }

    #[test]
    fn loads() {
        let e = env();
        for n in ["cork", "corkLemma", "corked", "MkConnection", "Handshake"] {
            assert!(e.contains(n), "missing {n}");
        }
    }

    #[test]
    fn cork_increments_corked_field() {
        let e = env();
        let conn = "pair bool Conn2 true \
            (pair word Conn3 (bvNat O) \
            (pair word Conn4 (bvNat O) \
            (pair Handshake Conn5 (pair word word (bvNat O) (bvNat O)) \
            (pair bool Conn6 false \
            (pair bool Conn7 false \
            (pair word Conn8 (bvNat O) \
            (pair bool bool false false)))))))";
        let t = term(
            &e,
            &format!("fst word Conn3 (snd bool Conn2 (cork ({conn})))"),
        )
        .unwrap();
        let one = term(&e, "bvNat (S O)").unwrap();
        assert_eq!(normalize(&e, &t), normalize(&e, &one));
    }

    #[test]
    fn record_projections_compute() {
        let e = env();
        let rec = "MkConnection true (bvNat (S O)) (bvNat O) \
                   (pair word word (bvNat O) (bvNat O)) false false (bvNat O) false true";
        let t = term(&e, &format!("corked ({rec})")).unwrap();
        assert_eq!(
            normalize(&e, &t),
            normalize(&e, &term(&e, "bvNat (S O)").unwrap())
        );
        let t = term(&e, &format!("serverCanSendOCSP ({rec})")).unwrap();
        assert_eq!(normalize(&e, &t), term(&e, "true").unwrap());
    }
}
