//! The REPLICA benchmark substrate (paper Fig. 16, §6.1): a simple term
//! language with seven constructors, plus the functions and proofs the user
//! study's proof engineer maintained.
//!
//! The paper evaluated Pumpkin Pi on the original `Term` and on variants:
//! swapping two constructors, swapping constructors with the same type,
//! renaming all constructors, permuting more than two constructors, and
//! permuting + renaming at once. [`term_variant`] generates any such variant
//! programmatically; the canonical `Old.Term` module (with its functions and
//! proofs) is defined in source below.
//!
//! The paper's `EpsilonLogic` evaluation maps terms to an abstract value
//! type; we evaluate into `nat` with an environment for variables, which
//! preserves the shape of the benchmark's key theorem
//! `eval_eq_true_or_false` (an `or` of two equations about `Eq` terms).

use pumpkin_kernel::env::Env;
use pumpkin_kernel::inductive::{CtorDecl, InductiveDecl};
use pumpkin_kernel::term::{Binder, Term};
use pumpkin_kernel::universe::Sort;
use pumpkin_lang::error::Result;
use pumpkin_lang::load_source;

/// Shared prerequisites: identifiers.
pub const ID_SRC: &str = r#"
Inductive Id : Set :=
| MkId : nat -> Id.

Definition id_eqb : Id -> Id -> bool :=
  fun (a b : Id) =>
    elim a : Id return (fun (x : Id) => bool) with
    | fun (n : nat) =>
        elim b : Id return (fun (y : Id) => bool) with
        | fun (m : nat) => nat_eqb n m
        end
    end.
"#;

/// The seven constructor *kinds* of the REPLICA term language, by canonical
/// position: `Var`, `Int`, `Eq`, `Plus`, `Times`, `Minus`, `Choose`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CtorKind {
    /// `Var : Id → Term`
    Var,
    /// `Int : nat → Term`
    Int,
    /// `Eq : Term → Term → Term`
    Eq,
    /// `Plus : Term → Term → Term`
    Plus,
    /// `Times : Term → Term → Term`
    Times,
    /// `Minus : Term → Term → Term`
    Minus,
    /// `Choose : Id → Term → Term`
    Choose,
}

impl CtorKind {
    /// All kinds in canonical order.
    pub const ALL: [CtorKind; 7] = [
        CtorKind::Var,
        CtorKind::Int,
        CtorKind::Eq,
        CtorKind::Plus,
        CtorKind::Times,
        CtorKind::Minus,
        CtorKind::Choose,
    ];

    /// The canonical constructor base name.
    pub fn base_name(self) -> &'static str {
        match self {
            CtorKind::Var => "Var",
            CtorKind::Int => "Int",
            CtorKind::Eq => "Eq",
            CtorKind::Plus => "Plus",
            CtorKind::Times => "Times",
            CtorKind::Minus => "Minus",
            CtorKind::Choose => "Choose",
        }
    }

    fn args(self, term_name: &str) -> Vec<Binder> {
        let t = Term::ind(term_name);
        match self {
            CtorKind::Var => vec![Binder::new("i", Term::ind("Id"))],
            CtorKind::Int => vec![Binder::new("z", Term::ind("nat"))],
            CtorKind::Eq | CtorKind::Plus | CtorKind::Times | CtorKind::Minus => {
                vec![Binder::new("a", t.clone()), Binder::new("b", t)]
            }
            CtorKind::Choose => vec![Binder::new("i", Term::ind("Id")), Binder::new("body", t)],
        }
    }
}

/// Builds a variant of the term language: an inductive named `name` whose
/// constructor list is `ctors` (kind + constructor name) in declaration
/// order.
pub fn term_variant(name: &str, ctors: &[(CtorKind, String)]) -> InductiveDecl {
    InductiveDecl {
        name: name.into(),
        params: vec![],
        indices: vec![],
        sort: Sort::Set,
        ctors: ctors
            .iter()
            .map(|(kind, cname)| CtorDecl {
                name: cname.as_str().into(),
                args: kind.args(name),
                result_indices: vec![],
            })
            .collect(),
    }
}

/// The canonical constructor list with a name prefix, in canonical order.
pub fn canonical_ctors(prefix: &str) -> Vec<(CtorKind, String)> {
    CtorKind::ALL
        .iter()
        .map(|k| (*k, format!("{prefix}{}", k.base_name())))
        .collect()
}

/// Declares `Old.Term` (canonical order) and `New.Term` (paper Fig. 16:
/// `Int` and `Eq` swapped).
pub fn declare_term_types(env: &mut Env) -> Result<()> {
    env.declare_inductive(term_variant("Old.Term", &canonical_ctors("Old.")))
        .map_err(pumpkin_lang::LangError::Kernel)?;
    let mut swapped = canonical_ctors("New.");
    swapped.swap(1, 2); // Int <-> Eq, as in the user study benchmark.
    env.declare_inductive(term_variant("New.Term", &swapped))
        .map_err(pumpkin_lang::LangError::Kernel)?;
    Ok(())
}

/// Functions and proofs over `Old.Term`, written against the canonical
/// constructor order. Their `New.Term` versions are produced by repair.
pub const OLD_MODULE_SRC: &str = r#"
Definition Old.size : Old.Term -> nat :=
  fun (t : Old.Term) =>
    elim t : Old.Term return (fun (x : Old.Term) => nat) with
    | fun (i : Id) => S O
    | fun (z : nat) => S O
    | fun (a : Old.Term) (iha : nat) (b : Old.Term) (ihb : nat) => S (add iha ihb)
    | fun (a : Old.Term) (iha : nat) (b : Old.Term) (ihb : nat) => S (add iha ihb)
    | fun (a : Old.Term) (iha : nat) (b : Old.Term) (ihb : nat) => S (add iha ihb)
    | fun (a : Old.Term) (iha : nat) (b : Old.Term) (ihb : nat) => S (add iha ihb)
    | fun (i : Id) (body : Old.Term) (ih : nat) => S ih
    end.

(* Evaluation into nat: Eq tests for equality (1 or 0), Choose ignores its
   binder, variables read the environment. *)
Definition Old.eval : (Id -> nat) -> Old.Term -> nat :=
  fun (env : Id -> nat) (t : Old.Term) =>
    elim t : Old.Term return (fun (x : Old.Term) => nat) with
    | fun (i : Id) => env i
    | fun (z : nat) => z
    | fun (a : Old.Term) (iha : nat) (b : Old.Term) (ihb : nat) => b2n (nat_eqb iha ihb)
    | fun (a : Old.Term) (iha : nat) (b : Old.Term) (ihb : nat) => add iha ihb
    | fun (a : Old.Term) (iha : nat) (b : Old.Term) (ihb : nat) => mul iha ihb
    | fun (a : Old.Term) (iha : nat) (b : Old.Term) (ihb : nat) => sub iha ihb
    | fun (i : Id) (body : Old.Term) (ih : nat) => ih
    end.

(* Recursively swap the operands of every Eq node. *)
Definition Old.swap_eq_args : Old.Term -> Old.Term :=
  fun (t : Old.Term) =>
    elim t : Old.Term return (fun (x : Old.Term) => Old.Term) with
    | fun (i : Id) => Old.Var i
    | fun (z : nat) => Old.Int z
    | fun (a : Old.Term) (iha : Old.Term) (b : Old.Term) (ihb : Old.Term) => Old.Eq ihb iha
    | fun (a : Old.Term) (iha : Old.Term) (b : Old.Term) (ihb : Old.Term) => Old.Plus iha ihb
    | fun (a : Old.Term) (iha : Old.Term) (b : Old.Term) (ihb : Old.Term) => Old.Times iha ihb
    | fun (a : Old.Term) (iha : Old.Term) (b : Old.Term) (ihb : Old.Term) => Old.Minus iha ihb
    | fun (i : Id) (body : Old.Term) (ih : Old.Term) => Old.Choose i ih
    end.

Definition Old.swap_eq_args_involutive : forall (t : Old.Term),
    eq Old.Term (Old.swap_eq_args (Old.swap_eq_args t)) t :=
  fun (t : Old.Term) =>
    elim t : Old.Term return (fun (x : Old.Term) =>
      eq Old.Term (Old.swap_eq_args (Old.swap_eq_args x)) x)
    with
    | fun (i : Id) => eq_refl Old.Term (Old.Var i)
    | fun (z : nat) => eq_refl Old.Term (Old.Int z)
    | fun (a : Old.Term) (iha : eq Old.Term (Old.swap_eq_args (Old.swap_eq_args a)) a)
          (b : Old.Term) (ihb : eq Old.Term (Old.swap_eq_args (Old.swap_eq_args b)) b) =>
        f_equal2 Old.Term Old.Term Old.Term Old.Eq
          (Old.swap_eq_args (Old.swap_eq_args a)) a
          (Old.swap_eq_args (Old.swap_eq_args b)) b iha ihb
    | fun (a : Old.Term) (iha : eq Old.Term (Old.swap_eq_args (Old.swap_eq_args a)) a)
          (b : Old.Term) (ihb : eq Old.Term (Old.swap_eq_args (Old.swap_eq_args b)) b) =>
        f_equal2 Old.Term Old.Term Old.Term Old.Plus
          (Old.swap_eq_args (Old.swap_eq_args a)) a
          (Old.swap_eq_args (Old.swap_eq_args b)) b iha ihb
    | fun (a : Old.Term) (iha : eq Old.Term (Old.swap_eq_args (Old.swap_eq_args a)) a)
          (b : Old.Term) (ihb : eq Old.Term (Old.swap_eq_args (Old.swap_eq_args b)) b) =>
        f_equal2 Old.Term Old.Term Old.Term Old.Times
          (Old.swap_eq_args (Old.swap_eq_args a)) a
          (Old.swap_eq_args (Old.swap_eq_args b)) b iha ihb
    | fun (a : Old.Term) (iha : eq Old.Term (Old.swap_eq_args (Old.swap_eq_args a)) a)
          (b : Old.Term) (ihb : eq Old.Term (Old.swap_eq_args (Old.swap_eq_args b)) b) =>
        f_equal2 Old.Term Old.Term Old.Term Old.Minus
          (Old.swap_eq_args (Old.swap_eq_args a)) a
          (Old.swap_eq_args (Old.swap_eq_args b)) b iha ihb
    | fun (i : Id) (body : Old.Term)
          (ih : eq Old.Term (Old.swap_eq_args (Old.swap_eq_args body)) body) =>
        f_equal Old.Term Old.Term (Old.Choose i)
          (Old.swap_eq_args (Old.swap_eq_args body)) body ih
    end.

(* The benchmark's key theorem, in our nat-valued semantics: evaluating an
   Eq node yields one of the two truth values (paper section 6.1,
   eval_eq_true_or_false). *)
Definition Old.eval_eq_true_or_false :
    forall (env : Id -> nat) (t1 t2 : Old.Term),
      or (eq nat (Old.eval env (Old.Eq t1 t2)) (S O))
         (eq nat (Old.eval env (Old.Eq t1 t2)) O) :=
  fun (env : Id -> nat) (t1 t2 : Old.Term) =>
    elim (nat_eqb (Old.eval env t1) (Old.eval env t2)) : bool
      return (fun (b : bool) =>
        or (eq nat (b2n b) (S O)) (eq nat (b2n b) O))
    with
    | or_introl (eq nat (b2n true) (S O)) (eq nat (b2n true) O)
        (eq_refl nat (S O))
    | or_intror (eq nat (b2n false) (S O)) (eq nat (b2n false) O)
        (eq_refl nat O)
    end.
"#;

/// Loads the whole REPLICA substrate: `Id`, `Old.Term`, `New.Term`, and the
/// `Old.*` module. Requires [`crate::logic`] and [`crate::nat`].
pub fn load(env: &mut Env) -> Result<()> {
    load_source(env, ID_SRC)?;
    declare_term_types(env)?;
    load_source(env, OLD_MODULE_SRC)
}

/// Builds an `Enum`-style inductive with `n` nullary constructors, as used
/// by the paper's "large and ambiguous permutation of a 30 constructor
/// Enum" stress test (§6.1.3).
pub fn enum_decl(name: &str, n: usize) -> InductiveDecl {
    InductiveDecl {
        name: name.into(),
        params: vec![],
        indices: vec![],
        sort: Sort::Set,
        ctors: (0..n)
            .map(|i| CtorDecl {
                name: format!("{name}.C{i}").into(),
                args: vec![],
                result_indices: vec![],
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nat::{nat_lit, nat_value};
    use pumpkin_kernel::prelude::*;
    use pumpkin_lang::term;

    fn env() -> Env {
        let mut e = Env::new();
        crate::logic::load(&mut e).unwrap();
        crate::nat::load(&mut e).unwrap();
        load(&mut e).unwrap();
        e
    }

    #[test]
    fn term_types_decl_order() {
        let e = env();
        let old = e.inductive(&"Old.Term".into()).unwrap();
        assert_eq!(old.ctors[1].name.as_str(), "Old.Int");
        assert_eq!(old.ctors[2].name.as_str(), "Old.Eq");
        let new = e.inductive(&"New.Term".into()).unwrap();
        assert_eq!(new.ctors[1].name.as_str(), "New.Eq");
        assert_eq!(new.ctors[2].name.as_str(), "New.Int");
    }

    #[test]
    fn eval_computes() {
        let e = env();
        // eval (fun _ => 0) (Plus (Int 2) (Times (Int 3) (Int 4))) = 14
        let envt = "(fun (i : Id) => O)";
        let t = term(
            &e,
            &format!(
                "Old.eval {envt} (Old.Plus (Old.Int (S (S O))) \
                 (Old.Times (Old.Int (S (S (S O)))) (Old.Int (S (S (S (S O)))))))"
            ),
        )
        .unwrap();
        assert_eq!(nat_value(&normalize(&e, &t)), Some(14));
    }

    #[test]
    fn size_and_swap_compute() {
        let e = env();
        let src = "Old.Eq (Old.Int O) (Old.Var (MkId O))";
        let t = term(&e, &format!("Old.size ({src})")).unwrap();
        assert_eq!(nat_value(&normalize(&e, &t)), Some(3));
        let sw = term(&e, &format!("Old.swap_eq_args ({src})")).unwrap();
        let expect = term(&e, "Old.Eq (Old.Var (MkId O)) (Old.Int O)").unwrap();
        assert_eq!(normalize(&e, &sw), normalize(&e, &expect));
    }

    #[test]
    fn theorem_instances() {
        let e = env();
        // Instantiate eval_eq_true_or_false and check it still typechecks.
        let t = term(
            &e,
            "Old.eval_eq_true_or_false (fun (i : Id) => O) (Old.Int O) (Old.Int O)",
        )
        .unwrap();
        assert!(infer_closed(&e, &t).is_ok());
    }

    #[test]
    fn enum_decl_has_n_ctors() {
        let mut e = env();
        let d = enum_decl("Enum", 30);
        assert_eq!(d.ctors.len(), 30);
        e.declare_inductive(d).unwrap();
        assert!(e.contains("Enum.C29"));
        let _ = nat_lit(0);
    }
}
