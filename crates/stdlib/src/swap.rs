//! The constructor-swap case study types (paper Fig. 1 and §2):
//! `Old.list` with the standard constructor order plus its whole module of
//! functions and proofs, and `New.list` with the two constructors swapped.
//! The `New.*` functions and proofs are produced by `Repair module`.

use pumpkin_kernel::env::Env;
use pumpkin_lang::error::Result;
use pumpkin_lang::load_source;

/// `New.list`: the updated type (Fig. 1, right) — constructors swapped.
pub const NEW_LIST_SRC: &str = r#"
Inductive New.list (T : Type 1) : Type 1 :=
| New.cons : T -> New.list T -> New.list T
| New.nil : New.list T.
"#;

/// Loads `Old.list` (with its module) and `New.list` (type only).
pub fn load(env: &mut Env) -> Result<()> {
    load_source(env, &crate::list::module_source("Old."))?;
    load_source(env, NEW_LIST_SRC)
}

/// The names of the `Old.` module's constants, in dependency order — the
/// work list for `Repair module` (paper §2 "repair the entire list module").
pub const OLD_MODULE_CONSTANTS: &[&str] = &[
    "Old.app",
    "Old.rev",
    "Old.length",
    "Old.map",
    "Old.fold",
    "Old.app_nil_r",
    "Old.app_assoc",
    "Old.rev_app_distr",
    "Old.rev_involutive",
    "Old.length_app",
    "Old.rev_length",
    "Old.map_app",
    "Old.fold_app",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_types_load_with_swapped_orders() {
        let mut e = Env::new();
        crate::logic::load(&mut e).unwrap();
        crate::nat::load(&mut e).unwrap();
        load(&mut e).unwrap();
        let old = e.inductive(&"Old.list".into()).unwrap();
        assert_eq!(old.ctors[0].name.as_str(), "Old.nil");
        assert_eq!(old.ctors[1].name.as_str(), "Old.cons");
        let new = e.inductive(&"New.list".into()).unwrap();
        assert_eq!(new.ctors[0].name.as_str(), "New.cons");
        assert_eq!(new.ctors[1].name.as_str(), "New.nil");
        for c in OLD_MODULE_CONSTANTS {
            assert!(e.contains(c), "missing {c}");
        }
    }
}
