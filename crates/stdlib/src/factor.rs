//! Constructor factoring (paper Fig. 4 and §3.1.1): the type `I` with two
//! nullary constructors, the type `J` wrapping a `bool`, and the De Morgan
//! development over `I` that the case study repairs to `J`.

use pumpkin_kernel::env::Env;
use pumpkin_lang::error::Result;
use pumpkin_lang::load_source;

/// Vernacular source for the factoring case study.
pub const SRC: &str = r#"
Inductive I : Set :=
| A : I
| B : I.

Inductive J : Set :=
| makeJ : bool -> J.

Definition I.neg : I -> I :=
  fun (i : I) =>
    elim i : I return (fun (x : I) => I) with
    | B
    | A
    end.

(* and (i1 i2 : I) : I := I_rec _ i2 B i1  (paper section 3.1.1). *)
Definition I.and : I -> I -> I :=
  fun (i1 i2 : I) =>
    elim i1 : I return (fun (x : I) => I) with
    | i2
    | B
    end.

Definition I.or : I -> I -> I :=
  fun (i1 i2 : I) =>
    elim i1 : I return (fun (x : I) => I) with
    | A
    | i2
    end.

Definition I.demorgan_1 : forall (i1 i2 : I),
    eq I (I.neg (I.and i1 i2)) (I.or (I.neg i1) (I.neg i2)) :=
  fun (i1 i2 : I) =>
    elim i1 : I return (fun (x : I) =>
      eq I (I.neg (I.and x i2)) (I.or (I.neg x) (I.neg i2)))
    with
    | eq_refl I (I.neg i2)
    | eq_refl I A
    end.

Definition I.demorgan_2 : forall (i1 i2 : I),
    eq I (I.neg (I.or i1 i2)) (I.and (I.neg i1) (I.neg i2)) :=
  fun (i1 i2 : I) =>
    elim i1 : I return (fun (x : I) =>
      eq I (I.neg (I.or x i2)) (I.and (I.neg x) (I.neg i2)))
    with
    | eq_refl I B
    | eq_refl I (I.neg i2)
    end.
"#;

/// Loads the factoring case study types. Requires [`crate::logic`].
pub fn load(env: &mut Env) -> Result<()> {
    load_source(env, SRC)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pumpkin_kernel::prelude::*;
    use pumpkin_lang::term;

    #[test]
    fn loads_and_demorgan_holds() {
        let mut e = Env::new();
        crate::logic::load(&mut e).unwrap();
        load(&mut e).unwrap();
        for n in ["I.neg", "I.and", "I.or", "I.demorgan_1", "I.demorgan_2"] {
            assert!(e.contains(n), "missing {n}");
        }
        // A acts as truth, B as falsity: ¬(A ∧ B) = ¬B = A.
        let t = term(&e, "I.neg (I.and A B)").unwrap();
        assert_eq!(normalize(&e, &t), term(&e, "A").unwrap());
        let t = term(&e, "I.neg (I.or B A)").unwrap();
        assert_eq!(normalize(&e, &t), term(&e, "B").unwrap());
    }
}
