//! Core logical and data-structure primitives of the object language:
//! equality, `bool`, `unit`, `prod` (pairs), `sigT` (Σ types), and the
//! derived equality lemma library (`eq_sym`, `eq_trans`, `f_equal`,
//! `eq_rect`, `eq_ind_r`).
//!
//! Conventions: type parameters live in `Type 1`, container types in
//! `Type 1`, base data in `Set` (cumulativity lets `Set` data instantiate
//! `Type 1` parameters).

use pumpkin_kernel::env::Env;
use pumpkin_lang::error::Result;
use pumpkin_lang::load_source;

/// The vernacular source for the logic primitives.
pub const SRC: &str = r#"
Inductive bool : Set :=
| true : bool
| false : bool.

Inductive unit : Set :=
| tt : unit.

Inductive False : Prop :=.

Inductive eq (A : Type 1) (x : A) : A -> Prop :=
| eq_refl : eq A x x.

Inductive prod (A : Type 1) (B : Type 1) : Type 1 :=
| pair : A -> B -> prod A B.

Inductive sigT (A : Type 1) (P : A -> Type 1) : Type 1 :=
| existT : forall (x : A), P x -> sigT A P.

Inductive sum (A : Type 1) (B : Type 1) : Type 1 :=
| inl : A -> sum A B
| inr : B -> sum A B.

Inductive and (A : Prop) (B : Prop) : Prop :=
| conj : A -> B -> and A B.

Inductive or (A : Prop) (B : Prop) : Prop :=
| or_introl : A -> or A B
| or_intror : B -> or A B.

Definition negb : bool -> bool :=
  fun (b : bool) =>
    elim b : bool return (fun (x : bool) => bool) with
    | false
    | true
    end.

Definition andb : bool -> bool -> bool :=
  fun (a b : bool) =>
    elim a : bool return (fun (x : bool) => bool) with
    | b
    | false
    end.

Definition orb : bool -> bool -> bool :=
  fun (a b : bool) =>
    elim a : bool return (fun (x : bool) => bool) with
    | true
    | b
    end.

Definition fst : forall (A : Type 1) (B : Type 1), prod A B -> A :=
  fun (A : Type 1) (B : Type 1) (p : prod A B) =>
    elim p : prod A B return (fun (x : prod A B) => A) with
    | fun (a : A) (b : B) => a
    end.

Definition snd : forall (A : Type 1) (B : Type 1), prod A B -> B :=
  fun (A : Type 1) (B : Type 1) (p : prod A B) =>
    elim p : prod A B return (fun (x : prod A B) => B) with
    | fun (a : A) (b : B) => b
    end.

Definition projT1 : forall (A : Type 1) (P : A -> Type 1), sigT A P -> A :=
  fun (A : Type 1) (P : A -> Type 1) (s : sigT A P) =>
    elim s : sigT A P return (fun (x : sigT A P) => A) with
    | fun (x : A) (p : P x) => x
    end.

Definition projT2 : forall (A : Type 1) (P : A -> Type 1) (s : sigT A P), P (projT1 A P s) :=
  fun (A : Type 1) (P : A -> Type 1) (s : sigT A P) =>
    elim s : sigT A P return (fun (x : sigT A P) => P (projT1 A P x)) with
    | fun (x : A) (p : P x) => p
    end.

Definition eq_sym : forall (A : Type 1) (x : A) (y : A), eq A x y -> eq A y x :=
  fun (A : Type 1) (x : A) (y : A) (e : eq A x y) =>
    elim e : eq A x return (fun (y : A) (e : eq A x y) => eq A y x) with
    | eq_refl A x
    end.

Definition eq_trans : forall (A : Type 1) (x : A) (y : A) (z : A),
    eq A x y -> eq A y z -> eq A x z :=
  fun (A : Type 1) (x : A) (y : A) (z : A) (exy : eq A x y) (eyz : eq A y z) =>
    elim eyz : eq A y return (fun (z : A) (e : eq A y z) => eq A x z) with
    | exy
    end.

Definition f_equal : forall (A : Type 1) (B : Type 1) (f : A -> B) (x : A) (y : A),
    eq A x y -> eq B (f x) (f y) :=
  fun (A : Type 1) (B : Type 1) (f : A -> B) (x : A) (y : A) (e : eq A x y) =>
    elim e : eq A x return (fun (y : A) (e : eq A x y) => eq B (f x) (f y)) with
    | eq_refl B (f x)
    end.

Definition eq_rect : forall (A : Type 1) (x : A) (P : A -> Type 1),
    P x -> forall (y : A), eq A x y -> P y :=
  fun (A : Type 1) (x : A) (P : A -> Type 1) (p : P x) (y : A) (e : eq A x y) =>
    elim e : eq A x return (fun (y : A) (e : eq A x y) => P y) with
    | p
    end.

Definition eq_ind_r : forall (A : Type 1) (x : A) (P : A -> Type 1),
    P x -> forall (y : A), eq A y x -> P y :=
  fun (A : Type 1) (x : A) (P : A -> Type 1) (p : P x) (y : A) (e : eq A y x) =>
    eq_rect A x P p y (eq_sym A y x e).

Definition f_equal2 : forall (A : Type 1) (B : Type 1) (C : Type 1)
    (f : A -> B -> C) (x : A) (x' : A) (y : B) (y' : B),
    eq A x x' -> eq B y y' -> eq C (f x y) (f x' y') :=
  fun (A : Type 1) (B : Type 1) (C : Type 1) (f : A -> B -> C)
      (x : A) (x' : A) (y : B) (y' : B) (ex : eq A x x') (ey : eq B y y') =>
    eq_trans C (f x y) (f x' y) (f x' y')
      (f_equal A C (fun (a : A) => f a y) x x' ex)
      (f_equal B C (f x') y y' ey).

Definition False_rect : forall (P : Type 1), False -> P :=
  fun (P : Type 1) (f : False) =>
    elim f : False return (fun (x : False) => P) with
    end.

Definition not : Prop -> Prop := fun (P : Prop) => P -> False.
"#;

/// Loads the logic primitives into an environment.
pub fn load(env: &mut Env) -> Result<()> {
    load_source(env, SRC)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pumpkin_kernel::prelude::*;
    use pumpkin_lang::term;

    fn env() -> Env {
        let mut e = Env::new();
        load(&mut e).unwrap();
        e
    }

    #[test]
    fn loads_and_everything_typechecks() {
        let e = env();
        assert!(e.contains("eq"));
        assert!(e.contains("f_equal"));
        assert!(e.contains("projT2"));
    }

    #[test]
    fn booleans_compute() {
        let e = env();
        let t = term(&e, "andb true (negb false)").unwrap();
        assert_eq!(normalize(&e, &t), term(&e, "true").unwrap());
        let t = term(&e, "orb false false").unwrap();
        assert_eq!(normalize(&e, &t), term(&e, "false").unwrap());
    }

    #[test]
    fn projections_compute() {
        let e = env();
        let t = term(&e, "fst bool bool (pair bool bool true false)").unwrap();
        assert_eq!(normalize(&e, &t), term(&e, "true").unwrap());
        let t = term(
            &e,
            "projT2 bool (fun (b : bool) => bool) (existT bool (fun (b : bool) => bool) true false)",
        )
        .unwrap();
        assert_eq!(normalize(&e, &t), term(&e, "false").unwrap());
    }

    #[test]
    fn eq_lemmas_typecheck_and_compute() {
        let e = env();
        // eq_trans refl refl reduces to refl.
        let t = term(
            &e,
            "eq_trans bool true true true (eq_refl bool true) (eq_refl bool true)",
        )
        .unwrap();
        let ty = infer_closed(&e, &t).unwrap();
        assert!(conv(&e, &ty, &term(&e, "eq bool true true").unwrap()));
        assert_eq!(
            normalize(&e, &t),
            normalize(&e, &term(&e, "eq_refl bool true").unwrap())
        );
    }

    #[test]
    fn eq_ind_r_transports_backwards() {
        let e = env();
        let t = term(
            &e,
            "eq_ind_r bool true (fun (b : bool) => eq bool b b)
                 (eq_refl bool true) true (eq_refl bool true)",
        )
        .unwrap();
        assert!(infer_closed(&e, &t).is_ok());
    }
}
