//! Binary natural numbers (paper Fig. 9, right): `positive` and `N`, with
//! fast addition, Peano-style recursion (`Pos.peano_rect`, `N.peano_rect`),
//! and the simplification lemma `N.peano_rect_succ` that becomes the §6.3
//! case study's propositional `Iota`.
//!
//! Coq defines `Pos.peano_rect` with a nested fixpoint at motive `P ∘ xO`.
//! CIC_ω has only primitive eliminators, so we instead eliminate at the
//! *generalized* motive `fun p => ∀ P, P 1 → (∀ q, P q → P (succ q)) → P p`
//! and instantiate the induction hypothesis at `P ∘ xO` in the binary cases.
//! Every proof obligation that arises is definitional (because `Pos.succ`
//! ι-reduces), so the definition kernel-checks, and `peano_rect_succ` is
//! provable with `eq_refl` in all but the `xI` case — which is exactly the
//! induction hypothesis at `P ∘ xO`.

use pumpkin_kernel::env::Env;
use pumpkin_kernel::term::Term;
use pumpkin_lang::error::Result;
use pumpkin_lang::load_source;

/// Vernacular source for `positive` and `N`.
pub const SRC: &str = r#"
Inductive positive : Set :=
| xI : positive -> positive
| xO : positive -> positive
| xH : positive.

Definition Pos.succ : positive -> positive :=
  fun (p : positive) =>
    elim p : positive return (fun (x : positive) => positive) with
    | fun (q : positive) (ih : positive) => xO ih
    | fun (q : positive) (ih : positive) => xI q
    | xO xH
    end.

(* Fast (logarithmic) addition. Where Coq threads a carry through a second
   mutually recursive function, we use Pos.succ on the recursive result; the
   asymptotics stay logarithmic in the number of bits. *)
Definition Pos.add : positive -> positive -> positive :=
  fun (x : positive) =>
    elim x : positive return (fun (a : positive) => positive -> positive) with
    | fun (p : positive) (ih : positive -> positive) (y : positive) =>
        elim y : positive return (fun (b : positive) => positive) with
        | fun (r : positive) (ih2 : positive) => xO (Pos.succ (ih r))
        | fun (r : positive) (ih2 : positive) => xI (ih r)
        | xO (Pos.succ p)
        end
    | fun (p : positive) (ih : positive -> positive) (y : positive) =>
        elim y : positive return (fun (b : positive) => positive) with
        | fun (r : positive) (ih2 : positive) => xI (ih r)
        | fun (r : positive) (ih2 : positive) => xO (ih r)
        | xI p
        end
    | fun (y : positive) => Pos.succ y
    end.

Inductive N : Set :=
| N0 : N
| Npos : positive -> N.

Definition N.succ : N -> N :=
  fun (n : N) =>
    elim n : N return (fun (x : N) => N) with
    | Npos xH
    | fun (p : positive) => Npos (Pos.succ p)
    end.

Definition N.add : N -> N -> N :=
  fun (n m : N) =>
    elim n : N return (fun (x : N) => N) with
    | m
    | fun (p : positive) =>
        elim m : N return (fun (y : N) => N) with
        | Npos p
        | fun (q : positive) => Npos (Pos.add p q)
        end
    end.

(* Peano recursion over positive, at a generalized motive. *)
Definition Pos.peano_rect_gen : forall (p : positive) (P : positive -> Type 1),
    P xH -> (forall (q : positive), P q -> P (Pos.succ q)) -> P p :=
  fun (p : positive) =>
    elim p : positive return (fun (p : positive) =>
      forall (P : positive -> Type 1),
        P xH -> (forall (q : positive), P q -> P (Pos.succ q)) -> P p)
    with
    | fun (q : positive)
          (IH : forall (P : positive -> Type 1),
            P xH -> (forall (r : positive), P r -> P (Pos.succ r)) -> P q)
          (P : positive -> Type 1) (a : P xH)
          (f : forall (r : positive), P r -> P (Pos.succ r)) =>
        f (xO q)
          (IH (fun (r : positive) => P (xO r))
              (f xH a)
              (fun (r : positive) (x : P (xO r)) => f (xI r) (f (xO r) x)))
    | fun (q : positive)
          (IH : forall (P : positive -> Type 1),
            P xH -> (forall (r : positive), P r -> P (Pos.succ r)) -> P q)
          (P : positive -> Type 1) (a : P xH)
          (f : forall (r : positive), P r -> P (Pos.succ r)) =>
        IH (fun (r : positive) => P (xO r))
           (f xH a)
           (fun (r : positive) (x : P (xO r)) => f (xI r) (f (xO r) x))
    | fun (P : positive -> Type 1) (a : P xH)
          (f : forall (r : positive), P r -> P (Pos.succ r)) => a
    end.

Definition Pos.peano_rect : forall (P : positive -> Type 1),
    P xH -> (forall (q : positive), P q -> P (Pos.succ q)) ->
    forall (p : positive), P p :=
  fun (P : positive -> Type 1) (a : P xH)
      (f : forall (q : positive), P q -> P (Pos.succ q)) (p : positive) =>
    Pos.peano_rect_gen p P a f.

(* The simplification (refolding) lemma: Peano recursion at a successor
   steps once. All cases but xI hold by reflexivity; xI is the induction
   hypothesis at motive P-after-xO. *)
Definition Pos.peano_rect_succ : forall (P : positive -> Type 1)
    (a : P xH) (f : forall (q : positive), P q -> P (Pos.succ q)) (p : positive),
    eq (P (Pos.succ p))
       (Pos.peano_rect P a f (Pos.succ p))
       (f p (Pos.peano_rect P a f p)) :=
  fun (P0 : positive -> Type 1) (a0 : P0 xH)
      (f0 : forall (q : positive), P0 q -> P0 (Pos.succ q)) (p : positive) =>
    elim p : positive return (fun (p : positive) =>
      forall (P : positive -> Type 1) (a : P xH)
             (f : forall (q : positive), P q -> P (Pos.succ q)),
        eq (P (Pos.succ p))
           (Pos.peano_rect P a f (Pos.succ p))
           (f p (Pos.peano_rect P a f p)))
    with
    | fun (q : positive)
          (IH : forall (P : positive -> Type 1) (a : P xH)
                       (f : forall (r : positive), P r -> P (Pos.succ r)),
            eq (P (Pos.succ q))
               (Pos.peano_rect P a f (Pos.succ q))
               (f q (Pos.peano_rect P a f q)))
          (P : positive -> Type 1) (a : P xH)
          (f : forall (q : positive), P q -> P (Pos.succ q)) =>
        IH (fun (r : positive) => P (xO r))
           (f xH a)
           (fun (r : positive) (x : P (xO r)) => f (xI r) (f (xO r) x))
    | fun (q : positive)
          (IH : forall (P : positive -> Type 1) (a : P xH)
                       (f : forall (r : positive), P r -> P (Pos.succ r)),
            eq (P (Pos.succ q))
               (Pos.peano_rect P a f (Pos.succ q))
               (f q (Pos.peano_rect P a f q)))
          (P : positive -> Type 1) (a : P xH)
          (f : forall (q : positive), P q -> P (Pos.succ q)) =>
        eq_refl (P (Pos.succ (xO q))) (Pos.peano_rect P a f (Pos.succ (xO q)))
    | fun (P : positive -> Type 1) (a : P xH)
          (f : forall (q : positive), P q -> P (Pos.succ q)) =>
        eq_refl (P (Pos.succ xH)) (Pos.peano_rect P a f (Pos.succ xH))
    end P0 a0 f0.

(* Peano recursion over N. *)
Definition N.peano_rect : forall (P : N -> Type 1),
    P N0 -> (forall (n : N), P n -> P (N.succ n)) -> forall (n : N), P n :=
  fun (P : N -> Type 1) (a : P N0)
      (f : forall (n : N), P n -> P (N.succ n)) (n : N) =>
    elim n : N return (fun (x : N) => P x) with
    | a
    | fun (p : positive) =>
        Pos.peano_rect_gen p (fun (q : positive) => P (Npos q))
          (f N0 a)
          (fun (q : positive) (x : P (Npos q)) => f (Npos q) x)
    end.

Definition N.peano_rect_succ : forall (P : N -> Type 1)
    (a : P N0) (f : forall (n : N), P n -> P (N.succ n)) (n : N),
    eq (P (N.succ n))
       (N.peano_rect P a f (N.succ n))
       (f n (N.peano_rect P a f n)) :=
  fun (P : N -> Type 1) (a : P N0)
      (f : forall (n : N), P n -> P (N.succ n)) (n : N) =>
    elim n : N return (fun (x : N) =>
      eq (P (N.succ x))
         (N.peano_rect P a f (N.succ x))
         (f x (N.peano_rect P a f x)))
    with
    | eq_refl (P (N.succ N0)) (N.peano_rect P a f (N.succ N0))
    | fun (p : positive) =>
        Pos.peano_rect_succ (fun (q : positive) => P (Npos q))
          (f N0 a)
          (fun (q : positive) (x : P (Npos q)) => f (Npos q) x)
          p
    end.

(* Conversions with nat, and the equivalence proofs the manual nat-to-N
   configuration is validated against (paper section 6.3). *)
Definition N.of_nat : nat -> N :=
  fun (n : nat) =>
    elim n : nat return (fun (x : nat) => N) with
    | N0
    | fun (p : nat) (ih : N) => N.succ ih
    end.

Definition N.to_nat : N -> nat :=
  N.peano_rect (fun (x : N) => nat) O (fun (x : N) (ih : nat) => S ih).

Definition N.of_to_section : forall (n : nat), eq nat (N.to_nat (N.of_nat n)) n :=
  fun (n : nat) =>
    elim n : nat return (fun (x : nat) => eq nat (N.to_nat (N.of_nat x)) x) with
    | eq_refl nat O
    | fun (p : nat) (ih : eq nat (N.to_nat (N.of_nat p)) p) =>
        eq_trans nat
          (N.to_nat (N.of_nat (S p)))
          (S (N.to_nat (N.of_nat p)))
          (S p)
          (N.peano_rect_succ (fun (x : N) => nat) O
            (fun (x : N) (ih2 : nat) => S ih2) (N.of_nat p))
          (f_equal nat nat S (N.to_nat (N.of_nat p)) p ih)
    end.

Definition N.to_of_retraction : forall (m : N), eq N (N.of_nat (N.to_nat m)) m :=
  fun (m : N) =>
    N.peano_rect (fun (x : N) => eq N (N.of_nat (N.to_nat x)) x)
      (eq_refl N N0)
      (fun (x : N) (ih : eq N (N.of_nat (N.to_nat x)) x) =>
        eq_trans N
          (N.of_nat (N.to_nat (N.succ x)))
          (N.succ (N.of_nat (N.to_nat x)))
          (N.succ x)
          (f_equal nat N N.of_nat (N.to_nat (N.succ x)) (S (N.to_nat x))
            (N.peano_rect_succ (fun (y : N) => nat) O
              (fun (y : N) (ih2 : nat) => S ih2) x))
          (f_equal N N N.succ (N.of_nat (N.to_nat x)) x ih))
      m.

(* Successor distributes over fast addition on the left: the positive-level
   fact behind N.add_succ_l, used to relate repaired slow addition to fast
   addition. *)
Definition Pos.add_succ_l : forall (p q : positive),
    eq positive (Pos.add (Pos.succ p) q) (Pos.succ (Pos.add p q)) :=
  fun (p : positive) =>
    elim p : positive return (fun (p : positive) => forall (q : positive),
      eq positive (Pos.add (Pos.succ p) q) (Pos.succ (Pos.add p q)))
    with
    | fun (p' : positive)
          (IH : forall (q : positive),
            eq positive (Pos.add (Pos.succ p') q) (Pos.succ (Pos.add p' q)))
          (q : positive) =>
        elim q : positive return (fun (y : positive) =>
          eq positive (Pos.add (Pos.succ (xI p')) y) (Pos.succ (Pos.add (xI p') y)))
        with
        | fun (r : positive) (ih2 : eq positive
              (Pos.add (Pos.succ (xI p')) r) (Pos.succ (Pos.add (xI p') r))) =>
            f_equal positive positive xI
              (Pos.add (Pos.succ p') r) (Pos.succ (Pos.add p' r)) (IH r)
        | fun (r : positive) (ih2 : eq positive
              (Pos.add (Pos.succ (xI p')) r) (Pos.succ (Pos.add (xI p') r))) =>
            f_equal positive positive xO
              (Pos.add (Pos.succ p') r) (Pos.succ (Pos.add p' r)) (IH r)
        | eq_refl positive (xI (Pos.succ p'))
        end
    | fun (p' : positive)
          (IH : forall (q : positive),
            eq positive (Pos.add (Pos.succ p') q) (Pos.succ (Pos.add p' q)))
          (q : positive) =>
        elim q : positive return (fun (y : positive) =>
          eq positive (Pos.add (Pos.succ (xO p')) y) (Pos.succ (Pos.add (xO p') y)))
        with
        | fun (r : positive) (ih2 : eq positive
              (Pos.add (Pos.succ (xO p')) r) (Pos.succ (Pos.add (xO p') r))) =>
            eq_refl positive (xO (Pos.succ (Pos.add p' r)))
        | fun (r : positive) (ih2 : eq positive
              (Pos.add (Pos.succ (xO p')) r) (Pos.succ (Pos.add (xO p') r))) =>
            eq_refl positive (xI (Pos.add p' r))
        | eq_refl positive (xO (Pos.succ p'))
        end
    | fun (q : positive) =>
        elim q : positive return (fun (y : positive) =>
          eq positive (Pos.add (Pos.succ xH) y) (Pos.succ (Pos.add xH y)))
        with
        | fun (r : positive) (ih2 : eq positive
              (Pos.add (Pos.succ xH) r) (Pos.succ (Pos.add xH r))) =>
            eq_refl positive (xI (Pos.succ r))
        | fun (r : positive) (ih2 : eq positive
              (Pos.add (Pos.succ xH) r) (Pos.succ (Pos.add xH r))) =>
            eq_refl positive (xO (Pos.succ r))
        | eq_refl positive (xI xH)
        end
    end.

Definition N.add_succ_l : forall (n m : N),
    eq N (N.add (N.succ n) m) (N.succ (N.add n m)) :=
  fun (n : N) =>
    elim n : N return (fun (x : N) => forall (m : N),
      eq N (N.add (N.succ x) m) (N.succ (N.add x m)))
    with
    | fun (m : N) =>
        elim m : N return (fun (y : N) =>
          eq N (N.add (N.succ N0) y) (N.succ (N.add N0 y)))
        with
        | eq_refl N (Npos xH)
        | fun (q : positive) => eq_refl N (Npos (Pos.succ q))
        end
    | fun (p : positive) (m : N) =>
        elim m : N return (fun (y : N) =>
          eq N (N.add (N.succ (Npos p)) y) (N.succ (N.add (Npos p) y)))
        with
        | eq_refl N (Npos (Pos.succ p))
        | fun (q : positive) =>
            f_equal positive N Npos
              (Pos.add (Pos.succ p) q) (Pos.succ (Pos.add p q))
              (Pos.add_succ_l p q)
        end
    end.
"#;

/// Loads `positive` and `N` (requires [`crate::logic`] and [`crate::nat`]).
pub fn load(env: &mut Env) -> Result<()> {
    load_source(env, SRC)
}

/// Builds a `positive` literal (`n ≥ 1`) from its binary representation.
///
/// # Panics
///
/// Panics if `n == 0` (`positive` has no zero).
pub fn pos_lit(n: u64) -> Term {
    assert!(n >= 1, "positive literals start at 1");
    if n == 1 {
        Term::construct("positive", 2)
    } else if n.is_multiple_of(2) {
        Term::app(Term::construct("positive", 1), [pos_lit(n / 2)])
    } else {
        Term::app(Term::construct("positive", 0), [pos_lit(n / 2)])
    }
}

/// Builds an `N` literal.
pub fn n_lit(n: u64) -> Term {
    if n == 0 {
        Term::construct("N", 0)
    } else {
        Term::app(Term::construct("N", 1), [pos_lit(n)])
    }
}

/// Reads a normalized `N` term back as a number, if it is a literal.
pub fn n_value(t: &Term) -> Option<u64> {
    fn pos_value(t: &Term) -> Option<u64> {
        let (ind, j, args) = t.as_construct_app()?;
        if ind.as_str() != "positive" {
            return None;
        }
        match (j, args.len()) {
            (2, 0) => Some(1),
            (1, 1) => pos_value(&args[0]).map(|v| v * 2),
            (0, 1) => pos_value(&args[0]).map(|v| v * 2 + 1),
            _ => None,
        }
    }
    let (ind, j, args) = t.as_construct_app()?;
    if ind.as_str() != "N" {
        return None;
    }
    match (j, args.len()) {
        (0, 0) => Some(0),
        (1, 1) => pos_value(&args[0]),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nat::{nat_lit, nat_value};
    use pumpkin_kernel::prelude::*;

    fn env() -> Env {
        let mut e = Env::new();
        crate::logic::load(&mut e).unwrap();
        crate::nat::load(&mut e).unwrap();
        load(&mut e).unwrap();
        e
    }

    #[test]
    fn whole_module_loads() {
        let e = env();
        for name in [
            "Pos.succ",
            "Pos.add",
            "Pos.peano_rect",
            "Pos.peano_rect_succ",
            "N.peano_rect",
            "N.peano_rect_succ",
            "N.of_to_section",
            "N.to_of_retraction",
            "Pos.add_succ_l",
            "N.add_succ_l",
        ] {
            assert!(e.contains(name), "missing {name}");
        }
    }

    #[test]
    fn literals_roundtrip() {
        for n in [0u64, 1, 2, 3, 4, 5, 6, 7, 100, 255, 256, 1023] {
            assert_eq!(n_value(&n_lit(n)), Some(n));
        }
    }

    #[test]
    fn fast_addition_computes() {
        let e = env();
        for (a, b) in [(0u64, 0u64), (1, 1), (2, 3), (13, 29), (100, 155), (127, 1)] {
            let t = Term::app(Term::const_("N.add"), [n_lit(a), n_lit(b)]);
            assert_eq!(n_value(&normalize(&e, &t)), Some(a + b), "{a}+{b}");
        }
    }

    #[test]
    fn succ_computes() {
        let e = env();
        for n in [0u64, 1, 2, 3, 7, 8, 127] {
            let t = Term::app(Term::const_("N.succ"), [n_lit(n)]);
            assert_eq!(n_value(&normalize(&e, &t)), Some(n + 1), "succ {n}");
        }
    }

    #[test]
    fn peano_rect_computes_like_unary_recursion() {
        let e = env();
        // N.to_nat (peano recursion) agrees with the literal value.
        for n in [0u64, 1, 5, 16, 33] {
            let t = Term::app(Term::const_("N.to_nat"), [n_lit(n)]);
            assert_eq!(nat_value(&normalize(&e, &t)), Some(n), "to_nat {n}");
        }
        for n in [0u64, 1, 9] {
            let t = Term::app(Term::const_("N.of_nat"), [nat_lit(n)]);
            assert_eq!(n_value(&normalize(&e, &t)), Some(n), "of_nat {n}");
        }
    }

    #[test]
    fn peano_rect_succ_instances_hold_by_conversion() {
        // The lemma's statement at a closed instance is a reflexive equation
        // after normalization; spot-check the two sides converge.
        let e = env();
        let p = Term::lambda("x", Term::ind("N"), Term::ind("nat"));
        let f = Term::lambda(
            "x",
            Term::ind("N"),
            Term::lambda("ih", Term::ind("nat"), {
                Term::app(Term::construct("nat", 1), [Term::rel(0)])
            }),
        );
        let n = n_lit(6);
        let lhs = Term::app(
            Term::const_("N.peano_rect"),
            [
                p.clone(),
                nat_lit(0),
                f.clone(),
                Term::app(Term::const_("N.succ"), [n.clone()]),
            ],
        );
        let rhs = Term::app(
            f.clone(),
            [
                n.clone(),
                Term::app(Term::const_("N.peano_rect"), [p, nat_lit(0), f, n]),
            ],
        );
        assert!(conv(&e, &lhs, &rhs));
    }
}
