//! Length-indexed vectors (paper Fig. 5, right).
//!
//! Only the type and a handful of basics are defined by hand: the vector
//! versions of `zip`, `zip_with`, and `zip_with_is_zip` are *produced by
//! repair* in the §6.2 case study, not written here.

use pumpkin_kernel::env::Env;
use pumpkin_kernel::term::Term;
use pumpkin_lang::error::Result;
use pumpkin_lang::load_source;

/// Vernacular source for `vector`.
pub const SRC: &str = r#"
Inductive vector (T : Type 1) : nat -> Type 1 :=
| vnil : vector T O
| vcons : forall (t : T) (n : nat), vector T n -> vector T (S n).

Definition vector_hd : forall (T : Type 1) (n : nat), vector T (S n) -> T -> T :=
  fun (T : Type 1) (n : nat) (v : vector T (S n)) (default : T) =>
    elim v : vector T
      return (fun (m : nat) (x : vector T m) => T)
    with
    | default
    | fun (t : T) (m : nat) (v' : vector T m) (ih : T) => t
    end.

Definition vector_length : forall (T : Type 1) (n : nat), vector T n -> nat :=
  fun (T : Type 1) (n : nat) (v : vector T n) =>
    elim v : vector T
      return (fun (m : nat) (x : vector T m) => nat)
    with
    | O
    | fun (t : T) (m : nat) (v' : vector T m) (ih : nat) => S ih
    end.

(* A vector's recomputed length is its index. *)
Definition vector_length_is_index : forall (T : Type 1) (n : nat) (v : vector T n),
    eq nat (vector_length T n v) n :=
  fun (T : Type 1) (n : nat) (v : vector T n) =>
    elim v : vector T
      return (fun (m : nat) (x : vector T m) => eq nat (vector_length T m x) m)
    with
    | eq_refl nat O
    | fun (t : T) (m : nat) (v' : vector T m)
          (ih : eq nat (vector_length T m v') m) =>
        f_equal nat nat S (vector_length T m v') m ih
    end.
"#;

/// Loads `vector` (requires [`crate::logic`] and [`crate::nat`]).
pub fn load(env: &mut Env) -> Result<()> {
    load_source(env, SRC)
}

/// Builds a vector literal with the given element type from element terms
/// (index arguments are synthesized).
pub fn vector_lit(elem_ty: Term, elems: &[Term]) -> Term {
    let mut t = Term::app(Term::construct("vector", 0), [elem_ty.clone()]);
    let mut len = crate::nat::nat_lit(0);
    for e in elems.iter().rev() {
        t = Term::app(
            Term::construct("vector", 1),
            [elem_ty.clone(), e.clone(), len.clone(), t],
        );
        len = Term::app(Term::construct("nat", 1), [len]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nat::{nat_lit, nat_value};
    use pumpkin_kernel::prelude::*;

    fn env() -> Env {
        let mut e = Env::new();
        crate::logic::load(&mut e).unwrap();
        crate::nat::load(&mut e).unwrap();
        load(&mut e).unwrap();
        e
    }

    #[test]
    fn vector_literals_typecheck_at_their_length() {
        let e = env();
        let v = vector_lit(Term::ind("nat"), &[nat_lit(7), nat_lit(8)]);
        let ty = infer_closed(&e, &v).unwrap();
        let expected = Term::app(Term::ind("vector"), [Term::ind("nat"), nat_lit(2)]);
        assert!(conv(&e, &ty, &expected));
    }

    #[test]
    fn head_and_length_compute() {
        let e = env();
        let v = vector_lit(Term::ind("nat"), &[nat_lit(7), nat_lit(8)]);
        let hd = Term::app(
            Term::const_("vector_hd"),
            [Term::ind("nat"), nat_lit(1), v.clone(), nat_lit(0)],
        );
        assert_eq!(nat_value(&normalize(&e, &hd)), Some(7));
        let len = Term::app(
            Term::const_("vector_length"),
            [Term::ind("nat"), nat_lit(2), v],
        );
        assert_eq!(nat_value(&normalize(&e, &len)), Some(2));
    }

    #[test]
    fn dependent_lemma_typechecks() {
        let e = env();
        assert!(e.contains("vector_length_is_index"));
    }
}
