//! # pumpkin-stdlib
//!
//! The object-language standard library for the Pumpkin Pi reproduction:
//! every type, function, and lemma the paper's case studies depend on,
//! reconstructed in CIC_ω and checked by the kernel at load time.
//!
//! Modules mirror the paper's substrates:
//!
//! * [`logic`] — `eq`, `bool`, `prod`, `sigT`, `or`, and the equality lemma
//!   library (`f_equal`, `eq_rect`, …).
//! * [`nat`] — unary naturals and `add_n_Sm` (§6.3's transported proof).
//! * [`list`] — the list module (app/rev/length/map and the §2 proofs),
//!   parameterized by a name prefix, plus zip/zip_with (§6.2).
//! * [`swap`] — `Old.list` / `New.list` with swapped constructors (Fig. 1).
//! * [`vector`] — length-indexed vectors (Fig. 5).
//! * [`bin`] — `positive` / `N` with Peano recursion and
//!   `peano_rect_succ` (Fig. 9, §6.3).
//! * [`replica`] — the user-study `Term` language and variants (Fig. 16).
//! * [`factor`] — constructor factoring `I` / `J` (Fig. 4).
//! * [`galois`] — nested tuples vs. records, `cork`, `corkLemma` (Fig. 17).

pub mod bin;
pub mod factor;
pub mod galois;
pub mod list;
pub mod logic;
pub mod nat;
pub mod replica;
pub mod swap;
pub mod vector;

use pumpkin_kernel::env::Env;

/// An environment with the full standard library loaded.
///
/// # Panics
///
/// Panics if any stdlib module fails to load — that would be a bug, since
/// every module is covered by tests.
pub fn std_env() -> Env {
    let mut env = Env::new();
    logic::load(&mut env).expect("logic loads");
    nat::load(&mut env).expect("nat loads");
    list::load(&mut env).expect("list loads");
    swap::load(&mut env).expect("swap lists load");
    vector::load(&mut env).expect("vector loads");
    bin::load(&mut env).expect("bin loads");
    replica::load(&mut env).expect("replica loads");
    factor::load(&mut env).expect("factor loads");
    galois::load(&mut env).expect("galois loads");
    env
}

#[cfg(test)]
mod tests {
    #[test]
    fn std_env_builds() {
        let env = super::std_env();
        assert!(env.contains("rev_app_distr"));
        assert!(env.contains("N.peano_rect_succ"));
        assert!(env.contains("Old.Term"));
        assert!(env.contains("corkLemma"));
    }
}
