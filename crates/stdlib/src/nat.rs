//! Unary natural numbers and their arithmetic (paper Fig. 9, left), plus the
//! lemmas the nat→N case study (paper §6.3) transports.

use pumpkin_kernel::env::Env;
use pumpkin_kernel::term::Term;
use pumpkin_lang::error::Result;
use pumpkin_lang::load_source;

/// Vernacular source for `nat`.
pub const SRC: &str = r#"
Inductive nat : Set :=
| O : nat
| S : nat -> nat.

Definition add : nat -> nat -> nat :=
  fun (n m : nat) =>
    elim n : nat return (fun (x : nat) => nat) with
    | m
    | fun (p : nat) (ih : nat) => S ih
    end.

Definition mul : nat -> nat -> nat :=
  fun (n m : nat) =>
    elim n : nat return (fun (x : nat) => nat) with
    | O
    | fun (p : nat) (ih : nat) => add m ih
    end.

Definition pred : nat -> nat :=
  fun (n : nat) =>
    elim n : nat return (fun (x : nat) => nat) with
    | O
    | fun (p : nat) (ih : nat) => p
    end.

Definition sub : nat -> nat -> nat :=
  fun (n m : nat) =>
    elim m : nat return (fun (x : nat) => nat) with
    | n
    | fun (p : nat) (ih : nat) => pred ih
    end.

Definition b2n : bool -> nat :=
  fun (b : bool) =>
    elim b : bool return (fun (x : bool) => nat) with
    | S O
    | O
    end.

Definition nat_eqb : nat -> nat -> bool :=
  fun (n : nat) =>
    elim n : nat return (fun (x : nat) => nat -> bool) with
    | fun (m : nat) =>
        elim m : nat return (fun (y : nat) => bool) with
        | true
        | fun (q : nat) (ih : bool) => false
        end
    | fun (p : nat) (ih : nat -> bool) (m : nat) =>
        elim m : nat return (fun (y : nat) => bool) with
        | false
        | fun (q : nat) (ih2 : bool) => ih q
        end
    end.

(* Successor is injective (via pred), used by the length-invariant
   lemmas of the vectors-from-lists study. *)
Definition S_inj : forall (a b : nat), eq nat (S a) (S b) -> eq nat a b :=
  fun (a b : nat) (H : eq nat (S a) (S b)) =>
    f_equal nat nat pred (S a) (S b) H.

(* S (add n m) = add n (S m), proved by induction on n -- the proof the
   nat-to-N case study repairs (paper section 6.3). Over nat, both equations
   in the inductive step hold definitionally. *)
Definition add_n_Sm : forall (n m : nat), eq nat (S (add n m)) (add n (S m)) :=
  fun (n m : nat) =>
    elim n : nat return (fun (x : nat) => eq nat (S (add x m)) (add x (S m))) with
    | eq_refl nat (S m)
    | fun (p : nat) (ih : eq nat (S (add p m)) (add p (S m))) =>
        f_equal nat nat S (S (add p m)) (add p (S m)) ih
    end.

(* add n O = n. *)
Definition add_n_O : forall (n : nat), eq nat (add n O) n :=
  fun (n : nat) =>
    elim n : nat return (fun (x : nat) => eq nat (add x O) x) with
    | eq_refl nat O
    | fun (p : nat) (ih : eq nat (add p O) p) =>
        f_equal nat nat S (add p O) p ih
    end.

(* add n (S O) = S n: the unit shift used by rev_length. *)
Definition add_1_r : forall (n : nat), eq nat (add n (S O)) (S n) :=
  fun (n : nat) =>
    eq_trans nat (add n (S O)) (S (add n O)) (S n)
      (eq_sym nat (S (add n O)) (add n (S O)) (add_n_Sm n O))
      (f_equal nat nat S (add n O) n (add_n_O n)).

(* Commutativity of addition, from add_n_O and add_n_Sm. *)
Definition add_comm : forall (n m : nat), eq nat (add n m) (add m n) :=
  fun (n m : nat) =>
    elim n : nat return (fun (x : nat) => eq nat (add x m) (add m x)) with
    | eq_sym nat (add m O) m (add_n_O m)
    | fun (p : nat) (ih : eq nat (add p m) (add m p)) =>
        eq_trans nat (S (add p m)) (S (add m p)) (add m (S p))
          (f_equal nat nat S (add p m) (add m p) ih)
          (add_n_Sm m p)
    end.

(* Associativity of addition. *)
Definition add_assoc : forall (a b c : nat),
    eq nat (add a (add b c)) (add (add a b) c) :=
  fun (a b c : nat) =>
    elim a : nat
      return (fun (x : nat) => eq nat (add x (add b c)) (add (add x b) c))
    with
    | eq_refl nat (add b c)
    | fun (p : nat) (ih : eq nat (add p (add b c)) (add (add p b) c)) =>
        f_equal nat nat S (add p (add b c)) (add (add p b) c) ih
    end.

"#;

/// Loads `nat` (requires [`crate::logic`] to be loaded first).
pub fn load(env: &mut Env) -> Result<()> {
    load_source(env, SRC)
}

/// Builds the numeral `n` as a `nat` term.
pub fn nat_lit(n: u64) -> Term {
    let mut t = Term::construct("nat", 0);
    for _ in 0..n {
        t = Term::app(Term::construct("nat", 1), [t]);
    }
    t
}

/// Reads a normalized `nat` term back as a number, if it is a numeral.
pub fn nat_value(t: &Term) -> Option<u64> {
    let mut t = t.clone();
    let mut n = 0u64;
    loop {
        if let Some((ind, j, args)) = t.as_construct_app() {
            if ind.as_str() != "nat" {
                return None;
            }
            match (j, args.len()) {
                (0, 0) => return Some(n),
                (1, 1) => {
                    n += 1;
                    t = args[0].clone();
                }
                _ => return None,
            }
        } else {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pumpkin_kernel::prelude::*;
    use pumpkin_lang::term;

    fn env() -> Env {
        let mut e = Env::new();
        crate::logic::load(&mut e).unwrap();
        load(&mut e).unwrap();
        e
    }

    #[test]
    fn arithmetic_computes() {
        let e = env();
        let t = Term::app(Term::const_("add"), [nat_lit(17), nat_lit(25)]);
        assert_eq!(nat_value(&normalize(&e, &t)), Some(42));
        let t = Term::app(Term::const_("mul"), [nat_lit(6), nat_lit(7)]);
        assert_eq!(nat_value(&normalize(&e, &t)), Some(42));
        let t = Term::app(Term::const_("pred"), [nat_lit(0)]);
        assert_eq!(nat_value(&normalize(&e, &t)), Some(0));
    }

    #[test]
    fn eqb_decides() {
        let e = env();
        let t = Term::app(Term::const_("nat_eqb"), [nat_lit(5), nat_lit(5)]);
        assert_eq!(normalize(&e, &t), term(&e, "true").unwrap());
        let t = Term::app(Term::const_("nat_eqb"), [nat_lit(5), nat_lit(6)]);
        assert_eq!(normalize(&e, &t), term(&e, "false").unwrap());
    }

    #[test]
    fn lemmas_typecheck() {
        let e = env();
        // The environment loader already type checked them; sanity-check an
        // instance.
        let inst = term(&e, "add_n_Sm (S O) (S (S O))").unwrap();
        let ty = infer_closed(&e, &inst).unwrap();
        let expected = term(
            &e,
            "eq nat (S (add (S O) (S (S O)))) (add (S O) (S (S (S O))))",
        )
        .unwrap();
        assert!(conv(&e, &ty, &expected));
    }

    #[test]
    fn nat_value_rejects_non_numerals() {
        assert_eq!(nat_value(&Term::const_("add")), None);
        assert_eq!(nat_value(&nat_lit(9)), Some(9));
    }
}
