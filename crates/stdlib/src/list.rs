//! Polymorphic lists: the paper's running example type (Fig. 1, left).
//!
//! The module is generated from a prefix-parameterized template so that the
//! same functions and proofs exist both for the standard `list` (used by the
//! vectors-from-lists study, §6.2) and for `Old.list` (the swap benchmark of
//! §2 and §6.1). The `New.*` side is *not* written by hand: producing it is
//! Pumpkin Pi's job.

use pumpkin_kernel::env::Env;
use pumpkin_kernel::term::Term;
use pumpkin_lang::error::Result;
use pumpkin_lang::load_source;

/// The list module template. `{P}` is the name prefix (`""` or `"Old."`).
///
/// Contents: the inductive type, `app`, `rev`, `length`, `map`, and the
/// lemmas `app_nil_r`, `app_assoc`, `rev_app_distr` (the paper's §2 running
/// example), and `rev_involutive`.
const TEMPLATE: &str = r#"
Inductive {P}list (T : Type 1) : Type 1 :=
| {P}nil : {P}list T
| {P}cons : T -> {P}list T -> {P}list T.

Definition {P}app : forall (T : Type 1), {P}list T -> {P}list T -> {P}list T :=
  fun (T : Type 1) (l m : {P}list T) =>
    elim l : {P}list T return (fun (x : {P}list T) => {P}list T) with
    | m
    | fun (t : T) (l' : {P}list T) (ih : {P}list T) => {P}cons T t ih
    end.

Definition {P}rev : forall (T : Type 1), {P}list T -> {P}list T :=
  fun (T : Type 1) (l : {P}list T) =>
    elim l : {P}list T return (fun (x : {P}list T) => {P}list T) with
    | {P}nil T
    | fun (t : T) (l' : {P}list T) (ih : {P}list T) =>
        {P}app T ih ({P}cons T t ({P}nil T))
    end.

Definition {P}length : forall (T : Type 1), {P}list T -> nat :=
  fun (T : Type 1) (l : {P}list T) =>
    elim l : {P}list T return (fun (x : {P}list T) => nat) with
    | O
    | fun (t : T) (l' : {P}list T) (ih : nat) => S ih
    end.

Definition {P}map : forall (A : Type 1) (B : Type 1), (A -> B) -> {P}list A -> {P}list B :=
  fun (A : Type 1) (B : Type 1) (f : A -> B) (l : {P}list A) =>
    elim l : {P}list A return (fun (x : {P}list A) => {P}list B) with
    | {P}nil B
    | fun (a : A) (l' : {P}list A) (ih : {P}list B) => {P}cons B (f a) ih
    end.

Definition {P}app_nil_r : forall (T : Type 1) (l : {P}list T),
    eq ({P}list T) ({P}app T l ({P}nil T)) l :=
  fun (T : Type 1) (l : {P}list T) =>
    elim l : {P}list T
      return (fun (x : {P}list T) => eq ({P}list T) ({P}app T x ({P}nil T)) x)
    with
    | eq_refl ({P}list T) ({P}nil T)
    | fun (t : T) (l' : {P}list T)
          (ih : eq ({P}list T) ({P}app T l' ({P}nil T)) l') =>
        f_equal ({P}list T) ({P}list T) ({P}cons T t)
          ({P}app T l' ({P}nil T)) l' ih
    end.

Definition {P}app_assoc : forall (T : Type 1) (l m n : {P}list T),
    eq ({P}list T) ({P}app T l ({P}app T m n)) ({P}app T ({P}app T l m) n) :=
  fun (T : Type 1) (l m n : {P}list T) =>
    elim l : {P}list T
      return (fun (x : {P}list T) =>
        eq ({P}list T) ({P}app T x ({P}app T m n)) ({P}app T ({P}app T x m) n))
    with
    | eq_refl ({P}list T) ({P}app T m n)
    | fun (t : T) (l' : {P}list T)
          (ih : eq ({P}list T) ({P}app T l' ({P}app T m n))
                               ({P}app T ({P}app T l' m) n)) =>
        f_equal ({P}list T) ({P}list T) ({P}cons T t)
          ({P}app T l' ({P}app T m n)) ({P}app T ({P}app T l' m) n) ih
    end.

(* The paper's running example (section 2): reversal distributes over
   append, contravariantly. *)
Definition {P}rev_app_distr : forall (T : Type 1) (x y : {P}list T),
    eq ({P}list T) ({P}rev T ({P}app T x y))
                   ({P}app T ({P}rev T y) ({P}rev T x)) :=
  fun (T : Type 1) (x : {P}list T) =>
    elim x : {P}list T
      return (fun (x : {P}list T) => forall (y : {P}list T),
        eq ({P}list T) ({P}rev T ({P}app T x y))
                       ({P}app T ({P}rev T y) ({P}rev T x)))
    with
    | fun (y : {P}list T) =>
        eq_sym ({P}list T)
          ({P}app T ({P}rev T y) ({P}nil T)) ({P}rev T y)
          ({P}app_nil_r T ({P}rev T y))
    | fun (t : T) (l : {P}list T)
          (ih : forall (y : {P}list T),
            eq ({P}list T) ({P}rev T ({P}app T l y))
                           ({P}app T ({P}rev T y) ({P}rev T l)))
          (y : {P}list T) =>
        eq_trans ({P}list T)
          ({P}app T ({P}rev T ({P}app T l y)) ({P}cons T t ({P}nil T)))
          ({P}app T ({P}app T ({P}rev T y) ({P}rev T l)) ({P}cons T t ({P}nil T)))
          ({P}app T ({P}rev T y) ({P}app T ({P}rev T l) ({P}cons T t ({P}nil T))))
          (f_equal ({P}list T) ({P}list T)
            (fun (z : {P}list T) => {P}app T z ({P}cons T t ({P}nil T)))
            ({P}rev T ({P}app T l y))
            ({P}app T ({P}rev T y) ({P}rev T l))
            (ih y))
          (eq_sym ({P}list T)
            ({P}app T ({P}rev T y) ({P}app T ({P}rev T l) ({P}cons T t ({P}nil T))))
            ({P}app T ({P}app T ({P}rev T y) ({P}rev T l)) ({P}cons T t ({P}nil T)))
            ({P}app_assoc T ({P}rev T y) ({P}rev T l) ({P}cons T t ({P}nil T))))
    end.

Definition {P}rev_involutive : forall (T : Type 1) (l : {P}list T),
    eq ({P}list T) ({P}rev T ({P}rev T l)) l :=
  fun (T : Type 1) (l : {P}list T) =>
    elim l : {P}list T
      return (fun (x : {P}list T) =>
        eq ({P}list T) ({P}rev T ({P}rev T x)) x)
    with
    | eq_refl ({P}list T) ({P}nil T)
    | fun (t : T) (l' : {P}list T)
          (ih : eq ({P}list T) ({P}rev T ({P}rev T l')) l') =>
        eq_trans ({P}list T)
          ({P}rev T ({P}app T ({P}rev T l') ({P}cons T t ({P}nil T))))
          ({P}cons T t ({P}rev T ({P}rev T l')))
          ({P}cons T t l')
          ({P}rev_app_distr T ({P}rev T l') ({P}cons T t ({P}nil T)))
          (f_equal ({P}list T) ({P}list T) ({P}cons T t)
            ({P}rev T ({P}rev T l')) l' ih)
    end.

Definition {P}fold : forall (A : Type 1) (B : Type 1),
    (A -> B -> B) -> B -> {P}list A -> B :=
  fun (A : Type 1) (B : Type 1) (f : A -> B -> B) (b : B) (l : {P}list A) =>
    elim l : {P}list A return (fun (x : {P}list A) => B) with
    | b
    | fun (a : A) (l' : {P}list A) (ih : B) => f a ih
    end.

Definition {P}length_app : forall (T : Type 1) (l1 l2 : {P}list T),
    eq nat ({P}length T ({P}app T l1 l2))
           (add ({P}length T l1) ({P}length T l2)) :=
  fun (T : Type 1) (l1 l2 : {P}list T) =>
    elim l1 : {P}list T
      return (fun (x : {P}list T) =>
        eq nat ({P}length T ({P}app T x l2))
               (add ({P}length T x) ({P}length T l2)))
    with
    | eq_refl nat ({P}length T l2)
    | fun (t : T) (l' : {P}list T)
          (ih : eq nat ({P}length T ({P}app T l' l2))
                       (add ({P}length T l') ({P}length T l2))) =>
        f_equal nat nat S
          ({P}length T ({P}app T l' l2))
          (add ({P}length T l') ({P}length T l2)) ih
    end.

Definition {P}rev_length : forall (T : Type 1) (l : {P}list T),
    eq nat ({P}length T ({P}rev T l)) ({P}length T l) :=
  fun (T : Type 1) (l : {P}list T) =>
    elim l : {P}list T
      return (fun (x : {P}list T) =>
        eq nat ({P}length T ({P}rev T x)) ({P}length T x))
    with
    | eq_refl nat O
    | fun (t : T) (l' : {P}list T)
          (ih : eq nat ({P}length T ({P}rev T l')) ({P}length T l')) =>
        eq_trans nat
          ({P}length T ({P}app T ({P}rev T l') ({P}cons T t ({P}nil T))))
          (S ({P}length T ({P}rev T l')))
          (S ({P}length T l'))
          (eq_trans nat
            ({P}length T ({P}app T ({P}rev T l') ({P}cons T t ({P}nil T))))
            (add ({P}length T ({P}rev T l')) (S O))
            (S ({P}length T ({P}rev T l')))
            ({P}length_app T ({P}rev T l') ({P}cons T t ({P}nil T)))
            (add_1_r ({P}length T ({P}rev T l'))))
          (f_equal nat nat S ({P}length T ({P}rev T l')) ({P}length T l') ih)
    end.

Definition {P}map_app : forall (A : Type 1) (B : Type 1) (f : A -> B)
    (l1 l2 : {P}list A),
    eq ({P}list B)
       ({P}map A B f ({P}app A l1 l2))
       ({P}app B ({P}map A B f l1) ({P}map A B f l2)) :=
  fun (A : Type 1) (B : Type 1) (f : A -> B) (l1 l2 : {P}list A) =>
    elim l1 : {P}list A
      return (fun (x : {P}list A) =>
        eq ({P}list B)
           ({P}map A B f ({P}app A x l2))
           ({P}app B ({P}map A B f x) ({P}map A B f l2)))
    with
    | eq_refl ({P}list B) ({P}map A B f l2)
    | fun (a : A) (l' : {P}list A)
          (ih : eq ({P}list B)
             ({P}map A B f ({P}app A l' l2))
             ({P}app B ({P}map A B f l') ({P}map A B f l2))) =>
        f_equal ({P}list B) ({P}list B) ({P}cons B (f a))
          ({P}map A B f ({P}app A l' l2))
          ({P}app B ({P}map A B f l') ({P}map A B f l2)) ih
    end.

Definition {P}fold_app : forall (A : Type 1) (B : Type 1)
    (f : A -> B -> B) (b : B) (l1 l2 : {P}list A),
    eq B ({P}fold A B f b ({P}app A l1 l2))
         ({P}fold A B f ({P}fold A B f b l2) l1) :=
  fun (A : Type 1) (B : Type 1) (f : A -> B -> B) (b : B) (l1 l2 : {P}list A) =>
    elim l1 : {P}list A
      return (fun (x : {P}list A) =>
        eq B ({P}fold A B f b ({P}app A x l2))
             ({P}fold A B f ({P}fold A B f b l2) x))
    with
    | eq_refl B ({P}fold A B f b l2)
    | fun (a : A) (l' : {P}list A)
          (ih : eq B ({P}fold A B f b ({P}app A l' l2))
                     ({P}fold A B f ({P}fold A B f b l2) l')) =>
        f_equal B B (f a)
          ({P}fold A B f b ({P}app A l' l2))
          ({P}fold A B f ({P}fold A B f b l2) l') ih
    end.
"#;

/// The std-list-only zip material for the vectors-from-lists study (§6.2).
pub const ZIP_SRC: &str = r#"
Definition zip : forall (A : Type 1) (B : Type 1),
    list A -> list B -> list (prod A B) :=
  fun (A : Type 1) (B : Type 1) (l1 : list A) =>
    elim l1 : list A
      return (fun (x : list A) => list B -> list (prod A B))
    with
    | fun (l2 : list B) => nil (prod A B)
    | fun (a : A) (l1' : list A) (ih : list B -> list (prod A B)) (l2 : list B) =>
        elim l2 : list B return (fun (y : list B) => list (prod A B)) with
        | nil (prod A B)
        | fun (b : B) (l2' : list B) (ih2 : list (prod A B)) =>
            cons (prod A B) (pair A B a b) (ih l2')
        end
    end.

Definition zip_with : forall (A : Type 1) (B : Type 1) (C : Type 1),
    (A -> B -> C) -> list A -> list B -> list C :=
  fun (A : Type 1) (B : Type 1) (C : Type 1) (f : A -> B -> C) (l1 : list A) =>
    elim l1 : list A
      return (fun (x : list A) => list B -> list C)
    with
    | fun (l2 : list B) => nil C
    | fun (a : A) (l1' : list A) (ih : list B -> list C) (l2 : list B) =>
        elim l2 : list B return (fun (y : list B) => list C) with
        | nil C
        | fun (b : B) (l2' : list B) (ih2 : list C) =>
            cons C (f a b) (ih l2')
        end
    end.

(* zip_with pair = zip  (the Devoid example, paper section 6.2). *)
Definition zip_with_is_zip : forall (A : Type 1) (B : Type 1)
    (l1 : list A) (l2 : list B),
    eq (list (prod A B))
       (zip_with A B (prod A B) (pair A B) l1 l2)
       (zip A B l1 l2) :=
  fun (A : Type 1) (B : Type 1) (l1 : list A) =>
    elim l1 : list A
      return (fun (x : list A) => forall (l2 : list B),
        eq (list (prod A B))
           (zip_with A B (prod A B) (pair A B) x l2)
           (zip A B x l2))
    with
    | fun (l2 : list B) => eq_refl (list (prod A B)) (nil (prod A B))
    | fun (a : A) (l1' : list A)
          (ih : forall (l2 : list B),
            eq (list (prod A B))
               (zip_with A B (prod A B) (pair A B) l1' l2)
               (zip A B l1' l2))
          (l2 : list B) =>
        elim l2 : list B
          return (fun (y : list B) =>
            eq (list (prod A B))
               (zip_with A B (prod A B) (pair A B) (cons A a l1') y)
               (zip A B (cons A a l1') y))
        with
        | eq_refl (list (prod A B)) (nil (prod A B))
        | fun (b : B) (l2' : list B)
              (ih2 : eq (list (prod A B))
                 (zip_with A B (prod A B) (pair A B) (cons A a l1') l2')
                 (zip A B (cons A a l1') l2')) =>
            f_equal (list (prod A B)) (list (prod A B))
              (cons (prod A B) (pair A B a b))
              (zip_with A B (prod A B) (pair A B) l1' l2')
              (zip A B l1' l2')
              (ih l2')
        end
    end.

(* Length invariants for zip/zip_with: the "additional information needed to
   construct proofs about the refinement" (paper section 3.1.2) that the
   proof engineer supplies when moving to vectors of a particular length. *)
Definition zip_length : forall (A : Type 1) (B : Type 1) (l1 : list A)
    (l2 : list B) (n : nat),
    eq nat (length A l1) n -> eq nat (length B l2) n ->
    eq nat (length (prod A B) (zip A B l1 l2)) n :=
  fun (A : Type 1) (B : Type 1) (l1 : list A) =>
    elim l1 : list A
      return (fun (x : list A) =>
        forall (l2 : list B) (n : nat),
          eq nat (length A x) n -> eq nat (length B l2) n ->
          eq nat (length (prod A B) (zip A B x l2)) n)
    with
    | fun (l2 : list B) (n : nat)
          (H1 : eq nat (length A (nil A)) n)
          (H2 : eq nat (length B l2) n) => H1
    | fun (a : A) (l1' : list A)
          (IH : forall (l2 : list B) (n : nat),
            eq nat (length A l1') n -> eq nat (length B l2) n ->
            eq nat (length (prod A B) (zip A B l1' l2)) n)
          (l2 : list B) =>
        elim l2 : list B
          return (fun (y : list B) =>
            forall (n : nat),
              eq nat (length A (cons A a l1')) n -> eq nat (length B y) n ->
              eq nat (length (prod A B) (zip A B (cons A a l1') y)) n)
        with
        | fun (n : nat)
              (H1 : eq nat (length A (cons A a l1')) n)
              (H2 : eq nat (length B (nil B)) n) => H2
        | fun (b : B) (l2' : list B)
              (ih2 : forall (n : nat),
                eq nat (length A (cons A a l1')) n -> eq nat (length B l2') n ->
                eq nat (length (prod A B) (zip A B (cons A a l1') l2')) n)
              (n : nat)
              (H1 : eq nat (length A (cons A a l1')) n)
              (H2 : eq nat (length B (cons B b l2')) n) =>
            eq_trans nat
              (S (length (prod A B) (zip A B l1' l2')))
              (S (length A l1'))
              n
              (f_equal nat nat S
                (length (prod A B) (zip A B l1' l2'))
                (length A l1')
                (IH l2' (length A l1')
                  (eq_refl nat (length A l1'))
                  (S_inj (length B l2') (length A l1')
                    (eq_trans nat (S (length B l2')) n (S (length A l1'))
                      H2
                      (eq_sym nat (S (length A l1')) n H1)))))
              H1
        end
    end.

Definition zip_with_length : forall (A : Type 1) (B : Type 1) (C : Type 1)
    (f : A -> B -> C) (l1 : list A) (l2 : list B) (n : nat),
    eq nat (length A l1) n -> eq nat (length B l2) n ->
    eq nat (length C (zip_with A B C f l1 l2)) n :=
  fun (A : Type 1) (B : Type 1) (C : Type 1) (f : A -> B -> C) (l1 : list A) =>
    elim l1 : list A
      return (fun (x : list A) =>
        forall (l2 : list B) (n : nat),
          eq nat (length A x) n -> eq nat (length B l2) n ->
          eq nat (length C (zip_with A B C f x l2)) n)
    with
    | fun (l2 : list B) (n : nat)
          (H1 : eq nat (length A (nil A)) n)
          (H2 : eq nat (length B l2) n) => H1
    | fun (a : A) (l1' : list A)
          (IH : forall (l2 : list B) (n : nat),
            eq nat (length A l1') n -> eq nat (length B l2) n ->
            eq nat (length C (zip_with A B C f l1' l2)) n)
          (l2 : list B) =>
        elim l2 : list B
          return (fun (y : list B) =>
            forall (n : nat),
              eq nat (length A (cons A a l1')) n -> eq nat (length B y) n ->
              eq nat (length C (zip_with A B C f (cons A a l1') y)) n)
        with
        | fun (n : nat)
              (H1 : eq nat (length A (cons A a l1')) n)
              (H2 : eq nat (length B (nil B)) n) => H2
        | fun (b : B) (l2' : list B)
              (ih2 : forall (n : nat),
                eq nat (length A (cons A a l1')) n -> eq nat (length B l2') n ->
                eq nat (length C (zip_with A B C f (cons A a l1') l2')) n)
              (n : nat)
              (H1 : eq nat (length A (cons A a l1')) n)
              (H2 : eq nat (length B (cons B b l2')) n) =>
            eq_trans nat
              (S (length C (zip_with A B C f l1' l2')))
              (S (length A l1'))
              n
              (f_equal nat nat S
                (length C (zip_with A B C f l1' l2'))
                (length A l1')
                (IH l2' (length A l1')
                  (eq_refl nat (length A l1'))
                  (S_inj (length B l2') (length A l1')
                    (eq_trans nat (S (length B l2')) n (S (length A l1'))
                      H2
                      (eq_sym nat (S (length A l1')) n H1)))))
              H1
        end
    end.
"#;

/// Renders the list-module template with the given name prefix.
pub fn module_source(prefix: &str) -> String {
    TEMPLATE.replace("{P}", prefix)
}

/// Loads the standard `list` module plus the zip material.
///
/// Requires [`crate::logic`] and [`crate::nat`].
pub fn load(env: &mut Env) -> Result<()> {
    load_source(env, &module_source(""))?;
    load_source(env, ZIP_SRC)
}

/// Builds a `list` literal of the given element type from element terms,
/// using the (possibly prefixed) list family named `ind`.
pub fn list_lit(ind: &str, elem_ty: Term, elems: &[Term]) -> Term {
    let nil_index = 0usize;
    let cons_index = 1usize;
    let mut t = Term::app(Term::construct(ind, nil_index), [elem_ty.clone()]);
    for e in elems.iter().rev() {
        t = Term::app(
            Term::construct(ind, cons_index),
            [elem_ty.clone(), e.clone(), t],
        );
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nat::{nat_lit, nat_value};
    use pumpkin_kernel::prelude::*;

    fn env() -> Env {
        let mut e = Env::new();
        crate::logic::load(&mut e).unwrap();
        crate::nat::load(&mut e).unwrap();
        load(&mut e).unwrap();
        e
    }

    fn nat_list(elems: &[u64]) -> Term {
        let elems: Vec<Term> = elems.iter().map(|&n| nat_lit(n)).collect();
        list_lit("list", Term::ind("nat"), &elems)
    }

    #[test]
    fn whole_module_loads_and_typechecks() {
        let e = env();
        for name in [
            "app",
            "rev",
            "length",
            "map",
            "app_nil_r",
            "app_assoc",
            "rev_app_distr",
            "rev_involutive",
            "zip",
            "zip_with",
            "zip_with_is_zip",
        ] {
            assert!(e.contains(name), "missing {name}");
        }
    }

    #[test]
    fn append_and_reverse_compute() {
        let e = env();
        let l = Term::app(
            Term::const_("app"),
            [Term::ind("nat"), nat_list(&[1, 2]), nat_list(&[3])],
        );
        assert_eq!(normalize(&e, &l), nat_list(&[1, 2, 3]));
        let r = Term::app(
            Term::const_("rev"),
            [Term::ind("nat"), nat_list(&[1, 2, 3])],
        );
        assert_eq!(normalize(&e, &r), nat_list(&[3, 2, 1]));
    }

    #[test]
    fn length_and_map_compute() {
        let e = env();
        let n = Term::app(
            Term::const_("length"),
            [Term::ind("nat"), nat_list(&[5, 5, 5])],
        );
        assert_eq!(nat_value(&normalize(&e, &n)), Some(3));
        let m = Term::app(
            Term::const_("map"),
            [
                Term::ind("nat"),
                Term::ind("nat"),
                Term::const_("pred"),
                nat_list(&[1, 2, 3]),
            ],
        );
        assert_eq!(normalize(&e, &m), nat_list(&[0, 1, 2]));
    }

    #[test]
    fn zip_computes() {
        let e = env();
        let z = Term::app(
            Term::const_("zip"),
            [
                Term::ind("nat"),
                Term::ind("nat"),
                nat_list(&[1, 2]),
                nat_list(&[3, 4, 5]),
            ],
        );
        let pair_ty = Term::app(Term::ind("prod"), [Term::ind("nat"), Term::ind("nat")]);
        let mk = |a: u64, b: u64| {
            Term::app(
                Term::construct("prod", 0),
                [Term::ind("nat"), Term::ind("nat"), nat_lit(a), nat_lit(b)],
            )
        };
        let expected = list_lit("list", pair_ty, &[mk(1, 3), mk(2, 4)]);
        assert_eq!(normalize(&e, &z), expected);
    }

    #[test]
    fn old_prefix_module_loads() {
        let mut e = env();
        pumpkin_lang::load_source(&mut e, &module_source("Old.")).unwrap();
        assert!(e.contains("Old.rev_app_distr"));
        let decl = e.inductive(&"Old.list".into()).unwrap();
        assert_eq!(decl.ctors[0].name.as_str(), "Old.nil");
    }
}
