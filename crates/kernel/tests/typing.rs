//! Systematic kernel tests: typing rules, universes, indexed families,
//! eliminator edge cases, positivity, opacity, and the record-η guard.

use pumpkin_kernel::prelude::*;

fn base_env() -> Env {
    let mut env = Env::new();
    env.declare_inductive(InductiveDecl {
        name: "bool".into(),
        params: vec![],
        indices: vec![],
        sort: Sort::Set,
        ctors: vec![
            CtorDecl {
                name: "true".into(),
                args: vec![],
                result_indices: vec![],
            },
            CtorDecl {
                name: "false".into(),
                args: vec![],
                result_indices: vec![],
            },
        ],
    })
    .unwrap();
    env.declare_inductive(InductiveDecl {
        name: "nat".into(),
        params: vec![],
        indices: vec![],
        sort: Sort::Set,
        ctors: vec![
            CtorDecl {
                name: "O".into(),
                args: vec![],
                result_indices: vec![],
            },
            CtorDecl {
                name: "S".into(),
                args: vec![Binder::new("n", Term::ind("nat"))],
                result_indices: vec![],
            },
        ],
    })
    .unwrap();
    env
}

fn env_with_vector() -> Env {
    let mut env = base_env();
    // vector (T : Type 1) : nat -> Type 1
    env.declare_inductive(InductiveDecl {
        name: "vector".into(),
        params: vec![Binder::new("T", Term::type_(1))],
        indices: vec![Binder::new("n", Term::ind("nat"))],
        sort: Sort::Type(1),
        ctors: vec![
            CtorDecl {
                name: "vnil".into(),
                args: vec![],
                result_indices: vec![Term::construct("nat", 0)],
            },
            CtorDecl {
                name: "vcons".into(),
                args: vec![
                    Binder::new("t", Term::rel(0)),
                    Binder::new("n", Term::ind("nat")),
                    Binder::new(
                        "v",
                        Term::app(Term::ind("vector"), [Term::rel(2), Term::rel(0)]),
                    ),
                ],
                result_indices: vec![Term::app(Term::construct("nat", 1), [Term::rel(1)])],
            },
        ],
    })
    .unwrap();
    env
}

fn nat_lit(n: usize) -> Term {
    let mut t = Term::construct("nat", 0);
    for _ in 0..n {
        t = Term::app(Term::construct("nat", 1), [t]);
    }
    t
}

// ---------------------------------------------------------------------
// Universes
// ---------------------------------------------------------------------

#[test]
fn sorts_type_one_level_up() {
    let env = Env::new();
    assert_eq!(infer_closed(&env, &Term::prop()).unwrap(), Term::type_(1));
    assert_eq!(infer_closed(&env, &Term::set()).unwrap(), Term::type_(1));
    assert_eq!(infer_closed(&env, &Term::type_(4)).unwrap(), Term::type_(5));
}

#[test]
fn impredicative_prop_products() {
    let env = Env::new();
    // ∀ (A : Type 3), A → Prop-valued body lives in Prop.
    let t = Term::pi(
        "A",
        Term::type_(3),
        Term::pi("x", Term::rel(0), Term::prop()),
    );
    // The product's *sort* is Type(4) because the codomain Prop : Type(1)…
    // but the product over a Prop codomain is Prop:
    let prop_valued = Term::pi("A", Term::type_(3), Term::arrow(Term::rel(0), Term::prop()));
    let _ = prop_valued;
    // ∀ (A : Type 3), Prop-sorted body:
    let p = Term::pi("A", Term::type_(3), Term::prop());
    // p's body is the *sort* Prop (of type Type 1), so p : Type(4).
    assert_eq!(infer_closed(&env, &p).unwrap(), Term::type_(4));
    // Whereas a genuinely Prop-sorted codomain gives Prop:
    let mut env2 = Env::new();
    env2.assume("P", Term::prop()).unwrap();
    let q = Term::pi("A", Term::type_(3), Term::const_("P"));
    assert_eq!(infer_closed(&env2, &q).unwrap(), Term::prop());
    let _ = t;
}

#[test]
fn cumulativity_accepts_smaller_sorts() {
    let mut env = base_env();
    // nat : Set can be passed where Type 1 is expected.
    env.define(
        "idT",
        Term::pi("A", Term::type_(1), Term::arrow(Term::rel(0), Term::rel(0))),
        Term::lambda(
            "A",
            Term::type_(1),
            Term::lambda("x", Term::rel(0), Term::rel(0)),
        ),
    )
    .unwrap();
    let t = Term::app(Term::const_("idT"), [Term::ind("nat"), nat_lit(3)]);
    assert!(infer_closed(&env, &t).is_ok());
}

#[test]
fn no_type_in_type() {
    let env = Env::new();
    // Type i : Type i must fail.
    let r = check_closed(&env, &Term::type_(2), &Term::type_(2));
    assert!(r.is_err());
}

// ---------------------------------------------------------------------
// Indexed families
// ---------------------------------------------------------------------

#[test]
fn vector_constructor_and_elim_typing() {
    let env = env_with_vector();
    // vcons nat 7 0-index vnil : vector nat 1
    let v1 = Term::app(
        Term::construct("vector", 1),
        [
            Term::ind("nat"),
            nat_lit(7),
            nat_lit(0),
            Term::app(Term::construct("vector", 0), [Term::ind("nat")]),
        ],
    );
    let ty = infer_closed(&env, &v1).unwrap();
    let expect = Term::app(Term::ind("vector"), [Term::ind("nat"), nat_lit(1)]);
    assert!(conv(&env, &ty, &expect));

    // Eliminate it back to nat (count elements).
    let e = Term::elim(ElimData {
        ind: "vector".into(),
        params: vec![Term::ind("nat")],
        motive: Term::lambda(
            "n",
            Term::ind("nat"),
            Term::lambda(
                "v",
                Term::app(Term::ind("vector"), [Term::ind("nat"), Term::rel(0)]),
                Term::ind("nat"),
            ),
        ),
        cases: vec![
            nat_lit(0),
            Term::lambdas(
                [
                    Binder::new("t", Term::ind("nat")),
                    Binder::new("n", Term::ind("nat")),
                    Binder::new(
                        "v",
                        Term::app(Term::ind("vector"), [Term::ind("nat"), Term::rel(0)]),
                    ),
                    Binder::new("ih", Term::ind("nat")),
                ],
                Term::app(Term::construct("nat", 1), [Term::rel(0)]),
            ),
        ],
        scrutinee: v1,
    });
    assert!(conv(
        &env,
        &infer_closed(&env, &e).unwrap(),
        &Term::ind("nat")
    ));
    assert_eq!(normalize(&env, &e), nat_lit(1));
}

#[test]
fn elim_motive_with_wrong_index_domain_fails() {
    let env = env_with_vector();
    let bad = Term::elim(ElimData {
        ind: "vector".into(),
        params: vec![Term::ind("nat")],
        // Motive whose first domain is bool, not nat.
        motive: Term::lambda(
            "n",
            Term::ind("bool"),
            Term::lambda(
                "v",
                Term::app(Term::ind("vector"), [Term::ind("nat"), nat_lit(0)]),
                Term::ind("nat"),
            ),
        ),
        cases: vec![nat_lit(0), nat_lit(0)],
        scrutinee: Term::app(Term::construct("vector", 0), [Term::ind("nat")]),
    });
    assert!(matches!(
        infer_closed(&env, &bad),
        Err(KernelError::IllFormedElim { .. })
    ));
}

#[test]
fn elim_with_mismatched_params_fails() {
    let env = env_with_vector();
    let bad = Term::elim(ElimData {
        ind: "vector".into(),
        params: vec![Term::ind("bool")], // scrutinee is a nat-vector
        motive: Term::lambda(
            "n",
            Term::ind("nat"),
            Term::lambda(
                "v",
                Term::app(Term::ind("vector"), [Term::ind("bool"), Term::rel(0)]),
                Term::ind("nat"),
            ),
        ),
        cases: vec![nat_lit(0), nat_lit(0)],
        scrutinee: Term::app(Term::construct("vector", 0), [Term::ind("nat")]),
    });
    assert!(infer_closed(&env, &bad).is_err());
}

// ---------------------------------------------------------------------
// Inductive declarations
// ---------------------------------------------------------------------

#[test]
fn nested_occurrence_violates_positivity() {
    let mut env = base_env();
    // list first.
    env.declare_inductive(InductiveDecl {
        name: "list".into(),
        params: vec![Binder::new("T", Term::type_(1))],
        indices: vec![],
        sort: Sort::Type(1),
        ctors: vec![
            CtorDecl {
                name: "nil".into(),
                args: vec![],
                result_indices: vec![],
            },
            CtorDecl {
                name: "cons".into(),
                args: vec![
                    Binder::new("t", Term::rel(0)),
                    Binder::new("l", Term::app(Term::ind("list"), [Term::rel(1)])),
                ],
                result_indices: vec![],
            },
        ],
    })
    .unwrap();
    // rose := mk (list rose) — nested occurrence, rejected in our
    // restricted positivity discipline.
    let rose = InductiveDecl {
        name: "rose".into(),
        params: vec![],
        indices: vec![],
        sort: Sort::Type(1),
        ctors: vec![CtorDecl {
            name: "mkrose".into(),
            args: vec![Binder::new(
                "children",
                Term::app(Term::ind("list"), [Term::ind("rose")]),
            )],
            result_indices: vec![],
        }],
    };
    assert!(matches!(
        env.declare_inductive(rose),
        Err(KernelError::Positivity { .. })
    ));
    // A failed declaration leaves no trace.
    assert!(!env.contains("rose"));
    assert!(!env.contains("mkrose"));
}

#[test]
fn duplicate_declarations_rejected() {
    let mut env = base_env();
    assert!(matches!(
        env.define("bool", Term::set(), Term::ind("nat")),
        Err(KernelError::Redeclaration(_))
    ));
    assert!(matches!(
        env.assume("true", Term::ind("bool")),
        Err(KernelError::Redeclaration(_))
    ));
}

#[test]
fn ill_typed_definitions_rejected() {
    let mut env = base_env();
    // Body of the wrong type.
    assert!(matches!(
        env.define("x", Term::ind("bool"), nat_lit(0)),
        Err(KernelError::TypeMismatch { .. })
    ));
    // Type that is not a type.
    assert!(matches!(
        env.define("y", nat_lit(1), nat_lit(0)),
        Err(KernelError::NotASort { .. })
    ));
    assert!(!env.contains("x"));
    assert!(!env.contains("y"));
}

// ---------------------------------------------------------------------
// Opacity and conversion
// ---------------------------------------------------------------------

#[test]
fn opaque_constants_block_iota_chains() {
    let mut env = base_env();
    env.define(
        "double",
        Term::arrow(Term::ind("nat"), Term::ind("nat")),
        Term::lambda(
            "n",
            Term::ind("nat"),
            Term::elim(ElimData {
                ind: "nat".into(),
                params: vec![],
                motive: Term::lambda("x", Term::ind("nat"), Term::ind("nat")),
                cases: vec![
                    nat_lit(0),
                    Term::lambdas(
                        [
                            Binder::new("p", Term::ind("nat")),
                            Binder::new("ih", Term::ind("nat")),
                        ],
                        Term::app(
                            Term::construct("nat", 1),
                            [Term::app(Term::construct("nat", 1), [Term::rel(0)])],
                        ),
                    ),
                ],
                scrutinee: Term::rel(0),
            }),
        ),
    )
    .unwrap();
    let call = Term::app(Term::const_("double"), [nat_lit(2)]);
    assert_eq!(normalize(&env, &call), nat_lit(4));
    assert!(conv(&env, &call, &nat_lit(4)));
    env.set_opaque(&"double".into(), true).unwrap();
    assert!(!conv(&env, &call, &nat_lit(4)));
    // Opaque constants still conv with themselves.
    assert!(conv(&env, &call, &call.clone()));
}

#[test]
fn record_eta_guard_rejects_zero_field_types() {
    let mut env = base_env();
    env.declare_inductive(InductiveDecl {
        name: "unit".into(),
        params: vec![],
        indices: vec![],
        sort: Sort::Set,
        ctors: vec![CtorDecl {
            name: "tt".into(),
            args: vec![],
            result_indices: vec![],
        }],
    })
    .unwrap();
    env.assume("u", Term::ind("unit")).unwrap();
    // Without the n ≥ 1 guard, η would wrongly equate tt with any u.
    assert!(!conv(&env, &Term::construct("unit", 0), &Term::const_("u")));
}

#[test]
fn record_eta_guard_rejects_recursive_single_ctor() {
    let mut env = base_env();
    // wrap := mk (wrap)?? — not positive; use a benign recursive single
    // constructor via an argument of nat and itself is not possible, so
    // check with `box` over nat: a single-constructor *recursive* type.
    env.declare_inductive(InductiveDecl {
        name: "stream".into(),
        params: vec![],
        indices: vec![],
        sort: Sort::Set,
        ctors: vec![CtorDecl {
            name: "scons".into(),
            args: vec![
                Binder::new("head", Term::ind("nat")),
                Binder::new("tail", Term::ind("nat")), // non-recursive stand-in
            ],
            result_indices: vec![],
        }],
    })
    .unwrap();
    // This type *is* η-eligible (no recursion); sanity-check that a
    // projection round trip is convertible.
    env.define(
        "shead",
        Term::arrow(Term::ind("stream"), Term::ind("nat")),
        Term::lambda(
            "s",
            Term::ind("stream"),
            Term::elim(ElimData {
                ind: "stream".into(),
                params: vec![],
                motive: Term::lambda("x", Term::ind("stream"), Term::ind("nat")),
                cases: vec![Term::lambdas(
                    [
                        Binder::new("h", Term::ind("nat")),
                        Binder::new("t", Term::ind("nat")),
                    ],
                    Term::rel(1),
                )],
                scrutinee: Term::rel(0),
            }),
        ),
    )
    .unwrap();
    env.define(
        "stail",
        Term::arrow(Term::ind("stream"), Term::ind("nat")),
        Term::lambda(
            "s",
            Term::ind("stream"),
            Term::elim(ElimData {
                ind: "stream".into(),
                params: vec![],
                motive: Term::lambda("x", Term::ind("stream"), Term::ind("nat")),
                cases: vec![Term::lambdas(
                    [
                        Binder::new("h", Term::ind("nat")),
                        Binder::new("t", Term::ind("nat")),
                    ],
                    Term::rel(0),
                )],
                scrutinee: Term::rel(0),
            }),
        ),
    )
    .unwrap();
    env.assume("s0", Term::ind("stream")).unwrap();
    let rebuilt = Term::app(
        Term::construct("stream", 0),
        [
            Term::app(Term::const_("shead"), [Term::const_("s0")]),
            Term::app(Term::const_("stail"), [Term::const_("s0")]),
        ],
    );
    assert!(conv(&env, &rebuilt, &Term::const_("s0")));
    // But mixing two different scrutinees must not be η-collapsed.
    env.assume("s1", Term::ind("stream")).unwrap();
    let mixed = Term::app(
        Term::construct("stream", 0),
        [
            Term::app(Term::const_("shead"), [Term::const_("s0")]),
            Term::app(Term::const_("stail"), [Term::const_("s1")]),
        ],
    );
    assert!(!conv(&env, &mixed, &Term::const_("s0")));
    assert!(!conv(&env, &mixed, &Term::const_("s1")));
}

#[test]
fn eq_elim_j_rule() {
    let mut env = base_env();
    // eq over nat, locally declared.
    env.declare_inductive(InductiveDecl {
        name: "eqn".into(),
        params: vec![Binder::new("x", Term::ind("nat"))],
        indices: vec![Binder::new("y", Term::ind("nat"))],
        sort: Sort::Prop,
        ctors: vec![CtorDecl {
            name: "eqn_refl".into(),
            args: vec![],
            result_indices: vec![Term::rel(0)],
        }],
    })
    .unwrap();
    // J: from e : eqn 2 y derive bool by elim; at refl it computes.
    let e = Term::elim(ElimData {
        ind: "eqn".into(),
        params: vec![nat_lit(2)],
        motive: Term::lambda(
            "y",
            Term::ind("nat"),
            Term::lambda(
                "e",
                Term::app(Term::ind("eqn"), [nat_lit(2), Term::rel(0)]),
                Term::ind("bool"),
            ),
        ),
        cases: vec![Term::construct("bool", 0)],
        scrutinee: Term::app(Term::construct("eqn", 0), [nat_lit(2)]),
    });
    assert!(conv(
        &env,
        &infer_closed(&env, &e).unwrap(),
        &Term::ind("bool")
    ));
    assert_eq!(normalize(&env, &e), Term::construct("bool", 0));
}

#[test]
fn under_applied_constructor_in_elim_scrutinee_is_stuck() {
    let env = base_env();
    // Elim over `S` (under-applied) must not ι-reduce; it is ill-typed and
    // reported as such.
    let e = Term::elim(ElimData {
        ind: "nat".into(),
        params: vec![],
        motive: Term::lambda("x", Term::ind("nat"), Term::ind("nat")),
        cases: vec![
            nat_lit(0),
            Term::lambdas(
                [
                    Binder::new("p", Term::ind("nat")),
                    Binder::new("ih", Term::ind("nat")),
                ],
                Term::rel(0),
            ),
        ],
        scrutinee: Term::construct("nat", 1),
    });
    assert!(infer_closed(&env, &e).is_err());
    // whnf leaves it stuck rather than crashing.
    let _ = whnf(&env, &e);
}

#[test]
fn let_bodies_type_against_substituted_values() {
    let mut env = base_env();
    env.define(
        "letdemo",
        Term::ind("nat"),
        Term::let_(
            "x",
            Term::ind("nat"),
            nat_lit(3),
            Term::app(Term::construct("nat", 1), [Term::rel(0)]),
        ),
    )
    .unwrap();
    assert_eq!(normalize(&env, &Term::const_("letdemo")), nat_lit(4));
}
