//! Definitional equality (conversion) and cumulativity.
//!
//! The deciding engine is normalization by evaluation ([`crate::nbe`]):
//! both sides are evaluated once into a value domain and compared there,
//! instead of being repeatedly rewritten to weak head normal form. This
//! module owns the public entry points — the syntactic fast path, the
//! per-[`Env`] `(TermId, TermId)` memo table, statistics, and tracing —
//! and retains the original whnf-rewriting checker
//! ([`conv_via_whnf`] / [`conv_leq_via_whnf`]) as a differential-testing
//! oracle.

use crate::env::Env;
use crate::reduce::whnf;
use crate::subst::lift;
use crate::term::{Term, TermData};

/// Are `t` and `u` definitionally equal (βδιζη-convertible)?
///
/// The `t == u` check is O(1): pointer identity, then hash-consed
/// [`Term::id`] equality. Everything past it is memoized on the [`Env`]
/// under the ordered `(TermId, TermId)` pair until the next environment
/// mutation (see [`Env::kernel_stats`] / [`Env::set_kernel_cache`]).
pub fn conv(env: &Env, t: &Term, u: &Term) -> bool {
    if t == u {
        return true;
    }
    env.tally(|s| s.conv_calls += 1);
    env.tracer().emit(pumpkin_trace::EventKind::Conv);
    if let Some(verdict) = env.conv_cached(t, u) {
        return verdict;
    }
    let verdict = crate::nbe::conv_terms(env, t, u, false);
    env.conv_insert(t, u, verdict);
    verdict
}

/// Cumulativity: is `t ≤ u` as types? Identical to conversion except sorts
/// compare with `≤`, propagated through Pi codomains only (domains stay
/// invariant). Not memoized: `≤` is asymmetric and the queries the type
/// checker issues are rarely repeated.
pub fn conv_leq(env: &Env, t: &Term, u: &Term) -> bool {
    if t == u {
        return true;
    }
    crate::nbe::conv_terms(env, t, u, true)
}

/// The pre-NbE conversion checker: repeated whnf rewriting plus structural
/// comparison. Kept as an executable specification — the property suite
/// checks [`conv`] agrees with it across the stdlib and case-study corpora.
pub fn conv_via_whnf(env: &Env, t: &Term, u: &Term) -> bool {
    if t == u {
        return true;
    }
    env.tally(|s| s.conv_calls += 1);
    if let Some(verdict) = env.conv_cached(t, u) {
        return verdict;
    }
    let tw = whnf(env, t);
    let uw = whnf(env, u);
    let verdict = conv_whnf(env, &tw, &uw);
    env.conv_insert(t, u, verdict);
    // Distinct queries that reduce to the same weak head normal forms
    // share a verdict, so memoize under the reduced pair as well.
    if &tw != t || &uw != u {
        env.conv_insert(&tw, &uw, verdict);
    }
    verdict
}

/// Whnf-rewriting cumulativity, the oracle counterpart of [`conv_leq`].
pub fn conv_leq_via_whnf(env: &Env, t: &Term, u: &Term) -> bool {
    if t == u {
        return true;
    }
    let t = whnf(env, t);
    let u = whnf(env, u);
    match (t.data(), u.data()) {
        (TermData::Sort(s1), TermData::Sort(s2)) => s1.leq(*s2),
        (TermData::Pi(b1, c1), TermData::Pi(b2, c2)) => {
            conv_via_whnf(env, &b1.ty, &b2.ty) && conv_leq_via_whnf(env, c1, c2)
        }
        _ => conv_whnf(env, &t, &u),
    }
}

/// Conversion on terms already in weak head normal form.
fn conv_whnf(env: &Env, t: &Term, u: &Term) -> bool {
    if conv_whnf_structural(env, t, u) {
        return true;
    }
    // Surjective pairing (definitional η for single-constructor,
    // non-recursive inductives — Coq's "primitive records"):
    // `C (proj₀ z) … (projₙ z) ≡ z`.
    record_eta(env, t, u) || record_eta(env, u, t)
}

/// Does `t = Construct(I, 0) params (proj₀ z) … (projₙ z)` for a record-like
/// inductive `I`, with `z ≡ u`?
fn record_eta(env: &Env, t: &Term, u: &Term) -> bool {
    let Some((ind, 0, args)) = t.as_construct_app() else {
        return false;
    };
    let Ok(decl) = env.inductive(ind) else {
        env.note_stuck_ind(ind);
        return false;
    };
    if decl.ctors.len() != 1 || decl.nindices() != 0 {
        return false;
    }
    let p = decl.nparams();
    let nfields = decl.ctors[0].args.len();
    if nfields == 0 || args.len() != p + nfields {
        return false;
    }
    // No recursive fields (otherwise η is unsound for this check).
    if decl.recursive_flags(0).iter().any(|&r| r) {
        return false;
    }
    let mut scrutinee: Option<Term> = None;
    for i in 0..nfields {
        let w = whnf(env, &args[p + i]);
        let TermData::Elim(e) = w.data() else {
            return false;
        };
        if &e.ind != ind || e.cases.len() != 1 {
            return false;
        }
        // The case must select field i.
        let (binders, body) = e.cases[0].strip_lambdas();
        if binders.len() != nfields || body != Term::rel(nfields - 1 - i) {
            return false;
        }
        // Parameters must agree with the constructor's.
        if e.params.len() != p
            || !e
                .params
                .iter()
                .zip(args.iter())
                .all(|(x, y)| conv_via_whnf(env, x, y))
        {
            return false;
        }
        match &scrutinee {
            None => scrutinee = Some(e.scrutinee.clone()),
            Some(s) => {
                if !conv_via_whnf(env, s, &e.scrutinee) {
                    return false;
                }
            }
        }
    }
    match scrutinee {
        Some(s) => conv_via_whnf(env, &s, u),
        None => false,
    }
}

fn conv_whnf_structural(env: &Env, t: &Term, u: &Term) -> bool {
    if t == u {
        return true;
    }
    match (t.data(), u.data()) {
        (TermData::Rel(i), TermData::Rel(j)) => i == j,
        (TermData::Sort(s1), TermData::Sort(s2)) => s1 == s2,
        // Opaque or bodyless constants are compared by name; transparent
        // ones were unfolded by whnf already.
        (TermData::Const(n1), TermData::Const(n2)) => n1 == n2,
        (TermData::Ind(n1), TermData::Ind(n2)) => n1 == n2,
        (TermData::Construct(n1, j1), TermData::Construct(n2, j2)) => n1 == n2 && j1 == j2,
        (TermData::Pi(b1, c1), TermData::Pi(b2, c2)) => {
            conv_via_whnf(env, &b1.ty, &b2.ty) && conv_via_whnf(env, c1, c2)
        }
        (TermData::Lambda(b1, c1), TermData::Lambda(b2, c2)) => {
            conv_via_whnf(env, &b1.ty, &b2.ty) && conv_via_whnf(env, c1, c2)
        }
        // η: fun x => b  ≡  u  when  b ≡ u x.
        (TermData::Lambda(_, body), _) => {
            let expanded = Term::app(lift(u, 1), [Term::rel(0)]);
            conv_via_whnf(env, body, &expanded)
        }
        (_, TermData::Lambda(_, body)) => {
            let expanded = Term::app(lift(t, 1), [Term::rel(0)]);
            conv_via_whnf(env, &expanded, body)
        }
        (TermData::App(h1, a1), TermData::App(h2, a2)) => {
            a1.len() == a2.len()
                && conv_whnf(env, h1, h2)
                && a1
                    .iter()
                    .zip(a2.iter())
                    .all(|(x, y)| conv_via_whnf(env, x, y))
        }
        (TermData::Elim(e1), TermData::Elim(e2)) => {
            e1.ind == e2.ind
                && e1.params.len() == e2.params.len()
                && e1.cases.len() == e2.cases.len()
                && e1
                    .params
                    .iter()
                    .zip(e2.params.iter())
                    .all(|(x, y)| conv_via_whnf(env, x, y))
                && conv_via_whnf(env, &e1.motive, &e2.motive)
                && e1
                    .cases
                    .iter()
                    .zip(e2.cases.iter())
                    .all(|(x, y)| conv_via_whnf(env, x, y))
                && conv_via_whnf(env, &e1.scrutinee, &e2.scrutinee)
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::Sort;

    #[test]
    fn eta_conversion() {
        let env = Env::new();
        // fun (x : Set) => f x  ≡  f
        let f = Term::const_("f");
        let mut env2 = env.clone();
        env2.assume("f", Term::arrow(Term::set(), Term::set()))
            .unwrap();
        let etad = Term::lambda("x", Term::set(), Term::app(f.clone(), [Term::rel(0)]));
        assert!(conv(&env2, &etad, &f));
        assert!(conv(&env2, &f, &etad));
    }

    #[test]
    fn cumulativity_on_sorts_and_products() {
        let env = Env::new();
        assert!(conv_leq(&env, &Term::prop(), &Term::type_(3)));
        assert!(!conv_leq(&env, &Term::type_(3), &Term::prop()));
        // (Set → Prop) ≤ (Set → Type 0), domains invariant.
        let a = Term::arrow(Term::set(), Term::prop());
        let b = Term::arrow(Term::set(), Term::type_(0));
        assert!(conv_leq(&env, &a, &b));
        assert!(!conv_leq(&env, &b, &a));
        let c = Term::arrow(Term::prop(), Term::prop());
        assert!(!conv_leq(&env, &a, &c));
    }

    #[test]
    fn delta_in_conversion() {
        let mut env = Env::new();
        env.define("T", Term::type_(1), Term::set()).unwrap();
        assert!(conv(&env, &Term::const_("T"), &Term::set()));
        env.set_opaque(&"T".into(), true).unwrap();
        assert!(!conv(&env, &Term::const_("T"), &Term::set()));
        assert!(conv(&env, &Term::const_("T"), &Term::const_("T")));
        assert!(conv_leq(&env, &Term::const_("T"), &Term::const_("T")));
        let _ = Sort::Set;
    }

    #[test]
    fn conv_cache_hits_are_counted_and_symmetric() {
        let mut env = Env::new();
        env.define("T", Term::type_(1), Term::set()).unwrap();
        let t = Term::const_("T");
        env.reset_kernel_stats();
        assert!(conv(&env, &t, &Term::set()));
        let after_first = env.kernel_stats();
        assert_eq!(after_first.conv_cache_hits, 0);
        assert!(after_first.conv_cache_misses >= 1);
        // Same query again: answered from the table.
        assert!(conv(&env, &t, &Term::set()));
        // Swapped operands: conversion is symmetric, still a hit.
        assert!(conv(&env, &Term::set(), &t));
        let after = env.kernel_stats();
        assert!(after.conv_cache_hits >= 2, "stats: {after}");
        assert_eq!(after.conv_cache_misses, after_first.conv_cache_misses);
    }

    #[test]
    fn transparency_flip_invalidates_cached_conversions() {
        // The δ-staleness scenario the generation counter exists for: a
        // cached `conv(T, Set) = true` must not survive `set_opaque`.
        let mut env = Env::new();
        env.define("T", Term::type_(1), Term::set()).unwrap();
        let t = Term::const_("T");
        assert!(conv(&env, &t, &Term::set()));
        assert!(conv(&env, &t, &Term::set())); // definitely cached now
        env.set_opaque(&"T".into(), true).unwrap();
        assert!(!conv(&env, &t, &Term::set()));
        env.set_opaque(&"T".into(), false).unwrap();
        assert!(conv(&env, &t, &Term::set()));
        // A no-op flip does not retire the generation.
        let gen = env.generation();
        env.set_opaque(&"T".into(), false).unwrap();
        assert_eq!(env.generation(), gen);
    }

    #[test]
    fn cache_disabled_gives_identical_verdicts() {
        let mut env = Env::new();
        env.define("T", Term::type_(1), Term::set()).unwrap();
        env.define("U", Term::type_(1), Term::const_("T")).unwrap();
        let queries = [
            (Term::const_("U"), Term::set()),
            (Term::const_("U"), Term::const_("T")),
            (Term::const_("T"), Term::prop()),
        ];
        let cached: Vec<bool> = queries.iter().map(|(a, b)| conv(&env, a, b)).collect();
        env.set_kernel_cache(false);
        let uncached: Vec<bool> = queries.iter().map(|(a, b)| conv(&env, a, b)).collect();
        assert_eq!(cached, uncached);
        assert!(!env.kernel_cache_enabled());
        env.set_kernel_cache(true);
    }

    #[test]
    fn nbe_and_whnf_checkers_agree_on_basic_queries() {
        let mut env = Env::new();
        env.define("T", Term::type_(1), Term::set()).unwrap();
        env.define("U", Term::type_(1), Term::const_("T")).unwrap();
        env.assume("f", Term::arrow(Term::set(), Term::set()))
            .unwrap();
        let etad = Term::lambda(
            "x",
            Term::set(),
            Term::app(Term::const_("f"), [Term::rel(0)]),
        );
        let queries = [
            (Term::const_("U"), Term::set()),
            (Term::const_("U"), Term::const_("T")),
            (Term::const_("T"), Term::prop()),
            (etad, Term::const_("f")),
        ];
        for (a, b) in &queries {
            let fresh1 = env.clone();
            let fresh2 = env.clone();
            assert_eq!(
                conv(&fresh1, a, b),
                conv_via_whnf(&fresh2, a, b),
                "disagreement on {a} ≡ {b}"
            );
            assert_eq!(
                conv_leq(&fresh1, a, b),
                conv_leq_via_whnf(&fresh2, a, b),
                "leq disagreement on {a} ≤ {b}"
            );
        }
    }
}
