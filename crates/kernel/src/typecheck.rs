//! The type checker for CIC_ω.
//!
//! Bidirectional-ish: [`infer`] synthesizes a type; [`check`] compares an
//! inferred type against an expected one up to cumulativity.
//!
//! Documented simplifications relative to Coq (none of which affect the
//! paper's development): no elimination-sort restrictions (large elimination
//! is allowed everywhere, which subsumes Coq's singleton-elimination rule
//! used for `eq_rect`), and constructor argument sorts are not constrained
//! by the family's sort.

use crate::conv::{conv, conv_leq};
use crate::env::Env;
use crate::error::{KernelError, Result};
use crate::inductive::{instantiate_telescope, telescope_rels};
use crate::reduce::whnf;
use crate::subst::{beta_apply, lift, subst1};
use crate::term::{Term, TermData};
use crate::universe::Sort;

/// A typing context: a stack of variable types. Entry `i` (counting from the
/// innermost) is returned lifted into the full context.
#[derive(Clone, Debug, Default)]
pub struct Ctx {
    tys: Vec<Term>,
}

impl Ctx {
    /// The empty context.
    pub fn new() -> Self {
        Ctx::default()
    }

    /// Number of variables in scope.
    pub fn depth(&self) -> usize {
        self.tys.len()
    }

    /// Pushes the type of a new innermost variable.
    pub fn push(&mut self, ty: Term) {
        self.tys.push(ty);
    }

    /// Pops the innermost variable.
    pub fn pop(&mut self) {
        self.tys.pop();
    }

    /// The type of `Rel(i)`, lifted into the current context.
    pub fn lookup(&self, i: usize) -> Result<Term> {
        let depth = self.depth();
        if i >= depth {
            return Err(KernelError::UnboundRel { index: i, depth });
        }
        Ok(lift(&self.tys[depth - 1 - i], i + 1))
    }

    /// The raw (unlifted) entries, innermost last.
    pub fn entries(&self) -> &[Term] {
        &self.tys
    }
}

/// Infers the type of `t` in context `ctx`.
///
/// Closed terms go through the environment's per-generation type memo: a
/// closed term's type cannot mention `ctx`, so the judgement is reusable in
/// every context, and hash-consed sharing (repeated literals, shared
/// numeral suffixes) collapses to one inference per distinct `TermId`.
pub fn infer(env: &Env, ctx: &mut Ctx, t: &Term) -> Result<Term> {
    if t.is_closed() {
        if let Some(ty) = env.infer_cached(t) {
            env.tally(|s| s.infer_calls += 1);
            return Ok(ty);
        }
        let ty = infer_node(env, ctx, t)?;
        env.infer_insert(t, ty.clone());
        return Ok(ty);
    }
    infer_node(env, ctx, t)
}

fn infer_node(env: &Env, ctx: &mut Ctx, t: &Term) -> Result<Term> {
    env.tally(|s| s.infer_calls += 1);
    match t.data() {
        TermData::Rel(i) => ctx.lookup(*i),
        TermData::Sort(s) => Ok(Term::sort(s.succ())),
        TermData::Const(_) | TermData::Ind(_) | TermData::Construct(_, _) => env.global_type(t),
        TermData::App(h, args) => {
            let mut ty = infer(env, ctx, h)?;
            for arg in args {
                let ty_w = whnf(env, &ty);
                match ty_w.data() {
                    TermData::Pi(b, codomain) => {
                        check(env, ctx, arg, &b.ty)?;
                        ty = subst1(codomain, arg);
                    }
                    _ => {
                        return Err(KernelError::NotAFunction {
                            term: h.clone(),
                            ty: ty_w,
                        })
                    }
                }
            }
            Ok(ty)
        }
        TermData::Lambda(b, body) => {
            infer_sort(env, ctx, &b.ty)?;
            ctx.push(b.ty.clone());
            let body_ty = infer(env, ctx, body);
            ctx.pop();
            Ok(Term::pi(b.name.clone(), b.ty.clone(), body_ty?))
        }
        TermData::Pi(b, body) => {
            let s1 = infer_sort(env, ctx, &b.ty)?;
            ctx.push(b.ty.clone());
            let s2 = infer_sort(env, ctx, body);
            ctx.pop();
            Ok(Term::sort(Sort::product(s1, s2?)))
        }
        TermData::Let(b, v, body) => {
            infer_sort(env, ctx, &b.ty)?;
            check(env, ctx, v, &b.ty)?;
            // The type of `let x := v in body` is the type of `body[v/x]`.
            infer(env, ctx, &subst1(body, v))
        }
        TermData::Elim(e) => infer_elim(env, ctx, t, e),
    }
}

fn infer_elim(env: &Env, ctx: &mut Ctx, whole: &Term, e: &crate::term::ElimData) -> Result<Term> {
    let decl = env.inductive(&e.ind)?.clone();
    let p = decl.nparams();
    let nidx = decl.nindices();
    if e.params.len() != p {
        return Err(KernelError::IllFormedElim {
            ind: e.ind.clone(),
            reason: format!("expected {} parameters, got {}", p, e.params.len()),
        });
    }
    if e.cases.len() != decl.ctors.len() {
        return Err(KernelError::IllFormedElim {
            ind: e.ind.clone(),
            reason: format!("expected {} cases, got {}", decl.ctors.len(), e.cases.len()),
        });
    }
    // Check the parameters against the (incrementally instantiated)
    // parameter telescope.
    {
        let mut checked: Vec<Term> = Vec::with_capacity(p);
        for (i, b) in decl.params.iter().enumerate() {
            let expected = crate::inductive::subst_group(&b.ty, 0, &checked[..i]);
            check(env, ctx, &e.params[i], &expected)?;
            checked.push(e.params[i].clone());
        }
    }

    // Scrutinee: must be `Ind params indices`.
    let scrut_ty = infer(env, ctx, &e.scrutinee)?;
    let scrut_ty_w = whnf(env, &scrut_ty);
    let (ind_name, ind_args) =
        scrut_ty_w
            .as_ind_app()
            .ok_or_else(|| KernelError::NotAnInductive {
                term: e.scrutinee.clone(),
                ty: scrut_ty_w.clone(),
            })?;
    if ind_name != &e.ind || ind_args.len() != p + nidx {
        return Err(KernelError::IllFormedElim {
            ind: e.ind.clone(),
            reason: format!(
                "scrutinee has type `{scrut_ty_w}`, not an application of `{}`",
                e.ind
            ),
        });
    }
    for (given, actual) in e.params.iter().zip(ind_args.iter()) {
        if !conv(env, given, actual) {
            return Err(KernelError::IllFormedElim {
                ind: e.ind.clone(),
                reason: format!(
                    "eliminator parameter `{given}` does not match scrutinee parameter `{actual}`"
                ),
            });
        }
    }
    let index_values: Vec<Term> = ind_args[p..].to_vec();

    // Motive: must be convertible to `∀ indices, Ind params idxs → s`.
    let motive_ty = infer(env, ctx, &e.motive)?;
    check_motive_shape(env, ctx, &e.ind, &decl, &e.params, &motive_ty)?;

    // Cases.
    for (j, case) in e.cases.iter().enumerate() {
        let expected = decl.case_type(j, &e.params, &e.motive)?;
        check(env, ctx, case, &expected).map_err(|err| match err {
            KernelError::TypeMismatch {
                term,
                expected,
                found,
            } => KernelError::IllFormedElim {
                ind: e.ind.clone(),
                reason: format!(
                    "case #{j} `{term}` has type `{found}` but the motive requires `{expected}`"
                ),
            },
            other => other,
        })?;
    }

    let _ = whole;
    Ok(beta_apply(
        &e.motive,
        &index_values
            .into_iter()
            .chain([e.scrutinee.clone()])
            .collect::<Vec<_>>(),
    ))
}

/// Checks that `motive_ty` has the shape
/// `∀ (i₁:I₁)…(iₖ:Iₖ) (x : Ind params i₁…iₖ), s`.
fn check_motive_shape(
    env: &Env,
    ctx: &mut Ctx,
    ind: &crate::name::GlobalName,
    decl: &crate::inductive::InductiveDecl,
    params: &[Term],
    motive_ty: &Term,
) -> Result<()> {
    let nidx = decl.nindices();
    let idx_tele = instantiate_telescope(&decl.indices, params);
    let mut ty = motive_ty.clone();
    let mut pushed = 0usize;
    let fail = |reason: String| KernelError::IllFormedElim {
        ind: ind.clone(),
        reason,
    };
    let mut result = Ok(());
    #[allow(clippy::needless_range_loop)]
    for i in 0..=nidx {
        let ty_w = whnf(env, &ty);
        match ty_w.data() {
            TermData::Pi(b, codomain) => {
                let expected = if i < nidx {
                    // idx_tele[i] is interpreted under the previous index
                    // binders, which is exactly the context we've pushed.
                    idx_tele[i].ty.clone()
                } else {
                    Term::app(
                        Term::ind(ind.clone()),
                        params
                            .iter()
                            .map(|p| lift(p, nidx))
                            .chain(telescope_rels(nidx)),
                    )
                };
                if !conv(env, &b.ty, &expected) {
                    result = Err(fail(format!(
                        "motive domain #{i} is `{}`, expected `{expected}`",
                        b.ty
                    )));
                    break;
                }
                ctx.push(b.ty.clone());
                pushed += 1;
                ty = codomain.clone();
            }
            _ => {
                result = Err(fail(format!(
                    "motive type `{motive_ty}` has fewer than {} products",
                    nidx + 1
                )));
                break;
            }
        }
    }
    if result.is_ok() {
        let final_w = whnf(env, &ty);
        if final_w.as_sort().is_none() {
            result = Err(fail(format!("motive codomain `{final_w}` is not a sort")));
        }
    }
    for _ in 0..pushed {
        ctx.pop();
    }
    result
}

/// Infers `t`'s type and requires it to be a sort (i.e. `t` is a type).
pub fn infer_sort(env: &Env, ctx: &mut Ctx, t: &Term) -> Result<Sort> {
    let ty = infer(env, ctx, t)?;
    let ty_w = whnf(env, &ty);
    ty_w.as_sort().ok_or(KernelError::NotASort {
        term: t.clone(),
        ty: ty_w,
    })
}

/// Checks `t` against `expected` (up to cumulativity).
pub fn check(env: &Env, ctx: &mut Ctx, t: &Term, expected: &Term) -> Result<()> {
    let found = infer(env, ctx, t)?;
    if conv_leq(env, &found, expected) {
        Ok(())
    } else {
        Err(KernelError::TypeMismatch {
            term: t.clone(),
            expected: expected.clone(),
            found,
        })
    }
}

/// Checks that a closed term is a type.
pub fn check_is_type(env: &Env, t: &Term) -> Result<Sort> {
    infer_sort(env, &mut Ctx::new(), t)
}

/// Checks a closed term against a closed expected type.
pub fn check_closed(env: &Env, t: &Term, expected: &Term) -> Result<()> {
    check(env, &mut Ctx::new(), t, expected)
}

/// Infers the type of a closed term.
pub fn infer_closed(env: &Env, t: &Term) -> Result<Term> {
    infer(env, &mut Ctx::new(), t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inductive::{CtorDecl, InductiveDecl};
    use crate::term::{Binder, ElimData};

    fn env_nat() -> Env {
        let mut env = Env::new();
        env.declare_inductive(InductiveDecl {
            name: "nat".into(),
            params: vec![],
            indices: vec![],
            sort: Sort::Set,
            ctors: vec![
                CtorDecl {
                    name: "O".into(),
                    args: vec![],
                    result_indices: vec![],
                },
                CtorDecl {
                    name: "S".into(),
                    args: vec![Binder::new("n", Term::ind("nat"))],
                    result_indices: vec![],
                },
            ],
        })
        .unwrap();
        env
    }

    #[test]
    fn identity_function() {
        let env = Env::new();
        let id = Term::lambda(
            "A",
            Term::type_(0),
            Term::lambda("x", Term::rel(0), Term::rel(0)),
        );
        let ty = infer_closed(&env, &id).unwrap();
        let expected = Term::pi(
            "A",
            Term::type_(0),
            Term::pi("x", Term::rel(0), Term::rel(1)),
        );
        assert_eq!(ty, expected);
    }

    #[test]
    fn constructor_types_via_env() {
        let env = env_nat();
        assert_eq!(
            infer_closed(&env, &Term::construct("nat", 0)).unwrap(),
            Term::ind("nat")
        );
        let s_o = Term::app(Term::construct("nat", 1), [Term::construct("nat", 0)]);
        assert_eq!(infer_closed(&env, &s_o).unwrap(), Term::ind("nat"));
    }

    #[test]
    fn elim_types_as_motive_application() {
        let env = env_nat();
        // Elim(O, fun n => nat){O, fun n ih => n} : nat
        let e = Term::elim(ElimData {
            ind: "nat".into(),
            params: vec![],
            motive: Term::lambda("n", Term::ind("nat"), Term::ind("nat")),
            cases: vec![
                Term::construct("nat", 0),
                Term::lambda(
                    "n",
                    Term::ind("nat"),
                    Term::lambda("ih", Term::ind("nat"), Term::rel(1)),
                ),
            ],
            scrutinee: Term::construct("nat", 0),
        });
        assert_eq!(infer_closed(&env, &e).unwrap(), Term::ind("nat"));
    }

    #[test]
    fn elim_rejects_wrong_case_count() {
        let env = env_nat();
        let e = Term::elim(ElimData {
            ind: "nat".into(),
            params: vec![],
            motive: Term::lambda("n", Term::ind("nat"), Term::ind("nat")),
            cases: vec![Term::construct("nat", 0)],
            scrutinee: Term::construct("nat", 0),
        });
        assert!(matches!(
            infer_closed(&env, &e),
            Err(KernelError::IllFormedElim { .. })
        ));
    }

    #[test]
    fn elim_rejects_bad_case_type() {
        let env = env_nat();
        let e = Term::elim(ElimData {
            ind: "nat".into(),
            params: vec![],
            motive: Term::lambda("n", Term::ind("nat"), Term::ind("nat")),
            cases: vec![
                Term::construct("nat", 0),
                // Wrong: successor case must take two arguments.
                Term::construct("nat", 0),
            ],
            scrutinee: Term::construct("nat", 0),
        });
        assert!(infer_closed(&env, &e).is_err());
    }

    #[test]
    fn app_checks_argument_types() {
        let env = env_nat();
        let id_nat = Term::lambda("x", Term::ind("nat"), Term::rel(0));
        let good = Term::app(id_nat.clone(), [Term::construct("nat", 0)]);
        assert!(infer_closed(&env, &good).is_ok());
        let bad = Term::app(id_nat, [Term::set()]);
        assert!(matches!(
            infer_closed(&env, &bad),
            Err(KernelError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn unbound_rel_is_an_error() {
        let env = Env::new();
        assert!(matches!(
            infer_closed(&env, &Term::rel(0)),
            Err(KernelError::UnboundRel { .. })
        ));
    }

    #[test]
    fn let_type_substitutes() {
        let env = env_nat();
        let t = Term::let_(
            "x",
            Term::ind("nat"),
            Term::construct("nat", 0),
            Term::app(Term::construct("nat", 1), [Term::rel(0)]),
        );
        assert_eq!(infer_closed(&env, &t).unwrap(), Term::ind("nat"));
    }
}
