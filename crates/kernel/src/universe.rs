//! Sorts and the universe discipline of CIC_ω.
//!
//! The paper's calculus (Fig. 7) has sorts `Prop`, `Set`, and `Type⟨i⟩`.
//! We reproduce Coq's core rules:
//!
//! * `Prop : Type(1)`, `Set : Type(1)`, `Type(i) : Type(i+1)`;
//! * cumulativity `Prop ≤ Set ≤ Type(i) ≤ Type(j)` for `i ≤ j`;
//! * products are impredicative in `Prop` and predicative elsewhere.

use std::fmt;

/// A sort (universe) of CIC_ω.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Sort {
    /// The impredicative universe of propositions.
    Prop,
    /// The predicative universe of "small" computational types.
    Set,
    /// The predicative hierarchy; `Type(0)` is one level above `Set`.
    Type(u32),
}

impl Sort {
    /// The sort that this sort inhabits (`s : s.succ()`).
    pub fn succ(self) -> Sort {
        match self {
            Sort::Prop | Sort::Set => Sort::Type(1),
            Sort::Type(i) => Sort::Type(i + 1),
        }
    }

    /// Cumulativity: is `self ≤ other`?
    pub fn leq(self, other: Sort) -> bool {
        match (self, other) {
            (Sort::Prop, _) => true,
            (Sort::Set, Sort::Prop) => false,
            (Sort::Set, _) => true,
            (Sort::Type(_), Sort::Prop | Sort::Set) => false,
            (Sort::Type(i), Sort::Type(j)) => i <= j,
        }
    }

    /// The sort of a product `∀ (x : A), B` where `A : domain` and
    /// `B : codomain`.
    ///
    /// `Prop` is impredicative: if the codomain lives in `Prop`, so does the
    /// product. `Set` and `Type` are predicative and take a maximum.
    pub fn product(domain: Sort, codomain: Sort) -> Sort {
        match codomain {
            Sort::Prop => Sort::Prop,
            Sort::Set => match domain {
                Sort::Prop | Sort::Set => Sort::Set,
                Sort::Type(i) => Sort::Type(i),
            },
            Sort::Type(j) => {
                let i = match domain {
                    Sort::Prop | Sort::Set => 0,
                    Sort::Type(i) => i,
                };
                Sort::Type(i.max(j))
            }
        }
    }

    /// The least upper bound of two sorts under cumulativity.
    pub fn max(self, other: Sort) -> Sort {
        if self.leq(other) {
            other
        } else {
            self
        }
    }

    /// Is this the impredicative sort `Prop`?
    pub fn is_prop(self) -> bool {
        matches!(self, Sort::Prop)
    }
}

impl fmt::Display for Sort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sort::Prop => write!(f, "Prop"),
            Sort::Set => write!(f, "Set"),
            Sort::Type(i) => write!(f, "Type({i})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn successor() {
        assert_eq!(Sort::Prop.succ(), Sort::Type(1));
        assert_eq!(Sort::Set.succ(), Sort::Type(1));
        assert_eq!(Sort::Type(3).succ(), Sort::Type(4));
    }

    #[test]
    fn cumulativity_chain() {
        assert!(Sort::Prop.leq(Sort::Set));
        assert!(Sort::Set.leq(Sort::Type(0)));
        assert!(Sort::Type(0).leq(Sort::Type(5)));
        assert!(!Sort::Type(5).leq(Sort::Type(0)));
        assert!(!Sort::Set.leq(Sort::Prop));
        assert!(!Sort::Type(0).leq(Sort::Set));
    }

    #[test]
    fn impredicative_prop() {
        assert_eq!(Sort::product(Sort::Type(7), Sort::Prop), Sort::Prop);
        assert_eq!(Sort::product(Sort::Prop, Sort::Prop), Sort::Prop);
    }

    #[test]
    fn predicative_products() {
        assert_eq!(Sort::product(Sort::Set, Sort::Set), Sort::Set);
        assert_eq!(Sort::product(Sort::Type(2), Sort::Set), Sort::Type(2));
        assert_eq!(Sort::product(Sort::Type(2), Sort::Type(1)), Sort::Type(2));
        assert_eq!(Sort::product(Sort::Prop, Sort::Type(1)), Sort::Type(1));
    }

    #[test]
    fn lub() {
        assert_eq!(Sort::Prop.max(Sort::Set), Sort::Set);
        assert_eq!(Sort::Type(2).max(Sort::Type(3)), Sort::Type(3));
        assert_eq!(Sort::Type(2).max(Sort::Set), Sort::Type(2));
    }
}
