//! De Bruijn lifting and capture-avoiding substitution.

use crate::term::{Binder, ElimData, Term, TermData};

/// Shifts all de Bruijn indices `≥ cutoff` by `amount`.
pub fn lift_from(t: &Term, cutoff: usize, amount: usize) -> Term {
    if amount == 0 || t.free_rel_bound() <= cutoff {
        // No free variable reaches the cutoff: the interned node already
        // caches that bound, so closed subterms are skipped in O(1).
        return t.clone();
    }
    match t.data() {
        TermData::Rel(i) => {
            if *i >= cutoff {
                Term::rel(i + amount)
            } else {
                t.clone()
            }
        }
        TermData::Sort(_) | TermData::Const(_) | TermData::Ind(_) | TermData::Construct(_, _) => {
            t.clone()
        }
        TermData::App(h, args) => Term::app(
            lift_from(h, cutoff, amount),
            args.iter().map(|a| lift_from(a, cutoff, amount)),
        ),
        TermData::Lambda(b, body) => Term::new(TermData::Lambda(
            Binder {
                name: b.name.clone(),
                ty: lift_from(&b.ty, cutoff, amount),
            },
            lift_from(body, cutoff + 1, amount),
        )),
        TermData::Pi(b, body) => Term::new(TermData::Pi(
            Binder {
                name: b.name.clone(),
                ty: lift_from(&b.ty, cutoff, amount),
            },
            lift_from(body, cutoff + 1, amount),
        )),
        TermData::Let(b, v, body) => Term::new(TermData::Let(
            Binder {
                name: b.name.clone(),
                ty: lift_from(&b.ty, cutoff, amount),
            },
            lift_from(v, cutoff, amount),
            lift_from(body, cutoff + 1, amount),
        )),
        TermData::Elim(e) => Term::elim(ElimData {
            ind: e.ind.clone(),
            params: e
                .params
                .iter()
                .map(|p| lift_from(p, cutoff, amount))
                .collect(),
            motive: lift_from(&e.motive, cutoff, amount),
            cases: e
                .cases
                .iter()
                .map(|c| lift_from(c, cutoff, amount))
                .collect(),
            scrutinee: lift_from(&e.scrutinee, cutoff, amount),
        }),
    }
}

/// Shifts all free de Bruijn indices by `amount`.
pub fn lift(t: &Term, amount: usize) -> Term {
    lift_from(t, 0, amount)
}

/// Substitutes `value` for `Rel(k)` in `t`, decrementing indices above `k`.
///
/// `value` is interpreted in the context *outside* binder `k`; it is lifted
/// as the traversal crosses binders.
pub fn subst_at(t: &Term, k: usize, value: &Term) -> Term {
    if t.free_rel_bound() <= k {
        // No free variable reaches index k: nothing to substitute and
        // nothing above k to decrement (O(1), from the interned ceiling).
        return t.clone();
    }
    match t.data() {
        TermData::Rel(i) => {
            if *i == k {
                lift(value, k)
            } else if *i > k {
                Term::rel(i - 1)
            } else {
                t.clone()
            }
        }
        TermData::Sort(_) | TermData::Const(_) | TermData::Ind(_) | TermData::Construct(_, _) => {
            t.clone()
        }
        TermData::App(h, args) => Term::app(
            subst_at(h, k, value),
            args.iter().map(|a| subst_at(a, k, value)),
        ),
        TermData::Lambda(b, body) => Term::new(TermData::Lambda(
            Binder {
                name: b.name.clone(),
                ty: subst_at(&b.ty, k, value),
            },
            subst_at(body, k + 1, value),
        )),
        TermData::Pi(b, body) => Term::new(TermData::Pi(
            Binder {
                name: b.name.clone(),
                ty: subst_at(&b.ty, k, value),
            },
            subst_at(body, k + 1, value),
        )),
        TermData::Let(b, v, body) => Term::new(TermData::Let(
            Binder {
                name: b.name.clone(),
                ty: subst_at(&b.ty, k, value),
            },
            subst_at(v, k, value),
            subst_at(body, k + 1, value),
        )),
        TermData::Elim(e) => Term::elim(ElimData {
            ind: e.ind.clone(),
            params: e.params.iter().map(|p| subst_at(p, k, value)).collect(),
            motive: subst_at(&e.motive, k, value),
            cases: e.cases.iter().map(|c| subst_at(c, k, value)).collect(),
            scrutinee: subst_at(&e.scrutinee, k, value),
        }),
    }
}

/// Substitutes `value` for the innermost binder (`Rel(0)`).
pub fn subst1(t: &Term, value: &Term) -> Term {
    subst_at(t, 0, value)
}

/// Substitutes a telescope of values for binders `0..values.len()`, where
/// `values[0]` replaces the *innermost* binder `Rel(0)`.
///
/// All values are interpreted in the context outside the whole binder group:
/// this is a genuine *simultaneous* substitution. (A previous implementation
/// iterated [`subst1`], which decremented the free variables of
/// earlier-substituted open values — e.g. `Rel(0)[Rel(5), b]` came out as
/// `Rel(4)`; see `tests/kernel_properties.rs::subst_many_open_values`.)
pub fn subst_many(t: &Term, values: &[Term]) -> Term {
    // `subst_group` declares the *deepest* binder first, so reverse.
    let declared: Vec<Term> = values.iter().rev().cloned().collect();
    subst_group(t, 0, &declared)
}

/// Simultaneously substitutes `values` (in declaration order) for the binder
/// group starting at de Bruijn index `base` in `t`. Binder group convention:
/// the *first* declared value corresponds to the *deepest* index
/// `base + len - 1`. The values are interpreted in the context *outside* the
/// group; indices above the group are shifted down by `values.len()`.
pub fn subst_group(t: &Term, base: usize, values: &[Term]) -> Term {
    if values.is_empty() {
        return t.clone();
    }
    fn go(t: &Term, depth: usize, base: usize, values: &[Term]) -> Term {
        if t.free_rel_bound() <= depth + base {
            // Every free variable is below the group: untouched (O(1)).
            return t.clone();
        }
        let p = values.len();
        match t.data() {
            TermData::Rel(m) => {
                if *m < depth + base {
                    t.clone()
                } else if *m < depth + base + p {
                    // Group member: first declared is the deepest.
                    let offset = m - depth - base; // 0 = innermost = last declared
                    lift(&values[p - 1 - offset], depth + base)
                } else {
                    Term::rel(m - p)
                }
            }
            TermData::Sort(_)
            | TermData::Const(_)
            | TermData::Ind(_)
            | TermData::Construct(_, _) => t.clone(),
            TermData::App(h, args) => Term::app(
                go(h, depth, base, values),
                args.iter().map(|a| go(a, depth, base, values)),
            ),
            TermData::Lambda(b, body) => Term::new(TermData::Lambda(
                Binder {
                    name: b.name.clone(),
                    ty: go(&b.ty, depth, base, values),
                },
                go(body, depth + 1, base, values),
            )),
            TermData::Pi(b, body) => Term::new(TermData::Pi(
                Binder {
                    name: b.name.clone(),
                    ty: go(&b.ty, depth, base, values),
                },
                go(body, depth + 1, base, values),
            )),
            TermData::Let(b, v, body) => Term::new(TermData::Let(
                Binder {
                    name: b.name.clone(),
                    ty: go(&b.ty, depth, base, values),
                },
                go(v, depth, base, values),
                go(body, depth + 1, base, values),
            )),
            TermData::Elim(e) => Term::elim(ElimData {
                ind: e.ind.clone(),
                params: e
                    .params
                    .iter()
                    .map(|x| go(x, depth, base, values))
                    .collect(),
                motive: go(&e.motive, depth, base, values),
                cases: e.cases.iter().map(|c| go(c, depth, base, values)).collect(),
                scrutinee: go(&e.scrutinee, depth, base, values),
            }),
        }
    }
    go(t, 0, base, values)
}

/// Beta-reduces `fun xs => body` applied to `args` as far as the binders
/// allow, returning the reduced term and any leftover arguments applied.
pub fn beta_apply(f: &Term, args: &[Term]) -> Term {
    let mut t = f.clone();
    let mut i = 0;
    while i < args.len() {
        match t.data() {
            TermData::Lambda(_, body) => {
                t = subst1(body, &args[i]);
                i += 1;
            }
            _ => break,
        }
    }
    Term::app(t, args[i..].iter().cloned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;

    #[test]
    fn lift_respects_cutoff() {
        // fun (x : Set) => #0 #1  — #0 bound, #1 free.
        let t = Term::lambda("x", Term::set(), Term::app(Term::rel(0), [Term::rel(1)]));
        let lifted = lift(&t, 3);
        let expect = Term::lambda("x", Term::set(), Term::app(Term::rel(0), [Term::rel(4)]));
        assert_eq!(lifted, expect);
    }

    #[test]
    fn subst_under_binder() {
        // (fun (x : Set) => #0 #1)[#0 := c]  ==  fun (x : Set) => #0 c
        let t = Term::lambda("x", Term::set(), Term::app(Term::rel(0), [Term::rel(1)]));
        let c = Term::const_("c");
        let r = subst1(&t, &c);
        let expect = Term::lambda(
            "x",
            Term::set(),
            Term::app(Term::rel(0), [Term::const_("c")]),
        );
        assert_eq!(r, expect);
    }

    #[test]
    fn subst_decrements_higher_indices() {
        let t = Term::app(Term::rel(2), [Term::rel(0)]);
        let r = subst1(&t, &Term::const_("c"));
        assert_eq!(r, Term::app(Term::rel(1), [Term::const_("c")]));
    }

    #[test]
    fn subst_lifts_value_across_binders() {
        // (fun (x : Set) => #1)[#0 := #5]  ==  fun (x : Set) => #6
        let t = Term::lambda("x", Term::set(), Term::rel(1));
        let r = subst1(&t, &Term::rel(5));
        assert_eq!(r, Term::lambda("x", Term::set(), Term::rel(6)));
    }

    #[test]
    fn beta_apply_partial_and_over() {
        // (fun x y => y x) a b  →  b a
        let f = Term::lambda(
            "x",
            Term::set(),
            Term::lambda("y", Term::set(), Term::app(Term::rel(0), [Term::rel(1)])),
        );
        let r = beta_apply(&f, &[Term::const_("a"), Term::const_("b")]);
        assert_eq!(r, Term::app(Term::const_("b"), [Term::const_("a")]));
        // Under-application leaves a lambda.
        let r2 = beta_apply(&f, &[Term::const_("a")]);
        assert!(matches!(r2.data(), TermData::Lambda(_, _)));
        // Over-application re-applies the leftovers.
        let id = Term::lambda("x", Term::set(), Term::rel(0));
        let r3 = beta_apply(&id, &[Term::const_("f"), Term::const_("a")]);
        assert_eq!(r3, Term::app(Term::const_("f"), [Term::const_("a")]));
    }

    #[test]
    fn lift_zero_is_identity() {
        let t = Term::lambda("x", Term::set(), Term::rel(7));
        assert_eq!(lift(&t, 0), t);
    }

    #[test]
    fn subst_many_order() {
        // #0 and #1 replaced by a and b respectively.
        let t = Term::app(Term::rel(0), [Term::rel(1)]);
        let r = subst_many(&t, &[Term::const_("a"), Term::const_("b")]);
        assert_eq!(r, Term::app(Term::const_("a"), [Term::const_("b")]));
    }

    #[test]
    fn subst_many_keeps_open_values_intact() {
        // Regression: iterated subst1 dropped Rel(0)[Rel(5), b] to Rel(4) —
        // the later substitution of `b` decremented the already-substituted
        // open value. Simultaneous substitution must leave it at Rel(5).
        let r = subst_many(&Term::rel(0), &[Term::rel(5), Term::const_("b")]);
        assert_eq!(r, Term::rel(5));
        // Both values open: each keeps its outside-the-group interpretation.
        let t = Term::app(Term::rel(0), [Term::rel(1)]);
        let r = subst_many(&t, &[Term::rel(3), Term::rel(7)]);
        assert_eq!(r, Term::app(Term::rel(3), [Term::rel(7)]));
    }

    #[test]
    fn subst_many_shifts_ambient_indices_down() {
        // Rel(2) is outside a group of two binders: it ends at Rel(0), and
        // open values are untouched by the shift.
        let t = Term::app(Term::rel(2), [Term::rel(0), Term::rel(1)]);
        let r = subst_many(&t, &[Term::rel(0), Term::const_("c")]);
        assert_eq!(
            r,
            Term::app(Term::rel(0), [Term::rel(0), Term::const_("c")])
        );
    }

    #[test]
    fn subst_many_lifts_open_values_under_binders() {
        // (fun (x : Set) => #1 #2)[#4, c] == fun (x : Set) => #5 c:
        // inside the lambda the group sits at indices 1..3, and the open
        // value #4 must be lifted across the lambda binder.
        let t = Term::lambda("x", Term::set(), Term::app(Term::rel(1), [Term::rel(2)]));
        let r = subst_many(&t, &[Term::rel(4), Term::const_("c")]);
        let expect = Term::lambda(
            "x",
            Term::set(),
            Term::app(Term::rel(5), [Term::const_("c")]),
        );
        assert_eq!(r, expect);
    }

    #[test]
    fn subst_many_agrees_with_descending_subst_at() {
        // The spec: simultaneous substitution equals substituting one value
        // at a time at *descending* indices (each subst_at removes the
        // outermost remaining group binder, so earlier-substituted values
        // are never re-traversed).
        let t = Term::app(
            Term::rel(0),
            [
                Term::rel(1),
                Term::rel(2),
                Term::lambda("x", Term::set(), Term::app(Term::rel(1), [Term::rel(3)])),
            ],
        );
        let values = [
            Term::rel(2),
            Term::app(Term::rel(0), [Term::rel(1)]),
            Term::const_("k"),
        ];
        let mut expect = t.clone();
        for (k, v) in values.iter().enumerate().rev() {
            expect = subst_at(&expect, k, v);
        }
        assert_eq!(subst_many(&t, &values), expect);
    }
}
