//! # pumpkin-kernel
//!
//! A from-scratch kernel for CIC_ω — the calculus of the paper *Proof Repair
//! Across Type Equivalences* (PLDI 2021), Fig. 7: variables, sorts, dependent
//! products, functions, application, inductive families, constructors, and
//! **primitive eliminators** (no `match`/`fix`; the paper's `Preprocess` step
//! is assumed).
//!
//! This crate plays the role Coq's kernel plays for the original Pumpkin Pi
//! plugin: it owns the term language ([`term::Term`]), binding and
//! substitution ([`subst`]), the global environment ([`env::Env`]),
//! βδιζη-reduction ([`reduce`]), definitional equality ([`conv`]), and the
//! dependent type checker ([`typecheck`]).
//!
//! ## Example
//!
//! ```
//! use pumpkin_kernel::prelude::*;
//!
//! # fn main() -> Result<()> {
//! let mut env = Env::new();
//! env.declare_inductive(InductiveDecl {
//!     name: "bool".into(),
//!     params: vec![],
//!     indices: vec![],
//!     sort: Sort::Set,
//!     ctors: vec![
//!         CtorDecl { name: "true".into(), args: vec![], result_indices: vec![] },
//!         CtorDecl { name: "false".into(), args: vec![], result_indices: vec![] },
//!     ],
//! })?;
//! let negb = Term::lambda(
//!     "b",
//!     Term::ind("bool"),
//!     Term::elim(ElimData {
//!         ind: "bool".into(),
//!         params: vec![],
//!         motive: Term::lambda("_", Term::ind("bool"), Term::ind("bool")),
//!         cases: vec![Term::construct("bool", 1), Term::construct("bool", 0)],
//!         scrutinee: Term::rel(0),
//!     }),
//! );
//! env.define("negb", Term::arrow(Term::ind("bool"), Term::ind("bool")), negb)?;
//! let t = Term::app(Term::const_("negb"), [Term::construct("bool", 0)]);
//! assert_eq!(normalize(&env, &t), Term::construct("bool", 1));
//! # Ok(())
//! # }
//! ```

pub mod conv;
pub mod env;
pub mod error;
pub mod inductive;
pub mod intern;
pub mod name;
pub mod nbe;
pub mod reduce;
pub mod stats;
pub mod subst;
pub mod term;
pub mod typecheck;
pub mod universe;

/// Re-export of the structured tracing layer the kernel is instrumented
/// with, so downstream crates can name [`trace::Tracer`] and
/// [`trace::EventKind`] without a separate dependency.
pub use pumpkin_trace as trace;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::conv::{conv, conv_leq};
    pub use crate::env::{ConstDecl, Env, GlobalRef};
    pub use crate::error::{KernelError, Result};
    pub use crate::inductive::{CtorDecl, InductiveDecl};
    pub use crate::intern::{interner_stats, InternerStats, TermId};
    pub use crate::name::{GlobalName, Name};
    pub use crate::nbe::nbe_normalize;
    pub use crate::reduce::{normalize, whnf};
    pub use crate::stats::KernelStats;
    pub use crate::subst::{
        beta_apply, lift, lift_from, subst1, subst_at, subst_group, subst_many,
    };
    pub use crate::term::{Binder, ElimData, Term, TermData};
    pub use crate::typecheck::{
        check, check_closed, check_is_type, infer, infer_closed, infer_sort, Ctx,
    };
    pub use crate::universe::Sort;
}
