//! The global environment: constants and inductive families — plus the
//! sharing-aware memo tables for the kernel's `conv`/`whnf` hot paths.

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, HashSet};

use pumpkin_trace::{CacheTable, EventKind, Tracer};

use crate::error::{KernelError, Result};
use crate::inductive::InductiveDecl;
use crate::intern::TermId;
use crate::name::GlobalName;
use crate::stats::KernelStats;
use crate::term::Term;
use crate::typecheck;

/// A global constant: a definition (with body) or an axiom (without).
///
/// `opaque` constants are never δ-unfolded by reduction. This reproduces the
/// paper's "cache to tell Pumpkin Pi not to δ-reduce certain terms" (§4.4).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConstDecl {
    /// The constant's name.
    pub name: GlobalName,
    /// Its declared type (closed).
    pub ty: Term,
    /// Its body, if it is a definition.
    pub body: Option<Term>,
    /// Whether δ-reduction may unfold it.
    pub opaque: bool,
}

/// An entry in the environment's declaration order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GlobalRef {
    /// A constant.
    Const(GlobalName),
    /// An inductive family.
    Ind(GlobalName),
}

/// Entries beyond this bound flush a memo table (runaway-workload guard;
/// real module repairs stay far below it).
const CACHE_CAP: usize = 1 << 20;

/// Interior-mutable memo tables for `whnf` and `conv`, plus the
/// [`KernelStats`] counters.
///
/// Cached results are valid for a single environment *generation*:
/// δ-unfolding depends on which constants exist and on their transparency,
/// so every `Env` mutation that can change a cached answer bumps
/// [`Env::generation`] and the tables are lazily flushed at the next probe
/// ([`Env::cache_fresh`]). Globals are immutable once declared
/// (redeclaration is an error), so mutations split into two classes:
///
/// * `set_opaque` flips, `remove`, and the `declare_inductive` rollback
///   *always* retire the generation — they change what an existing name
///   means;
/// * declaring a *new* global (`define`, `assume`, `declare_inductive`)
///   only retires the generation if some cached computation previously got
///   stuck on that very name (tracked in `stuck`) — any other cached
///   result cannot mention a name that did not resolve, so it stays valid.
///
/// The tables key on [`TermId`] — the interner's alpha-canonical integer
/// identity — so a probe hashes and compares plain `u32`s regardless of
/// term size, and alpha-variant queries share one entry by construction.
/// The `whnf` table keeps the result `Term` alive; `conv` entries are pure
/// integers.
#[derive(Clone, Debug)]
struct KernelCache {
    /// Generation the tables were computed at.
    stamp: Cell<u64>,
    /// Master switch (ablation / differential testing).
    enabled: Cell<bool>,
    whnf: RefCell<HashMap<TermId, Term>>,
    /// Keyed on the *ordered* id pair (min first): conversion is symmetric,
    /// so both orientations of a query land on the same entry.
    conv: RefCell<HashMap<(TermId, TermId), bool>>,
    /// NbE values of *closed* terms. A closed term's value cannot mention
    /// the local evaluation environment, so one entry serves every context
    /// the term appears in — hash-consing makes the repeated occurrences of
    /// a large shared subterm (one `TermId`) evaluate exactly once per
    /// generation. Invalidation is the whnf table's: values embed neutrals
    /// for δ-blocked names, and declaring an observed-stuck name retires
    /// the generation.
    nf: RefCell<HashMap<TermId, crate::nbe::VRc>>,
    /// Inferred types of *closed* terms. A closed term's type cannot
    /// mention the local context, so one entry serves every context the
    /// term appears in. With hash-consing this is where the sharing pays
    /// off for the type checker: a literal that occurs k times — or whose
    /// k occurrences share suffixes, like numeral chains — is inferred
    /// once per distinct `TermId`, not once per occurrence.
    ty: RefCell<HashMap<TermId, Term>>,
    /// Undeclared names observed stuck by `whnf`/`conv` this generation;
    /// declaring one of these retires the generation.
    stuck: RefCell<HashSet<GlobalName>>,
    stats: RefCell<KernelStats>,
}

impl Default for KernelCache {
    fn default() -> Self {
        KernelCache {
            stamp: Cell::new(0),
            enabled: Cell::new(true),
            whnf: RefCell::new(HashMap::new()),
            conv: RefCell::new(HashMap::new()),
            nf: RefCell::new(HashMap::new()),
            ty: RefCell::new(HashMap::new()),
            stuck: RefCell::new(HashSet::new()),
            stats: RefCell::new(KernelStats::default()),
        }
    }
}

/// The global environment.
///
/// All mutating operations type check their input: a well-typed environment
/// stays well-typed (modulo the documented universe simplifications).
///
/// ## Thread confinement
///
/// `Env` is `Send` but deliberately **not** `Sync`: the conv/whnf memo
/// tables are interior-mutable (`Cell`/`RefCell`), so an environment — and
/// with it its caches — belongs to exactly one thread at a time. The
/// parallel repair scheduler honours this by *cloning* the master `Env`
/// once per worker (terms are `Arc`-shared, so a clone is shallow) and
/// moving each clone onto its thread; caches are never shared mutable.
#[derive(Debug, Default)]
pub struct Env {
    consts: HashMap<GlobalName, ConstDecl>,
    inductives: HashMap<GlobalName, InductiveDecl>,
    ctor_names: HashMap<GlobalName, (GlobalName, usize)>,
    order: Vec<GlobalRef>,
    /// Bumped by every mutation that can change reduction or conversion.
    generation: u64,
    cache: KernelCache,
    /// Structured trace sink for kernel probes (whnf/conv calls, cache
    /// hits/misses, rollbacks). Disabled by default — every probe is then a
    /// single branch. Like the memo tables, the tracer is thread-confined;
    /// cloning an `Env` clones the tracer's *configuration* but not its
    /// buffered events.
    tracer: Tracer,
}

// Worker threads receive cloned environments by move; `RefCell`/`Cell`
// keep `Env` !Sync, which is the cache thread-confinement invariant.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Env>();
};

impl Clone for Env {
    fn clone(&self) -> Env {
        // Memo tables whose stamp lags the generation would be flushed at
        // the clone's next probe anyway ([`Env::cache_fresh`]), so copying
        // them is pure waste — a daemon session's per-request clone was
        // paying for thousands of dead entries. Start the clone with empty
        // tables at the same stale stamp: the first probe performs the
        // (now free) flush, so observable behavior — including the
        // `invalidations` counter — is unchanged.
        let cache = if self.cache.stamp.get() == self.generation {
            self.cache.clone()
        } else {
            KernelCache {
                stamp: Cell::new(self.cache.stamp.get()),
                enabled: Cell::new(self.cache.enabled.get()),
                stats: RefCell::new(*self.cache.stats.borrow()),
                ..KernelCache::default()
            }
        };
        Env {
            consts: self.consts.clone(),
            inductives: self.inductives.clone(),
            ctor_names: self.ctor_names.clone(),
            order: self.order.clone(),
            generation: self.generation,
            cache,
            tracer: self.tracer.clone(),
        }
    }
}

impl Env {
    /// Creates an empty environment.
    pub fn new() -> Self {
        Env::default()
    }

    // ------------------------------------------------------------------
    // Conversion/whnf memo tables (see `KernelCache`)
    // ------------------------------------------------------------------

    /// The environment's mutation generation. Any cached judgement about
    /// terms (conversion, normal forms, typing) is valid for a single
    /// generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Enables or disables the kernel-side conv/whnf memo tables
    /// (disabling also flushes them). For ablation benchmarks and
    /// differential tests; results must be identical either way.
    pub fn set_kernel_cache(&mut self, enabled: bool) {
        self.cache.enabled.set(enabled);
        if !enabled {
            self.cache.whnf.borrow_mut().clear();
            self.cache.conv.borrow_mut().clear();
            self.cache.nf.borrow_mut().clear();
            self.cache.ty.borrow_mut().clear();
            self.cache.stuck.borrow_mut().clear();
        }
    }

    /// Is the kernel-side memo layer on?
    pub fn kernel_cache_enabled(&self) -> bool {
        self.cache.enabled.get()
    }

    /// Snapshot of the kernel counters (cache hits/misses, reduction
    /// steps). Use [`KernelStats::since`] to diff snapshots.
    pub fn kernel_stats(&self) -> KernelStats {
        *self.cache.stats.borrow()
    }

    /// Resets the kernel counters to zero.
    pub fn reset_kernel_stats(&self) {
        *self.cache.stats.borrow_mut() = KernelStats::default();
    }

    // ------------------------------------------------------------------
    // Structured tracing (see `pumpkin_trace`)
    // ------------------------------------------------------------------

    /// Installs a tracer; kernel probes (whnf/conv calls, cache hits and
    /// misses, rollbacks) are recorded into it from now on. Install a
    /// [`Tracer::disabled`] to turn tracing back off.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The installed tracer (disabled by default).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Removes and returns the installed tracer (with its buffered
    /// events), leaving a disabled one behind.
    pub fn take_tracer(&mut self) -> Tracer {
        std::mem::take(&mut self.tracer)
    }

    /// Records an environment mutation: cached reduction/conversion
    /// results may no longer hold, so retire the current generation.
    fn bump_generation(&mut self) {
        self.generation += 1;
    }

    /// Lazily flushes stale tables; returns whether the cache is usable.
    fn cache_fresh(&self) -> bool {
        if !self.cache.enabled.get() {
            return false;
        }
        if self.cache.stamp.get() != self.generation {
            self.cache.whnf.borrow_mut().clear();
            self.cache.conv.borrow_mut().clear();
            self.cache.nf.borrow_mut().clear();
            self.cache.ty.borrow_mut().clear();
            self.cache.stuck.borrow_mut().clear();
            self.cache.stamp.set(self.generation);
            self.cache.stats.borrow_mut().invalidations += 1;
        }
        true
    }

    /// Records that reduction observed `name` as an *undeclared* constant
    /// (a stuck δ-step). Cached results computed after this observation may
    /// change if `name` is later declared, so [`Env::define`] and friends
    /// consult the set via [`Env::retire_if_observed_stuck`].
    pub(crate) fn note_stuck_const(&self, name: &GlobalName) {
        if self.cache.enabled.get() && !self.consts.contains_key(name) {
            self.cache.stuck.borrow_mut().insert(name.clone());
        }
    }

    /// Like [`Env::note_stuck_const`], for a failed inductive lookup
    /// (a stuck ι-step or η-probe on an undeclared family).
    pub(crate) fn note_stuck_ind(&self, name: &GlobalName) {
        if self.cache.enabled.get() {
            self.cache.stuck.borrow_mut().insert(name.clone());
        }
    }

    /// Declaring a brand-new global can only affect cached results that
    /// observed its name stuck; everything else cached stays valid (names
    /// are immutable once declared), so the generation is retired only on a
    /// recorded observation.
    fn retire_if_observed_stuck(&mut self, name: &GlobalName) {
        if self.cache.stuck.borrow().contains(name) {
            self.bump_generation();
        }
    }

    /// Applies `f` to the stats counters (no-op free: counters are plain
    /// integers behind a `RefCell`).
    pub(crate) fn tally(&self, f: impl FnOnce(&mut KernelStats)) {
        f(&mut self.cache.stats.borrow_mut());
    }

    /// Cached weak head normal form of `t`, if the memo layer has one.
    pub(crate) fn whnf_cached(&self, t: &Term) -> Option<Term> {
        if !self.cache_fresh() {
            return None;
        }
        let hit = self.cache.whnf.borrow().get(&t.id()).cloned();
        let is_hit = hit.is_some();
        self.tally(|s| {
            if is_hit {
                s.whnf_cache_hits += 1;
            } else {
                s.whnf_cache_misses += 1;
            }
        });
        self.tracer.emit(if is_hit {
            EventKind::CacheHit {
                table: CacheTable::Whnf,
            }
        } else {
            EventKind::CacheMiss {
                table: CacheTable::Whnf,
            }
        });
        hit
    }

    /// Memoizes `whnf(t) = r` for the current generation.
    pub(crate) fn whnf_insert(&self, t: Term, r: Term) {
        if !self.cache_fresh() {
            return;
        }
        let mut table = self.cache.whnf.borrow_mut();
        if table.len() >= CACHE_CAP {
            table.clear();
        }
        table.insert(t.id(), r);
    }

    /// Cached NbE value of the *closed* term `t`, if the memo layer has
    /// one. Untallied and untraced: this table sits below the whnf/conv
    /// probes the telemetry pins, and a probe here is a `u32` hash on the
    /// hot evaluation path.
    pub(crate) fn nbe_cached(&self, t: &Term) -> Option<crate::nbe::VRc> {
        if !self.cache_fresh() {
            return None;
        }
        self.cache.nf.borrow().get(&t.id()).cloned()
    }

    /// Memoizes the NbE value of the closed term `t` for the current
    /// generation.
    pub(crate) fn nbe_insert(&self, t: &Term, v: crate::nbe::VRc) {
        if !self.cache_fresh() {
            return;
        }
        let mut table = self.cache.nf.borrow_mut();
        if table.len() >= CACHE_CAP {
            table.clear();
        }
        table.insert(t.id(), v);
    }

    /// Cached inferred type of the *closed* term `t`, if the memo layer
    /// has one. Untallied and untraced, like [`Env::nbe_cached`].
    pub(crate) fn infer_cached(&self, t: &Term) -> Option<Term> {
        if !self.cache_fresh() {
            return None;
        }
        self.cache.ty.borrow().get(&t.id()).cloned()
    }

    /// Memoizes `infer(t) = ty` for the closed term `t` for the current
    /// generation. Only successful judgements are cached — failures can
    /// depend on names that are merely not declared *yet*.
    pub(crate) fn infer_insert(&self, t: &Term, ty: Term) {
        if !self.cache_fresh() {
            return;
        }
        let mut table = self.cache.ty.borrow_mut();
        if table.len() >= CACHE_CAP {
            table.clear();
        }
        table.insert(t.id(), ty);
    }

    /// The symmetric conv-table key: ids in ascending order.
    fn conv_key(t: &Term, u: &Term) -> (TermId, TermId) {
        let (a, b) = (t.id(), u.id());
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Cached conversion verdict for `(t, u)`, if the memo layer has one.
    /// The key is order-normalized, so the swapped query is the same probe.
    pub(crate) fn conv_cached(&self, t: &Term, u: &Term) -> Option<bool> {
        if !self.cache_fresh() {
            return None;
        }
        let hit = self.cache.conv.borrow().get(&Self::conv_key(t, u)).copied();
        let is_hit = hit.is_some();
        self.tally(|s| {
            if is_hit {
                s.conv_cache_hits += 1;
            } else {
                s.conv_cache_misses += 1;
            }
        });
        self.tracer.emit(if is_hit {
            EventKind::CacheHit {
                table: CacheTable::Conv,
            }
        } else {
            EventKind::CacheMiss {
                table: CacheTable::Conv,
            }
        });
        hit
    }

    /// Memoizes `conv(t, u) = verdict` for the current generation.
    pub(crate) fn conv_insert(&self, t: &Term, u: &Term, verdict: bool) {
        if !self.cache_fresh() {
            return;
        }
        let mut table = self.cache.conv.borrow_mut();
        if table.len() >= CACHE_CAP {
            table.clear();
        }
        table.insert(Self::conv_key(t, u), verdict);
    }

    /// Looks up a constant.
    pub fn const_decl(&self, name: &GlobalName) -> Result<&ConstDecl> {
        self.consts
            .get(name)
            .ok_or_else(|| KernelError::UnknownGlobal(name.clone()))
    }

    /// Looks up an inductive family.
    pub fn inductive(&self, name: &GlobalName) -> Result<&InductiveDecl> {
        self.inductives
            .get(name)
            .ok_or_else(|| KernelError::UnknownGlobal(name.clone()))
    }

    /// Resolves a constructor *name* to its family and index.
    pub fn constructor(&self, name: &GlobalName) -> Option<(GlobalName, usize)> {
        self.ctor_names.get(name).cloned()
    }

    /// Is any global with this name declared?
    pub fn contains(&self, name: &str) -> bool {
        self.consts.contains_key(name)
            || self.inductives.contains_key(name)
            || self.ctor_names.contains_key(name)
    }

    /// Declaration order (constants and inductives interleaved as declared).
    pub fn order(&self) -> &[GlobalRef] {
        &self.order
    }

    /// All constants, unordered.
    pub fn constants(&self) -> impl Iterator<Item = &ConstDecl> {
        self.consts.values()
    }

    /// Defines a constant with a type-checked body.
    ///
    /// # Errors
    ///
    /// Fails if the name is taken, the type is not a type, or the body does
    /// not check against the type.
    pub fn define(&mut self, name: impl Into<GlobalName>, ty: Term, body: Term) -> Result<()> {
        let name = name.into();
        if self.contains(name.as_str()) {
            return Err(KernelError::Redeclaration(name));
        }
        typecheck::check_is_type(self, &ty)?;
        typecheck::check_closed(self, &body, &ty)?;
        self.retire_if_observed_stuck(&name);
        self.order.push(GlobalRef::Const(name.clone()));
        self.consts.insert(
            name.clone(),
            ConstDecl {
                name,
                ty,
                body: Some(body),
                opaque: false,
            },
        );
        Ok(())
    }

    /// Declares an axiom (a constant with no body).
    ///
    /// The repair engine itself never introduces axioms (the paper's
    /// "axiomatic freedom"); this entry point exists for tests and for
    /// stating goals.
    ///
    /// # Errors
    ///
    /// Fails if the name is taken or the type is not a type.
    pub fn assume(&mut self, name: impl Into<GlobalName>, ty: Term) -> Result<()> {
        let name = name.into();
        if self.contains(name.as_str()) {
            return Err(KernelError::Redeclaration(name));
        }
        typecheck::check_is_type(self, &ty)?;
        self.retire_if_observed_stuck(&name);
        self.order.push(GlobalRef::Const(name.clone()));
        self.consts.insert(
            name.clone(),
            ConstDecl {
                name,
                ty,
                body: None,
                opaque: false,
            },
        );
        Ok(())
    }

    /// Installs a constant that was *already type-checked against a clone
    /// of this environment* — the merge half of the parallel repair
    /// scheduler's clone/merge barrier.
    ///
    /// The caller guarantees the declaration was accepted (via
    /// [`Env::define`] / [`Env::assume`]) by an environment whose globals
    /// are a subset of this one's, all admitted through the same merge in
    /// the worker's own insertion order. Under that discipline every name
    /// the declaration mentions is already present with the same meaning
    /// (globals are immutable once declared), so re-checking would
    /// necessarily succeed; debug builds re-check anyway to keep the
    /// well-typedness invariant machine-verified in the test suite.
    ///
    /// # Errors
    ///
    /// Fails if the name is already taken (or, in debug builds, if the
    /// re-check fails — which indicates a scheduler bug).
    pub fn admit_checked(&mut self, decl: ConstDecl) -> Result<()> {
        if self.contains(decl.name.as_str()) {
            return Err(KernelError::Redeclaration(decl.name));
        }
        #[cfg(debug_assertions)]
        {
            // The re-check is a debug-only invariant audit; pause tracing
            // so debug and release builds produce identical event streams.
            self.tracer.pause(true);
            let recheck = (|| {
                typecheck::check_is_type(self, &decl.ty)?;
                if let Some(b) = &decl.body {
                    typecheck::check_closed(self, b, &decl.ty)?;
                }
                Ok(())
            })();
            self.tracer.pause(false);
            recheck?;
        }
        self.retire_if_observed_stuck(&decl.name);
        self.order.push(GlobalRef::Const(decl.name.clone()));
        self.consts.insert(decl.name.clone(), decl);
        Ok(())
    }

    /// Removes every declaration made after `mark` (a prior
    /// [`Env::order`]`().len()` snapshot), restoring the environment to
    /// that declaration state. Removal can invalidate cached judgements
    /// about terms mentioning the removed names, so the generation is
    /// retired unconditionally.
    ///
    /// This is the error path of wave-based repair: when a wave fails on a
    /// single worker running directly against the master environment, its
    /// partial output is rolled back wholesale so the environment only
    /// ever exposes completed waves.
    ///
    /// # Panics
    ///
    /// Panics if `mark` exceeds the current declaration count.
    pub fn rollback_to(&mut self, mark: usize) {
        assert!(
            mark <= self.order.len(),
            "rollback mark {mark} past declaration count {}",
            self.order.len()
        );
        if mark == self.order.len() {
            return;
        }
        self.tracer.emit(EventKind::Rollback {
            dropped: (self.order.len() - mark) as u32,
        });
        for r in self.order.drain(mark..) {
            match r {
                GlobalRef::Const(n) => {
                    self.consts.remove(&n);
                }
                GlobalRef::Ind(n) => {
                    self.inductives.remove(&n);
                    self.ctor_names.retain(|_, (ind, _)| *ind != n);
                }
            }
        }
        self.bump_generation();
    }

    /// Declares an inductive family, checking well-formedness and (strict,
    /// plain) positivity.
    ///
    /// # Errors
    ///
    /// Fails if any name is taken, the arity or a constructor type is
    /// ill-typed, or positivity is violated; the environment is left
    /// unchanged on failure.
    pub fn declare_inductive(&mut self, decl: InductiveDecl) -> Result<()> {
        let name = decl.name.clone();
        if self.contains(name.as_str()) {
            return Err(KernelError::Redeclaration(name));
        }
        for c in &decl.ctors {
            if self.contains(c.name.as_str()) {
                return Err(KernelError::Redeclaration(c.name.clone()));
            }
        }
        // Insert first so constructor types may mention the family, then
        // validate; roll back on failure (which retires the generation, so
        // nothing computed against the provisional environment survives).
        self.retire_if_observed_stuck(&name);
        self.inductives.insert(name.clone(), decl);
        let result = (|| {
            let decl = self.inductives.get(&name).expect("just inserted").clone();
            decl.check_positivity()?;
            typecheck::check_is_type(self, &decl.arity())?;
            for j in 0..decl.ctors.len() {
                typecheck::check_is_type(self, &decl.ctor_type(j)?)?;
            }
            Ok(decl)
        })();
        match result {
            Ok(decl) => {
                for (j, c) in decl.ctors.iter().enumerate() {
                    self.ctor_names.insert(c.name.clone(), (name.clone(), j));
                }
                self.order.push(GlobalRef::Ind(name));
                Ok(())
            }
            Err(e) => {
                self.inductives.remove(&name);
                self.bump_generation();
                Err(e)
            }
        }
    }

    /// Removes a global (constant or inductive family, with its
    /// constructors) from the environment — the paper's "when we are done,
    /// we can get rid of `Old.list` entirely" (§2). Refuses if any other
    /// declaration still references it, so a well-typed environment stays
    /// well-typed.
    ///
    /// # Errors
    ///
    /// Fails if the global is unknown or still referenced; the environment
    /// is unchanged on failure.
    pub fn remove(&mut self, name: &GlobalName) -> Result<()> {
        let is_const = self.consts.contains_key(name);
        let is_ind = self.inductives.contains_key(name);
        if !is_const && !is_ind {
            return Err(KernelError::UnknownGlobal(name.clone()));
        }
        // Collect the names being removed (a family removes its ctors too).
        let mut removed: Vec<GlobalName> = vec![name.clone()];
        if is_ind {
            removed.extend(self.inductives[name].ctors.iter().map(|c| c.name.clone()));
        }
        // Check for remaining references from every other declaration.
        let mentions = |t: &Term| removed.iter().any(|r| t.mentions_global(r));
        for decl in self.consts.values() {
            if &decl.name == name {
                continue;
            }
            if mentions(&decl.ty) || decl.body.as_ref().is_some_and(&mentions) {
                return Err(KernelError::Redeclaration(GlobalName::new(format!(
                    "cannot remove `{name}`: still referenced by `{}`",
                    decl.name
                ))));
            }
        }
        for ind in self.inductives.values() {
            if &ind.name == name {
                continue;
            }
            let refs = ind
                .params
                .iter()
                .chain(ind.indices.iter())
                .any(|b| mentions(&b.ty))
                || ind.ctors.iter().any(|c| {
                    c.args.iter().any(|b| mentions(&b.ty)) || c.result_indices.iter().any(mentions)
                });
            if refs {
                return Err(KernelError::Redeclaration(GlobalName::new(format!(
                    "cannot remove `{name}`: still referenced by `{}`",
                    ind.name
                ))));
            }
        }
        // Safe: remove.
        self.bump_generation();
        self.consts.remove(name);
        if let Some(ind) = self.inductives.remove(name) {
            for c in &ind.ctors {
                self.ctor_names.remove(&c.name);
            }
        }
        self.order.retain(|r| match r {
            GlobalRef::Const(n) | GlobalRef::Ind(n) => n != name,
        });
        Ok(())
    }

    /// Marks a constant opaque (or transparent again) for δ-reduction.
    ///
    /// # Errors
    ///
    /// Fails if the constant does not exist.
    pub fn set_opaque(&mut self, name: &GlobalName, opaque: bool) -> Result<()> {
        let decl = self
            .consts
            .get_mut(name)
            .ok_or_else(|| KernelError::UnknownGlobal(name.clone()))?;
        if decl.opaque != opaque {
            decl.opaque = opaque;
            // Transparency changes which δ-steps fire: cached whnf/conv
            // results are stale.
            self.bump_generation();
        }
        Ok(())
    }

    /// The δ-unfoldable body of a constant, if any.
    pub fn unfold(&self, name: &GlobalName) -> Option<&Term> {
        let decl = self.consts.get(name)?;
        if decl.opaque {
            None
        } else {
            decl.body.as_ref()
        }
    }

    /// The body of a constant regardless of opacity.
    pub fn body(&self, name: &GlobalName) -> Option<&Term> {
        self.consts.get(name)?.body.as_ref()
    }

    /// The declared type of any global reference usable as a term head.
    pub fn global_type(&self, t: &Term) -> Result<Term> {
        use crate::term::TermData;
        match t.data() {
            TermData::Const(n) => Ok(self.const_decl(n)?.ty.clone()),
            TermData::Ind(n) => Ok(self.inductive(n)?.arity()),
            TermData::Construct(n, j) => self.inductive(n)?.ctor_type(*j),
            _ => Err(KernelError::UnknownGlobal(GlobalName::new(format!(
                "<not a global: {t}>"
            )))),
        }
    }
}
