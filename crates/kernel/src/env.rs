//! The global environment: constants and inductive families.

use std::collections::HashMap;

use crate::error::{KernelError, Result};
use crate::inductive::InductiveDecl;
use crate::name::GlobalName;
use crate::term::Term;
use crate::typecheck;

/// A global constant: a definition (with body) or an axiom (without).
///
/// `opaque` constants are never δ-unfolded by reduction. This reproduces the
/// paper's "cache to tell Pumpkin Pi not to δ-reduce certain terms" (§4.4).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConstDecl {
    /// The constant's name.
    pub name: GlobalName,
    /// Its declared type (closed).
    pub ty: Term,
    /// Its body, if it is a definition.
    pub body: Option<Term>,
    /// Whether δ-reduction may unfold it.
    pub opaque: bool,
}

/// An entry in the environment's declaration order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GlobalRef {
    /// A constant.
    Const(GlobalName),
    /// An inductive family.
    Ind(GlobalName),
}

/// The global environment.
///
/// All mutating operations type check their input: a well-typed environment
/// stays well-typed (modulo the documented universe simplifications).
#[derive(Clone, Debug, Default)]
pub struct Env {
    consts: HashMap<GlobalName, ConstDecl>,
    inductives: HashMap<GlobalName, InductiveDecl>,
    ctor_names: HashMap<GlobalName, (GlobalName, usize)>,
    order: Vec<GlobalRef>,
}

impl Env {
    /// Creates an empty environment.
    pub fn new() -> Self {
        Env::default()
    }

    /// Looks up a constant.
    pub fn const_decl(&self, name: &GlobalName) -> Result<&ConstDecl> {
        self.consts
            .get(name)
            .ok_or_else(|| KernelError::UnknownGlobal(name.clone()))
    }

    /// Looks up an inductive family.
    pub fn inductive(&self, name: &GlobalName) -> Result<&InductiveDecl> {
        self.inductives
            .get(name)
            .ok_or_else(|| KernelError::UnknownGlobal(name.clone()))
    }

    /// Resolves a constructor *name* to its family and index.
    pub fn constructor(&self, name: &GlobalName) -> Option<(GlobalName, usize)> {
        self.ctor_names.get(name).cloned()
    }

    /// Is any global with this name declared?
    pub fn contains(&self, name: &str) -> bool {
        self.consts.contains_key(name)
            || self.inductives.contains_key(name)
            || self.ctor_names.contains_key(name)
    }

    /// Declaration order (constants and inductives interleaved as declared).
    pub fn order(&self) -> &[GlobalRef] {
        &self.order
    }

    /// All constants, unordered.
    pub fn constants(&self) -> impl Iterator<Item = &ConstDecl> {
        self.consts.values()
    }

    /// Defines a constant with a type-checked body.
    ///
    /// # Errors
    ///
    /// Fails if the name is taken, the type is not a type, or the body does
    /// not check against the type.
    pub fn define(
        &mut self,
        name: impl Into<GlobalName>,
        ty: Term,
        body: Term,
    ) -> Result<()> {
        let name = name.into();
        if self.contains(name.as_str()) {
            return Err(KernelError::Redeclaration(name));
        }
        typecheck::check_is_type(self, &ty)?;
        typecheck::check_closed(self, &body, &ty)?;
        self.order.push(GlobalRef::Const(name.clone()));
        self.consts.insert(
            name.clone(),
            ConstDecl {
                name,
                ty,
                body: Some(body),
                opaque: false,
            },
        );
        Ok(())
    }

    /// Declares an axiom (a constant with no body).
    ///
    /// The repair engine itself never introduces axioms (the paper's
    /// "axiomatic freedom"); this entry point exists for tests and for
    /// stating goals.
    ///
    /// # Errors
    ///
    /// Fails if the name is taken or the type is not a type.
    pub fn assume(&mut self, name: impl Into<GlobalName>, ty: Term) -> Result<()> {
        let name = name.into();
        if self.contains(name.as_str()) {
            return Err(KernelError::Redeclaration(name));
        }
        typecheck::check_is_type(self, &ty)?;
        self.order.push(GlobalRef::Const(name.clone()));
        self.consts.insert(
            name.clone(),
            ConstDecl {
                name,
                ty,
                body: None,
                opaque: false,
            },
        );
        Ok(())
    }

    /// Declares an inductive family, checking well-formedness and (strict,
    /// plain) positivity.
    ///
    /// # Errors
    ///
    /// Fails if any name is taken, the arity or a constructor type is
    /// ill-typed, or positivity is violated; the environment is left
    /// unchanged on failure.
    pub fn declare_inductive(&mut self, decl: InductiveDecl) -> Result<()> {
        let name = decl.name.clone();
        if self.contains(name.as_str()) {
            return Err(KernelError::Redeclaration(name));
        }
        for c in &decl.ctors {
            if self.contains(c.name.as_str()) {
                return Err(KernelError::Redeclaration(c.name.clone()));
            }
        }
        // Insert first so constructor types may mention the family, then
        // validate; roll back on failure.
        self.inductives.insert(name.clone(), decl);
        let result = (|| {
            let decl = self.inductives.get(&name).expect("just inserted").clone();
            decl.check_positivity()?;
            typecheck::check_is_type(self, &decl.arity())?;
            for j in 0..decl.ctors.len() {
                typecheck::check_is_type(self, &decl.ctor_type(j)?)?;
            }
            Ok(decl)
        })();
        match result {
            Ok(decl) => {
                for (j, c) in decl.ctors.iter().enumerate() {
                    self.ctor_names.insert(c.name.clone(), (name.clone(), j));
                }
                self.order.push(GlobalRef::Ind(name));
                Ok(())
            }
            Err(e) => {
                self.inductives.remove(&name);
                Err(e)
            }
        }
    }

    /// Removes a global (constant or inductive family, with its
    /// constructors) from the environment — the paper's "when we are done,
    /// we can get rid of `Old.list` entirely" (§2). Refuses if any other
    /// declaration still references it, so a well-typed environment stays
    /// well-typed.
    ///
    /// # Errors
    ///
    /// Fails if the global is unknown or still referenced; the environment
    /// is unchanged on failure.
    pub fn remove(&mut self, name: &GlobalName) -> Result<()> {
        let is_const = self.consts.contains_key(name);
        let is_ind = self.inductives.contains_key(name);
        if !is_const && !is_ind {
            return Err(KernelError::UnknownGlobal(name.clone()));
        }
        // Collect the names being removed (a family removes its ctors too).
        let mut removed: Vec<GlobalName> = vec![name.clone()];
        if is_ind {
            removed.extend(
                self.inductives[name].ctors.iter().map(|c| c.name.clone()),
            );
        }
        // Check for remaining references from every other declaration.
        let mentions = |t: &Term| removed.iter().any(|r| t.mentions_global(r));
        for decl in self.consts.values() {
            if &decl.name == name {
                continue;
            }
            if mentions(&decl.ty) || decl.body.as_ref().is_some_and(|b| mentions(b)) {
                return Err(KernelError::Redeclaration(GlobalName::new(format!(
                    "cannot remove `{name}`: still referenced by `{}`",
                    decl.name
                ))));
            }
        }
        for ind in self.inductives.values() {
            if &ind.name == name {
                continue;
            }
            let refs = ind.params.iter().chain(ind.indices.iter()).any(|b| mentions(&b.ty))
                || ind.ctors.iter().any(|c| {
                    c.args.iter().any(|b| mentions(&b.ty))
                        || c.result_indices.iter().any(mentions)
                });
            if refs {
                return Err(KernelError::Redeclaration(GlobalName::new(format!(
                    "cannot remove `{name}`: still referenced by `{}`",
                    ind.name
                ))));
            }
        }
        // Safe: remove.
        self.consts.remove(name);
        if let Some(ind) = self.inductives.remove(name) {
            for c in &ind.ctors {
                self.ctor_names.remove(&c.name);
            }
        }
        self.order.retain(|r| match r {
            GlobalRef::Const(n) | GlobalRef::Ind(n) => n != name,
        });
        Ok(())
    }

    /// Marks a constant opaque (or transparent again) for δ-reduction.
    ///
    /// # Errors
    ///
    /// Fails if the constant does not exist.
    pub fn set_opaque(&mut self, name: &GlobalName, opaque: bool) -> Result<()> {
        let decl = self
            .consts
            .get_mut(name)
            .ok_or_else(|| KernelError::UnknownGlobal(name.clone()))?;
        decl.opaque = opaque;
        Ok(())
    }

    /// The δ-unfoldable body of a constant, if any.
    pub fn unfold(&self, name: &GlobalName) -> Option<&Term> {
        let decl = self.consts.get(name)?;
        if decl.opaque {
            None
        } else {
            decl.body.as_ref()
        }
    }

    /// The body of a constant regardless of opacity.
    pub fn body(&self, name: &GlobalName) -> Option<&Term> {
        self.consts.get(name)?.body.as_ref()
    }

    /// The declared type of any global reference usable as a term head.
    pub fn global_type(&self, t: &Term) -> Result<Term> {
        use crate::term::TermData;
        match t.data() {
            TermData::Const(n) => Ok(self.const_decl(n)?.ty.clone()),
            TermData::Ind(n) => Ok(self.inductive(n)?.arity()),
            TermData::Construct(n, j) => self.inductive(n)?.ctor_type(*j),
            _ => Err(KernelError::UnknownGlobal(GlobalName::new(format!(
                "<not a global: {t}>"
            )))),
        }
    }
}
