//! Normalization by evaluation: the conversion checker's engine.
//!
//! The whnf-rewriting checker this replaces re-built a term at every β/ι
//! step (each one an O(size) substitution), so deciding `t ≡ u` on large
//! literal-heavy proofs re-walked the same structurally shared trees over
//! and over. NbE evaluates both sides *once* into a value domain where
//! binders are closures over an environment — substitution disappears
//! entirely — and then compares values, introducing fresh variables (de
//! Bruijn *levels*) to go under binders.
//!
//! The domain (strict: arguments are evaluated when applications are):
//!
//! * [`Value::Lambda`] / [`Value::Pi`] carry a [`Closure`] (captured
//!   environment + unevaluated body term);
//! * [`Value::Construct`] / [`Value::IndApp`] are constructor/family spines;
//! * [`Value::Neutral`] is a blocked computation: a head — a comparison
//!   variable ([`NHead::Local`]), a free variable of an open input term
//!   ([`NHead::Free`]), a δ-blocked constant ([`NHead::Const`]), or a stuck
//!   eliminator ([`NHead::Elim`]) — applied to a spine of values.
//!
//! Equality rules mirror the syntactic checker: η for functions (a lambda
//! against a non-lambda is compared after applying both to a fresh level),
//! record-η (surjective pairing for single-constructor non-recursive
//! families) as a fallback when a constructor spine fails to match, sorts by
//! `≤` in cumulativity mode (the `leq` flag, which propagates only through
//! Pi codomains, exactly as [`crate::conv::conv_leq`] always did).
//!
//! **Stuck-name invalidation is preserved**: evaluation calls
//! [`Env::note_stuck_const`] when δ finds no unfoldable body and
//! [`Env::note_stuck_ind`] when an eliminator meets an undeclared family —
//! the same observations the whnf path records — so the environment's
//! generation/inval4idation story (see `env.rs`) is unchanged.
//!
//! Termination: evaluation is strongly normalizing on well-typed terms (the
//! calculus has no general recursion; δ cannot be cyclic because a body is
//! checked against an environment that does not yet contain its name). The
//! kernel only converts terms it has checked, mirroring the old checker,
//! which looped on the same ill-typed diverging redexes.

use crate::env::Env;
use crate::name::{GlobalName, Name};
use crate::term::{Binder, ElimData, Term, TermData, TermRc};
use crate::universe::Sort;

/// Shared value pointer: values are immutable once built, and sharing keeps
/// environment captures O(1).
pub(crate) type VRc = TermRc<Value>;

/// A semantic value.
#[derive(Debug)]
pub(crate) enum Value {
    /// A sort literal.
    Sort(Sort),
    /// `fun (x : ty) => <closure>` — the name is a pretty-printing hint for
    /// readback only.
    Lambda(Name, VRc, Closure),
    /// `∀ (x : ty), <closure>`.
    Pi(Name, VRc, Closure),
    /// A (possibly partial) constructor application `Construct(ind, j) args`.
    Construct(GlobalName, usize, Vec<VRc>),
    /// An inductive family application `Ind(name) args` (never reduces).
    IndApp(GlobalName, Vec<VRc>),
    /// A blocked computation: `head args`.
    Neutral(NHead, Vec<VRc>),
}

/// The head of a neutral value.
#[derive(Debug)]
pub(crate) enum NHead {
    /// A fresh variable introduced by the comparator under a binder, as a de
    /// Bruijn *level* (0 = the outermost fresh variable).
    Local(usize),
    /// A free `Rel` of the input term, indexed in the ambient context (the
    /// input's `Rel(i)` with `i` beyond the evaluation environment).
    Free(usize),
    /// A δ-blocked (opaque or bodyless) constant.
    Const(GlobalName),
    /// An eliminator stuck on a non-constructor scrutinee.
    Elim(TermRc<ElimVal>),
    /// An application whose head is not applicable (ill-typed input, e.g.
    /// a sort applied to arguments); kept stuck, like whnf does.
    Stuck(VRc),
}

/// A stuck eliminator with all components evaluated.
#[derive(Debug)]
pub(crate) struct ElimVal {
    ind: GlobalName,
    params: Vec<VRc>,
    motive: VRc,
    cases: Vec<VRc>,
    scrutinee: VRc,
}

/// A binder body awaiting its argument: the captured environment plus the
/// unevaluated body term. Application costs one environment extension — no
/// substitution.
#[derive(Debug, Clone)]
pub(crate) struct Closure {
    env: VEnv,
    body: Term,
}

impl Closure {
    fn apply(&self, env: &Env, arg: VRc) -> VRc {
        eval(env, &self.env.push(arg), &self.body)
    }
}

/// The evaluation environment: a persistent cons-list of values, innermost
/// binder first. O(1) push/clone, O(i) lookup (binder depths are small).
#[derive(Debug, Clone, Default)]
pub(crate) struct VEnv(Option<TermRc<VEnvNode>>);

#[derive(Debug)]
pub(crate) struct VEnvNode {
    head: VRc,
    tail: VEnv,
    len: usize,
}

impl VEnv {
    fn nil() -> VEnv {
        VEnv(None)
    }

    fn len(&self) -> usize {
        self.0.as_ref().map_or(0, |n| n.len)
    }

    fn push(&self, v: VRc) -> VEnv {
        VEnv(Some(TermRc::new(VEnvNode {
            head: v,
            tail: self.clone(),
            len: self.len() + 1,
        })))
    }

    fn get(&self, i: usize) -> Option<&VRc> {
        let mut node = self.0.as_deref()?;
        for _ in 0..i {
            node = node.tail.0.as_deref()?;
        }
        Some(&node.head)
    }
}

fn neutral(head: NHead) -> VRc {
    TermRc::new(Value::Neutral(head, Vec::new()))
}

/// Minimum interned size for a closed term to consult the value memo:
/// below this, the table probe costs about as much as re-evaluating.
const CLOSED_MEMO_MIN_SIZE: usize = 16;

/// Evaluates `t` under `venv`. Free `Rel`s beyond the environment become
/// [`NHead::Free`] neutrals, so open terms evaluate consistently on both
/// sides of a comparison.
///
/// Closed terms above [`CLOSED_MEMO_MIN_SIZE`] go through the environment's
/// per-generation value memo ([`Env::nbe_cached`]): their value cannot
/// mention `venv`, so one entry serves every occurrence in every context —
/// and hash-consing means every repeat of a shared subterm is a single
/// `TermId` probe instead of a re-evaluation.
fn eval(env: &Env, venv: &VEnv, t: &Term) -> VRc {
    if t.is_closed() && t.size() >= CLOSED_MEMO_MIN_SIZE {
        if let Some(v) = env.nbe_cached(t) {
            return v;
        }
        let v = eval_node(env, venv, t);
        env.nbe_insert(t, v.clone());
        return v;
    }
    eval_node(env, venv, t)
}

fn eval_node(env: &Env, venv: &VEnv, t: &Term) -> VRc {
    match t.data() {
        TermData::Rel(i) => match venv.get(*i) {
            Some(v) => v.clone(),
            None => neutral(NHead::Free(i - venv.len())),
        },
        TermData::Sort(s) => TermRc::new(Value::Sort(*s)),
        TermData::Const(n) => match env.unfold(n) {
            Some(body) => {
                env.tally(|s| s.delta_steps += 1);
                eval(env, &VEnv::nil(), body)
            }
            None => {
                env.note_stuck_const(n);
                neutral(NHead::Const(n.clone()))
            }
        },
        TermData::Ind(n) => TermRc::new(Value::IndApp(n.clone(), Vec::new())),
        TermData::Construct(n, j) => TermRc::new(Value::Construct(n.clone(), *j, Vec::new())),
        TermData::App(h, args) => {
            let f = eval(env, venv, h);
            let vargs: Vec<VRc> = args.iter().map(|a| eval(env, venv, a)).collect();
            vapp_many(env, f, vargs)
        }
        TermData::Lambda(b, body) => TermRc::new(Value::Lambda(
            b.name.clone(),
            eval(env, venv, &b.ty),
            Closure {
                env: venv.clone(),
                body: body.clone(),
            },
        )),
        TermData::Pi(b, body) => TermRc::new(Value::Pi(
            b.name.clone(),
            eval(env, venv, &b.ty),
            Closure {
                env: venv.clone(),
                body: body.clone(),
            },
        )),
        TermData::Let(b, v, body) => {
            env.tally(|s| s.zeta_steps += 1);
            let _ = b;
            let vv = eval(env, venv, v);
            eval(env, &venv.push(vv), body)
        }
        TermData::Elim(e) => {
            let params: Vec<VRc> = e.params.iter().map(|p| eval(env, venv, p)).collect();
            let motive = eval(env, venv, &e.motive);
            let cases: Vec<VRc> = e.cases.iter().map(|c| eval(env, venv, c)).collect();
            let scrut = eval(env, venv, &e.scrutinee);
            velim(env, &e.ind, params, motive, cases, scrut)
        }
    }
}

/// Applies `f` to `args` at the value level, β-reducing through closures.
fn vapp_many(env: &Env, mut f: VRc, args: Vec<VRc>) -> VRc {
    for a in args {
        f = vapp(env, f, a);
    }
    f
}

fn vapp(env: &Env, f: VRc, a: VRc) -> VRc {
    match &*f {
        Value::Lambda(_, _, clo) => {
            env.tally(|s| s.beta_steps += 1);
            clo.apply(env, a)
        }
        Value::Construct(n, j, args) => {
            let mut args = args.clone();
            args.push(a);
            TermRc::new(Value::Construct(n.clone(), *j, args))
        }
        Value::IndApp(n, args) => {
            let mut args = args.clone();
            args.push(a);
            TermRc::new(Value::IndApp(n.clone(), args))
        }
        Value::Neutral(head, spine) => {
            let mut spine = spine.clone();
            spine.push(a);
            TermRc::new(Value::Neutral(clone_head(head), spine))
        }
        // Ill-typed application (sort/Pi head): keep it stuck, like whnf.
        Value::Sort(_) | Value::Pi(_, _, _) => {
            TermRc::new(Value::Neutral(NHead::Stuck(f.clone()), vec![a]))
        }
    }
}

fn clone_head(h: &NHead) -> NHead {
    match h {
        NHead::Local(l) => NHead::Local(*l),
        NHead::Free(i) => NHead::Free(*i),
        NHead::Const(n) => NHead::Const(n.clone()),
        NHead::Elim(e) => NHead::Elim(e.clone()),
        NHead::Stuck(v) => NHead::Stuck(v.clone()),
    }
}

/// Eliminator application at the value level: ι-reduces when the scrutinee
/// is a fully applied constructor of the right family (mirroring
/// `InductiveDecl::iota_reduce`, with value-level induction hypotheses);
/// otherwise builds a stuck neutral. Failed family lookups are recorded via
/// [`Env::note_stuck_ind`], exactly like the whnf path.
fn velim(
    env: &Env,
    ind: &GlobalName,
    params: Vec<VRc>,
    motive: VRc,
    cases: Vec<VRc>,
    scrut: VRc,
) -> VRc {
    if let Value::Construct(cn, j, cargs) = &*scrut {
        let decl = match env.inductive(cn) {
            Ok(d) => Some(d),
            Err(_) => {
                env.note_stuck_ind(cn);
                None
            }
        };
        if let Some(decl) = decl {
            if cn == ind {
                let p = decl.nparams();
                if let Some(ctor) = decl.ctors.get(*j) {
                    if cargs.len() == p + ctor.args.len() && cases.len() > *j {
                        env.tally(|s| s.iota_steps += 1);
                        let flags = decl.recursive_flags(*j);
                        let fields = &cargs[p..];
                        let mut actual: Vec<VRc> = Vec::with_capacity(fields.len() * 2);
                        for (k, v) in fields.iter().enumerate() {
                            actual.push(v.clone());
                            if flags[k] {
                                actual.push(velim(
                                    env,
                                    ind,
                                    params.clone(),
                                    motive.clone(),
                                    cases.clone(),
                                    v.clone(),
                                ));
                            }
                        }
                        return vapp_many(env, cases[*j].clone(), actual);
                    }
                }
            }
        }
    }
    neutral(NHead::Elim(TermRc::new(ElimVal {
        ind: ind.clone(),
        params,
        motive,
        cases,
        scrutinee: scrut,
    })))
}

/// Decides `t ≡ u` (or `t ≤ u` with `leq`) by evaluating both sides and
/// comparing the values. The crate-facing entry points are
/// [`crate::conv::conv`] / [`crate::conv::conv_leq`], which add the
/// syntactic fast path and the `(TermId, TermId)` memo table.
pub(crate) fn conv_terms(env: &Env, t: &Term, u: &Term, leq: bool) -> bool {
    let venv = VEnv::nil();
    let a = eval(env, &venv, t);
    let b = eval(env, &venv, u);
    conv_val(env, 0, &a, &b, leq)
}

/// Value comparison at fresh-variable depth `lvl`. The `leq` flag makes
/// sorts compare by `≤` and propagates only through Pi codomains.
fn conv_val(env: &Env, lvl: usize, a: &VRc, b: &VRc, leq: bool) -> bool {
    if TermRc::ptr_eq(a, b) {
        return true;
    }
    let ok = match (&**a, &**b) {
        (Value::Sort(s1), Value::Sort(s2)) => {
            if leq {
                s1.leq(*s2)
            } else {
                s1 == s2
            }
        }
        (Value::Pi(_, t1, c1), Value::Pi(_, t2, c2)) => {
            conv_val(env, lvl, t1, t2, false) && {
                let fresh = neutral(NHead::Local(lvl));
                let b1 = c1.apply(env, fresh.clone());
                let b2 = c2.apply(env, fresh);
                conv_val(env, lvl + 1, &b1, &b2, leq)
            }
        }
        (Value::Lambda(_, t1, c1), Value::Lambda(_, t2, c2)) => {
            // Domains are compared to match the syntactic checker (which
            // required convertible binder types on lambdas, not just Pis).
            conv_val(env, lvl, t1, t2, false) && {
                let fresh = neutral(NHead::Local(lvl));
                let b1 = c1.apply(env, fresh.clone());
                let b2 = c2.apply(env, fresh);
                conv_val(env, lvl + 1, &b1, &b2, false)
            }
        }
        // η: fun x => body  ≡  u  when  body ≡ u x.
        (Value::Lambda(_, _, c1), _) => {
            let fresh = neutral(NHead::Local(lvl));
            let b1 = c1.apply(env, fresh.clone());
            let b2 = vapp(env, b.clone(), fresh);
            conv_val(env, lvl + 1, &b1, &b2, false)
        }
        (_, Value::Lambda(_, _, c2)) => {
            let fresh = neutral(NHead::Local(lvl));
            let b1 = vapp(env, a.clone(), fresh.clone());
            let b2 = c2.apply(env, fresh);
            conv_val(env, lvl + 1, &b1, &b2, false)
        }
        (Value::Construct(n1, j1, a1), Value::Construct(n2, j2, a2)) => {
            n1 == n2 && j1 == j2 && conv_spines(env, lvl, a1, a2)
        }
        (Value::IndApp(n1, a1), Value::IndApp(n2, a2)) => n1 == n2 && conv_spines(env, lvl, a1, a2),
        (Value::Neutral(h1, s1), Value::Neutral(h2, s2)) => {
            conv_head(env, lvl, h1, h2) && conv_spines(env, lvl, s1, s2)
        }
        _ => false,
    };
    // Surjective pairing (definitional η for single-constructor,
    // non-recursive inductives — Coq's "primitive records"):
    // `C (proj₀ z) … (projₙ z) ≡ z`.
    ok || record_eta(env, lvl, a, b) || record_eta(env, lvl, b, a)
}

fn conv_spines(env: &Env, lvl: usize, a: &[VRc], b: &[VRc]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| conv_val(env, lvl, x, y, false))
}

fn conv_head(env: &Env, lvl: usize, a: &NHead, b: &NHead) -> bool {
    match (a, b) {
        (NHead::Local(i), NHead::Local(j)) => i == j,
        (NHead::Free(i), NHead::Free(j)) => i == j,
        // Both δ-blocked: equal only by name (the syntactic checker's rule
        // for opaque/bodyless constants).
        (NHead::Const(n1), NHead::Const(n2)) => n1 == n2,
        (NHead::Elim(e1), NHead::Elim(e2)) => {
            e1.ind == e2.ind
                && conv_spines(env, lvl, &e1.params, &e2.params)
                && conv_val(env, lvl, &e1.motive, &e2.motive, false)
                && conv_spines(env, lvl, &e1.cases, &e2.cases)
                && conv_val(env, lvl, &e1.scrutinee, &e2.scrutinee, false)
        }
        (NHead::Stuck(v1), NHead::Stuck(v2)) => conv_val(env, lvl, v1, v2, false),
        _ => false,
    }
}

/// Does `t = Construct(I, 0) params (proj₀ z) … (projₙ z)` for a record-like
/// inductive `I`, with `z ≡ u`? The value-level port of the syntactic
/// record-η check: each field must be a stuck eliminator of `I` whose single
/// case projects field `i` (checked by applying the case value to fresh
/// levels), with agreeing parameters and a common scrutinee.
fn record_eta(env: &Env, lvl: usize, t: &VRc, u: &VRc) -> bool {
    let Value::Construct(ind, 0, args) = &**t else {
        return false;
    };
    let Ok(decl) = env.inductive(ind) else {
        env.note_stuck_ind(ind);
        return false;
    };
    if decl.ctors.len() != 1 || decl.nindices() != 0 {
        return false;
    }
    let p = decl.nparams();
    let nfields = decl.ctors[0].args.len();
    if nfields == 0 || args.len() != p + nfields {
        return false;
    }
    // No recursive fields (otherwise η is unsound for this check).
    if decl.recursive_flags(0).iter().any(|&r| r) {
        return false;
    }
    let mut scrutinee: Option<&VRc> = None;
    for i in 0..nfields {
        let Value::Neutral(NHead::Elim(e), spine) = &*args[p + i] else {
            return false;
        };
        if !spine.is_empty() || &e.ind != ind || e.cases.len() != 1 {
            return false;
        }
        // The case must select field i: applied to fresh levels
        // lvl..lvl+nfields it must come back as the i-th one.
        let fresh: Vec<VRc> = (0..nfields)
            .map(|k| neutral(NHead::Local(lvl + k)))
            .collect();
        let selected = vapp_many(env, e.cases[0].clone(), fresh);
        match &*selected {
            Value::Neutral(NHead::Local(l), sp) if *l == lvl + i && sp.is_empty() => {}
            _ => return false,
        }
        // Parameters must agree with the constructor's.
        if e.params.len() != p
            || !e
                .params
                .iter()
                .zip(args.iter())
                .all(|(x, y)| conv_val(env, lvl, x, y, false))
        {
            return false;
        }
        match scrutinee {
            None => scrutinee = Some(&e.scrutinee),
            Some(s) => {
                if !conv_val(env, lvl, s, &e.scrutinee, false) {
                    return false;
                }
            }
        }
    }
    match scrutinee {
        Some(s) => conv_val(env, lvl, s, u, false),
        None => false,
    }
}

/// Reads a value back into a term at fresh-variable depth `lvl` (readback /
/// quotation). Fresh levels become de Bruijn indices; ambient free
/// variables keep their indices, shifted under the quoted binders.
fn quote(env: &Env, lvl: usize, v: &VRc) -> Term {
    match &**v {
        Value::Sort(s) => Term::sort(*s),
        Value::Lambda(name, ty, clo) => {
            let fresh = neutral(NHead::Local(lvl));
            let body = clo.apply(env, fresh);
            Term::new(TermData::Lambda(
                Binder {
                    name: name.clone(),
                    ty: quote(env, lvl, ty),
                },
                quote(env, lvl + 1, &body),
            ))
        }
        Value::Pi(name, ty, clo) => {
            let fresh = neutral(NHead::Local(lvl));
            let body = clo.apply(env, fresh);
            Term::new(TermData::Pi(
                Binder {
                    name: name.clone(),
                    ty: quote(env, lvl, ty),
                },
                quote(env, lvl + 1, &body),
            ))
        }
        Value::Construct(n, j, args) => Term::app(
            Term::construct(n.clone(), *j),
            args.iter().map(|a| quote(env, lvl, a)),
        ),
        Value::IndApp(n, args) => Term::app(
            Term::ind(n.clone()),
            args.iter().map(|a| quote(env, lvl, a)),
        ),
        Value::Neutral(head, spine) => {
            let h = match head {
                NHead::Local(l) => Term::rel(lvl - 1 - l),
                NHead::Free(i) => Term::rel(i + lvl),
                NHead::Const(n) => Term::const_(n.clone()),
                NHead::Elim(e) => Term::elim(ElimData {
                    ind: e.ind.clone(),
                    params: e.params.iter().map(|p| quote(env, lvl, p)).collect(),
                    motive: quote(env, lvl, &e.motive),
                    cases: e.cases.iter().map(|c| quote(env, lvl, c)).collect(),
                    scrutinee: quote(env, lvl, &e.scrutinee),
                }),
                NHead::Stuck(v) => quote(env, lvl, v),
            };
            Term::app(h, spine.iter().map(|a| quote(env, lvl, a)))
        }
    }
}

/// Full βδιζ normal form via evaluate-then-read-back. Agrees with
/// [`crate::reduce::normalize`] (the rewriting normalizer) on well-typed
/// terms — `tests/kernel_properties.rs` pins that agreement — but does its
/// work in one pass over the value domain.
pub fn nbe_normalize(env: &Env, t: &Term) -> Term {
    let v = eval(env, &VEnv::nil(), t);
    quote(env, 0, &v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::{conv, conv_leq};
    use crate::inductive::{CtorDecl, InductiveDecl};
    use crate::reduce::normalize;

    fn env_with_nat() -> Env {
        let mut env = Env::new();
        env.declare_inductive(InductiveDecl {
            name: "nat".into(),
            params: vec![],
            indices: vec![],
            sort: Sort::Set,
            ctors: vec![
                CtorDecl {
                    name: "O".into(),
                    args: vec![],
                    result_indices: vec![],
                },
                CtorDecl {
                    name: "S".into(),
                    args: vec![Binder::new("n", Term::ind("nat"))],
                    result_indices: vec![],
                },
            ],
        })
        .unwrap();
        env
    }

    fn nat_lit(n: u64) -> Term {
        let mut t = Term::construct("nat", 0);
        for _ in 0..n {
            t = Term::app(Term::construct("nat", 1), [t]);
        }
        t
    }

    fn add() -> Term {
        Term::lambda(
            "n",
            Term::ind("nat"),
            Term::lambda(
                "m",
                Term::ind("nat"),
                Term::elim(ElimData {
                    ind: "nat".into(),
                    params: vec![],
                    motive: Term::lambda("_", Term::ind("nat"), Term::ind("nat")),
                    cases: vec![
                        Term::rel(0),
                        Term::lambda(
                            "n",
                            Term::ind("nat"),
                            Term::lambda(
                                "ih",
                                Term::ind("nat"),
                                Term::app(Term::construct("nat", 1), [Term::rel(0)]),
                            ),
                        ),
                    ],
                    scrutinee: Term::rel(1),
                }),
            ),
        )
    }

    #[test]
    fn nbe_computes_addition() {
        let mut env = env_with_nat();
        env.define(
            "add",
            Term::arrow(
                Term::ind("nat"),
                Term::arrow(Term::ind("nat"), Term::ind("nat")),
            ),
            add(),
        )
        .unwrap();
        let call = Term::app(Term::const_("add"), [nat_lit(2), nat_lit(3)]);
        assert_eq!(nbe_normalize(&env, &call), nat_lit(5));
        assert!(conv(&env, &call, &nat_lit(5)));
        assert!(!conv(&env, &call, &nat_lit(4)));
    }

    #[test]
    fn nbe_normalize_agrees_with_rewriting_normalize() {
        let mut env = env_with_nat();
        env.define(
            "add",
            Term::arrow(
                Term::ind("nat"),
                Term::arrow(Term::ind("nat"), Term::ind("nat")),
            ),
            add(),
        )
        .unwrap();
        let samples = [
            Term::app(Term::const_("add"), [nat_lit(2), nat_lit(3)]),
            Term::lambda(
                "k",
                Term::ind("nat"),
                Term::app(Term::const_("add"), [Term::rel(0), nat_lit(1)]),
            ),
            Term::pi("A", Term::type_(0), Term::arrow(Term::rel(0), Term::rel(0))),
            Term::let_("x", Term::ind("nat"), nat_lit(2), Term::rel(0)),
        ];
        for t in &samples {
            assert_eq!(nbe_normalize(&env, t), normalize(&env, t), "term: {t}");
        }
    }

    #[test]
    fn open_terms_compare_by_free_variable() {
        let env = env_with_nat();
        // #3 ≡ #3 but #3 ≢ #4, even though both are open.
        assert!(conv(&env, &Term::rel(3), &Term::rel(3)));
        assert!(!conv(&env, &Term::rel(3), &Term::rel(4)));
        // An open application of a stuck head.
        let t = Term::app(Term::construct("nat", 1), [Term::rel(0)]);
        let u = Term::app(Term::construct("nat", 1), [Term::rel(1)]);
        assert!(!conv(&env, &t, &u));
    }

    #[test]
    fn eta_against_stuck_neutral() {
        let mut env = env_with_nat();
        env.assume("f", Term::arrow(Term::ind("nat"), Term::ind("nat")))
            .unwrap();
        let etad = Term::lambda(
            "x",
            Term::ind("nat"),
            Term::app(Term::const_("f"), [Term::rel(0)]),
        );
        assert!(conv(&env, &etad, &Term::const_("f")));
        assert!(conv_leq(&env, &etad, &Term::const_("f")));
    }

    #[test]
    fn leq_propagates_through_pi_codomains_only() {
        let env = Env::new();
        // ∀ (A : Set), Prop  ≤  ∀ (A : Set), Type(0)
        let a = Term::pi("A", Term::set(), Term::prop());
        let b = Term::pi("A", Term::set(), Term::type_(0));
        assert!(conv_leq(&env, &a, &b));
        assert!(!conv_leq(&env, &b, &a));
        // Domains stay invariant.
        let c = Term::pi("A", Term::prop(), Term::prop());
        assert!(!conv_leq(&env, &a, &c));
    }
}
