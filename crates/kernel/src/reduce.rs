//! Reduction: weak head normalization and full normalization.
//!
//! Rules: β (application of a lambda), δ (unfolding of transparent
//! constants), ι (eliminator applied to a constructor, paper §4.1.2), and ζ
//! (let). Opaque constants (see [`crate::env::ConstDecl::opaque`]) block δ,
//! reproducing the paper's δ-blocklist (§4.4).

use crate::env::Env;
use crate::subst::{beta_apply, subst1};
use crate::term::{Binder, ElimData, Term, TermData};

/// Weak head normal form.
///
/// Infallible: ill-formed redexes (unknown globals, arity mismatches) are
/// simply left stuck; the type checker reports them properly.
///
/// Results are memoized on the [`Env`] (keyed by the term's precomputed
/// structural hash) until the next environment mutation; see
/// [`Env::kernel_stats`] for the hit/miss instrumentation and
/// [`Env::set_kernel_cache`] for the ablation switch.
pub fn whnf(env: &Env, t: &Term) -> Term {
    // Terms that are already weak-head-normal never enter the memo table;
    // answering them is cheaper than hashing them.
    match t.data() {
        TermData::Rel(_)
        | TermData::Sort(_)
        | TermData::Ind(_)
        | TermData::Construct(_, _)
        | TermData::Lambda(_, _)
        | TermData::Pi(_, _) => return t.clone(),
        TermData::Const(n) if env.unfold(n).is_none() => {
            env.note_stuck_const(n);
            return t.clone();
        }
        _ => {}
    }
    env.tally(|s| s.whnf_calls += 1);
    env.tracer().emit(pumpkin_trace::EventKind::Whnf);
    if let Some(r) = env.whnf_cached(t) {
        return r;
    }
    let r = whnf_uncached(env, t);
    env.whnf_insert(t.clone(), r.clone());
    r
}

fn whnf_uncached(env: &Env, t: &Term) -> Term {
    let mut t = t.clone();
    loop {
        let (head, args) = t.unfold_app();
        match head.data() {
            TermData::Const(n) => match env.unfold(n) {
                Some(body) => {
                    env.tally(|s| s.delta_steps += 1);
                    t = Term::app(body.clone(), args.iter().cloned());
                }
                None => {
                    env.note_stuck_const(n);
                    return t.clone();
                }
            },
            TermData::Let(_, v, body) => {
                env.tally(|s| s.zeta_steps += 1);
                t = Term::app(subst1(body, v), args.iter().cloned());
            }
            TermData::Lambda(_, _) if !args.is_empty() => {
                env.tally(|s| s.beta_steps += 1);
                t = beta_apply(head, args);
            }
            TermData::Elim(e) => {
                let scrut = whnf(env, &e.scrutinee);
                let reduced = (|| {
                    let (cind, j, cargs) = scrut.as_construct_app()?;
                    let decl = match env.inductive(cind) {
                        Ok(d) => d,
                        Err(_) => {
                            env.note_stuck_ind(cind);
                            return None;
                        }
                    };
                    if cind != &e.ind {
                        return None;
                    }
                    let p = decl.nparams();
                    let ctor = decl.ctors.get(j)?;
                    if cargs.len() != p + ctor.args.len() {
                        return None;
                    }
                    decl.iota_reduce(e, j, &cargs[p..]).ok()
                })();
                match reduced {
                    Some(r) => {
                        env.tally(|s| s.iota_steps += 1);
                        t = Term::app(r, args.iter().cloned());
                    }
                    None => {
                        // Stuck: expose the weak-head-normal scrutinee.
                        let stuck = Term::elim(ElimData {
                            scrutinee: scrut,
                            ..e.clone()
                        });
                        return Term::app(stuck, args.iter().cloned());
                    }
                }
            }
            _ => return t,
        }
    }
}

/// Full βδιζ-normal form.
pub fn normalize(env: &Env, t: &Term) -> Term {
    let t = whnf(env, t);
    match t.data() {
        TermData::Rel(_)
        | TermData::Sort(_)
        | TermData::Const(_)
        | TermData::Ind(_)
        | TermData::Construct(_, _) => t.clone(),
        TermData::App(h, args) => {
            Term::app(normalize(env, h), args.iter().map(|a| normalize(env, a)))
        }
        TermData::Lambda(b, body) => Term::new(TermData::Lambda(
            Binder {
                name: b.name.clone(),
                ty: normalize(env, &b.ty),
            },
            normalize(env, body),
        )),
        TermData::Pi(b, body) => Term::new(TermData::Pi(
            Binder {
                name: b.name.clone(),
                ty: normalize(env, &b.ty),
            },
            normalize(env, body),
        )),
        TermData::Let(_, _, _) => unreachable!("whnf eliminates let"),
        TermData::Elim(e) => Term::elim(ElimData {
            ind: e.ind.clone(),
            params: e.params.iter().map(|p| normalize(env, p)).collect(),
            motive: normalize(env, &e.motive),
            cases: e.cases.iter().map(|c| normalize(env, c)).collect(),
            scrutinee: normalize(env, &e.scrutinee),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inductive::{CtorDecl, InductiveDecl};
    use crate::term::Binder;
    use crate::universe::Sort;

    fn env_with_nat() -> Env {
        let mut env = Env::new();
        env.declare_inductive(InductiveDecl {
            name: "nat".into(),
            params: vec![],
            indices: vec![],
            sort: Sort::Set,
            ctors: vec![
                CtorDecl {
                    name: "O".into(),
                    args: vec![],
                    result_indices: vec![],
                },
                CtorDecl {
                    name: "S".into(),
                    args: vec![Binder::new("n", Term::ind("nat"))],
                    result_indices: vec![],
                },
            ],
        })
        .unwrap();
        env
    }

    fn nat_lit(n: u64) -> Term {
        let mut t = Term::construct("nat", 0);
        for _ in 0..n {
            t = Term::app(Term::construct("nat", 1), [t]);
        }
        t
    }

    /// add := fun n m => Elim(n, fun _ => nat){ m, fun _ ih => S ih }
    fn add() -> Term {
        Term::lambda(
            "n",
            Term::ind("nat"),
            Term::lambda(
                "m",
                Term::ind("nat"),
                Term::elim(ElimData {
                    ind: "nat".into(),
                    params: vec![],
                    motive: Term::lambda("_", Term::ind("nat"), Term::ind("nat")),
                    cases: vec![
                        Term::rel(0),
                        Term::lambda(
                            "n",
                            Term::ind("nat"),
                            Term::lambda(
                                "ih",
                                Term::ind("nat"),
                                Term::app(Term::construct("nat", 1), [Term::rel(0)]),
                            ),
                        ),
                    ],
                    scrutinee: Term::rel(1),
                }),
            ),
        )
    }

    #[test]
    fn beta_delta_iota_compute_addition() {
        let mut env = env_with_nat();
        env.define(
            "add",
            Term::arrow(
                Term::ind("nat"),
                Term::arrow(Term::ind("nat"), Term::ind("nat")),
            ),
            add(),
        )
        .unwrap();
        let call = Term::app(Term::const_("add"), [nat_lit(2), nat_lit(3)]);
        assert_eq!(normalize(&env, &call), nat_lit(5));
    }

    #[test]
    fn opaque_blocks_delta() {
        let mut env = env_with_nat();
        env.define("two", Term::ind("nat"), nat_lit(2)).unwrap();
        assert_eq!(whnf(&env, &Term::const_("two")), nat_lit(2));
        env.set_opaque(&"two".into(), true).unwrap();
        assert_eq!(whnf(&env, &Term::const_("two")), Term::const_("two"));
        env.set_opaque(&"two".into(), false).unwrap();
        assert_eq!(normalize(&env, &Term::const_("two")), nat_lit(2));
    }

    #[test]
    fn whnf_memo_hits_and_step_counters() {
        let mut env = env_with_nat();
        env.define(
            "add",
            Term::arrow(
                Term::ind("nat"),
                Term::arrow(Term::ind("nat"), Term::ind("nat")),
            ),
            add(),
        )
        .unwrap();
        let call = Term::app(Term::const_("add"), [nat_lit(2), nat_lit(3)]);
        env.reset_kernel_stats();
        let r1 = whnf(&env, &call);
        let first = env.kernel_stats();
        assert!(first.delta_steps >= 1, "δ fired: {first}");
        assert!(first.beta_steps >= 1, "β fired: {first}");
        assert!(first.iota_steps >= 1, "ι fired: {first}");
        assert_eq!(first.whnf_cache_hits, 0);
        // A structurally equal (but freshly allocated) term hits the memo.
        let call2 = Term::app(Term::const_("add"), [nat_lit(2), nat_lit(3)]);
        let r2 = whnf(&env, &call2);
        assert_eq!(r1, r2);
        let second = env.kernel_stats();
        assert_eq!(second.whnf_cache_hits, 1);
        // No further reduction work was done for the hit.
        assert_eq!(second.reduction_steps(), first.reduction_steps());
    }

    #[test]
    fn whnf_memo_respects_transparency_flips() {
        let mut env = env_with_nat();
        env.define("two", Term::ind("nat"), nat_lit(2)).unwrap();
        let two = Term::const_("two");
        assert_eq!(whnf(&env, &two), nat_lit(2));
        env.set_opaque(&"two".into(), true).unwrap();
        // Stale memo entry must not resurface the unfolded body.
        assert_eq!(whnf(&env, &two), two);
        env.set_opaque(&"two".into(), false).unwrap();
        assert_eq!(whnf(&env, &two), nat_lit(2));
    }

    #[test]
    fn whnf_cache_disabled_agrees_with_enabled() {
        let mut env = env_with_nat();
        env.define(
            "add",
            Term::arrow(
                Term::ind("nat"),
                Term::arrow(Term::ind("nat"), Term::ind("nat")),
            ),
            add(),
        )
        .unwrap();
        let call = Term::app(Term::const_("add"), [nat_lit(2), nat_lit(3)]);
        let cached = whnf(&env, &call);
        env.set_kernel_cache(false);
        let uncached = whnf(&env, &call);
        assert_eq!(cached, uncached);
        let stats = env.kernel_stats();
        env.set_kernel_cache(true);
        // With the cache off, probes are not counted as hits.
        let _ = whnf(&env, &call);
        assert!(env.kernel_stats().whnf_cache_misses >= stats.whnf_cache_misses);
    }

    #[test]
    fn whnf_is_lazy_in_arguments() {
        let env = env_with_nat();
        // (fun x => O) ((fun y => y) O)  —  whnf should not normalize the arg.
        let id = Term::lambda("y", Term::ind("nat"), Term::rel(0));
        let konst = Term::lambda("x", Term::ind("nat"), nat_lit(0));
        let t = Term::app(konst, [Term::app(id, [nat_lit(0)])]);
        assert_eq!(whnf(&env, &t), nat_lit(0));
    }

    #[test]
    fn zeta_reduces_let() {
        let env = env_with_nat();
        let t = Term::let_("x", Term::ind("nat"), nat_lit(1), Term::rel(0));
        assert_eq!(whnf(&env, &t), nat_lit(1));
    }

    #[test]
    fn stuck_elim_exposes_whnf_scrutinee() {
        let mut env = env_with_nat();
        env.assume("k", Term::ind("nat")).unwrap();
        let e = Term::elim(ElimData {
            ind: "nat".into(),
            params: vec![],
            motive: Term::lambda("_", Term::ind("nat"), Term::ind("nat")),
            cases: vec![
                nat_lit(0),
                Term::lambda(
                    "n",
                    Term::ind("nat"),
                    Term::lambda("ih", Term::ind("nat"), Term::rel(0)),
                ),
            ],
            scrutinee: Term::app(
                Term::lambda("z", Term::ind("nat"), Term::rel(0)),
                [Term::const_("k")],
            ),
        });
        let r = whnf(&env, &e);
        match r.data() {
            TermData::Elim(e2) => assert_eq!(e2.scrutinee, Term::const_("k")),
            _ => panic!("expected stuck elim, got {r}"),
        }
    }
}
