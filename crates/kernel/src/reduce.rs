//! Reduction: weak head normalization and full normalization.
//!
//! Rules: β (application of a lambda), δ (unfolding of transparent
//! constants), ι (eliminator applied to a constructor, paper §4.1.2), and ζ
//! (let). Opaque constants (see [`crate::env::ConstDecl::opaque`]) block δ,
//! reproducing the paper's δ-blocklist (§4.4).

use crate::env::Env;
use crate::subst::{beta_apply, subst1};
use crate::term::{Binder, ElimData, Term, TermData};

/// Weak head normal form.
///
/// Infallible: ill-formed redexes (unknown globals, arity mismatches) are
/// simply left stuck; the type checker reports them properly.
pub fn whnf(env: &Env, t: &Term) -> Term {
    let mut t = t.clone();
    loop {
        let (head, args) = t.unfold_app();
        match head.data() {
            TermData::Const(n) => match env.unfold(n) {
                Some(body) => {
                    t = Term::app(body.clone(), args.iter().cloned());
                }
                None => return t.clone(),
            },
            TermData::Let(_, v, body) => {
                t = Term::app(subst1(body, v), args.iter().cloned());
            }
            TermData::Lambda(_, _) if !args.is_empty() => {
                t = beta_apply(head, args);
            }
            TermData::Elim(e) => {
                let scrut = whnf(env, &e.scrutinee);
                let reduced = (|| {
                    let (cind, j, cargs) = scrut.as_construct_app()?;
                    let decl = env.inductive(cind).ok()?;
                    if cind != &e.ind {
                        return None;
                    }
                    let p = decl.nparams();
                    let ctor = decl.ctors.get(j)?;
                    if cargs.len() != p + ctor.args.len() {
                        return None;
                    }
                    decl.iota_reduce(e, j, &cargs[p..]).ok()
                })();
                match reduced {
                    Some(r) => {
                        t = Term::app(r, args.iter().cloned());
                    }
                    None => {
                        // Stuck: expose the weak-head-normal scrutinee.
                        let stuck = Term::elim(ElimData {
                            scrutinee: scrut,
                            ..e.clone()
                        });
                        return Term::app(stuck, args.iter().cloned());
                    }
                }
            }
            _ => return t,
        }
    }
}

/// Full βδιζ-normal form.
pub fn normalize(env: &Env, t: &Term) -> Term {
    let t = whnf(env, t);
    match t.data() {
        TermData::Rel(_)
        | TermData::Sort(_)
        | TermData::Const(_)
        | TermData::Ind(_)
        | TermData::Construct(_, _) => t.clone(),
        TermData::App(h, args) => Term::app(
            normalize(env, h),
            args.iter().map(|a| normalize(env, a)),
        ),
        TermData::Lambda(b, body) => Term::new(TermData::Lambda(
            Binder {
                name: b.name.clone(),
                ty: normalize(env, &b.ty),
            },
            normalize(env, body),
        )),
        TermData::Pi(b, body) => Term::new(TermData::Pi(
            Binder {
                name: b.name.clone(),
                ty: normalize(env, &b.ty),
            },
            normalize(env, body),
        )),
        TermData::Let(_, _, _) => unreachable!("whnf eliminates let"),
        TermData::Elim(e) => Term::elim(ElimData {
            ind: e.ind.clone(),
            params: e.params.iter().map(|p| normalize(env, p)).collect(),
            motive: normalize(env, &e.motive),
            cases: e.cases.iter().map(|c| normalize(env, c)).collect(),
            scrutinee: normalize(env, &e.scrutinee),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inductive::{CtorDecl, InductiveDecl};
    use crate::term::Binder;
    use crate::universe::Sort;

    fn env_with_nat() -> Env {
        let mut env = Env::new();
        env.declare_inductive(InductiveDecl {
            name: "nat".into(),
            params: vec![],
            indices: vec![],
            sort: Sort::Set,
            ctors: vec![
                CtorDecl {
                    name: "O".into(),
                    args: vec![],
                    result_indices: vec![],
                },
                CtorDecl {
                    name: "S".into(),
                    args: vec![Binder::new("n", Term::ind("nat"))],
                    result_indices: vec![],
                },
            ],
        })
        .unwrap();
        env
    }

    fn nat_lit(n: u64) -> Term {
        let mut t = Term::construct("nat", 0);
        for _ in 0..n {
            t = Term::app(Term::construct("nat", 1), [t]);
        }
        t
    }

    /// add := fun n m => Elim(n, fun _ => nat){ m, fun _ ih => S ih }
    fn add() -> Term {
        Term::lambda(
            "n",
            Term::ind("nat"),
            Term::lambda(
                "m",
                Term::ind("nat"),
                Term::elim(ElimData {
                    ind: "nat".into(),
                    params: vec![],
                    motive: Term::lambda("_", Term::ind("nat"), Term::ind("nat")),
                    cases: vec![
                        Term::rel(0),
                        Term::lambda(
                            "n",
                            Term::ind("nat"),
                            Term::lambda(
                                "ih",
                                Term::ind("nat"),
                                Term::app(Term::construct("nat", 1), [Term::rel(0)]),
                            ),
                        ),
                    ],
                    scrutinee: Term::rel(1),
                }),
            ),
        )
    }

    #[test]
    fn beta_delta_iota_compute_addition() {
        let mut env = env_with_nat();
        env.define(
            "add",
            Term::arrow(Term::ind("nat"), Term::arrow(Term::ind("nat"), Term::ind("nat"))),
            add(),
        )
        .unwrap();
        let call = Term::app(Term::const_("add"), [nat_lit(2), nat_lit(3)]);
        assert_eq!(normalize(&env, &call), nat_lit(5));
    }

    #[test]
    fn opaque_blocks_delta() {
        let mut env = env_with_nat();
        env.define(
            "two",
            Term::ind("nat"),
            nat_lit(2),
        )
        .unwrap();
        assert_eq!(whnf(&env, &Term::const_("two")), nat_lit(2));
        env.set_opaque(&"two".into(), true).unwrap();
        assert_eq!(whnf(&env, &Term::const_("two")), Term::const_("two"));
        env.set_opaque(&"two".into(), false).unwrap();
        assert_eq!(normalize(&env, &Term::const_("two")), nat_lit(2));
    }

    #[test]
    fn whnf_is_lazy_in_arguments() {
        let env = env_with_nat();
        // (fun x => O) ((fun y => y) O)  —  whnf should not normalize the arg.
        let id = Term::lambda("y", Term::ind("nat"), Term::rel(0));
        let konst = Term::lambda("x", Term::ind("nat"), nat_lit(0));
        let t = Term::app(konst, [Term::app(id, [nat_lit(0)])]);
        assert_eq!(whnf(&env, &t), nat_lit(0));
    }

    #[test]
    fn zeta_reduces_let() {
        let env = env_with_nat();
        let t = Term::let_("x", Term::ind("nat"), nat_lit(1), Term::rel(0));
        assert_eq!(whnf(&env, &t), nat_lit(1));
    }

    #[test]
    fn stuck_elim_exposes_whnf_scrutinee() {
        let mut env = env_with_nat();
        env.assume("k", Term::ind("nat")).unwrap();
        let e = Term::elim(ElimData {
            ind: "nat".into(),
            params: vec![],
            motive: Term::lambda("_", Term::ind("nat"), Term::ind("nat")),
            cases: vec![nat_lit(0), Term::lambda("n", Term::ind("nat"), Term::lambda("ih", Term::ind("nat"), Term::rel(0)))],
            scrutinee: Term::app(
                Term::lambda("z", Term::ind("nat"), Term::rel(0)),
                [Term::const_("k")],
            ),
        });
        let r = whnf(&env, &e);
        match r.data() {
            TermData::Elim(e2) => assert_eq!(e2.scrutinee, Term::const_("k")),
            _ => panic!("expected stuck elim, got {r}"),
        }
    }
}
