//! Names: binder hints and global (qualified) names.
//!
//! The kernel uses de Bruijn indices for bound variables, so binder names are
//! *hints* only: they are kept for pretty-printing and decompilation but are
//! ignored by structural equality and hashing (alpha-equivalence is therefore
//! syntactic equality).

use std::borrow::Borrow;
use std::fmt;

use crate::term::TermRc;

/// A binder hint. `Anonymous` prints as `_`.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Name {
    /// No name was given; printed as `_`.
    #[default]
    Anonymous,
    /// A user-facing identifier hint.
    Named(TermRc<str>),
}

impl Name {
    /// Creates a named binder hint.
    ///
    /// An identifier of `"_"` (or the empty string) is normalized to
    /// [`Name::Anonymous`].
    pub fn named(s: impl AsRef<str>) -> Self {
        let s = s.as_ref();
        if s.is_empty() || s == "_" {
            Name::Anonymous
        } else {
            Name::Named(TermRc::from(s))
        }
    }

    /// Returns the identifier if this is a named hint.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Name::Anonymous => None,
            Name::Named(s) => Some(s),
        }
    }

    /// Returns `true` when this hint is anonymous.
    pub fn is_anonymous(&self) -> bool {
        matches!(self, Name::Anonymous)
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Name::Anonymous => write!(f, "_"),
            Name::Named(s) => write!(f, "{s}"),
        }
    }
}

impl From<&str> for Name {
    fn from(s: &str) -> Self {
        Name::named(s)
    }
}

/// A fully qualified global name, e.g. `"Old.list"` or `"Old.list.cons"`.
///
/// Global names are interned behind a [`TermRc<str>`] (an `Arc`, so names —
/// and with them terms — are `Send + Sync`) so cloning is cheap; the
/// environment treats them as flat strings (dots carry no semantics beyond
/// readability).
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalName(TermRc<str>);

impl GlobalName {
    /// Creates a global name from an identifier.
    pub fn new(s: impl AsRef<str>) -> Self {
        GlobalName(TermRc::from(s.as_ref()))
    }

    /// The underlying identifier.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The final dot-separated segment, e.g. `"cons"` for `"Old.list.cons"`.
    pub fn basename(&self) -> &str {
        self.0.rsplit('.').next().unwrap_or(&self.0)
    }

    /// The dot-separated prefix, if any, e.g. `"Old.list"` for
    /// `"Old.list.cons"`.
    pub fn qualifier(&self) -> Option<&str> {
        self.0.rfind('.').map(|i| &self.0[..i])
    }
}

impl fmt::Display for GlobalName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for GlobalName {
    fn from(s: &str) -> Self {
        GlobalName::new(s)
    }
}

impl From<String> for GlobalName {
    fn from(s: String) -> Self {
        GlobalName::new(s)
    }
}

impl Borrow<str> for GlobalName {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for GlobalName {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anonymous_normalization() {
        assert!(Name::named("_").is_anonymous());
        assert!(Name::named("").is_anonymous());
        assert_eq!(Name::named("x").as_str(), Some("x"));
    }

    #[test]
    fn global_name_parts() {
        let g = GlobalName::new("Old.list.cons");
        assert_eq!(g.basename(), "cons");
        assert_eq!(g.qualifier(), Some("Old.list"));
        let g2 = GlobalName::new("nat");
        assert_eq!(g2.basename(), "nat");
        assert_eq!(g2.qualifier(), None);
    }

    #[test]
    fn display() {
        assert_eq!(Name::Anonymous.to_string(), "_");
        assert_eq!(Name::named("IHl").to_string(), "IHl");
        assert_eq!(GlobalName::new("N.succ").to_string(), "N.succ");
    }
}
