//! Kernel instrumentation: conversion/whnf cache hit rates and reduction
//! step counters.
//!
//! The mirror image of `pumpkin_core::LiftStats` one layer down: where
//! `LiftStats` measures the §4.4 closed-subterm lifting cache, these
//! counters measure the kernel hot paths every lift-cache probe bottoms
//! out in. Counters live on [`crate::env::Env`] (interior-mutable, since
//! `conv`/`whnf` take `&Env`); snapshot them with
//! [`crate::env::Env::kernel_stats`] and subtract snapshots with
//! [`KernelStats::since`] to attribute work to a phase.

use std::fmt;

/// Counters for the kernel's conversion and reduction hot paths.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Calls to `conv` (after the `t == u` fast path).
    pub conv_calls: u64,
    /// Conversion results answered from the memo table.
    pub conv_cache_hits: u64,
    /// Conversion results computed and inserted.
    pub conv_cache_misses: u64,
    /// Calls to `whnf` that were not already in weak head normal form.
    pub whnf_calls: u64,
    /// Weak head normal forms answered from the memo table.
    pub whnf_cache_hits: u64,
    /// Weak head normal forms computed and inserted.
    pub whnf_cache_misses: u64,
    /// β-redexes fired (lambda applied to arguments).
    pub beta_steps: u64,
    /// δ-unfoldings of transparent constants.
    pub delta_steps: u64,
    /// ι-reductions (eliminator applied to a constructor).
    pub iota_steps: u64,
    /// ζ-reductions (let bindings substituted).
    pub zeta_steps: u64,
    /// Cache generations observed (table flushes caused by `Env` mutation).
    pub invalidations: u64,
    /// Type-checker `infer` entries (one per term node visited).
    pub infer_calls: u64,
}

impl KernelStats {
    /// Field-wise difference against an earlier snapshot.
    pub fn since(&self, earlier: &KernelStats) -> KernelStats {
        KernelStats {
            conv_calls: self.conv_calls - earlier.conv_calls,
            conv_cache_hits: self.conv_cache_hits - earlier.conv_cache_hits,
            conv_cache_misses: self.conv_cache_misses - earlier.conv_cache_misses,
            whnf_calls: self.whnf_calls - earlier.whnf_calls,
            whnf_cache_hits: self.whnf_cache_hits - earlier.whnf_cache_hits,
            whnf_cache_misses: self.whnf_cache_misses - earlier.whnf_cache_misses,
            beta_steps: self.beta_steps - earlier.beta_steps,
            delta_steps: self.delta_steps - earlier.delta_steps,
            iota_steps: self.iota_steps - earlier.iota_steps,
            zeta_steps: self.zeta_steps - earlier.zeta_steps,
            invalidations: self.invalidations - earlier.invalidations,
            infer_calls: self.infer_calls - earlier.infer_calls,
        }
    }

    /// Fieldwise sum — used by the parallel repair scheduler to aggregate
    /// the counters accrued by per-worker environment clones into one
    /// module-level total.
    pub fn absorb(&mut self, other: &KernelStats) {
        self.conv_calls += other.conv_calls;
        self.conv_cache_hits += other.conv_cache_hits;
        self.conv_cache_misses += other.conv_cache_misses;
        self.whnf_calls += other.whnf_calls;
        self.whnf_cache_hits += other.whnf_cache_hits;
        self.whnf_cache_misses += other.whnf_cache_misses;
        self.beta_steps += other.beta_steps;
        self.delta_steps += other.delta_steps;
        self.iota_steps += other.iota_steps;
        self.zeta_steps += other.zeta_steps;
        self.invalidations += other.invalidations;
        self.infer_calls += other.infer_calls;
    }

    /// Fraction of non-trivial `conv` calls answered by the memo table.
    pub fn conv_hit_rate(&self) -> f64 {
        ratio(
            self.conv_cache_hits,
            self.conv_cache_hits + self.conv_cache_misses,
        )
    }

    /// Fraction of non-trivial `whnf` calls answered by the memo table.
    pub fn whnf_hit_rate(&self) -> f64 {
        ratio(
            self.whnf_cache_hits,
            self.whnf_cache_hits + self.whnf_cache_misses,
        )
    }

    /// Total reduction steps of any flavour.
    pub fn reduction_steps(&self) -> u64 {
        self.beta_steps + self.delta_steps + self.iota_steps + self.zeta_steps
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

impl fmt::Display for KernelStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "conv {}/{} hits ({:.1}%), whnf {}/{} hits ({:.1}%), \
             β {} δ {} ι {} ζ {}, {} invalidations",
            self.conv_cache_hits,
            self.conv_cache_hits + self.conv_cache_misses,
            100.0 * self.conv_hit_rate(),
            self.whnf_cache_hits,
            self.whnf_cache_hits + self.whnf_cache_misses,
            100.0 * self.whnf_hit_rate(),
            self.beta_steps,
            self.delta_steps,
            self.iota_steps,
            self.zeta_steps,
            self.invalidations,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_subtracts_fieldwise() {
        let a = KernelStats {
            conv_calls: 10,
            conv_cache_hits: 4,
            whnf_calls: 7,
            beta_steps: 3,
            ..Default::default()
        };
        let b = KernelStats {
            conv_calls: 25,
            conv_cache_hits: 9,
            whnf_calls: 11,
            beta_steps: 8,
            ..Default::default()
        };
        let d = b.since(&a);
        assert_eq!(d.conv_calls, 15);
        assert_eq!(d.conv_cache_hits, 5);
        assert_eq!(d.whnf_calls, 4);
        assert_eq!(d.beta_steps, 5);
    }

    #[test]
    fn hit_rates_handle_zero_denominator() {
        let s = KernelStats::default();
        assert_eq!(s.conv_hit_rate(), 0.0);
        assert_eq!(s.whnf_hit_rate(), 0.0);
        let s = KernelStats {
            whnf_cache_hits: 3,
            whnf_cache_misses: 1,
            ..Default::default()
        };
        assert_eq!(s.whnf_hit_rate(), 0.75);
    }
}
