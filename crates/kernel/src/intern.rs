//! The global hash-consing term arena.
//!
//! Every [`Term`] in the process is allocated through [`intern`]: a sharded
//! global table maps term payloads (children compared by *pointer*, so a
//! lookup is O(arity)) to their unique canonical allocation. Two
//! consequences the rest of the kernel builds on:
//!
//! * **Identity is structure.** Structurally identical payloads (including
//!   binder names) share one allocation, so `Term::same_allocation` — and
//!   with it the `Term: Eq` fast path — succeeds for *all* equal terms built
//!   anywhere in the process, not just for clones of one another.
//! * **Alpha-equivalence is an integer.** Each node records the id of its
//!   *alpha-canonical skeleton* (the same structure with every binder name
//!   erased), exposed as [`Term::id`]. Two terms are alpha-equivalent — the
//!   kernel's structural equality — iff their [`TermId`]s are equal, which
//!   is what lets the conv/whnf memo tables key on plain integers.
//!
//! Binder names participate in the intern key on purpose: interning *modulo*
//! names would make the canonical name of a binder "whichever thread
//! interned it first", and with a process-global table that is
//! nondeterministic under parallel tests — pretty-printed output and wire
//! JSON would flake. Instead names are kept per-node and alpha-equivalence
//! is carried by the side skeleton.
//!
//! Every cell also caches, computed once at intern time from its children's
//! cells (O(arity), never O(size)):
//!
//! * `hash` — the alpha-invariant structural hash (the same fixed-key value
//!   the pre-arena representation computed, so wire digests and persisted
//!   cache keys are unchanged);
//! * `ceil` — the least `n` such that every free `Rel` is `< n`, which
//!   gives `lift`/`subst` an O(1) skip over closed subterms;
//! * `size` — the tree node count (saturating), for the benchmarks.
//!
//! The arena holds strong references and never frees: terms are immutable,
//! so a node is valid forever, and the repair workloads re-intern the same
//! structures across runs (that reuse is the point). A long-lived daemon
//! that wants to bound arena growth would need an epoch/trace GC; see
//! DESIGN.md §15 for the tradeoff discussion.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::name::Name;
use crate::term::{Binder, ElimData, Term, TermData, TermRc};

/// The alpha-canonical identity of a term: equal iff the terms are
/// structurally equal (alpha-equivalent). Obtained via [`Term::id`]; used as
/// the integer key of the kernel's memo tables and the wire node table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TermId(pub(crate) u32);

impl TermId {
    /// The raw id value (stable within a process only — ids are assigned in
    /// intern order and must never be persisted).
    pub fn as_u32(self) -> u32 {
        self.0
    }
}

/// The allocation unit behind [`Term`]: the payload plus everything the
/// kernel wants to know about it in O(1), computed once at intern time.
pub(crate) struct TermCell {
    /// The payload. Children are themselves interned `Term`s.
    pub(crate) data: TermData,
    /// Alpha-invariant structural hash (fixed-key, process-stable): the
    /// `DefaultHasher` of `data` under the name-ignoring `Hash` impls, which
    /// is exactly what the pre-arena representation cached — wire digests
    /// derive from it and must not change.
    pub(crate) hash: u64,
    /// This node's own slot (unique per allocation, name-sensitive).
    pub(crate) slot: u32,
    /// The alpha-canonical skeleton (every binder name erased), or `None`
    /// when this node is its own skeleton. [`Term::id`] is the skeleton's
    /// slot.
    pub(crate) alpha: Option<Term>,
    /// Least `n` such that every free `Rel` in this term is `< n`; `0`
    /// means closed.
    pub(crate) ceil: u32,
    /// Tree node count, saturating at `u32::MAX`.
    pub(crate) size: u32,
}

const SHARD_COUNT: usize = 16;

#[derive(Default)]
struct Shard {
    /// Full (name-sensitive) hash → the interned terms with that hash.
    /// Buckets are almost always singletons; collisions chain in the `Vec`.
    map: HashMap<u64, Vec<Term>>,
}

struct Interner {
    shards: [Mutex<Shard>; SHARD_COUNT],
    next_slot: AtomicU64,
    lookups: AtomicU64,
    hits: AtomicU64,
}

/// Point-in-time counters of the global arena, for stats probes and the
/// EXPERIMENTS.md notes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InternerStats {
    /// Distinct nodes ever interned (the arena never frees).
    pub nodes: u64,
    /// Total intern requests.
    pub lookups: u64,
    /// Requests answered by an existing node (structural sharing wins).
    pub hits: u64,
}

fn interner() -> &'static Interner {
    static INTERNER: OnceLock<Interner> = OnceLock::new();
    INTERNER.get_or_init(|| Interner {
        shards: std::array::from_fn(|_| Mutex::new(Shard::default())),
        next_slot: AtomicU64::new(0),
        lookups: AtomicU64::new(0),
        hits: AtomicU64::new(0),
    })
}

/// Counters of the global arena.
pub fn interner_stats() -> InternerStats {
    let i = interner();
    InternerStats {
        nodes: i.next_slot.load(Ordering::Relaxed),
        lookups: i.lookups.load(Ordering::Relaxed),
        hits: i.hits.load(Ordering::Relaxed),
    }
}

/// Interns `data`, returning the canonical [`Term`] for it. Children of
/// `data` must already be interned terms (they always are — `Term`s cannot
/// be built any other way).
pub(crate) fn intern(data: TermData) -> Term {
    let it = interner();
    it.lookups.fetch_add(1, Ordering::Relaxed);
    let key = full_hash(&data);
    let shard = &it.shards[(key as usize) & (SHARD_COUNT - 1)];
    {
        let guard = shard.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(bucket) = guard.map.get(&key) {
            if let Some(t) = bucket.iter().find(|t| shallow_eq(t.data(), &data)) {
                it.hits.fetch_add(1, Ordering::Relaxed);
                return t.clone();
            }
        }
    }
    // Miss: build the cell outside the lock (computing the alpha skeleton
    // re-enters `intern`, possibly on this same shard).
    let alpha = if is_self_canonical(&data) {
        None
    } else {
        Some(intern(anonymize(&data)))
    };
    let hash = {
        // A fixed-key hasher: `DefaultHasher::new()` is deterministic, so
        // structural hashes are stable within (and across) processes.
        let mut h = DefaultHasher::new();
        data.hash(&mut h);
        h.finish()
    };
    let ceil = ceil_of(&data);
    let size = size_of(&data);
    let mut guard = shard.lock().unwrap_or_else(|e| e.into_inner());
    // Re-probe: another thread may have interned the same payload while the
    // lock was released.
    if let Some(bucket) = guard.map.get(&key) {
        if let Some(t) = bucket.iter().find(|t| shallow_eq(t.data(), &data)) {
            it.hits.fetch_add(1, Ordering::Relaxed);
            return t.clone();
        }
    }
    let slot = it.next_slot.fetch_add(1, Ordering::Relaxed);
    assert!(slot < u32::MAX as u64, "term arena exhausted 2^32 slots");
    #[allow(clippy::disallowed_methods)]
    let t = raw_cell(TermCell {
        data,
        hash,
        slot: slot as u32,
        alpha,
        ceil,
        size,
    });
    guard.map.entry(key).or_default().push(t.clone());
    t
}

/// Wraps a [`TermCell`] allocation into a [`Term`]. **The interner's single
/// allocation point** — calling it anywhere else would mint a term that
/// bypasses hash-consing and break the `TermId`-equality invariant, which is
/// why `clippy.toml` lists it under `disallowed-methods` (the one legitimate
/// call site above carries the `#[allow]`).
#[doc(hidden)]
pub(crate) fn raw_cell(cell: TermCell) -> Term {
    Term(TermRc::new(cell))
}

/// Is `data` its own alpha-canonical skeleton (no named binders anywhere)?
fn is_self_canonical(data: &TermData) -> bool {
    let child_ok = |t: &Term| t.cell().alpha.is_none();
    match data {
        TermData::Rel(_) | TermData::Sort(_) | TermData::Const(_) | TermData::Ind(_) => true,
        TermData::Construct(_, _) => true,
        TermData::App(h, args) => child_ok(h) && args.iter().all(child_ok),
        TermData::Lambda(b, body) | TermData::Pi(b, body) => {
            b.name.is_anonymous() && child_ok(&b.ty) && child_ok(body)
        }
        TermData::Let(b, v, body) => {
            b.name.is_anonymous() && child_ok(&b.ty) && child_ok(v) && child_ok(body)
        }
        TermData::Elim(e) => {
            e.params.iter().all(child_ok)
                && child_ok(&e.motive)
                && e.cases.iter().all(child_ok)
                && child_ok(&e.scrutinee)
        }
    }
}

/// The payload of the alpha-canonical skeleton: every binder name erased,
/// every child replaced by its own skeleton. O(arity): children carry their
/// skeletons precomputed.
fn anonymize(data: &TermData) -> TermData {
    let c = |t: &Term| t.alpha_canonical().clone();
    match data {
        TermData::Rel(_)
        | TermData::Sort(_)
        | TermData::Const(_)
        | TermData::Ind(_)
        | TermData::Construct(_, _) => data.clone(),
        TermData::App(h, args) => TermData::App(c(h), args.iter().map(c).collect()),
        TermData::Lambda(b, body) => TermData::Lambda(
            Binder {
                name: Name::Anonymous,
                ty: c(&b.ty),
            },
            c(body),
        ),
        TermData::Pi(b, body) => TermData::Pi(
            Binder {
                name: Name::Anonymous,
                ty: c(&b.ty),
            },
            c(body),
        ),
        TermData::Let(b, v, body) => TermData::Let(
            Binder {
                name: Name::Anonymous,
                ty: c(&b.ty),
            },
            c(v),
            c(body),
        ),
        TermData::Elim(e) => TermData::Elim(ElimData {
            ind: e.ind.clone(),
            params: e.params.iter().map(c).collect(),
            motive: c(&e.motive),
            cases: e.cases.iter().map(c).collect(),
            scrutinee: c(&e.scrutinee),
        }),
    }
}

/// The full, name-*sensitive* lookup hash: children hashed by their unique
/// slot (pointer identity), names and payloads hashed by value. Only ever
/// used in-memory as the shard map key.
fn full_hash(data: &TermData) -> u64 {
    let mut h = DefaultHasher::new();
    let slot = |t: &Term| t.cell().slot;
    match data {
        TermData::Rel(i) => {
            h.write_u8(0);
            i.hash(&mut h);
        }
        TermData::Sort(s) => {
            h.write_u8(1);
            s.hash(&mut h);
        }
        TermData::Const(n) => {
            h.write_u8(2);
            n.hash(&mut h);
        }
        TermData::Ind(n) => {
            h.write_u8(3);
            n.hash(&mut h);
        }
        TermData::Construct(n, j) => {
            h.write_u8(4);
            n.hash(&mut h);
            j.hash(&mut h);
        }
        TermData::App(f, args) => {
            h.write_u8(5);
            h.write_u32(slot(f));
            h.write_usize(args.len());
            for a in args {
                h.write_u32(slot(a));
            }
        }
        TermData::Lambda(b, body) => {
            h.write_u8(6);
            b.name.hash(&mut h);
            h.write_u32(slot(&b.ty));
            h.write_u32(slot(body));
        }
        TermData::Pi(b, body) => {
            h.write_u8(7);
            b.name.hash(&mut h);
            h.write_u32(slot(&b.ty));
            h.write_u32(slot(body));
        }
        TermData::Let(b, v, body) => {
            h.write_u8(8);
            b.name.hash(&mut h);
            h.write_u32(slot(&b.ty));
            h.write_u32(slot(v));
            h.write_u32(slot(body));
        }
        TermData::Elim(e) => {
            h.write_u8(9);
            e.ind.hash(&mut h);
            h.write_usize(e.params.len());
            for p in &e.params {
                h.write_u32(slot(p));
            }
            h.write_u32(slot(&e.motive));
            h.write_usize(e.cases.len());
            for c in &e.cases {
                h.write_u32(slot(c));
            }
            h.write_u32(slot(&e.scrutinee));
        }
    }
    h.finish()
}

/// Name-sensitive shallow equality: payloads by value, children by pointer
/// (children are interned, so pointer equality *is* their full equality
/// including names).
fn shallow_eq(a: &TermData, b: &TermData) -> bool {
    let same = Term::same_allocation;
    match (a, b) {
        (TermData::Rel(i), TermData::Rel(j)) => i == j,
        (TermData::Sort(s1), TermData::Sort(s2)) => s1 == s2,
        (TermData::Const(n1), TermData::Const(n2)) => n1 == n2,
        (TermData::Ind(n1), TermData::Ind(n2)) => n1 == n2,
        (TermData::Construct(n1, j1), TermData::Construct(n2, j2)) => n1 == n2 && j1 == j2,
        (TermData::App(f1, a1), TermData::App(f2, a2)) => {
            same(f1, f2) && a1.len() == a2.len() && a1.iter().zip(a2).all(|(x, y)| same(x, y))
        }
        (TermData::Lambda(b1, c1), TermData::Lambda(b2, c2))
        | (TermData::Pi(b1, c1), TermData::Pi(b2, c2)) => {
            b1.name == b2.name && same(&b1.ty, &b2.ty) && same(c1, c2)
        }
        (TermData::Let(b1, v1, c1), TermData::Let(b2, v2, c2)) => {
            b1.name == b2.name && same(&b1.ty, &b2.ty) && same(v1, v2) && same(c1, c2)
        }
        (TermData::Elim(e1), TermData::Elim(e2)) => {
            e1.ind == e2.ind
                && e1.params.len() == e2.params.len()
                && e1.cases.len() == e2.cases.len()
                && e1.params.iter().zip(&e2.params).all(|(x, y)| same(x, y))
                && same(&e1.motive, &e2.motive)
                && e1.cases.iter().zip(&e2.cases).all(|(x, y)| same(x, y))
                && same(&e1.scrutinee, &e2.scrutinee)
        }
        _ => false,
    }
}

/// Least `n` such that every free `Rel` of the node is `< n`, from the
/// children's cached values.
fn ceil_of(data: &TermData) -> u32 {
    let c = |t: &Term| t.cell().ceil;
    let under = |t: &Term| t.cell().ceil.saturating_sub(1);
    match data {
        TermData::Rel(i) => u32::try_from(i + 1).unwrap_or(u32::MAX),
        TermData::Sort(_) | TermData::Const(_) | TermData::Ind(_) | TermData::Construct(_, _) => 0,
        TermData::App(h, args) => args.iter().map(c).fold(c(h), u32::max),
        TermData::Lambda(b, body) | TermData::Pi(b, body) => c(&b.ty).max(under(body)),
        TermData::Let(b, v, body) => c(&b.ty).max(c(v)).max(under(body)),
        TermData::Elim(e) => e
            .params
            .iter()
            .chain(&e.cases)
            .map(c)
            .fold(c(&e.motive).max(c(&e.scrutinee)), u32::max),
    }
}

/// Tree node count (1 + children, counted with multiplicity), saturating.
fn size_of(data: &TermData) -> u32 {
    let c = |t: &Term| t.cell().size;
    let sum = |acc: u32, t: &Term| acc.saturating_add(c(t));
    match data {
        TermData::Rel(_)
        | TermData::Sort(_)
        | TermData::Const(_)
        | TermData::Ind(_)
        | TermData::Construct(_, _) => 1,
        TermData::App(h, args) => args.iter().fold(1u32.saturating_add(c(h)), sum),
        TermData::Lambda(b, body) | TermData::Pi(b, body) => {
            1u32.saturating_add(c(&b.ty)).saturating_add(c(body))
        }
        TermData::Let(b, v, body) => 1u32
            .saturating_add(c(&b.ty))
            .saturating_add(c(v))
            .saturating_add(c(body)),
        TermData::Elim(e) => e.params.iter().chain(&e.cases).fold(
            1u32.saturating_add(c(&e.motive))
                .saturating_add(c(&e.scrutinee)),
            sum,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_builds_share_one_allocation() {
        let a = Term::lambda("x", Term::set(), Term::rel(0));
        let b = Term::lambda("x", Term::set(), Term::rel(0));
        assert!(a.same_allocation(&b));
    }

    #[test]
    fn alpha_variants_share_id_but_not_allocation() {
        let a = Term::lambda("x", Term::set(), Term::rel(0));
        let b = Term::lambda("y", Term::set(), Term::rel(0));
        assert!(!a.same_allocation(&b), "names differ, nodes must differ");
        assert_eq!(a.id(), b.id());
        assert!(a.alpha_canonical().same_allocation(b.alpha_canonical()));
    }

    #[test]
    fn skeleton_is_fully_anonymous_and_self_canonical() {
        let t = Term::pi(
            "a",
            Term::set(),
            Term::lambda("b", Term::rel(0), Term::rel(0)),
        );
        let s = t.alpha_canonical();
        assert_eq!(t.id(), s.id());
        assert!(s.alpha_canonical().same_allocation(s));
        match s.data() {
            TermData::Pi(b, _) => assert!(b.name.is_anonymous()),
            _ => panic!("skeleton shape changed"),
        }
    }

    #[test]
    fn distinct_structures_get_distinct_ids() {
        assert_ne!(Term::rel(0).id(), Term::rel(1).id());
        assert_ne!(
            Term::lambda("x", Term::set(), Term::rel(0)).id(),
            Term::lambda("x", Term::prop(), Term::rel(0)).id()
        );
    }

    #[test]
    fn ceil_tracks_free_variables() {
        assert_eq!(Term::rel(3).free_rel_bound(), 4);
        assert_eq!(Term::set().free_rel_bound(), 0);
        // fun (x : Set) => #0 is closed; fun (x : Set) => #1 has one free.
        assert_eq!(
            Term::lambda("x", Term::set(), Term::rel(0)).free_rel_bound(),
            0
        );
        assert_eq!(
            Term::lambda("x", Term::set(), Term::rel(1)).free_rel_bound(),
            1
        );
    }

    #[test]
    fn interner_stats_monotone() {
        let before = interner_stats();
        let _ = Term::const_("intern.stats.probe");
        let _ = Term::const_("intern.stats.probe");
        let after = interner_stats();
        assert!(after.lookups >= before.lookups + 2);
        assert!(after.hits > before.hits);
    }
}
