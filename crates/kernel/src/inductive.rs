//! Inductive families and the synthesis of constructor and eliminator types.
//!
//! A declaration consists of a uniform parameter telescope, an index
//! telescope, a target sort, and a list of constructors. Recursive
//! constructor arguments must be *plain*: their type is exactly the inductive
//! applied to the (uniform) parameters and some index values. This covers
//! every type in the paper (`nat`, `list`, `vector`, `positive`, `N`, `eq`,
//! `Σ`, pairs, records, the REPLICA `Term` language); functional (infinitely
//! branching) recursive arguments are rejected by the positivity check with a
//! clear error.

use crate::error::{KernelError, Result};
use crate::name::{GlobalName, Name};
use crate::subst::lift;
use crate::term::{Binder, ElimData, Term, TermData};

/// A constructor declaration.
///
/// `args` is a telescope interpreted under the family's parameters (so inside
/// `args[k]`, the parameters are `Rel(k + nparams - 1 - i)` for parameter
/// `i`, and earlier arguments are the nearer indices). `result_indices` are
/// interpreted under parameters + all arguments.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CtorDecl {
    /// Globally unique constructor name, e.g. `"Old.cons"`.
    pub name: GlobalName,
    /// Argument telescope (under the family parameters).
    pub args: Vec<Binder>,
    /// Index values of the constructed term (under parameters + arguments).
    pub result_indices: Vec<Term>,
}

/// An inductive family declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InductiveDecl {
    /// The family's name, e.g. `"Old.list"`.
    pub name: GlobalName,
    /// Uniform parameter telescope.
    pub params: Vec<Binder>,
    /// Index telescope (under the parameters).
    pub indices: Vec<Binder>,
    /// The sort of the fully applied family.
    pub sort: crate::universe::Sort,
    /// Constructors in declaration order.
    pub ctors: Vec<CtorDecl>,
}

pub use crate::subst::subst_group;

/// Instantiates a telescope whose binders live under a prefix of
/// `values.len()` binders with the given concrete values.
///
/// Binder `k` of the telescope sees the prefix at indices `k..k+len`, so we
/// substitute at base `k`.
pub fn instantiate_telescope(tele: &[Binder], values: &[Term]) -> Vec<Binder> {
    tele.iter()
        .enumerate()
        .map(|(k, b)| Binder {
            name: b.name.clone(),
            ty: subst_group(&b.ty, k, values),
        })
        .collect()
}

/// The de Bruijn references to a telescope of length `len`, in declaration
/// order, as seen from directly under the telescope: `Rel(len-1) … Rel(0)`.
pub fn telescope_rels(len: usize) -> Vec<Term> {
    (0..len).rev().map(Term::rel).collect()
}

impl InductiveDecl {
    /// Number of uniform parameters.
    pub fn nparams(&self) -> usize {
        self.params.len()
    }

    /// Number of indices.
    pub fn nindices(&self) -> usize {
        self.indices.len()
    }

    /// The type of the family itself: `∀ params indices, sort`.
    pub fn arity(&self) -> Term {
        let mut binders = self.params.clone();
        binders.extend(self.indices.iter().cloned());
        Term::pis(binders, Term::sort(self.sort))
    }

    /// Is constructor argument `arg_ty` (a type in some context) a *plain*
    /// recursive occurrence, i.e. literally `Ind(self) applied to the uniform
    /// parameters and some indices`? Returns the index values if so.
    ///
    /// `param_base` is the de Bruijn index at which the parameter group
    /// starts in `arg_ty`'s context (i.e. the number of constructor argument
    /// binders in scope).
    pub fn as_recursive_arg<'t>(&self, arg_ty: &'t Term, param_base: usize) -> Option<&'t [Term]> {
        let (name, args) = arg_ty.as_ind_app()?;
        if name != &self.name {
            return None;
        }
        let p = self.nparams();
        if args.len() != p + self.nindices() {
            return None;
        }
        // Uniform parameters: args[i] must be Rel(param_base + p - 1 - i).
        for (i, a) in args.iter().take(p).enumerate() {
            match a.data() {
                TermData::Rel(r) if *r == param_base + p - 1 - i => {}
                _ => return None,
            }
        }
        Some(&args[p..])
    }

    /// Which constructor arguments are plain recursive occurrences?
    pub fn recursive_flags(&self, j: usize) -> Vec<bool> {
        let ctor = &self.ctors[j];
        ctor.args
            .iter()
            .enumerate()
            .map(|(k, b)| self.as_recursive_arg(&b.ty, k).is_some())
            .collect()
    }

    /// The (closed) type of constructor `j`:
    /// `∀ params args, Ind params result_indices`.
    pub fn ctor_type(&self, j: usize) -> Result<Term> {
        let ctor = self
            .ctors
            .get(j)
            .ok_or_else(|| KernelError::NoSuchConstructor {
                ind: self.name.clone(),
                index: j,
            })?;
        let p = self.nparams();
        let a = ctor.args.len();
        // Under params ++ args: parameter i is Rel(p + a - 1 - i).
        let param_refs: Vec<Term> = (0..p).map(|i| Term::rel(p + a - 1 - i)).collect();
        let head = Term::app(
            Term::ind(self.name.clone()),
            param_refs
                .into_iter()
                .chain(ctor.result_indices.iter().cloned()),
        );
        let mut binders = self.params.clone();
        binders.extend(ctor.args.iter().cloned());
        Ok(Term::pis(binders, head))
    }

    /// The expected type of eliminator case `j`, given concrete `params` and
    /// a concrete `motive` (both interpreted in the ambient context of the
    /// eliminator node).
    ///
    /// Following Coq's recursor shape, each plain recursive argument is
    /// immediately followed by its induction hypothesis:
    /// `∀ a₁ [IH₁] … aₙ [IHₙ], motive idxs (Construct j params a₁ … aₙ)`.
    pub fn case_type(&self, j: usize, params: &[Term], motive: &Term) -> Result<Term> {
        let ctor = self
            .ctors
            .get(j)
            .ok_or_else(|| KernelError::NoSuchConstructor {
                ind: self.name.clone(),
                index: j,
            })?;
        let nargs = ctor.args.len();

        // Output binders (args and IHs interleaved) built left to right.
        let mut out: Vec<Binder> = Vec::with_capacity(nargs * 2);
        // For each original argument, its *level* in `out` (position from the
        // start). The de Bruijn reference at output depth `d` is
        // `Rel(d - 1 - level)`.
        let mut arg_levels: Vec<usize> = Vec::with_capacity(nargs);

        // Remaps a term from the original context `params ++ args[..k]`
        // (depth k above the ambient context once params are substituted) to
        // the output context of current depth `d`.
        fn remap(t: &Term, k: usize, arg_levels: &[usize], d: usize) -> Term {
            fn go(t: &Term, depth: usize, k: usize, arg_levels: &[usize], d: usize) -> Term {
                match t.data() {
                    TermData::Rel(m) => {
                        if *m < depth {
                            t.clone()
                        } else {
                            let m0 = m - depth; // index in the root context
                            if m0 < k {
                                // Refers to original arg (k - 1 - m0).
                                let level = arg_levels[k - 1 - m0];
                                Term::rel(depth + d - 1 - level)
                            } else {
                                // Ambient context: shift by (d - k).
                                Term::rel(m - k + d)
                            }
                        }
                    }
                    TermData::Sort(_)
                    | TermData::Const(_)
                    | TermData::Ind(_)
                    | TermData::Construct(_, _) => t.clone(),
                    TermData::App(h, args) => Term::app(
                        go(h, depth, k, arg_levels, d),
                        args.iter().map(|a| go(a, depth, k, arg_levels, d)),
                    ),
                    TermData::Lambda(b, body) => Term::new(TermData::Lambda(
                        Binder {
                            name: b.name.clone(),
                            ty: go(&b.ty, depth, k, arg_levels, d),
                        },
                        go(body, depth + 1, k, arg_levels, d),
                    )),
                    TermData::Pi(b, body) => Term::new(TermData::Pi(
                        Binder {
                            name: b.name.clone(),
                            ty: go(&b.ty, depth, k, arg_levels, d),
                        },
                        go(body, depth + 1, k, arg_levels, d),
                    )),
                    TermData::Let(b, v, body) => Term::new(TermData::Let(
                        Binder {
                            name: b.name.clone(),
                            ty: go(&b.ty, depth, k, arg_levels, d),
                        },
                        go(v, depth, k, arg_levels, d),
                        go(body, depth + 1, k, arg_levels, d),
                    )),
                    TermData::Elim(e) => Term::elim(ElimData {
                        ind: e.ind.clone(),
                        params: e
                            .params
                            .iter()
                            .map(|p| go(p, depth, k, arg_levels, d))
                            .collect(),
                        motive: go(&e.motive, depth, k, arg_levels, d),
                        cases: e
                            .cases
                            .iter()
                            .map(|c| go(c, depth, k, arg_levels, d))
                            .collect(),
                        scrutinee: go(&e.scrutinee, depth, k, arg_levels, d),
                    }),
                }
            }
            go(t, 0, k, arg_levels, d)
        }

        for (k, b) in ctor.args.iter().enumerate() {
            // Instantiate parameters in the argument type, then remap it into
            // the output context.
            let ty_inst = subst_group(&b.ty, k, params);
            let d = out.len();
            let ty_out = remap(&ty_inst, k, &arg_levels, d);
            let rec_indices = self.as_recursive_arg(&b.ty, k).map(|idxs| idxs.to_vec());
            out.push(Binder {
                name: b.name.clone(),
                ty: ty_out,
            });
            arg_levels.push(d);
            if let Some(idxs) = rec_indices {
                // IH : motive idxs' arg, in the context *after* pushing arg.
                let d_ih = out.len();
                let idxs_out: Vec<Term> = idxs
                    .iter()
                    .map(|ix| {
                        let ix_inst = subst_group(ix, k, params);
                        remap(&ix_inst, k, &arg_levels, d_ih)
                    })
                    .collect();
                let arg_ref = Term::rel(d_ih - 1 - arg_levels[k]);
                let ih_ty = Term::app(lift(motive, d_ih), idxs_out.into_iter().chain([arg_ref]));
                let ih_name = match b.name.as_str() {
                    Some(s) => Name::named(format!("IH{s}")),
                    None => Name::named("IH"),
                };
                out.push(Binder {
                    name: ih_name,
                    ty: ih_ty,
                });
            }
        }

        // Conclusion: motive result_indices (Construct j params args…), all
        // remapped into the output context.
        let d = out.len();
        let idxs_out: Vec<Term> = ctor
            .result_indices
            .iter()
            .map(|ix| {
                let ix_inst = subst_group(ix, nargs, params);
                remap(&ix_inst, nargs, &arg_levels, d)
            })
            .collect();
        let arg_refs: Vec<Term> = (0..nargs)
            .map(|k| Term::rel(d - 1 - arg_levels[k]))
            .collect();
        let ctor_app = Term::app(
            Term::construct(self.name.clone(), j),
            params.iter().map(|p| lift(p, d)).chain(arg_refs),
        );
        let concl = Term::app(lift(motive, d), idxs_out.into_iter().chain([ctor_app]));
        Ok(Term::pis(out, concl))
    }

    /// ι-reduction: the value of `Elim` applied to constructor `j` with the
    /// given constructor arguments (parameters already stripped).
    ///
    /// `elim` supplies the motive and cases; recursive arguments generate
    /// recursive eliminations.
    pub fn iota_reduce(&self, elim: &ElimData, j: usize, ctor_args: &[Term]) -> Result<Term> {
        let ctor = self
            .ctors
            .get(j)
            .ok_or_else(|| KernelError::NoSuchConstructor {
                ind: self.name.clone(),
                index: j,
            })?;
        if ctor_args.len() != ctor.args.len() {
            return Err(KernelError::IllFormedElim {
                ind: self.name.clone(),
                reason: format!(
                    "constructor {} applied to {} arguments, expected {}",
                    ctor.name,
                    ctor_args.len(),
                    ctor.args.len()
                ),
            });
        }
        let flags = self.recursive_flags(j);
        let mut actual: Vec<Term> = Vec::with_capacity(ctor_args.len() * 2);
        for (k, v) in ctor_args.iter().enumerate() {
            actual.push(v.clone());
            if flags[k] {
                actual.push(Term::elim(ElimData {
                    ind: elim.ind.clone(),
                    params: elim.params.clone(),
                    motive: elim.motive.clone(),
                    cases: elim.cases.clone(),
                    scrutinee: v.clone(),
                }));
            }
        }
        Ok(crate::subst::beta_apply(&elim.cases[j], &actual))
    }

    /// Checks strict positivity (in our restricted form): any occurrence of
    /// the family in a constructor argument type must be a plain recursive
    /// argument; occurrences anywhere else (nested, to the left of an arrow,
    /// in indices of another argument) are rejected.
    pub fn check_positivity(&self) -> Result<()> {
        for (j, ctor) in self.ctors.iter().enumerate() {
            for (k, b) in ctor.args.iter().enumerate() {
                if b.ty.mentions_global(&self.name) && self.as_recursive_arg(&b.ty, k).is_none() {
                    return Err(KernelError::Positivity {
                        ind: self.name.clone(),
                        reason: format!(
                            "constructor #{j} ({}) argument #{k} mentions `{}` \
                             but is not a plain recursive occurrence \
                             (functional/nested recursion is not supported)",
                            ctor.name, self.name
                        ),
                    });
                }
            }
            for ix in &ctor.result_indices {
                if ix.mentions_global(&self.name) {
                    return Err(KernelError::Positivity {
                        ind: self.name.clone(),
                        reason: format!(
                            "constructor #{j} ({}) has a result index mentioning `{}`",
                            ctor.name, self.name
                        ),
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::Sort;

    /// `nat` with constructors `O` and `S : nat → nat`.
    fn nat_decl() -> InductiveDecl {
        InductiveDecl {
            name: "nat".into(),
            params: vec![],
            indices: vec![],
            sort: Sort::Set,
            ctors: vec![
                CtorDecl {
                    name: "O".into(),
                    args: vec![],
                    result_indices: vec![],
                },
                CtorDecl {
                    name: "S".into(),
                    args: vec![Binder::new("n", Term::ind("nat"))],
                    result_indices: vec![],
                },
            ],
        }
    }

    /// `list (T : Type0)` with `nil` and `cons : T → list T → list T`.
    fn list_decl() -> InductiveDecl {
        InductiveDecl {
            name: "list".into(),
            params: vec![Binder::new("T", Term::type_(0))],
            indices: vec![],
            sort: Sort::Type(0),
            ctors: vec![
                CtorDecl {
                    name: "nil".into(),
                    args: vec![],
                    result_indices: vec![],
                },
                CtorDecl {
                    name: "cons".into(),
                    args: vec![
                        Binder::new("t", Term::rel(0)),
                        Binder::new("l", Term::app(Term::ind("list"), [Term::rel(1)])),
                    ],
                    result_indices: vec![],
                },
            ],
        }
    }

    #[test]
    fn nat_ctor_types() {
        let nat = nat_decl();
        assert_eq!(nat.ctor_type(0).unwrap(), Term::ind("nat"));
        assert_eq!(
            nat.ctor_type(1).unwrap(),
            Term::pi("n", Term::ind("nat"), Term::ind("nat"))
        );
    }

    #[test]
    fn list_ctor_types() {
        let list = list_decl();
        // nil : ∀ (T : Type0), list T
        assert_eq!(
            list.ctor_type(0).unwrap(),
            Term::pi(
                "T",
                Term::type_(0),
                Term::app(Term::ind("list"), [Term::rel(0)])
            )
        );
        // cons : ∀ (T : Type0) (t : T) (l : list T), list T
        assert_eq!(
            list.ctor_type(1).unwrap(),
            Term::pi(
                "T",
                Term::type_(0),
                Term::pi(
                    "t",
                    Term::rel(0),
                    Term::pi(
                        "l",
                        Term::app(Term::ind("list"), [Term::rel(1)]),
                        Term::app(Term::ind("list"), [Term::rel(2)])
                    )
                )
            )
        );
    }

    #[test]
    fn nat_case_types() {
        let nat = nat_decl();
        // Motive `P` as an opaque constant for the test.
        let motive = Term::const_("P");
        // Case for O: P O.
        assert_eq!(
            nat.case_type(0, &[], &motive).unwrap(),
            Term::app(motive.clone(), [Term::construct("nat", 0)])
        );
        // Case for S: ∀ (n : nat), P n → P (S n).
        let expected = Term::pi(
            "n",
            Term::ind("nat"),
            Term::pi(
                "IHn",
                Term::app(motive.clone(), [Term::rel(0)]),
                Term::app(
                    motive.clone(),
                    [Term::app(Term::construct("nat", 1), [Term::rel(1)])],
                ),
            ),
        );
        assert_eq!(nat.case_type(1, &[], &motive).unwrap(), expected);
    }

    #[test]
    fn list_case_type_with_params() {
        let list = list_decl();
        let t0 = Term::const_("A");
        let motive = Term::const_("P");
        // cons case: ∀ (t : A) (l : list A), P l → P (cons A t l)
        let expected = Term::pi(
            "t",
            t0.clone(),
            Term::pi(
                "l",
                Term::app(Term::ind("list"), [t0.clone()]),
                Term::pi(
                    "IHl",
                    Term::app(motive.clone(), [Term::rel(0)]),
                    Term::app(
                        motive.clone(),
                        [Term::app(
                            Term::construct("list", 1),
                            [t0.clone(), Term::rel(2), Term::rel(1)],
                        )],
                    ),
                ),
            ),
        );
        assert_eq!(list.case_type(1, &[t0], &motive).unwrap(), expected);
    }

    #[test]
    fn iota_reduce_successor() {
        let nat = nat_decl();
        // Elim(S x, P){pO, fun n IH => f n IH}
        let case_s = Term::lambda(
            "n",
            Term::ind("nat"),
            Term::lambda(
                "IH",
                Term::app(Term::const_("P"), [Term::rel(0)]),
                Term::app(Term::const_("f"), [Term::rel(1), Term::rel(0)]),
            ),
        );
        let elim = ElimData {
            ind: "nat".into(),
            params: vec![],
            motive: Term::const_("P"),
            cases: vec![Term::const_("pO"), case_s],
            scrutinee: Term::app(Term::construct("nat", 1), [Term::const_("x")]),
        };
        let reduced = nat.iota_reduce(&elim, 1, &[Term::const_("x")]).unwrap();
        // f x (Elim(x, P){…})
        let inner = Term::elim(ElimData {
            scrutinee: Term::const_("x"),
            ..elim.clone()
        });
        assert_eq!(
            reduced,
            Term::app(Term::const_("f"), [Term::const_("x"), inner])
        );
    }

    #[test]
    fn positivity_rejects_negative_occurrence() {
        // bad := Ind bad { mk : (bad → bool) → bad }
        let bad = InductiveDecl {
            name: "bad".into(),
            params: vec![],
            indices: vec![],
            sort: Sort::Set,
            ctors: vec![CtorDecl {
                name: "mk".into(),
                args: vec![Binder::new(
                    "f",
                    Term::arrow(Term::ind("bad"), Term::ind("bool")),
                )],
                result_indices: vec![],
            }],
        };
        assert!(matches!(
            bad.check_positivity(),
            Err(KernelError::Positivity { .. })
        ));
    }

    #[test]
    fn positivity_accepts_list() {
        assert!(list_decl().check_positivity().is_ok());
        assert!(nat_decl().check_positivity().is_ok());
    }
}
