//! Kernel errors.

use std::fmt;

use crate::name::GlobalName;
use crate::term::Term;

/// Errors produced by the kernel (type checking, environment management,
/// reduction preconditions).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KernelError {
    /// A de Bruijn index escaped the typing context.
    UnboundRel { index: usize, depth: usize },
    /// A global name was not found in the environment.
    UnknownGlobal(GlobalName),
    /// A global name was declared twice.
    Redeclaration(GlobalName),
    /// A constructor index was out of range for its inductive.
    NoSuchConstructor { ind: GlobalName, index: usize },
    /// A term was used as a function but does not have a product type.
    NotAFunction { term: Term, ty: Term },
    /// A term's type was expected to be a sort but is not.
    NotASort { term: Term, ty: Term },
    /// A term was expected to be an application of an inductive family.
    NotAnInductive { term: Term, ty: Term },
    /// The inferred type did not match the expected type.
    TypeMismatch {
        term: Term,
        expected: Term,
        found: Term,
    },
    /// An eliminator node was malformed (wrong parameter or case count,
    /// motive of the wrong shape, etc.).
    IllFormedElim { ind: GlobalName, reason: String },
    /// An inductive declaration failed the (strict) positivity check.
    Positivity { ind: GlobalName, reason: String },
    /// An inductive declaration was otherwise malformed.
    IllFormedInductive { ind: GlobalName, reason: String },
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::UnboundRel { index, depth } => {
                write!(f, "unbound variable #{index} in context of depth {depth}")
            }
            KernelError::UnknownGlobal(n) => write!(f, "unknown global `{n}`"),
            KernelError::Redeclaration(n) => write!(f, "global `{n}` is already declared"),
            KernelError::NoSuchConstructor { ind, index } => {
                write!(f, "inductive `{ind}` has no constructor #{index}")
            }
            KernelError::NotAFunction { term, ty } => {
                write!(f, "term `{term}` of type `{ty}` is not a function")
            }
            KernelError::NotASort { term, ty } => {
                write!(f, "term `{term}` has type `{ty}`, which is not a sort")
            }
            KernelError::NotAnInductive { term, ty } => {
                write!(
                    f,
                    "term `{term}` has type `{ty}`, which is not an inductive family"
                )
            }
            KernelError::TypeMismatch {
                term,
                expected,
                found,
            } => write!(
                f,
                "type mismatch for `{term}`: expected `{expected}`, found `{found}`"
            ),
            KernelError::IllFormedElim { ind, reason } => {
                write!(f, "ill-formed eliminator over `{ind}`: {reason}")
            }
            KernelError::Positivity { ind, reason } => {
                write!(f, "inductive `{ind}` violates strict positivity: {reason}")
            }
            KernelError::IllFormedInductive { ind, reason } => {
                write!(f, "ill-formed inductive `{ind}`: {reason}")
            }
        }
    }
}

impl std::error::Error for KernelError {}

/// The kernel's result type.
pub type Result<T> = std::result::Result<T, KernelError>;
