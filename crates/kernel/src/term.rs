//! The term language of CIC_ω (paper Fig. 7).
//!
//! Terms are, from left to right in the paper's grammar: variables (de Bruijn
//! [`Term::rel`]), sorts, dependent products, functions, application,
//! inductive types, inductive constructors, and primitive eliminators. We add
//! `let` bindings (needed by the decompiler, paper §5.2) and references to
//! global constants.
//!
//! Representation choices:
//!
//! * Terms are immutable, shared via [`TermRc`] (an [`std::sync::Arc`]),
//!   and **hash-consed** in the global arena of [`crate::intern`]: one
//!   canonical allocation per payload, so structural equality collapses to
//!   an integer ([`TermId`]) compare and per-node facts (structural hash,
//!   free-variable ceiling, size) are cached at intern time. `clone` is
//!   O(1) and terms are `Send + Sync`, so the parallel module repair
//!   scheduler can move cloned environments onto worker threads.
//! * Applications are kept in *spine form* (`App(head, args)` where the head
//!   is never itself an application and `args` is non-empty). The unification
//!   heuristics of the repair engine (paper §4.2.1) pattern-match on spines.
//! * Binder names are hints: equality and hashing ignore them, so structural
//!   equality is alpha-equivalence.

use std::fmt;
use std::hash::{Hash, Hasher};

use crate::intern::{self, TermCell, TermId};
use crate::name::{GlobalName, Name};
use crate::universe::Sort;

/// The shared pointer behind [`Term`] (and interned names).
///
/// This is the single point where the kernel commits to atomic reference
/// counting: `Arc` makes `Term`, `Name`, and `GlobalName` `Send + Sync`,
/// which is what lets the module-repair wavefront scheduler
/// (`pumpkin-core`'s `schedule` module) hand cloned `Env` snapshots to
/// worker threads. The ptr_eq and cached-structural-hash fast paths are
/// unaffected — only the refcount bumps become atomic.
pub type TermRc<T> = std::sync::Arc<T>;

/// A binder: a name hint together with the bound variable's type.
#[derive(Clone, Debug)]
pub struct Binder {
    /// Pretty-printing hint; ignored by equality.
    pub name: Name,
    /// The type of the bound variable.
    pub ty: Term,
}

impl Binder {
    /// Creates a binder with the given hint and type.
    pub fn new(name: impl Into<Name>, ty: Term) -> Self {
        Binder {
            name: name.into(),
            ty,
        }
    }

    /// Creates an anonymous binder.
    pub fn anon(ty: Term) -> Self {
        Binder {
            name: Name::Anonymous,
            ty,
        }
    }
}

impl PartialEq for Binder {
    fn eq(&self, other: &Self) -> bool {
        self.ty == other.ty
    }
}
impl Eq for Binder {}
impl Hash for Binder {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.ty.hash(state);
    }
}

/// A primitive eliminator node: `Elim(scrutinee, motive) {cases}` over a
/// named inductive family applied to `params`.
///
/// The motive binds the family's indices and then the scrutinee:
/// `motive = fun (i₁ : I₁) … (iₖ : Iₖ) (x : Ind params i₁ … iₖ) => T`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ElimData {
    /// The inductive family being eliminated.
    pub ind: GlobalName,
    /// The family's (uniform) parameters, fully instantiated.
    pub params: Vec<Term>,
    /// The motive (see type-level comment).
    pub motive: Term,
    /// One case per constructor, in declaration order.
    pub cases: Vec<Term>,
    /// The term being eliminated.
    pub scrutinee: Term,
}

/// The payload of a [`Term`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum TermData {
    /// Bound variable as a de Bruijn index; `Rel(0)` is the innermost binder.
    Rel(usize),
    /// A sort: `Prop`, `Set`, or `Type(i)`.
    Sort(Sort),
    /// A reference to a global definition or axiom.
    Const(GlobalName),
    /// A reference to an inductive family (unapplied).
    Ind(GlobalName),
    /// `Construct(ind, j)`: the `j`-th constructor of `ind` (0-based),
    /// unapplied. A fully applied constructor takes the family's parameters
    /// first and then its own arguments.
    Construct(GlobalName, usize),
    /// Application in spine form. Invariants: the head is not an `App` and
    /// the argument list is non-empty.
    App(Term, Vec<Term>),
    /// `fun (x : ty) => body`.
    Lambda(Binder, Term),
    /// `∀ (x : ty), body`.
    Pi(Binder, Term),
    /// `let x : ty := val in body`.
    Let(Binder, Term, Term),
    /// Primitive eliminator (paper Fig. 7 `Elim(t, P){f…}`).
    Elim(ElimData),
}

/// A term of CIC_ω. Cheap to clone (reference counted), and **globally
/// hash-consed**: every term is allocated through the arena in
/// [`crate::intern`], so structurally identical payloads (including binder
/// names) share one allocation process-wide.
///
/// Equality is alpha-equivalence, and it is an *integer compare*: each node
/// caches the [`TermId`] of its alpha-canonical skeleton, and two terms are
/// equal iff their ids are (pointer identity is the short-circuit for the
/// name-identical case). `Hash` writes the cached alpha-invariant structural
/// hash, so `Term` keys cost O(1) in hash maps — and the kernel's memo
/// tables (see [`crate::env::Env`]) key on the even cheaper `TermId`.
#[derive(Clone)]
pub struct Term(pub(crate) TermRc<TermCell>);

// The parallel repair scheduler relies on terms crossing thread boundaries;
// keep that invariant machine-checked here rather than discovered at a
// distant spawn site.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Term>();
    assert_send_sync::<TermCell>();
};

impl PartialEq for Term {
    fn eq(&self, other: &Self) -> bool {
        TermRc::ptr_eq(&self.0, &other.0) || self.id() == other.id()
    }
}
impl Eq for Term {}
impl Hash for Term {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.0.hash);
    }
}

impl Term {
    /// Interns raw term data into the global arena. Prefer the smart
    /// constructors, which maintain the spine invariant for applications.
    pub fn new(data: TermData) -> Self {
        intern::intern(data)
    }

    /// The interned cell (crate-internal: the interner and the views below
    /// read the cached per-node facts through this).
    pub(crate) fn cell(&self) -> &TermCell {
        &self.0
    }

    /// The underlying data.
    pub fn data(&self) -> &TermData {
        &self.0.data
    }

    /// The alpha-canonical identity: equal iff the terms are structurally
    /// equal (alpha-equivalent). An O(1) integer — this is what the kernel's
    /// memo tables key on.
    pub fn id(&self) -> TermId {
        match &self.0.alpha {
            None => TermId(self.0.slot),
            Some(a) => TermId(a.0.slot),
        }
    }

    /// The alpha-canonical skeleton: the same structure with every binder
    /// name erased. Self for terms with no named binders.
    pub fn alpha_canonical(&self) -> &Term {
        self.0.alpha.as_ref().unwrap_or(self)
    }

    /// The precomputed structural hash (alpha-invariant, like equality).
    pub fn structural_hash(&self) -> u64 {
        self.0.hash
    }

    /// The least `n` such that every free de Bruijn variable is `< n`
    /// (`0` means closed). Cached at intern time; `lift`/`subst` use it to
    /// skip closed subterms in O(1).
    pub fn free_rel_bound(&self) -> usize {
        self.0.ceil as usize
    }

    /// Do `self` and `other` share the same allocation? With the global
    /// arena this holds for *all* name-identical structurally equal terms,
    /// however they were built; alpha-variants with different binder names
    /// are distinct nodes (compare [`Term::id`] instead).
    pub fn same_allocation(&self, other: &Term) -> bool {
        TermRc::ptr_eq(&self.0, &other.0)
    }

    /// The allocation's own slot: a process-local integer identifying this
    /// exact node *including binder names* (unlike the alpha-invariant
    /// [`Term::id`]). Hash-consing makes it a perfect dedup key for
    /// shared-subterm encodings: name-identical structurally equal terms
    /// always share a slot.
    pub fn alloc_id(&self) -> u32 {
        self.0.slot
    }

    // ------------------------------------------------------------------
    // Smart constructors
    // ------------------------------------------------------------------

    /// De Bruijn variable; `rel(0)` is the innermost binder.
    pub fn rel(i: usize) -> Self {
        Term::new(TermData::Rel(i))
    }

    /// A sort literal.
    pub fn sort(s: Sort) -> Self {
        Term::new(TermData::Sort(s))
    }

    /// `Prop`.
    pub fn prop() -> Self {
        Term::sort(Sort::Prop)
    }

    /// `Set`.
    pub fn set() -> Self {
        Term::sort(Sort::Set)
    }

    /// `Type(i)`.
    pub fn type_(i: u32) -> Self {
        Term::sort(Sort::Type(i))
    }

    /// Reference to a global constant.
    pub fn const_(name: impl Into<GlobalName>) -> Self {
        Term::new(TermData::Const(name.into()))
    }

    /// Reference to an inductive family.
    pub fn ind(name: impl Into<GlobalName>) -> Self {
        Term::new(TermData::Ind(name.into()))
    }

    /// Reference to constructor `j` of inductive `ind`.
    pub fn construct(ind: impl Into<GlobalName>, j: usize) -> Self {
        Term::new(TermData::Construct(ind.into(), j))
    }

    /// Application, flattening nested spines. `app(f, [])` is `f`.
    pub fn app(head: Term, args: impl IntoIterator<Item = Term>) -> Self {
        let mut new_args: Vec<Term> = args.into_iter().collect();
        if new_args.is_empty() {
            return head;
        }
        match head.data() {
            TermData::App(h, prev) => {
                let mut all = prev.clone();
                all.append(&mut new_args);
                Term::new(TermData::App(h.clone(), all))
            }
            _ => Term::new(TermData::App(head, new_args)),
        }
    }

    /// Application to a single argument.
    pub fn app1(head: Term, arg: Term) -> Self {
        Term::app(head, [arg])
    }

    /// `fun (x : ty) => body`.
    pub fn lambda(name: impl Into<Name>, ty: Term, body: Term) -> Self {
        Term::new(TermData::Lambda(Binder::new(name, ty), body))
    }

    /// `∀ (x : ty), body`.
    pub fn pi(name: impl Into<Name>, ty: Term, body: Term) -> Self {
        Term::new(TermData::Pi(Binder::new(name, ty), body))
    }

    /// Non-dependent function type `a → b` (the codomain is lifted by the
    /// caller; here `b` must already make sense under one extra binder, so we
    /// shift it).
    pub fn arrow(a: Term, b: Term) -> Self {
        Term::pi(Name::Anonymous, a, crate::subst::lift(&b, 1))
    }

    /// `let x : ty := val in body`.
    pub fn let_(name: impl Into<Name>, ty: Term, val: Term, body: Term) -> Self {
        Term::new(TermData::Let(Binder::new(name, ty), val, body))
    }

    /// Primitive eliminator node.
    pub fn elim(data: ElimData) -> Self {
        Term::new(TermData::Elim(data))
    }

    // ------------------------------------------------------------------
    // Views
    // ------------------------------------------------------------------

    /// Splits a term into its application head and arguments. For a
    /// non-application this is `(self, [])`.
    pub fn unfold_app(&self) -> (&Term, &[Term]) {
        match self.data() {
            TermData::App(h, args) => (h, args),
            _ => (self, &[]),
        }
    }

    /// The application head (the term itself when not an application).
    pub fn head(&self) -> &Term {
        self.unfold_app().0
    }

    /// The application arguments (empty when not an application).
    pub fn args(&self) -> &[Term] {
        self.unfold_app().1
    }

    /// Is this a sort literal?
    pub fn as_sort(&self) -> Option<Sort> {
        match self.data() {
            TermData::Sort(s) => Some(*s),
            _ => None,
        }
    }

    /// If the head is `Ind(name)`, returns the name and the arguments.
    pub fn as_ind_app(&self) -> Option<(&GlobalName, &[Term])> {
        let (head, args) = self.unfold_app();
        match head.data() {
            TermData::Ind(name) => Some((name, args)),
            _ => None,
        }
    }

    /// If the head is `Construct(ind, j)`, returns `(ind, j, args)`.
    pub fn as_construct_app(&self) -> Option<(&GlobalName, usize, &[Term])> {
        let (head, args) = self.unfold_app();
        match head.data() {
            TermData::Construct(ind, j) => Some((ind, *j, args)),
            _ => None,
        }
    }

    /// If the head is `Const(name)`, returns `(name, args)`.
    pub fn as_const_app(&self) -> Option<(&GlobalName, &[Term])> {
        let (head, args) = self.unfold_app();
        match head.data() {
            TermData::Const(name) => Some((name, args)),
            _ => None,
        }
    }

    /// Strips leading lambdas, returning the binders and the body.
    pub fn strip_lambdas(&self) -> (Vec<Binder>, Term) {
        let mut binders = Vec::new();
        let mut t = self.clone();
        loop {
            match t.data() {
                TermData::Lambda(b, body) => {
                    binders.push(b.clone());
                    t = body.clone();
                }
                _ => return (binders, t),
            }
        }
    }

    /// Strips leading pis, returning the binders and the final codomain.
    pub fn strip_pis(&self) -> (Vec<Binder>, Term) {
        let mut binders = Vec::new();
        let mut t = self.clone();
        loop {
            match t.data() {
                TermData::Pi(b, body) => {
                    binders.push(b.clone());
                    t = body.clone();
                }
                _ => return (binders, t),
            }
        }
    }

    /// Rebuilds `fun binders => body`.
    pub fn lambdas(binders: impl IntoIterator<Item = Binder>, body: Term) -> Term {
        let bs: Vec<Binder> = binders.into_iter().collect();
        bs.into_iter()
            .rev()
            .fold(body, |acc, b| Term::new(TermData::Lambda(b, acc)))
    }

    /// Rebuilds `∀ binders, body`.
    pub fn pis(binders: impl IntoIterator<Item = Binder>, body: Term) -> Term {
        let bs: Vec<Binder> = binders.into_iter().collect();
        bs.into_iter()
            .rev()
            .fold(body, |acc, b| Term::new(TermData::Pi(b, acc)))
    }

    /// Does `Rel(k)` occur free in this term (where `k` counts from the
    /// term's own root)?
    pub fn has_rel(&self, k: usize) -> bool {
        fn go(t: &Term, k: usize) -> bool {
            // Cached free-variable ceiling: no Rel ≥ k occurs at all.
            if k >= t.free_rel_bound() {
                return false;
            }
            match t.data() {
                TermData::Rel(i) => *i == k,
                TermData::Sort(_)
                | TermData::Const(_)
                | TermData::Ind(_)
                | TermData::Construct(_, _) => false,
                TermData::App(h, args) => go(h, k) || args.iter().any(|a| go(a, k)),
                TermData::Lambda(b, body) | TermData::Pi(b, body) => {
                    go(&b.ty, k) || go(body, k + 1)
                }
                TermData::Let(b, v, body) => go(&b.ty, k) || go(v, k) || go(body, k + 1),
                TermData::Elim(e) => {
                    e.params.iter().any(|p| go(p, k))
                        || go(&e.motive, k)
                        || e.cases.iter().any(|c| go(c, k))
                        || go(&e.scrutinee, k)
                }
            }
        }
        go(self, k)
    }

    /// Is the term closed (no free de Bruijn variables)? O(1): answered
    /// from the free-variable ceiling cached at intern time.
    pub fn is_closed(&self) -> bool {
        self.0.ceil == 0
    }

    /// Collects the global constants referenced by this term.
    pub fn constants(&self) -> Vec<GlobalName> {
        let mut out = Vec::new();
        self.visit(&mut |t| {
            if let TermData::Const(name) = t.data() {
                if !out.contains(name) {
                    out.push(name.clone());
                }
            }
        });
        out
    }

    /// Does this term mention the given global (as a constant, inductive, or
    /// constructor)?
    pub fn mentions_global(&self, name: &GlobalName) -> bool {
        let mut found = false;
        self.visit(&mut |t| match t.data() {
            TermData::Const(n) | TermData::Ind(n) | TermData::Construct(n, _) if n == name => {
                found = true;
            }
            TermData::Elim(e) if &e.ind == name => found = true,
            _ => {}
        });
        found
    }

    /// Visits every subterm (including the term itself), pre-order.
    pub fn visit(&self, f: &mut impl FnMut(&Term)) {
        f(self);
        match self.data() {
            TermData::Rel(_)
            | TermData::Sort(_)
            | TermData::Const(_)
            | TermData::Ind(_)
            | TermData::Construct(_, _) => {}
            TermData::App(h, args) => {
                h.visit(f);
                for a in args {
                    a.visit(f);
                }
            }
            TermData::Lambda(b, body) | TermData::Pi(b, body) => {
                b.ty.visit(f);
                body.visit(f);
            }
            TermData::Let(b, v, body) => {
                b.ty.visit(f);
                v.visit(f);
                body.visit(f);
            }
            TermData::Elim(e) => {
                for p in &e.params {
                    p.visit(f);
                }
                e.motive.visit(f);
                for c in &e.cases {
                    c.visit(f);
                }
                e.scrutinee.visit(f);
            }
        }
    }

    /// The number of nodes in the term, counted as a tree (shared subterms
    /// count with multiplicity; saturates at `u32::MAX`). O(1): cached at
    /// intern time.
    pub fn size(&self) -> usize {
        self.0.size as usize
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// A raw, de Bruijn-level display used in kernel error messages. The `lang`
/// crate provides a named pretty-printer for user-facing output.
impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn go(t: &Term, f: &mut fmt::Formatter<'_>, atom: bool) -> fmt::Result {
            match t.data() {
                TermData::Rel(i) => write!(f, "#{i}"),
                TermData::Sort(s) => write!(f, "{s}"),
                TermData::Const(n) => write!(f, "{n}"),
                TermData::Ind(n) => write!(f, "{n}"),
                TermData::Construct(n, j) => write!(f, "{n}!{j}"),
                TermData::App(h, args) => {
                    if atom {
                        write!(f, "(")?;
                    }
                    go(h, f, true)?;
                    for a in args {
                        write!(f, " ")?;
                        go(a, f, true)?;
                    }
                    if atom {
                        write!(f, ")")?;
                    }
                    Ok(())
                }
                TermData::Lambda(b, body) => {
                    if atom {
                        write!(f, "(")?;
                    }
                    write!(f, "fun ({} : ", b.name)?;
                    go(&b.ty, f, false)?;
                    write!(f, ") => ")?;
                    go(body, f, false)?;
                    if atom {
                        write!(f, ")")?;
                    }
                    Ok(())
                }
                TermData::Pi(b, body) => {
                    if atom {
                        write!(f, "(")?;
                    }
                    write!(f, "forall ({} : ", b.name)?;
                    go(&b.ty, f, false)?;
                    write!(f, "), ")?;
                    go(body, f, false)?;
                    if atom {
                        write!(f, ")")?;
                    }
                    Ok(())
                }
                TermData::Let(b, v, body) => {
                    if atom {
                        write!(f, "(")?;
                    }
                    write!(f, "let {} : ", b.name)?;
                    go(&b.ty, f, false)?;
                    write!(f, " := ")?;
                    go(v, f, false)?;
                    write!(f, " in ")?;
                    go(body, f, false)?;
                    if atom {
                        write!(f, ")")?;
                    }
                    Ok(())
                }
                TermData::Elim(e) => {
                    write!(f, "Elim[{}](", e.ind)?;
                    go(&e.scrutinee, f, false)?;
                    write!(f, "; ")?;
                    go(&e.motive, f, false)?;
                    write!(f, "){{")?;
                    for (i, c) in e.cases.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        go(c, f, false)?;
                    }
                    write!(f, "}}")
                }
            }
        }
        go(self, f, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spine_flattening() {
        let f = Term::const_("f");
        let t = Term::app1(Term::app1(f.clone(), Term::rel(0)), Term::rel(1));
        match t.data() {
            TermData::App(h, args) => {
                assert_eq!(h, &f);
                assert_eq!(args.len(), 2);
            }
            _ => panic!("expected spine"),
        }
        assert_eq!(Term::app(f.clone(), []), f);
    }

    #[test]
    fn alpha_equivalence_via_names() {
        let a = Term::lambda("x", Term::set(), Term::rel(0));
        let b = Term::lambda("y", Term::set(), Term::rel(0));
        assert_eq!(a, b);
        let c = Term::lambda("x", Term::prop(), Term::rel(0));
        assert_ne!(a, c);
    }

    #[test]
    fn closedness() {
        assert!(Term::lambda("x", Term::set(), Term::rel(0)).is_closed());
        assert!(!Term::rel(0).is_closed());
        assert!(!Term::lambda("x", Term::set(), Term::rel(1)).is_closed());
    }

    #[test]
    fn has_rel_scoping() {
        // fun (x : Set) => #1  — mentions the variable one binder out.
        let t = Term::lambda("x", Term::set(), Term::rel(1));
        assert!(t.has_rel(0));
        assert!(!t.has_rel(1));
    }

    #[test]
    fn strip_and_rebuild() {
        let t = Term::pi("a", Term::set(), Term::pi("b", Term::rel(0), Term::rel(1)));
        let (bs, body) = t.strip_pis();
        assert_eq!(bs.len(), 2);
        assert_eq!(Term::pis(bs, body), t);
    }

    #[test]
    fn mentions_global_finds_elim_ind() {
        let e = Term::elim(ElimData {
            ind: "nat".into(),
            params: vec![],
            motive: Term::lambda("n", Term::ind("nat"), Term::set()),
            cases: vec![],
            scrutinee: Term::rel(0),
        });
        assert!(e.mentions_global(&"nat".into()));
        assert!(!e.mentions_global(&"bool".into()));
    }

    #[test]
    fn size_counts_nodes() {
        let t = Term::app(Term::const_("f"), [Term::rel(0), Term::rel(1)]);
        assert_eq!(t.size(), 4);
    }
}
