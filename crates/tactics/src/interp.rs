//! The tactic interpreter: elaborates a Qtac script against a goal back
//! into a proof term and kernel-checks it.
//!
//! This plays the role Coq plays for the paper's decompiler: a decompiled
//! script is validated by running it and type checking the result against
//! the original theorem (our tests do this for every case-study proof).

use pumpkin_kernel::env::Env;
use pumpkin_kernel::reduce::whnf;
use pumpkin_kernel::subst::beta_apply;
use pumpkin_kernel::term::{Term, TermData};
use pumpkin_kernel::typecheck::{check, infer, Ctx};

use crate::error::{Result, TacticError};
use crate::qtac::{Dir, Script, Tactic};

/// Elaborates `script` into a closed proof of `goal` and checks it.
///
/// # Errors
///
/// Fails if a tactic does not apply to its goal, the script ends early or
/// runs long, or the resulting term does not check against `goal`.
pub fn prove(env: &Env, goal: &Term, script: &Script) -> Result<Term> {
    let mut ctx = Ctx::new();
    let term = elaborate(env, &mut ctx, goal, &script.0)?;
    check(env, &mut Ctx::new(), &term, goal).map_err(TacticError::Kernel)?;
    Ok(term)
}

fn eq_components(env: &Env, goal: &Term) -> Result<(Term, Term, Term)> {
    let w = whnf(env, goal);
    match w.as_ind_app() {
        Some((name, args)) if name.as_str() == "eq" && args.len() == 3 => {
            Ok((args[0].clone(), args[1].clone(), args[2].clone()))
        }
        _ => Err(TacticError::GoalShape {
            expected: "an equation".into(),
            goal: w,
        }),
    }
}

fn elaborate(env: &Env, ctx: &mut Ctx, goal: &Term, tacs: &[Tactic]) -> Result<Term> {
    let Some((tac, rest)) = tacs.split_first() else {
        return Err(TacticError::Unfinished(goal.clone()));
    };
    match tac {
        Tactic::Intro(n) => intro(env, ctx, goal, std::slice::from_ref(n), rest),
        Tactic::Intros(ns) => intro(env, ctx, goal, ns, rest),
        Tactic::Simpl => elaborate(env, ctx, goal, rest),
        Tactic::Symmetry => {
            let (a, x, y) = eq_components(env, goal)?;
            let sub = Term::app(Term::ind("eq"), [a.clone(), y.clone(), x.clone()]);
            let p = elaborate(env, ctx, &sub, rest)?;
            Ok(Term::app(Term::const_("eq_sym"), [a, y, x, p]))
        }
        Tactic::Reflexivity => {
            let (a, x, y) = eq_components(env, goal)?;
            if !pumpkin_kernel::conv::conv(env, &x, &y) {
                return Err(TacticError::GoalShape {
                    expected: "a reflexive equation".into(),
                    goal: goal.clone(),
                });
            }
            expect_done(rest)?;
            Ok(Term::app(Term::construct("eq", 0), [a, x]))
        }
        Tactic::Rewrite {
            dir,
            ty,
            x,
            motive,
            y,
            eq,
        } => {
            let sub = beta_apply(motive, std::slice::from_ref(x));
            let p = elaborate(env, ctx, &sub, rest)?;
            let head = match dir {
                Dir::Fwd => "eq_ind_r",
                Dir::Bwd => "eq_rect",
            };
            Ok(Term::app(
                Term::const_(head),
                [
                    ty.clone(),
                    x.clone(),
                    motive.clone(),
                    p,
                    y.clone(),
                    eq.clone(),
                ],
            ))
        }
        Tactic::Induction {
            ind,
            params,
            motive,
            scrut,
            cases,
        } => {
            expect_done(rest)?;
            let decl = env.inductive(ind).map_err(TacticError::Kernel)?.clone();
            if cases.len() != decl.ctors.len() {
                return Err(TacticError::GoalShape {
                    expected: format!("{} induction cases", decl.ctors.len()),
                    goal: goal.clone(),
                });
            }
            let mut case_terms = Vec::with_capacity(cases.len());
            for (j, case) in cases.iter().enumerate() {
                let expected = decl
                    .case_type(j, params, motive)
                    .map_err(TacticError::Kernel)?;
                case_terms.push(elaborate(env, ctx, &expected, &case.0)?);
            }
            Ok(Term::elim(pumpkin_kernel::term::ElimData {
                ind: ind.clone(),
                params: params.clone(),
                motive: motive.clone(),
                cases: case_terms,
                scrutinee: scrut.clone(),
            }))
        }
        Tactic::CustomInduction {
            elim,
            pre,
            motive,
            cases,
            scrut,
        } => {
            expect_done(rest)?;
            // Elaborate cases left to right against the eliminator's
            // successive Pi domains.
            let mut partial = Term::app(
                Term::const_(elim.clone()),
                pre.iter().cloned().chain([motive.clone()]),
            );
            let mut partial_ty = infer(env, ctx, &partial).map_err(TacticError::Kernel)?;
            for case in cases {
                let w = whnf(env, &partial_ty);
                let TermData::Pi(b, cod) = w.data() else {
                    return Err(TacticError::GoalShape {
                        expected: "an eliminator case".into(),
                        goal: w,
                    });
                };
                let p = elaborate(env, ctx, &b.ty, &case.0)?;
                partial_ty = pumpkin_kernel::subst::subst1(cod, &p);
                partial = Term::app(partial, [p]);
            }
            Ok(Term::app(partial, [scrut.clone()]))
        }
        Tactic::Apply { f, sub } => {
            expect_done(rest)?;
            let fty = infer(env, ctx, f).map_err(TacticError::Kernel)?;
            let w = whnf(env, &fty);
            let TermData::Pi(b, _) = w.data() else {
                return Err(TacticError::GoalShape {
                    expected: "a function to apply".into(),
                    goal: w,
                });
            };
            let p = elaborate(env, ctx, &b.ty, &sub.0)?;
            Ok(Term::app(f.clone(), [p]))
        }
        Tactic::Split(sa, sb) => {
            expect_done(rest)?;
            let w = whnf(env, goal);
            match w.as_ind_app() {
                Some((name, args)) if name.as_str() == "and" && args.len() == 2 => {
                    let (a, b) = (args[0].clone(), args[1].clone());
                    let pa = elaborate(env, ctx, &a, &sa.0)?;
                    let pb = elaborate(env, ctx, &b, &sb.0)?;
                    Ok(Term::app(Term::construct("and", 0), [a, b, pa, pb]))
                }
                _ => Err(TacticError::GoalShape {
                    expected: "a conjunction".into(),
                    goal: w,
                }),
            }
        }
        Tactic::Left | Tactic::Right => {
            let w = whnf(env, goal);
            match w.as_ind_app() {
                Some((name, args)) if name.as_str() == "or" && args.len() == 2 => {
                    let (a, b) = (args[0].clone(), args[1].clone());
                    let (j, sub) = if matches!(tac, Tactic::Left) {
                        (0, a.clone())
                    } else {
                        (1, b.clone())
                    };
                    let p = elaborate(env, ctx, &sub, rest)?;
                    Ok(Term::app(Term::construct("or", j), [a, b, p]))
                }
                _ => Err(TacticError::GoalShape {
                    expected: "a disjunction".into(),
                    goal: w,
                }),
            }
        }
        Tactic::Pose { name, ty, val } => {
            // The rest of the script proves the goal with the definition in
            // scope; elaboration produces a `let`.
            let _ = name;
            ctx.push(ty.clone());
            let lifted_goal = pumpkin_kernel::subst::lift(goal, 1);
            let result = elaborate(env, ctx, &lifted_goal, rest);
            ctx.pop();
            let p = result?;
            Ok(Term::let_(name.as_str(), ty.clone(), val.clone(), p))
        }
        Tactic::Exact(t) => {
            expect_done(rest)?;
            check(env, &mut ctx.clone(), t, goal).map_err(TacticError::Kernel)?;
            Ok(t.clone())
        }
    }
}

fn intro(env: &Env, ctx: &mut Ctx, goal: &Term, names: &[String], rest: &[Tactic]) -> Result<Term> {
    let Some((_n, more)) = names.split_first() else {
        return elaborate(env, ctx, goal, rest);
    };
    let w = whnf(env, goal);
    let TermData::Pi(b, body) = w.data() else {
        return Err(TacticError::GoalShape {
            expected: "a product to introduce".into(),
            goal: w,
        });
    };
    ctx.push(b.ty.clone());
    let result = intro(env, ctx, body, more, rest);
    ctx.pop();
    let p = result?;
    Ok(Term::new(TermData::Lambda(b.clone(), p)))
}

fn expect_done(rest: &[Tactic]) -> Result<()> {
    if rest.is_empty() {
        Ok(())
    } else {
        Err(TacticError::TrailingTactics(rest.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompile::decompile_constant;
    use pumpkin_stdlib as stdlib;

    /// Decompile-then-reprove round trip for a whole battery of stdlib
    /// proofs (the validation the paper performs through Coq).
    #[test]
    fn decompiled_proofs_reprove() {
        let env = stdlib::std_env();
        for name in [
            "add_n_O",
            "add_n_Sm",
            "app_nil_r",
            "app_assoc",
            "rev_app_distr",
            "rev_involutive",
            "zip_with_is_zip",
            "Old.app_nil_r",
            "Old.rev_app_distr",
            "I.demorgan_1",
            "Old.swap_eq_args_involutive",
        ] {
            let (goal, script) = decompile_constant(&env, name).unwrap();
            let term =
                prove(&env, &goal, &script).unwrap_or_else(|e| panic!("reproving {name}: {e}"));
            // The elaborated proof checks at the original statement.
            assert!(
                pumpkin_kernel::typecheck::check_closed(&env, &term, &goal).is_ok(),
                "{name}"
            );
        }
    }

    #[test]
    fn unfinished_script_errors() {
        let env = stdlib::std_env();
        let goal = pumpkin_lang::term(&env, "forall (n : nat), eq nat n n").unwrap();
        let r = prove(&env, &goal, &Script(vec![Tactic::Intro("n".into())]));
        assert!(matches!(r, Err(TacticError::Unfinished(_))));
    }

    #[test]
    fn reflexivity_on_non_reflexive_goal_errors() {
        let env = stdlib::std_env();
        let goal = pumpkin_lang::term(&env, "eq nat O (S O)").unwrap();
        let r = prove(&env, &goal, &Script(vec![Tactic::Reflexivity]));
        assert!(r.is_err());
    }

    #[test]
    fn reflexivity_uses_conversion() {
        let env = stdlib::std_env();
        let goal = pumpkin_lang::term(&env, "eq nat (add (S O) (S O)) (S (S O))").unwrap();
        let term = prove(&env, &goal, &Script(vec![Tactic::Reflexivity])).unwrap();
        assert!(pumpkin_kernel::typecheck::check_closed(&env, &term, &goal).is_ok());
    }
}
