//! # pumpkin-tactics
//!
//! The tactic side of the Pumpkin Pi reproduction (paper §5): the Qtac
//! tactic language (Fig. 13), the proof-term-to-tactic decompiler
//! (Fig. 14), the naturalizing second pass (§5.2), and a tactic
//! *interpreter* that re-elaborates scripts into kernel-checked proof
//! terms — the validation Coq provides for the original tool.

pub mod decompile;
pub mod error;
pub mod interp;
pub mod qtac;
pub mod second_pass;

pub use decompile::{decompile, decompile_constant};
pub use error::TacticError;
pub use interp::prove;
pub use qtac::{render, render_annotated, Dir, Script, Tactic};
pub use second_pass::second_pass;
