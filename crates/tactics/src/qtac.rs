//! Qtac: the tactic language targeted by the decompiler (paper Fig. 13).
//!
//! As in the paper's mini decompiler, `rewrite` and `induction` carry their
//! motives explicitly ("unlike in Ltac, in Qtac, induction and rewrite
//! always take a motive explicitly, rather than relying on a unification
//! engine"), which is what makes re-elaboration deterministic. Embedded
//! terms are kernel terms whose de Bruijn indices refer to the goal context
//! at that point in the script.

use pumpkin_kernel::env::Env;
use pumpkin_kernel::name::GlobalName;
use pumpkin_kernel::term::Term;

/// Rewrite direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dir {
    /// `rewrite` — the equation `e : x = y` is used right-to-left via
    /// `eq_ind_r` (the goal mentions `y`; the subgoal mentions `x`).
    Fwd,
    /// `rewrite <-` — via `eq_rect` (the goal mentions `y`; the subgoal
    /// mentions `x`, transporting forward).
    Bwd,
}

/// One tactic. Branching tactics own their sub-scripts and are terminal in
/// a [`Script`]; straight-line tactics continue with the rest.
#[derive(Clone, Debug, PartialEq)]
pub enum Tactic {
    /// `intro x.`
    Intro(String),
    /// `intros x y z.` (produced by the second pass).
    Intros(Vec<String>),
    /// `simpl.` — display-level simplification (sound no-op for
    /// re-elaboration).
    Simpl,
    /// `symmetry.`
    Symmetry,
    /// `reflexivity.` — terminal; goal must be a reflexive equation.
    Reflexivity,
    /// `rewrite [<-] (P) e.` with explicit motive; stores the equation's
    /// endpoints so elaboration is deterministic.
    Rewrite {
        /// Direction.
        dir: Dir,
        /// Element type of the equation.
        ty: Term,
        /// The `x` endpoint (see [`Dir`]).
        x: Term,
        /// The motive `P`.
        motive: Term,
        /// The `y` endpoint.
        y: Term,
        /// The equation proof.
        eq: Term,
    },
    /// `induction (P) t as [pats|…].` — terminal, with one sub-script per
    /// case (the intro patterns are the leading `intro`s of each case).
    Induction {
        /// The family eliminated.
        ind: GlobalName,
        /// Its parameters.
        params: Vec<Term>,
        /// The motive, explicit.
        motive: Term,
        /// The scrutinee.
        scrut: Term,
        /// One sub-script per constructor.
        cases: Vec<Script>,
    },
    /// `induction (P) t using elim as [pats|…].` — induction with a *custom
    /// eliminator* constant (e.g. `N.peano_rect`), the §6.3.3 decompiler
    /// improvement the paper proposes. Terminal.
    CustomInduction {
        /// The eliminator constant.
        elim: GlobalName,
        /// Arguments preceding the motive (e.g. type parameters).
        pre: Vec<Term>,
        /// The explicit motive.
        motive: Term,
        /// One sub-script per case.
        cases: Vec<Script>,
        /// The scrutinee.
        scrut: Term,
    },
    /// `apply f.` with one remaining obligation — terminal.
    Apply {
        /// The function (possibly already applied to leading arguments).
        f: Term,
        /// Proof of the last argument.
        sub: Script,
    },
    /// `split.` — terminal; two subgoals.
    Split(Script, Script),
    /// `left.`
    Left,
    /// `right.`
    Right,
    /// `pose (v : ty) as x.` — introduce a local definition (from `let`
    /// bindings in the proof term, paper §5.2 "Manipulating Hypotheses").
    Pose {
        /// The bound name.
        name: String,
        /// Its type.
        ty: Term,
        /// Its value.
        val: Term,
    },
    /// `exact t.` — terminal.
    Exact(Term),
}

/// A tactic script: a sequence ending with a terminal tactic (or a
/// straight-line sequence whose final goal is closed by the last tactic).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Script(pub Vec<Tactic>);

impl Script {
    /// Total number of tactics, including sub-scripts.
    pub fn len(&self) -> usize {
        self.0
            .iter()
            .map(|t| match t {
                Tactic::Induction { cases, .. } | Tactic::CustomInduction { cases, .. } => {
                    1 + cases.iter().map(Script::len).sum::<usize>()
                }
                Tactic::Apply { sub, .. } => 1 + sub.len(),
                Tactic::Split(a, b) => 1 + a.len() + b.len(),
                _ => 1,
            })
            .sum()
    }

    /// Is the script empty?
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Tactic {
    /// Every global constant mentioned by this tactic's embedded terms
    /// (not descending into sub-scripts — each nested tactic reports its
    /// own). Used by annotators to tie tactics back to repaired
    /// constants.
    pub fn constants(&self) -> Vec<GlobalName> {
        let mut out: Vec<GlobalName> = Vec::new();
        let add_term = |t: &Term, out: &mut Vec<GlobalName>| {
            for c in t.constants() {
                if !out.contains(&c) {
                    out.push(c);
                }
            }
        };
        match self {
            Tactic::Rewrite {
                ty,
                x,
                motive,
                y,
                eq,
                ..
            } => {
                for t in [ty, x, motive, y, eq] {
                    add_term(t, &mut out);
                }
            }
            Tactic::Induction {
                ind,
                params,
                motive,
                scrut,
                ..
            } => {
                out.push(ind.clone());
                for t in params.iter().chain([motive, scrut]) {
                    add_term(t, &mut out);
                }
            }
            Tactic::CustomInduction {
                elim,
                pre,
                motive,
                scrut,
                ..
            } => {
                out.push(elim.clone());
                for t in pre.iter().chain([motive, scrut]) {
                    add_term(t, &mut out);
                }
            }
            Tactic::Apply { f, .. } => add_term(f, &mut out),
            Tactic::Pose { ty, val, .. } => {
                add_term(ty, &mut out);
                add_term(val, &mut out);
            }
            Tactic::Exact(t) => add_term(t, &mut out),
            _ => {}
        }
        out
    }
}

/// Pretty-prints a script in Coq style, with `-`/`+`/`*` bullets per depth
/// (paper Fig. 2 / Fig. 15).
pub fn render(env: &Env, ctx: &[String], script: &Script) -> String {
    render_annotated(env, ctx, script, &|_| None)
}

/// Like [`render`], but consults `annotate` for each tactic: a returned
/// string is appended to that tactic's head line as a Coq comment
/// (`(* … *)`). The repair CLI uses this to cite the provenance of the
/// constants each tactic mentions.
pub fn render_annotated(
    env: &Env,
    ctx: &[String],
    script: &Script,
    annotate: &dyn Fn(&Tactic) -> Option<String>,
) -> String {
    let mut out = String::new();
    render_inner(env, &mut ctx.to_vec(), script, 0, &mut out, annotate);
    out
}

const BULLETS: [&str; 3] = ["-", "+", "*"];

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// Appends a tactic's head line plus its annotation comment, if any.
fn emit(out: &mut String, line: &str, tac: &Tactic, annotate: &dyn Fn(&Tactic) -> Option<String>) {
    out.push_str(line);
    if let Some(note) = annotate(tac) {
        out.push_str(&format!(" (* {note} *)"));
    }
    out.push('\n');
}

fn render_inner(
    env: &Env,
    ctx: &mut Vec<String>,
    script: &Script,
    depth: usize,
    out: &mut String,
    annotate: &dyn Fn(&Tactic) -> Option<String>,
) {
    let pushed_at_entry = ctx.len();
    for tac in &script.0 {
        match tac {
            Tactic::Intro(n) => {
                indent(out, depth);
                emit(out, &format!("intro {n}."), tac, annotate);
                ctx.push(n.clone());
            }
            Tactic::Intros(ns) => {
                indent(out, depth);
                emit(out, &format!("intros {}.", ns.join(" ")), tac, annotate);
                ctx.extend(ns.iter().cloned());
            }
            Tactic::Simpl => {
                indent(out, depth);
                emit(out, "simpl.", tac, annotate);
            }
            Tactic::Symmetry => {
                indent(out, depth);
                emit(out, "symmetry.", tac, annotate);
            }
            Tactic::Reflexivity => {
                indent(out, depth);
                emit(out, "reflexivity.", tac, annotate);
            }
            Tactic::Rewrite { dir, eq, .. } => {
                indent(out, depth);
                let arrow = match dir {
                    Dir::Fwd => "",
                    Dir::Bwd => "<- ",
                };
                emit(
                    out,
                    &format!(
                        "rewrite {arrow}({}).",
                        pumpkin_lang::pretty_open(env, ctx, eq)
                    ),
                    tac,
                    annotate,
                );
            }
            Tactic::Induction { scrut, cases, .. } => {
                indent(out, depth);
                // Intro patterns: the leading intros of each case.
                let pats: Vec<String> = cases
                    .iter()
                    .map(|c| {
                        let mut names = Vec::new();
                        for t in &c.0 {
                            match t {
                                Tactic::Intro(n) => names.push(n.clone()),
                                Tactic::Intros(ns) => names.extend(ns.iter().cloned()),
                                _ => break,
                            }
                        }
                        names.join(" ")
                    })
                    .collect();
                emit(
                    out,
                    &format!(
                        "induction ({}) as [{}].",
                        pumpkin_lang::pretty_open(env, ctx, scrut),
                        pats.join("|")
                    ),
                    tac,
                    annotate,
                );
                let bullet = BULLETS[depth % BULLETS.len()];
                for case in cases {
                    indent(out, depth);
                    out.push_str(&format!("{bullet} "));
                    // The leading intros are displayed in the `as` pattern;
                    // push their names into scope and render the remainder.
                    let mut cctx = ctx.clone();
                    let mut skip = 0;
                    for t in &case.0 {
                        match t {
                            Tactic::Intro(n) => {
                                cctx.push(n.clone());
                                skip += 1;
                            }
                            Tactic::Intros(ns) => {
                                cctx.extend(ns.iter().cloned());
                                skip += 1;
                            }
                            _ => break,
                        }
                    }
                    let rest = Script(case.0[skip..].to_vec());
                    let mut body = String::new();
                    if rest.is_empty() {
                        body.push_str("idtac.\n");
                    } else {
                        render_inner(env, &mut cctx, &rest, depth + 1, &mut body, annotate);
                    }
                    let trimmed = body.trim_start();
                    out.push_str(trimmed);
                    if !trimmed.ends_with('\n') {
                        out.push('\n');
                    }
                }
            }
            Tactic::CustomInduction {
                elim, scrut, cases, ..
            } => {
                indent(out, depth);
                let pats: Vec<String> = cases
                    .iter()
                    .map(|c| {
                        let mut names = Vec::new();
                        for t in &c.0 {
                            match t {
                                Tactic::Intro(n) => names.push(n.clone()),
                                Tactic::Intros(ns) => names.extend(ns.iter().cloned()),
                                _ => break,
                            }
                        }
                        names.join(" ")
                    })
                    .collect();
                emit(
                    out,
                    &format!(
                        "induction ({}) using {elim} as [{}].",
                        pumpkin_lang::pretty_open(env, ctx, scrut),
                        pats.join("|")
                    ),
                    tac,
                    annotate,
                );
                let bullet = BULLETS[depth % BULLETS.len()];
                for case in cases {
                    indent(out, depth);
                    out.push_str(&format!("{bullet} "));
                    let mut cctx = ctx.clone();
                    let mut skip = 0;
                    for t in &case.0 {
                        match t {
                            Tactic::Intro(n) => {
                                cctx.push(n.clone());
                                skip += 1;
                            }
                            Tactic::Intros(ns) => {
                                cctx.extend(ns.iter().cloned());
                                skip += 1;
                            }
                            _ => break,
                        }
                    }
                    let rest = Script(case.0[skip..].to_vec());
                    let mut body = String::new();
                    if rest.is_empty() {
                        body.push_str("idtac.\n");
                    } else {
                        render_inner(env, &mut cctx, &rest, depth + 1, &mut body, annotate);
                    }
                    let trimmed = body.trim_start();
                    out.push_str(trimmed);
                    if !trimmed.ends_with('\n') {
                        out.push('\n');
                    }
                }
            }
            Tactic::Apply { f, sub } => {
                indent(out, depth);
                emit(
                    out,
                    &format!("apply ({}).", pumpkin_lang::pretty_open(env, ctx, f)),
                    tac,
                    annotate,
                );
                let mut cctx = ctx.clone();
                render_inner(env, &mut cctx, sub, depth, out, annotate);
            }
            Tactic::Split(a, b) => {
                indent(out, depth);
                emit(out, "split.", tac, annotate);
                let bullet = BULLETS[depth % BULLETS.len()];
                for case in [a, b] {
                    indent(out, depth);
                    out.push_str(&format!("{bullet} "));
                    let mut body = String::new();
                    let mut cctx = ctx.clone();
                    render_inner(env, &mut cctx, case, depth + 1, &mut body, annotate);
                    out.push_str(body.trim_start());
                }
            }
            Tactic::Left => {
                indent(out, depth);
                emit(out, "left.", tac, annotate);
            }
            Tactic::Right => {
                indent(out, depth);
                emit(out, "right.", tac, annotate);
            }
            Tactic::Pose { name, val, .. } => {
                indent(out, depth);
                emit(
                    out,
                    &format!(
                        "pose ({}) as {name}.",
                        pumpkin_lang::pretty_open(env, ctx, val)
                    ),
                    tac,
                    annotate,
                );
                ctx.push(name.clone());
            }
            Tactic::Exact(t) => {
                indent(out, depth);
                emit(
                    out,
                    &format!("exact ({}).", pumpkin_lang::pretty_open(env, ctx, t)),
                    tac,
                    annotate,
                );
            }
        }
    }
    ctx.truncate(pushed_at_entry);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_annotated_appends_comments_per_tactic() {
        let env = Env::new();
        let script = Script(vec![
            Tactic::Intro("x".into()),
            Tactic::Simpl,
            Tactic::Reflexivity,
        ]);
        let plain = render(&env, &[], &script);
        assert_eq!(plain, "intro x.\nsimpl.\nreflexivity.\n");
        let annotated = render_annotated(&env, &[], &script, &|t| match t {
            Tactic::Simpl => Some("repaired: eta".to_string()),
            _ => None,
        });
        assert_eq!(
            annotated,
            "intro x.\nsimpl. (* repaired: eta *)\nreflexivity.\n"
        );
    }

    #[test]
    fn tactic_constants_reports_embedded_globals() {
        let t = Tactic::Exact(Term::app(
            Term::const_("New.rev"),
            vec![Term::const_("New.nil")],
        ));
        let names: Vec<String> = t
            .constants()
            .iter()
            .map(|n| n.as_str().to_string())
            .collect();
        assert_eq!(names, ["New.rev", "New.nil"]);
        assert!(Tactic::Simpl.constants().is_empty());
    }
}
