//! Qtac: the tactic language targeted by the decompiler (paper Fig. 13).
//!
//! As in the paper's mini decompiler, `rewrite` and `induction` carry their
//! motives explicitly ("unlike in Ltac, in Qtac, induction and rewrite
//! always take a motive explicitly, rather than relying on a unification
//! engine"), which is what makes re-elaboration deterministic. Embedded
//! terms are kernel terms whose de Bruijn indices refer to the goal context
//! at that point in the script.

use pumpkin_kernel::env::Env;
use pumpkin_kernel::name::GlobalName;
use pumpkin_kernel::term::Term;

/// Rewrite direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dir {
    /// `rewrite` — the equation `e : x = y` is used right-to-left via
    /// `eq_ind_r` (the goal mentions `y`; the subgoal mentions `x`).
    Fwd,
    /// `rewrite <-` — via `eq_rect` (the goal mentions `y`; the subgoal
    /// mentions `x`, transporting forward).
    Bwd,
}

/// One tactic. Branching tactics own their sub-scripts and are terminal in
/// a [`Script`]; straight-line tactics continue with the rest.
#[derive(Clone, Debug, PartialEq)]
pub enum Tactic {
    /// `intro x.`
    Intro(String),
    /// `intros x y z.` (produced by the second pass).
    Intros(Vec<String>),
    /// `simpl.` — display-level simplification (sound no-op for
    /// re-elaboration).
    Simpl,
    /// `symmetry.`
    Symmetry,
    /// `reflexivity.` — terminal; goal must be a reflexive equation.
    Reflexivity,
    /// `rewrite [<-] (P) e.` with explicit motive; stores the equation's
    /// endpoints so elaboration is deterministic.
    Rewrite {
        /// Direction.
        dir: Dir,
        /// Element type of the equation.
        ty: Term,
        /// The `x` endpoint (see [`Dir`]).
        x: Term,
        /// The motive `P`.
        motive: Term,
        /// The `y` endpoint.
        y: Term,
        /// The equation proof.
        eq: Term,
    },
    /// `induction (P) t as [pats|…].` — terminal, with one sub-script per
    /// case (the intro patterns are the leading `intro`s of each case).
    Induction {
        /// The family eliminated.
        ind: GlobalName,
        /// Its parameters.
        params: Vec<Term>,
        /// The motive, explicit.
        motive: Term,
        /// The scrutinee.
        scrut: Term,
        /// One sub-script per constructor.
        cases: Vec<Script>,
    },
    /// `induction (P) t using elim as [pats|…].` — induction with a *custom
    /// eliminator* constant (e.g. `N.peano_rect`), the §6.3.3 decompiler
    /// improvement the paper proposes. Terminal.
    CustomInduction {
        /// The eliminator constant.
        elim: GlobalName,
        /// Arguments preceding the motive (e.g. type parameters).
        pre: Vec<Term>,
        /// The explicit motive.
        motive: Term,
        /// One sub-script per case.
        cases: Vec<Script>,
        /// The scrutinee.
        scrut: Term,
    },
    /// `apply f.` with one remaining obligation — terminal.
    Apply {
        /// The function (possibly already applied to leading arguments).
        f: Term,
        /// Proof of the last argument.
        sub: Script,
    },
    /// `split.` — terminal; two subgoals.
    Split(Script, Script),
    /// `left.`
    Left,
    /// `right.`
    Right,
    /// `pose (v : ty) as x.` — introduce a local definition (from `let`
    /// bindings in the proof term, paper §5.2 "Manipulating Hypotheses").
    Pose {
        /// The bound name.
        name: String,
        /// Its type.
        ty: Term,
        /// Its value.
        val: Term,
    },
    /// `exact t.` — terminal.
    Exact(Term),
}

/// A tactic script: a sequence ending with a terminal tactic (or a
/// straight-line sequence whose final goal is closed by the last tactic).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Script(pub Vec<Tactic>);

impl Script {
    /// Total number of tactics, including sub-scripts.
    pub fn len(&self) -> usize {
        self.0
            .iter()
            .map(|t| match t {
                Tactic::Induction { cases, .. } | Tactic::CustomInduction { cases, .. } => {
                    1 + cases.iter().map(Script::len).sum::<usize>()
                }
                Tactic::Apply { sub, .. } => 1 + sub.len(),
                Tactic::Split(a, b) => 1 + a.len() + b.len(),
                _ => 1,
            })
            .sum()
    }

    /// Is the script empty?
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// Pretty-prints a script in Coq style, with `-`/`+`/`*` bullets per depth
/// (paper Fig. 2 / Fig. 15).
pub fn render(env: &Env, ctx: &[String], script: &Script) -> String {
    let mut out = String::new();
    render_inner(env, &mut ctx.to_vec(), script, 0, &mut out);
    out
}

const BULLETS: [&str; 3] = ["-", "+", "*"];

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn render_inner(env: &Env, ctx: &mut Vec<String>, script: &Script, depth: usize, out: &mut String) {
    let pushed_at_entry = ctx.len();
    for tac in &script.0 {
        match tac {
            Tactic::Intro(n) => {
                indent(out, depth);
                out.push_str(&format!("intro {n}.\n"));
                ctx.push(n.clone());
            }
            Tactic::Intros(ns) => {
                indent(out, depth);
                out.push_str(&format!("intros {}.\n", ns.join(" ")));
                ctx.extend(ns.iter().cloned());
            }
            Tactic::Simpl => {
                indent(out, depth);
                out.push_str("simpl.\n");
            }
            Tactic::Symmetry => {
                indent(out, depth);
                out.push_str("symmetry.\n");
            }
            Tactic::Reflexivity => {
                indent(out, depth);
                out.push_str("reflexivity.\n");
            }
            Tactic::Rewrite { dir, eq, .. } => {
                indent(out, depth);
                let arrow = match dir {
                    Dir::Fwd => "",
                    Dir::Bwd => "<- ",
                };
                out.push_str(&format!(
                    "rewrite {arrow}({}).\n",
                    pumpkin_lang::pretty_open(env, ctx, eq)
                ));
            }
            Tactic::Induction { scrut, cases, .. } => {
                indent(out, depth);
                // Intro patterns: the leading intros of each case.
                let pats: Vec<String> = cases
                    .iter()
                    .map(|c| {
                        let mut names = Vec::new();
                        for t in &c.0 {
                            match t {
                                Tactic::Intro(n) => names.push(n.clone()),
                                Tactic::Intros(ns) => names.extend(ns.iter().cloned()),
                                _ => break,
                            }
                        }
                        names.join(" ")
                    })
                    .collect();
                out.push_str(&format!(
                    "induction ({}) as [{}].\n",
                    pumpkin_lang::pretty_open(env, ctx, scrut),
                    pats.join("|")
                ));
                let bullet = BULLETS[depth % BULLETS.len()];
                for case in cases {
                    indent(out, depth);
                    out.push_str(&format!("{bullet} "));
                    // The leading intros are displayed in the `as` pattern;
                    // push their names into scope and render the remainder.
                    let mut cctx = ctx.clone();
                    let mut skip = 0;
                    for t in &case.0 {
                        match t {
                            Tactic::Intro(n) => {
                                cctx.push(n.clone());
                                skip += 1;
                            }
                            Tactic::Intros(ns) => {
                                cctx.extend(ns.iter().cloned());
                                skip += 1;
                            }
                            _ => break,
                        }
                    }
                    let rest = Script(case.0[skip..].to_vec());
                    let mut body = String::new();
                    if rest.is_empty() {
                        body.push_str("idtac.\n");
                    } else {
                        render_inner(env, &mut cctx, &rest, depth + 1, &mut body);
                    }
                    let trimmed = body.trim_start();
                    out.push_str(trimmed);
                    if !trimmed.ends_with('\n') {
                        out.push('\n');
                    }
                }
            }
            Tactic::CustomInduction {
                elim, scrut, cases, ..
            } => {
                indent(out, depth);
                let pats: Vec<String> = cases
                    .iter()
                    .map(|c| {
                        let mut names = Vec::new();
                        for t in &c.0 {
                            match t {
                                Tactic::Intro(n) => names.push(n.clone()),
                                Tactic::Intros(ns) => names.extend(ns.iter().cloned()),
                                _ => break,
                            }
                        }
                        names.join(" ")
                    })
                    .collect();
                out.push_str(&format!(
                    "induction ({}) using {elim} as [{}].\n",
                    pumpkin_lang::pretty_open(env, ctx, scrut),
                    pats.join("|")
                ));
                let bullet = BULLETS[depth % BULLETS.len()];
                for case in cases {
                    indent(out, depth);
                    out.push_str(&format!("{bullet} "));
                    let mut cctx = ctx.clone();
                    let mut skip = 0;
                    for t in &case.0 {
                        match t {
                            Tactic::Intro(n) => {
                                cctx.push(n.clone());
                                skip += 1;
                            }
                            Tactic::Intros(ns) => {
                                cctx.extend(ns.iter().cloned());
                                skip += 1;
                            }
                            _ => break,
                        }
                    }
                    let rest = Script(case.0[skip..].to_vec());
                    let mut body = String::new();
                    if rest.is_empty() {
                        body.push_str("idtac.\n");
                    } else {
                        render_inner(env, &mut cctx, &rest, depth + 1, &mut body);
                    }
                    let trimmed = body.trim_start();
                    out.push_str(trimmed);
                    if !trimmed.ends_with('\n') {
                        out.push('\n');
                    }
                }
            }
            Tactic::Apply { f, sub } => {
                indent(out, depth);
                out.push_str(&format!(
                    "apply ({}).\n",
                    pumpkin_lang::pretty_open(env, ctx, f)
                ));
                let mut cctx = ctx.clone();
                render_inner(env, &mut cctx, sub, depth, out);
            }
            Tactic::Split(a, b) => {
                indent(out, depth);
                out.push_str("split.\n");
                let bullet = BULLETS[depth % BULLETS.len()];
                for case in [a, b] {
                    indent(out, depth);
                    out.push_str(&format!("{bullet} "));
                    let mut body = String::new();
                    let mut cctx = ctx.clone();
                    render_inner(env, &mut cctx, case, depth + 1, &mut body);
                    out.push_str(body.trim_start());
                }
            }
            Tactic::Left => {
                indent(out, depth);
                out.push_str("left.\n");
            }
            Tactic::Right => {
                indent(out, depth);
                out.push_str("right.\n");
            }
            Tactic::Pose { name, val, .. } => {
                indent(out, depth);
                out.push_str(&format!(
                    "pose ({}) as {name}.\n",
                    pumpkin_lang::pretty_open(env, ctx, val)
                ));
                ctx.push(name.clone());
            }
            Tactic::Exact(t) => {
                indent(out, depth);
                out.push_str(&format!(
                    "exact ({}).\n",
                    pumpkin_lang::pretty_open(env, ctx, t)
                ));
            }
        }
    }
    ctx.truncate(pushed_at_entry);
}
