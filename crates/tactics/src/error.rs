//! Errors for tactic elaboration.

use std::fmt;

use pumpkin_kernel::error::KernelError;
use pumpkin_kernel::term::Term;

/// Errors from running a Qtac script.
#[derive(Clone, Debug)]
pub enum TacticError {
    /// The script ended with this goal still open.
    Unfinished(Term),
    /// A terminal tactic was followed by more tactics.
    TrailingTactics(usize),
    /// The goal did not have the shape the tactic requires.
    GoalShape {
        /// What the tactic needed.
        expected: String,
        /// The goal it got.
        goal: Term,
    },
    /// The kernel rejected an elaborated (sub)term.
    Kernel(KernelError),
}

impl fmt::Display for TacticError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TacticError::Unfinished(g) => write!(f, "script ended with open goal `{g}`"),
            TacticError::TrailingTactics(n) => {
                write!(f, "{n} tactic(s) after a terminal tactic")
            }
            TacticError::GoalShape { expected, goal } => {
                write!(f, "tactic expected {expected}, goal is `{goal}`")
            }
            TacticError::Kernel(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TacticError {}

/// The crate's result type.
pub type Result<T> = std::result::Result<T, TacticError>;
