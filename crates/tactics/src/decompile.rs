//! The proof-term-to-tactic decompiler (paper §5, Fig. 14).
//!
//! Rules, in order (mirroring the mini decompiler):
//!
//! * lambdas become `intro` (Intro);
//! * `eq_sym` applications become `symmetry` (Symmetry);
//! * `eq_refl` applications become `reflexivity`;
//! * `eq_ind_r` / `eq_rect` applications become `rewrite` in the matching
//!   direction (Rewrite), with the motive recorded explicitly;
//! * `and` / `or` constructors become `split` / `left` / `right`;
//! * eliminator nodes become `induction` with one sub-script per case
//!   (Induction);
//! * other applications whose final argument has proof structure become
//!   `apply f` with the obligation decompiled (Apply);
//! * everything else falls back to `exact` (Base).

use pumpkin_kernel::env::Env;
use pumpkin_kernel::term::{Term, TermData};

use crate::qtac::{Dir, Script, Tactic};

/// A registered custom eliminator shape: the constant's arguments are
/// `pre… motive cases… scrut` (the §6.3.3 improvement the paper proposes:
/// "supporting custom eliminators like N.peano_rect would be a simple way
/// to improve the decompiler").
#[derive(Clone, Debug)]
pub struct CustomElim {
    /// The eliminator constant's name.
    pub name: &'static str,
    /// Number of arguments before the motive (e.g. type parameters).
    pub pre: usize,
    /// Number of cases.
    pub cases: usize,
}

/// The custom eliminators of the standard environment and the case-study
/// configurations.
pub fn standard_custom_elims() -> Vec<CustomElim> {
    vec![
        CustomElim {
            name: "N.peano_rect",
            pre: 0,
            cases: 2,
        },
        CustomElim {
            name: "Pos.peano_rect",
            pre: 0,
            cases: 2,
        },
        CustomElim {
            name: "nat.dep_elim",
            pre: 0,
            cases: 2,
        },
        CustomElim {
            name: "list_sig.dep_elim",
            pre: 1,
            cases: 2,
        },
        CustomElim {
            name: "packed_list_elim",
            pre: 2,
            cases: 1,
        },
    ]
}

/// Decompiles a proof term into a tactic script. `ctx` names the hypotheses
/// already in scope (used to freshen intro names).
pub fn decompile(env: &Env, ctx: &[String], t: &Term) -> Script {
    let mut names: Vec<String> = ctx.to_vec();
    Script(go(env, &mut names, t))
}

/// Decompiles the body of a defined constant.
///
/// Returns `None` if the constant has no body.
pub fn decompile_constant(env: &Env, name: &str) -> Option<(Term, Script)> {
    let decl = env.const_decl(&name.into()).ok()?;
    let body = decl.body.clone()?;
    Some((decl.ty.clone(), decompile(env, &[], &body)))
}

fn fresh(env: &Env, names: &[String], hint: Option<&str>) -> String {
    let base = hint.unwrap_or("H").to_string();
    let mut candidate = base.clone();
    let mut i = 0;
    while names.iter().any(|n| n == &candidate) || env.contains(&candidate) {
        candidate = format!("{base}{i}");
        i += 1;
    }
    candidate
}

fn go(env: &Env, names: &mut Vec<String>, t: &Term) -> Vec<Tactic> {
    match t.data() {
        TermData::Lambda(b, body) => {
            let n = fresh(env, names, b.name.as_str());
            names.push(n.clone());
            let mut rest = go(env, names, body);
            names.pop();
            let mut out = vec![Tactic::Intro(n)];
            out.append(&mut rest);
            out
        }
        TermData::Let(b, v, body) => {
            let n = fresh(env, names, b.name.as_str());
            names.push(n.clone());
            let mut rest = go(env, names, body);
            names.pop();
            let mut out = vec![Tactic::Pose {
                name: n,
                ty: b.ty.clone(),
                val: v.clone(),
            }];
            out.append(&mut rest);
            out
        }
        TermData::Elim(e) => {
            let cases = e
                .cases
                .iter()
                .map(|c| {
                    let mut cn = names.clone();
                    Script(go(env, &mut cn, c))
                })
                .collect();
            vec![Tactic::Induction {
                ind: e.ind.clone(),
                params: e.params.clone(),
                motive: e.motive.clone(),
                scrut: e.scrutinee.clone(),
                cases,
            }]
        }
        _ => {
            if let Some((ind, j, args)) = t.as_construct_app() {
                match (ind.as_str(), j, args.len()) {
                    ("eq", 0, _) => return vec![Tactic::Reflexivity],
                    ("and", 0, 4) => {
                        let mut ln = names.clone();
                        let mut rn = names.clone();
                        return vec![Tactic::Split(
                            Script(go(env, &mut ln, &args[2])),
                            Script(go(env, &mut rn, &args[3])),
                        )];
                    }
                    ("or", 0, 3) => {
                        let mut out = vec![Tactic::Left];
                        out.append(&mut go(env, names, &args[2]));
                        return vec![Tactic::Left]
                            .into_iter()
                            .chain(out.into_iter().skip(1))
                            .collect();
                    }
                    ("or", 1, 3) => {
                        let mut out = vec![Tactic::Right];
                        out.append(&mut go(env, names, &args[2]));
                        return out;
                    }
                    _ => {}
                }
            }
            if let Some((c, args)) = t.as_const_app() {
                match (c.as_str(), args.len()) {
                    ("eq_sym", 4) => {
                        let mut out = vec![Tactic::Symmetry];
                        out.append(&mut go(env, names, &args[3]));
                        return out;
                    }
                    ("eq_ind_r", 6) => {
                        // eq_ind_r A x P p y e : P y, from p : P x.
                        let mut out = vec![
                            Tactic::Simpl,
                            Tactic::Rewrite {
                                dir: Dir::Fwd,
                                ty: args[0].clone(),
                                x: args[1].clone(),
                                motive: args[2].clone(),
                                y: args[4].clone(),
                                eq: args[5].clone(),
                            },
                        ];
                        out.append(&mut go(env, names, &args[3]));
                        return out;
                    }
                    ("eq_rect", 6) => {
                        let mut out = vec![
                            Tactic::Simpl,
                            Tactic::Rewrite {
                                dir: Dir::Bwd,
                                ty: args[0].clone(),
                                x: args[1].clone(),
                                motive: args[2].clone(),
                                y: args[4].clone(),
                                eq: args[5].clone(),
                            },
                        ];
                        out.append(&mut go(env, names, &args[3]));
                        return out;
                    }
                    _ => {}
                }
            }
            // Custom eliminators (induction … using).
            if let Some((c, args)) = t.as_const_app() {
                if let Some(ce) = standard_custom_elims()
                    .into_iter()
                    .find(|ce| c.as_str() == ce.name)
                {
                    let expected = ce.pre + 1 + ce.cases + 1;
                    if args.len() == expected {
                        let cases = args[ce.pre + 1..ce.pre + 1 + ce.cases]
                            .iter()
                            .map(|case| {
                                let mut cn = names.clone();
                                Script(go(env, &mut cn, case))
                            })
                            .collect();
                        return vec![Tactic::CustomInduction {
                            elim: c.clone(),
                            pre: args[..ce.pre].to_vec(),
                            motive: args[ce.pre].clone(),
                            cases,
                            scrut: args[expected - 1].clone(),
                        }];
                    }
                }
            }
            // Apply: recurse into the last argument if it has structure.
            if let TermData::App(h, args) = t.data() {
                let last = args.last().expect("apps are non-empty");
                let mut ln = names.clone();
                let sub = go(env, &mut ln, last);
                let trivial = matches!(sub.as_slice(), [Tactic::Exact(_)]);
                if !trivial {
                    let f = Term::app(h.clone(), args[..args.len() - 1].iter().cloned());
                    return vec![Tactic::Apply {
                        f,
                        sub: Script(sub),
                    }];
                }
            }
            vec![Tactic::Exact(t.clone())]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pumpkin_stdlib as stdlib;

    #[test]
    fn decompiles_add_n_o_to_induction_script() {
        let env = stdlib::std_env();
        let (_, script) = decompile_constant(&env, "add_n_O").unwrap();
        // intro n. induction … with two cases.
        assert!(matches!(script.0[0], Tactic::Intro(_)));
        match &script.0[1] {
            Tactic::Induction { cases, .. } => {
                assert_eq!(cases.len(), 2);
                assert!(matches!(cases[0].0[0], Tactic::Reflexivity));
                // Successor case: intros then apply f_equal.
                assert!(matches!(cases[1].0[0], Tactic::Intro(_)));
            }
            other => panic!("expected induction, got {other:?}"),
        }
    }

    #[test]
    fn decompiles_symmetry_and_rewrite() {
        let env = stdlib::std_env();
        let (_, script) = decompile_constant(&env, "rev_app_distr").unwrap();
        let rendered = crate::qtac::render(&env, &[], &script);
        assert!(rendered.contains("induction"), "{rendered}");
        assert!(rendered.contains("symmetry"), "{rendered}");
    }

    #[test]
    fn intro_names_are_fresh() {
        let env = stdlib::std_env();
        // fun (add : nat) => add — binder collides with a global.
        let t = Term::lambda("add", Term::ind("nat"), Term::rel(0));
        let script = decompile(&env, &[], &t);
        match &script.0[0] {
            Tactic::Intro(n) => assert_ne!(n, "add"),
            other => panic!("expected intro, got {other:?}"),
        }
    }
}

#[cfg(test)]
mod let_tests {
    use super::*;
    use crate::qtac::Tactic;
    use pumpkin_stdlib as stdlib;

    #[test]
    fn let_bindings_decompile_to_pose_and_reprove() {
        let mut env = stdlib::std_env();
        pumpkin_lang::load_source(
            &mut env,
            "Definition pose_demo : forall (n : nat), eq nat (add n O) n :=
               fun (n : nat) =>
                 let m : nat := add n O in
                 add_n_O n.",
        )
        .unwrap();
        let (goal, script) = decompile_constant(&env, "pose_demo").unwrap();
        assert!(script.0.iter().any(|t| matches!(t, Tactic::Pose { .. })));
        let rendered = crate::qtac::render(&env, &[], &script);
        assert!(rendered.contains("pose"), "{rendered}");
        crate::interp::prove(&env, &goal, &script).unwrap();
    }
}
