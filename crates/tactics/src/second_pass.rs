//! The decompiler's second pass (paper §5.2): rewrite the raw tactic
//! stream into a more natural script. We merge runs of `intro` into a
//! single `intros`, and drop `simpl` steps that precede another `simpl`
//! (the first pass can emit them redundantly).

use crate::qtac::{Script, Tactic};

/// Applies the second pass to a script (recursively through sub-scripts).
pub fn second_pass(script: &Script) -> Script {
    let mut out: Vec<Tactic> = Vec::with_capacity(script.0.len());
    let mut pending: Vec<String> = Vec::new();

    fn flush(pending: &mut Vec<String>, out: &mut Vec<Tactic>) {
        match pending.len() {
            0 => {}
            1 => out.push(Tactic::Intro(pending.remove(0))),
            _ => out.push(Tactic::Intros(std::mem::take(pending))),
        }
    }

    for tac in &script.0 {
        match tac {
            Tactic::Intro(n) => pending.push(n.clone()),
            Tactic::Intros(ns) => pending.extend(ns.iter().cloned()),
            Tactic::Simpl => {
                flush(&mut pending, &mut out);
                if !matches!(out.last(), Some(Tactic::Simpl)) {
                    out.push(Tactic::Simpl);
                }
            }
            Tactic::Induction {
                ind,
                params,
                motive,
                scrut,
                cases,
            } => {
                flush(&mut pending, &mut out);
                out.push(Tactic::Induction {
                    ind: ind.clone(),
                    params: params.clone(),
                    motive: motive.clone(),
                    scrut: scrut.clone(),
                    cases: cases.iter().map(second_pass).collect(),
                });
            }
            Tactic::CustomInduction {
                elim,
                pre,
                motive,
                cases,
                scrut,
            } => {
                flush(&mut pending, &mut out);
                out.push(Tactic::CustomInduction {
                    elim: elim.clone(),
                    pre: pre.clone(),
                    motive: motive.clone(),
                    cases: cases.iter().map(second_pass).collect(),
                    scrut: scrut.clone(),
                });
            }
            Tactic::Apply { f, sub } => {
                flush(&mut pending, &mut out);
                out.push(Tactic::Apply {
                    f: f.clone(),
                    sub: second_pass(sub),
                });
            }
            Tactic::Split(a, b) => {
                flush(&mut pending, &mut out);
                out.push(Tactic::Split(second_pass(a), second_pass(b)));
            }
            other => {
                flush(&mut pending, &mut out);
                out.push(other.clone());
            }
        }
    }
    flush(&mut pending, &mut out);
    Script(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_intro_runs() {
        let s = Script(vec![
            Tactic::Intro("a".into()),
            Tactic::Intro("b".into()),
            Tactic::Intro("c".into()),
            Tactic::Reflexivity,
        ]);
        let s2 = second_pass(&s);
        assert_eq!(
            s2.0[0],
            Tactic::Intros(vec!["a".into(), "b".into(), "c".into()])
        );
        assert_eq!(s2.0.len(), 2);
    }

    #[test]
    fn single_intro_stays_intro() {
        let s = Script(vec![Tactic::Intro("a".into()), Tactic::Reflexivity]);
        let s2 = second_pass(&s);
        assert_eq!(s2.0[0], Tactic::Intro("a".into()));
    }

    #[test]
    fn recurses_into_cases_and_dedups_simpl() {
        let inner = Script(vec![
            Tactic::Intro("x".into()),
            Tactic::Intro("y".into()),
            Tactic::Simpl,
            Tactic::Simpl,
            Tactic::Reflexivity,
        ]);
        let s = Script(vec![Tactic::Induction {
            ind: "nat".into(),
            params: vec![],
            motive: pumpkin_kernel::term::Term::prop(),
            scrut: pumpkin_kernel::term::Term::rel(0),
            cases: vec![inner],
        }]);
        let s2 = second_pass(&s);
        match &s2.0[0] {
            Tactic::Induction { cases, .. } => {
                assert_eq!(cases[0].0.len(), 3);
                assert!(matches!(cases[0].0[0], Tactic::Intros(_)));
            }
            _ => panic!(),
        }
    }
}
