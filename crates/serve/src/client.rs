//! A minimal blocking client for the pumpkind protocol.
//!
//! One TCP connection, strictly request → reply. The `pumpkin client`
//! subcommand and `examples/serve_roundtrip.rs` are thin layers over
//! this.

use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;

use pumpkin_wire::Value;

/// What a call can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// Transport-level failure.
    Io(io::Error),
    /// The reply line was not a well-formed reply envelope.
    Protocol(String),
    /// The server answered with a structured error.
    Server {
        /// Machine-readable code (see [`crate::proto::code`]).
        code: String,
        message: String,
        /// Machine-readable detail distinguishing causes behind one code
        /// (e.g. `busy` is `"queue_full"` or `"session_cap"`), when the
        /// server sent one.
        data: Option<String>,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
            ClientError::Server {
                code,
                message,
                data: Some(data),
            } => write!(f, "server error [{code}/{data}]: {message}"),
            ClientError::Server {
                code,
                message,
                data: None,
            } => write!(f, "server error [{code}]: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A connected client with an id counter.
pub struct Client {
    reader: BufReader<TcpStream>,
    next_id: u64,
}

impl Client {
    /// Connects to a pumpkind TCP address (`host:port`).
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // Request/reply over tiny frames: leaving Nagle on costs a
        // delayed-ACK round (~40 ms) per call.
        let _ = stream.set_nodelay(true);
        Ok(Client {
            reader: BufReader::new(stream),
            next_id: 1,
        })
    }

    /// Sends one request and waits for its reply's `result`.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] carries the daemon's structured error;
    /// the other variants are transport/framing failures.
    pub fn call(&mut self, method: &str, params: Value) -> Result<Value, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let request = Value::Obj(vec![
            ("id".into(), Value::UInt(id)),
            ("method".into(), Value::str(method)),
            ("params".into(), params),
        ])
        .to_string();
        let line = self.call_raw(&request)?;
        let v = Value::parse(&line)
            .map_err(|e| ClientError::Protocol(format!("bad reply `{line}`: {e}")))?;
        match v.get("ok").and_then(Value::as_bool) {
            Some(true) => v
                .get("result")
                .cloned()
                .ok_or_else(|| ClientError::Protocol("reply has no `result`".into())),
            Some(false) => {
                let err = v.get("error");
                let get = |k: &str| {
                    err.and_then(|e| e.get(k))
                        .and_then(Value::as_str)
                        .unwrap_or("?")
                        .to_string()
                };
                Err(ClientError::Server {
                    code: get("code"),
                    message: get("message"),
                    // String details pass through; structured details (a
                    // `repair_auto` exhaustion embeds its full accounting
                    // object) are carried as their JSON text.
                    data: err.and_then(|e| e.get("data")).map(|d| match d.as_str() {
                        Some(s) => s.to_string(),
                        None => d.to_string(),
                    }),
                })
            }
            None => Err(ClientError::Protocol(format!("reply has no `ok`: {line}"))),
        }
    }

    /// Sends one raw line and reads one raw reply line (for tests and
    /// transcript tooling).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; EOF before a reply is an error.
    pub fn call_raw(&mut self, line: &str) -> io::Result<String> {
        // One write per frame: a separate newline write would ride in
        // its own packet and stall behind the peer's delayed ACK.
        let mut frame = Vec::with_capacity(line.len() + 1);
        frame.extend_from_slice(line.as_bytes());
        frame.push(b'\n');
        let stream = self.reader.get_mut();
        stream.write_all(&frame)?;
        stream.flush()?;
        let mut reply = String::new();
        if self.reader.read_line(&mut reply)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed before replying",
            ));
        }
        while reply.ends_with('\n') || reply.ends_with('\r') {
            reply.pop();
        }
        Ok(reply)
    }
}
