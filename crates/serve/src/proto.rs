//! NDJSON-RPC framing for pumpkind.
//!
//! One request per line, one reply per line; both are single JSON
//! objects. A request is `{"id": …, "method": "…", "params": {…}}`; a
//! reply is `{"id": …, "ok": true, "result": {…}}` or
//! `{"id": …, "ok": false, "error": {"code": "…", "message": "…"}}`.
//! Malformed input gets a structured error reply (with `id: null` when
//! the id could not be recovered) and the connection stays usable —
//! except after a truncated frame (EOF mid-line), where there is nothing
//! left to read.
//!
//! Frames are hard-capped at [`MAX_FRAME`] bytes. An oversized line is
//! drained to its newline (bounded memory — the excess is discarded
//! buffer by buffer, never accumulated) and answered with
//! [`code::OVERSIZED`].

use std::io::{self, BufRead, Read};

use pumpkin_wire::Value;

/// Protocol version announced by `ping` (independent of the wire format
/// version embedded in term envelopes).
pub const PROTO_VERSION: u32 = 1;

/// Hard cap on a single request line, in bytes (newline included).
pub const MAX_FRAME: usize = 1 << 20;

/// Machine-readable error codes carried in `error.code`.
pub mod code {
    /// The line is not valid JSON or not a request object.
    pub const PARSE: &str = "parse";
    /// The line exceeded [`super::MAX_FRAME`] bytes.
    pub const OVERSIZED: &str = "oversized_frame";
    /// The connection closed mid-line (no trailing newline).
    pub const TRUNCATED: &str = "truncated_frame";
    /// `method` names nothing the daemon serves.
    pub const UNKNOWN_METHOD: &str = "unknown_method";
    /// `params` is missing a field or holds the wrong shape.
    pub const BAD_PARAMS: &str = "bad_params";
    /// A term envelope's content digest did not verify.
    pub const BAD_DIGEST: &str = "bad_digest";
    /// Admission refused — the session cap is reached or the worker
    /// pool's bounded queue is full; retry later.
    pub const BUSY: &str = "busy";
    /// The request's deadline elapsed; completed waves were discarded
    /// with the session's throwaway environment.
    pub const DEADLINE: &str = "deadline";
    /// The repair itself failed (configuration, unification, kernel).
    pub const REPAIR_FAILED: &str = "repair_failed";
    /// Every candidate configuration of a `repair_auto` search failed;
    /// `data` carries the structured [`AutoWire`] accounting (including
    /// the minimized reproducer, when one was computed).
    ///
    /// [`AutoWire`]: pumpkin_wire::AutoWire
    pub const AUTO_EXHAUSTED: &str = "auto_exhausted";
    /// The server is draining after a `shutdown`.
    pub const SHUTTING_DOWN: &str = "shutting_down";

    /// Every code the server can put in `error.code`, in declaration
    /// order. Clients map these to exit statuses; the audit test in the
    /// CLI diffs its map against this list so a new server code cannot
    /// ship without a distinct client exit status.
    pub const ALL: &[&str] = &[
        PARSE,
        OVERSIZED,
        TRUNCATED,
        UNKNOWN_METHOD,
        BAD_PARAMS,
        BAD_DIGEST,
        BUSY,
        DEADLINE,
        REPAIR_FAILED,
        AUTO_EXHAUSTED,
        SHUTTING_DOWN,
    ];
}

/// A parsed request frame.
#[derive(Clone, Debug)]
pub struct Request {
    /// Echoed verbatim into the reply (null when absent).
    pub id: Value,
    pub method: String,
    /// Null when absent; methods validate their own shapes.
    pub params: Value,
}

/// Parses one request line.
///
/// # Errors
///
/// Returns a human-readable message (for a [`code::PARSE`] reply) when
/// the line is not a JSON object with a string `method`.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = Value::parse(line).map_err(|e| e.to_string())?;
    if v.as_obj().is_none() {
        return Err("request must be a JSON object".into());
    }
    let method = v
        .get("method")
        .and_then(Value::as_str)
        .ok_or("request needs a string `method`")?
        .to_string();
    let id = v.get("id").cloned().unwrap_or(Value::Null);
    let params = v.get("params").cloned().unwrap_or(Value::Null);
    Ok(Request { id, method, params })
}

/// Builds a success reply as a [`Value`] (the `repair_batch` reply embeds
/// these per item, so batch entries are byte-identical to single replies).
pub fn ok_reply_value(id: &Value, result: Value) -> Value {
    Value::Obj(vec![
        ("id".into(), id.clone()),
        ("ok".into(), Value::Bool(true)),
        ("result".into(), result),
    ])
}

/// Builds an error reply as a [`Value`] (see [`ok_reply_value`]).
pub fn err_reply_value(id: &Value, code: &str, message: &str) -> Value {
    Value::Obj(vec![
        ("id".into(), id.clone()),
        ("ok".into(), Value::Bool(false)),
        (
            "error".into(),
            Value::Obj(vec![
                ("code".into(), Value::str(code)),
                ("message".into(), Value::str(message)),
            ]),
        ),
    ])
}

/// Builds an error reply with a machine-readable `data` detail string —
/// used where one code covers distinct causes (both admission layers
/// reply [`code::BUSY`]; `data` says `"queue_full"` vs `"session_cap"`).
pub fn err_reply_value_detail(id: &Value, code: &str, message: &str, data: &str) -> Value {
    Value::Obj(vec![
        ("id".into(), id.clone()),
        ("ok".into(), Value::Bool(false)),
        (
            "error".into(),
            Value::Obj(vec![
                ("code".into(), Value::str(code)),
                ("message".into(), Value::str(message)),
                ("data".into(), Value::str(data)),
            ]),
        ),
    ])
}

/// Builds an error reply whose `data` is a structured JSON value — used
/// where the error carries machine-readable accounting (a `repair_auto`
/// exhaustion reply embeds the full `AutoWire` object, reproducer
/// included).
pub fn err_reply_value_data(id: &Value, code: &str, message: &str, data: Value) -> Value {
    Value::Obj(vec![
        ("id".into(), id.clone()),
        ("ok".into(), Value::Bool(false)),
        (
            "error".into(),
            Value::Obj(vec![
                ("code".into(), Value::str(code)),
                ("message".into(), Value::str(message)),
                ("data".into(), data),
            ]),
        ),
    ])
}

/// Stamps a lifecycle request id into a reply envelope, as `"req_id"`
/// immediately after `"id"` (or at the front when `"id"` is absent —
/// which [`ok_reply_value`]/[`err_reply_value`] never produce). Batch
/// *entries* are deliberately not stamped: only top-level frames carry a
/// lifecycle id, so batch entries stay byte-identical to the per-RPC
/// results they embed.
pub fn stamp_req_id(reply: &mut Value, req_id: u64) {
    if let Value::Obj(fields) = reply {
        let at = fields
            .iter()
            .position(|(k, _)| k == "id")
            .map_or(0, |i| i + 1);
        fields.insert(at, ("req_id".into(), Value::UInt(req_id)));
    }
}

/// Builds a success reply line (no trailing newline).
pub fn ok_reply(id: &Value, result: Value) -> String {
    ok_reply_value(id, result).to_string()
}

/// Builds an error reply line (no trailing newline).
pub fn err_reply(id: &Value, code: &str, message: &str) -> String {
    err_reply_value(id, code, message).to_string()
}

/// One framing step's outcome.
#[derive(Debug)]
pub enum Frame {
    /// A complete line (newline stripped).
    Line(Vec<u8>),
    /// The line blew the [`MAX_FRAME`] cap; the excess was drained, so
    /// the next read starts on a fresh frame.
    Oversized,
    /// EOF mid-line: bytes arrived but the newline never did.
    Truncated,
    /// Clean end of stream.
    Eof,
}

/// Reads one frame with bounded memory.
///
/// # Errors
///
/// Propagates I/O errors from the underlying reader.
pub fn read_frame(r: &mut impl BufRead) -> io::Result<Frame> {
    let mut buf = Vec::new();
    r.by_ref()
        .take(MAX_FRAME as u64)
        .read_until(b'\n', &mut buf)?;
    if buf.last() == Some(&b'\n') {
        buf.pop();
        if buf.last() == Some(&b'\r') {
            buf.pop();
        }
        return Ok(Frame::Line(buf));
    }
    if buf.is_empty() {
        return Ok(Frame::Eof);
    }
    if buf.len() < MAX_FRAME {
        return Ok(Frame::Truncated);
    }
    // Cap hit: discard the rest of the line buffer-by-buffer.
    loop {
        let chunk = r.fill_buf()?;
        if chunk.is_empty() {
            // EOF while draining still counts as oversized — the frame
            // was over budget either way.
            return Ok(Frame::Oversized);
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                r.consume(pos + 1);
                return Ok(Frame::Oversized);
            }
            None => {
                let n = chunk.len();
                r.consume(n);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_well_formed_requests() {
        let r = parse_request(r#"{"id":7,"method":"ping","params":{"x":1}}"#).unwrap();
        assert_eq!(r.id, Value::UInt(7));
        assert_eq!(r.method, "ping");
        assert_eq!(r.params.get("x"), Some(&Value::UInt(1)));
        // id and params are optional.
        let r = parse_request(r#"{"method":"ping"}"#).unwrap();
        assert!(r.id.is_null());
        assert!(r.params.is_null());
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request("[1,2]").is_err());
        assert!(parse_request(r#"{"id":1}"#).is_err());
        assert!(parse_request(r#"{"method":7}"#).is_err());
    }

    #[test]
    fn reply_builders_emit_the_envelope() {
        assert_eq!(
            ok_reply(
                &Value::UInt(1),
                Value::Obj(vec![("pong".into(), Value::Bool(true))])
            ),
            r#"{"id":1,"ok":true,"result":{"pong":true}}"#
        );
        assert_eq!(
            err_reply(&Value::Null, code::PARSE, "bad"),
            r#"{"id":null,"ok":false,"error":{"code":"parse","message":"bad"}}"#
        );
    }

    #[test]
    fn detail_replies_carry_data_and_req_id_lands_after_id() {
        let mut reply = err_reply_value_detail(&Value::UInt(3), code::BUSY, "full", "queue_full");
        assert_eq!(
            reply.to_string(),
            r#"{"id":3,"ok":false,"error":{"code":"busy","message":"full","data":"queue_full"}}"#
        );
        stamp_req_id(&mut reply, 41);
        assert_eq!(
            reply.to_string(),
            r#"{"id":3,"req_id":41,"ok":false,"error":{"code":"busy","message":"full","data":"queue_full"}}"#
        );
        let mut ok = ok_reply_value(&Value::Null, Value::Obj(vec![]));
        stamp_req_id(&mut ok, 1);
        assert_eq!(
            ok.to_string(),
            r#"{"id":null,"req_id":1,"ok":true,"result":{}}"#
        );
    }

    #[test]
    fn frames_split_on_newlines() {
        let mut r = io::BufReader::new(&b"alpha\nbeta\r\n"[..]);
        assert!(matches!(read_frame(&mut r).unwrap(), Frame::Line(l) if l == b"alpha"));
        assert!(matches!(read_frame(&mut r).unwrap(), Frame::Line(l) if l == b"beta"));
        assert!(matches!(read_frame(&mut r).unwrap(), Frame::Eof));
    }

    #[test]
    fn truncated_and_oversized_frames_are_classified() {
        let mut r = io::BufReader::new(&b"no newline"[..]);
        assert!(matches!(read_frame(&mut r).unwrap(), Frame::Truncated));

        let mut big = vec![b'x'; MAX_FRAME + 100];
        big.push(b'\n');
        big.extend_from_slice(b"after\n");
        let mut r = io::BufReader::new(&big[..]);
        assert!(matches!(read_frame(&mut r).unwrap(), Frame::Oversized));
        // The connection survives: the next frame reads cleanly.
        assert!(matches!(read_frame(&mut r).unwrap(), Frame::Line(l) if l == b"after"));
    }
}
