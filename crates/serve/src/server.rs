//! The pumpkind daemon proper: listeners, the worker pool, and drain.
//!
//! `std::net` only. Connection threads are thin: they parse frames,
//! answer the environment-free control methods (`ping`, `metrics`,
//! `shutdown`) inline, and hand everything else to a bounded work queue
//! as a [`Job`], then block until the worker's reply comes back over the
//! job's channel. A fixed pool of worker threads drains the queue; each
//! worker owns one long-lived [`Session`] with its own clone of the warm
//! environment (the kernel's `Env` is `Send` but not `Sync`, so
//! per-worker ownership is also the only sound sharing strategy). Because
//! sessions outlive connections, their configuration caches stay warm
//! across clients — the second connection asking for a recipe skips the
//! search procedure entirely.
//!
//! Admission control is two-layered and never queues unbounded work: a
//! connection beyond the session cap gets one [`code::BUSY`] reply and is
//! closed, and a request arriving while the work queue is full gets a
//! `busy` reply on its own id (the connection survives; clients retry).
//! A request's cancel token is created at *enqueue* time, so a
//! `deadline_ms` budget covers time spent waiting in the queue, not just
//! time on a worker.
//!
//! Shutdown is graceful: the connection that receives `shutdown` answers
//! it, flips the server-wide flag, closes the queue, and wakes the accept
//! loops by self-connecting; the loops stop accepting. Workers finish
//! every job already queued (closing the queue stops admission, not
//! delivery), idle connections are drained by half-closing their read
//! sides, and `std::thread::scope` joins every thread before
//! [`Server::run`] returns — a drain, not an abort.

use std::collections::{HashMap, VecDeque};
use std::io::{self, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use pumpkin_core::trace::serve_stats::{self, ServeStats};
use pumpkin_core::trace::{Event, EventKind, Metrics};
use pumpkin_core::CancelToken;
use pumpkin_kernel::env::Env;
use pumpkin_wire::Value;

use crate::proto::{self, code, Frame, Request};
use crate::session::{self, Control, Session};

/// A thunk that half-closes one connection's read side, unblocking a
/// connection thread waiting for its next frame without cutting off a
/// reply in flight.
type ReadCloser = Box<dyn Fn() + Send>;

/// A connection the daemon can serve: readable, writable, and drainable
/// (its blocked reads can be interrupted from another thread).
pub trait Conn: Read + Write {
    /// Returns a thunk that half-closes this connection's read side, or
    /// `None` when the transport cannot be cloned (such a connection
    /// only drains when the client closes it).
    fn read_closer(&self) -> Option<ReadCloser>;
}

impl Conn for TcpStream {
    fn read_closer(&self) -> Option<ReadCloser> {
        let clone = self.try_clone().ok()?;
        Some(Box::new(move || {
            let _ = clone.shutdown(Shutdown::Read);
        }))
    }
}

#[cfg(unix)]
impl Conn for UnixStream {
    fn read_closer(&self) -> Option<ReadCloser> {
        let clone = self.try_clone().ok()?;
        Some(Box::new(move || {
            let _ = clone.shutdown(Shutdown::Read);
        }))
    }
}

/// How a [`Server`] is assembled.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// TCP listen address (`127.0.0.1:0` picks a free port).
    pub listen: String,
    /// Optional additional Unix-domain listener (ignored off unix).
    pub unix: Option<PathBuf>,
    /// Per-request worker cap handed to each session's repairs.
    pub jobs: usize,
    /// Concurrent-connection cap; connections beyond it get one `busy`
    /// reply and are closed.
    pub max_sessions: usize,
    /// Worker threads (each owns a long-lived session and its warm
    /// configuration cache).
    pub workers: usize,
    /// Bound on queued-but-unstarted requests; a request past it gets a
    /// `busy` reply on its own id.
    pub queue_depth: usize,
    /// Root of the persistent cross-run lift cache, if enabled.
    pub cache_dir: Option<PathBuf>,
    /// Size budget for the persist cache in bytes; past it the least
    /// recently used entries are evicted. `None` means unbounded.
    pub cache_max_bytes: Option<u64>,
    /// Slow-request threshold: a request whose parse-to-reply-write wall
    /// time reaches this many milliseconds gets one structured
    /// `serve_slow` JSONL line in the log sink. `None` disables the log.
    pub slow_ms: Option<u64>,
    /// Slow-log sink path (append). `None` writes to stderr.
    pub log: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            listen: "127.0.0.1:0".into(),
            unix: None,
            jobs: 1,
            max_sessions: 8,
            workers: 2,
            queue_depth: 32,
            cache_dir: None,
            cache_max_bytes: None,
            slow_ms: None,
            log: None,
        }
    }
}

/// What a worker sends back for one job: the reply line plus the
/// lifecycle timings only the worker can measure.
struct WorkerReply {
    text: String,
    ctl: Control,
    /// Enqueue → worker pickup.
    queue_wait_ns: u64,
    /// Worker pickup → reply rendered.
    service_ns: u64,
}

/// One queued request: parsed frame, its (enqueue-time) cancel token,
/// its lifecycle id, and the channel its reply travels back on.
struct Job {
    request: Request,
    cancel: Option<CancelToken>,
    /// Server-wide lifecycle request id, assigned at frame parse.
    req_id: u64,
    /// When the job entered the queue (queue wait = pickup − this).
    enqueued: Instant,
    reply_tx: mpsc::Sender<WorkerReply>,
}

/// Why [`WorkQueue::push`] refused a job.
enum Refusal {
    /// The queue is at its depth bound.
    Full,
    /// The queue is closed (server draining).
    Closed,
}

/// A bounded MPMC queue of [`Job`]s: non-blocking bounded push, blocking
/// pop. Closing stops admission but not delivery — workers keep popping
/// until the backlog is drained, which is what makes shutdown graceful
/// for requests already accepted.
struct WorkQueue {
    depth: usize,
    state: Mutex<QueueState>,
    ready: Condvar,
}

struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

impl WorkQueue {
    fn new(depth: usize) -> WorkQueue {
        WorkQueue {
            depth: depth.max(1),
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Enqueues without blocking; hands the job back on refusal so the
    /// caller can answer on its id. On success, returns the queue depth
    /// *after* the push (for the high-water-mark gauge).
    fn push(&self, job: Job) -> Result<usize, (Box<Job>, Refusal)> {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if st.closed {
            return Err((Box::new(job), Refusal::Closed));
        }
        if st.jobs.len() >= self.depth {
            return Err((Box::new(job), Refusal::Full));
        }
        st.jobs.push_back(job);
        let depth = st.jobs.len();
        drop(st);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Blocks for the next job; `None` only once the queue is closed
    /// *and* drained.
    fn pop(&self) -> Option<Job> {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(job) = st.jobs.pop_front() {
                return Some(job);
            }
            if st.closed {
                return None;
            }
            st = self.ready.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn close(&self) {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .closed = true;
        self.ready.notify_all();
    }
}

/// State shared by accept loops, connection threads, and workers.
/// Deliberately holds no `Env` (it is not `Sync`); workers own their
/// clones.
struct Shared {
    jobs: usize,
    max_sessions: usize,
    workers: usize,
    cache_dir: Option<PathBuf>,
    cache_max_bytes: Option<u64>,
    metrics: Arc<Mutex<Metrics>>,
    /// Service stats: per-method latency/queue-wait histograms + gauges,
    /// shared with every worker session and read by the `stats` RPC.
    stats: Arc<ServeStats>,
    queue: WorkQueue,
    active: AtomicUsize,
    shutdown: AtomicBool,
    /// Wake targets for draining blocked accept loops.
    tcp_addr: SocketAddr,
    unix_path: Option<PathBuf>,
    /// Read-closers for every live connection, keyed by a connection id
    /// (each connection thread removes its own entry when it exits).
    conns: Mutex<HashMap<u64, ReadCloser>>,
    next_conn: AtomicU64,
    /// Server-wide lifecycle request ids, assigned at frame parse (the
    /// first accepted frame is req_id 1).
    next_req: AtomicU64,
    /// The daemon's monotonic epoch; slow-log event timestamps are
    /// offsets from it.
    epoch: Instant,
    /// Slow-request threshold in nanoseconds (`None`: slow log off).
    slow_ns: Option<u64>,
    /// The slow log's sink (`--log`, default stderr). One short JSONL
    /// line per offending request; the mutex is uncontended unless many
    /// requests are slow at once — and then log ordering is the point.
    slow_sink: Mutex<Box<dyn Write + Send>>,
}

impl Shared {
    /// Unblocks every accept loop (so it can observe the shutdown flag)
    /// and every idle connection (by half-closing its read side).
    fn wake(&self) {
        let _ = TcpStream::connect(self.tcp_addr);
        #[cfg(unix)]
        if let Some(p) = &self.unix_path {
            let _ = UnixStream::connect(p);
        }
        for closer in self
            .conns
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .values()
        {
            closer();
        }
    }

    /// Writes one `serve_slow` JSONL line for a request whose wall time
    /// crossed the `--slow-ms` threshold.
    fn log_slow(&self, t_ns: u64, total_ns: u64, timing: &ReqTiming) {
        let event = Event {
            t_ns,
            dur_ns: total_ns,
            worker: 0,
            kind: EventKind::ServeSlow {
                req_id: timing.req_id,
                method: timing.method.as_str().into(),
                queue_wait_ns: timing.queue_wait_ns.unwrap_or(0),
                service_ns: timing.service_ns,
                write_ns: timing.write_ns,
            },
        };
        serve_stats::inc(&self.stats.gauges.slow_logged);
        let mut sink = self
            .slow_sink
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let _ = writeln!(sink, "{}", event.to_json());
        let _ = sink.flush();
    }
}

/// Lifecycle timings for one answered frame, accumulated across the
/// connection thread (parse, write) and the worker (queue wait, service).
struct ReqTiming {
    /// The frame's lifecycle id (echoed as `req_id`).
    req_id: u64,
    /// The RPC method, for the per-method histograms.
    method: String,
    /// Frame parse time (the lifecycle's start).
    start: Instant,
    /// Enqueue → worker pickup; `None` for control methods answered
    /// inline, which never queue.
    queue_wait_ns: Option<u64>,
    /// Time spent computing the reply (inline or on a worker).
    service_ns: u64,
    /// Reply-write time, filled in by the connection loop.
    write_ns: u64,
}

/// A bound, not-yet-running daemon.
pub struct Server {
    listener: TcpListener,
    #[cfg(unix)]
    unix: Option<UnixListener>,
    base: Env,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listeners and builds the warm base environment (the
    /// standard library) once.
    ///
    /// # Errors
    ///
    /// Propagates socket binding failures.
    pub fn bind(cfg: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.listen)?;
        let tcp_addr = listener.local_addr()?;
        #[cfg(unix)]
        let unix = match &cfg.unix {
            Some(p) => {
                // A stale socket file from a previous run would fail the
                // bind; replacing it is the conventional daemon behavior.
                let _ = std::fs::remove_file(p);
                Some(UnixListener::bind(p)?)
            }
            None => None,
        };
        #[cfg(not(unix))]
        let _ = &cfg.unix;
        let slow_sink: Box<dyn Write + Send> = match &cfg.log {
            Some(path) => Box::new(
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)?,
            ),
            None => Box::new(io::stderr()),
        };
        Ok(Server {
            listener,
            #[cfg(unix)]
            unix,
            base: pumpkin_stdlib::std_env(),
            shared: Arc::new(Shared {
                jobs: cfg.jobs.max(1),
                max_sessions: cfg.max_sessions.max(1),
                workers: cfg.workers.max(1),
                cache_dir: cfg.cache_dir,
                cache_max_bytes: cfg.cache_max_bytes,
                metrics: Arc::new(Mutex::new(Metrics::new())),
                stats: Arc::new(ServeStats::new()),
                queue: WorkQueue::new(cfg.queue_depth),
                active: AtomicUsize::new(0),
                shutdown: AtomicBool::new(false),
                tcp_addr,
                unix_path: if cfg!(unix) { cfg.unix } else { None },
                conns: Mutex::new(HashMap::new()),
                next_conn: AtomicU64::new(0),
                next_req: AtomicU64::new(1),
                epoch: Instant::now(),
                slow_ns: cfg.slow_ms.map(|ms| ms.saturating_mul(1_000_000)),
                slow_sink: Mutex::new(slow_sink),
            }),
        })
    }

    /// The bound TCP address (useful after binding port 0).
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` failures.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until a client sends `shutdown`, then drains: stops
    /// accepting, lets workers finish the queued backlog, waits for every
    /// in-flight connection, and returns.
    ///
    /// # Errors
    ///
    /// Propagates fatal listener errors (per-connection errors only end
    /// that connection).
    pub fn run(self) -> io::Result<()> {
        let Server {
            listener,
            #[cfg(unix)]
            unix,
            base,
            shared,
        } = self;
        std::thread::scope(|s| {
            for _ in 0..shared.workers {
                let env = base.clone();
                let wshared = Arc::clone(&shared);
                s.spawn(move || worker_loop(env, &wshared));
            }
            #[cfg(unix)]
            if let Some(ul) = unix {
                let ushared = Arc::clone(&shared);
                s.spawn(move || {
                    accept_loop(s, || ul.accept().map(|(c, _)| c), &ushared);
                });
            }
            accept_loop(
                s,
                || {
                    listener.accept().map(|(c, _)| {
                        // Tiny request/reply frames: Nagle + delayed ACK
                        // would add ~40 ms per round trip.
                        let _ = c.set_nodelay(true);
                        c
                    })
                },
                &shared,
            );
        });
        if let Some(p) = &shared.unix_path {
            let _ = std::fs::remove_file(p);
        }
        Ok(())
    }
}

/// One worker: a long-lived session draining the queue until it closes.
/// The session (and its configuration cache) outlives every connection.
fn worker_loop(env: Env, shared: &Shared) {
    let mut session = Session::new(
        env,
        shared.jobs,
        shared.cache_dir.clone(),
        Arc::clone(&shared.metrics),
    )
    .cache_max_bytes(shared.cache_max_bytes)
    .serve_stats(Arc::clone(&shared.stats));
    while let Some(job) = shared.queue.pop() {
        let queue_wait_ns = job.enqueued.elapsed().as_nanos() as u64;
        serve_stats::inc(&shared.stats.gauges.workers_busy);
        let picked_up = Instant::now();
        let (text, ctl) =
            session.handle_request_traced(&job.request, job.cancel.as_ref(), job.req_id);
        let service_ns = picked_up.elapsed().as_nanos() as u64;
        serve_stats::dec(&shared.stats.gauges.workers_busy);
        // A connection that gave up (client vanished) just drops the
        // receiver; the work was already done either way.
        let _ = job.reply_tx.send(WorkerReply {
            text,
            ctl,
            queue_wait_ns,
            service_ns,
        });
    }
}

/// Accepts until the shutdown flag trips, spawning one connection thread
/// per admitted connection inside the caller's scope (so the scope's
/// exit is the drain barrier).
fn accept_loop<'scope, S>(
    scope: &'scope std::thread::Scope<'scope, '_>,
    mut accept: impl FnMut() -> io::Result<S>,
    shared: &Arc<Shared>,
) where
    S: Conn + Send + 'scope,
{
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let mut stream = match accept() {
            Ok(s) => s,
            Err(_) => continue,
        };
        if shared.shutdown.load(Ordering::Acquire) {
            // Likely the wake-up self-connect; anyone else racing the
            // drain gets told so.
            let _ = writeln!(
                stream,
                "{}",
                proto::err_reply(&Value::Null, code::SHUTTING_DOWN, "server is draining")
            );
            return;
        }
        if shared.active.fetch_add(1, Ordering::AcqRel) >= shared.max_sessions {
            shared.active.fetch_sub(1, Ordering::AcqRel);
            serve_stats::inc(&shared.stats.gauges.busy_session_cap);
            let _ = writeln!(
                stream,
                "{}",
                proto::err_reply_value_detail(
                    &Value::Null,
                    code::BUSY,
                    "session cap reached; retry later",
                    "session_cap",
                )
            );
            continue;
        }
        serve_stats::inc(&shared.stats.gauges.live_sessions);
        let conn_id = shared.next_conn.fetch_add(1, Ordering::AcqRel);
        if let Some(closer) = stream.read_closer() {
            shared
                .conns
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .insert(conn_id, closer);
            // A shutdown racing this insert may have already swept the
            // map; close the read side ourselves so the new connection
            // cannot outlive the drain (closing twice is harmless).
            if shared.shutdown.load(Ordering::Acquire) {
                if let Some(closer) = shared
                    .conns
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .get(&conn_id)
                {
                    closer();
                }
            }
        }
        let shared = Arc::clone(shared);
        scope.spawn(move || {
            let wants_shutdown = serve_connection(stream, conn_id, &shared);
            shared
                .conns
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .remove(&conn_id);
            shared.active.fetch_sub(1, Ordering::AcqRel);
            serve_stats::dec(&shared.stats.gauges.live_sessions);
            if wants_shutdown {
                shared.shutdown.store(true, Ordering::Release);
                shared.queue.close();
                shared.wake();
            }
        });
    }
}

/// Runs one connection's request loop; returns whether the client asked
/// the whole server to shut down. `conn_id` doubles as the stats shard
/// lane, so one connection's recording always lands in one shard.
fn serve_connection<S: Read + Write>(stream: S, conn_id: u64, shared: &Shared) -> bool {
    let mut reader = BufReader::new(stream);
    // Every accepted frame — malformed ones included — consumes one
    // server-wide lifecycle id, echoed to the client as `req_id`.
    let fresh_req_id = || shared.next_req.fetch_add(1, Ordering::AcqRel);
    loop {
        let (text, ctl, timing) = match proto::read_frame(&mut reader) {
            Err(_) | Ok(Frame::Eof) => return false,
            Ok(Frame::Oversized) => {
                let mut reply = proto::err_reply_value(
                    &Value::Null,
                    code::OVERSIZED,
                    &format!("frame exceeds {} bytes", proto::MAX_FRAME),
                );
                proto::stamp_req_id(&mut reply, fresh_req_id());
                (reply.to_string(), Control::Continue, None)
            }
            Ok(Frame::Truncated) => {
                // Best-effort: the read side is gone, but the client may
                // still be listening on its read half.
                let mut reply = proto::err_reply_value(
                    &Value::Null,
                    code::TRUNCATED,
                    "connection closed mid-frame",
                );
                proto::stamp_req_id(&mut reply, fresh_req_id());
                let _ = writeln!(reader.get_mut(), "{reply}");
                return false;
            }
            Ok(Frame::Line(bytes)) => match String::from_utf8(bytes) {
                Ok(line) if line.trim().is_empty() => continue,
                Ok(line) => handle_frame(&line, shared),
                Err(_) => {
                    let mut reply =
                        proto::err_reply_value(&Value::Null, code::PARSE, "frame is not UTF-8");
                    proto::stamp_req_id(&mut reply, fresh_req_id());
                    (reply.to_string(), Control::Continue, None)
                }
            },
        };
        // One write per reply — a separate newline write would sit in
        // its own packet behind the client's delayed ACK.
        let mut frame = text.into_bytes();
        frame.push(b'\n');
        let write_started = Instant::now();
        if reader.get_mut().write_all(&frame).is_err() {
            return false;
        }
        let _ = reader.get_mut().flush();
        if let Some(mut timing) = timing {
            timing.write_ns = write_started.elapsed().as_nanos() as u64;
            let total_ns = timing.start.elapsed().as_nanos() as u64;
            shared
                .stats
                .record(conn_id, &timing.method, total_ns, timing.queue_wait_ns);
            if shared.slow_ns.is_some_and(|thresh| total_ns >= thresh) {
                let t_ns = timing.start.duration_since(shared.epoch).as_nanos() as u64;
                shared.log_slow(t_ns, total_ns, &timing);
            }
        }
        if ctl == Control::Shutdown {
            return true;
        }
    }
}

/// One frame's journey: parse, answer control methods inline (they need
/// no environment and must stay responsive while the pool is saturated),
/// or enqueue a job and wait for its reply. The cancel token is created
/// *here*, so a request's deadline budget includes its time in the
/// queue. Returns the reply line, the connection control verdict, and —
/// for frames that named a method — the lifecycle timing for the
/// per-method histograms (the connection loop adds the write time).
fn handle_frame(line: &str, shared: &Shared) -> (String, Control, Option<ReqTiming>) {
    let start = Instant::now();
    let req_id = shared.next_req.fetch_add(1, Ordering::AcqRel);
    let req = match proto::parse_request(line) {
        Ok(r) => r,
        Err(msg) => {
            let mut reply = proto::err_reply_value(&Value::Null, code::PARSE, &msg);
            proto::stamp_req_id(&mut reply, req_id);
            return (reply.to_string(), Control::Continue, None);
        }
    };
    if let Some(res) =
        session::control_result(&req.method, &req.params, &shared.metrics, &shared.stats)
    {
        let (mut reply, ctl) = match res {
            Ok((result, ctl)) => (proto::ok_reply_value(&req.id, result), ctl),
            Err(e) => (e.reply(&req.id), Control::Continue),
        };
        proto::stamp_req_id(&mut reply, req_id);
        return (
            reply.to_string(),
            ctl,
            Some(ReqTiming {
                req_id,
                method: req.method,
                start,
                queue_wait_ns: None,
                service_ns: start.elapsed().as_nanos() as u64,
                write_ns: 0,
            }),
        );
    }
    let cancel = req
        .params
        .get("deadline_ms")
        .and_then(Value::as_u64)
        .map(|ms| CancelToken::with_deadline(Duration::from_millis(ms)));
    let method = req.method.clone();
    let (reply_tx, reply_rx) = mpsc::channel();
    let job = Job {
        request: req,
        cancel,
        req_id,
        enqueued: Instant::now(),
        reply_tx,
    };
    match shared.queue.push(job) {
        Ok(depth) => shared.stats.raise_queue_depth(depth as u64),
        Err((job, refusal)) => {
            let mut reply = match refusal {
                Refusal::Full => {
                    serve_stats::inc(&shared.stats.gauges.busy_queue_full);
                    proto::err_reply_value_detail(
                        &job.request.id,
                        code::BUSY,
                        "work queue is full; retry later",
                        "queue_full",
                    )
                }
                Refusal::Closed => proto::err_reply_value(
                    &job.request.id,
                    code::SHUTTING_DOWN,
                    "server is draining",
                ),
            };
            proto::stamp_req_id(&mut reply, req_id);
            return (reply.to_string(), Control::Continue, None);
        }
    }
    match reply_rx.recv() {
        Ok(wr) => (
            wr.text,
            wr.ctl,
            Some(ReqTiming {
                req_id,
                method,
                start,
                queue_wait_ns: Some(wr.queue_wait_ns),
                service_ns: wr.service_ns,
                write_ns: 0,
            }),
        ),
        Err(_) => {
            let mut reply = proto::err_reply_value(
                &Value::Null,
                code::REPAIR_FAILED,
                "worker exited before replying",
            );
            proto::stamp_req_id(&mut reply, req_id);
            (reply.to_string(), Control::Continue, None)
        }
    }
}
