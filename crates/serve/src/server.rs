//! The pumpkind daemon proper: listeners, the session pool, and drain.
//!
//! `std::net` only. One thread per connection, each owning a [`Session`]
//! with its own clone of the warm environment (the kernel's `Env` is
//! `Send` but not `Sync`, so this is also the only sound sharing
//! strategy). Admission control is a simple bounded counter: a
//! connection beyond the cap gets one [`code::BUSY`] reply and is
//! closed — clients retry; the daemon never queues unbounded work.
//!
//! Shutdown is graceful: the session that receives `shutdown` answers
//! it, flips the server-wide flag, and wakes the accept loops by
//! self-connecting; the loops stop accepting. Idle sessions are drained
//! by half-closing the read side of every open connection — a session
//! mid-request finishes and still delivers its reply (the write half
//! stays open), a session blocked waiting for the next frame sees EOF
//! and exits. `std::thread::scope` then joins every session thread
//! before [`Server::run`] returns — a drain, not an abort.

use std::collections::HashMap;
use std::io::{self, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use pumpkin_core::trace::Metrics;
use pumpkin_kernel::env::Env;
use pumpkin_wire::Value;

use crate::proto::{self, code, Frame};
use crate::session::{Control, Session};

/// A thunk that half-closes one connection's read side, unblocking a
/// session waiting for its next frame without cutting off a reply in
/// flight.
type ReadCloser = Box<dyn Fn() + Send>;

/// A connection the daemon can serve: readable, writable, and drainable
/// (its blocked reads can be interrupted from another thread).
pub trait Conn: Read + Write {
    /// Returns a thunk that half-closes this connection's read side, or
    /// `None` when the transport cannot be cloned (such a connection
    /// only drains when the client closes it).
    fn read_closer(&self) -> Option<ReadCloser>;
}

impl Conn for TcpStream {
    fn read_closer(&self) -> Option<ReadCloser> {
        let clone = self.try_clone().ok()?;
        Some(Box::new(move || {
            let _ = clone.shutdown(Shutdown::Read);
        }))
    }
}

#[cfg(unix)]
impl Conn for UnixStream {
    fn read_closer(&self) -> Option<ReadCloser> {
        let clone = self.try_clone().ok()?;
        Some(Box::new(move || {
            let _ = clone.shutdown(Shutdown::Read);
        }))
    }
}

/// How a [`Server`] is assembled.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// TCP listen address (`127.0.0.1:0` picks a free port).
    pub listen: String,
    /// Optional additional Unix-domain listener (ignored off unix).
    pub unix: Option<PathBuf>,
    /// Per-request worker cap handed to each session's repairs.
    pub jobs: usize,
    /// Concurrent-session cap; connections beyond it get a `busy` reply.
    pub max_sessions: usize,
    /// Root of the persistent cross-run lift cache, if enabled.
    pub cache_dir: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            listen: "127.0.0.1:0".into(),
            unix: None,
            jobs: 1,
            max_sessions: 8,
            cache_dir: None,
        }
    }
}

/// State shared by accept loops and session threads. Deliberately holds
/// no `Env` (it is not `Sync`); each accept loop keeps its own warm copy
/// and clones it per connection.
struct Shared {
    jobs: usize,
    max_sessions: usize,
    cache_dir: Option<PathBuf>,
    metrics: Arc<Mutex<Metrics>>,
    active: AtomicUsize,
    shutdown: AtomicBool,
    /// Wake targets for draining blocked accept loops.
    tcp_addr: SocketAddr,
    unix_path: Option<PathBuf>,
    /// Read-closers for every live connection, keyed by a connection id
    /// (each session removes its own entry when it exits).
    conns: Mutex<HashMap<u64, ReadCloser>>,
    next_conn: AtomicU64,
}

impl Shared {
    /// Unblocks every accept loop (so it can observe the shutdown flag)
    /// and every idle session (by half-closing its read side).
    fn wake(&self) {
        let _ = TcpStream::connect(self.tcp_addr);
        #[cfg(unix)]
        if let Some(p) = &self.unix_path {
            let _ = UnixStream::connect(p);
        }
        for closer in self.conns.lock().expect("conns lock").values() {
            closer();
        }
    }
}

/// A bound, not-yet-running daemon.
pub struct Server {
    listener: TcpListener,
    #[cfg(unix)]
    unix: Option<UnixListener>,
    base: Env,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listeners and builds the warm base environment (the
    /// standard library) once.
    ///
    /// # Errors
    ///
    /// Propagates socket binding failures.
    pub fn bind(cfg: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.listen)?;
        let tcp_addr = listener.local_addr()?;
        #[cfg(unix)]
        let unix = match &cfg.unix {
            Some(p) => {
                // A stale socket file from a previous run would fail the
                // bind; replacing it is the conventional daemon behavior.
                let _ = std::fs::remove_file(p);
                Some(UnixListener::bind(p)?)
            }
            None => None,
        };
        #[cfg(not(unix))]
        let _ = &cfg.unix;
        Ok(Server {
            listener,
            #[cfg(unix)]
            unix,
            base: pumpkin_stdlib::std_env(),
            shared: Arc::new(Shared {
                jobs: cfg.jobs.max(1),
                max_sessions: cfg.max_sessions.max(1),
                cache_dir: cfg.cache_dir,
                metrics: Arc::new(Mutex::new(Metrics::new())),
                active: AtomicUsize::new(0),
                shutdown: AtomicBool::new(false),
                tcp_addr,
                unix_path: if cfg!(unix) { cfg.unix } else { None },
                conns: Mutex::new(HashMap::new()),
                next_conn: AtomicU64::new(0),
            }),
        })
    }

    /// The bound TCP address (useful after binding port 0).
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` failures.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until a client sends `shutdown`, then drains: stops
    /// accepting, waits for every in-flight session, and returns.
    ///
    /// # Errors
    ///
    /// Propagates fatal listener errors (per-connection errors only end
    /// that connection).
    pub fn run(self) -> io::Result<()> {
        let Server {
            listener,
            #[cfg(unix)]
            unix,
            base,
            shared,
        } = self;
        std::thread::scope(|s| {
            #[cfg(unix)]
            if let Some(ul) = unix {
                let ubase = base.clone();
                let ushared = Arc::clone(&shared);
                s.spawn(move || {
                    accept_loop(s, || ul.accept().map(|(c, _)| c), &ubase, &ushared);
                });
            }
            accept_loop(s, || listener.accept().map(|(c, _)| c), &base, &shared);
        });
        if let Some(p) = &shared.unix_path {
            let _ = std::fs::remove_file(p);
        }
        Ok(())
    }
}

/// Accepts until the shutdown flag trips, spawning one session thread
/// per admitted connection inside the caller's scope (so the scope's
/// exit is the drain barrier).
fn accept_loop<'scope, S>(
    scope: &'scope std::thread::Scope<'scope, '_>,
    mut accept: impl FnMut() -> io::Result<S>,
    base: &Env,
    shared: &Arc<Shared>,
) where
    S: Conn + Send + 'scope,
{
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let mut stream = match accept() {
            Ok(s) => s,
            Err(_) => continue,
        };
        if shared.shutdown.load(Ordering::Acquire) {
            // Likely the wake-up self-connect; anyone else racing the
            // drain gets told so.
            let _ = writeln!(
                stream,
                "{}",
                proto::err_reply(&Value::Null, code::SHUTTING_DOWN, "server is draining")
            );
            return;
        }
        if shared.active.fetch_add(1, Ordering::AcqRel) >= shared.max_sessions {
            shared.active.fetch_sub(1, Ordering::AcqRel);
            let _ = writeln!(
                stream,
                "{}",
                proto::err_reply(&Value::Null, code::BUSY, "session cap reached; retry later")
            );
            continue;
        }
        let conn_id = shared.next_conn.fetch_add(1, Ordering::AcqRel);
        if let Some(closer) = stream.read_closer() {
            shared
                .conns
                .lock()
                .expect("conns lock")
                .insert(conn_id, closer);
            // A shutdown racing this insert may have already swept the
            // map; close the read side ourselves so the new session
            // cannot outlive the drain (closing twice is harmless).
            if shared.shutdown.load(Ordering::Acquire) {
                if let Some(closer) = shared.conns.lock().expect("conns lock").get(&conn_id) {
                    closer();
                }
            }
        }
        let env = base.clone();
        let shared = Arc::clone(shared);
        scope.spawn(move || {
            let wants_shutdown = serve_connection(stream, env, &shared);
            shared.conns.lock().expect("conns lock").remove(&conn_id);
            shared.active.fetch_sub(1, Ordering::AcqRel);
            if wants_shutdown {
                shared.shutdown.store(true, Ordering::Release);
                shared.wake();
            }
        });
    }
}

/// Runs one connection's request loop; returns whether the client asked
/// the whole server to shut down.
fn serve_connection<S: Read + Write>(stream: S, env: Env, shared: &Shared) -> bool {
    let mut session = Session::new(
        env,
        shared.jobs,
        shared.cache_dir.clone(),
        Arc::clone(&shared.metrics),
    );
    let mut reader = BufReader::new(stream);
    loop {
        let reply = match proto::read_frame(&mut reader) {
            Err(_) | Ok(Frame::Eof) => return false,
            Ok(Frame::Oversized) => (
                proto::err_reply(
                    &Value::Null,
                    code::OVERSIZED,
                    &format!("frame exceeds {} bytes", proto::MAX_FRAME),
                ),
                Control::Continue,
            ),
            Ok(Frame::Truncated) => {
                // Best-effort: the read side is gone, but the client may
                // still be listening on its read half.
                let _ = writeln!(
                    reader.get_mut(),
                    "{}",
                    proto::err_reply(&Value::Null, code::TRUNCATED, "connection closed mid-frame")
                );
                return false;
            }
            Ok(Frame::Line(bytes)) => match String::from_utf8(bytes) {
                Ok(line) if line.trim().is_empty() => continue,
                Ok(line) => session.handle_line(&line),
                Err(_) => (
                    proto::err_reply(&Value::Null, code::PARSE, "frame is not UTF-8"),
                    Control::Continue,
                ),
            },
        };
        let (text, ctl) = reply;
        if writeln!(reader.get_mut(), "{text}").is_err() {
            return false;
        }
        let _ = reader.get_mut().flush();
        if ctl == Control::Shutdown {
            return true;
        }
    }
}
