//! # pumpkin-serve
//!
//! `pumpkind`: a persistent repair service over the Pumpkin Pi engine.
//!
//! The paper's workflow is batch — configure an equivalence, repair a
//! module, exit. This crate keeps the expensive parts resident: the
//! standard-library environment is built once and cloned (cheaply —
//! terms are shared) per connection, configured equivalences are cached
//! per session, and repaired declarations persist across *processes*
//! through the content-addressed lift cache (`pumpkin_core::persist`).
//!
//! The protocol is newline-delimited JSON-RPC over TCP (and optionally a
//! Unix socket): see [`proto`] for framing and error codes, [`Session`]
//! for the method set (`ping`, `repair`, `repair_module`, `repair_batch`,
//! `explain`, `trace_report`, `eval`, `metrics`, `stats`, `shutdown`),
//! and [`Server`] for the daemon. The server is a bounded worker pool:
//! connection threads parse frames and feed a bounded work queue, and a
//! fixed set of workers — each owning a long-lived session whose
//! configuration cache survives across connections — drains it. Busy
//! backpressure is per-request (`busy` when the queue is full) and
//! per-connection (session cap), each refusal naming its layer in the
//! error's `data` detail, and shutdown drains the queued backlog before
//! joining. Everything is `std`-only.
//!
//! Every accepted frame gets a lifecycle request id (echoed as `req_id`
//! in the reply) and per-stage monotonic timestamps; the server layer
//! records per-method latency/queue-wait histograms into a sharded
//! [`pumpkin_core::trace::serve_stats`] registry that the `stats` RPC
//! snapshots (DESIGN.md §17). `ServerConfig::slow_ms` turns on a
//! structured JSONL slow-request log with the per-stage breakdown.
//!
//! Replies are deterministic by construction — each request runs against
//! a throwaway clone of the configured environment — and requests can
//! additionally ask for `"deterministic": true` to zero the wall-clock
//! fields, which makes daemon output byte-identical to one-shot runs
//! (the golden-transcript and concurrency tests rely on this).

pub mod client;
pub mod proto;
pub mod server;
pub mod session;

pub use client::{Client, ClientError};
pub use server::{Server, ServerConfig};
pub use session::{Control, Session};
