//! Per-worker request handling.
//!
//! A [`Session`] owns a clone of the daemon's warm environment and
//! serves requests against *throwaway* copies of it: every repair
//! request re-clones the configured snapshot, so replies are pure
//! functions of the request (plus the persistent cache, which only
//! changes *how fast* a reply is computed, never its content). This is
//! what makes the daemon's replies byte-identical to one-shot runs and
//! lets concurrent workers proceed without sharing mutable kernel
//! state.
//!
//! The one piece of cross-request state inside a session is the
//! *configuration cache*: running a search procedure (`configure`) is
//! expensive, so the session keeps up to [`MAX_CONFIGS`] recent `(spec
//! digest, configured environment, lifting)` entries and reuses them
//! while clients keep asking for the same recipes. Under the worker-pool
//! server each worker owns one long-lived session, so this warm state
//! survives across connections instead of dying with each one.

use std::path::PathBuf;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

use pumpkin_core::trace::serve_stats::{self, ServeStats, STATS_SCHEMA};
use pumpkin_core::trace::{Histogram, Metrics};
use pumpkin_core::wire::{term_from_envelope, term_to_envelope, LiftSpec, TermDigest, WireError};
use pumpkin_core::{
    AutoPolicy, CancelToken, DigestMap, LiftState, Lifting, NameMap, RepairError, RepairReport,
    Repairer,
};
use pumpkin_kernel::env::Env;
use pumpkin_kernel::name::GlobalName;
use pumpkin_wire::Value;

use crate::proto::{self, code, Request, PROTO_VERSION};

/// What the connection loop should do after writing the reply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Control {
    /// Keep reading frames.
    Continue,
    /// The client asked the server to drain; close after this reply.
    Shutdown,
}

/// Upper bound on cached configurations per session. Eight recipes cover
/// every lifting kind in the tree with room to spare; beyond that the
/// least recently used entry (and its configured environment) is dropped.
const MAX_CONFIGS: usize = 8;

/// Every method the daemon serves, announced by `hello` so clients can
/// negotiate before committing to a workload.
pub const METHODS: &[&str] = &[
    "hello",
    "ping",
    "metrics",
    "stats",
    "shutdown",
    "repair",
    "repair_module",
    "repair_batch",
    "repair_auto",
    "explain",
    "trace_report",
    "eval",
];

/// One cached configuration, keyed by its spec digest.
struct Configured {
    digest: TermDigest,
    /// The warm environment *after* the search procedure ran (holds the
    /// equivalence constants); cloned per request.
    env: Env,
    lifting: Lifting,
    /// Source-digest snapshot from the last repair under this
    /// configuration; `"incremental": true` requests diff against it and
    /// replay unchanged constants from the persist cache.
    snapshot: Option<DigestMap>,
}

/// One worker's worth of request-handling state.
pub struct Session {
    base: Env,
    jobs: usize,
    cache_dir: Option<PathBuf>,
    /// Size budget for the persist cache (None = unbounded).
    cache_max_bytes: Option<u64>,
    /// Most-recently-used first, at most [`MAX_CONFIGS`] entries.
    configured: Vec<Configured>,
    /// Server-wide cumulative metrics registry; every repair-family
    /// request merges its event-derived counters here.
    metrics: Arc<Mutex<Metrics>>,
    /// Server-wide service stats (per-method histograms + gauges). The
    /// session records only deterministic gauge traffic (config-cache,
    /// persist-cache, incremental totals); latency recording lives in the
    /// server's connection threads. Standalone sessions get a private
    /// registry.
    stats: Arc<ServeStats>,
    /// Lifecycle id for the next request this session fronts itself
    /// (standalone use; the daemon stamps ids server-side).
    next_req_id: u64,
}

/// A structured method error: the machine-readable code, the human
/// message, and an optional machine-readable `data` payload (a
/// `repair_auto` exhaustion carries its full accounting object there).
/// Most sites build the data-free form through the tuple conversion.
pub(crate) struct MethodError {
    code: &'static str,
    message: String,
    data: Option<Value>,
}

impl MethodError {
    /// Renders the error reply envelope for `id`.
    pub(crate) fn reply(&self, id: &Value) -> Value {
        match &self.data {
            Some(d) => proto::err_reply_value_data(id, self.code, &self.message, d.clone()),
            None => proto::err_reply_value(id, self.code, &self.message),
        }
    }
}

impl From<(&'static str, String)> for MethodError {
    fn from((code, message): (&'static str, String)) -> MethodError {
        MethodError {
            code,
            message,
            data: None,
        }
    }
}

pub(crate) type MethodResult = Result<(Value, Control), MethodError>;

/// Handles the environment-free control methods — `ping`, `metrics`,
/// `shutdown` — or returns `None` for anything else. Shared between
/// [`Session::dispatch`] and the server's connection threads, which
/// answer these inline so they stay responsive (and byte-identical)
/// while the worker pool is saturated.
pub(crate) fn control_result(
    method: &str,
    params: &Value,
    metrics: &Arc<Mutex<Metrics>>,
    stats: &ServeStats,
) -> Option<MethodResult> {
    match method {
        "ping" => Some(Ok((
            Value::Obj(vec![
                ("pong".into(), Value::Bool(true)),
                ("proto".into(), Value::UInt(u64::from(PROTO_VERSION))),
                ("wire".into(), Value::str(pumpkin_wire::WIRE_TAG)),
            ]),
            Control::Continue,
        ))),
        "hello" => Some(Ok((
            Value::Obj(vec![
                (
                    "proto_version".into(),
                    Value::UInt(u64::from(PROTO_VERSION)),
                ),
                ("wire_version".into(), Value::str(pumpkin_wire::WIRE_TAG)),
                (
                    "methods".into(),
                    Value::Arr(METHODS.iter().map(|m| Value::str(*m)).collect()),
                ),
                (
                    "limits".into(),
                    Value::Obj(vec![
                        (
                            "max_frame_bytes".into(),
                            Value::UInt(proto::MAX_FRAME as u64),
                        ),
                        (
                            "max_payload_bytes".into(),
                            Value::UInt(pumpkin_wire::term::MAX_PAYLOAD as u64),
                        ),
                    ]),
                ),
            ]),
            Control::Continue,
        ))),
        "stats" => Some(Ok((stats_result(stats), Control::Continue))),
        "metrics" => {
            let canonical = flag(params, "canonical");
            // Poison recovery: a panicking worker must not take every
            // connection thread's `metrics`/`stats` RPC down with it.
            let m = metrics.lock().unwrap_or_else(PoisonError::into_inner);
            let text = if canonical {
                m.canonicalize().to_text()
            } else {
                m.to_text()
            };
            Some(Ok((
                Value::Obj(vec![("text".into(), Value::str(&text))]),
                Control::Continue,
            )))
        }
        "shutdown" => Some(Ok((
            Value::Obj(vec![("draining".into(), Value::Bool(true))]),
            Control::Shutdown,
        ))),
        _ => None,
    }
}

/// Renders one histogram as the `stats` reply's summary object. Empty
/// histograms report zeros (not nulls), so scrapers read one shape.
fn histogram_value(h: &Histogram) -> Value {
    Value::Obj(vec![
        ("count".into(), Value::UInt(h.count())),
        (
            "mean_ns".into(),
            Value::UInt(h.mean().unwrap_or(0.0) as u64),
        ),
        ("p50_ns".into(), Value::UInt(h.quantile(0.5).unwrap_or(0))),
        ("p95_ns".into(), Value::UInt(h.quantile(0.95).unwrap_or(0))),
        ("p99_ns".into(), Value::UInt(h.quantile(0.99).unwrap_or(0))),
        ("max_ns".into(), Value::UInt(h.max().unwrap_or(0))),
    ])
}

/// The `stats` RPC result: a versioned snapshot of the service registry —
/// per-method latency and queue-wait summaries plus the gauge block.
fn stats_result(stats: &ServeStats) -> Value {
    let snap = stats.snapshot();
    let methods: Vec<(String, Value)> = snap
        .methods
        .iter()
        .map(|(name, m)| {
            (
                name.clone(),
                Value::Obj(vec![
                    ("count".into(), Value::UInt(m.latency.count())),
                    ("latency".into(), histogram_value(&m.latency)),
                    ("queue_wait".into(), histogram_value(&m.queue_wait)),
                ]),
            )
        })
        .collect();
    // Whole-population summaries (every method merged) — what loadgen's
    // `--server-stats` rows and capacity planning read; a per-method
    // quantile is not comparable to a client-side all-requests quantile.
    let mut total = serve_stats::MethodStats::default();
    for m in snap.methods.values() {
        total.merge(m);
    }
    let gauges: Vec<(String, Value)> = snap
        .gauges
        .iter()
        .map(|&(name, v)| (name.to_string(), Value::UInt(v)))
        .collect();
    Value::Obj(vec![
        ("schema".into(), Value::str(STATS_SCHEMA)),
        ("methods".into(), Value::Obj(methods)),
        (
            "total".into(),
            Value::Obj(vec![
                ("latency".into(), histogram_value(&total.latency)),
                ("queue_wait".into(), histogram_value(&total.queue_wait)),
            ]),
        ),
        ("gauges".into(), Value::Obj(gauges)),
    ])
}

impl Session {
    /// A session over a (cloned, warm) base environment. `jobs` is the
    /// per-request worker cap; `cache_dir` enables the persistent lift
    /// cache; `metrics` is the server-wide registry shared by every
    /// session (pass a fresh one for standalone use).
    pub fn new(
        base: Env,
        jobs: usize,
        cache_dir: Option<PathBuf>,
        metrics: Arc<Mutex<Metrics>>,
    ) -> Session {
        Session {
            base,
            jobs: jobs.max(1),
            cache_dir,
            cache_max_bytes: None,
            configured: Vec::new(),
            metrics,
            stats: Arc::new(ServeStats::new()),
            next_req_id: 0,
        }
    }

    /// Caps the persist cache's on-disk size (oldest entries are evicted
    /// past the budget). `None` — the default — means unbounded.
    #[must_use]
    pub fn cache_max_bytes(mut self, max: Option<u64>) -> Session {
        self.cache_max_bytes = max;
        self
    }

    /// Shares the server-wide service-stats registry (the daemon passes
    /// its own so every worker's gauge traffic lands in one place; the
    /// default is a private registry for standalone sessions).
    #[must_use]
    pub fn serve_stats(mut self, stats: Arc<ServeStats>) -> Session {
        self.stats = stats;
        self
    }

    /// The next lifecycle request id for a request this session fronts
    /// itself (1-based, deterministic per session — the golden transcript
    /// relies on this).
    fn next_req_id(&mut self) -> u64 {
        self.next_req_id += 1;
        self.next_req_id
    }

    /// Handles one frame: parses, dispatches, and renders the reply line
    /// (without trailing newline). Never panics on malformed input —
    /// errors become structured replies and the connection stays open.
    /// Every frame — parse failures included — consumes one lifecycle
    /// request id, echoed as `"req_id"` in the reply.
    pub fn handle_line(&mut self, line: &str) -> (String, Control) {
        let req_id = self.next_req_id();
        match proto::parse_request(line) {
            Ok(req) => self.handle_request_traced(&req, None, req_id),
            Err(msg) => {
                let mut reply = proto::err_reply_value(&Value::Null, code::PARSE, &msg);
                proto::stamp_req_id(&mut reply, req_id);
                (reply.to_string(), Control::Continue)
            }
        }
    }

    /// Handles an already-parsed request, optionally under an externally
    /// owned cancel token. The worker pool creates the token at enqueue
    /// time (so a request's deadline budget covers its time in the
    /// queue); standalone callers pass `None` and per-request
    /// `deadline_ms` params behave as before. The reply bytes are
    /// identical either way — the token only decides *when* a run is
    /// cancelled, never what a completed run reports. The `req_id` stamp
    /// comes from this session's own counter; the daemon uses
    /// [`Session::handle_request_traced`] to stamp its server-wide id.
    pub fn handle_request(
        &mut self,
        req: &Request,
        cancel: Option<&CancelToken>,
    ) -> (String, Control) {
        let req_id = self.next_req_id();
        self.handle_request_traced(req, cancel, req_id)
    }

    /// [`Session::handle_request`] with an externally assigned lifecycle
    /// request id (the daemon assigns ids at frame parse, server-wide,
    /// so `req_id` orders requests across connections).
    pub fn handle_request_traced(
        &mut self,
        req: &Request,
        cancel: Option<&CancelToken>,
        req_id: u64,
    ) -> (String, Control) {
        let (mut reply, ctl) = match self.dispatch(req, cancel) {
            Ok((result, ctl)) => (proto::ok_reply_value(&req.id, result), ctl),
            Err(e) => (e.reply(&req.id), Control::Continue),
        };
        proto::stamp_req_id(&mut reply, req_id);
        (reply.to_string(), ctl)
    }

    fn dispatch(&mut self, req: &Request, cancel: Option<&CancelToken>) -> MethodResult {
        match req.method.as_str() {
            "repair" => self.repair(&req.params, true, cancel),
            "repair_module" => self.repair(&req.params, false, cancel),
            "repair_batch" => self.repair_batch(&req.params, cancel),
            "repair_auto" => self.repair_auto(&req.params, cancel),
            "explain" => self.explain(&req.params, cancel),
            "trace_report" => self.trace_report(&req.params, cancel),
            "eval" => self.eval(&req.params),
            other => control_result(other, &req.params, &self.metrics, &self.stats).unwrap_or_else(
                || Err((code::UNKNOWN_METHOD, format!("unknown method `{other}`")).into()),
            ),
        }
    }

    /// `repair` (single constant) and `repair_module` (explicit list).
    fn repair(
        &mut self,
        params: &Value,
        single: bool,
        cancel: Option<&CancelToken>,
    ) -> MethodResult {
        let names = request_names(params, single)?;
        let deterministic = flag(params, "deterministic");
        let (report, _env) = self.run_repairer(params, &names, false, cancel)?;
        let mut wire = report.to_wire();
        if deterministic {
            wire.wall_ns = 0;
        }
        let mut fields = vec![("report".into(), wire.to_value())];
        if single {
            let to = report
                .renamed(&names[0])
                .map(|n| Value::str(n.as_str()))
                .unwrap_or(Value::Null);
            fields.insert(0, ("to".into(), to));
            fields.insert(0, ("from".into(), Value::str(&names[0])));
        }
        Ok((Value::Obj(fields), Control::Continue))
    }

    /// `repair_batch`: several independent repair items behind one frame
    /// and one configuration. Params: a shared `lifting` spec, plus a
    /// `batch` array whose items each carry `name` (single-constant) or
    /// `names` (module) and any per-item flags a `repair`/`repair_module`
    /// request would take. The reply's `results` array holds, per item,
    /// *exactly* the reply object the equivalent standalone request with
    /// `"id": null` would have produced — batching amortizes framing and
    /// configuration, never changes bytes.
    ///
    /// A batch-level `deadline_ms` (or the pool's external token) budgets
    /// the whole batch through one shared token: once it expires, every
    /// remaining item reports a `deadline` error. Per-item `deadline_ms`
    /// applies only when no batch-level budget is set.
    fn repair_batch(&mut self, params: &Value, external: Option<&CancelToken>) -> MethodResult {
        let items = params.get("batch").and_then(Value::as_arr).ok_or_else(|| {
            (
                code::BAD_PARAMS,
                "repair_batch needs a `batch` array".into(),
            )
        })?;
        if items.is_empty() {
            return Err((code::BAD_PARAMS, "`batch` must not be empty".to_string()).into());
        }
        let lifting = params.get("lifting").cloned();
        let deadline_token = match external {
            Some(_) => None,
            None => params
                .get("deadline_ms")
                .and_then(Value::as_u64)
                .map(|ms| CancelToken::with_deadline(Duration::from_millis(ms))),
        };
        let token: Option<&CancelToken> = external.or(deadline_token.as_ref());
        let mut results = Vec::with_capacity(items.len());
        for item in items {
            let Some(fields) = item.as_obj() else {
                results.push(proto::err_reply_value(
                    &Value::Null,
                    code::BAD_PARAMS,
                    "batch items must be objects",
                ));
                continue;
            };
            // The item's own fields, with the shared lifting spec merged
            // in (an item-level `lifting` wins).
            let mut merged = fields.to_vec();
            if item.get("lifting").is_none() {
                if let Some(l) = &lifting {
                    merged.push(("lifting".into(), l.clone()));
                }
            }
            let item_params = Value::Obj(merged);
            let single = item.get("name").is_some();
            results.push(match self.repair(&item_params, single, token) {
                Ok((v, _)) => proto::ok_reply_value(&Value::Null, v),
                Err(e) => e.reply(&Value::Null),
            });
        }
        Ok((
            Value::Obj(vec![("results".into(), Value::Arr(results))]),
            Control::Continue,
        ))
    }

    /// `repair_auto`: the automatic candidate search (DESIGN.md §18).
    /// Params: a swap-kind `lifting` spec naming the endpoints and the
    /// renaming policy, plus `names` (work list) and/or `source`
    /// (vernacular loaded into each candidate's trial environment), and
    /// the policy knobs `budget`, `failure_cache`, `minimize`, `seed`,
    /// `deterministic`. Success replies carry the ordinary report with the
    /// `auto` accounting block; exhaustion replies are
    /// [`code::AUTO_EXHAUSTED`] errors whose `data` embeds the full
    /// accounting (reproducer included); a deadline that fires mid-search
    /// is a [`code::DEADLINE`] error whose `data` holds the partial
    /// accounting gathered so far.
    fn repair_auto(&mut self, params: &Value, external: Option<&CancelToken>) -> MethodResult {
        let spec_value = params.get("lifting").ok_or_else(|| {
            (
                code::BAD_PARAMS,
                "request needs a `lifting` spec".to_string(),
            )
        })?;
        let spec =
            LiftSpec::from_value(spec_value).map_err(|e| (code::BAD_PARAMS, e.to_string()))?;
        if spec.kind != "swap" {
            return Err((
                code::BAD_PARAMS,
                format!(
                    "repair_auto searches swap configurations, not `{}`",
                    spec.kind
                ),
            )
                .into());
        }
        let names: Vec<String> = match params.get("names") {
            None => Vec::new(),
            Some(v) => v
                .as_arr()
                .and_then(|arr| {
                    arr.iter()
                        .map(|v| v.as_str().map(str::to_string))
                        .collect::<Option<_>>()
                })
                .ok_or_else(|| {
                    (
                        code::BAD_PARAMS,
                        "`names` must be a string array".to_string(),
                    )
                })?,
        };
        let source = params.get("source").and_then(Value::as_str);
        if names.is_empty() && source.is_none() {
            return Err((
                code::BAD_PARAMS,
                "repair_auto needs `names` and/or `source`".to_string(),
            )
                .into());
        }
        let deterministic = flag(params, "deterministic");
        let policy = AutoPolicy {
            budget: params
                .get("budget")
                .and_then(Value::as_u64)
                .map(|b| b as usize),
            use_failure_cache: params
                .get("failure_cache")
                .and_then(Value::as_bool)
                .unwrap_or(true),
            minimize: params
                .get("minimize")
                .and_then(Value::as_bool)
                .unwrap_or(true),
            seed: params.get("seed").and_then(Value::as_u64).unwrap_or(0),
            deterministic,
        };
        let mut rename = NameMap::default();
        for (f, t) in &spec.rename {
            rename = rename.with_rule(f.as_str(), t.as_str());
        }
        let jobs = params
            .get("jobs")
            .and_then(Value::as_u64)
            .map_or(self.jobs, |j| (j as usize).max(1));
        let mut driver = Repairer::auto(policy)
            .types(spec.a.as_str(), spec.b.as_str(), rename)
            .jobs(jobs)
            .trace(true);
        if let Some(src) = source {
            driver = driver.source(src);
        }
        if let Some(tok) = external {
            driver = driver.cancel(tok.clone());
        } else if let Some(ms) = params.get("deadline_ms").and_then(Value::as_u64) {
            driver = driver.deadline(Duration::from_millis(ms));
        }
        if let Some(dir) = &self.cache_dir {
            driver = driver
                .persist_cache(dir)
                .cache_max_bytes(self.cache_max_bytes);
        }
        let mut env = self.base.clone();
        let borrowed: Vec<&str> = names.iter().map(String::as_str).collect();
        let (auto, result) = driver.run(&mut env, &borrowed);
        let g = &self.stats.gauges;
        serve_stats::add(&g.auto_candidates_tried, auto.tried as u64);
        serve_stats::add(&g.auto_failure_cache_hits, auto.skipped_cache as u64);
        match result {
            Ok(report) => {
                self.metrics
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .merge(&report.metrics);
                let mut wire = report.to_wire();
                if deterministic {
                    wire.wall_ns = 0;
                }
                Ok((
                    Value::Obj(vec![("report".into(), wire.to_value())]),
                    Control::Continue,
                ))
            }
            Err(e) => {
                let code = if !auto.complete {
                    code::DEADLINE
                } else if matches!(e, RepairError::AutoExhausted { .. }) {
                    code::AUTO_EXHAUSTED
                } else {
                    return Err((code::REPAIR_FAILED, e.to_string()).into());
                };
                Err(MethodError {
                    code,
                    message: e.to_string(),
                    data: Some(auto.to_wire().to_value()),
                })
            }
        }
    }

    /// `explain`: repair with provenance, then render the paper-style
    /// explanation of where and why the named constant changed.
    fn explain(&mut self, params: &Value, cancel: Option<&CancelToken>) -> MethodResult {
        let names = request_names(params, true)?;
        let (report, env) = self.run_repairer(params, &names, true, cancel)?;
        let name = names[0].as_str();
        let p = report.provenance_for(name).ok_or_else(|| {
            (
                code::BAD_PARAMS,
                format!("no provenance recorded for `{name}`"),
            )
        })?;
        let sites: Vec<pumpkin_lang::DiffSite> = p
            .sites
            .iter()
            .map(|s| pumpkin_lang::DiffSite {
                path: &s.path,
                rule: s.rule.as_str(),
            })
            .collect();
        let explanation =
            pumpkin_lang::explain_decl(&env, &p.from, &p.to, &sites).ok_or_else(|| {
                (
                    code::REPAIR_FAILED,
                    format!("`{}` or `{}` vanished from the environment", p.from, p.to),
                )
            })?;
        Ok((
            Value::Obj(vec![
                ("from".into(), Value::str(&p.from)),
                ("to".into(), Value::str(&p.to)),
                ("explanation".into(), Value::str(explanation.render())),
            ]),
            Control::Continue,
        ))
    }

    /// `trace_report`: run the repair traced and render the offline
    /// analyzer's report. Deterministic requests get the canonicalized
    /// metrics view instead (the full report quotes wall-clock times).
    fn trace_report(&mut self, params: &Value, cancel: Option<&CancelToken>) -> MethodResult {
        let names = request_names(params, false)?;
        let deterministic = flag(params, "deterministic");
        let top_k = params.get("top").and_then(Value::as_u64).unwrap_or(5) as usize;
        let (report, _env) = self.run_repairer(params, &names, false, cancel)?;
        let text = if deterministic {
            Metrics::from_events(report.trace_events())
                .canonicalize()
                .to_text()
        } else {
            pumpkin_core::trace::report::render(report.trace_events(), top_k)
        };
        Ok((
            Value::Obj(vec![("report".into(), Value::str(&text))]),
            Control::Continue,
        ))
    }

    /// `eval`: decode a digest-verified term envelope, typecheck and
    /// normalize it against the base environment, and return both the
    /// pretty form and the normal form's envelope.
    fn eval(&mut self, params: &Value) -> MethodResult {
        let envelope = params
            .get("term")
            .ok_or_else(|| (code::BAD_PARAMS, "eval needs a `term` envelope".into()))?;
        let term = term_from_envelope(envelope).map_err(|e| match e {
            WireError::BadDigest { .. } => (code::BAD_DIGEST, e.to_string()),
            other => (code::BAD_PARAMS, other.to_string()),
        })?;
        pumpkin_kernel::typecheck::infer_closed(&self.base, &term)
            .map_err(|e| (code::BAD_PARAMS, format!("term does not typecheck: {e}")))?;
        let normal = pumpkin_kernel::reduce::normalize(&self.base, &term);
        Ok((
            Value::Obj(vec![
                (
                    "pretty".into(),
                    Value::str(pumpkin_lang::pretty(&self.base, &normal)),
                ),
                ("term".into(), term_to_envelope(&normal)),
            ]),
            Control::Continue,
        ))
    }

    /// The shared run path for repair/explain/trace_report: resolve the
    /// lifting spec (configuring unless it is already cached), clone the
    /// configured environment, and run a [`Repairer`] over it.
    fn run_repairer(
        &mut self,
        params: &Value,
        names: &[String],
        provenance: bool,
        cancel: Option<&CancelToken>,
    ) -> Result<(RepairReport, Env), (&'static str, String)> {
        let spec_value = params
            .get("lifting")
            .ok_or_else(|| (code::BAD_PARAMS, "request needs a `lifting` spec".into()))?;
        let spec =
            LiftSpec::from_value(spec_value).map_err(|e| (code::BAD_PARAMS, e.to_string()))?;
        self.ensure_configured(&spec)?;
        // An `"incremental": true` request diffs the sources against the
        // configuration's snapshot from the last repair (an empty snapshot
        // on the first request — everything diffs as changed, a cold run)
        // and replays unchanged constants from the persist cache.
        let incremental = flag(params, "incremental");
        let prev: Option<DigestMap> = if incremental {
            Some(self.configured[0].snapshot.clone().unwrap_or_default())
        } else {
            None
        };
        let cfg = &self.configured[0];

        let jobs = params
            .get("jobs")
            .and_then(Value::as_u64)
            .map_or(self.jobs, |j| (j as usize).max(1));
        let mut env = cfg.env.clone();
        let mut st = LiftState::new();
        let mut repairer = Repairer::new(&cfg.lifting)
            .jobs(jobs)
            .state(&mut st)
            .trace(true)
            .provenance(provenance);
        if let Some(tok) = cancel {
            repairer = repairer.cancel(tok.clone());
        } else if let Some(ms) = params.get("deadline_ms").and_then(Value::as_u64) {
            repairer = repairer.deadline(Duration::from_millis(ms));
        }
        if let Some(dir) = &self.cache_dir {
            repairer = repairer
                .persist_cache(dir)
                .cache_max_bytes(self.cache_max_bytes);
        }
        if let Some(snap) = &prev {
            repairer = repairer.incremental(snap);
        }
        let borrowed: Vec<&str> = names.iter().map(String::as_str).collect();
        let report = repairer.run(&mut env, &borrowed).map_err(|e| match e {
            RepairError::Cancelled { .. } => (code::DEADLINE, e.to_string()),
            other => (code::REPAIR_FAILED, other.to_string()),
        })?;
        if incremental {
            self.configured[0].snapshot = Some(DigestMap::capture(&env, &borrowed));
        }
        self.metrics
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .merge(&report.metrics);
        let g = &self.stats.gauges;
        serve_stats::add(&g.persist_hits, report.lift.persist_hits);
        serve_stats::add(&g.persist_misses, report.lift.persist_misses);
        if let Some(incr) = &report.incr {
            serve_stats::add(&g.incr_changed, incr.changed);
            serve_stats::add(&g.incr_replayed, incr.replayed);
            serve_stats::add(&g.incr_skipped, incr.skipped);
        }
        Ok((report, env))
    }

    /// Moves the configuration for `spec` to the front of the cache,
    /// running its search procedure if it is not cached yet (and evicting
    /// the least recently used entry beyond [`MAX_CONFIGS`]).
    fn ensure_configured(&mut self, spec: &LiftSpec) -> Result<(), (&'static str, String)> {
        let digest = spec.digest();
        if let Some(pos) = self.configured.iter().position(|c| c.digest == digest) {
            self.configured[..=pos].rotate_right(1);
            serve_stats::inc(&self.stats.gauges.config_cache_hits);
            return Ok(());
        }
        serve_stats::inc(&self.stats.gauges.config_cache_misses);
        let mut env = self.base.clone();
        let lifting = build_lifting(&mut env, spec).map_err(|msg| (code::REPAIR_FAILED, msg))?;
        self.configured.insert(
            0,
            Configured {
                digest,
                env,
                lifting,
                snapshot: None,
            },
        );
        self.configured.truncate(MAX_CONFIGS);
        Ok(())
    }
}

/// Runs the search procedure a [`LiftSpec`] names against `env`.
fn build_lifting(env: &mut Env, spec: &LiftSpec) -> Result<Lifting, String> {
    let mut names = NameMap::default();
    for (f, t) in &spec.rename {
        names = names.with_rule(f.as_str(), t.as_str());
    }
    let a = GlobalName::new(spec.a.as_str());
    let b = GlobalName::new(spec.b.as_str());
    let fail = |e: &dyn std::fmt::Display| e.to_string();
    match spec.kind.as_str() {
        "swap" => pumpkin_core::search::swap::configure(env, &a, &b, names).map_err(|e| fail(&e)),
        "factor" => pumpkin_core::search::factor::configure_with(env, &a, &b, [0, 1], names)
            .map_err(|e| fail(&e)),
        "ornament" => pumpkin_core::search::ornament::configure(env, names).map_err(|e| fail(&e)),
        "bin" => pumpkin_core::manual::configure_nat_to_bin(env, names).map_err(|e| fail(&e)),
        "records" => {
            let projs = pumpkin_core::search::tuple_record::connection_projs();
            pumpkin_core::search::tuple_record::configure_to_record(env, &a, &b, &projs, names)
                .map_err(|e| fail(&e))
        }
        other => Err(format!("unknown lifting kind `{other}`")),
    }
}

/// Extracts the work list: `name` (string) for single-constant methods,
/// `names` (non-empty string array) otherwise.
fn request_names(params: &Value, single: bool) -> Result<Vec<String>, (&'static str, String)> {
    if single {
        let name = params
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| (code::BAD_PARAMS, "request needs a string `name`".into()))?;
        return Ok(vec![name.to_string()]);
    }
    let arr = params
        .get("names")
        .and_then(Value::as_arr)
        .ok_or_else(|| (code::BAD_PARAMS, "request needs a `names` array".into()))?;
    let names: Vec<String> = arr
        .iter()
        .map(|v| v.as_str().map(str::to_string))
        .collect::<Option<_>>()
        .ok_or_else(|| (code::BAD_PARAMS, "`names` must hold strings".into()))?;
    if names.is_empty() {
        return Err((code::BAD_PARAMS, "`names` must not be empty".into()));
    }
    Ok(names)
}

fn flag(params: &Value, key: &str) -> bool {
    params.get(key).and_then(Value::as_bool).unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session() -> Session {
        Session::new(
            pumpkin_stdlib::std_env(),
            1,
            None,
            Arc::new(Mutex::new(Metrics::new())),
        )
    }

    fn swap_spec() -> String {
        LiftSpec::swap("Old.list", "New.list", "Old.", "New.")
            .to_value()
            .to_string()
    }

    #[test]
    fn ping_names_the_protocol() {
        let mut s = session();
        let (reply, ctl) = s.handle_line(r#"{"id":1,"method":"ping"}"#);
        assert_eq!(ctl, Control::Continue);
        assert_eq!(
            reply,
            r#"{"id":1,"req_id":1,"ok":true,"result":{"pong":true,"proto":1,"wire":"pumpkin-wire/2"}}"#
        );
    }

    #[test]
    fn req_ids_count_every_frame_including_parse_errors() {
        let mut s = session();
        let (r1, _) = s.handle_line(r#"{"id":1,"method":"ping"}"#);
        assert!(r1.contains(r#""req_id":1"#), "{r1}");
        let (r2, _) = s.handle_line("{]");
        assert!(
            r2.contains(r#""req_id":2"#),
            "parse errors consume an id: {r2}"
        );
        let (r3, _) = s.handle_line(r#"{"id":2,"method":"ping"}"#);
        assert!(r3.contains(r#""req_id":3"#), "{r3}");
    }

    #[test]
    fn stats_reports_schema_gauges_and_config_cache_traffic() {
        let mut s = session();
        let repair = format!(
            r#"{{"id":1,"method":"repair_module","params":{{"lifting":{},"names":["Old.rev"],"deterministic":true}}}}"#,
            swap_spec()
        );
        let (r, _) = s.handle_line(&repair);
        assert!(r.contains("\"ok\":true"), "{r}");
        let (r, _) = s.handle_line(&repair);
        assert!(r.contains("\"ok\":true"), "{r}");
        let (reply, ctl) = s.handle_line(r#"{"id":9,"method":"stats"}"#);
        assert_eq!(ctl, Control::Continue);
        let v = Value::parse(&reply).unwrap();
        let result = v.get("result").unwrap();
        assert_eq!(
            result.get("schema").and_then(Value::as_str),
            Some(STATS_SCHEMA)
        );
        let gauges = result.get("gauges").unwrap();
        // First repair configured fresh, second reused the cached recipe.
        assert_eq!(
            gauges.get("config_cache_misses").and_then(Value::as_u64),
            Some(1)
        );
        assert_eq!(
            gauges.get("config_cache_hits").and_then(Value::as_u64),
            Some(1)
        );
        // A bare session records no latency — that is the server's job —
        // so the method map is empty and the reply is deterministic.
        assert_eq!(
            result
                .get("methods")
                .and_then(Value::as_obj)
                .map(<[_]>::len),
            Some(0)
        );
    }

    #[test]
    fn repair_module_replies_with_a_report() {
        let mut s = session();
        let line = format!(
            r#"{{"id":2,"method":"repair_module","params":{{"lifting":{},"names":["Old.rev","Old.app"],"deterministic":true}}}}"#,
            swap_spec()
        );
        let (reply, _) = s.handle_line(&line);
        let v = Value::parse(&reply).unwrap();
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
        let report = v.get("result").unwrap().get("report").unwrap();
        assert_eq!(report.get("wall_ns"), Some(&Value::UInt(0)));
        let repaired = report.get("repaired").and_then(Value::as_arr).unwrap();
        assert_eq!(repaired.len(), 2);
        // Sessions serve throwaway environments: a second identical
        // request returns byte-identical output (modulo the lifecycle
        // id, which counts frames).
        let (again, _) = s.handle_line(&line);
        assert_eq!(
            reply.replace("\"req_id\":1,", ""),
            again.replace("\"req_id\":2,", "")
        );
    }

    #[test]
    fn hello_announces_versions_methods_and_limits() {
        let mut s = session();
        let (reply, ctl) = s.handle_line(r#"{"id":1,"method":"hello"}"#);
        assert_eq!(ctl, Control::Continue);
        let v = Value::parse(&reply).unwrap();
        let result = v.get("result").unwrap();
        assert_eq!(
            result.get("proto_version").and_then(Value::as_u64),
            Some(u64::from(PROTO_VERSION))
        );
        assert_eq!(
            result.get("wire_version").and_then(Value::as_str),
            Some(pumpkin_wire::WIRE_TAG)
        );
        let methods = result.get("methods").and_then(Value::as_arr).unwrap();
        for m in METHODS {
            assert!(
                methods.iter().any(|v| v.as_str() == Some(m)),
                "hello must announce `{m}`"
            );
        }
        assert_eq!(
            result
                .get("limits")
                .and_then(|l| l.get("max_frame_bytes"))
                .and_then(Value::as_u64),
            Some(proto::MAX_FRAME as u64)
        );
    }

    #[test]
    fn incremental_repair_replays_from_the_persist_cache() {
        let dir =
            std::env::temp_dir().join(format!("pumpkin-serve-incr-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut s = Session::new(
            pumpkin_stdlib::std_env(),
            1,
            Some(dir.clone()),
            Arc::new(Mutex::new(Metrics::new())),
        );
        let line = format!(
            r#"{{"id":1,"method":"repair_module","params":{{"lifting":{},"names":["Old.rev","Old.app"],"deterministic":true,"incremental":true}}}}"#,
            swap_spec()
        );
        // First incremental request: empty snapshot, everything changed.
        let (reply, _) = s.handle_line(&line);
        let v = Value::parse(&reply).unwrap();
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)), "{reply}");
        let incr = |v: &Value| {
            v.get("result")
                .and_then(|r| r.get("report"))
                .and_then(|r| r.get("incr"))
                .cloned()
                .unwrap()
        };
        let first = incr(&v);
        assert_eq!(first.get("changed").and_then(Value::as_u64), Some(2));
        // Second identical request: nothing changed, everything replays.
        let (reply, _) = s.handle_line(&line);
        let v = Value::parse(&reply).unwrap();
        let second = incr(&v);
        assert_eq!(second.get("changed").and_then(Value::as_u64), Some(0));
        assert_eq!(second.get("replayed").and_then(Value::as_u64), Some(0));
        assert_eq!(second.get("skipped").and_then(Value::as_u64), Some(2));
        // A cold request carries no `incr` field at all.
        let cold = format!(
            r#"{{"id":2,"method":"repair_module","params":{{"lifting":{},"names":["Old.rev","Old.app"],"deterministic":true}}}}"#,
            swap_spec()
        );
        let (reply, _) = s.handle_line(&cold);
        assert!(!reply.contains("\"incr\""), "{reply}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn explain_after_incremental_repair_cites_the_same_rules() {
        let dir =
            std::env::temp_dir().join(format!("pumpkin-serve-explain-incr-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let explain_line = format!(
            r#"{{"id":1,"method":"explain","params":{{"lifting":{},"name":"Old.rev"}}}}"#,
            swap_spec()
        );
        // Cold explanation, no cache anywhere.
        let (cold, _) = session().handle_line(&explain_line);
        // Warm the persist cache with an incremental repair, then explain
        // on the same session: the replayed world must cite identically.
        let mut s = Session::new(
            pumpkin_stdlib::std_env(),
            1,
            Some(dir.clone()),
            Arc::new(Mutex::new(Metrics::new())),
        );
        let repair_line = format!(
            r#"{{"id":2,"method":"repair_module","params":{{"lifting":{},"names":["Old.rev"],"deterministic":true,"incremental":true}}}}"#,
            swap_spec()
        );
        let (r, _) = s.handle_line(&repair_line);
        assert!(r.contains("\"ok\":true"), "{r}");
        let (r, _) = s.handle_line(&repair_line);
        assert!(r.contains("\"skipped\":1"), "{r}");
        let (warm, _) = s.handle_line(&explain_line);
        let text = |reply: &str| {
            Value::parse(reply)
                .unwrap()
                .get("result")
                .and_then(|r| r.get("explanation"))
                .and_then(Value::as_str)
                .map(str::to_string)
                .unwrap()
        };
        assert_eq!(text(&cold), text(&warm));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn explain_cites_the_rules() {
        let mut s = session();
        let line = format!(
            r#"{{"id":3,"method":"explain","params":{{"lifting":{},"name":"Old.rev"}}}}"#,
            swap_spec()
        );
        let (reply, _) = s.handle_line(&line);
        let v = Value::parse(&reply).unwrap();
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)), "{reply}");
        let result = v.get("result").unwrap();
        assert_eq!(result.get("to").and_then(Value::as_str), Some("New.rev"));
        assert!(result
            .get("explanation")
            .and_then(Value::as_str)
            .unwrap()
            .contains("New.rev"));
    }

    #[test]
    fn structured_errors_keep_the_connection_usable() {
        let mut s = session();
        for (line, want_code) in [
            ("{]", code::PARSE),
            (r#"{"id":1,"method":"frobnicate"}"#, code::UNKNOWN_METHOD),
            (r#"{"id":1,"method":"repair_module"}"#, code::BAD_PARAMS),
            (
                r#"{"id":1,"method":"repair_module","params":{"lifting":{"kind":"swap","a":"A","b":"B","rename":[]},"names":[]}}"#,
                code::BAD_PARAMS,
            ),
            (
                r#"{"id":1,"method":"eval","params":{"term":{"wire":"pumpkin-wire/2","digest":"0000000000000000","term":{"k":"sort","s":"prop"}}}}"#,
                code::BAD_DIGEST,
            ),
        ] {
            let (reply, ctl) = s.handle_line(line);
            assert_eq!(ctl, Control::Continue);
            let v = Value::parse(&reply).unwrap();
            assert_eq!(v.get("ok"), Some(&Value::Bool(false)), "{line}");
            assert_eq!(
                v.get("error").unwrap().get("code").and_then(Value::as_str),
                Some(want_code),
                "{line} -> {reply}"
            );
        }
        // After every error, a good request still succeeds.
        let (reply, _) = s.handle_line(r#"{"id":9,"method":"ping"}"#);
        assert!(reply.contains("\"pong\":true"));
    }

    #[test]
    fn eval_normalizes_digest_verified_terms() {
        use pumpkin_kernel::term::Term;
        let mut s = session();
        // S (S O) + O, as an applied constant — normalizes to a literal.
        let two = Term::app(
            Term::construct("nat", 1),
            [Term::app(
                Term::construct("nat", 1),
                [Term::construct("nat", 0)],
            )],
        );
        let t = Term::app(Term::const_("add"), [two, Term::construct("nat", 0)]);
        let line = format!(
            r#"{{"id":4,"method":"eval","params":{{"term":{}}}}}"#,
            term_to_envelope(&t)
        );
        let (reply, _) = s.handle_line(&line);
        let v = Value::parse(&reply).unwrap();
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)), "{reply}");
        let pretty = v
            .get("result")
            .unwrap()
            .get("pretty")
            .and_then(Value::as_str)
            .unwrap();
        assert_eq!(pretty, "S (S O)");
    }

    #[test]
    fn deadline_zero_reports_a_deadline_error() {
        let mut s = session();
        let line = format!(
            r#"{{"id":5,"method":"repair_module","params":{{"lifting":{},"names":["Old.rev"],"deadline_ms":0}}}}"#,
            swap_spec()
        );
        let (reply, _) = s.handle_line(&line);
        let v = Value::parse(&reply).unwrap();
        assert_eq!(
            v.get("error").unwrap().get("code").and_then(Value::as_str),
            Some(code::DEADLINE),
            "{reply}"
        );
        // The session is still healthy.
        let ok_line = format!(
            r#"{{"id":6,"method":"repair_module","params":{{"lifting":{},"names":["Old.rev"]}}}}"#,
            swap_spec()
        );
        let (reply, _) = s.handle_line(&ok_line);
        assert!(reply.contains("\"ok\":true"), "{reply}");
    }
}
