//! End-to-end daemon tests over real sockets: concurrency determinism,
//! merged-metrics invariance across worker counts, backpressure, and
//! graceful drain.

use std::sync::{Arc, Mutex};

use pumpkin_serve::{Client, ClientError, Server, ServerConfig, Session};
use pumpkin_wire::{LiftSpec, Value};

fn spawn_server(cfg: ServerConfig) -> (String, std::thread::JoinHandle<()>) {
    let server = Server::bind(cfg).expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let handle = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle)
}

fn shutdown(addr: &str) {
    // The slot freed by a just-closed connection becomes available only
    // once its session thread observes the EOF, so tolerate `busy`.
    for attempt in 0..100 {
        let mut c = Client::connect(addr).expect("connect for shutdown");
        match c.call("shutdown", Value::Obj(vec![])) {
            Ok(_) => return,
            Err(ClientError::Server { ref code, .. }) if code == "busy" && attempt < 99 => {
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            Err(e) => panic!("shutdown failed: {e}"),
        }
    }
}

fn repair_module_line(id: u64, names: &[&str]) -> String {
    let spec = LiftSpec::swap("Old.list", "New.list", "Old.", "New.");
    let names = names
        .iter()
        .map(|n| format!("\"{n}\""))
        .collect::<Vec<_>>()
        .join(",");
    format!(
        r#"{{"id":{id},"method":"repair_module","params":{{"lifting":{},"names":[{names}],"deterministic":true}}}}"#,
        spec.to_value()
    )
}

/// A local, socket-free session with a fresh metrics registry — the
/// "one-shot run" baseline the daemon must match byte for byte.
fn one_shot(line: &str) -> String {
    let metrics = Arc::new(Mutex::new(pumpkin_core::trace::Metrics::new()));
    let mut s = Session::new(pumpkin_stdlib::std_env(), 1, None, metrics);
    s.handle_line(line).0
}

#[test]
fn four_concurrent_clients_match_sequential_one_shots() {
    let (addr, handle) = spawn_server(ServerConfig::default());
    let line = repair_module_line(1, &["Old.rev", "Old.app", "Old.rev_involutive"]);
    let expected = one_shot(&line);
    assert!(
        expected.contains("\"ok\":true"),
        "baseline failed: {expected}"
    );

    let replies: Vec<String> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let addr = addr.clone();
                let line = line.clone();
                s.spawn(move || {
                    let mut c = Client::connect(&addr).expect("connect");
                    // Two requests per connection: determinism must hold
                    // within a session too.
                    let first = c.call_raw(&line).expect("first call");
                    let second = c.call_raw(&line).expect("second call");
                    assert_eq!(first, second, "session-internal divergence");
                    first
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (i, reply) in replies.iter().enumerate() {
        assert_eq!(reply, &expected, "client {i} diverged from one-shot run");
    }
    shutdown(&addr);
    handle.join().unwrap();
}

#[test]
fn merged_metrics_canonicalize_identically_across_job_counts() {
    let line = repair_module_line(
        1,
        pumpkin_stdlib::swap::OLD_MODULE_CONSTANTS
            .iter()
            .copied()
            .collect::<Vec<_>>()
            .as_slice(),
    );
    let canonical = |jobs: usize| -> String {
        let metrics = Arc::new(Mutex::new(pumpkin_core::trace::Metrics::new()));
        let mut s = Session::new(pumpkin_stdlib::std_env(), jobs, None, Arc::clone(&metrics));
        let (reply, _) = s.handle_line(&line);
        assert!(reply.contains("\"ok\":true"), "jobs={jobs}: {reply}");
        let (reply, _) =
            s.handle_line(r#"{"id":2,"method":"metrics","params":{"canonical":true}}"#);
        let v = Value::parse(&reply).unwrap();
        v.get("result")
            .unwrap()
            .get("text")
            .and_then(Value::as_str)
            .unwrap()
            .to_string()
    };
    let at1 = canonical(1);
    let at2 = canonical(2);
    let at4 = canonical(4);
    assert!(!at1.is_empty());
    assert_eq!(
        at1, at2,
        "canonical metrics differ between jobs=1 and jobs=2"
    );
    assert_eq!(
        at1, at4,
        "canonical metrics differ between jobs=1 and jobs=4"
    );
}

#[test]
fn session_cap_returns_busy_and_recovers() {
    let (addr, handle) = spawn_server(ServerConfig {
        max_sessions: 1,
        ..ServerConfig::default()
    });
    // First connection occupies the only slot (sessions count while
    // open, not just mid-request).
    let mut first = Client::connect(&addr).expect("connect first");
    first.call("ping", Value::Obj(vec![])).expect("first ping");
    // Second connection is turned away with a structured busy reply.
    let mut second = Client::connect(&addr).expect("connect second");
    match second.call("ping", Value::Obj(vec![])) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, "busy"),
        other => panic!("expected busy, got {other:?}"),
    }
    // Once the first session closes, the slot frees up.
    drop(first);
    for attempt in 0.. {
        let mut retry = Client::connect(&addr).expect("reconnect");
        match retry.call("ping", Value::Obj(vec![])) {
            Ok(_) => break,
            Err(ClientError::Server { ref code, .. }) if code == "busy" && attempt < 100 => {
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            other => panic!("expected recovery, got {other:?}"),
        }
    }
    shutdown(&addr);
    handle.join().unwrap();
}

#[test]
fn oversized_frames_get_an_error_and_the_connection_survives() {
    let (addr, handle) = spawn_server(ServerConfig::default());
    let mut c = Client::connect(&addr).expect("connect");
    let huge = format!(
        r#"{{"id":1,"method":"ping","params":{{"pad":"{}"}}}}"#,
        "x".repeat(pumpkin_serve::proto::MAX_FRAME)
    );
    let reply = c.call_raw(&huge).expect("oversized call");
    assert!(reply.contains("oversized_frame"), "{reply}");
    // Same connection, next frame parses fine.
    let reply = c.call_raw(r#"{"id":2,"method":"ping"}"#).expect("ping");
    assert!(reply.contains("\"pong\":true"), "{reply}");
    shutdown(&addr);
    handle.join().unwrap();
}

#[test]
fn shutdown_drains_and_stops_accepting() {
    let (addr, handle) = spawn_server(ServerConfig::default());
    // An idle keep-alive connection must not block the drain: shutdown
    // half-closes its read side and its session exits on EOF.
    let mut idle = Client::connect(&addr).expect("idle connect");
    idle.call("ping", Value::Obj(vec![])).expect("idle ping");
    shutdown(&addr);
    // run() returning proves the drain completed.
    handle.join().unwrap();
    // The listener is gone; new connections fail (or are refused with a
    // draining notice before the accept loop exited).
    assert!(
        Client::connect(&addr).is_err() || {
            let mut c = Client::connect(&addr).unwrap();
            c.call("ping", Value::Obj(vec![])).is_err()
        },
        "server still serving after shutdown"
    );
}

#[cfg(unix)]
#[test]
fn unix_listener_serves_the_same_protocol() {
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::UnixStream;

    let path = std::env::temp_dir().join(format!("pumpkind-test-{}.sock", std::process::id()));
    let (addr, handle) = spawn_server(ServerConfig {
        unix: Some(path.clone()),
        ..ServerConfig::default()
    });
    let mut stream = BufReader::new(UnixStream::connect(&path).expect("unix connect"));
    stream
        .get_mut()
        .write_all(b"{\"id\":1,\"method\":\"ping\"}\n")
        .unwrap();
    let mut reply = String::new();
    stream.read_line(&mut reply).unwrap();
    assert!(reply.contains("\"pong\":true"), "{reply}");
    drop(stream);
    shutdown(&addr);
    handle.join().unwrap();
    assert!(!path.exists(), "socket file not cleaned up");
}

#[test]
fn persistent_cache_warms_across_server_restarts() {
    let dir = std::env::temp_dir().join(format!("pumpkind-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let run_once = || -> (String, u64, u64) {
        let (addr, handle) = spawn_server(ServerConfig {
            cache_dir: Some(dir.clone()),
            ..ServerConfig::default()
        });
        let mut c = Client::connect(&addr).expect("connect");
        let line = repair_module_line(1, &["Old.rev", "Old.rev_involutive"]);
        let reply = c.call_raw(&line).expect("repair");
        let v = Value::parse(&reply).unwrap();
        let report = v.get("result").unwrap().get("report").unwrap();
        let hits = report.get("persist_hits").and_then(Value::as_u64).unwrap();
        let misses = report
            .get("persist_misses")
            .and_then(Value::as_u64)
            .unwrap();
        drop(c);
        shutdown(&addr);
        handle.join().unwrap();
        (reply, hits, misses)
    };
    let (cold_reply, cold_hits, cold_misses) = run_once();
    let (warm_reply, warm_hits, warm_misses) = run_once();
    assert_eq!(cold_hits, 0);
    assert!(cold_misses > 0);
    assert!(warm_hits > 0, "second process saw no cache hits");
    assert_eq!(warm_misses, 0);
    // The cache changes speed, never content: both runs repair the same
    // constants to the same names (byte-level equality of the lifted
    // declarations is covered by the repairer's own persist test).
    let repaired = |reply: &str| {
        Value::parse(reply)
            .unwrap()
            .get("result")
            .and_then(|r| r.get("report"))
            .and_then(|r| r.get("repaired"))
            .cloned()
            .expect("reply carries repaired pairs")
    };
    assert_eq!(repaired(&cold_reply), repaired(&warm_reply));
    let _ = std::fs::remove_dir_all(&dir);
}
