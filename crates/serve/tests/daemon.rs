//! End-to-end daemon tests over real sockets: concurrency determinism,
//! merged-metrics invariance across worker counts, backpressure, and
//! graceful drain.

use std::sync::{Arc, Mutex};

use pumpkin_serve::{Client, ClientError, Server, ServerConfig, Session};
use pumpkin_wire::{LiftSpec, Value};

fn spawn_server(cfg: ServerConfig) -> (String, std::thread::JoinHandle<()>) {
    let server = Server::bind(cfg).expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let handle = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle)
}

fn shutdown(addr: &str) {
    // The slot freed by a just-closed connection becomes available only
    // once its session thread observes the EOF, so tolerate `busy`.
    for attempt in 0..100 {
        let mut c = Client::connect(addr).expect("connect for shutdown");
        match c.call("shutdown", Value::Obj(vec![])) {
            Ok(_) => return,
            Err(ClientError::Server { ref code, .. }) if code == "busy" && attempt < 99 => {
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            Err(e) => panic!("shutdown failed: {e}"),
        }
    }
}

fn repair_module_line(id: u64, names: &[&str]) -> String {
    let spec = LiftSpec::swap("Old.list", "New.list", "Old.", "New.");
    let names = names
        .iter()
        .map(|n| format!("\"{n}\""))
        .collect::<Vec<_>>()
        .join(",");
    format!(
        r#"{{"id":{id},"method":"repair_module","params":{{"lifting":{},"names":[{names}],"deterministic":true}}}}"#,
        spec.to_value()
    )
}

/// A local, socket-free session with a fresh metrics registry — the
/// "one-shot run" baseline the daemon must match byte for byte.
fn one_shot(line: &str) -> String {
    let metrics = Arc::new(Mutex::new(pumpkin_core::trace::Metrics::new()));
    let mut s = Session::new(pumpkin_stdlib::std_env(), 1, None, metrics);
    s.handle_line(line).0
}

/// Drops the `"req_id":N,` lifecycle stamp from a reply. Every frame
/// gets a fresh id, so byte-identity claims compare everything else.
fn strip_req_id(reply: &str) -> String {
    let Some(at) = reply.find("\"req_id\":") else {
        return reply.to_string();
    };
    let end = reply[at..].find(',').map_or(reply.len(), |c| at + c + 1);
    format!("{}{}", &reply[..at], &reply[end..])
}

#[test]
fn four_concurrent_clients_match_sequential_one_shots() {
    let (addr, handle) = spawn_server(ServerConfig::default());
    let line = repair_module_line(1, &["Old.rev", "Old.app", "Old.rev_involutive"]);
    let expected = strip_req_id(&one_shot(&line));
    assert!(
        expected.contains("\"ok\":true"),
        "baseline failed: {expected}"
    );

    let replies: Vec<String> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let addr = addr.clone();
                let line = line.clone();
                s.spawn(move || {
                    let mut c = Client::connect(&addr).expect("connect");
                    // Two requests per connection: determinism must hold
                    // within a session too.
                    let first = strip_req_id(&c.call_raw(&line).expect("first call"));
                    let second = strip_req_id(&c.call_raw(&line).expect("second call"));
                    assert_eq!(first, second, "session-internal divergence");
                    first
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (i, reply) in replies.iter().enumerate() {
        assert_eq!(reply, &expected, "client {i} diverged from one-shot run");
    }
    shutdown(&addr);
    handle.join().unwrap();
}

#[test]
fn merged_metrics_canonicalize_identically_across_job_counts() {
    let line = repair_module_line(1, pumpkin_stdlib::swap::OLD_MODULE_CONSTANTS);
    let canonical = |jobs: usize| -> String {
        let metrics = Arc::new(Mutex::new(pumpkin_core::trace::Metrics::new()));
        let mut s = Session::new(pumpkin_stdlib::std_env(), jobs, None, Arc::clone(&metrics));
        let (reply, _) = s.handle_line(&line);
        assert!(reply.contains("\"ok\":true"), "jobs={jobs}: {reply}");
        let (reply, _) =
            s.handle_line(r#"{"id":2,"method":"metrics","params":{"canonical":true}}"#);
        let v = Value::parse(&reply).unwrap();
        v.get("result")
            .unwrap()
            .get("text")
            .and_then(Value::as_str)
            .unwrap()
            .to_string()
    };
    let at1 = canonical(1);
    let at2 = canonical(2);
    let at4 = canonical(4);
    assert!(!at1.is_empty());
    assert_eq!(
        at1, at2,
        "canonical metrics differ between jobs=1 and jobs=2"
    );
    assert_eq!(
        at1, at4,
        "canonical metrics differ between jobs=1 and jobs=4"
    );
}

/// With one worker and a one-deep queue, concurrent requests must see
/// `busy` (queue full), and a retry after the backlog clears must
/// succeed — the queue sheds load, it does not drop connections.
#[test]
fn full_work_queue_returns_busy_and_recovers() {
    let (addr, handle) = spawn_server(ServerConfig {
        workers: 1,
        queue_depth: 1,
        max_sessions: 16,
        ..ServerConfig::default()
    });
    // Occupy the only worker with a long batch (eight module repairs —
    // debug-build minutes of headroom compared to the millisecond sends
    // below).
    let spec = LiftSpec::swap("Old.list", "New.list", "Old.", "New.");
    let all = pumpkin_stdlib::swap::OLD_MODULE_CONSTANTS
        .iter()
        .map(|n| format!("\"{n}\""))
        .collect::<Vec<_>>()
        .join(",");
    let long_line = format!(
        r#"{{"id":1,"method":"repair_batch","params":{{"lifting":{},"batch":[{}],"deterministic":true}}}}"#,
        spec.to_value(),
        (0..8)
            .map(|_| format!(r#"{{"names":[{all}],"deterministic":true}}"#))
            .collect::<Vec<_>>()
            .join(",")
    );
    let short_line = repair_module_line(2, &["Old.rev"]);
    let (busy_count, replies) = std::thread::scope(|s| {
        let addr_long = addr.clone();
        let long = s.spawn(move || {
            let mut c = Client::connect(&addr_long).expect("connect long");
            c.call_raw(&long_line).expect("long call")
        });
        // Give the long batch time to reach the worker before saturating
        // the queue.
        std::thread::sleep(std::time::Duration::from_millis(200));
        let shorts: Vec<_> = (0..4)
            .map(|_| {
                let addr = addr.clone();
                let line = short_line.clone();
                s.spawn(move || {
                    let mut c = Client::connect(&addr).expect("connect short");
                    c.call_raw(&line).expect("short call")
                })
            })
            .collect();
        let replies: Vec<String> = shorts.into_iter().map(|h| h.join().unwrap()).collect();
        let busy = replies
            .iter()
            .filter(|r| r.contains("\"code\":\"busy\""))
            .count();
        // These refusals came from the bounded queue, not the session
        // cap — the `data` detail must say so.
        for r in replies.iter().filter(|r| r.contains("\"code\":\"busy\"")) {
            assert!(
                r.contains("\"data\":\"queue_full\""),
                "busy without queue_full detail: {r}"
            );
        }
        let long_reply = long.join().unwrap();
        assert!(long_reply.contains("\"ok\":true"), "{long_reply}");
        (busy, replies)
    });
    // Worker occupied + queue depth 1 ⇒ at most one short request could
    // be admitted; the rest must have been refused as busy.
    assert!(
        busy_count >= 3,
        "expected >=3 busy refusals, got {busy_count}: {replies:?}"
    );
    for r in &replies {
        assert!(
            r.contains("\"ok\":true") || r.contains("\"code\":\"busy\""),
            "unexpected reply under saturation: {r}"
        );
    }
    // Backpressure is temporary: once the backlog drains, the same
    // request succeeds on a fresh connection.
    let mut c = Client::connect(&addr).expect("reconnect");
    let reply = c.call_raw(&short_line).expect("retry");
    assert!(reply.contains("\"ok\":true"), "{reply}");
    drop(c);
    shutdown(&addr);
    handle.join().unwrap();
}

/// Shutdown must drain queued work: requests already admitted to the
/// queue get real replies, not aborts, even though the request that
/// asked for the drain was answered before they ran.
#[test]
fn graceful_drain_completes_queued_work() {
    let (addr, handle) = spawn_server(ServerConfig {
        workers: 1,
        queue_depth: 8,
        max_sessions: 16,
        ..ServerConfig::default()
    });
    let slow_line = repair_module_line(
        1,
        pumpkin_stdlib::swap::OLD_MODULE_CONSTANTS
            .to_vec()
            .as_slice(),
    );
    let quick_line = repair_module_line(2, &["Old.rev"]);
    let replies: Vec<String> = std::thread::scope(|s| {
        let addr_slow = addr.clone();
        let slow = s.spawn(move || {
            let mut c = Client::connect(&addr_slow).expect("connect slow");
            c.call_raw(&slow_line).expect("slow call")
        });
        std::thread::sleep(std::time::Duration::from_millis(100));
        // Two requests that will sit in the queue behind the slow one.
        let queued: Vec<_> = (0..2)
            .map(|_| {
                let addr = addr.clone();
                let line = quick_line.clone();
                s.spawn(move || {
                    let mut c = Client::connect(&addr).expect("connect queued");
                    c.call_raw(&line).expect("queued call")
                })
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(100));
        // The shutdown request is answered inline (control methods skip
        // the queue), so it cannot be stuck behind the backlog.
        shutdown(&addr);
        let mut replies = vec![slow.join().unwrap()];
        replies.extend(queued.into_iter().map(|h| h.join().unwrap()));
        replies
    });
    handle.join().unwrap();
    for r in &replies {
        assert!(
            r.contains("\"ok\":true"),
            "queued work dropped by the drain: {r}"
        );
    }
}

/// A batch-level deadline cancels mid-batch: completed items keep their
/// replies, every item after the expiry reports `deadline`, and the
/// error prefix/suffix structure is monotone (no ok after the first
/// cancellation).
#[test]
fn batch_deadline_cancels_remaining_items_over_sockets() {
    let (addr, handle) = spawn_server(ServerConfig::default());
    let spec = LiftSpec::swap("Old.list", "New.list", "Old.", "New.");
    let all = pumpkin_stdlib::swap::OLD_MODULE_CONSTANTS
        .iter()
        .map(|n| format!("\"{n}\""))
        .collect::<Vec<_>>()
        .join(",");
    let items = (0..6)
        .map(|_| format!(r#"{{"names":[{all}],"deterministic":true}}"#))
        .collect::<Vec<_>>()
        .join(",");
    let line = format!(
        r#"{{"id":1,"method":"repair_batch","params":{{"lifting":{},"batch":[{items}],"deadline_ms":50}}}}"#,
        spec.to_value()
    );
    let mut c = Client::connect(&addr).expect("connect");
    let reply = c.call_raw(&line).expect("batch call");
    let v = Value::parse(&reply).expect("parse reply");
    assert_eq!(v.get("ok"), Some(&Value::Bool(true)), "{reply}");
    let results = v
        .get("result")
        .and_then(|r| r.get("results"))
        .and_then(Value::as_arr)
        .expect("results array");
    assert_eq!(results.len(), 6);
    let states: Vec<bool> = results
        .iter()
        .map(|r| r.get("ok") == Some(&Value::Bool(true)))
        .collect();
    // Six debug-build module repairs cannot fit in 50 ms; the tail must
    // have been cancelled.
    assert!(states.contains(&false), "no item hit the deadline: {reply}");
    for r in results
        .iter()
        .filter(|r| r.get("ok") == Some(&Value::Bool(false)))
    {
        assert_eq!(
            r.get("error")
                .and_then(|e| e.get("code"))
                .and_then(Value::as_str),
            Some("deadline"),
            "{reply}"
        );
    }
    // Monotone: one shared token, so once an item is cancelled, every
    // later item is too.
    let first_err = states.iter().position(|ok| !ok).unwrap();
    assert!(
        states[first_err..].iter().all(|ok| !ok),
        "ok after a cancelled item: {states:?}"
    );
    // The session survives the cancellation.
    let reply = c
        .call_raw(&repair_module_line(2, &["Old.rev"]))
        .expect("after");
    assert!(reply.contains("\"ok\":true"), "{reply}");
    drop(c);
    shutdown(&addr);
    handle.join().unwrap();
}

/// `repair_batch` replies embed, per item, exactly the bytes the
/// equivalent standalone request with `"id": null` would produce — at
/// every worker count.
#[test]
fn repair_batch_matches_per_request_replies_across_job_counts() {
    let spec = LiftSpec::swap("Old.list", "New.list", "Old.", "New.");
    let items = [
        r#"{"name":"Old.rev","deterministic":true}"#,
        r#"{"names":["Old.app","Old.rev_involutive"],"deterministic":true}"#,
        r#"{"name":"Old.length","deterministic":true}"#,
        r#"{"name":"Old.missing","deterministic":true}"#,
    ];
    for jobs in [1usize, 2, 4] {
        let metrics = Arc::new(Mutex::new(pumpkin_core::trace::Metrics::new()));
        let mut s = Session::new(pumpkin_stdlib::std_env(), jobs, None, metrics);
        let batch_line = format!(
            r#"{{"id":1,"method":"repair_batch","params":{{"lifting":{},"batch":[{}]}}}}"#,
            spec.to_value(),
            items.join(",")
        );
        let (batch_reply, _) = s.handle_line(&batch_line);
        let v = Value::parse(&batch_reply).expect("parse batch reply");
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)), "{batch_reply}");
        let results = v
            .get("result")
            .and_then(|r| r.get("results"))
            .and_then(Value::as_arr)
            .expect("results array")
            .to_vec();
        assert_eq!(results.len(), items.len());
        for (item, batched) in items.iter().zip(&results) {
            let item_v = Value::parse(item).unwrap();
            let method = if item_v.get("name").is_some() {
                "repair"
            } else {
                "repair_module"
            };
            // The standalone equivalent: same params plus the shared
            // lifting spec, with a null id.
            let single_line = format!(
                r#"{{"id":null,"method":"{method}","params":{{"lifting":{},{}}}}}"#,
                spec.to_value(),
                item.trim_start_matches('{').trim_end_matches('}')
            );
            let (single_reply, _) = s.handle_line(&single_line);
            // Batch entries carry no lifecycle id (only top-level frames
            // do), so strip the standalone's before comparing.
            assert_eq!(
                batched.to_string(),
                strip_req_id(&single_reply),
                "jobs={jobs}: batch entry diverged from the standalone reply"
            );
        }
    }
}

#[test]
fn session_cap_returns_busy_and_recovers() {
    let (addr, handle) = spawn_server(ServerConfig {
        max_sessions: 1,
        ..ServerConfig::default()
    });
    // First connection occupies the only slot (sessions count while
    // open, not just mid-request).
    let mut first = Client::connect(&addr).expect("connect first");
    first.call("ping", Value::Obj(vec![])).expect("first ping");
    // Second connection is turned away with a structured busy reply
    // whose `data` detail names the admission layer that fired.
    let mut second = Client::connect(&addr).expect("connect second");
    match second.call("ping", Value::Obj(vec![])) {
        Err(ClientError::Server { code, data, .. }) => {
            assert_eq!(code, "busy");
            assert_eq!(data.as_deref(), Some("session_cap"));
        }
        other => panic!("expected busy, got {other:?}"),
    }
    // Once the first session closes, the slot frees up.
    drop(first);
    for attempt in 0.. {
        let mut retry = Client::connect(&addr).expect("reconnect");
        match retry.call("ping", Value::Obj(vec![])) {
            Ok(_) => break,
            Err(ClientError::Server { ref code, .. }) if code == "busy" && attempt < 100 => {
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            other => panic!("expected recovery, got {other:?}"),
        }
    }
    shutdown(&addr);
    handle.join().unwrap();
}

/// The `stats` RPC reports per-method latency and queue-wait histograms
/// recorded at the server layer, plus gauges, under a versioned schema.
#[test]
fn stats_rpc_reports_per_method_latency_over_the_daemon() {
    let (addr, handle) = spawn_server(ServerConfig::default());
    let mut c = Client::connect(&addr).expect("connect");
    for id in 1..=3 {
        let reply = c
            .call_raw(&repair_module_line(id, &["Old.rev"]))
            .expect("repair");
        assert!(reply.contains("\"ok\":true"), "{reply}");
        assert!(reply.contains("\"req_id\":"), "no lifecycle id: {reply}");
    }
    let stats = c.call("stats", Value::Obj(vec![])).expect("stats");
    assert_eq!(
        stats.get("schema").and_then(Value::as_str),
        Some("pumpkin-serve-stats/1")
    );
    let method = stats
        .get("methods")
        .and_then(|m| m.get("repair_module"))
        .expect("repair_module histogram row");
    assert_eq!(method.get("count").and_then(Value::as_u64), Some(3));
    let latency = method.get("latency").expect("latency block");
    for q in ["p50_ns", "p95_ns", "p99_ns"] {
        assert!(
            latency.get(q).and_then(Value::as_u64).unwrap_or(0) > 0,
            "{q} missing or zero: {latency:?}"
        );
    }
    // Queue wait was measured for each queued request, and is never
    // longer than the full round trip.
    let queue = method.get("queue_wait").expect("queue_wait block");
    assert_eq!(queue.get("count").and_then(Value::as_u64), Some(3));
    assert!(
        queue.get("p99_ns").and_then(Value::as_u64)
            <= latency.get("p99_ns").and_then(Value::as_u64)
    );
    let gauges = stats.get("gauges").expect("gauges block");
    assert_eq!(gauges.get("live_sessions").and_then(Value::as_u64), Some(1));
    drop(c);
    shutdown(&addr);
    handle.join().unwrap();
}

/// With `--slow-ms 0` every request is "slow": the daemon writes one
/// structured JSONL line per request to the log sink, carrying the
/// lifecycle breakdown whose parts never exceed the wall total.
#[test]
fn slow_log_captures_the_lifecycle_breakdown() {
    let path = std::env::temp_dir().join(format!("pumpkind-slow-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let (addr, handle) = spawn_server(ServerConfig {
        workers: 1,
        slow_ms: Some(0),
        log: Some(path.clone()),
        ..ServerConfig::default()
    });
    let mut c = Client::connect(&addr).expect("connect");
    let reply = c
        .call_raw(&repair_module_line(1, &["Old.rev"]))
        .expect("repair");
    assert!(reply.contains("\"ok\":true"), "{reply}");
    drop(c);
    shutdown(&addr);
    handle.join().unwrap();
    let log = std::fs::read_to_string(&path).expect("slow log written");
    let line = log
        .lines()
        .find(|l| l.contains("\"kind\":\"serve_slow\"") && l.contains("repair_module"))
        .unwrap_or_else(|| panic!("no serve_slow line for repair_module in: {log}"));
    let v = Value::parse(line).expect("slow line is JSON");
    assert!(v.get("req_id").and_then(Value::as_u64).unwrap_or(0) >= 1);
    let total = v.get("dur_ns").and_then(Value::as_u64).expect("dur_ns");
    let queue_wait = v
        .get("queue_wait_ns")
        .and_then(Value::as_u64)
        .expect("queue_wait_ns");
    let service = v
        .get("service_ns")
        .and_then(Value::as_u64)
        .expect("service_ns");
    let write = v.get("write_ns").and_then(Value::as_u64).expect("write_ns");
    assert!(service > 0, "queued request with zero service time: {line}");
    // The parts are disjoint sub-intervals of the request's lifetime.
    assert!(
        queue_wait + service + write <= total,
        "breakdown exceeds wall time: {line}"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn oversized_frames_get_an_error_and_the_connection_survives() {
    let (addr, handle) = spawn_server(ServerConfig::default());
    let mut c = Client::connect(&addr).expect("connect");
    let huge = format!(
        r#"{{"id":1,"method":"ping","params":{{"pad":"{}"}}}}"#,
        "x".repeat(pumpkin_serve::proto::MAX_FRAME)
    );
    let reply = c.call_raw(&huge).expect("oversized call");
    assert!(reply.contains("oversized_frame"), "{reply}");
    // Same connection, next frame parses fine.
    let reply = c.call_raw(r#"{"id":2,"method":"ping"}"#).expect("ping");
    assert!(reply.contains("\"pong\":true"), "{reply}");
    shutdown(&addr);
    handle.join().unwrap();
}

#[test]
fn shutdown_drains_and_stops_accepting() {
    let (addr, handle) = spawn_server(ServerConfig::default());
    // An idle keep-alive connection must not block the drain: shutdown
    // half-closes its read side and its session exits on EOF.
    let mut idle = Client::connect(&addr).expect("idle connect");
    idle.call("ping", Value::Obj(vec![])).expect("idle ping");
    shutdown(&addr);
    // run() returning proves the drain completed.
    handle.join().unwrap();
    // The listener is gone; new connections fail (or are refused with a
    // draining notice before the accept loop exited).
    assert!(
        Client::connect(&addr).is_err() || {
            let mut c = Client::connect(&addr).unwrap();
            c.call("ping", Value::Obj(vec![])).is_err()
        },
        "server still serving after shutdown"
    );
}

#[cfg(unix)]
#[test]
fn unix_listener_serves_the_same_protocol() {
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::UnixStream;

    let path = std::env::temp_dir().join(format!("pumpkind-test-{}.sock", std::process::id()));
    let (addr, handle) = spawn_server(ServerConfig {
        unix: Some(path.clone()),
        ..ServerConfig::default()
    });
    let mut stream = BufReader::new(UnixStream::connect(&path).expect("unix connect"));
    stream
        .get_mut()
        .write_all(b"{\"id\":1,\"method\":\"ping\"}\n")
        .unwrap();
    let mut reply = String::new();
    stream.read_line(&mut reply).unwrap();
    assert!(reply.contains("\"pong\":true"), "{reply}");
    drop(stream);
    shutdown(&addr);
    handle.join().unwrap();
    assert!(!path.exists(), "socket file not cleaned up");
}

#[test]
fn persistent_cache_warms_across_server_restarts() {
    let dir = std::env::temp_dir().join(format!("pumpkind-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let run_once = || -> (String, u64, u64) {
        let (addr, handle) = spawn_server(ServerConfig {
            cache_dir: Some(dir.clone()),
            ..ServerConfig::default()
        });
        let mut c = Client::connect(&addr).expect("connect");
        let line = repair_module_line(1, &["Old.rev", "Old.rev_involutive"]);
        let reply = c.call_raw(&line).expect("repair");
        let v = Value::parse(&reply).unwrap();
        let report = v.get("result").unwrap().get("report").unwrap();
        let hits = report.get("persist_hits").and_then(Value::as_u64).unwrap();
        let misses = report
            .get("persist_misses")
            .and_then(Value::as_u64)
            .unwrap();
        drop(c);
        shutdown(&addr);
        handle.join().unwrap();
        (reply, hits, misses)
    };
    let (cold_reply, cold_hits, cold_misses) = run_once();
    let (warm_reply, warm_hits, warm_misses) = run_once();
    assert_eq!(cold_hits, 0);
    assert!(cold_misses > 0);
    assert!(warm_hits > 0, "second process saw no cache hits");
    assert_eq!(warm_misses, 0);
    // The cache changes speed, never content: both runs repair the same
    // constants to the same names (byte-level equality of the lifted
    // declarations is covered by the repairer's own persist test).
    let repaired = |reply: &str| {
        Value::parse(reply)
            .unwrap()
            .get("result")
            .and_then(|r| r.get("report"))
            .and_then(|r| r.get("repaired"))
            .cloned()
            .expect("reply carries repaired pairs")
    };
    assert_eq!(repaired(&cold_reply), repaired(&warm_reply));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn two_daemons_share_one_cache_dir_under_concurrent_eviction() {
    // Two independent server processes (modeled as two in-process servers,
    // which is the same `PersistCache` code path) point at one cache
    // directory with a budget small enough that every store triggers the
    // evictor. Concurrent store / load / evict must never corrupt the
    // cache or fail a request — at worst a lookup misses and the lift is
    // redone fresh.
    let dir = std::env::temp_dir().join(format!("pumpkind-shared-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let spawn_shared = || {
        spawn_server(ServerConfig {
            cache_dir: Some(dir.clone()),
            cache_max_bytes: Some(4096),
            ..ServerConfig::default()
        })
    };
    let (addr_a, handle_a) = spawn_shared();
    let (addr_b, handle_b) = spawn_shared();

    let names: &[&[&str]] = &[
        &["Old.rev", "Old.app"],
        &["Old.rev_involutive"],
        &["Old.app_nil_r", "Old.rev_app_distr"],
    ];
    let replies: Vec<String> = std::thread::scope(|s| {
        let handles: Vec<_> = [&addr_a, &addr_b]
            .into_iter()
            .flat_map(|addr| {
                names.iter().map(move |subset| {
                    let addr = addr.clone();
                    s.spawn(move || {
                        let mut c = Client::connect(&addr).expect("connect");
                        (0..4)
                            .map(|i| c.call_raw(&repair_module_line(i, subset)).expect("repair"))
                            .collect::<Vec<_>>()
                    })
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    for reply in &replies {
        assert!(
            reply.contains("\"ok\":true"),
            "request failed under shared cache: {reply}"
        );
    }

    // The storm over, both daemons and the on-disk cache must still work:
    // a fresh connection repairs successfully, and a direct open of the
    // directory replays without tripping the corruption tolerance.
    for addr in [&addr_a, &addr_b] {
        let mut c = Client::connect(addr).expect("reconnect");
        let reply = c
            .call_raw(&repair_module_line(99, &["Old.rev"]))
            .expect("post-storm repair");
        assert!(reply.contains("\"ok\":true"), "{reply}");
    }
    shutdown(&addr_a);
    shutdown(&addr_b);
    handle_a.join().unwrap();
    handle_b.join().unwrap();

    // Eviction kept the directory near its budget rather than growing
    // without bound (generous slack: one in-flight entry may overshoot).
    let on_disk: u64 = std::fs::read_dir(&dir)
        .map(|rd| {
            rd.flatten()
                .filter_map(|e| e.metadata().ok())
                .filter(|m| m.is_file())
                .map(|m| m.len())
                .sum()
        })
        .unwrap_or(0);
    assert!(
        on_disk < 256 * 1024,
        "cache dir grew unbounded: {on_disk} bytes"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
