//! Error-path tests for the surface language: lexing, parsing, resolution,
//! and vernacular loading all fail with positioned, descriptive errors.

use pumpkin_kernel::env::Env;
use pumpkin_lang::{load_source, parse_items, parse_term, term, LangError};

fn tiny_env() -> Env {
    let mut env = Env::new();
    load_source(
        &mut env,
        "Inductive nat : Set := | O : nat | S : nat -> nat.",
    )
    .unwrap();
    env
}

#[test]
fn lex_errors_carry_positions() {
    match parse_term("fun (x : T) => x @ y") {
        Err(LangError::Lex { pos, .. }) => {
            assert_eq!(pos.line, 1);
            assert!(pos.col > 10);
        }
        other => panic!("expected lex error, got {other:?}"),
    }
}

#[test]
fn unterminated_comment() {
    assert!(matches!(
        parse_term("x (* never closed"),
        Err(LangError::Lex { .. })
    ));
}

#[test]
fn parse_error_on_missing_arrow_target() {
    assert!(matches!(parse_term("nat ->"), Err(LangError::Parse { .. })));
}

#[test]
fn parse_error_on_unbalanced_parens() {
    assert!(matches!(
        parse_term("(fun (x : nat) => x"),
        Err(LangError::Parse { .. })
    ));
}

#[test]
fn parse_error_on_empty_binder_group() {
    assert!(matches!(
        parse_term("fun () => x"),
        Err(LangError::Parse { .. })
    ));
}

#[test]
fn elim_requires_all_clauses() {
    assert!(matches!(
        parse_term("elim x : nat with | a end"),
        Err(LangError::Parse { .. })
    ));
    assert!(matches!(
        parse_term("elim x : nat return P with | a"),
        Err(LangError::Parse { .. })
    ));
}

#[test]
fn unresolved_names_are_positioned() {
    let env = tiny_env();
    match term(&env, "fun (n : nat) => mystery n") {
        Err(LangError::Unresolved { name, .. }) => assert_eq!(name, "mystery"),
        other => panic!("expected unresolved, got {other:?}"),
    }
}

#[test]
fn elim_annotation_must_be_inductive() {
    let env = tiny_env();
    let r = term(
        &env,
        "fun (n : nat) => elim n : Set return (fun (x : nat) => nat) with | n | fun (p : nat) (ih : nat) => ih end",
    );
    assert!(matches!(r, Err(LangError::NotAnInductiveAnnotation { .. })));
}

#[test]
fn inductive_arity_must_end_in_sort() {
    let mut env = tiny_env();
    let r = load_source(&mut env, "Inductive w : nat := | mkw : w.");
    assert!(matches!(r, Err(LangError::BadConstructor { .. })));
}

#[test]
fn constructor_must_target_its_family() {
    let mut env = tiny_env();
    let r = load_source(&mut env, "Inductive w : Set := | mkw : nat.");
    assert!(matches!(r, Err(LangError::BadConstructor { .. })));
}

#[test]
fn constructor_params_must_be_uniform() {
    let mut env = tiny_env();
    // The parameter must be used uniformly in recursive positions.
    let r = load_source(
        &mut env,
        "Inductive tree (T : Type 1) : Type 1 :=
           | leaf : tree T
           | node : tree nat -> tree T.",
    );
    // tree nat is a non-uniform use: our discipline rejects it via
    // positivity (it is not a plain recursive occurrence).
    assert!(r.is_err());
}

#[test]
fn items_require_terminating_dot() {
    assert!(matches!(
        parse_items("Definition x : nat := O"),
        Err(LangError::Parse { .. })
    ));
}

#[test]
fn kernel_errors_surface_through_loading() {
    let mut env = tiny_env();
    let r = load_source(&mut env, "Definition bad : nat := nat.");
    assert!(matches!(r, Err(LangError::Kernel(_))));
}

#[test]
fn good_error_messages_render() {
    // Every error Display is non-empty and mentions the offending item.
    let env = tiny_env();
    let e = term(&env, "missing_thing").unwrap_err();
    let msg = e.to_string();
    assert!(msg.contains("missing_thing"));
    let e = parse_term("fun (x : nat) =>").unwrap_err();
    assert!(!e.to_string().is_empty());
}
